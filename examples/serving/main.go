// Serving: the daemon and the typed client SDK, end to end in one process.
//
// It starts the rwdomd HTTP server on a loopback port over a generated
// graph, then drives it with the client package: a blocking selection, the
// same selection streamed round by round (bit-identical result), memoized
// gain reads, a top-gains query, and the daemon's cache counters.
//
// In production the two halves run in different processes — rwdomd on one
// side, any number of client.New("http://host:7474") users on the other —
// but the wire contract exercised here is exactly the same.
//
// Run with: go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"repro/client"
	"repro/internal/graph"
	"repro/internal/server"
)

func main() {
	g, err := graph.BarabasiAlbert(3000, 3, 7)
	if err != nil {
		log.Fatal(err)
	}

	// The daemon half: one graph, default cache stack.
	srv, err := server.New(server.Config{Graphs: map[string]*graph.Graph{"social": g}})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	// The client half.
	c, err := client.New("http://" + ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}

	res, err := c.Select(context.Background(), client.SelectRequest{
		Graph: "social", Problem: client.ProblemCoverage, K: 8, L: 6, R: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blocking select: %v (objective %.1f, index_cached=%v)\n",
		res.Nodes, res.Objective, res.IndexCached)

	// The same request streamed: rounds arrive as they are decided and
	// reassemble bit-identically into the blocking reply.
	st, err := c.SelectStream(context.Background(), client.SelectRequest{
		Graph: "social", Problem: client.ProblemCoverage, K: 8, L: 6, R: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	for st.Next() {
		rd := st.Round()
		fmt.Printf("  round %d: node %4d  gain %7.1f  objective %8.1f\n", rd.Round, rd.Node, rd.Gain, rd.Objective)
	}
	streamed, err := st.Result()
	if err != nil {
		log.Fatal(err)
	}
	for i := range res.Nodes {
		if streamed.Nodes[i] != res.Nodes[i] {
			log.Fatalf("streamed selection diverged: %v vs %v", streamed.Nodes, res.Nodes)
		}
	}

	// Point queries against the same index: the first gain for a set pays a
	// table build, repeats are pure reads ("hit").
	set := res.Nodes[:3]
	for i := 0; i < 2; i++ {
		gr, err := c.Gain(context.Background(), client.GainRequest{
			Graph: "social", Problem: client.ProblemCoverage, L: 6, R: 100,
			Set: set, Nodes: []int{res.Nodes[3], res.Nodes[4]},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("gain of %v against %v: %v (memo=%s)\n", gr.Nodes, set, gr.Gains, gr.Memo)
	}
	tg, err := c.TopGains(context.Background(), client.TopGainsRequest{
		Graph: "social", Problem: client.ProblemCoverage, L: 6, R: 100, Set: set, B: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best next picks after %v: %v\n", set, tg.Nodes)

	stats, err := c.Stats(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daemon: %d resident index(es), %d memo hits, %d coalesced selects\n",
		stats.Cache.Resident, stats.Memo.Hits, stats.SelectsCoalesced)

	stop() // graceful drain
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}
