// Accuracy: paying for the precision you need instead of a fixed R.
//
// The fixed sample size R prices every instance identically, but the
// greedy argmax only needs enough walk replicates to separate the leading
// candidate from the runner-up. WithAccuracy(epsilon, delta) turns R into
// a cap: the walk index is materialized in replicate chunks and each
// greedy round stops sampling once a confidence interval on the leader's
// separation has half-width <= epsilon with probability >= 1-delta.
//
// This example runs both regimes on the same Engine:
//
//   - An easy, hub-dominated graph (preferential attachment with few edges
//     per node): the leaders separate fast, so the run finishes with a
//     fraction of the R cap and certifies its epsilon.
//   - A hard request (a deliberately unreachable epsilon on the same
//     graph): the run spends the full cap and reports the interval it
//     actually achieved — the caller learns the precision instead of
//     silently getting whatever fixed R bought.
//
// Epsilon is in gain units (covered-node counts for Problem2), so targets
// are calibrated to the objective scale printed by the run.
//
// Run with: go run ./examples/accuracy
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// Preferential attachment with 2 edges per node: a few hubs dominate
	// the coverage objective, so greedy leaders separate quickly.
	g, err := rwdom.GenerateBarabasiAlbert(2000, 2, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g)

	const (
		K       = 5
		L       = 6
		R       = 200 // now a cap, not a price
		epsilon = 75  // gain units; see the objective scale below
		delta   = 0.05
	)

	en, err := rwdom.Open(g, rwdom.WithAccuracy(epsilon, delta), rwdom.WithAccuracyChunk(25))
	if err != nil {
		log.Fatal(err)
	}
	defer en.Close()
	ctx := context.Background()

	// --- Easy regime: the budget stops early and certifies epsilon. ---
	fmt.Printf("\n-- adaptive select: k=%d L=%d R<=%d epsilon=%v delta=%v --\n", K, L, R, float64(epsilon), delta)
	res, err := en.SelectStream(ctx, rwdom.SelectRequest{K: K, L: L, R: R, Seed: 7},
		func(rd rwdom.Round) error {
			fmt.Printf("round %d: node %4d  +%8.2f → %9.2f   (CI ±%.2f @ %d replicates)\n",
				rd.Round, rd.Node, rd.Gain, rd.Objective, rd.CIWidth, rd.Replicates)
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("early-stopped=%t: %d/%d replicates (%d chunks), max CI ±%.2f <= epsilon %v\n",
		res.EarlyStopped, res.ReplicatesUsed, R, res.ChunksBuilt, res.CIWidth, float64(epsilon))

	// --- Hard regime: an unreachable per-request target degrades to the
	// full fixed-R selection and reports the interval it achieved. ---
	hard, err := en.Select(ctx, rwdom.SelectRequest{K: K, L: L, R: R, Seed: 7, Epsilon: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n-- epsilon=0.01 (unreachable) --\n")
	fmt.Printf("early-stopped=%t: %d/%d replicates, achieved CI ±%.2f (wanted ±0.01)\n",
		hard.EarlyStopped, hard.ReplicatesUsed, R, hard.CIWidth)

	// The capped run IS the fixed-R selection: same nodes, same gains.
	plain, err := rwdom.Solve(g, rwdom.Problem2, rwdom.Options{K: K, L: L, R: R, Seed: 7, Lazy: false, Algorithm: rwdom.AlgorithmApprox})
	if err != nil {
		log.Fatal(err)
	}
	same := len(hard.Nodes) == len(plain.Nodes)
	for i := 0; same && i < len(plain.Nodes); i++ {
		same = hard.Nodes[i] == plain.Nodes[i]
	}
	fmt.Printf("capped selection bit-identical to fixed-R: %t  %v\n", same, hard.Nodes)
}
