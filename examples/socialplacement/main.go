// Social item placement: the paper's first motivating application (§1.1).
//
// An application developer wants to seed a Facebook-style app on k users so
// that other users discover it through social browsing — modeled as an
// L-length random walk over the friendship graph. This example uses the
// Brightkite dataset stand-in, compares seeding strategies, and reports how
// quickly (AHT) and how widely (EHN) the app is discovered, including how
// discovery changes with the users' browsing patience L.
//
// Run with: go run ./examples/socialplacement
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Brightkite stand-in at 20% scale: ~11.6k users (scale up as desired).
	g, err := rwdom.LoadDataset("Brightkite", 0.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("friendship network: %v\n", g)

	const (
		budget   = 40 // free installs the developer can give away
		patience = 6  // home-pages a user visits per browsing session
	)

	// Seed selection: maximize the expected number of users who encounter
	// the app during one browsing session.
	sel, err := rwdom.Solve(g, rwdom.Problem2, rwdom.Options{
		K: budget, L: patience, R: 100, Seed: 7,
		Algorithm: rwdom.AlgorithmApprox, Lazy: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy seeding took %v (index) + %v (selection)\n", sel.BuildTime, sel.SelectTime)

	celebs, err := rwdom.Solve(g, rwdom.Problem2, rwdom.Options{K: budget, L: patience, Algorithm: rwdom.AlgorithmDegree})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-28s %-14s %-16s\n", "strategy", "avg discovery", "expected reach")
	for _, s := range []*rwdom.Selection{sel, celebs} {
		m, err := rwdom.EvaluateExact(g, s.Nodes, patience)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %-14.3f %-16.0f\n", label(s.Algorithm), m.AHT, m.EHN)
	}

	// How does user patience change the picture? Short browsing sessions
	// reward the greedy placement even more.
	fmt.Printf("\nreach vs browsing patience L (budget %d):\n", budget)
	fmt.Printf("%-4s %-16s %-16s\n", "L", "greedy reach", "celebrity reach")
	for _, L := range []int{2, 4, 6, 8, 10} {
		gSel, err := rwdom.Solve(g, rwdom.Problem2, rwdom.Options{
			K: budget, L: L, R: 100, Seed: 7, Algorithm: rwdom.AlgorithmApprox, Lazy: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		mG, err := rwdom.EvaluateExact(g, gSel.Nodes, L)
		if err != nil {
			log.Fatal(err)
		}
		mC, err := rwdom.EvaluateExact(g, celebs.Nodes, L)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-16.0f %-16.0f\n", L, mG.EHN, mC.EHN)
	}
}

func label(alg string) string {
	switch alg {
	case "ApproxF2":
		return "greedy placement (paper)"
	case "Degree":
		return "celebrity seeding (top-k)"
	default:
		return alg
	}
}
