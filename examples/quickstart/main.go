// Quickstart: the smallest end-to-end use of the rwdom public API.
//
// It builds a small power-law graph, opens a query Engine over it, selects
// 10 target nodes for each of the paper's two problems with the approximate
// greedy algorithm (sharing one walk index between them), and compares
// their effectiveness (and the two baselines') under both metrics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// A synthetic social network: 5000 users, power-law degree distribution.
	g, err := rwdom.GeneratePowerLaw(5000, 30000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g)

	const (
		k = 10 // budget: how many nodes we may target
		L = 6  // users browse at most 6 hops
	)

	// The Engine owns the walk-index cache: both problems below share one
	// materialization of the (L, R, seed) index, and repeated gain queries
	// would be memoized reads.
	en, err := rwdom.Open(g)
	if err != nil {
		log.Fatal(err)
	}
	defer en.Close()
	ctx := context.Background()

	// Problem 1: make every user reach a target as quickly as possible.
	p1, err := en.Select(ctx, rwdom.SelectRequest{Problem: rwdom.Problem1, K: k, L: L, R: 100, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	// Problem 2: maximize how many users reach any target at all. Streamed,
	// to show picks as the greedy loop decides them — the final selection is
	// bit-for-bit what the blocking call returns.
	fmt.Println("\ncoverage selection, round by round:")
	p2, err := en.SelectStream(ctx, rwdom.SelectRequest{Problem: rwdom.Problem2, K: k, L: L, R: 100, Seed: 1},
		func(rd rwdom.Round) error {
			fmt.Printf("  round %2d: node %4d covers %6.1f more users (total %8.1f)\n",
				rd.Round, rd.Node, rd.Gain, rd.Objective)
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	if !p2.IndexCached {
		log.Fatal("the two problems should have shared one walk index")
	}

	// Baselines for contrast (no walk index involved).
	deg, err := rwdom.Solve(g, rwdom.Problem1, rwdom.Options{K: k, L: L, Algorithm: rwdom.AlgorithmDegree})
	if err != nil {
		log.Fatal(err)
	}
	dom, err := rwdom.Solve(g, rwdom.Problem1, rwdom.Options{K: k, L: L, Algorithm: rwdom.AlgorithmDominate})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %-12s %-12s\n", "selection", "AHT (lower+)", "EHN (higher+)")
	for _, row := range []struct {
		name  string
		nodes []int
	}{
		{"ApproxF1 (engine)", p1.Nodes},
		{"ApproxF2 (engine)", p2.Nodes},
		{deg.Algorithm, deg.Nodes},
		{dom.Algorithm, dom.Nodes},
	} {
		m, err := rwdom.EvaluateExact(g, row.nodes, L)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %-12.4f %-12.1f\n", row.name, m.AHT, m.EHN)
	}
	fmt.Printf("\nProblem-1 targets: %v\n", p1.Nodes)
	fmt.Printf("Problem-2 targets: %v\n", p2.Nodes)
}
