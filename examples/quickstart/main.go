// Quickstart: the smallest end-to-end use of the rwdom public API.
//
// It builds a small power-law graph, selects 10 target nodes for each of the
// paper's two problems with the approximate greedy algorithm, and compares
// their effectiveness (and the two baselines') under both metrics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A synthetic social network: 5000 users, power-law degree distribution.
	g, err := rwdom.GeneratePowerLaw(5000, 30000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g)

	const (
		k = 10 // budget: how many nodes we may target
		L = 6  // users browse at most 6 hops
	)
	opts := rwdom.Options{K: k, L: L, R: 100, Seed: 1, Algorithm: rwdom.AlgorithmApprox, Lazy: true}

	// Problem 1: make every user reach a target as quickly as possible.
	p1, err := rwdom.MinimizeHittingTime(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	// Problem 2: maximize how many users reach any target at all.
	p2, err := rwdom.MaximizeCoverage(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	// Baselines for contrast.
	deg, err := rwdom.MinimizeHittingTime(g, rwdom.Options{K: k, L: L, Algorithm: rwdom.AlgorithmDegree})
	if err != nil {
		log.Fatal(err)
	}
	dom, err := rwdom.MinimizeHittingTime(g, rwdom.Options{K: k, L: L, Algorithm: rwdom.AlgorithmDominate})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %-12s %-12s\n", "selection", "AHT (lower+)", "EHN (higher+)")
	for _, sel := range []*rwdom.Selection{p1, p2, deg, dom} {
		m, err := rwdom.EvaluateExact(g, sel.Nodes, L)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %-12.4f %-12.1f\n", sel.Algorithm, m.AHT, m.EHN)
	}
	fmt.Printf("\nProblem-1 targets: %v\n", p1.Nodes)
	fmt.Printf("Problem-2 targets: %v\n", p2.Nodes)
}
