// Directed, weighted trust network: the paper notes (§2) that its techniques
// "can also be easily extended to directed and weighted graphs" — this
// example exercises that extension end to end.
//
// Scenario: a review platform where user u follows user v with a trust
// weight; readers surf along trust edges (weight-proportionally) for a
// bounded session. The platform certifies k "trusted reviewer" accounts and
// wants surfing readers to encounter a certified account quickly. After the
// selection, an agent-based simulation A/B-tests the greedy placement
// against degree seeding, reporting realized discovery rates, tail
// latencies, and how evenly certified accounts share attention.
//
// Run with: go run ./examples/directedtrust
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/rng"
)

func main() {
	g, err := buildTrustNetwork(4000, 24000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trust network: %v\n", g)

	const (
		k       = 25
		session = 6
	)

	greedy, err := rwdom.Solve(g, rwdom.Problem2, rwdom.Options{
		K: k, L: session, R: 100, Seed: 2, Algorithm: rwdom.AlgorithmApprox, Lazy: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	degree, err := rwdom.Solve(g, rwdom.Problem2, rwdom.Options{K: k, L: session, Algorithm: rwdom.AlgorithmDegree})
	if err != nil {
		log.Fatal(err)
	}

	// Validate with the agent-based simulator: 30 surfing sessions per
	// reader under each placement.
	outcomes, err := rwdom.CompareSelections(g, session, 99, 30, map[string][]int{
		"greedy (paper)": greedy.Nodes,
		"top-k degree":   degree.Nodes,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsimulated outcomes (%d sessions each):\n", outcomes["greedy (paper)"].Sessions)
	fmt.Printf("%-16s %-12s %-14s %-10s %-12s\n", "placement", "discovered", "mean latency", "p95", "load max/mean")
	for _, name := range []string{"greedy (paper)", "top-k degree"} {
		o := outcomes[name]
		fmt.Printf("%-16s %-12.1f%% %-13.3f %-10d %-12.2f\n",
			name, 100*o.DiscoveryRate(), o.MeanLatency, o.LatencyPercentile(95), o.LoadImbalance())
	}

	// Cross-check the simulation against the exact DP quantities.
	m, err := rwdom.EvaluateExact(g, greedy.Nodes, session)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact check (greedy placement): AHT=%.3f (simulated %.3f), EHN=%.0f/%d\n",
		m.AHT, outcomes["greedy (paper)"].MeanLatency, m.EHN, g.N())
}

// buildTrustNetwork generates a directed, weighted graph: a power-law
// follower structure where each arc carries a trust weight in (0.5, 3].
func buildTrustNetwork(n, arcs int, seed uint64) (*rwdom.Graph, error) {
	r := rng.New(seed)
	b := rwdom.NewBuilder(n, rwdom.Directed)
	// Preferential attachment on the target side: popular accounts attract
	// more followers.
	targets := make([]int, 0, arcs)
	targets = append(targets, 0)
	added := 0
	for added < arcs {
		u := r.Intn(n)
		var v int
		if r.Float64() < 0.8 {
			v = targets[r.Intn(len(targets))]
		} else {
			v = r.Intn(n)
		}
		if u == v {
			continue
		}
		w := 0.5 + 2.5*r.Float64()
		b.AddWeightedEdge(u, v, w)
		targets = append(targets, v)
		added++
	}
	return b.Build()
}
