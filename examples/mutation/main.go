// Mutation: evolving a served graph without losing the warm caches.
//
// Real networks change: users join, friendships form and dissolve. This
// example opens a query Engine over a social graph, warms its walk index
// with a selection, then applies a batch of edge changes with ApplyDelta.
// The Engine bumps the graph's mutation epoch and repairs the resident walk
// index incrementally — only the walks the delta touched are regenerated,
// so the repair cost scales with the size of the change, not the graph —
// and the post-mutation selection is bit-identical to what a cold Engine
// opened over the already-mutated graph would compute.
//
// It also shows the optimistic-concurrency handle: a mutation carrying
// BaseEpoch applies only if the graph is still at that epoch, so
// read-modify-write callers never clobber a concurrent writer.
//
// Run with: go run ./examples/mutation
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	g, err := rwdom.GeneratePowerLaw(5000, 30000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g)

	en, err := rwdom.Open(g)
	if err != nil {
		log.Fatal(err)
	}
	defer en.Close()
	ctx := context.Background()
	req := rwdom.SelectRequest{Problem: rwdom.Problem2, K: 8, L: 6, R: 100, Seed: 1}

	// Warm: the first selection materializes the walk index.
	before, err := en.Select(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbefore mutation: targets %v (index build %v)\n", before.Nodes, before.IndexBuild)

	// The network evolves at its periphery: one new user joins and befriends
	// a recent arrival, two friendships form, one dissolves. (Peripheral
	// churn is the common case — and the cheap one: few walks visit these
	// nodes, so few walk rows need repair. Rewiring a heavily-walked hub
	// would legitimately touch most walks.)
	per := g.N() - 1
	add := []rwdom.Edge{{U: g.N(), V: per}}
	for u := g.N() - 10; len(add) < 3; u++ {
		for v := u - 100; v < g.N(); v++ {
			if u != v && !g.HasEdge(u, v) {
				add = append(add, rwdom.Edge{U: u, V: v})
				break
			}
		}
	}
	delta := rwdom.Delta{
		AddNodes:    1,
		AddEdges:    add,
		RemoveEdges: []rwdom.Edge{{U: per, V: int(g.Neighbors(per)[0])}},
	}
	start := time.Now()
	res, err := en.ApplyDelta(ctx, rwdom.ApplyDeltaRequest{Delta: delta})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napplied delta in %v: epoch %d, %d nodes / %d edges, %d adjacencies touched\n",
		time.Since(start).Round(time.Microsecond), res.Epoch, res.Nodes, res.Edges, res.Touched)
	fmt.Printf("cached artifacts: %d indexes repaired in place, %d dropped, %d memos invalidated\n",
		res.IndexesRepaired, res.IndexesDropped, res.MemosDropped)

	// The repaired index serves immediately — no rebuild.
	after, err := en.Select(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter mutation:  targets %v (index cached: %v)\n", after.Nodes, after.IndexCached)

	// Optimistic concurrency: this writer believes the graph is still at
	// epoch 0, but the mutation above moved it to 1 — the Engine refuses
	// with the typed conflict code instead of silently clobbering.
	staleBase := uint64(0)
	_, err = en.ApplyDelta(ctx, rwdom.ApplyDeltaRequest{
		Delta:     rwdom.Delta{AddEdges: []rwdom.Edge{{U: 1, V: 2}}},
		BaseEpoch: &staleBase,
	})
	if rwdom.ErrorCodeOf(err) != rwdom.ErrConflict {
		log.Fatalf("expected a conflict, got %v", err)
	}
	fmt.Printf("\nstale writer rejected: %v\n", err)

	// Cross-check against a cold Engine on the mutated graph: the warm,
	// incrementally-repaired path answers bit-identically.
	mg, _, err := g.ApplyDelta(delta)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := rwdom.Open(mg)
	if err != nil {
		log.Fatal(err)
	}
	defer ref.Close()
	want, err := ref.Select(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	for i := range want.Nodes {
		if after.Nodes[i] != want.Nodes[i] {
			log.Fatalf("repair diverged from rebuild at pick %d", i)
		}
	}
	fmt.Println("parity: repaired index selection == cold-rebuild selection, bit for bit")
}
