// Ads placement with a blended objective: the paper's second motivating
// application (§1.1) combined with its first future-work extension (§5).
//
// An advertiser pays k users of an advertisement network to host an Ad.
// Reaching many users matters (coverage, Problem 2), but so does reaching
// them quickly before a browsing session ends (hitting time, Problem 1).
// This example sweeps the combination weight between the two objectives and
// shows the trade-off curve an advertiser would choose from, plus the edge
// domination measure of how much browsing happens before an Ad is seen.
//
// Run with: go run ./examples/adsbudget
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Epinions stand-in at 15% scale (~11.4k users).
	g, err := rwdom.LoadDataset("Epinions", 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advertisement network: %v\n", g)

	const (
		budget  = 30
		session = 6 // pages per browsing session
	)
	opts := rwdom.Options{K: budget, L: session, R: 100, Seed: 11, Lazy: true}

	fmt.Printf("\ntrade-off sweep (w = weight on fast reachability):\n")
	fmt.Printf("%-6s %-14s %-14s %-20s %s\n", "w", "AHT (lower+)", "EHN (higher+)", "pre-Ad browsing edges", "overlap with w=0")
	var base map[int]bool
	for _, w := range []float64{0, 0.25, 0.5, 0.75, 1} {
		sel, err := rwdom.SelectCombined(g, opts, w)
		if err != nil {
			log.Fatal(err)
		}
		m, err := rwdom.EvaluateExact(g, sel.Nodes, session)
		if err != nil {
			log.Fatal(err)
		}
		// The future-work edge-domination measure: how much browsing happens
		// before users encounter an Ad (lower = Ads seen earlier).
		edges, err := rwdom.EdgeDomination(g, sel.Nodes, session, 20, 5)
		if err != nil {
			log.Fatal(err)
		}
		if base == nil {
			base = map[int]bool{}
			for _, u := range sel.Nodes {
				base[u] = true
			}
		}
		overlap := 0
		for _, u := range sel.Nodes {
			if base[u] {
				overlap++
			}
		}
		fmt.Printf("%-6.2f %-14.4f %-14.0f %-20.0f %d/%d\n", w, m.AHT, m.EHN, edges, overlap, len(sel.Nodes))
	}

	fmt.Println("\nw=0 optimizes pure coverage; w=1 optimizes pure hitting time.")
	fmt.Println("On heavy-tailed networks the two objectives agree on the most central")
	fmt.Println("hosts, so the selections overlap heavily — the blended objective is a")
	fmt.Println("safety net for graphs (or budgets) where they diverge.")
}
