// Mmapserve: O(1) warm restarts and larger-than-RAM serving off mapped
// spill files.
//
// A walk index is expensive to build — O(n·R·L) sampled walks — and cheap
// to keep: spilled to disk on shutdown, it warm-loads on the next start.
// This example measures what that restart costs in each mode. A cold
// Engine builds the index and spills it on Close (format v8: page-aligned
// sections, per-section CRC32-C, delta/varint-compressed walk spans). A
// warm Engine over the same spill directory then comes up twice: once
// deserializing the file onto the heap, and once with WithMmapSpills,
// where the "load" is an mmap plus CRC verification — no deserialize, rows
// page in as queries touch them, and the mapped index costs nothing
// against the index-bytes budget, so the working set may exceed RAM.
//
// Both warm paths answer bit-identically to the cold build; the example
// checks it and prints the /stats-style storage counters (mapped indexes,
// page-in restarts, hot-row decode traffic) that track the mapped mode in
// production.
//
// Run with: go run ./examples/mmapserve
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro"
)

func main() {
	g, err := rwdom.GeneratePowerLaw(20000, 100000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g)

	dir, err := os.MkdirTemp("", "mmapserve")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()
	req := rwdom.SelectRequest{Problem: rwdom.Problem2, K: 10, L: 6, R: 60, Seed: 1}

	// Cold: build the index, select, and spill it on Close.
	cold, err := rwdom.Open(g, rwdom.WithSpillDir(dir))
	if err != nil {
		log.Fatal(err)
	}
	want, err := cold.Select(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncold start:  index build %v, targets %v\n", want.IndexBuild.Round(time.Millisecond), want.Nodes)
	cold.Close() // spills the resident index as a v8 store file

	var spillBytes int64
	filepath.WalkDir(dir, func(_ string, d os.DirEntry, _ error) error {
		if d != nil && !d.IsDir() {
			if fi, err := d.Info(); err == nil {
				spillBytes += fi.Size()
			}
		}
		return nil
	})
	fmt.Printf("spilled:     %d bytes on disk (compressed v8 container)\n", spillBytes)

	// Warm restart, heap mode: the spill file is deserialized back onto the
	// Go heap — already far cheaper than the rebuild, but O(entries).
	restart := func(label string, opts ...rwdom.Option) *rwdom.Engine {
		en, err := rwdom.Open(g, append([]rwdom.Option{rwdom.WithSpillDir(dir)}, opts...)...)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		got, err := en.Select(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		if !got.IndexCached {
			log.Fatalf("%s: expected a warm load, got a rebuild", label)
		}
		for i, n := range got.Nodes {
			if n != want.Nodes[i] || math.Float64bits(got.Gains[i]) != math.Float64bits(want.Gains[i]) {
				log.Fatalf("%s: warm answer diverged at round %d", label, i)
			}
		}
		fmt.Printf("%s first query in %v (bit-identical to cold)\n", label, time.Since(start).Round(time.Millisecond))
		return en
	}

	en := restart("warm (heap): ")
	en.Close()

	// Warm restart, mmap mode: open maps the file read-only and verifies
	// CRCs; no deserialize happens and no index bytes land on the heap.
	en = restart("warm (mmap): ", rwdom.WithMmapSpills())
	defer en.Close()

	st := en.Stats()
	fmt.Printf("\nstorage: format=%s mmap=%v mapped_indexes=%d mapped_bytes=%d page_in_restarts=%d\n",
		st.Storage.SpillFormat, st.Storage.Mmap, st.Storage.MappedIndexes,
		st.Storage.MappedBytes, st.Storage.PageInRestarts)
	fmt.Printf("decode:  hits=%d misses=%d (compressed spans decode on read through the hot-row cache)\n",
		st.Storage.DecodeHits, st.Storage.DecodeMisses)
	if st.Storage.PageInRestarts == 0 {
		fmt.Println("note: mmap unavailable on this platform; the load fell back to the heap path")
	}
}
