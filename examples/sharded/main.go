// Sharded: replicate-sharded scatter-gather serving, end to end in one
// process.
//
// It starts two worker daemons on loopback ports, each of which will
// materialize only its slice of the replicate range [0, R) of every walk
// index, then starts a coordinator daemon over them (-peer topology) and
// drives it with the typed client SDK. The merged answers are compared
// bit-for-bit against an unsharded daemon serving the same graph — the
// point of the design: sharding divides per-process index memory and
// build time, never results.
//
// In production the three daemons run on different machines:
//
//	rwdomd -dataset Epinions -listen :7474                    # worker 0
//	rwdomd -dataset Epinions -listen :7475                    # worker 1
//	rwdomd -dataset Epinions -peer http://w0:7474 -peer http://w1:7475
//
// Run with: go run ./examples/sharded
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"net"

	"repro/client"
	"repro/internal/graph"
	"repro/internal/server"
)

// startDaemon serves cfg on a loopback port and returns its base URL and
// a shutdown func.
func startDaemon(cfg server.Config) (string, func(), error) {
	srv, err := server.New(cfg)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	stop := func() {
		cancel()
		if err := <-done; err != nil {
			log.Fatal(err)
		}
	}
	return "http://" + ln.Addr().String(), stop, nil
}

func main() {
	g, err := graph.BarabasiAlbert(3000, 3, 7)
	if err != nil {
		log.Fatal(err)
	}
	graphs := map[string]*graph.Graph{"social": g}

	// Two worker daemons: ordinary rwdomd instances — the /v1/partial
	// endpoints ride along on every daemon.
	w0, stop0, err := startDaemon(server.Config{Graphs: graphs})
	if err != nil {
		log.Fatal(err)
	}
	defer stop0()
	w1, stop1, err := startDaemon(server.Config{Graphs: graphs})
	if err != nil {
		log.Fatal(err)
	}
	defer stop1()

	// The coordinator fronts them; an unsharded daemon is the referee.
	coordURL, stopCoord, err := startDaemon(server.Config{Graphs: graphs, Peers: []string{w0, w1}})
	if err != nil {
		log.Fatal(err)
	}
	defer stopCoord()
	plainURL, stopPlain, err := startDaemon(server.Config{Graphs: graphs})
	if err != nil {
		log.Fatal(err)
	}
	defer stopPlain()

	coord, err := client.New(coordURL)
	if err != nil {
		log.Fatal(err)
	}
	plain, err := client.New(plainURL)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	req := client.SelectRequest{
		Graph: "social", Problem: client.ProblemCoverage, K: 8, L: 6, R: 100,
	}
	merged, err := coord.Select(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	reference, err := plain.Select(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scatter-gathered select: %v (objective %.1f)\n", merged.Nodes, merged.Objective)
	for i := range reference.Nodes {
		if merged.Nodes[i] != reference.Nodes[i] ||
			math.Float64bits(merged.Gains[i]) != math.Float64bits(reference.Gains[i]) {
			log.Fatalf("merged selection diverged: %v vs %v", merged.Nodes, reference.Nodes)
		}
	}
	fmt.Println("bit-identical to the unsharded daemon, gain for gain")

	// Point reads merge the same way.
	set := merged.Nodes[:3]
	mg, err := coord.Gain(ctx, client.GainRequest{
		Graph: "social", Problem: client.ProblemCoverage, L: 6, R: 100,
		Set: set, Nodes: []int{merged.Nodes[3], merged.Nodes[4]},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged gain of %v against %v: %v\n", mg.Nodes, set, mg.Gains)

	// The coordinator's /stats shards block shows where the work went.
	stats, err := coord.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if stats.Shards == nil {
		log.Fatal("coordinator reported no shards block")
	}
	fmt.Printf("coordinator: %d shards, %d merges, %d retries\n",
		stats.Shards.Shards, stats.Shards.Merges, stats.Shards.Retries)
	for _, ps := range stats.Shards.PerShard {
		fmt.Printf("  shard %-28s %4d requests, %d errors\n", ps.Addr, ps.Requests, ps.Errors)
	}
}
