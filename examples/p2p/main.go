// P2P resource placement: the paper's third motivating application (§1.1).
//
// In a peer-to-peer network, searches are forwarded as random walks with a
// hop-limited lifespan (TTL). Placing replicas of a resource on the right k
// peers makes searches succeed sooner (Problem 1) and more often (Problem
// 2). This example sizes the replica set with the partial-cover extension
// ("how many replicas until 90% of searches succeed?") and inspects
// per-peer search success probabilities.
//
// Run with: go run ./examples/p2p
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	// An unstructured overlay of 8000 peers (Gnutella-like topologies are
	// heavy-tailed; a power-law overlay captures that).
	g, err := rwdom.GeneratePowerLaw(8000, 32000, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay: %v\n", g)

	const ttl = 8 // search walk time-to-live, in hops

	// How many replicas until an expected 90% of peers can find the
	// resource within one TTL-bounded search?
	cover, err := rwdom.MinimumCoverSet(g, rwdom.Options{L: ttl, R: 100, Seed: 3}, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplicas needed for 90%% search success: %d (achieved=%v)\n",
		len(cover.Nodes), cover.Achieved)
	fmt.Println("coverage growth as replicas are added:")
	step := len(cover.Coverage)/10 + 1
	for i := 0; i < len(cover.Coverage); i += step {
		fmt.Printf("  %3d replicas -> expected %6.0f / %d peers\n", i+1, cover.Coverage[i], g.N())
	}
	last := len(cover.Coverage) - 1
	fmt.Printf("  %3d replicas -> expected %6.0f / %d peers (target %.0f)\n",
		last+1, cover.Coverage[last], g.N(), cover.Target)

	// With a fixed budget, minimize expected search latency instead.
	const budget = 20
	fast, err := rwdom.Solve(g, rwdom.Problem1, rwdom.Options{
		K: budget, L: ttl, R: 100, Seed: 3, Algorithm: rwdom.AlgorithmApprox, Lazy: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	m, err := rwdom.EvaluateExact(g, fast.Nodes, ttl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith %d replicas placed for latency: mean search latency %.2f hops, success %.0f peers\n",
		budget, m.AHT, m.EHN)

	// Which peers still struggle? Inspect per-peer success probabilities.
	probs, err := rwdom.HitProbabilities(g, fast.Nodes, ttl)
	if err != nil {
		log.Fatal(err)
	}
	type peer struct {
		id int
		p  float64
	}
	worst := make([]peer, 0, g.N())
	for id, p := range probs {
		worst = append(worst, peer{id, p})
	}
	sort.Slice(worst, func(i, j int) bool { return worst[i].p < worst[j].p })
	fmt.Println("\npeers with the lowest search success probability:")
	for _, w := range worst[:5] {
		fmt.Printf("  peer %5d: %.3f (degree %d)\n", w.id, w.p, g.Degree(w.id))
	}
}
