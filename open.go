package rwdom

import (
	"context"
	"errors"
	"math"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/shard"
)

// This file is the context-first public API: Open binds a graph to a
// query Engine — the same transport-agnostic serving core the rwdomd
// daemon runs on (internal/engine) — so embedded users get the whole
// serving stack (shared walk indexes, build coalescing, memoized gain
// reads with prefix extension, optional spill-to-disk and byte budgets)
// through plain method calls. The legacy free functions in rwdom.go remain
// as deprecated shims over a default Engine.

// Engine serves selections and gain queries over one graph. It is safe for
// concurrent use; identical concurrent Select calls coalesce into one
// computation and all queries share one materialized walk index per
// (L, R, seed). Create with Open, release resources with Close.
//
// With WithShards or WithPeers, the Engine fronts a replicate-sharded
// coordinator instead of a single in-process engine: each shard holds walk
// indexes over a disjoint replicate range, and every query is answered by
// merging the shards' integer partial sums — bit-identically to the
// unsharded Engine.
type Engine struct {
	e     *engine.Engine     // nil when sharded
	coord *shard.Coordinator // nil when unsharded
	q     querier
}

// querier is the query surface Engine delegates to — the in-process engine
// or a sharded coordinator.
type querier interface {
	Select(context.Context, engine.SelectRequest) (*engine.SelectResult, error)
	SelectStream(context.Context, engine.SelectRequest, func(engine.Round) error) (*engine.SelectResult, error)
	Gain(context.Context, engine.GainRequest) (*engine.GainResult, error)
	Objective(context.Context, engine.ObjectiveRequest) (*engine.ObjectiveResult, error)
	TopGains(context.Context, engine.TopGainsRequest) (*engine.TopGainsResult, error)
	ApplyDelta(context.Context, engine.ApplyDeltaRequest) (*engine.ApplyDeltaResult, error)
}

// Request/response types, shared verbatim with the engine (and mirrored by
// the HTTP wire format and the client package). Graph fields may be left
// empty: an Engine opened with Open serves exactly one graph.
type (
	// SelectRequest asks for a top-K selection; see Engine.Select.
	SelectRequest = engine.SelectRequest
	// SelectResult is one completed selection.
	SelectResult = engine.SelectResult
	// Round is one streamed greedy round; see Engine.SelectStream.
	Round = engine.Round
	// GainRequest asks for marginal gains against a seed set.
	GainRequest = engine.GainRequest
	// GainResult carries the requested marginal gains.
	GainResult = engine.GainResult
	// ObjectiveRequest asks for the estimated objective of a seed set.
	ObjectiveRequest = engine.ObjectiveRequest
	// ObjectiveResult carries the estimate.
	ObjectiveResult = engine.ObjectiveResult
	// TopGainsRequest asks for the best candidates against a seed set.
	TopGainsRequest = engine.TopGainsRequest
	// TopGainsResult carries the winners, gain descending.
	TopGainsResult = engine.TopGainsResult
	// Strategy selects the greedy driver (Lazy or Plain).
	Strategy = engine.Strategy
	// EngineStats snapshots the engine's cache and coalescing counters.
	EngineStats = engine.Stats
	// ErrorCode is the stable machine-readable code engine errors carry;
	// inspect it with ErrorCodeOf.
	ErrorCode = engine.Code
	// ShardStats snapshots a sharded Engine's coordinator counters; see
	// Engine.ShardStats.
	ShardStats = shard.Stats
	// ShardConnStats is one shard's request/error/retry counters.
	ShardConnStats = shard.ConnStats
	// ShardLatency summarizes the coordinator's merge latencies.
	ShardLatency = shard.LatencySnapshot
	// Delta is one atomic graph mutation: nodes to append, edges to add,
	// edges to remove; see Engine.ApplyDelta.
	Delta = graph.Delta
	// Edge is one undirected edge in a Delta (W <= 0 means unweighted).
	Edge = graph.Edge
	// ApplyDeltaRequest asks for a graph mutation; see Engine.ApplyDelta.
	ApplyDeltaRequest = engine.ApplyDeltaRequest
	// ApplyDeltaResult reports one applied mutation: the new epoch and the
	// fate of every cached artifact (repaired, dropped, memo-invalidated).
	ApplyDeltaResult = engine.ApplyDeltaResult
)

// Greedy strategies for SelectRequest.Strategy; the zero value is Lazy.
const (
	Lazy  = engine.Lazy
	Plain = engine.Plain
)

// Stable error codes carried by Engine method errors.
const (
	ErrBadRequest = engine.CodeBadRequest
	ErrNotFound   = engine.CodeNotFound
	ErrDraining   = engine.CodeDraining
	ErrTimeout    = engine.CodeTimeout
	ErrInternal   = engine.CodeInternal
	// ErrConflict rejects a structurally impossible mutation (adding an
	// edge that exists, removing one that doesn't) or a stale BaseEpoch.
	ErrConflict = engine.CodeConflict
	// ErrStaleEpoch rejects a read pinned to an epoch the graph is not at;
	// re-issue the read to resolve against the current epoch.
	ErrStaleEpoch = engine.CodeStaleEpoch
	// ErrUnsupported rejects a well-formed request combining features the
	// serving mode cannot honor — today, accuracy knobs (epsilon/delta) on a
	// sharded Engine.
	ErrUnsupported = engine.CodeUnsupported
)

// ErrorCodeOf extracts the stable code from any Engine method error.
func ErrorCodeOf(err error) ErrorCode { return engine.CodeOf(err) }

// openConfig is the resolved Open configuration: the wrapped engine's
// config plus the sharding topology.
type openConfig struct {
	engine engine.Config
	shards int
	peers  []string
}

// Option configures Open.
type Option func(*openConfig)

// WithWorkers sets the default worker count for index construction and
// gain evaluation (0 means all cores; per-request Workers overrides it —
// Open leaves the worker cap effectively unbounded, like the request
// caps). Selections are bit-for-bit identical for every value.
func WithWorkers(n int) Option {
	return func(c *openConfig) {
		if n > 0 {
			c.engine.DefaultWorkers = n
		}
	}
}

// WithIndexCache bounds the number of resident walk indexes (< 0 means
// unbounded; default 8).
func WithIndexCache(entries int) Option {
	return func(c *openConfig) { c.engine.CacheSize = entries }
}

// WithIndexCacheBytes additionally bounds the resident indexes' summed heap
// footprint (0 means unbounded). The budget is soft while every resident
// index is pinned by an in-flight call.
func WithIndexCacheBytes(n int64) Option {
	return func(c *openConfig) { c.engine.IndexBytes = n }
}

// WithMemoCache bounds the number of memoized per-set D-tables the gain
// read path keeps resident (< 0 means unbounded; default 128).
func WithMemoCache(entries int) Option {
	return func(c *openConfig) { c.engine.MemoSize = entries }
}

// WithMemoCacheBytes additionally bounds the memoized tables' summed heap
// footprint (0 means unbounded).
func WithMemoCacheBytes(n int64) Option {
	return func(c *openConfig) { c.engine.MemoBytes = n }
}

// WithoutMemo disables the memoized gain read path: every Gain, Objective
// and TopGains call materializes a fresh D-table. Kept for parity testing
// and A/B benchmarking.
func WithoutMemo() Option {
	return func(c *openConfig) { c.engine.DisableMemo = true }
}

// WithSpillDir persists evicted and Close-resident walk indexes under dir,
// so a later Open against the same graph skips their builds.
func WithSpillDir(dir string) Option {
	return func(c *openConfig) { c.engine.SpillDir = dir }
}

// WithSpillFormat selects the on-disk format spills are written in: "v8"
// (compressed store container, the default), "v8raw" (raw page-aligned
// sections), or "v7" (the legacy full-deserialize format). Loads sniff the
// file magic and accept every format, so changing it never invalidates an
// existing spill directory.
func WithSpillFormat(format string) Option {
	return func(c *openConfig) { c.engine.SpillFormat = format }
}

// WithMmapSpills serves v8 spill loads store-backed through a read-only
// memory mapping: a warm Open against a spill directory pages walk rows in
// on demand instead of deserializing them, and mapped indexes cost ~nothing
// against WithIndexCacheBytes (their pages are reclaimable page cache, not
// heap) — the larger-than-RAM serving mode. Answers are bit-identical to
// heap-resident serving.
func WithMmapSpills() Option {
	return func(c *openConfig) { c.engine.MmapSpills = true }
}

// WithDefaultTimeout bounds calls that don't carry their own timeout
// (via SelectRequest.Timeout or the context). Open's default is unbounded —
// embedded callers control lifetimes with contexts.
func WithDefaultTimeout(d time.Duration) Option {
	return func(c *openConfig) { c.engine.DefaultTimeout = d }
}

// WithEvictInterval evicts walk indexes idle for one full interval, keeping
// a long-lived Engine's heap proportional to its working set.
func WithEvictInterval(d time.Duration) Option {
	return func(c *openConfig) { c.engine.EvictInterval = d }
}

// WithLimits caps per-request sample size and budget — the daemon-style
// defense against resource exhaustion, unbounded by default for embedded
// use (0 keeps a side's default).
func WithLimits(maxR, maxK int) Option {
	return func(c *openConfig) {
		if maxR > 0 {
			c.engine.MaxR = maxR
		}
		if maxK > 0 {
			c.engine.MaxK = maxK
		}
	}
}

// WithShards runs the Engine as an in-process replicate-sharded
// coordinator over n worker shards: every walk index is split into n
// disjoint replicate ranges, one per shard, so no single shard ever holds
// the full R replicates. Queries scatter to the shards and merge their
// integer partial sums exactly; answers are bit-identical to the unsharded
// Engine. n <= 1 means unsharded. Mutually exclusive with WithPeers.
func WithShards(n int) Option {
	return func(c *openConfig) { c.shards = n }
}

// WithPeers runs the Engine as a coordinator over remote rwdomd worker
// daemons at the given base URLs (one shard per peer), scattering
// replicate ranges to their /v1/partial endpoints. The local graph is used
// only for validation and merge bookkeeping; each peer must serve the same
// graph under the name "default" (Open's sole-graph name). Mutually
// exclusive with WithShards.
func WithPeers(urls ...string) Option {
	return func(c *openConfig) { c.peers = urls }
}

// WithAccuracy turns the adaptive replicate budget on for every Select whose
// request does not set its own Epsilon: SelectRequest.R becomes a cap, the
// walk index is materialized in replicate chunks, and each greedy round stops
// sampling as soon as a confidence interval on the separation between the
// leading candidate and the runner-up has half-width at most epsilon at
// confidence delta (split over the K rounds). Easy instances finish with a
// fraction of R and report EarlyStopped; hard instances spend the full R and
// report the interval they achieved (SelectResult.CIWidth) instead of
// failing silently. epsilon is in objective units (a per-replicate gain
// average) and must be > 0; delta must be in (0, 1) — 0.05 is the
// conventional choice. Adaptive selections always use the plain greedy
// driver and are bit-reproducible at every worker count. Incompatible with
// WithShards/WithPeers: Open fails, because no shard holds the full
// replicate range the stopping rule samples over.
func WithAccuracy(epsilon, delta float64) Option {
	return func(c *openConfig) {
		c.engine.DefaultEpsilon = epsilon
		c.engine.DefaultDelta = delta
	}
}

// WithAccuracyChunk overrides the replicate-chunk width adaptive selections
// materialize per extension step (0 means ceil(R/8)). Smaller chunks stop
// closer to the minimal sufficient sample at the cost of more sweep passes.
func WithAccuracyChunk(c0 int) Option {
	return func(c *openConfig) { c.engine.AccuracyChunk = c0 }
}

// defaultGraphName is the logical name Open registers its graph under; all
// request Graph fields may be left empty (sole-graph shorthand).
const defaultGraphName = "default"

// Open binds g to a new query Engine. The zero-option Engine is tuned for
// embedded use: no implicit timeouts, effectively unbounded request caps,
// all cores, memoized reads on. The daemon's stricter limits are opt-in
// through Options, as is replicate-sharded serving (WithShards, WithPeers).
func Open(g *Graph, opts ...Option) (*Engine, error) {
	if g == nil || g.N() == 0 {
		return nil, graph.ErrEmptyGraph
	}
	cfg := openConfig{engine: engine.Config{
		Graphs: map[string]*graph.Graph{defaultGraphName: g},
		// Embedded callers chose their parameters deliberately; caps exist
		// for network-facing deployments. (The greedy drivers still clamp
		// workers to the candidate count.)
		MaxR:       math.MaxInt32,
		MaxK:       math.MaxInt32,
		MaxWorkers: math.MaxInt32,
	}}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.shards > 1 && len(cfg.peers) > 0 {
		return nil, errors.New("rwdom: WithShards and WithPeers are mutually exclusive")
	}
	if cfg.engine.DefaultEpsilon > 0 && (cfg.shards > 1 || len(cfg.peers) > 0) {
		return nil, errors.New("rwdom: WithAccuracy is not supported on a sharded Engine (no shard holds the full replicate range)")
	}
	if cfg.shards > 1 || len(cfg.peers) > 0 {
		shardCfg := shard.Config{
			Graphs:         cfg.engine.Graphs,
			DefaultTimeout: cfg.engine.DefaultTimeout,
			MaxR:           cfg.engine.MaxR,
			MaxK:           cfg.engine.MaxK,
			// Align per-shard replicate spans to chunk multiples when a chunk
			// width is configured (harmless otherwise — still a partition).
			ChunkSize: cfg.engine.AccuracyChunk,
		}
		var co *shard.Coordinator
		var err error
		if cfg.shards > 1 {
			co, err = shard.NewLocal(shardCfg, cfg.shards, cfg.engine)
		} else {
			co, err = shard.NewRemote(shardCfg, cfg.peers)
		}
		if err != nil {
			return nil, err
		}
		return &Engine{coord: co, q: co}, nil
	}
	e, err := engine.New(cfg.engine)
	if err != nil {
		return nil, err
	}
	return &Engine{e: e, q: e}, nil
}

// Select runs one top-K selection. Identical concurrent Selects (same
// problem, budget and index identity) coalesce into a single computation;
// the walk index is built at most once per (L, R, seed) and shared with
// every other query. Canceling ctx aborts this caller's wait (and the
// computation itself once no caller is interested).
func (e *Engine) Select(ctx context.Context, req SelectRequest) (*SelectResult, error) {
	return e.q.Select(ctx, req)
}

// SelectStream is Select that emits each greedy round's pick as it is
// decided: emit receives Round events in round order and a non-nil emit
// error aborts the run. The returned result — and the concatenation of the
// emitted rounds — is bit-for-bit identical to the blocking Select result
// for the same request, for every worker count.
func (e *Engine) SelectStream(ctx context.Context, req SelectRequest, emit func(Round) error) (*SelectResult, error) {
	return e.q.SelectStream(ctx, req, emit)
}

// Gain returns the marginal gain of each candidate in req.Nodes against the
// seed set req.Set. After the first call for a set, the answer is a pure
// read of a frozen memoized D-table; empty-set calls are answered from the
// index's memoized empty-set gain vector.
func (e *Engine) Gain(ctx context.Context, req GainRequest) (*GainResult, error) {
	return e.q.Gain(ctx, req)
}

// Objective returns the estimated objective value of the seed set req.Set.
func (e *Engine) Objective(ctx context.Context, req ObjectiveRequest) (*ObjectiveResult, error) {
	return e.q.Objective(ctx, req)
}

// TopGains returns the req.B best candidates by marginal gain against
// req.Set (set members excluded), gain descending, ties by ascending id.
func (e *Engine) TopGains(ctx context.Context, req TopGainsRequest) (*TopGainsResult, error) {
	return e.q.TopGains(ctx, req)
}

// ApplyDelta applies one atomic mutation to the served graph and bumps its
// mutation epoch. The mutation is copy-on-write — concurrent queries that
// already resolved their snapshot finish against pre-mutation state,
// bit-identically — and resident walk indexes are repaired incrementally
// (cost proportional to the delta, not the graph), so mutating a warm
// Engine keeps it warm. Structural conflicts and a stale BaseEpoch fail
// with ErrConflict and apply nothing. On a sharded Engine the delta is
// broadcast to every shard before the call returns; a shard that fails to
// apply leaves the Engine answering reads with typed ErrStaleEpoch errors
// rather than silently merging mixed-epoch state.
func (e *Engine) ApplyDelta(ctx context.Context, req ApplyDeltaRequest) (*ApplyDeltaResult, error) {
	return e.q.ApplyDelta(ctx, req)
}

// AdoptIndex makes a pre-built index (BuildIndex / LoadIndexFile) servable
// by this Engine: queries against its (L, R, seed) identity become cache
// hits instead of rebuilding the walks. Sharded Engines build their
// range-partitioned indexes themselves and reject adoption.
func (e *Engine) AdoptIndex(ix *Index) error {
	if e.e == nil {
		return &engine.Error{Code: ErrBadRequest, Message: "AdoptIndex is not supported on a sharded Engine"}
	}
	return e.e.AdoptIndex(defaultGraphName, ix)
}

// Stats snapshots the Engine's cache and coalescing counters. A sharded
// Engine has no single cache; its counters live in ShardStats and the
// snapshot here is zero.
func (e *Engine) Stats() EngineStats {
	if e.e == nil {
		return EngineStats{}
	}
	return e.e.Stats()
}

// ShardStats snapshots the coordinator's scatter-gather counters — shard
// count, merges, retries, per-shard request tallies, merge latency. Nil for
// an unsharded Engine.
func (e *Engine) ShardStats() *ShardStats {
	if e.coord == nil {
		return nil
	}
	st := e.coord.Stats()
	return &st
}

// Close releases Engine resources: in-flight computations are aborted and
// resident indexes spill to the spill directory when one is configured.
// Idempotent.
func (e *Engine) Close() error {
	if e.coord != nil {
		return e.coord.Close()
	}
	return e.e.Close()
}

// strategyOf maps the legacy Lazy flag onto a Strategy.
func strategyOf(lazy bool) Strategy {
	if lazy {
		return Lazy
	}
	return Plain
}

// defaultEngineSelect routes one legacy facade selection through a
// throwaway default Engine — the migration shim path. The result is
// bit-for-bit what the old direct-core path computed (same index builder,
// same greedy drivers), with the old Selection timing semantics
// reconstructed from the engine's split timings.
func defaultEngineSelect(g *Graph, opts Options, p index.Problem) (*Selection, error) {
	en, err := Open(g, WithWorkers(opts.Workers))
	if err != nil {
		return nil, err
	}
	defer en.Close()
	res, err := en.Select(context.Background(), SelectRequest{
		Problem:  p,
		K:        opts.K,
		L:        opts.L,
		R:        opts.R,
		Seed:     opts.Seed,
		Strategy: strategyOf(opts.Lazy),
		Workers:  opts.Workers,
	})
	if err != nil {
		return nil, err
	}
	return selectionFromResult(res, p, res.IndexBuild), nil
}

// selectionFromResult converts an engine result back into the legacy
// Selection shape. buildTime follows the legacy convention of the call
// site: index materialization for whole-graph runs, D-table setup for
// shared-index runs.
func selectionFromResult(res *SelectResult, p index.Problem, buildTime time.Duration) *Selection {
	name := "ApproxF1"
	if p == index.Problem2 {
		name = "ApproxF2"
	}
	return &Selection{
		Algorithm:   name,
		Nodes:       res.Nodes,
		Gains:       res.Gains,
		Evaluations: res.Evaluations,
		BuildTime:   buildTime,
		SelectTime:  res.Select,
	}
}

// defaultEngineSelectWithIndex routes a legacy shared-index selection
// through a default Engine that adopts the caller's index.
func defaultEngineSelectWithIndex(ix *Index, p Problem, k int, lazy bool, workers int) (*Selection, error) {
	en, err := Open(ix.Graph(), WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	defer en.Close()
	if err := en.AdoptIndex(ix); err != nil {
		return nil, err
	}
	res, err := en.Select(context.Background(), SelectRequest{
		Problem:  p,
		K:        k,
		L:        ix.L(),
		R:        ix.R(),
		Seed:     ix.Seed(),
		Strategy: strategyOf(lazy),
		Workers:  workers,
	})
	if err != nil {
		return nil, err
	}
	return selectionFromResult(res, p, res.TableBuild), nil
}
