// Command rwdom selects random-walk domination targets on a graph.
//
// It reads an edge list (SNAP format) or generates a named dataset stand-in,
// runs the chosen selection algorithm, prints the selected nodes and both
// effectiveness metrics, and optionally writes the selection to a file.
// Approximate selections run through the rwdom.Open query engine; -stream
// prints each greedy round as it is decided (same final selection,
// bit-for-bit).
//
// Examples:
//
//	rwdom -graph web.txt -k 50 -L 6 -problem coverage
//	rwdom -dataset Epinions -scale 0.2 -k 100 -L 6 -algorithm approx
//	rwdom -dataset Epinions -scale 0.2 -k 100 -L 6 -algorithm approx -stream
//	rwdom -gen powerlaw -n 100000 -m 600000 -k 50 -problem hitting
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "path to an edge-list file (u v per line, # comments)")
		datasetN  = flag.String("dataset", "", "paper dataset stand-in: CAGrQc, CAHepPh, Brightkite or Epinions")
		scale     = flag.Float64("scale", 1.0, "dataset scale in (0,1]")
		gen       = flag.String("gen", "", "generate a graph: powerlaw or erdosrenyi (with -n, -m)")
		n         = flag.Int("n", 10000, "node count for -gen")
		m         = flag.Int("m", 50000, "edge count for -gen")
		k         = flag.Int("k", 10, "number of nodes to select")
		l         = flag.Int("L", 6, "random-walk length bound")
		r         = flag.Int("R", rwdom.DefaultR, "sample size per node for sampled algorithms")
		seed      = flag.Uint64("seed", 1, "random seed")
		problem   = flag.String("problem", "coverage", "objective: hitting (Problem 1) or coverage (Problem 2)")
		algorithm = flag.String("algorithm", "auto", "auto, dp, sampling, approx, degree or dominate")
		lazy      = flag.Bool("lazy", true, "use CELF lazy evaluation where valid")
		evalR     = flag.Int("evalR", 0, "if > 0, evaluate metrics by sampling with this R instead of exactly")
		out       = flag.String("o", "", "write selected node ids to this file, one per line")
		indexFile = flag.String("indexfile", "", "cache the walk index here: load if present, else build and save (approx only)")
		workers   = flag.Int("workers", 0, "goroutines for index construction and gain evaluation (0 = all cores); selections are identical for every value")
		analyze   = flag.Bool("analyze", false, "print structural statistics (clustering, assortativity, rich club) and exit")
		stream    = flag.Bool("stream", false, "print each greedy round as it is decided (approx algorithm only; same final selection)")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *datasetN, *scale, *gen, *n, *m, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Println(g)

	if *analyze {
		a, err := rwdom.AnalyzeGraph(g)
		if err != nil {
			fatal(err)
		}
		fmt.Println(a.Stats)
		fmt.Printf("clustering: global=%.4f meanLocal=%.4f\n", a.GlobalClustering, a.LocalClustering)
		fmt.Printf("degree assortativity: %.4f\n", a.Assortativity)
		fmt.Printf("rich club (degree > %d, top 1%%): %.4f\n", a.Top1pctDegreeCut, a.RichClubTop1pct)
		return
	}

	alg, err := parseAlgorithm(*algorithm)
	if err != nil {
		fatal(err)
	}
	opts := rwdom.Options{K: *k, L: *l, R: *r, Seed: *seed, Algorithm: alg, Lazy: *lazy, Workers: *workers}

	var prob rwdom.Problem
	switch strings.ToLower(*problem) {
	case "hitting", "1", "f1":
		prob = rwdom.Problem1
	case "coverage", "2", "f2":
		prob = rwdom.Problem2
	default:
		fatal(fmt.Errorf("unknown problem %q (want hitting or coverage)", *problem))
	}

	var sel *rwdom.Selection
	switch {
	case *stream:
		sel, err = streamSelect(g, prob, opts, *indexFile)
	case *indexFile != "":
		sel, err = selectWithCachedIndex(g, prob, opts, *indexFile)
	default:
		sel, err = rwdom.Solve(g, prob, opts)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println(sel)
	fmt.Printf("selected: %v\n", sel.Nodes)

	var metrics rwdom.Metrics
	if *evalR > 0 {
		metrics, err = rwdom.EvaluateSampled(g, sel.Nodes, *l, *evalR, *seed+1)
	} else {
		metrics, err = rwdom.EvaluateExact(g, sel.Nodes, *l)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println(metrics)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		for _, u := range sel.Nodes {
			fmt.Fprintln(f, u)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d node ids to %s\n", len(sel.Nodes), *out)
	}
}

// streamSelect runs the approximate selection through the query engine's
// streaming path, printing each greedy round as it is decided. The final
// selection is bit-for-bit what the blocking path returns.
func streamSelect(g *rwdom.Graph, prob rwdom.Problem, opts rwdom.Options, indexFile string) (*rwdom.Selection, error) {
	if opts.Algorithm != rwdom.AlgorithmApprox &&
		!(opts.Algorithm == rwdom.AlgorithmAuto && g.N() > 2000) {
		return nil, fmt.Errorf("-stream requires the approximate algorithm (got %v for %d nodes); pass -algorithm approx", opts.Algorithm, g.N())
	}
	if opts.R == 0 {
		opts.R = rwdom.DefaultR
	}
	en, err := rwdom.Open(g, rwdom.WithWorkers(opts.Workers))
	if err != nil {
		return nil, err
	}
	defer en.Close()
	if indexFile != "" {
		ix, err := loadOrBuildIndex(g, opts, indexFile)
		if err != nil {
			return nil, err
		}
		if err := en.AdoptIndex(ix); err != nil {
			return nil, err
		}
	}
	strategy := rwdom.Plain
	if opts.Lazy {
		strategy = rwdom.Lazy
	}
	res, err := en.SelectStream(context.Background(), rwdom.SelectRequest{
		Problem:  prob,
		K:        opts.K,
		L:        opts.L,
		R:        opts.R,
		Seed:     opts.Seed,
		Strategy: strategy,
		Workers:  opts.Workers,
	}, func(rd rwdom.Round) error {
		fmt.Printf("round %3d: node %7d  gain %12.4f  objective %14.4f\n", rd.Round, rd.Node, rd.Gain, rd.Objective)
		return nil
	})
	if err != nil {
		return nil, err
	}
	name := "ApproxF1"
	if prob == rwdom.Problem2 {
		name = "ApproxF2"
	}
	return &rwdom.Selection{
		Algorithm:   name,
		Nodes:       res.Nodes,
		Gains:       res.Gains,
		Evaluations: res.Evaluations,
		BuildTime:   res.IndexBuild + res.TableBuild,
		SelectTime:  res.Select,
	}, nil
}

// selectWithCachedIndex resolves the walk index through loadOrBuildIndex,
// then runs the approximate greedy selection over it through an Engine that
// adopts the index. opts.Workers drives both the build and the selection
// loop.
func selectWithCachedIndex(g *rwdom.Graph, prob rwdom.Problem, opts rwdom.Options, path string) (*rwdom.Selection, error) {
	ix, err := loadOrBuildIndex(g, opts, path)
	if err != nil {
		return nil, err
	}
	en, err := rwdom.Open(g, rwdom.WithWorkers(opts.Workers))
	if err != nil {
		return nil, err
	}
	defer en.Close()
	if err := en.AdoptIndex(ix); err != nil {
		return nil, err
	}
	strategy := rwdom.Plain
	if opts.Lazy {
		strategy = rwdom.Lazy
	}
	res, err := en.Select(context.Background(), rwdom.SelectRequest{
		Problem:  prob,
		K:        opts.K,
		L:        ix.L(),
		R:        ix.R(),
		Seed:     ix.Seed(),
		Strategy: strategy,
		Workers:  opts.Workers,
	})
	if err != nil {
		return nil, err
	}
	name := "ApproxF1"
	if prob == rwdom.Problem2 {
		name = "ApproxF2"
	}
	return &rwdom.Selection{
		Algorithm:   name,
		Nodes:       res.Nodes,
		Gains:       res.Gains,
		Evaluations: res.Evaluations,
		BuildTime:   res.TableBuild,
		SelectTime:  res.Select,
	}, nil
}

// loadOrBuildIndex loads the walk index from path if it exists (validating
// it against the graph), otherwise builds and saves it.
func loadOrBuildIndex(g *rwdom.Graph, opts rwdom.Options, path string) (*rwdom.Index, error) {
	if _, statErr := os.Stat(path); statErr == nil {
		loaded, err := rwdom.LoadIndexFile(path, g)
		if err != nil {
			// Unreadable cache (old format version, corruption, or an index
			// built on a different graph): rebuilding is cheap and always
			// what the user wants here, so warn and fall through.
			fmt.Fprintf(os.Stderr, "rwdom: cached index %s unusable (%v), rebuilding\n", path, err)
		} else if loaded.L() != opts.L || loaded.R() != opts.R {
			return nil, fmt.Errorf("cached index has L=%d R=%d, run requested L=%d R=%d (delete %s to rebuild)",
				loaded.L(), loaded.R(), opts.L, opts.R, path)
		} else {
			fmt.Printf("loaded index from %s (%d entries)\n", path, loaded.Entries())
			return loaded, nil
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	built, err := rwdom.BuildIndexParallel(g, opts.L, opts.R, opts.Seed, workers)
	if err != nil {
		return nil, err
	}
	if err := built.SaveFile(path); err != nil {
		return nil, err
	}
	fmt.Printf("built and saved index to %s (%d entries)\n", path, built.Entries())
	return built, nil
}

func loadGraph(path, ds string, scale float64, gen string, n, m int, seed uint64) (*rwdom.Graph, error) {
	sources := 0
	for _, s := range []string{path, ds, gen} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("specify exactly one of -graph, -dataset, -gen")
	}
	switch {
	case path != "":
		return rwdom.LoadEdgeListFile(path, rwdom.Undirected)
	case ds != "":
		return rwdom.LoadDataset(ds, scale)
	default:
		switch strings.ToLower(gen) {
		case "powerlaw":
			return rwdom.GeneratePowerLaw(n, m, seed)
		case "erdosrenyi":
			return rwdom.GenerateErdosRenyi(n, m, seed)
		default:
			return nil, fmt.Errorf("unknown generator %q (want powerlaw or erdosrenyi)", gen)
		}
	}
}

func parseAlgorithm(s string) (rwdom.Algorithm, error) {
	switch strings.ToLower(s) {
	case "auto":
		return rwdom.AlgorithmAuto, nil
	case "dp":
		return rwdom.AlgorithmDP, nil
	case "sampling":
		return rwdom.AlgorithmSampling, nil
	case "approx":
		return rwdom.AlgorithmApprox, nil
	case "degree":
		return rwdom.AlgorithmDegree, nil
	case "dominate":
		return rwdom.AlgorithmDominate, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rwdom:", err)
	os.Exit(1)
}
