package main

import (
	"path/filepath"
	"testing"

	"repro"
)

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]rwdom.Algorithm{
		"auto":     rwdom.AlgorithmAuto,
		"DP":       rwdom.AlgorithmDP,
		"Sampling": rwdom.AlgorithmSampling,
		"approx":   rwdom.AlgorithmApprox,
		"degree":   rwdom.AlgorithmDegree,
		"DOMINATE": rwdom.AlgorithmDominate,
	}
	for in, want := range cases {
		got, err := parseAlgorithm(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if got != want {
			t.Errorf("%q -> %v, want %v", in, got, want)
		}
	}
	if _, err := parseAlgorithm("quantum"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestLoadGraphSources(t *testing.T) {
	// Exactly one source must be specified.
	if _, err := loadGraph("", "", 1, "", 10, 20, 1); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadGraph("x.txt", "CAGrQc", 1, "", 10, 20, 1); err == nil {
		t.Error("two sources accepted")
	}
	// Generators.
	g, err := loadGraph("", "", 1, "powerlaw", 100, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Fatalf("powerlaw n=%d", g.N())
	}
	g, err = loadGraph("", "", 1, "erdosrenyi", 50, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 100 {
		t.Fatalf("erdosrenyi m=%d", g.M())
	}
	if _, err := loadGraph("", "", 1, "mystery", 10, 20, 1); err == nil {
		t.Error("unknown generator accepted")
	}
	// Dataset.
	g, err = loadGraph("", "CAGrQc", 0.05, "", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 262 {
		t.Fatalf("dataset n=%d", g.N())
	}
	// File.
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	orig, _ := rwdom.FromEdgeList(3, [][2]int{{0, 1}, {1, 2}})
	if err := orig.SaveEdgeListFile(path); err != nil {
		t.Fatal(err)
	}
	g, err = loadGraph(path, "", 1, "", 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("file graph %v", g)
	}
}

func TestSelectWithCachedIndex(t *testing.T) {
	g, err := rwdom.GeneratePowerLaw(200, 800, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cache.idx")
	opts := rwdom.Options{K: 4, L: 4, R: 20, Seed: 1, Lazy: true, Workers: 2}

	// First call builds and saves.
	first, err := selectWithCachedIndex(g, rwdom.Problem2, opts, path)
	if err != nil {
		t.Fatal(err)
	}
	// Second call loads and must select identically.
	second, err := selectWithCachedIndex(g, rwdom.Problem2, opts, path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.Nodes {
		if first.Nodes[i] != second.Nodes[i] {
			t.Fatal("cached index changed the selection")
		}
	}
	// Parameter mismatch is rejected with a helpful error.
	badOpts := opts
	badOpts.L = 7
	if _, err := selectWithCachedIndex(g, rwdom.Problem2, badOpts, path); err == nil {
		t.Error("L mismatch accepted")
	}
	badOpts = opts
	badOpts.R = 99
	if _, err := selectWithCachedIndex(g, rwdom.Problem2, badOpts, path); err == nil {
		t.Error("R mismatch accepted")
	}
}
