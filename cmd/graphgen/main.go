// Command graphgen generates synthetic graphs and writes them as edge lists.
//
// It produces the power-law graphs of the paper's evaluation (including the
// Table 2 dataset stand-ins and the Fig. 9 scalability suite) as well as
// uniform random graphs and structured fixtures.
//
// Examples:
//
//	graphgen -kind powerlaw -n 100000 -m 1000000 -o g.txt
//	graphgen -kind dataset -name Brightkite -scale 0.5 -o bk.txt
//	graphgen -kind scalability -index 3 -o g3.txt
//	graphgen -kind grid -rows 100 -cols 100 -o grid.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/dataset"
	"repro/internal/graph"
)

func main() {
	var (
		kind  = flag.String("kind", "powerlaw", "powerlaw, ba, erdosrenyi, dataset, scalability, grid, star, path, cycle, complete")
		n     = flag.Int("n", 10000, "node count")
		m     = flag.Int("m", 50000, "edge count (powerlaw, erdosrenyi)")
		mPer  = flag.Int("mper", 5, "edges per arriving node (ba)")
		name  = flag.String("name", "CAGrQc", "dataset name (dataset)")
		scale = flag.Float64("scale", 1.0, "dataset scale (dataset)")
		idx   = flag.Int("index", 1, "suite index 1..10 (scalability)")
		rows  = flag.Int("rows", 100, "grid rows")
		cols  = flag.Int("cols", 100, "grid cols")
		seed  = flag.Uint64("seed", 1, "random seed")
		out   = flag.String("o", "", "output file (default stdout)")
		stats = flag.Bool("stats", false, "print degree/connectivity statistics to stderr")
	)
	flag.Parse()

	g, err := generate(*kind, *n, *m, *mPer, *name, *scale, *idx, *rows, *cols, *seed)
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, g.ComputeStats())
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := g.WriteEdgeList(w); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s to %s\n", g, *out)
	}
}

func generate(kind string, n, m, mPer int, name string, scale float64, idx, rows, cols int, seed uint64) (*rwdom.Graph, error) {
	switch kind {
	case "powerlaw":
		return rwdom.GeneratePowerLaw(n, m, seed)
	case "ba":
		return rwdom.GenerateBarabasiAlbert(n, mPer, seed)
	case "erdosrenyi":
		return rwdom.GenerateErdosRenyi(n, m, seed)
	case "dataset":
		return rwdom.LoadDataset(name, scale)
	case "scalability":
		return dataset.Scalability(idx, scale)
	case "grid":
		return graph.Grid(rows, cols)
	case "star":
		return graph.Star(n)
	case "path":
		return graph.Path(n)
	case "cycle":
		return graph.Cycle(n)
	case "complete":
		return graph.Complete(n)
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
