package main

import "testing"

func TestGenerateKinds(t *testing.T) {
	cases := []struct {
		kind    string
		n, m    int
		wantN   int
		wantErr bool
	}{
		{kind: "powerlaw", n: 100, m: 300, wantN: 100},
		{kind: "ba", n: 100, m: 0, wantN: 100},
		{kind: "erdosrenyi", n: 50, m: 100, wantN: 50},
		{kind: "star", n: 10, wantN: 10},
		{kind: "path", n: 10, wantN: 10},
		{kind: "cycle", n: 10, wantN: 10},
		{kind: "complete", n: 6, wantN: 6},
		{kind: "nope", wantErr: true},
	}
	for _, tc := range cases {
		g, err := generate(tc.kind, tc.n, tc.m, 3, "CAGrQc", 1, 1, 10, 10, 1)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: expected error", tc.kind)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		if g.N() != tc.wantN {
			t.Errorf("%s: n=%d want %d", tc.kind, g.N(), tc.wantN)
		}
	}
}

func TestGenerateDatasetAndScalability(t *testing.T) {
	g, err := generate("dataset", 0, 0, 0, "CAHepPh", 0.02, 0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 240 {
		t.Fatalf("dataset stand-in n=%d", g.N())
	}
	g, err = generate("scalability", 0, 0, 0, "", 0.005, 2, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1000 {
		t.Fatalf("scalability G2 at 0.005 n=%d", g.N())
	}
	g, err = generate("grid", 0, 0, 0, "", 0, 0, 4, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 {
		t.Fatalf("grid n=%d", g.N())
	}
}
