// Command rwdomd is the random-walk-domination query-serving daemon: a
// thin HTTP codec over the transport-agnostic query engine
// (internal/engine). It loads graphs once at startup; the engine
// materializes walk indexes on demand into a refcounted LRU cache,
// memoizes per-set D-tables so repeated gain queries are pure reads, and
// coalesces identical concurrent selections. SIGTERM/SIGINT drain in-flight
// queries and spill resident indexes to the cache directory so a restart
// starts warm. Errors share one machine-readable JSON envelope
// ({"error":{"code","message"}}) on every path; the repro/client package
// is the typed Go SDK for this daemon.
//
// Examples:
//
//	rwdomd -dataset Epinions:0.2 -listen :7474
//	rwdomd -graph web=web.txt -graph social=social.txt -spill /var/cache/rwdomd
//	rwdomd -dataset CAGrQc -cache 4 -evict-every 10m -drain 30s -memo 256
//	rwdomd -dataset Epinions -index-bytes 2GiB -memo-bytes 256MiB
//	rwdomd -dataset Epinions -spill /var/cache/rwdomd -mmap   # O(1) page-in warm restarts
//	rwdomd -dataset Epinions -spill /var/cache/rwdomd -spill-format v7   # legacy spill format
//
// Replicate-sharded serving splits the R walk replicates across shards and
// merges their integer partial sums exactly, so sharded answers are
// bit-identical to unsharded ones. -shards runs coordinator and workers in
// one process (each worker holds 1/N of every index); -peer points a
// coordinator at separate worker daemons, which serve the /v1/partial range
// endpoints:
//
//	rwdomd -dataset Epinions -shards 4
//	rwdomd -dataset Epinions -peer http://worker0:7474 -peer http://worker1:7474
//
// Adaptive accuracy budgets (-epsilon, optional -delta) turn the per-request
// R into a cap: the walk index is materialized in replicate chunks and each
// greedy round stops sampling once a confidence interval on the leader's
// separation beats epsilon, so easy graphs finish with a fraction of R while
// hard graphs spend the cap and report the interval they achieved (the
// reply's "accuracy" block). Requests may also opt in per call with
// "epsilon"/"delta" body fields. Not available on sharded deployments (501
// "unsupported"):
//
//	rwdomd -dataset Epinions -epsilon 0.5 -delta 0.05
//	curl -s localhost:7474/v1/select -d '{"graph":"Epinions","k":10,"L":6,"epsilon":0.5}'
//
// Query it with curl:
//
//	curl -s localhost:7474/v1/select -d '{"graph":"Epinions","problem":"coverage","k":10,"L":6}'
//	curl -sN 'localhost:7474/v1/select?stream=1' -d '{"graph":"Epinions","k":10,"L":6}'   # NDJSON round events
//	curl -s 'localhost:7474/v1/gain?graph=Epinions&L=6&set=1,2&nodes=7,9'
//	curl -s 'localhost:7474/v1/topgains?graph=Epinions&L=6&set=1,2&b=10'
//	curl -s -X POST localhost:7474/v1/graph/Epinions/edges -d '{"add":[{"u":11,"v":17}]}'   # mutate: bumps the epoch, repairs warm indexes
//	curl -s localhost:7474/stats
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/server"
)

// stringList is a repeatable flag.
type stringList []string

func (l *stringList) String() string     { return strings.Join(*l, ",") }
func (l *stringList) Set(v string) error { *l = append(*l, v); return nil }

// byteSize is a memory-budget flag: a non-negative integer with an optional
// binary suffix (KiB/MiB/GiB/TiB, or the lazy forms K/M/G/T), e.g. "2GiB",
// "512MiB", "1048576". 0 means unbounded.
type byteSize int64

func (b *byteSize) String() string { return strconv.FormatInt(int64(*b), 10) }

func (b *byteSize) Set(v string) error {
	n, err := parseByteSize(v)
	if err != nil {
		return err
	}
	*b = byteSize(n)
	return nil
}

// parseByteSize parses "512MiB"-style sizes into bytes.
func parseByteSize(v string) (int64, error) {
	s := strings.TrimSpace(v)
	shift := 0
	for _, u := range []struct {
		suffix string
		shift  int
	}{
		{"KiB", 10}, {"MiB", 20}, {"GiB", 30}, {"TiB", 40},
		{"K", 10}, {"M", 20}, {"G", 30}, {"T", 40},
	} {
		if strings.HasSuffix(s, u.suffix) {
			s, shift = strings.TrimSuffix(s, u.suffix), u.shift
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad size %q: want a non-negative integer with optional KiB/MiB/GiB/TiB suffix", v)
	}
	if n > (1<<63-1)>>shift {
		return 0, fmt.Errorf("size %q overflows", v)
	}
	return n << shift, nil
}

func main() {
	var (
		graphFlags   stringList
		datasetFlags stringList
		peerFlags    stringList
	)
	flag.Var(&graphFlags, "graph", "serve an edge-list file as name=path (repeatable)")
	flag.Var(&datasetFlags, "dataset", "serve a paper dataset stand-in as name[:scale] (repeatable; CAGrQc, CAHepPh, Brightkite, Epinions)")
	flag.Var(&peerFlags, "peer", "serve as a coordinator over this worker daemon's base URL (repeatable; replicate ranges are split across peers)")
	var (
		listen     = flag.String("listen", ":7474", "HTTP listen address")
		cacheSize  = flag.Int("cache", 8, "max resident walk indexes (<0 = unbounded)")
		spillDir   = flag.String("spill", "", "directory for evicted/shutdown index spills (empty = disabled)")
		spillFmt   = flag.String("spill-format", "v8", "on-disk format spills are written in: v8 (compressed store container), v8raw (raw page-aligned sections), or v7 (legacy); loads accept every format")
		mmapSpills = flag.Bool("mmap", false, "serve v8 spill loads off a read-only memory mapping (page-in warm restarts, mapped indexes cost ~nothing against -index-bytes)")
		workers    = flag.Int("workers", 0, "default per-request workers (0 = all cores)")
		maxWorkers = flag.Int("max-workers", 0, "cap on the per-request workers knob (0 = all cores)")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request timeout")
		maxTimeout = flag.Duration("max-timeout", 5*time.Minute, "cap on the per-request timeout knob")
		drain      = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain budget for in-flight queries")
		evictEvery = flag.Duration("evict-every", 0, "evict indexes idle for one full interval (0 = disabled)")
		maxR       = flag.Int("max-R", 1000, "cap on the per-request sample size R")
		maxK       = flag.Int("max-k", 10000, "cap on the per-request budget k")
		memoSize   = flag.Int("memo", 128, "max memoized per-set D-tables for the gain read path (<0 = unbounded)")
		noMemo     = flag.Bool("no-memo", false, "disable the memoized gain read path (every gain/objective/topgains request replays its set)")
		maxConc    = flag.Int("max-concurrent", 0, "concurrent heavy computations admitted (0 = 2x cores, <0 = unbounded); excess requests queue then shed with 503 overloaded")
		maxQueue   = flag.Int("max-queue", 0, "requests allowed to wait for a computation slot (0 = 8x slots)")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint attached to shed (503 overloaded) responses")
		shards     = flag.Int("shards", 0, "run an in-process replicate-sharded coordinator with this many worker shards (0 or 1 = unsharded)")
		epsilon    = flag.Float64("epsilon", 0, "default accuracy target: adaptive replicate budgets stop each greedy round once the leader's separation CI half-width is <= epsilon (0 = off; R becomes a cap; incompatible with -shards/-peer)")
		delta      = flag.Float64("delta", 0, "confidence for -epsilon (and per-request epsilons): each round's CI holds with probability >= 1-delta/k (0 = 0.05)")
		accChunk   = flag.Int("accuracy-chunk", 0, "replicate-chunk width adaptive runs build per step (0 = R/8, rounded up); in sharded mode, aligns per-worker replicate spans to this multiple")
	)
	var indexBytes, memoBytes byteSize
	flag.Var(&indexBytes, "index-bytes", "heap budget for resident walk indexes, e.g. 2GiB or 512MiB (0 = unbounded)")
	flag.Var(&memoBytes, "memo-bytes", "heap budget for memoized D-tables, e.g. 256MiB (0 = unbounded)")
	flag.Parse()

	graphs, err := loadGraphs(graphFlags, datasetFlags)
	if err != nil {
		fatal(err)
	}
	if len(graphs) == 0 {
		fatal(fmt.Errorf("no graphs to serve: pass at least one -graph or -dataset"))
	}
	for name, g := range graphs {
		log.Printf("graph %q: %v", name, g)
	}

	s, err := server.New(server.Config{
		Graphs:         graphs,
		CacheSize:      *cacheSize,
		IndexBytes:     int64(indexBytes),
		SpillDir:       *spillDir,
		SpillFormat:    *spillFmt,
		MmapSpills:     *mmapSpills,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		DrainTimeout:   *drain,
		EvictInterval:  *evictEvery,
		DefaultWorkers: *workers,
		MaxWorkers:     *maxWorkers,
		MaxR:           *maxR,
		MaxK:           *maxK,
		MemoSize:       *memoSize,
		MemoBytes:      int64(memoBytes),
		DisableMemo:    *noMemo,
		MaxConcurrent:  *maxConc,
		MaxQueue:       *maxQueue,
		RetryAfterHint: *retryAfter,
		Shards:         *shards,
		Peers:          peerFlags,
		DefaultEpsilon: *epsilon,
		DefaultDelta:   *delta,
		AccuracyChunk:  *accChunk,
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	log.Printf("rwdomd listening on %s (%d graphs, cache %d, spill %q)", *listen, len(graphs), *cacheSize, *spillDir)
	if err := s.ListenAndServe(ctx, *listen); err != nil {
		fatal(err)
	}
	log.Printf("rwdomd: drained and stopped")
}

// loadGraphs resolves the -graph and -dataset flags into named graphs.
func loadGraphs(graphFlags, datasetFlags stringList) (map[string]*graph.Graph, error) {
	graphs := make(map[string]*graph.Graph)
	add := func(name string, g *graph.Graph, err error) error {
		if err != nil {
			return fmt.Errorf("graph %q: %w", name, err)
		}
		if _, dup := graphs[name]; dup {
			return fmt.Errorf("duplicate graph name %q", name)
		}
		graphs[name] = g
		return nil
	}
	for _, spec := range graphFlags {
		name, path, err := parseGraphSpec(spec)
		if err != nil {
			return nil, err
		}
		g, err := graph.LoadEdgeListFile(path, graph.Undirected)
		if err := add(name, g, err); err != nil {
			return nil, err
		}
	}
	for _, spec := range datasetFlags {
		name, scale, err := parseDatasetSpec(spec)
		if err != nil {
			return nil, err
		}
		g, err := dataset.Load(name, scale)
		if err := add(name, g, err); err != nil {
			return nil, err
		}
	}
	return graphs, nil
}

// parseGraphSpec splits "name=path".
func parseGraphSpec(spec string) (name, path string, err error) {
	name, path, ok := strings.Cut(spec, "=")
	if !ok || name == "" || path == "" {
		return "", "", fmt.Errorf("bad -graph %q: want name=path", spec)
	}
	return name, path, nil
}

// parseDatasetSpec splits "name[:scale]"; scale defaults to 1.
func parseDatasetSpec(spec string) (name string, scale float64, err error) {
	name, scaleStr, has := strings.Cut(spec, ":")
	if name == "" {
		return "", 0, fmt.Errorf("bad -dataset %q: want name[:scale]", spec)
	}
	scale = 1
	if has {
		scale, err = strconv.ParseFloat(scaleStr, 64)
		if err != nil || scale <= 0 || scale > 1 {
			return "", 0, fmt.Errorf("bad -dataset %q: scale must be in (0,1]", spec)
		}
	}
	return name, scale, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rwdomd:", err)
	os.Exit(1)
}
