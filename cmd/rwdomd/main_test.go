package main

import "testing"

func TestParseGraphSpec(t *testing.T) {
	name, path, err := parseGraphSpec("web=data/web.txt")
	if err != nil || name != "web" || path != "data/web.txt" {
		t.Fatalf("parseGraphSpec = %q, %q, %v", name, path, err)
	}
	for _, bad := range []string{"", "web", "=path", "name="} {
		if _, _, err := parseGraphSpec(bad); err == nil {
			t.Errorf("parseGraphSpec(%q): expected error", bad)
		}
	}
}

func TestParseDatasetSpec(t *testing.T) {
	name, scale, err := parseDatasetSpec("Epinions:0.2")
	if err != nil || name != "Epinions" || scale != 0.2 {
		t.Fatalf("parseDatasetSpec = %q, %v, %v", name, scale, err)
	}
	name, scale, err = parseDatasetSpec("CAGrQc")
	if err != nil || name != "CAGrQc" || scale != 1 {
		t.Fatalf("parseDatasetSpec default scale = %q, %v, %v", name, scale, err)
	}
	for _, bad := range []string{"", ":0.5", "X:0", "X:1.5", "X:nope"} {
		if _, _, err := parseDatasetSpec(bad); err == nil {
			t.Errorf("parseDatasetSpec(%q): expected error", bad)
		}
	}
}

func TestParseByteSize(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"1048576", 1 << 20},
		{"2KiB", 2 << 10},
		{"512MiB", 512 << 20},
		{"2GiB", 2 << 30},
		{"1TiB", 1 << 40},
		{"512M", 512 << 20},
		{"3G", 3 << 30},
		{" 4K ", 4 << 10},
	} {
		got, err := parseByteSize(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("parseByteSize(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "-1", "x", "1XB", "9999999999GiB", "1.5GiB"} {
		if _, err := parseByteSize(bad); err == nil {
			t.Errorf("parseByteSize(%q): expected error", bad)
		}
	}
}

func TestLoadGraphsDatasets(t *testing.T) {
	graphs, err := loadGraphs(nil, stringList{"CAGrQc:0.05"})
	if err != nil {
		t.Fatal(err)
	}
	if g := graphs["CAGrQc"]; g == nil || g.N() == 0 {
		t.Fatalf("dataset graph not loaded: %v", graphs)
	}
	if _, err := loadGraphs(nil, stringList{"CAGrQc:0.05", "CAGrQc:0.1"}); err == nil {
		t.Fatal("duplicate names: expected error")
	}
	if _, err := loadGraphs(stringList{"x=/does/not/exist"}, nil); err == nil {
		t.Fatal("missing file: expected error")
	}
}
