package main

import "testing"

func TestParseGraphSpec(t *testing.T) {
	name, path, err := parseGraphSpec("web=data/web.txt")
	if err != nil || name != "web" || path != "data/web.txt" {
		t.Fatalf("parseGraphSpec = %q, %q, %v", name, path, err)
	}
	for _, bad := range []string{"", "web", "=path", "name="} {
		if _, _, err := parseGraphSpec(bad); err == nil {
			t.Errorf("parseGraphSpec(%q): expected error", bad)
		}
	}
}

func TestParseDatasetSpec(t *testing.T) {
	name, scale, err := parseDatasetSpec("Epinions:0.2")
	if err != nil || name != "Epinions" || scale != 0.2 {
		t.Fatalf("parseDatasetSpec = %q, %v, %v", name, scale, err)
	}
	name, scale, err = parseDatasetSpec("CAGrQc")
	if err != nil || name != "CAGrQc" || scale != 1 {
		t.Fatalf("parseDatasetSpec default scale = %q, %v, %v", name, scale, err)
	}
	for _, bad := range []string{"", ":0.5", "X:0", "X:1.5", "X:nope"} {
		if _, _, err := parseDatasetSpec(bad); err == nil {
			t.Errorf("parseDatasetSpec(%q): expected error", bad)
		}
	}
}

func TestLoadGraphsDatasets(t *testing.T) {
	graphs, err := loadGraphs(nil, stringList{"CAGrQc:0.05"})
	if err != nil {
		t.Fatal(err)
	}
	if g := graphs["CAGrQc"]; g == nil || g.N() == 0 {
		t.Fatalf("dataset graph not loaded: %v", graphs)
	}
	if _, err := loadGraphs(nil, stringList{"CAGrQc:0.05", "CAGrQc:0.1"}); err == nil {
		t.Fatal("duplicate names: expected error")
	}
	if _, err := loadGraphs(stringList{"x=/does/not/exist"}, nil); err == nil {
		t.Fatal("missing file: expected error")
	}
}
