package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark measurement, either parsed from `go test -bench`
// output or read from a baseline JSON file.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// Baseline mirrors the JSON bench.sh writes (BENCH_PR*.json).
type Baseline struct {
	Record     string   `json:"record"`
	Go         string   `json:"go"`
	Benchtime  string   `json:"benchtime"`
	Benchmarks []Result `json:"benchmarks"`
}

// ParseBaseline decodes a bench.sh JSON file.
func ParseBaseline(data []byte) (*Baseline, error) {
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchcheck: bad baseline JSON: %w", err)
	}
	if len(b.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchcheck: baseline %q has no benchmarks", b.Record)
	}
	return &b, nil
}

// ParseBaselineFormat decodes a baseline in the given format: "json" is a
// bench.sh record, "bench" is the raw output of a `go test -bench` run (the
// same-job old-vs-new gate benchmarks the base commit in CI and feeds the
// output straight in; name labels the synthesized record, conventionally
// the baseline file path).
func ParseBaselineFormat(data []byte, format, name string) (*Baseline, error) {
	switch format {
	case "json":
		return ParseBaseline(data)
	case "bench":
		results, err := ParseBenchOutput(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		if len(results) == 0 {
			return nil, fmt.Errorf("benchcheck: baseline %q contains no benchmark results", name)
		}
		return &Baseline{Record: name, Benchmarks: results}, nil
	default:
		return nil, fmt.Errorf("benchcheck: unknown baseline format %q (want json or bench)", format)
	}
}

// ParseBenchOutput extracts ns/op measurements from `go test -bench` text
// output. Lines that are not benchmark results are ignored.
func ParseBenchOutput(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		out = append(out, Result{Name: fields[0], Iterations: iters, NsPerOp: ns})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchcheck: reading bench output: %w", err)
	}
	return out, nil
}

// procsSuffix matches the trailing "-N" GOMAXPROCS suffix Go appends to
// benchmark names.
var procsSuffix = regexp.MustCompile(`-\d+$`)

// normalizeName strips the GOMAXPROCS suffix so a baseline recorded on a
// 2-core box compares against a run on an 8-core CI runner
// ("BenchmarkX/F1/workers=1-2" and "...-8" are the same benchmark; the
// explicit "workers=N" sub-name is untouched, so per-worker-count series
// stay distinct).
func normalizeName(name string) string {
	return procsSuffix.ReplaceAllString(name, "")
}

// Comparison is one baseline-vs-current pairing.
type Comparison struct {
	Name       string // normalized
	BaselineNs float64
	CurrentNs  float64
	Ratio      float64 // CurrentNs / BaselineNs
	Regression bool    // Ratio exceeds 1 + tolerance
}

// RenameMap maps current benchmark name prefixes onto the baseline names
// they should be gated against — how a renamed (or extracted) benchmark
// proves itself against its predecessor's numbers in the same-job gate.
// Keys and values are name prefixes up to a "/" sub-benchmark boundary:
// "BenchmarkEngineWarmGain=BenchmarkWarmGainRequest" pairs
// BenchmarkEngineWarmGain/memo=on with BenchmarkWarmGainRequest/memo=on.
type RenameMap map[string]string

// ParseRenameMap parses a comma-separated list of new=old pairs.
func ParseRenameMap(s string) (RenameMap, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	m := make(RenameMap)
	for _, pair := range strings.Split(s, ",") {
		newName, oldName, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || newName == "" || oldName == "" {
			return nil, fmt.Errorf("benchcheck: bad -map entry %q (want new=old)", pair)
		}
		m[newName] = oldName
	}
	return m, nil
}

// apply rewrites a normalized current name onto its baseline name, if a
// prefix mapping matches.
func (m RenameMap) apply(name string) string {
	if m == nil {
		return name
	}
	prefix, rest, hasSub := strings.Cut(name, "/")
	old, ok := m[prefix]
	if !ok {
		return name
	}
	if hasSub {
		return old + "/" + rest
	}
	return old
}

// Compare pairs current results with the baseline by normalized name
// (after applying renames), restricted to names matching pattern, and flags
// every current measurement more than tolerance (a fraction, e.g. 0.25 for
// +25% ns/op) slower than its baseline. Current results without a baseline
// entry are skipped and returned in `skipped` (the benchmark may be new, or
// the CI core count may enumerate worker counts the baseline box didn't
// have). It is an error if nothing at all can be compared — that usually
// means a pattern typo.
func Compare(baseline, current []Result, pattern *regexp.Regexp, tolerance float64, renames RenameMap) (comparisons []Comparison, skipped []string, err error) {
	if tolerance < 0 {
		return nil, nil, fmt.Errorf("benchcheck: negative tolerance %v", tolerance)
	}
	base := make(map[string]Result, len(baseline))
	for _, b := range baseline {
		base[normalizeName(b.Name)] = b
	}
	for _, c := range current {
		name := normalizeName(c.Name)
		if !pattern.MatchString(name) {
			continue
		}
		b, ok := base[renames.apply(name)]
		if !ok {
			skipped = append(skipped, name)
			continue
		}
		if b.NsPerOp <= 0 {
			skipped = append(skipped, name)
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		comparisons = append(comparisons, Comparison{
			Name:       name,
			BaselineNs: b.NsPerOp,
			CurrentNs:  c.NsPerOp,
			Ratio:      ratio,
			Regression: ratio > 1+tolerance,
		})
	}
	if len(comparisons) == 0 {
		return nil, skipped, fmt.Errorf("benchcheck: no current benchmark matching %q has a baseline entry (skipped: %v)", pattern, skipped)
	}
	return comparisons, skipped, nil
}

// Regressions filters the flagged comparisons.
func Regressions(comparisons []Comparison) []Comparison {
	var out []Comparison
	for _, c := range comparisons {
		if c.Regression {
			out = append(out, c)
		}
	}
	return out
}

// Render writes a human-readable comparison table.
func Render(w io.Writer, record string, comparisons []Comparison, skipped []string, tolerance float64) {
	fmt.Fprintf(w, "baseline: %s (tolerance +%.0f%% ns/op)\n", record, tolerance*100)
	width := len("benchmark")
	for _, c := range comparisons {
		if len(c.Name) > width {
			width = len(c.Name)
		}
	}
	fmt.Fprintf(w, "%-*s  %14s  %14s  %7s\n", width, "benchmark", "baseline ns/op", "current ns/op", "ratio")
	for _, c := range comparisons {
		flag := ""
		if c.Regression {
			flag = "  REGRESSION"
		}
		fmt.Fprintf(w, "%-*s  %14.0f  %14.0f  %6.2fx%s\n", width, c.Name, c.BaselineNs, c.CurrentNs, c.Ratio, flag)
	}
	for _, s := range skipped {
		fmt.Fprintf(w, "skipped (no baseline entry): %s\n", s)
	}
}
