// Command benchcheck is the CI benchmark-regression gate: it compares a
// `go test -bench` run against a baseline and exits non-zero if any
// benchmark regressed beyond the tolerance. The baseline is either a JSON
// record written by bench.sh (BENCH_PR*.json, -baseline-format json) or the
// raw output of a `go test -bench` run (-baseline-format bench) — the
// latter is what CI uses for same-job old-vs-new gating: check out the base
// commit, benchmark it on the very runner that benchmarks the head, and
// compare the two runs, so runner-hardware variance cancels instead of
// eating into the tolerance.
//
// Names are compared with the trailing GOMAXPROCS suffix stripped, so a
// baseline recorded on a 2-core developer box gates runs on CI machines with
// any core count. Current benchmarks without a baseline entry are reported
// and skipped, not failed — new benchmarks should not break the gate.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkSelectionEndToEnd -benchtime 3x . |
//	    go run ./cmd/benchcheck -baseline BENCH_PR1.json -pattern BenchmarkSelectionEndToEnd
//
//	go run ./cmd/benchcheck -baseline bench-base.out -baseline-format bench \
//	    -input bench-head.out -tolerance 0.25
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
)

func main() {
	var (
		baselinePath   = flag.String("baseline", "", "baseline file (required): bench.sh JSON or raw bench output, per -baseline-format")
		baselineFormat = flag.String("baseline-format", "json", "baseline file format: json (bench.sh record) or bench (raw `go test -bench` output)")
		inputPath      = flag.String("input", "-", "go test -bench output to check ('-' = stdin)")
		patternStr     = flag.String("pattern", "BenchmarkSelectionEndToEnd", "regexp selecting which benchmarks to gate")
		tolerance      = flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression (0.25 = +25%)")
		mapStr         = flag.String("map", "", "comma-separated new=old benchmark renames: gate a renamed/extracted benchmark against its predecessor's baseline entry (sub-benchmark suffixes carry over)")
	)
	flag.Parse()
	if *baselinePath == "" {
		fatal(fmt.Errorf("-baseline is required"))
	}
	pattern, err := regexp.Compile(*patternStr)
	if err != nil {
		fatal(fmt.Errorf("bad -pattern: %w", err))
	}
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	baseline, err := ParseBaselineFormat(data, *baselineFormat, *baselinePath)
	if err != nil {
		fatal(err)
	}
	var in io.Reader = os.Stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	current, err := ParseBenchOutput(in)
	if err != nil {
		fatal(err)
	}
	renames, err := ParseRenameMap(*mapStr)
	if err != nil {
		fatal(err)
	}
	comparisons, skipped, err := Compare(baseline.Benchmarks, current, pattern, *tolerance, renames)
	if err != nil {
		fatal(err)
	}
	Render(os.Stdout, baseline.Record, comparisons, skipped, *tolerance)
	if regs := Regressions(comparisons); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d benchmark(s) regressed beyond +%.0f%%\n", len(regs), *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d benchmark(s) within tolerance\n", len(comparisons))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
