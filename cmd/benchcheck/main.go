// Command benchcheck is the CI benchmark-regression gate: it compares a
// `go test -bench` run against a recorded baseline (the BENCH_PR*.json files
// bench.sh writes) and exits non-zero if any benchmark regressed beyond the
// tolerance.
//
// Names are compared with the trailing GOMAXPROCS suffix stripped, so a
// baseline recorded on a 2-core developer box gates runs on CI machines with
// any core count. Current benchmarks without a baseline entry are reported
// and skipped, not failed — new benchmarks should not break the gate.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkSelectionEndToEnd -benchtime 3x . |
//	    go run ./cmd/benchcheck -baseline BENCH_PR1.json -pattern BenchmarkSelectionEndToEnd
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "baseline JSON file written by bench.sh (required)")
		inputPath    = flag.String("input", "-", "go test -bench output to check ('-' = stdin)")
		patternStr   = flag.String("pattern", "BenchmarkSelectionEndToEnd", "regexp selecting which benchmarks to gate")
		tolerance    = flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression (0.25 = +25%)")
	)
	flag.Parse()
	if *baselinePath == "" {
		fatal(fmt.Errorf("-baseline is required"))
	}
	pattern, err := regexp.Compile(*patternStr)
	if err != nil {
		fatal(fmt.Errorf("bad -pattern: %w", err))
	}
	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	baseline, err := ParseBaseline(data)
	if err != nil {
		fatal(err)
	}
	var in io.Reader = os.Stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	current, err := ParseBenchOutput(in)
	if err != nil {
		fatal(err)
	}
	comparisons, skipped, err := Compare(baseline.Benchmarks, current, pattern, *tolerance)
	if err != nil {
		fatal(err)
	}
	Render(os.Stdout, baseline.Record, comparisons, skipped, *tolerance)
	if regs := Regressions(comparisons); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d benchmark(s) regressed beyond +%.0f%%\n", len(regs), *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d benchmark(s) within tolerance\n", len(comparisons))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
