package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: some CPU @ 2.00GHz
BenchmarkSelectionEndToEnd/F1/workers=1-8         	       3	330000000 ns/op
BenchmarkSelectionEndToEnd/F1/workers=2-8         	       3	260000000 ns/op
BenchmarkSelectionEndToEnd/F2/workers=1-8         	       3	500000000 ns/op
BenchmarkSelectionEndToEnd/F2/workers=8-8         	       3	100000000 ns/op
BenchmarkIndexBuild/workers=1-8                   	       3	44000000 ns/op	1234 B/op	5 allocs/op
--- BENCH: some noise line
PASS
ok  	repro	10.000s
`

const sampleBaseline = `{
  "record": "PR1 parallel batched gain engine",
  "go": "go1.24.0",
  "benchtime": "3x",
  "benchmarks": [
    {"name": "BenchmarkSelectionEndToEnd/F1/workers=1-2", "iterations": 3, "ns_per_op": 327175122},
    {"name": "BenchmarkSelectionEndToEnd/F1/workers=2-2", "iterations": 3, "ns_per_op": 256983079},
    {"name": "BenchmarkSelectionEndToEnd/F2/workers=1-2", "iterations": 3, "ns_per_op": 329812997},
    {"name": "BenchmarkIndexBuild/workers=1-2", "iterations": 3, "ns_per_op": 43768968}
  ]
}`

func TestParseBenchOutput(t *testing.T) {
	results, err := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("parsed %d results, want 5: %+v", len(results), results)
	}
	if results[0].Name != "BenchmarkSelectionEndToEnd/F1/workers=1-8" ||
		results[0].Iterations != 3 || results[0].NsPerOp != 330000000 {
		t.Fatalf("first result = %+v", results[0])
	}
	// Lines with extra -benchmem columns still parse.
	if results[4].Name != "BenchmarkIndexBuild/workers=1-8" || results[4].NsPerOp != 44000000 {
		t.Fatalf("benchmem-style result = %+v", results[4])
	}
}

func TestParseBaseline(t *testing.T) {
	b, err := ParseBaseline([]byte(sampleBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if b.Record != "PR1 parallel batched gain engine" || len(b.Benchmarks) != 4 {
		t.Fatalf("baseline = %+v", b)
	}
	if _, err := ParseBaseline([]byte(`{"record":"empty","benchmarks":[]}`)); err == nil {
		t.Fatal("empty baseline accepted")
	}
	if _, err := ParseBaseline([]byte(`not json`)); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestParseBaselineFormat(t *testing.T) {
	// json: delegates to ParseBaseline.
	b, err := ParseBaselineFormat([]byte(sampleBaseline), "json", "BENCH_PR1.json")
	if err != nil {
		t.Fatal(err)
	}
	if b.Record != "PR1 parallel batched gain engine" {
		t.Fatalf("json baseline = %+v", b)
	}
	// bench: a raw `go test -bench` run becomes the baseline — the same-job
	// old-vs-new CI gate feeds the base commit's output in directly.
	b, err = ParseBaselineFormat([]byte(sampleBenchOutput), "bench", "bench-base.out")
	if err != nil {
		t.Fatal(err)
	}
	if b.Record != "bench-base.out" || len(b.Benchmarks) != 5 {
		t.Fatalf("bench baseline = %+v", b)
	}
	if b.Benchmarks[0].Name != "BenchmarkSelectionEndToEnd/F1/workers=1-8" || b.Benchmarks[0].NsPerOp != 330000000 {
		t.Fatalf("bench baseline first entry = %+v", b.Benchmarks[0])
	}
	if _, err := ParseBaselineFormat([]byte("PASS\nok\n"), "bench", "empty.out"); err == nil {
		t.Fatal("bench baseline with no results accepted")
	}
	if _, err := ParseBaselineFormat([]byte(sampleBaseline), "yaml", "x"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// A bench-format baseline compares against the current run exactly like a
// JSON one, including GOMAXPROCS normalization across the two runs.
func TestCompareAgainstBenchFormatBaseline(t *testing.T) {
	base, err := ParseBaselineFormat([]byte(sampleBenchOutput), "bench", "base")
	if err != nil {
		t.Fatal(err)
	}
	// A head run 10% slower on one benchmark, measured on a different core
	// count (suffix -4 vs the baseline's -8).
	head := `BenchmarkSelectionEndToEnd/F1/workers=1-4 3 363000000 ns/op
BenchmarkSelectionEndToEnd/F2/workers=1-4 3 500000000 ns/op
`
	cur, err := ParseBenchOutput(strings.NewReader(head))
	if err != nil {
		t.Fatal(err)
	}
	comparisons, skipped, err := Compare(base.Benchmarks, cur, regexp.MustCompile("BenchmarkSelectionEndToEnd"), 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(comparisons) != 2 || len(skipped) != 0 {
		t.Fatalf("comparisons = %+v, skipped = %v", comparisons, skipped)
	}
	if regs := Regressions(comparisons); len(regs) != 0 {
		t.Fatalf("10%% drift flagged at 25%% tolerance: %+v", regs)
	}
	comparisons, _, err = Compare(base.Benchmarks, cur, regexp.MustCompile("BenchmarkSelectionEndToEnd"), 0.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	if regs := Regressions(comparisons); len(regs) != 1 || regs[0].Name != "BenchmarkSelectionEndToEnd/F1/workers=1" {
		t.Fatalf("regressions at 5%% tolerance = %+v", regs)
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkSelectionEndToEnd/F1/workers=1-2": "BenchmarkSelectionEndToEnd/F1/workers=1",
		"BenchmarkSelectionEndToEnd/F1/workers=1-8": "BenchmarkSelectionEndToEnd/F1/workers=1",
		"BenchmarkIndexBuild-16":                    "BenchmarkIndexBuild",
		"BenchmarkNoSuffix":                         "BenchmarkNoSuffix",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func mustCompare(t *testing.T, pattern string, tolerance float64) ([]Comparison, []string) {
	t.Helper()
	b, err := ParseBaseline([]byte(sampleBaseline))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	comparisons, skipped, err := Compare(b.Benchmarks, cur, regexp.MustCompile(pattern), tolerance, nil)
	if err != nil {
		t.Fatal(err)
	}
	return comparisons, skipped
}

func TestCompareFlagsRegressions(t *testing.T) {
	// F2/workers=1: 500000000 vs 329812997 = 1.52x — beyond +25%.
	comparisons, skipped := mustCompare(t, "BenchmarkSelectionEndToEnd", 0.25)
	if len(comparisons) != 3 {
		t.Fatalf("comparisons = %d, want 3 (workers=8 has no baseline)", len(comparisons))
	}
	regs := Regressions(comparisons)
	if len(regs) != 1 || regs[0].Name != "BenchmarkSelectionEndToEnd/F2/workers=1" {
		t.Fatalf("regressions = %+v, want exactly F2/workers=1", regs)
	}
	if regs[0].Ratio < 1.5 || regs[0].Ratio > 1.53 {
		t.Fatalf("F2 ratio = %v, want ~1.52", regs[0].Ratio)
	}
	// The CI box enumerated workers=8, which the 2-core baseline box never
	// measured: skipped, not failed.
	if len(skipped) != 1 || skipped[0] != "BenchmarkSelectionEndToEnd/F2/workers=8" {
		t.Fatalf("skipped = %v", skipped)
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	// At +60% tolerance even the F2 slowdown passes.
	comparisons, _ := mustCompare(t, "BenchmarkSelectionEndToEnd", 0.60)
	if regs := Regressions(comparisons); len(regs) != 0 {
		t.Fatalf("unexpected regressions at 60%% tolerance: %+v", regs)
	}
	// Cross-core-count matching: a faster current run is of course fine.
	comparisons, _ = mustCompare(t, "BenchmarkIndexBuild", 0.25)
	if len(comparisons) != 1 || comparisons[0].Regression {
		t.Fatalf("index build comparison = %+v", comparisons)
	}
}

func TestCompareErrorsWhenNothingMatches(t *testing.T) {
	b, _ := ParseBaseline([]byte(sampleBaseline))
	cur, _ := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	if _, _, err := Compare(b.Benchmarks, cur, regexp.MustCompile("BenchmarkTypo"), 0.25, nil); err == nil {
		t.Fatal("pattern matching nothing must error (typo guard)")
	}
	if _, _, err := Compare(b.Benchmarks, cur, regexp.MustCompile("."), -1, nil); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}

func TestRenderMentionsRegressionsAndSkips(t *testing.T) {
	comparisons, skipped := mustCompare(t, "BenchmarkSelectionEndToEnd", 0.25)
	var buf bytes.Buffer
	Render(&buf, "PR1", comparisons, skipped, 0.25)
	out := buf.String()
	for _, want := range []string{"REGRESSION", "skipped (no baseline entry)", "1.52x"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareRenameMap(t *testing.T) {
	base := []Result{
		{Name: "BenchmarkWarmGainRequest/memo=on-2", NsPerOp: 100},
		{Name: "BenchmarkWarmGainRequest/memo=off-2", NsPerOp: 1000},
	}
	cur := []Result{
		{Name: "BenchmarkEngineWarmGain/memo=on-8", NsPerOp: 110},
		{Name: "BenchmarkEngineWarmGain/memo=off-8", NsPerOp: 1400},
	}
	m, err := ParseRenameMap(" BenchmarkEngineWarmGain=BenchmarkWarmGainRequest ")
	if err != nil {
		t.Fatal(err)
	}
	comparisons, skipped, err := Compare(base, cur, regexp.MustCompile("BenchmarkEngineWarmGain"), 0.25, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(comparisons) != 2 || len(skipped) != 0 {
		t.Fatalf("comparisons %v skipped %v, want 2 paired, 0 skipped", comparisons, skipped)
	}
	regs := Regressions(comparisons)
	if len(regs) != 1 || regs[0].Name != "BenchmarkEngineWarmGain/memo=off" {
		t.Fatalf("regressions %v, want exactly the memo=off arm", regs)
	}
	// Without the map, every renamed benchmark is skipped.
	comparisons, skipped, err = Compare(base, cur, regexp.MustCompile("BenchmarkEngineWarmGain"), 0.25, nil)
	if err == nil {
		t.Fatalf("unmapped compare unexpectedly paired: %v (skipped %v)", comparisons, skipped)
	}
	// Malformed entries are rejected.
	if _, err := ParseRenameMap("NoEquals"); err == nil {
		t.Fatal("bad -map entry accepted")
	}
	if _, err := ParseRenameMap("a=,b=c"); err == nil {
		t.Fatal("empty old name accepted")
	}
}
