// Command experiments regenerates the tables and figures of the paper's
// evaluation section and prints them as text tables.
//
// By default it runs every experiment at a laptop-friendly scale; -full runs
// the paper-sized workloads (hours on a single core; the Fig. 9 suite alone
// reaches one million nodes).
//
// Examples:
//
//	experiments                 # full suite, quick scale
//	experiments -run fig6,fig7  # only the effectiveness comparisons
//	experiments -scale 0.5      # larger datasets
//	experiments -full           # paper-sized workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		run    = flag.String("run", "all", "comma-separated experiment ids (table2, fig2..fig10) or all")
		scale  = flag.Float64("scale", 0, "dataset scale override in (0,1]")
		scaleG = flag.Float64("scaleG", 0, "scalability-suite scale override in (0,1]")
		seed   = flag.Uint64("seed", 1, "random seed")
		full   = flag.Bool("full", false, "run paper-sized workloads (slow)")
		list   = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := experiments.DefaultConfig()
	if *full {
		cfg = experiments.FullConfig()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *scaleG > 0 {
		cfg.ScaleG = *scaleG
	}
	cfg.Seed = *seed

	var runners []experiments.Runner
	if *run == "all" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			r, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			runners = append(runners, r)
		}
	}

	for i, r := range runners {
		if i > 0 {
			fmt.Println()
		}
		rep, err := r.Run(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", r.ID, err))
		}
		if err := rep.Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
