package rwdom

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/index"
)

// The context-first API must agree bit-for-bit with the one-shot Solve
// facade (and hence with the deprecated shims, which delegate to it).
func TestOpenSelectMatchesSolveFacade(t *testing.T) {
	g := testGraph(t)
	en, err := Open(g, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	ctx := context.Background()

	for _, p := range []Problem{Problem1, Problem2} {
		res, err := en.Select(ctx, SelectRequest{Problem: p, K: 5, L: 4, R: 40, Seed: 3, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Solve(g, p, Options{K: 5, L: 4, R: 40, Seed: 3, Lazy: true, Algorithm: AlgorithmApprox, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Nodes) != len(want.Nodes) {
			t.Fatalf("problem %v: %d nodes vs %d", p, len(res.Nodes), len(want.Nodes))
		}
		for i := range want.Nodes {
			if res.Nodes[i] != want.Nodes[i] {
				t.Fatalf("problem %v: engine %v, legacy %v", p, res.Nodes, want.Nodes)
			}
			if math.Float64bits(res.Gains[i]) != math.Float64bits(want.Gains[i]) {
				t.Fatalf("problem %v: gains diverge at %d", p, i)
			}
		}
	}

	// The second identical request must hit the resident index.
	res, err := en.Select(ctx, SelectRequest{Problem: Problem1, K: 5, L: 4, R: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IndexCached {
		t.Fatal("repeat selection rebuilt the index")
	}
	if st := en.Stats(); st.Cache.Hits == 0 {
		t.Fatalf("engine stats show no cache hits: %+v", st.Cache)
	}
}

// Streaming through the public API: rounds reassemble into the blocking
// result.
func TestOpenSelectStream(t *testing.T) {
	g := testGraph(t)
	en, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	ctx := context.Background()
	req := SelectRequest{K: 6, L: 4, R: 30, Seed: 5}
	want, err := en.Select(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var rounds []Round
	got, err := en.SelectStream(ctx, req, func(rd Round) error {
		rounds = append(rounds, rd)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != len(want.Nodes) {
		t.Fatalf("%d rounds for %d picks", len(rounds), len(want.Nodes))
	}
	for i, rd := range rounds {
		if rd.Node != want.Nodes[i] || got.Nodes[i] != want.Nodes[i] {
			t.Fatalf("round %d: node %d, want %d", i+1, rd.Node, want.Nodes[i])
		}
	}
	if math.Float64bits(rounds[len(rounds)-1].Objective) != math.Float64bits(want.Objective()) {
		t.Fatal("streamed objective diverges from blocking result")
	}
}

// Gain/Objective/TopGains through the public API, including the memoized
// read path statuses.
func TestOpenReadPath(t *testing.T) {
	g := testGraph(t)
	en, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	ctx := context.Background()

	gr, err := en.Gain(ctx, GainRequest{L: 4, R: 30, Seed: 5, Set: []int{1, 2}, Nodes: []int{0, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Gains) != 2 || gr.Memo != "miss" {
		t.Fatalf("first gain: %+v", gr)
	}
	gr2, err := en.Gain(ctx, GainRequest{L: 4, R: 30, Seed: 5, Set: []int{2, 1, 1}, Nodes: []int{0, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if gr2.Memo != "hit" {
		t.Fatalf("canonicalized repeat should hit: %+v", gr2)
	}
	for i := range gr.Gains {
		if math.Float64bits(gr.Gains[i]) != math.Float64bits(gr2.Gains[i]) {
			t.Fatal("memoized gains diverge")
		}
	}

	or, err := en.Objective(ctx, ObjectiveRequest{L: 4, R: 30, Seed: 5, Set: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if or.Objective <= 0 {
		t.Fatalf("objective %v", or.Objective)
	}

	tg, err := en.TopGains(ctx, TopGainsRequest{L: 4, R: 30, Seed: 5, Set: []int{1}, B: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tg.Nodes) != 3 || tg.B != 3 {
		t.Fatalf("topgains %+v", tg)
	}
	for _, u := range tg.Nodes {
		if u == 1 {
			t.Fatal("set member among top gains")
		}
	}
}

// Typed error codes through the public API.
func TestOpenErrorCodes(t *testing.T) {
	g := testGraph(t)
	en, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	ctx := context.Background()

	if _, err := en.Select(ctx, SelectRequest{Graph: "other", K: 3, L: 4}); ErrorCodeOf(err) != ErrNotFound {
		t.Fatalf("unknown graph: code %v", ErrorCodeOf(err))
	}
	if _, err := en.Gain(ctx, GainRequest{L: 4, Set: []int{1 << 30}, Nodes: []int{0}}); ErrorCodeOf(err) != ErrBadRequest {
		t.Fatalf("bad set: code %v", ErrorCodeOf(err))
	}
	if _, err := en.Select(ctx, SelectRequest{K: 3, L: 6, R: 100, Seed: 99, Timeout: time.Millisecond}); ErrorCodeOf(err) != ErrTimeout {
		t.Fatalf("cold-build 1ms budget: code %v", ErrorCodeOf(err))
	}
}

// AdoptIndex through the public API: the engine serves the caller's index.
func TestOpenAdoptIndex(t *testing.T) {
	g := testGraph(t)
	ix, err := BuildIndexParallel(g, 4, 30, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	en, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	if err := en.AdoptIndex(ix); err != nil {
		t.Fatal(err)
	}
	res, err := en.Select(context.Background(), SelectRequest{Problem: Problem1, K: 4, L: 4, R: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.IndexCached {
		t.Fatal("adopted index was rebuilt")
	}
	want, err := core.ApproxWithIndexWorkers(ix, index.Problem1, 4, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Nodes {
		if res.Nodes[i] != want.Nodes[i] {
			t.Fatalf("adopted selection %v, want %v", res.Nodes, want.Nodes)
		}
	}
}

// WithWorkers sets the default only: an explicit per-request Workers knob
// must win (regression: the option used to lower the worker cap too).
func TestWithWorkersPerRequestOverride(t *testing.T) {
	g := testGraph(t)
	en, err := Open(g, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	res, err := en.Select(context.Background(), SelectRequest{K: 3, L: 4, R: 30, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 4 {
		t.Fatalf("per-request Workers=4 resolved to %d (WithWorkers(1) must not cap it)", res.Workers)
	}
	res, err = en.Select(context.Background(), SelectRequest{K: 3, L: 4, R: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 1 {
		t.Fatalf("default workers resolved to %d, want the WithWorkers(1) default", res.Workers)
	}
}
