// Package rwdom implements random-walk domination in large graphs, a
// from-scratch Go reproduction of
//
//	Rong-Hua Li, Jeffrey Xu Yu, Xin Huang, Hong Cheng.
//	"Random-walk domination in large graphs: problem definitions and fast
//	solutions." ICDE 2014 (arXiv:1302.4546).
//
// Given a graph and a budget k, the package selects k target nodes under the
// L-length random-walk model, solving either of the paper's two problems:
//
//   - Problem1 (hitting time): minimize the total expected hitting time of
//     L-length random walks from the remaining nodes to the targets;
//   - Problem2 (coverage): maximize the expected number of nodes whose
//     L-length random walk reaches a target.
//
// Both objectives are nondecreasing submodular set functions, so greedy
// selection carries a 1 − 1/e approximation guarantee; the sampled
// algorithms carry 1 − 1/e − ε. Three algorithm families are provided, in
// increasing scalability: exact dynamic-programming greedy (AlgorithmDP,
// O(k·n·m·L)), per-round sampling greedy (AlgorithmSampling, O(k·n²·R·L)
// walk steps), and the paper's approximate greedy over a materialized
// inverted index of random-walk samples (AlgorithmApprox, O(k·R·L·n) time
// and O(n·R·L + m) space). Two baselines (AlgorithmDegree,
// AlgorithmDominate) and the paper's future-work extensions (combined
// objective, partial cover, edge domination) are included.
//
// # Parallelism and layout
//
// The approximate-greedy hot path is engineered for modern hardware without
// changing the algorithmics (the O(k·R·L·n) / O(n·R·L + m) bounds above are
// untouched): the inverted index and D-table are laid out candidate-major
// (all R replicate rows of a node contiguous) so one marginal-gain
// evaluation reads a single contiguous span; weighted neighbor sampling
// uses precomputed Walker alias tables (O(1) per hop instead of an
// O(log deg) binary search); and Options.Workers shards index construction,
// the CELF initial sweep and stale-entry re-evaluations over goroutines
// (defaulting to all cores). Walks are seeded per (node, replicate) and
// gains accumulate in integers, so Selected and Gains are bit-for-bit
// identical for every worker count — parallelism changes wall-clock time
// only. bench.sh records the perf trajectory (BENCH_PR1.json,
// BENCH_PR2.json, ...) and the ablation benchmarks isolate each of these
// decisions; cmd/benchcheck gates CI against the recorded baseline.
//
// # The query Engine
//
// Open binds a graph to a query Engine — the transport-agnostic serving
// core (internal/engine) that owns the whole cache stack — and is the
// recommended API for everything the approximate algorithm serves:
//
//	en, err := rwdom.Open(g)           // options: WithWorkers, WithSpillDir, ...
//	defer en.Close()
//	res, err := en.Select(ctx, rwdom.SelectRequest{Problem: rwdom.Problem2, K: 50, L: 6})
//	gains, err := en.Gain(ctx, rwdom.GainRequest{L: 6, Set: res.Nodes[:3], Nodes: []int{7, 9}})
//
// Every method takes a context and a typed request. Walk indexes build at
// most once per (L, R, seed) and are shared across calls and problems;
// identical concurrent Selects coalesce into one computation; repeated
// Gain/Objective/TopGains calls for a seed set are pure reads of a frozen
// memoized D-table. SelectStream emits each greedy round (node, gain,
// objective-so-far) as it is decided, and the emitted rounds reassemble
// bit-identically into the blocking Select result. Errors carry stable
// machine-readable codes (ErrorCodeOf: bad_request, not_found, conflict,
// stale_epoch, draining, timeout, internal) shared with the HTTP daemon
// and the client SDK.
//
// For one-shot selection — and for the DP, sampling and baseline
// algorithms, which have no serving equivalent — Solve(g, problem, opts)
// is the non-deprecated free function. The original per-problem functions
// (MinimizeHittingTime, MaximizeCoverage, SelectWithIndex, ...) remain as
// deprecated one-line shims over Solve and the Engine: they compile,
// return bit-identical selections, and point migrators at the
// replacements.
//
// # Mutable graphs
//
// A served graph is not frozen: Engine.ApplyDelta applies one atomic batch
// of changes — nodes appended, edges added, edges removed — and bumps the
// graph's mutation epoch:
//
//	res, err := en.ApplyDelta(ctx, rwdom.ApplyDeltaRequest{Delta: rwdom.Delta{
//	    AddEdges:    []rwdom.Edge{{U: 11, V: 17}},
//	    RemoveEdges: []rwdom.Edge{{U: 3, V: 9}},
//	}})
//
// The mutation is copy-on-write: queries that already resolved their graph
// snapshot finish against pre-mutation state bit-identically, and the epoch
// rides in every derived identity (index cache keys, spill files, memoized
// D-table keys, selection coalescing), so no post-mutation request can ever
// be answered from a pre-mutation artifact. Resident walk indexes survive
// the mutation by incremental repair — only the walk rows the delta touched
// are regenerated, a cost proportional to the change rather than the graph
// — and a repaired index answers bit-identically to a from-scratch rebuild
// of the mutated graph (a parity suite enforces this across problems,
// strategies, worker and shard counts). Structural conflicts (adding an
// edge that exists, removing one that doesn't) and stale ApplyDeltaRequest
// .BaseEpoch pins — the optimistic-concurrency handle for
// read-modify-write callers — fail typed with ErrConflict and apply
// nothing. On a sharded Engine the coordinator broadcasts every delta to
// all workers before returning; a worker that misses a broadcast answers
// its epoch-pinned scatters with typed ErrStaleEpoch errors, never a
// silently mixed-epoch merge. The daemon exposes the same operation as
// POST /v1/graph/{name}/edges, mirrored by client.ApplyDelta.
//
// # Replicate-sharded serving
//
// The walk index is the dominant cost at scale — O(n·R·L) space built
// once per (graph, L, R, seed). Sharded serving splits the replicate
// range [0, R) across N workers, each materializing only its subrange of
// every index, and a coordinator (internal/shard) scatter-gathers the
// workers' integer partial sums and merges them exactly: per-replicate
// walk seeding makes a range build a deterministic slice of the full
// build, so summing disjoint int64 partial sums reproduces the unsharded
// sums bit-for-bit, and the coordinator performs the one float64 division
// and the greedy argmax with exactly the unsharded arithmetic. Selections,
// gains, objectives and top-B rankings are bit-identical to the unsharded
// engine for every worker count — sharding divides per-process memory and
// build wall time, never results.
//
//	en, err := rwdom.Open(g, rwdom.WithShards(4))     // in-process workers
//	en, err := rwdom.Open(g, rwdom.WithPeers(urls...)) // remote worker daemons
//
// Both forms serve the same Engine surface (AdoptIndex and Stats are
// engine-specific; ShardStats reports scatter-gather counters instead).
// The daemon grows the same topology: rwdomd -shards N forks in-process
// workers, rwdomd -peer URL... coordinates remote worker daemons over
// their GET /v1/partial/gain and /v1/partial/topgains endpoints, and
// /stats gains a "shards" block (per-shard request/error/retry counts,
// merge latency histogram). Worker faults are retried with Retry-After
// backoff; a worker that stays down yields a typed error, never a merge
// over a subset of the replicates.
//
// # Serving
//
// cmd/rwdomd wraps the same engine in a long-running HTTP daemon
// (internal/server, a thin codec: decode → engine call → encode): graphs
// load once at startup, walk indexes are materialized on demand into a
// refcounted LRU cache keyed by (graph, L, R, seed) — shared across
// concurrent queries, coalesced so simultaneous misses build once, and
// spilled to disk on eviction and shutdown so restarts start warm.
// POST /v1/select answers top-k selections for both problems (plain or
// CELF-lazy greedy, gain evaluations sharded over a per-request workers
// knob; with ?stream=1 the reply is NDJSON round events and a final
// blocking-shape result); GET /v1/gain, GET /v1/objective and
// GET /v1/topgains answer point queries against the same indexes; and
// GET /healthz plus GET /stats expose liveness, index/memo cache traffic
// and per-endpoint latency histograms. Every error path shares one JSON
// envelope {"error":{"code","message"}} with the stable codes above, and
// the repro/client package is the typed Go SDK over the whole contract —
// mirrored requests/responses, typed errors, retry while the daemon
// drains, and a streaming iterator for selects.
//
// The gain read path is memoized (this is where the paper's index pays off
// at serving time — a marginal gain should be a read, not a rebuild):
// empty-set answers come straight off a per-problem gain vector memoized on
// the index itself (Index.EmptySetGains, zero D-table work), and non-empty
// seed sets hit a refcounted LRU cache of frozen D-tables keyed by
// (graph, L, R, seed, problem, canonical set). A set's table is
// materialized at most once — extending the longest cached prefix of the
// set via DTable.Snapshot/ExtendFrom, so only the delta is replayed — and
// every later gain/objective/topgains request for it is a pure read.
// Memoized and fresh answers are bit-for-bit identical; the server parity
// test suite locks the two paths together across both problems, set shapes
// (empty/singleton/large/unsorted/duplicated) and greedy selection
// prefixes.
//
// Both caches run on one shared refcounted-LRU core (internal/cache):
// singleflight population, refcounts so nothing is freed under an in-flight
// request, and entry-count plus bytes budgets (rwdomd -cache/-index-bytes
// and -memo/-memo-bytes) that evict least-recently-used entries once
// exceeded. The caches are linked: evicting an index drops the memoized
// D-tables built from it (tables still mid-read are orphaned and released
// with their last reader), so an eviction actually returns the index's heap
// instead of leaving it pinned by dependents — daemon memory tracks the
// working set, not traffic history. Request timeouts and graceful SIGTERM
// drain propagate as
// context cancellation through the greedy drivers (greedy.RunWorkersCtx /
// core.ApproxWithIndexCtx), so a dying request stops consuming cores within
// one evaluation stride. The serving experiments (internal/experiments,
// "serving" and "gainserving") measure end-to-end HTTP throughput over the
// warm caches, memoized versus fresh.
//
// # Storage formats
//
// Spilled indexes are written in format v8, a page-aligned container
// (internal/store) with a per-chunk directory, CRC32-C on every section,
// and optionally delta/varint-compressed walk spans (the default; roughly
// 2-3x smaller files). Loads sniff the magic, so v7 and older spill
// directories keep warm-loading after an upgrade. WithMmapSpills serves
// warm loads straight off a read-only memory mapping: a restart maps and
// CRC-verifies the file instead of deserializing it (O(1)-ish page-in
// restart, ~13x faster in BenchmarkWarmRestart), rows page in as queries
// touch them, and mapped indexes cost nothing against the index-bytes
// budget — the working set may exceed RAM. Compressed spans decode on
// read through a small hot-row cache; store-backed answers are
// bit-identical to heap answers (a parity suite enforces it across
// formats, problems, layouts, growth and repair — Repair first promotes
// a mapped index onto the heap, since the mapping is read-only).
// WithSpillFormat selects the writer ("v8", "v8raw", "v7"); corruption
// anywhere in a spill file fails the open and triggers a counted rebuild,
// never a wrong answer. Engine.Stats.Storage (and the daemon's /stats
// "storage" block) reports the effective format plus mapped-index,
// page-in-restart and decode-cache counters.
//
// # Quick start
//
//	g, err := rwdom.GeneratePowerLaw(10000, 50000, 1)
//	if err != nil { ... }
//	en, err := rwdom.Open(g)
//	if err != nil { ... }
//	defer en.Close()
//	sel, err := en.Select(ctx, rwdom.SelectRequest{K: 50, L: 6, R: 100})
//	if err != nil { ... }
//	fmt.Println(sel.Nodes) // the 50 selected targets
//	m, _ := rwdom.EvaluateExact(g, sel.Nodes, 6)
//	fmt.Printf("average hitting time %.2f, expected coverage %.0f\n", m.AHT, m.EHN)
//
// The examples directory contains runnable programs for the paper's three
// motivating applications (item placement in social networks, Ads
// placement, and P2P resource placement) plus the daemon+client pair
// (examples/serving), live graph mutation (examples/mutation) and
// mmap-backed warm restarts (examples/mmapserve), and
// internal/experiments regenerates every table and figure of the paper's
// evaluation section.
package rwdom
