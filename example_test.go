package rwdom_test

import (
	"fmt"

	"repro"
)

// ExampleSolve selects coverage targets on the paper's running-example
// graph (Fig. 1) so that as many nodes as possible reach them by a 4-hop
// random walk.
func ExampleSolve() {
	// The 8-node graph of the paper's Fig. 1 (v1..v8 are nodes 0..7).
	g, err := rwdom.FromEdgeList(8, [][2]int{
		{0, 1}, {0, 5},
		{1, 2}, {1, 4}, {1, 5},
		{2, 3}, {2, 4},
		{3, 6}, {3, 7},
		{4, 6},
		{5, 6},
		{6, 7},
	})
	if err != nil {
		panic(err)
	}
	sel, err := rwdom.Solve(g, rwdom.Problem2, rwdom.Options{K: 2, L: 4, Algorithm: rwdom.AlgorithmDP})
	if err != nil {
		panic(err)
	}
	fmt.Println(sel.Nodes)
	// Output: [6 1]
}

// ExampleSolve_hittingTime shows Problem 1 on a star: the hub is the
// unique best target.
func ExampleSolve_hittingTime() {
	b := rwdom.NewBuilder(6, rwdom.Undirected)
	for leaf := 1; leaf < 6; leaf++ {
		b.AddEdge(0, leaf)
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	sel, err := rwdom.Solve(g, rwdom.Problem1, rwdom.Options{K: 1, L: 3, Algorithm: rwdom.AlgorithmDP})
	if err != nil {
		panic(err)
	}
	m, err := rwdom.EvaluateExact(g, sel.Nodes, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("target %v, average hitting time %.0f hop\n", sel.Nodes, m.AHT)
	// Output: target [0], average hitting time 1 hop
}

// ExampleHittingTimes computes the exact generalized hitting times of
// Theorem 2.2 on a 3-node path.
func ExampleHittingTimes() {
	g, err := rwdom.FromEdgeList(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		panic(err)
	}
	h, err := rwdom.HittingTimes(g, []int{2}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("h(0)=%.1f h(1)=%.1f h(2)=%.1f\n", h[0], h[1], h[2])
	// Output: h(0)=2.0 h(1)=1.5 h(2)=0.0
}

// ExampleSampleSize applies the Hoeffding bound of Lemma 3.4 to pick a
// sample size.
func ExampleSampleSize() {
	// ±5%·n accuracy with 99% confidence on a 10k-node graph.
	fmt.Println(rwdom.SampleSize(10000, 0.05, 0.01))
	// Output: 2764
}
