#!/bin/sh
# bench.sh — the perf gate for this repo. Runs static checks, the race
# detector over the packages that shard work across goroutines, and the
# perf-tracking benchmarks (end-to-end selection, index build, serving
# throughput, memoized gain serving, and the design-decision ablations),
# then writes the parsed results to a JSON record so the perf trajectory is
# tracked PR over PR (BENCH_PR1.json, BENCH_PR2.json, ...). cmd/benchcheck
# compares two such records; CI gates BenchmarkSelectionEndToEnd with a
# same-job old-vs-new run (see .github/workflows/ci.yml).
#
# Usage:
#   ./bench.sh                      # writes bench-<git short SHA>.json
#   LABEL="PR3 foo" OUT=BENCH_PR3.json ./bench.sh
#   BENCHTIME=10x ./bench.sh        # longer benchmark iterations
set -eu
cd "$(dirname "$0")"

SHA="$(git rev-parse --short HEAD 2>/dev/null || echo dev)"
BENCHTIME="${BENCHTIME:-5x}"
LABEL="${LABEL:-$SHA}"
OUT="${OUT:-bench-$SHA.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go vet =="
go vet ./...

echo "== race detector (cache, index, store, greedy, engine, server, shard, client, core) =="
go test -race -count=1 ./internal/cache/... ./internal/index/... ./internal/store/... ./internal/greedy/... ./internal/engine/... ./internal/server/... ./internal/shard/... ./client/... ./internal/core/...

echo "== benchmarks (benchtime=$BENCHTIME) =="
# Redirect instead of piping through tee: POSIX sh reports a pipeline's
# status from its last command, so `go test | tee` would mask bench
# failures from set -e and this script would write an empty record.
go test -run '^$' \
    -bench 'BenchmarkSelectionEndToEnd|BenchmarkIndexBuild$|BenchmarkChunkedBuild|BenchmarkAdaptiveBudget|BenchmarkServingThroughput|BenchmarkGainServing|BenchmarkWarmGainRequest|BenchmarkEngineWarmGain|BenchmarkTopGainsRepeat|BenchmarkAblationAliasVsBinarySearch|BenchmarkAblationCSRVsAdjList|BenchmarkAblationVisitedStamp|BenchmarkAblationLazyVsPlainGreedy|BenchmarkAblationIndexVsResample' \
    -benchtime "$BENCHTIME" -timeout 60m . > "$RAW" 2>&1 || { cat "$RAW"; exit 1; }
go test -run '^$' -bench 'BenchmarkAblationDTableLayout|BenchmarkIncrementalRepair|BenchmarkWarmRestart|BenchmarkStoreBackedGain' \
    -benchtime "$BENCHTIME" -timeout 30m ./internal/index/ >> "$RAW" 2>&1 || { cat "$RAW"; exit 1; }
go test -run '^$' -bench 'BenchmarkShardIndexBuild' \
    -benchtime "$BENCHTIME" -timeout 30m ./internal/shard/ >> "$RAW" 2>&1 || { cat "$RAW"; exit 1; }
cat "$RAW"

awk -v record="$LABEL" -v benchtime="$BENCHTIME" -v goversion="$(go env GOVERSION)" '
BEGIN {
    printf "{\n  \"record\": \"%s\",\n", record
    printf "  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", goversion, benchtime
    first = 1
}
/^Benchmark/ && $4 == "ns/op" {
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", $1, $2, $3
    # Custom b.ReportMetric pairs ("62.15 ci_width", "50.00 replicates")
    # follow ns/op as value/unit pairs; record each under its unit name.
    for (i = 5; i + 1 <= NF; i += 2)
        printf ", \"%s\": %s", $(i + 1), $i
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$RAW" > "$OUT"

echo "wrote $OUT (record: $LABEL)"
