#!/bin/sh
# bench.sh — the perf gate for this repo. Runs static checks, the race
# detector over the packages that shard work across goroutines, and the
# perf-tracking benchmarks (end-to-end selection, index build, and the
# design-decision ablations), then writes the parsed results to
# BENCH_PR1.json so the perf trajectory is recorded from PR 1 onward.
#
# Usage:
#   ./bench.sh                # full run, writes BENCH_PR1.json
#   BENCHTIME=10x ./bench.sh  # longer benchmark iterations
#   OUT=bench.json ./bench.sh # alternative output file
set -eu
cd "$(dirname "$0")"

BENCHTIME="${BENCHTIME:-5x}"
OUT="${OUT:-BENCH_PR1.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go vet =="
go vet ./...

echo "== race detector (index, greedy) =="
go test -race -count=1 ./internal/index/... ./internal/greedy/...

echo "== benchmarks (benchtime=$BENCHTIME) =="
go test -run '^$' \
    -bench 'BenchmarkSelectionEndToEnd|BenchmarkIndexBuild$|BenchmarkAblationAliasVsBinarySearch|BenchmarkAblationCSRVsAdjList|BenchmarkAblationVisitedStamp|BenchmarkAblationLazyVsPlainGreedy|BenchmarkAblationIndexVsResample' \
    -benchtime "$BENCHTIME" -timeout 60m . | tee "$RAW"
go test -run '^$' -bench 'BenchmarkAblationDTableLayout' \
    -benchtime "$BENCHTIME" -timeout 30m ./internal/index/ | tee -a "$RAW"

awk -v benchtime="$BENCHTIME" -v goversion="$(go env GOVERSION)" '
BEGIN {
    printf "{\n  \"record\": \"PR1 parallel batched gain engine\",\n"
    printf "  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", goversion, benchtime
    first = 1
}
/^Benchmark/ && $4 == "ns/op" {
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $1, $2, $3
}
END { printf "\n  ]\n}\n" }
' "$RAW" > "$OUT"

echo "wrote $OUT"
