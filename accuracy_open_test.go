package rwdom

import (
	"context"
	"testing"
)

// WithAccuracy end to end through the public facade: easy (hub-dominated)
// instances stop below the R cap with the certified interval, and the same
// engine honors a per-request override.
func TestWithAccuracyEarlyStops(t *testing.T) {
	g, err := GenerateBarabasiAlbert(400, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	en, err := Open(g, WithAccuracy(25, 0.05), WithAccuracyChunk(25))
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	ctx := context.Background()

	res, err := en.Select(ctx, SelectRequest{K: 3, L: 6, R: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epsilon != 25 || res.Delta != 0.05 {
		t.Fatalf("engine default not inherited: epsilon=%v delta=%v", res.Epsilon, res.Delta)
	}
	if !res.EarlyStopped || res.ReplicatesUsed >= 200 {
		t.Fatalf("easy graph used %d/200 replicates, expected an early stop", res.ReplicatesUsed)
	}
	if res.CIWidth > res.Epsilon {
		t.Fatalf("CIWidth %v exceeds the epsilon target %v", res.CIWidth, res.Epsilon)
	}

	// A per-request epsilon overrides the engine default; an unreachable one
	// degrades to the full fixed-R selection with the achieved interval.
	capped, err := en.Select(ctx, SelectRequest{K: 3, L: 6, R: 200, Seed: 7, Epsilon: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Epsilon != 1e-12 || capped.EarlyStopped || capped.ReplicatesUsed != 200 {
		t.Fatalf("per-request override not honored: %+v", capped)
	}
}

// The sharding boundary through the facade: WithAccuracy cannot Open a
// sharded engine, and a per-request epsilon against one is ErrUnsupported.
func TestWithAccuracyShardedRejected(t *testing.T) {
	g := testGraph(t)

	if _, err := Open(g, WithShards(2), WithAccuracy(0.5, 0.05)); err == nil {
		t.Fatal("Open accepted WithShards + WithAccuracy")
	}

	en, err := Open(g, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	if _, err := en.Select(context.Background(), SelectRequest{K: 3, L: 4, R: 20, Epsilon: 0.5}); ErrorCodeOf(err) != ErrUnsupported {
		t.Fatalf("sharded accuracy select: %v (code %v), want ErrUnsupported", err, ErrorCodeOf(err))
	}
}
