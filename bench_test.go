package rwdom

// This file contains one testing.B benchmark per table and figure of the
// paper's evaluation section (regenerating each at benchmark scale; run
// cmd/experiments for readable output and larger scales), followed by
// ablation benches for the design decisions called out in DESIGN.md §6.
//
// Set RWDOM_BENCH_PRINT=1 to print each experiment's report to stdout on the
// first benchmark iteration.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/walk"
)

// benchConfig is deliberately tiny: benchmarks measure the harness, not the
// paper-scale workloads.
func benchConfig() experiments.Config {
	return experiments.Config{Scale: 0.02, ScaleG: 0.002, Seed: 1}
}

func runExperiment(b *testing.B, fn func(experiments.Config) (*experiments.Report, error)) {
	b.Helper()
	out := io.Discard
	if os.Getenv("RWDOM_BENCH_PRINT") == "1" {
		out = io.Writer(os.Stdout)
	}
	for i := 0; i < b.N; i++ {
		rep, err := fn(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if err := rep.Render(out); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable2Datasets regenerates Table 2 (dataset summary).
func BenchmarkTable2Datasets(b *testing.B) { runExperiment(b, experiments.Table2) }

// BenchmarkFig2DPF1VsApproxF1 regenerates Fig. 2 (DPF1 vs ApproxF1
// effectiveness as a function of R).
func BenchmarkFig2DPF1VsApproxF1(b *testing.B) { runExperiment(b, experiments.Fig2) }

// BenchmarkFig3DPF2VsApproxF2 regenerates Fig. 3.
func BenchmarkFig3DPF2VsApproxF2(b *testing.B) { runExperiment(b, experiments.Fig3) }

// BenchmarkFig4RunningTimeDPVsApprox regenerates Fig. 4 (running time of the
// DP-based vs the approximate greedy algorithms).
func BenchmarkFig4RunningTimeDPVsApprox(b *testing.B) { runExperiment(b, experiments.Fig4) }

// BenchmarkFig5RunningTimeVsR regenerates Fig. 5 (approximate greedy running
// time as a function of R).
func BenchmarkFig5RunningTimeVsR(b *testing.B) { runExperiment(b, experiments.Fig5) }

// BenchmarkFig6AHTAcrossDatasets regenerates Fig. 6 (AHT of the four
// algorithms over the four datasets).
func BenchmarkFig6AHTAcrossDatasets(b *testing.B) { runExperiment(b, experiments.Fig6) }

// BenchmarkFig7EHNAcrossDatasets regenerates Fig. 7 (EHN comparison).
func BenchmarkFig7EHNAcrossDatasets(b *testing.B) { runExperiment(b, experiments.Fig7) }

// BenchmarkFig8RunningTimeKL regenerates Fig. 8 (running time vs k and vs L
// on the Epinions stand-in).
func BenchmarkFig8RunningTimeKL(b *testing.B) { runExperiment(b, experiments.Fig8) }

// BenchmarkFig9Scalability regenerates Fig. 9 (linear scalability over
// G1..G10).
func BenchmarkFig9Scalability(b *testing.B) { runExperiment(b, experiments.Fig9) }

// BenchmarkFig10EffectOfL regenerates Fig. 10 (effect of the walk-length
// bound L).
func BenchmarkFig10EffectOfL(b *testing.B) { runExperiment(b, experiments.Fig10) }

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md §6)
// ---------------------------------------------------------------------------

// adjListGraph is the naive slice-of-slices adjacency representation used
// only by the CSR ablation.
type adjListGraph struct{ rows [][]int32 }

func toAdjList(g *Graph) *adjListGraph {
	rows := make([][]int32, g.N())
	for u := 0; u < g.N(); u++ {
		rows[u] = append([]int32(nil), g.Neighbors(u)...)
	}
	return &adjListGraph{rows: rows}
}

// BenchmarkAblationCSRVsAdjList compares random-walk stepping over the CSR
// layout against a slice-of-slices adjacency list. CSR's flat arrays are the
// reason walk sampling stays memory-bound rather than pointer-chasing-bound.
func BenchmarkAblationCSRVsAdjList(b *testing.B) {
	g, err := GeneratePowerLaw(20000, 100000, 1)
	if err != nil {
		b.Fatal(err)
	}
	const L = 10
	// Both arms are bare stepping loops over the same RNG so only the
	// memory layout differs.
	b.Run("CSR", func(b *testing.B) {
		r := rng.New(1)
		for i := 0; i < b.N; i++ {
			u := i % g.N()
			for step := 0; step < L; step++ {
				row := g.Neighbors(u)
				if len(row) == 0 {
					break
				}
				u = int(row[r.Intn(len(row))])
			}
		}
	})
	b.Run("AdjList", func(b *testing.B) {
		al := toAdjList(g)
		r := rng.New(1)
		for i := 0; i < b.N; i++ {
			u := i % len(al.rows)
			for step := 0; step < L; step++ {
				row := al.rows[u]
				if len(row) == 0 {
					break
				}
				u = int(row[r.Intn(len(row))])
			}
		}
	})
	// Full walk engine (buffer recording, weighted-capable PickNeighbor)
	// for context against the bare CSR loop.
	b.Run("WalkerEngine", func(b *testing.B) {
		w, _ := walk.NewWalker(g, L, 1)
		for i := 0; i < b.N; i++ {
			w.Walk(i % g.N())
		}
	})
}

// BenchmarkAblationLazyVsPlainGreedy compares the CELF lazy driver against
// the plain per-round scan for the DP-based greedy algorithm — the paper
// cites lazy evaluation as worth "several orders of magnitude".
func BenchmarkAblationLazyVsPlainGreedy(b *testing.B) {
	g, err := GeneratePowerLaw(400, 2400, 2)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{K: 10, L: 5, Seed: 1}
	b.Run("Plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.DPF1(g, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Lazy", func(b *testing.B) {
		lazyOpts := opts
		lazyOpts.Lazy = true
		for i := 0; i < b.N; i++ {
			if _, err := core.DPF1(g, lazyOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationIndexVsResample compares the paper's central design
// decision: the materialized inverted index (Algorithm 6, O(nR) walks total)
// against per-round re-sampling (the sampling-based greedy, O(kn²R) walks).
func BenchmarkAblationIndexVsResample(b *testing.B) {
	// Small parameters: the re-sampling arm is O(k·n²·R·L) and would take
	// minutes per iteration at realistic sizes — which is the point being
	// measured. The experiments "ablations" runner reports a larger-scale
	// one-shot comparison.
	g, err := GeneratePowerLaw(200, 1200, 3)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{K: 4, L: 5, R: 15, Seed: 1}
	b.Run("InvertedIndex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ApproxF1(g, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Resample", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SampleF1(g, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationVisitedStamp compares the generation-stamp visited-set
// reset used by index construction against zeroing a boolean array per walk
// (the paper's "Initialize visited[1:n] ← 0", Algorithm 3 line 4).
func BenchmarkAblationVisitedStamp(b *testing.B) {
	g, err := GeneratePowerLaw(20000, 100000, 4)
	if err != nil {
		b.Fatal(err)
	}
	const L = 10
	b.Run("GenerationStamp", func(b *testing.B) {
		visited := make([]uint32, g.N())
		var generation uint32
		r := rng.New(1)
		for i := 0; i < b.N; i++ {
			generation++
			u := i % g.N()
			visited[u] = generation
			for step := 0; step < L; step++ {
				v := g.PickNeighbor(u, r.Float64())
				if v < 0 {
					break
				}
				if visited[v] != generation {
					visited[v] = generation
				}
				u = v
			}
		}
	})
	b.Run("ClearPerWalk", func(b *testing.B) {
		visited := make([]bool, g.N())
		r := rng.New(1)
		for i := 0; i < b.N; i++ {
			for j := range visited {
				visited[j] = false
			}
			u := i % g.N()
			visited[u] = true
			for step := 0; step < L; step++ {
				v := g.PickNeighbor(u, r.Float64())
				if v < 0 {
					break
				}
				visited[v] = true
				u = v
			}
		}
	})
}

// BenchmarkAblationAliasVsBinarySearch compares weighted neighbor sampling
// through the precomputed alias tables (O(1) per step) against the prior
// per-step binary search over cumulative weights (O(log deg)). Both realize
// the same neighbor distribution (asserted by the chi-squared parity test
// in internal/graph).
//
// Two regimes: PowerLaw steps L-length walks over a weighted power-law
// graph whose average degree is ~10, where the binary search is only 2–3
// iterations and the two are within noise of each other; Hub draws from a
// single 5000-neighbor weighted row, where the search walks ~12 scattered
// cache lines per draw and the alias table wins by several fold. Real walk
// workloads sit between the two but concentrate on hubs (the stationary
// distribution is proportional to weighted degree), which is why the alias
// layout is the default.
func BenchmarkAblationAliasVsBinarySearch(b *testing.B) {
	base, err := GeneratePowerLaw(20000, 100000, 7)
	if err != nil {
		b.Fatal(err)
	}
	// Re-weight the power-law topology deterministically so the weighted
	// sampling paths are exercised (uniform graphs bypass both samplers).
	wb := NewBuilder(base.N(), Undirected)
	base.Edges(func(u, v int, _ float64) bool {
		wb.AddWeightedEdge(u, v, 1+float64((u*7+v*13)%10))
		return true
	})
	g, err := wb.Build()
	if err != nil {
		b.Fatal(err)
	}
	const L = 10
	step := func(b *testing.B, pick func(int, float64) int) {
		r := rng.New(1)
		for i := 0; i < b.N; i++ {
			u := i % g.N()
			for s := 0; s < L; s++ {
				v := pick(u, r.Float64())
				if v < 0 {
					break
				}
				u = v
			}
		}
	}
	b.Run("PowerLaw/Alias", func(b *testing.B) { step(b, g.PickNeighbor) })
	b.Run("PowerLaw/BinarySearch", func(b *testing.B) { step(b, g.PickNeighborBinarySearch) })

	const hubDeg = 5000
	hb := NewBuilder(hubDeg+1, Undirected)
	for i := 1; i <= hubDeg; i++ {
		hb.AddWeightedEdge(0, i, 1+float64(i%97))
	}
	hub, err := hb.Build()
	if err != nil {
		b.Fatal(err)
	}
	draw := func(b *testing.B, pick func(int, float64) int) {
		r := rng.New(1)
		for i := 0; i < b.N; i++ {
			if pick(0, r.Float64()) < 0 {
				b.Fatal("no neighbor")
			}
		}
	}
	b.Run("Hub/Alias", func(b *testing.B) { draw(b, hub.PickNeighbor) })
	b.Run("Hub/BinarySearch", func(b *testing.B) { draw(b, hub.PickNeighborBinarySearch) })
}

// BenchmarkIndexBuild measures Algorithm 3 (index materialization) alone,
// the dominant cost of the approximate greedy algorithm, single-threaded
// and sharded over all cores.
func BenchmarkIndexBuild(b *testing.B) {
	g, err := GeneratePowerLaw(5000, 30000, 5)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := index.BuildWorkers(g, 6, 20, uint64(i), bc.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChunkedBuild measures chunked index materialization — the same
// walks as BenchmarkIndexBuild (CI's bench gate maps the two onto each
// other), assembled as ordered replicate chunks with per-chunk CSR columns.
// The chunked layout is what the adaptive accuracy budgets build
// incrementally; this benchmark pins its full-R build cost against the flat
// build so the chunk seams stay free when accuracy is off.
func BenchmarkChunkedBuild(b *testing.B) {
	g, err := GeneratePowerLaw(5000, 30000, 5)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := index.BuildChunkedWorkers(g, 6, 20, uint64(i), 5, bc.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdaptiveBudget measures an epsilon-targeted selection against the
// fixed-R plain greedy on the same hub-dominated graph. The adaptive arm
// reports its schedule as custom metrics — replicates (used, out of the R
// cap) and ci_width (largest committed half-width) — so the record shows the
// sampling saved, not just the wall time.
func BenchmarkAdaptiveBudget(b *testing.B) {
	g, err := GenerateBarabasiAlbert(2000, 2, 42)
	if err != nil {
		b.Fatal(err)
	}
	const (
		K = 5
		L = 6
		R = 200
	)
	b.Run("fixed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sel, err := Solve(g, Problem2, Options{K: K, L: L, R: R, Seed: 7, Algorithm: AlgorithmApprox})
			if err != nil {
				b.Fatal(err)
			}
			if len(sel.Nodes) != K {
				b.Fatal("short selection")
			}
		}
		b.ReportMetric(R, "replicates")
	})
	b.Run("adaptive", func(b *testing.B) {
		acc := core.Accuracy{Epsilon: 75, Delta: 0.05, Chunk: 25}
		opts := core.Options{K: K, L: L, R: R, Seed: 7}
		var used, ci float64
		for i := 0; i < b.N; i++ {
			sel, err := core.ApproxAdaptiveStream(context.Background(), g, index.Problem2, opts, acc, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(sel.Nodes) != K || !sel.EarlyStopped {
				b.Fatalf("expected an early-stopped %d-node selection, got %d nodes (early=%t)",
					K, len(sel.Nodes), sel.EarlyStopped)
			}
			used, ci = float64(sel.ReplicatesUsed), sel.MaxCIWidth
		}
		b.ReportMetric(used, "replicates")
		b.ReportMetric(ci, "ci_width")
	})
}

// BenchmarkSelectionEndToEnd measures a full public-API selection (index
// build + greedy loop) at a realistic medium scale, for both problems, at
// one worker and at all cores. The workers=1 arms correspond to the seed's
// single-threaded path; the ≥2.5× acceptance target of PR 1 compares
// workers=GOMAXPROCS here against the seed's benchmark on the same machine.
func BenchmarkSelectionEndToEnd(b *testing.B) {
	g, err := GeneratePowerLaw(10000, 60000, 6)
	if err != nil {
		b.Fatal(err)
	}
	solvers := []struct {
		name    string
		problem Problem
	}{
		{"F1", Problem1},
		{"F2", Problem2},
	}
	// workers=1 and workers=2 run on every machine so the CI bench gate
	// always finds them in the baseline regardless of runner core count; a
	// GOMAXPROCS arm is added on bigger boxes (skipped by the gate when the
	// baseline box didn't have it).
	workerCounts := []int{1, 2}
	if n := runtime.GOMAXPROCS(0); n > 2 {
		workerCounts = append(workerCounts, n)
	}
	for _, solver := range solvers {
		for _, workers := range workerCounts {
			b.Run(fmt.Sprintf("%s/workers=%d", solver.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sel, err := Solve(g, solver.problem, Options{
						K: 50, L: 6, R: 50, Seed: uint64(i),
						Lazy: true, Algorithm: AlgorithmApprox, Workers: workers,
					})
					if err != nil {
						b.Fatal(err)
					}
					if len(sel.Nodes) != 50 {
						b.Fatal("short selection")
					}
				}
			})
		}
	}
}

// BenchmarkServingThroughput measures the query-serving layer end to end:
// one iteration runs the full serving experiment (HTTP select/gain sweeps
// over a warm index cache at several client concurrencies). It tracks the
// daemon's request-handling overhead on top of the selection engine.
func BenchmarkServingThroughput(b *testing.B) { runExperiment(b, experiments.Serving) }

// BenchmarkGainServing runs the memoized-vs-fresh gain-serving experiment
// end to end (two daemons over one graph, warm-set /v1/gain and
// /v1/topgains sweeps). The per-request comparison the PR-3 acceptance
// criterion rests on is BenchmarkWarmGainRequest below.
func BenchmarkGainServing(b *testing.B) { runExperiment(b, experiments.GainServing) }

// BenchmarkEngineWarmGain measures one warm-set gain request at the engine
// layer — the exact computation BenchmarkWarmGainRequest measures through
// the HTTP handler stack, minus the codec. It exists to prove the
// handler→engine extraction added no per-request overhead: CI's same-job
// bench gate compares it against the base commit's handler-level
// BenchmarkWarmGainRequest numbers (benchcheck
// -map BenchmarkEngineWarmGain=BenchmarkWarmGainRequest), so the engine
// path must be at least as fast as the old in-handler path.
func BenchmarkEngineWarmGain(b *testing.B) {
	g, err := dataset.Load("CAGrQc", 1)
	if err != nil {
		b.Fatal(err)
	}
	set := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	for _, memo := range []bool{true, false} {
		name := "memo=on"
		if !memo {
			name = "memo=off"
		}
		b.Run(name, func(b *testing.B) {
			eng, err := engine.New(engine.Config{
				Graphs:      map[string]*graph.Graph{"CAGrQc": g},
				DisableMemo: !memo,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			ctx := context.Background()
			req := engine.GainRequest{Graph: "CAGrQc", L: 6, R: 200, Seed: 1, Set: set, Nodes: []int{42}}
			get := func() {
				if _, err := eng.Gain(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
			get() // warm: index build + (memo side) table population
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				get()
			}
		})
	}
}

// BenchmarkTopGainsRepeat measures repeated same-set /v1/topgains requests
// against a warm daemon — the traffic shape the ROADMAP's per-entry top-B
// memo question is about. Without that memo every request re-sweeps all n
// candidates (a pure read, but O(n·R) of them); with it a repeat is an O(B)
// copy of the stored winners. memo=off is the fresh-table baseline for
// scale.
func BenchmarkTopGainsRepeat(b *testing.B) {
	g, err := dataset.Load("CAGrQc", 1)
	if err != nil {
		b.Fatal(err)
	}
	const path = "/v1/topgains?graph=CAGrQc&L=6&R=200&set=1,2,3,4,5,6,7,8&b=10"
	for _, memo := range []bool{true, false} {
		name := "memo=on"
		if !memo {
			name = "memo=off"
		}
		b.Run(name, func(b *testing.B) {
			srv, err := server.New(server.Config{
				Graphs:      map[string]*graph.Graph{"CAGrQc": g},
				DisableMemo: !memo,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			handler := srv.Handler()
			get := func() {
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
			get() // warm: index build + (memo side) table population
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				get()
			}
		})
	}
}

// BenchmarkWarmGainRequest measures one warm-set /v1/gain request through
// the daemon's handler stack (request parsing, index acquire, gain
// computation, JSON encoding — driven via ServeHTTP so loopback-TCP
// syscall noise doesn't drown the signal), memoized versus fresh. After the
// first request for a seed set, the memoized path is a pure read of the
// frozen cached D-table, while the fresh path re-materializes an n·R table
// and replays the 16-node set every time — the memo=on/memo=off ratio is
// the headline number for the PR-3 memoized read path. The graph is
// paper-sized and R = 200 so the per-request table work is visible at all;
// the gap only widens with scale.
func BenchmarkWarmGainRequest(b *testing.B) {
	g, err := dataset.Load("CAGrQc", 1)
	if err != nil {
		b.Fatal(err)
	}
	const path = "/v1/gain?graph=CAGrQc&L=6&R=200&set=1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16&nodes=42"
	for _, memo := range []bool{true, false} {
		name := "memo=on"
		if !memo {
			name = "memo=off"
		}
		b.Run(name, func(b *testing.B) {
			srv, err := server.New(server.Config{
				Graphs:      map[string]*graph.Graph{"CAGrQc": g},
				DisableMemo: !memo,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			handler := srv.Handler()
			get := func() {
				req := httptest.NewRequest(http.MethodGet, path, nil)
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
			get() // warm: index build + (memo side) table population
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				get()
			}
		})
	}
}
