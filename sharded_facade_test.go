package rwdom

import (
	"context"
	"math"
	"testing"
)

// A sharded facade Engine must return bit-for-bit the selection an
// unsharded one computes: the partial gain sums over disjoint replicate
// ranges are integers, so the coordinator's merge is exact.
func TestOpenWithShardsParity(t *testing.T) {
	g := testGraph(t)
	ctx := context.Background()

	plain, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	for _, p := range []Problem{Problem1, Problem2} {
		req := SelectRequest{Problem: p, K: 5, L: 4, R: 40, Seed: 3, Strategy: Lazy}
		want, err := plain.Select(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 4} {
			en, err := Open(g, WithShards(shards))
			if err != nil {
				t.Fatal(err)
			}
			got, err := en.Select(ctx, req)
			if err != nil {
				en.Close()
				t.Fatal(err)
			}
			if len(got.Nodes) != len(want.Nodes) {
				t.Fatalf("problem %v shards=%d: %d nodes, want %d", p, shards, len(got.Nodes), len(want.Nodes))
			}
			for i := range want.Nodes {
				if got.Nodes[i] != want.Nodes[i] {
					t.Fatalf("problem %v shards=%d: nodes %v, want %v", p, shards, got.Nodes, want.Nodes)
				}
				if math.Float64bits(got.Gains[i]) != math.Float64bits(want.Gains[i]) {
					t.Fatalf("problem %v shards=%d: gain %d diverges", p, shards, i)
				}
			}
			if math.Float64bits(got.Objective()) != math.Float64bits(want.Objective()) {
				t.Fatalf("problem %v shards=%d: objective diverges", p, shards)
			}

			// Read path parity on the selected prefix.
			gotGain, err := en.Gain(ctx, GainRequest{L: 4, R: 40, Seed: 3, Set: want.Nodes[:2], Nodes: []int{0, 7}})
			if err != nil {
				en.Close()
				t.Fatal(err)
			}
			wantGain, err := plain.Gain(ctx, GainRequest{L: 4, R: 40, Seed: 3, Set: want.Nodes[:2], Nodes: []int{0, 7}})
			if err != nil {
				en.Close()
				t.Fatal(err)
			}
			for i := range wantGain.Gains {
				if math.Float64bits(gotGain.Gains[i]) != math.Float64bits(wantGain.Gains[i]) {
					t.Fatalf("problem %v shards=%d: read gains diverge", p, shards)
				}
			}

			if st := en.ShardStats(); st == nil || st.Shards != shards {
				t.Fatalf("shards=%d: ShardStats %+v", shards, st)
			} else if st.Merges == 0 {
				t.Fatalf("shards=%d: no merges recorded: %+v", shards, st)
			}
			if err := en.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// An unsharded engine reports no shard stats.
	if st := plain.ShardStats(); st != nil {
		t.Fatalf("unsharded engine has ShardStats %+v", st)
	}
}

// Sharded engines refuse index adoption (each shard owns a partial index)
// and refuse contradictory topology options.
func TestOpenShardedRestrictions(t *testing.T) {
	g := testGraph(t)

	if _, err := Open(g, WithShards(2), WithPeers("http://localhost:1")); err == nil {
		t.Fatal("WithShards+WithPeers accepted")
	}

	en, err := Open(g, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	ix, err := BuildIndexParallel(g, 4, 30, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := en.AdoptIndex(ix); ErrorCodeOf(err) != ErrBadRequest {
		t.Fatalf("AdoptIndex on sharded engine: %v", err)
	}

	// WithShards(1) and WithShards(0) stay on the unsharded path.
	for _, n := range []int{0, 1} {
		one, err := Open(g, WithShards(n))
		if err != nil {
			t.Fatal(err)
		}
		if one.ShardStats() != nil {
			t.Fatalf("WithShards(%d) built a coordinator", n)
		}
		one.Close()
	}
}
