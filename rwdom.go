package rwdom

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/hitting"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/simulate"
	"repro/internal/walk"
)

// Graph is an immutable graph in compressed sparse row form; see Builder and
// the Generate/Load constructors.
type Graph = graph.Graph

// Builder accumulates edges and produces a Graph.
type Builder = graph.Builder

// Kind distinguishes undirected from directed graphs.
type Kind = graph.Kind

// Graph kinds.
const (
	Undirected = graph.Undirected
	Directed   = graph.Directed
)

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int, kind Kind) *Builder { return graph.NewBuilder(n, kind) }

// FromEdgeList builds an undirected, unweighted graph from an edge list.
func FromEdgeList(n int, edges [][2]int) (*Graph, error) { return graph.FromEdgeList(n, edges) }

// ReadEdgeList parses a whitespace-separated edge list (SNAP format:
// "u v [w]" lines, '#'/'%' comments) and builds a graph.
func ReadEdgeList(r io.Reader, kind Kind) (*Graph, error) { return graph.ReadEdgeList(r, kind) }

// LoadEdgeListFile reads an edge-list file from disk.
func LoadEdgeListFile(path string, kind Kind) (*Graph, error) {
	return graph.LoadEdgeListFile(path, kind)
}

// GenerateBarabasiAlbert generates a connected power-law graph by
// preferential attachment with a fixed per-node attachment count.
func GenerateBarabasiAlbert(n, mPerNode int, seed uint64) (*Graph, error) {
	return graph.BarabasiAlbert(n, mPerNode, seed)
}

// GeneratePowerLaw generates a connected power-law graph with n nodes and
// approximately m edges (exact up to rare deduplication losses).
func GeneratePowerLaw(n, m int, seed uint64) (*Graph, error) {
	return dataset.PowerLawExact(n, m, seed)
}

// GenerateErdosRenyi generates a uniform random graph with exactly m edges.
func GenerateErdosRenyi(n, m int, seed uint64) (*Graph, error) {
	return graph.ErdosRenyi(n, m, seed)
}

// LoadDataset generates the deterministic stand-in for one of the paper's
// Table 2 datasets ("CAGrQc", "CAHepPh", "Brightkite", "Epinions") at the
// given scale in (0, 1]; scale 1 reproduces the paper's node count.
func LoadDataset(name string, scale float64) (*Graph, error) { return dataset.Load(name, scale) }

// DatasetNames lists the Table 2 dataset names in paper order.
func DatasetNames() []string { return dataset.Names() }

// Algorithm selects the solver used by MinimizeHittingTime and
// MaximizeCoverage.
type Algorithm int

const (
	// AlgorithmAuto picks AlgorithmDP for small graphs (n ≤ 2000) and
	// AlgorithmApprox otherwise.
	AlgorithmAuto Algorithm = iota
	// AlgorithmDP is the DP-based greedy algorithm: exact marginal gains,
	// O(k·n·m·L) time. Small graphs only.
	AlgorithmDP
	// AlgorithmSampling is the sampling-based greedy algorithm: marginal
	// gains re-estimated from fresh walks each round.
	AlgorithmSampling
	// AlgorithmApprox is the paper's approximate greedy algorithm over a
	// materialized inverted index of walk samples: O(k·R·L·n) time,
	// O(n·R·L + m) space, 1 − 1/e − ε guarantee. The default for large
	// graphs.
	AlgorithmApprox
	// AlgorithmDegree is the top-k-degree baseline.
	AlgorithmDegree
	// AlgorithmDominate is the greedy partial dominating-set baseline.
	AlgorithmDominate
	// AlgorithmCore is an extra baseline beyond the paper: top-k nodes by
	// k-core number (ties by degree).
	AlgorithmCore
)

func (a Algorithm) String() string {
	switch a {
	case AlgorithmAuto:
		return "Auto"
	case AlgorithmDP:
		return "DP"
	case AlgorithmSampling:
		return "Sampling"
	case AlgorithmApprox:
		return "Approx"
	case AlgorithmDegree:
		return "Degree"
	case AlgorithmDominate:
		return "Dominate"
	case AlgorithmCore:
		return "Core"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures a selection. The zero value is not useful: set at
// least K and L (and R for the sampled algorithms; DefaultR is the paper's
// recommended value).
type Options struct {
	// K is the number of nodes to select (the cardinality budget).
	K int
	// L bounds the random-walk length; the paper uses L ∈ [2, 10] with
	// L = 6 as the workhorse.
	L int
	// R is the per-node sample size for sampled algorithms. The paper finds
	// R = 100 sufficient (Section 4.2). Defaults to DefaultR when zero and
	// a sampled algorithm is chosen.
	R int
	// Seed fixes the sampling randomness; runs are fully deterministic for
	// a given (graph, Options) pair.
	Seed uint64
	// Algorithm picks the solver; see the Algorithm constants.
	Algorithm Algorithm
	// Lazy enables the CELF lazy-evaluation driver for the DP and
	// approximate algorithms (identical selections, usually far fewer gain
	// evaluations). Defaults to true for AlgorithmAuto resolution.
	Lazy bool
	// Workers shards index construction and the approximate algorithm's
	// gain evaluations over this many goroutines; zero means
	// runtime.GOMAXPROCS(0), i.e. all available cores. Selections are
	// bit-for-bit identical for every worker count — walks are seeded per
	// (node, replicate) and gains accumulate in integers — so the knob only
	// changes wall-clock time.
	Workers int
}

// DefaultR is the sample size the paper recommends for the approximate
// algorithms.
const DefaultR = 100

// Selection reports a selection run; see internal/core.Selection.
type Selection = core.Selection

func (o Options) resolve(g *Graph) (Options, error) {
	if g == nil || g.N() == 0 {
		return o, graph.ErrEmptyGraph
	}
	if o.Algorithm == AlgorithmAuto {
		if g.N() <= 2000 {
			o.Algorithm = AlgorithmDP
		} else {
			o.Algorithm = AlgorithmApprox
		}
		o.Lazy = true
	}
	if o.R == 0 && (o.Algorithm == AlgorithmSampling || o.Algorithm == AlgorithmApprox) {
		o.R = DefaultR
	}
	return o, nil
}

func (o Options) coreOptions() core.Options {
	return core.Options{K: o.K, L: o.L, R: o.R, Seed: o.Seed, Lazy: o.Lazy, Workers: o.Workers}
}

// Solve selects up to Options.K nodes for problem p with the chosen
// solver — the problem-parameterized home of the direct algorithms (DP,
// sampling, and the degree/dominate/core baselines), which have no serving
// equivalent. AlgorithmApprox routes through a throwaway default Engine;
// long-lived approximate users should Open an Engine and Select against it
// instead, sharing walk indexes and memoized reads across calls and
// problems. Baseline algorithms ignore p (they never look at the
// objective).
func Solve(g *Graph, p Problem, opts Options) (*Selection, error) {
	if p != Problem1 && p != Problem2 {
		return nil, fmt.Errorf("rwdom: unknown problem %v", p)
	}
	opts, err := opts.resolve(g)
	if err != nil {
		return nil, err
	}
	switch opts.Algorithm {
	case AlgorithmDP:
		if p == Problem2 {
			return core.DPF2(g, opts.coreOptions())
		}
		return core.DPF1(g, opts.coreOptions())
	case AlgorithmSampling:
		if p == Problem2 {
			return core.SampleF2(g, opts.coreOptions())
		}
		return core.SampleF1(g, opts.coreOptions())
	case AlgorithmApprox:
		return defaultEngineSelect(g, opts, p)
	case AlgorithmDegree:
		return core.Degree(g, opts.K)
	case AlgorithmDominate:
		return core.Dominate(g, opts.K)
	case AlgorithmCore:
		return core.Core(g, opts.K)
	default:
		return nil, fmt.Errorf("rwdom: unknown algorithm %v", opts.Algorithm)
	}
}

// MinimizeHittingTime solves Problem 1: select up to K nodes minimizing the
// total expected L-length hitting time from the remaining nodes
// (equivalently, maximizing F1(S) = nL − Σ_{u∈V\S} h^L_{uS}).
//
// Deprecated: use Open and Engine.Select with Problem1 — the context-first
// API shares walk indexes and memoized reads across calls and problems —
// or Solve with Problem1 for the direct (DP, sampling, baseline)
// algorithms. This shim is Solve(g, Problem1, opts); selections are
// bit-for-bit unchanged.
func MinimizeHittingTime(g *Graph, opts Options) (*Selection, error) {
	return Solve(g, Problem1, opts)
}

// MaximizeCoverage solves Problem 2: select up to K nodes maximizing the
// expected number of nodes whose L-length random walk hits the selection
// (F2(S) = E[Σ_u X^L_{uS}]).
//
// Deprecated: use Open and Engine.Select with Problem2, or Solve with
// Problem2; see MinimizeHittingTime for the shim semantics.
func MaximizeCoverage(g *Graph, opts Options) (*Selection, error) {
	return Solve(g, Problem2, opts)
}

// Metrics holds the paper's two effectiveness metrics: AHT (average hitting
// time, lower is better) and EHN (expected number of dominated nodes, higher
// is better).
type Metrics = metrics.Result

// EvaluateExact computes both metrics for a selection with the exact dynamic
// program (O(mL) time).
func EvaluateExact(g *Graph, S []int, L int) (Metrics, error) {
	return metrics.Exact(g, S, L)
}

// EvaluateSampled estimates both metrics with R random walks per node
// (Algorithm 2); the paper reports metrics at R = 500.
func EvaluateSampled(g *Graph, S []int, L, R int, seed uint64) (Metrics, error) {
	return metrics.Sampled(g, S, L, R, seed)
}

// HittingTimes returns the exact generalized hitting time h^L_{uS} from
// every node u to the set S (Theorem 2.2). Members of S have hitting time
// 0; nodes that cannot reach S within L hops have hitting time L.
func HittingTimes(g *Graph, S []int, L int) ([]float64, error) {
	ev, err := hitting.NewEvaluator(g, L)
	if err != nil {
		return nil, err
	}
	return ev.HitTimesToSet(S, nil)
}

// HitProbabilities returns the exact probability p^L_{uS} that an L-length
// walk from each node u reaches the set S (Theorem 2.3).
func HitProbabilities(g *Graph, S []int, L int) ([]float64, error) {
	ev, err := hitting.NewEvaluator(g, L)
	if err != nil {
		return nil, err
	}
	return ev.HitProbsToSet(S, nil)
}

// SelectCombined maximizes the weighted combined objective
// w·F1/(nL) + (1−w)·F2/n of the paper's first future-work extension, using
// the approximate greedy machinery. w = 1 reduces to Problem 1, w = 0 to
// Problem 2.
func SelectCombined(g *Graph, opts Options, w float64) (*Selection, error) {
	opts, err := opts.resolve(g)
	if err != nil {
		return nil, err
	}
	if opts.R == 0 {
		opts.R = DefaultR
	}
	return core.Combined(g, opts.coreOptions(), w)
}

// PartialCoverResult reports a MinimumCoverSet run.
type PartialCoverResult = core.PartialCoverResult

// MinimumCoverSet solves the paper's complementary future-work problem:
// find the (approximately) minimum set whose expected domination reaches
// alpha·n nodes. Options.K is ignored.
func MinimumCoverSet(g *Graph, opts Options, alpha float64) (*PartialCoverResult, error) {
	opts, err := opts.resolve(g)
	if err != nil {
		return nil, err
	}
	if opts.R == 0 {
		opts.R = DefaultR
	}
	return core.PartialCover(g, opts.coreOptions(), alpha)
}

// EdgeDomination estimates the expected number of distinct edges traversed
// by L-length walks before hitting S (the paper's second future-work
// extension).
func EdgeDomination(g *Graph, S []int, L, R int, seed uint64) (float64, error) {
	return core.EdgeDomination(g, S, L, R, seed)
}

// SampleSize returns the Hoeffding sample size that makes the Algorithm-2
// estimate of F2 accurate to ±εn with probability 1−δ (Lemma 3.4); the
// Problem-1 bound of Lemma 3.3 is within one unit of it.
func SampleSize(n int, eps, delta float64) int {
	return walk.SampleSizeF2(n, eps, delta)
}

// BuildIndex materializes the inverted index of Algorithm 3 (R walks of
// length L per node) for reuse across budgets and problems via
// SelectWithIndex.
func BuildIndex(g *Graph, L, R int, seed uint64) (*Index, error) {
	return index.Build(g, L, R, seed)
}

// Index is the materialized random-walk sample index of Algorithm 3.
type Index = index.Index

// Problem identifies one of the paper's two optimization problems for
// SelectWithIndex.
type Problem = index.Problem

// Problems.
const (
	Problem1 = index.Problem1 // minimize total hitting time
	Problem2 = index.Problem2 // maximize expected coverage
)

// SelectWithIndex runs the approximate greedy algorithm on an already-built
// index, sharing one materialization across problems and budgets. Gain
// evaluations are sharded over all available cores; use
// SelectWithIndexWorkers to pin the worker count.
//
// Deprecated: use Open, Engine.AdoptIndex and Engine.Select — the Engine
// keeps the index resident across calls and adds the memoized gain read
// path on top. This shim routes through a throwaway default Engine that
// adopts ix; selections are bit-for-bit unchanged.
func SelectWithIndex(ix *Index, p Problem, k int, lazy bool) (*Selection, error) {
	return defaultEngineSelectWithIndex(ix, p, k, lazy, 0)
}

// SelectWithIndexWorkers is SelectWithIndex with an explicit worker count
// for the selection loop (0 means all available cores). Selections are
// bit-for-bit identical for every worker count.
//
// Deprecated: use Open, Engine.AdoptIndex and Engine.Select with
// SelectRequest.Workers; see SelectWithIndex.
func SelectWithIndexWorkers(ix *Index, p Problem, k int, lazy bool, workers int) (*Selection, error) {
	return defaultEngineSelectWithIndex(ix, p, k, lazy, workers)
}

// BuildIndexParallel is BuildIndex sharded over the given number of
// goroutines. The materialized walks are identical for every worker count
// (per-walk seeding), so selections are reproducible regardless of
// parallelism.
func BuildIndexParallel(g *Graph, L, R int, seed uint64, workers int) (*Index, error) {
	return index.BuildWorkers(g, L, R, seed, workers)
}

// LoadIndexFile reads an index previously saved with Index.SaveFile and
// binds it to g, rejecting indexes built on a structurally different graph.
// Persisting the index amortizes the dominant cost of the approximate
// algorithm across runs.
func LoadIndexFile(path string, g *Graph) (*Index, error) {
	return index.LoadFile(path, g)
}

// Simulator runs agent-based browsing/search sessions over a graph and
// target set — the independent validation layer for selections, reporting
// realized discovery rates, latency histograms and per-target load rather
// than expectations.
type Simulator = simulate.Simulator

// Outcome aggregates simulated sessions; see Simulator.
type Outcome = simulate.Outcome

// NewSimulator returns a Simulator for sessions of at most L hops targeting
// S.
func NewSimulator(g *Graph, S []int, L int, seed uint64) (*Simulator, error) {
	return simulate.New(g, S, L, seed)
}

// CompareSelections simulates the same session workload under several
// alternative selections and returns outcomes keyed by name — an offline
// A/B test for placements.
func CompareSelections(g *Graph, L int, seed uint64, sessionsPerNode int, selections map[string][]int) (map[string]*Outcome, error) {
	return simulate.CompareSelections(g, L, seed, sessionsPerNode, selections)
}

// AdaptiveResult reports a SelectAdaptive run; see
// internal/core.AdaptiveResult.
type AdaptiveResult = core.AdaptiveResult

// SelectAdaptive runs the approximate greedy algorithm with geometrically
// increasing sample sizes until the selection stabilizes (Jaccard similarity
// of consecutive selections ≥ stability). It answers "what R do I need on
// this graph?" automatically; the paper fixes R = 100 empirically.
func SelectAdaptive(g *Graph, opts Options, p Problem, stability float64) (*AdaptiveResult, error) {
	return core.ApproxAdaptive(g, opts.coreOptions(), p, stability)
}

// SelectStochastic runs the approximate greedy algorithm with the
// stochastic-greedy driver ("lazier than lazy greedy"): each round evaluates
// only a random ⌈(n/K)·ln(1/eps)⌉-subset of candidates, giving O(n·ln(1/eps))
// total gain evaluations independent of K, at the cost of an extra eps in
// the expectation guarantee. Prefer it when both n and K are large.
func SelectStochastic(g *Graph, opts Options, p Problem, eps float64) (*Selection, error) {
	o, err := opts.resolve(g)
	if err != nil {
		return nil, err
	}
	if o.R == 0 {
		o.R = DefaultR
	}
	return core.ApproxStochastic(g, o.coreOptions(), p, eps)
}

// AnalyzeGraph summarizes the structural statistics relevant to selecting an
// algorithm and interpreting results: basic Stats plus clustering,
// assortativity and rich-club connectivity.
type GraphAnalysis struct {
	Stats            graph.Stats
	GlobalClustering float64
	LocalClustering  float64
	Assortativity    float64
	RichClubTop1pct  float64
	Top1pctDegreeCut int
}

// AnalyzeGraph computes a GraphAnalysis. O(Σ d², i.e. triangle counting)
// time; fine up to millions of edges.
func AnalyzeGraph(g *Graph) (GraphAnalysis, error) {
	a := GraphAnalysis{
		Stats:            g.ComputeStats(),
		GlobalClustering: g.GlobalClustering(),
		LocalClustering:  g.MeanLocalClustering(),
		Assortativity:    g.DegreeAssortativity(),
	}
	cut, err := g.DegreePercentile(99)
	if err != nil {
		return a, err
	}
	a.Top1pctDegreeCut = cut
	a.RichClubTop1pct = g.RichClubCoefficient(cut)
	return a, nil
}
