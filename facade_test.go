package rwdom

import (
	"context"
	"math"
	"path/filepath"
	"testing"
)

func TestSelectStochasticFacade(t *testing.T) {
	g := testGraph(t)
	sel, err := SelectStochastic(g, Options{K: 5, L: 4, R: 50, Seed: 3}, Problem2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Nodes) != 5 {
		t.Fatalf("stochastic selected %d nodes", len(sel.Nodes))
	}
	// Defaulted R path.
	sel, err = SelectStochastic(g, Options{K: 3, L: 4, Seed: 3}, Problem1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Nodes) != 3 {
		t.Fatal("stochastic with defaulted R failed")
	}
	if _, err := SelectStochastic(nil, Options{K: 1, L: 2}, Problem1, 0.1); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := SelectStochastic(g, Options{K: 1, L: 2, R: 10}, Problem1, 0); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestSelectAdaptiveFacade(t *testing.T) {
	g, _ := GenerateBarabasiAlbert(150, 2, 8)
	res, err := SelectAdaptive(g, Options{K: 3, L: 4, R: 25, Seed: 1, Lazy: true}, Problem2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 3 || res.RUsed < 25 {
		t.Fatalf("adaptive result %+v", res)
	}
}

func TestIndexSaveLoadFacade(t *testing.T) {
	g := testGraph(t)
	ix, err := BuildIndexParallel(g, 4, 30, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.bin")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadIndexFile(path, g)
	if err != nil {
		t.Fatal(err)
	}
	selectAdopted := func(adopted *Index) *Selection {
		t.Helper()
		en, err := Open(g)
		if err != nil {
			t.Fatal(err)
		}
		defer en.Close()
		if err := en.AdoptIndex(adopted); err != nil {
			t.Fatal(err)
		}
		res, err := en.Select(context.Background(), SelectRequest{Problem: Problem1, K: 4, L: 4, R: 30, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return &Selection{Nodes: res.Nodes, Gains: res.Gains}
	}
	a, b := selectAdopted(ix), selectAdopted(back)
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatal("loaded index gives different selection")
		}
	}
	// Wrong graph rejected.
	other, _ := GeneratePowerLaw(300, 1500, 77)
	if _, err := LoadIndexFile(path, other); err == nil {
		t.Error("index loaded against wrong graph")
	}
}

func TestSimulatorFacade(t *testing.T) {
	g, _ := GenerateBarabasiAlbert(100, 2, 4)
	sel, err := Solve(g, Problem2, Options{K: 5, L: 5, R: 50, Algorithm: AlgorithmApprox})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(g, sel.Nodes, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.RunAll(20)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sessions == 0 || out.DiscoveryRate() <= 0 {
		t.Fatalf("implausible outcome %+v", out)
	}
	// Simulated mean latency close to exact AHT.
	m, _ := EvaluateExact(g, sel.Nodes, 5)
	if diff := out.MeanLatency - m.AHT; diff > 0.3 || diff < -0.3 {
		t.Fatalf("simulated latency %v vs exact AHT %v", out.MeanLatency, m.AHT)
	}
}

func TestCompareSelectionsFacade(t *testing.T) {
	g, _ := GenerateBarabasiAlbert(100, 2, 4)
	outs, err := CompareSelections(g, 4, 1, 10, map[string][]int{
		"a": {0, 1},
		"b": {50, 51},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || outs["a"] == nil || outs["b"] == nil {
		t.Fatalf("outcomes %v", outs)
	}
}

func TestAnalyzeGraphFacade(t *testing.T) {
	g, err := LoadDataset("CAGrQc", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Nodes != g.N() {
		t.Fatalf("analysis nodes %d", a.Stats.Nodes)
	}
	if a.GlobalClustering <= 0 || a.LocalClustering <= 0 {
		t.Fatalf("community stand-in should have positive clustering: %+v", a)
	}
	if a.Top1pctDegreeCut <= 0 {
		t.Fatalf("degree cut %d", a.Top1pctDegreeCut)
	}
}

// TestEngineApplyDeltaFacade drives the mutation surface through the public
// API, unsharded and sharded: a mutated warm Engine must answer selections
// bit-identically to a fresh Engine opened over the already-mutated graph,
// and the mutation-specific error codes must surface typed.
func TestEngineApplyDeltaFacade(t *testing.T) {
	g := testGraph(t)
	u := 0
	for g.Degree(u) == 0 {
		u++
	}
	v := int(g.Neighbors(u)[0])
	d := Delta{AddNodes: 1, AddEdges: []Edge{{U: g.N(), V: u}}, RemoveEdges: []Edge{{U: u, V: v}}}
	mutated, _, err := g.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := SelectRequest{Problem: Problem2, K: 5, L: 4, R: 40, Seed: 11}

	for _, shards := range []int{0, 2} {
		var opts []Option
		if shards > 1 {
			opts = append(opts, WithShards(shards))
		}
		en, err := Open(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer en.Close()
		if _, err := en.Select(ctx, req); err != nil { // warm the index
			t.Fatal(err)
		}
		res, err := en.ApplyDelta(ctx, ApplyDeltaRequest{Delta: d})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Epoch != 1 || res.Nodes != g.N()+1 {
			t.Fatalf("shards=%d: mutation result %+v", shards, res)
		}

		ref, err := Open(mutated, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer ref.Close()
		got, err := en.Select(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Select(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Nodes {
			if got.Nodes[i] != want.Nodes[i] || math.Float64bits(got.Gains[i]) != math.Float64bits(want.Gains[i]) {
				t.Fatalf("shards=%d: post-mutation selection diverges at %d: %d/%v want %d/%v",
					shards, i, got.Nodes[i], got.Gains[i], want.Nodes[i], want.Gains[i])
			}
		}

		// Typed conflicts: re-removing the removed edge, and a stale epoch pin.
		_, err = en.ApplyDelta(ctx, ApplyDeltaRequest{Delta: Delta{RemoveEdges: []Edge{{U: u, V: v}}}})
		if ErrorCodeOf(err) != ErrConflict {
			t.Fatalf("shards=%d: removing a missing edge: code %q, want %q", shards, ErrorCodeOf(err), ErrConflict)
		}
		stale := uint64(0)
		_, err = en.ApplyDelta(ctx, ApplyDeltaRequest{Delta: d, BaseEpoch: &stale})
		if ErrorCodeOf(err) != ErrConflict {
			t.Fatalf("shards=%d: stale BaseEpoch: code %q, want %q", shards, ErrorCodeOf(err), ErrConflict)
		}
	}
}
