package rwdom

import (
	"context"
	"path/filepath"
	"testing"
)

func TestSelectStochasticFacade(t *testing.T) {
	g := testGraph(t)
	sel, err := SelectStochastic(g, Options{K: 5, L: 4, R: 50, Seed: 3}, Problem2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Nodes) != 5 {
		t.Fatalf("stochastic selected %d nodes", len(sel.Nodes))
	}
	// Defaulted R path.
	sel, err = SelectStochastic(g, Options{K: 3, L: 4, Seed: 3}, Problem1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Nodes) != 3 {
		t.Fatal("stochastic with defaulted R failed")
	}
	if _, err := SelectStochastic(nil, Options{K: 1, L: 2}, Problem1, 0.1); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := SelectStochastic(g, Options{K: 1, L: 2, R: 10}, Problem1, 0); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestSelectAdaptiveFacade(t *testing.T) {
	g, _ := GenerateBarabasiAlbert(150, 2, 8)
	res, err := SelectAdaptive(g, Options{K: 3, L: 4, R: 25, Seed: 1, Lazy: true}, Problem2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 3 || res.RUsed < 25 {
		t.Fatalf("adaptive result %+v", res)
	}
}

func TestIndexSaveLoadFacade(t *testing.T) {
	g := testGraph(t)
	ix, err := BuildIndexParallel(g, 4, 30, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.bin")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadIndexFile(path, g)
	if err != nil {
		t.Fatal(err)
	}
	selectAdopted := func(adopted *Index) *Selection {
		t.Helper()
		en, err := Open(g)
		if err != nil {
			t.Fatal(err)
		}
		defer en.Close()
		if err := en.AdoptIndex(adopted); err != nil {
			t.Fatal(err)
		}
		res, err := en.Select(context.Background(), SelectRequest{Problem: Problem1, K: 4, L: 4, R: 30, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return &Selection{Nodes: res.Nodes, Gains: res.Gains}
	}
	a, b := selectAdopted(ix), selectAdopted(back)
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatal("loaded index gives different selection")
		}
	}
	// Wrong graph rejected.
	other, _ := GeneratePowerLaw(300, 1500, 77)
	if _, err := LoadIndexFile(path, other); err == nil {
		t.Error("index loaded against wrong graph")
	}
}

func TestSimulatorFacade(t *testing.T) {
	g, _ := GenerateBarabasiAlbert(100, 2, 4)
	sel, err := Solve(g, Problem2, Options{K: 5, L: 5, R: 50, Algorithm: AlgorithmApprox})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(g, sel.Nodes, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.RunAll(20)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sessions == 0 || out.DiscoveryRate() <= 0 {
		t.Fatalf("implausible outcome %+v", out)
	}
	// Simulated mean latency close to exact AHT.
	m, _ := EvaluateExact(g, sel.Nodes, 5)
	if diff := out.MeanLatency - m.AHT; diff > 0.3 || diff < -0.3 {
		t.Fatalf("simulated latency %v vs exact AHT %v", out.MeanLatency, m.AHT)
	}
}

func TestCompareSelectionsFacade(t *testing.T) {
	g, _ := GenerateBarabasiAlbert(100, 2, 4)
	outs, err := CompareSelections(g, 4, 1, 10, map[string][]int{
		"a": {0, 1},
		"b": {50, 51},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || outs["a"] == nil || outs["b"] == nil {
		t.Fatalf("outcomes %v", outs)
	}
}

func TestAnalyzeGraphFacade(t *testing.T) {
	g, err := LoadDataset("CAGrQc", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Nodes != g.N() {
		t.Fatalf("analysis nodes %d", a.Stats.Nodes)
	}
	if a.GlobalClustering <= 0 || a.LocalClustering <= 0 {
		t.Fatalf("community stand-in should have positive clustering: %+v", a)
	}
	if a.Top1pctDegreeCut <= 0 {
		t.Fatalf("degree cut %d", a.Top1pctDegreeCut)
	}
}
