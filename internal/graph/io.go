package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list from r and builds a
// graph of the given kind. The format matches the SNAP datasets the paper
// uses: one "u v" (or "u v w" for weighted graphs) pair per line, lines
// beginning with '#' or '%' are comments, blank lines are ignored. Node IDs
// may be arbitrary non-negative integers; they are remapped to a dense
// [0, n) range in order of first appearance. Duplicate edges collapse to one
// and pairs appearing in both orders collapse to a single undirected edge.
//
// Self-loops, which some raw datasets contain, are skipped rather than
// rejected because the paper's model has no use for them: a walk at u never
// "moves" to u.
func ReadEdgeList(r io.Reader, kind Kind) (*Graph, error) {
	type rawEdge struct {
		u, v int
		w    float64
	}
	var edges []rawEdge
	idOf := make(map[int]int)
	intern := func(raw int) int {
		if id, ok := idOf[raw]; ok {
			return id
		}
		id := len(idOf)
		idOf[raw] = id
		return id
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 2 or 3 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node id %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node id %q: %w", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineNo)
		}
		w := 1.0
		if len(fields) == 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %w", lineNo, fields[2], err)
			}
			if w <= 0 {
				return nil, fmt.Errorf("graph: line %d: weight %v: %w", lineNo, w, ErrBadWeight)
			}
		}
		if u == v {
			continue // skip self-loops present in raw datasets
		}
		edges = append(edges, rawEdge{intern(u), intern(v), w})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	if len(idOf) == 0 {
		return nil, ErrEmptyGraph
	}
	b := NewBuilder(len(idOf), kind)
	for _, e := range edges {
		b.AddWeightedEdge(e.u, e.v, e.w)
	}
	return b.Build()
}

// LoadEdgeListFile reads an edge-list file from disk; see ReadEdgeList.
func LoadEdgeListFile(path string, kind Kind) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return ReadEdgeList(f, kind)
}

// WriteEdgeList writes the graph as a plain edge list, one edge per line,
// with a summary comment header. Undirected edges are written once with
// u < v. Weighted graphs emit a third column.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %s\n", g); err != nil {
		return err
	}
	var writeErr error
	g.Edges(func(u, v int, wt float64) bool {
		var err error
		if g.Weighted() {
			_, err = fmt.Fprintf(bw, "%d %d %g\n", u, v, wt)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
		if err != nil {
			writeErr = err
			return false
		}
		return true
	})
	if writeErr != nil {
		return fmt.Errorf("graph: writing edge list: %w", writeErr)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: writing edge list: %w", err)
	}
	return nil
}

// SaveEdgeListFile writes the graph to a file; see WriteEdgeList. The write
// is atomic (temp file in the destination directory, then rename), so a
// crash, a full disk, or a concurrent reader mid-write can never leave — or
// observe — a truncated edge list under the final name: the file either
// keeps its previous content or carries the complete new one.
func (g *Graph) SaveEdgeListFile(path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	tmp := f.Name()
	if err := g.WriteEdgeList(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("graph: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("graph: %w", err)
	}
	return nil
}
