package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph mutation. Graphs stay immutable values: ApplyDelta is copy-on-write,
// returning a new *Graph one epoch newer and leaving the receiver untouched,
// so in-flight readers of the old graph are never disturbed and the old and
// new versions can coexist (the engine serves requests that began before a
// mutation from the old snapshot). The returned touched-node list is the
// contract the incremental walk-index repair builds on: a node is touched
// iff its adjacency row changed, and a random walk's trajectory depends
// only on the adjacency rows of the nodes it visits — so any walk whose old
// trajectory avoids every touched node replays bit-identically on the new
// graph and needs no repair.

// Mutation errors. ErrEdgeExists and ErrEdgeMissing are conflicts with the
// current graph state (the delta may be valid against a different epoch);
// the remaining validation failures reuse the construction errors
// (ErrNodeRange, ErrSelfLoop, ErrBadWeight).
var (
	ErrEdgeExists    = errors.New("graph: edge already exists")
	ErrEdgeMissing   = errors.New("graph: edge does not exist")
	ErrDuplicateEdge = errors.New("graph: edge appears more than once in delta")
)

// Edge names one edge (undirected) or arc (directed) of a Delta. W is the
// edge weight for additions to weighted graphs; zero means "default"
// (weight 1). Unweighted graphs reject any other weight — a delta cannot
// turn an unweighted graph weighted. W is ignored on removals.
type Edge struct {
	U, V int
	W    float64
}

// Delta is one atomic batch of graph mutations: removals are validated and
// applied together with additions and node growth, and the whole batch
// advances the epoch by exactly one. New nodes get the next AddNodes dense
// IDs [N, N+AddNodes); edges in AddEdges may reference them.
type Delta struct {
	// AddNodes appends this many fresh (initially isolated) nodes.
	AddNodes int
	// AddEdges are edges to insert. Each must be absent from the graph and
	// must appear at most once in the delta (an undirected pair counts both
	// orientations as the same edge).
	AddEdges []Edge
	// RemoveEdges are edges to delete. Each must be present in the graph.
	RemoveEdges []Edge
}

// Empty reports whether the delta mutates nothing.
func (d Delta) Empty() bool {
	return d.AddNodes == 0 && len(d.AddEdges) == 0 && len(d.RemoveEdges) == 0
}

// pairKey canonicalizes an edge for duplicate detection: undirected pairs
// are unordered.
func pairKey(kind Kind, u, v int) [2]int {
	if kind == Undirected && u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// rowDelta collects one node's adjacency-row changes.
type rowDelta struct {
	add    []int32
	addW   []float64
	remove []int32
}

// ApplyDelta validates d against g and returns the mutated graph (epoch
// g.Epoch()+1) plus the sorted list of touched nodes — nodes whose
// adjacency row changed (both endpoints for undirected edges, the tail for
// directed arcs; freshly added nodes count as touched when they receive
// edges). g itself is never modified. On any validation failure nothing is
// applied: the delta is all-or-nothing.
//
// Cost: O(n + m) to copy the CSR arrays plus O(Δ log Δ) for the delta
// itself; weighted graphs additionally rebuild the cumulative-weight and
// alias tables (O(m)). The array copy is a contiguous memcpy — cheap next
// to the walk regeneration the caller typically performs afterwards.
func (g *Graph) ApplyDelta(d Delta) (*Graph, []int, error) {
	if d.AddNodes < 0 {
		return nil, nil, fmt.Errorf("graph: AddNodes=%d: %w", d.AddNodes, ErrNegativeN)
	}
	newN := g.n + d.AddNodes

	seen := make(map[[2]int]struct{}, len(d.AddEdges)+len(d.RemoveEdges))
	note := func(u, v int) error {
		k := pairKey(g.kind, u, v)
		if _, dup := seen[k]; dup {
			return fmt.Errorf("graph: edge (%d,%d): %w", u, v, ErrDuplicateEdge)
		}
		seen[k] = struct{}{}
		return nil
	}

	rows := make(map[int]*rowDelta)
	row := func(u int) *rowDelta {
		rd := rows[u]
		if rd == nil {
			rd = &rowDelta{}
			rows[u] = rd
		}
		return rd
	}

	for _, e := range d.RemoveEdges {
		if e.U < 0 || e.U >= g.n || e.V < 0 || e.V >= g.n {
			return nil, nil, fmt.Errorf("graph: remove (%d,%d) with n=%d: %w", e.U, e.V, g.n, ErrNodeRange)
		}
		if e.U == e.V {
			return nil, nil, fmt.Errorf("graph: remove (%d,%d): %w", e.U, e.V, ErrSelfLoop)
		}
		if err := note(e.U, e.V); err != nil {
			return nil, nil, err
		}
		if !g.HasEdge(e.U, e.V) {
			return nil, nil, fmt.Errorf("graph: remove (%d,%d): %w", e.U, e.V, ErrEdgeMissing)
		}
		row(e.U).remove = append(row(e.U).remove, int32(e.V))
		if g.kind == Undirected {
			row(e.V).remove = append(row(e.V).remove, int32(e.U))
		}
	}
	for _, e := range d.AddEdges {
		if e.U < 0 || e.U >= newN || e.V < 0 || e.V >= newN {
			return nil, nil, fmt.Errorf("graph: add (%d,%d) with n=%d (+%d new): %w", e.U, e.V, g.n, d.AddNodes, ErrNodeRange)
		}
		if e.U == e.V {
			return nil, nil, fmt.Errorf("graph: add (%d,%d): %w", e.U, e.V, ErrSelfLoop)
		}
		w := e.W
		if w == 0 {
			w = 1
		}
		if w < 0 || (!g.Weighted() && w != 1) {
			return nil, nil, fmt.Errorf("graph: add (%d,%d) weight %v on %s graph: %w", e.U, e.V, e.W, map[bool]string{true: "weighted", false: "unweighted"}[g.Weighted()], ErrBadWeight)
		}
		if err := note(e.U, e.V); err != nil {
			return nil, nil, err
		}
		if e.U < g.n && g.HasEdge(e.U, e.V) {
			return nil, nil, fmt.Errorf("graph: add (%d,%d): %w", e.U, e.V, ErrEdgeExists)
		}
		rd := row(e.U)
		rd.add = append(rd.add, int32(e.V))
		rd.addW = append(rd.addW, w)
		if g.kind == Undirected {
			rd = row(e.V)
			rd.add = append(rd.add, int32(e.U))
			rd.addW = append(rd.addW, w)
		}
	}

	ng := &Graph{
		kind:  g.kind,
		n:     newN,
		m:     g.m + len(d.AddEdges) - len(d.RemoveEdges),
		epoch: g.epoch + 1,
	}

	// New degrees, then the CSR prefix.
	ng.offsets = make([]int32, newN+1)
	for u := 0; u < newN; u++ {
		deg := 0
		if u < g.n {
			deg = g.Degree(u)
		}
		if rd := rows[u]; rd != nil {
			deg += len(rd.add) - len(rd.remove)
		}
		ng.offsets[u+1] = ng.offsets[u] + int32(deg)
	}
	total := int(ng.offsets[newN])
	ng.adj = make([]int32, total)
	if g.Weighted() {
		ng.weights = make([]float64, total)
	}

	for u := 0; u < newN; u++ {
		dst := int(ng.offsets[u])
		rd := rows[u]
		if rd == nil {
			if u < g.n {
				lo, hi := g.offsets[u], g.offsets[u+1]
				copy(ng.adj[dst:], g.adj[lo:hi])
				if ng.weights != nil {
					copy(ng.weights[dst:], g.weights[lo:hi])
				}
			}
			continue
		}
		// Merge: old row minus removals, plus additions, kept sorted.
		removed := make(map[int32]struct{}, len(rd.remove))
		for _, v := range rd.remove {
			removed[v] = struct{}{}
		}
		if u < g.n {
			lo, hi := g.offsets[u], g.offsets[u+1]
			for i := lo; i < hi; i++ {
				if _, drop := removed[g.adj[i]]; drop {
					continue
				}
				ng.adj[dst] = g.adj[i]
				if ng.weights != nil {
					ng.weights[dst] = g.weights[i]
				}
				dst++
			}
		}
		for i, v := range rd.add {
			ng.adj[dst] = v
			if ng.weights != nil {
				ng.weights[dst] = rd.addW[i]
			}
			dst++
		}
		lo, hi := ng.offsets[u], ng.offsets[u+1]
		if ng.weights == nil {
			rowSlice := ng.adj[lo:hi]
			sort.Slice(rowSlice, func(i, j int) bool { return rowSlice[i] < rowSlice[j] })
		} else {
			sort.Sort(&rowSorter{ng.adj[lo:hi], ng.weights[lo:hi]})
		}
	}

	if ng.weights != nil {
		// Per-row prefixes, then the global running conversion — exactly the
		// builder's construction so mutated and rebuilt graphs match
		// bit-for-bit.
		ng.cumWeights = make([]float64, total)
		for u := 0; u < newN; u++ {
			lo, hi := ng.offsets[u], ng.offsets[u+1]
			sum := 0.0
			for i := lo; i < hi; i++ {
				sum += ng.weights[i]
				ng.cumWeights[i] = sum
			}
		}
		running := 0.0
		for u := 0; u < newN; u++ {
			lo, hi := ng.offsets[u], ng.offsets[u+1]
			for i := lo; i < hi; i++ {
				ng.cumWeights[i] += running
			}
			if hi > lo {
				running = ng.cumWeights[hi-1]
			}
		}
		ng.buildAliasTables()
	}

	touched := make([]int, 0, len(rows))
	for u := range rows {
		touched = append(touched, u)
	}
	sort.Ints(touched)
	return ng, touched, nil
}
