package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestCoreNumbersKnownGraphs(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
		want []int
	}{
		{"path4", mustGen(Path(4)), []int{1, 1, 1, 1}},
		{"cycle5", mustGen(Cycle(5)), []int{2, 2, 2, 2, 2}},
		{"K4", mustGen(Complete(4)), []int{3, 3, 3, 3}},
		{"star5", mustGen(Star(5)), []int{1, 1, 1, 1, 1}},
		{"triangle+pendant", MustFromEdgeList(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}}), []int{2, 2, 2, 1}},
	} {
		got := tc.g.CoreNumbers()
		for u := range tc.want {
			if got[u] != tc.want[u] {
				t.Errorf("%s: core[%d] = %d, want %d", tc.name, u, got[u], tc.want[u])
			}
		}
	}
}

func TestCoreNumberIsolated(t *testing.T) {
	g := MustFromEdgeList(3, [][2]int{{0, 1}})
	core := g.CoreNumbers()
	if core[2] != 0 {
		t.Fatalf("isolated core = %d", core[2])
	}
}

// coreInvariant checks the defining property by brute force: iteratively
// peel nodes of degree < k and confirm membership in the k-core.
func coreInvariant(g *Graph, core []int) bool {
	n := g.N()
	for k := 1; k <= maxOf(core); k++ {
		alive := make([]bool, n)
		deg := make([]int, n)
		for u := 0; u < n; u++ {
			alive[u] = true
			deg[u] = g.Degree(u)
		}
		changed := true
		for changed {
			changed = false
			for u := 0; u < n; u++ {
				if alive[u] && deg[u] < k {
					alive[u] = false
					changed = true
					for _, v := range g.Neighbors(u) {
						if alive[v] {
							deg[v]--
						}
					}
				}
			}
		}
		for u := 0; u < n; u++ {
			if alive[u] != (core[u] >= k) {
				return false
			}
		}
	}
	return true
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestCoreNumbersAgainstPeeling(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(30)
		m := r.Intn(n*(n-1)/2 + 1)
		g, err := ErdosRenyi(n, m, seed)
		if err != nil {
			return false
		}
		return coreInvariant(g, g.CoreNumbers())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDegeneracy(t *testing.T) {
	if d := mustGen(Complete(5)).Degeneracy(); d != 4 {
		t.Fatalf("K5 degeneracy %d, want 4", d)
	}
	if d := mustGen(Path(10)).Degeneracy(); d != 1 {
		t.Fatalf("path degeneracy %d, want 1", d)
	}
}

func TestTopKByCore(t *testing.T) {
	// Triangle (core 2) + star hub (core 1, but high degree): core ranking
	// puts the triangle first, unlike degree ranking.
	b := NewBuilder(9, Undirected)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	for leaf := 4; leaf < 9; leaf++ {
		b.AddEdge(3, leaf)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	top := g.TopKByCore(3)
	want := map[int]bool{0: true, 1: true, 2: true}
	for _, u := range top {
		if !want[u] {
			t.Fatalf("TopKByCore = %v, want the triangle {0,1,2}", top)
		}
	}
	byDeg := g.TopKByDegree(1)
	if byDeg[0] != 3 {
		t.Fatalf("degree ranking should pick the star hub, got %v", byDeg)
	}
	if got := g.TopKByCore(100); len(got) != 9 {
		t.Fatalf("k clamp broken: %d", len(got))
	}
}
