package graph

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarizes degree and connectivity statistics of a graph. It backs
// the Table 2 dataset summary and the dataset stand-in calibration tests.
type Stats struct {
	Nodes        int
	Edges        int
	MinDegree    int
	MaxDegree    int
	MeanDegree   float64
	MedianDegree float64
	DegreeGini   float64 // Gini coefficient of the degree distribution
	Components   int
	LargestComp  int
	Isolated     int
}

// ComputeStats collects the statistics in a single pass plus a component
// labeling.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Nodes: g.n, Edges: g.m, MinDegree: math.MaxInt}
	degs := make([]int, g.n)
	sum := 0
	for u := 0; u < g.n; u++ {
		d := g.Degree(u)
		degs[u] = d
		sum += d
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d == 0 {
			s.Isolated++
		}
	}
	if g.n == 0 {
		s.MinDegree = 0
		return s
	}
	s.MeanDegree = float64(sum) / float64(g.n)
	sort.Ints(degs)
	if g.n%2 == 1 {
		s.MedianDegree = float64(degs[g.n/2])
	} else {
		s.MedianDegree = float64(degs[g.n/2-1]+degs[g.n/2]) / 2
	}
	s.DegreeGini = gini(degs)
	labels, count := g.ConnectedComponents()
	s.Components = count
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	for _, sz := range sizes {
		if sz > s.LargestComp {
			s.LargestComp = sz
		}
	}
	return s
}

// gini computes the Gini coefficient of a sorted non-negative sample.
// 0 means perfectly uniform degrees; values near 1 mean extreme skew.
// Power-law graphs land noticeably higher than Erdős–Rényi graphs of the
// same density, which the dataset stand-in tests assert.
func gini(sorted []int) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	var cum, total float64
	for i, v := range sorted {
		cum += float64(i+1) * float64(v)
		total += float64(v)
	}
	if total == 0 {
		return 0
	}
	return (2*cum/(float64(n)*total) - float64(n+1)/float64(n))
}

// String renders the stats as a single line suitable for dataset tables.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d deg[min=%d med=%.0f mean=%.2f max=%d gini=%.3f] comps=%d largest=%d isolated=%d",
		s.Nodes, s.Edges, s.MinDegree, s.MedianDegree, s.MeanDegree, s.MaxDegree, s.DegreeGini,
		s.Components, s.LargestComp, s.Isolated)
}

// DegreeHistogram returns counts[d] = number of nodes with degree d, up to
// the maximum degree present.
func (g *Graph) DegreeHistogram() []int {
	maxD := 0
	for u := 0; u < g.n; u++ {
		if d := g.Degree(u); d > maxD {
			maxD = d
		}
	}
	counts := make([]int, maxD+1)
	for u := 0; u < g.n; u++ {
		counts[g.Degree(u)]++
	}
	return counts
}

// TopKByDegree returns the k nodes with the highest degree, ties broken by
// lower node id, in descending degree order. This is exactly the paper's
// Degree baseline selection.
func (g *Graph) TopKByDegree(k int) []int {
	if k > g.n {
		k = g.n
	}
	ids := make([]int, g.n)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := g.Degree(ids[a]), g.Degree(ids[b])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	return ids[:k]
}
