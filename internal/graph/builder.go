package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. The zero value
// is not usable; construct with NewBuilder. Builders deduplicate parallel
// edges at Build time (keeping the last weight seen) and reject self-loops,
// matching the paper's simple-graph model.
type Builder struct {
	kind     Kind
	n        int
	weighted bool
	us, vs   []int32
	ws       []float64
	err      error
}

// NewBuilder returns a builder for a graph with n nodes of the given kind.
func NewBuilder(n int, kind Kind) *Builder {
	b := &Builder{kind: kind, n: n}
	if n < 0 {
		b.err = ErrNegativeN
	}
	return b
}

// AddEdge records an unweighted edge (weight 1). For undirected graphs the
// order of endpoints does not matter. Errors are sticky and reported by
// Build.
func (b *Builder) AddEdge(u, v int) {
	b.AddWeightedEdge(u, v, 1)
}

// AddWeightedEdge records an edge with the given positive weight and marks
// the builder weighted if w != 1.
func (b *Builder) AddWeightedEdge(u, v int, w float64) {
	if b.err != nil {
		return
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		b.err = fmt.Errorf("graph: edge (%d,%d) with n=%d: %w", u, v, b.n, ErrNodeRange)
		return
	}
	if u == v {
		b.err = fmt.Errorf("graph: edge (%d,%d): %w", u, v, ErrSelfLoop)
		return
	}
	if w <= 0 {
		b.err = fmt.Errorf("graph: edge (%d,%d) weight %v: %w", u, v, w, ErrBadWeight)
		return
	}
	if w != 1 {
		b.weighted = true
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
	b.ws = append(b.ws, w)
}

// Len returns the number of edges recorded so far (before deduplication).
func (b *Builder) Len() int { return len(b.us) }

// Build produces the immutable Graph. It deduplicates parallel edges (the
// last weight recorded for a pair wins), sorts adjacency rows, and, for
// weighted graphs, precomputes per-row cumulative weights for O(log deg)
// neighbor sampling.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.n == 0 {
		return nil, ErrEmptyGraph
	}

	type edge struct {
		u, v int32
		w    float64
	}
	edges := make([]edge, 0, len(b.us))
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		if b.kind == Undirected && u > v {
			u, v = v, u
		}
		edges = append(edges, edge{u, v, b.ws[i]})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	// Deduplicate, keeping the last weight for each pair.
	dedup := edges[:0]
	for _, e := range edges {
		if len(dedup) > 0 && dedup[len(dedup)-1].u == e.u && dedup[len(dedup)-1].v == e.v {
			dedup[len(dedup)-1].w = e.w
			continue
		}
		dedup = append(dedup, e)
	}
	edges = dedup

	g := &Graph{kind: b.kind, n: b.n, m: len(edges)}
	degree := make([]int32, b.n)
	for _, e := range edges {
		degree[e.u]++
		if b.kind == Undirected {
			degree[e.v]++
		}
	}
	g.offsets = make([]int32, b.n+1)
	for u := 0; u < b.n; u++ {
		g.offsets[u+1] = g.offsets[u] + degree[u]
	}
	total := int(g.offsets[b.n])
	g.adj = make([]int32, total)
	var weights []float64
	if b.weighted {
		weights = make([]float64, total)
	}
	cursor := make([]int32, b.n)
	copy(cursor, g.offsets[:b.n])
	place := func(u, v int32, w float64) {
		i := cursor[u]
		g.adj[i] = v
		if weights != nil {
			weights[i] = w
		}
		cursor[u] = i + 1
	}
	for _, e := range edges {
		place(e.u, e.v, e.w)
		if b.kind == Undirected {
			place(e.v, e.u, e.w)
		}
	}
	// Rows were filled in (u, v)-sorted edge order; for undirected graphs the
	// reverse placements arrive out of order, so sort each row (with parallel
	// weights when present).
	for u := 0; u < b.n; u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		row := g.adj[lo:hi]
		if weights == nil {
			sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		} else {
			wrow := weights[lo:hi]
			sort.Sort(&rowSorter{row, wrow})
		}
	}
	g.weights = weights
	if weights != nil {
		g.cumWeights = make([]float64, total)
		for u := 0; u < b.n; u++ {
			lo, hi := g.offsets[u], g.offsets[u+1]
			sum := 0.0
			for i := lo; i < hi; i++ {
				sum += weights[i]
				g.cumWeights[i] = sum
			}
		}
		// Make cumWeights globally usable for WeightDegree: convert per-row
		// prefix sums into a single running prefix over adj order.
		running := 0.0
		for u := 0; u < b.n; u++ {
			lo, hi := g.offsets[u], g.offsets[u+1]
			for i := lo; i < hi; i++ {
				g.cumWeights[i] += running
			}
			if hi > lo {
				running = g.cumWeights[hi-1]
			}
		}
		g.buildAliasTables()
	}
	return g, nil
}

type rowSorter struct {
	adj []int32
	w   []float64
}

func (s *rowSorter) Len() int           { return len(s.adj) }
func (s *rowSorter) Less(i, j int) bool { return s.adj[i] < s.adj[j] }
func (s *rowSorter) Swap(i, j int) {
	s.adj[i], s.adj[j] = s.adj[j], s.adj[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// FromEdgeList builds an undirected, unweighted graph directly from an edge
// list. It is the most common construction path in tests and examples.
func FromEdgeList(n int, edges [][2]int) (*Graph, error) {
	b := NewBuilder(n, Undirected)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// MustFromEdgeList is FromEdgeList that panics on error, for fixtures in
// tests and examples where the edge list is a compile-time constant.
func MustFromEdgeList(n int, edges [][2]int) *Graph {
	g, err := FromEdgeList(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}
