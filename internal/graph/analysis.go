package graph

import (
	"fmt"
	"math"
	"sort"
)

// This file provides the structural analyses used to calibrate the dataset
// stand-ins against real social networks: clustering, degree assortativity,
// and rich-club connectivity. The paper's effectiveness results (Figs. 6, 7,
// 10) hinge on these properties — they are what make the top-k-degree
// baseline redundant — so the stand-in tests assert them directly.

// GlobalClustering returns the global clustering coefficient (transitivity):
// 3 × triangles / connected triples. 0 for graphs with no triple. Intended
// for undirected graphs; adjacency rows must be sorted (always true for
// graphs built by this package).
func (g *Graph) GlobalClustering() float64 {
	var triangles, triples int64
	for u := 0; u < g.n; u++ {
		d := int64(g.Degree(u))
		triples += d * (d - 1) / 2
		row := g.Neighbors(u)
		// Count edges among neighbors via sorted-row intersection, once per
		// triangle corner; every triangle is counted at each of its three
		// corners, matching the 3× in the definition via corner counting.
		for _, v := range row {
			if int(v) <= u {
				continue
			}
			triangles += int64(countCommonSorted(row, g.Neighbors(int(v)), u))
		}
	}
	if triples == 0 {
		return 0
	}
	// Each triangle {a,b,c} is counted once per edge pair handled above:
	// for edge (u,v) with u < v we count common neighbors w > u — each
	// triangle is counted exactly twice (once per its two lowest-id edges'
	// orientations), so scale to the 3/triples definition accordingly:
	// triangles_raw counts each triangle twice.
	return 3 * float64(triangles) / 2 / float64(triples)
}

// countCommonSorted counts elements common to two ascending rows that are
// strictly greater than floor.
func countCommonSorted(a, b []int32, floor int) int {
	i, j, cnt := 0, 0, 0
	f := int32(floor)
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if a[i] > f {
				cnt++
			}
			i++
			j++
		}
	}
	return cnt
}

// MeanLocalClustering returns the average of per-node local clustering
// coefficients (Watts–Strogatz), ignoring nodes of degree < 2.
func (g *Graph) MeanLocalClustering() float64 {
	total, counted := 0.0, 0
	for u := 0; u < g.n; u++ {
		d := g.Degree(u)
		if d < 2 {
			continue
		}
		row := g.Neighbors(u)
		links := 0
		for _, v := range row {
			links += countCommonSorted(row, g.Neighbors(int(v)), -1)
		}
		// Each neighbor-pair edge counted twice (once from each endpoint).
		total += float64(links) / 2 / (float64(d) * float64(d-1) / 2)
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// DegreeAssortativity returns the Pearson correlation of degrees across
// edges (Newman's r): positive when hubs attach to hubs, negative when hubs
// attach to leaves. Social networks are typically assortative; pure
// preferential-attachment graphs are slightly disassortative.
func (g *Graph) DegreeAssortativity() float64 {
	var m float64
	var sumXY, sumX, sumY, sumX2, sumY2 float64
	g.Edges(func(u, v int, w float64) bool {
		du, dv := float64(g.Degree(u)), float64(g.Degree(v))
		// Count each undirected edge in both orientations to symmetrize.
		for _, pair := range [2][2]float64{{du, dv}, {dv, du}} {
			x, y := pair[0], pair[1]
			sumXY += x * y
			sumX += x
			sumY += y
			sumX2 += x * x
			sumY2 += y * y
			m++
		}
		return true
	})
	if m == 0 {
		return 0
	}
	num := sumXY/m - (sumX/m)*(sumY/m)
	den := math.Sqrt((sumX2/m - (sumX/m)*(sumX/m)) * (sumY2/m - (sumY/m)*(sumY/m)))
	if den == 0 {
		return 0
	}
	return num / den
}

// RichClubCoefficient returns φ(k): the density of the subgraph induced by
// nodes of degree > k — actual edges among them divided by the possible
// count. Values near 1 indicate a tightly knit club of hubs. Returns 0 when
// fewer than two nodes qualify.
func (g *Graph) RichClubCoefficient(k int) float64 {
	var club []int32
	for u := 0; u < g.n; u++ {
		if g.Degree(u) > k {
			club = append(club, int32(u))
		}
	}
	if len(club) < 2 {
		return 0
	}
	inClub := make(map[int32]bool, len(club))
	for _, u := range club {
		inClub[u] = true
	}
	edges := 0
	for _, u := range club {
		for _, v := range g.Neighbors(int(u)) {
			if v > u && inClub[v] {
				edges++
			}
		}
	}
	possible := len(club) * (len(club) - 1) / 2
	return float64(edges) / float64(possible)
}

// DegreePercentile returns the degree at the given percentile p in (0, 100]
// of the degree distribution (e.g. 99 → the degree separating the top 1%).
func (g *Graph) DegreePercentile(p float64) (int, error) {
	if p <= 0 || p > 100 {
		return 0, fmt.Errorf("graph: percentile %v outside (0,100]", p)
	}
	degs := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		degs[u] = g.Degree(u)
	}
	sort.Ints(degs)
	idx := int(math.Ceil(p/100*float64(g.n))) - 1
	if idx < 0 {
		idx = 0
	}
	return degs[idx], nil
}
