package graph

// Alias-method sampling for weighted graphs (Walker 1977, with Vose's O(deg)
// construction). The builder precomputes one alias table per adjacency row;
// PickNeighbor then maps a single uniform variate to a neighbor in O(1) —
// two array reads and a comparison — instead of the O(log deg) binary search
// over cumulative weights. On high-degree hubs, which random walks visit
// disproportionately often, this removes the dominant branch-missing search
// loop from the walk inner loop (index build, sampling estimators, and the
// session simulator all step through PickNeighbor).
//
// The tables are deterministic functions of the weights, so walks remain
// bit-for-bit reproducible for a fixed seed. The cumulative-weight search is
// retained as PickNeighborBinarySearch for the distribution-parity test and
// the sampling ablation benchmark.

// buildAliasTables fills the alias slots for every adjacency row of a
// weighted graph. For row slot i (absolute adj index), a uniform column draw
// lands on slot i with probability 1/deg; the walk then keeps slot i with
// probability alias[i].prob and otherwise takes the precomputed alias slot
// alias[i].idx. The resulting neighbor distribution is exactly proportional
// to the row's edge weights (up to float rounding).
func (g *Graph) buildAliasTables() {
	if g.weights == nil {
		return
	}
	g.alias = make([]aliasSlot, len(g.adj))
	small := make([]int32, 0, 64)
	large := make([]int32, 0, 64)
	for u := 0; u < g.n; u++ {
		lo, hi := int(g.offsets[u]), int(g.offsets[u+1])
		deg := hi - lo
		if deg == 0 {
			continue
		}
		rowW := g.weights[lo:hi]
		sum := 0.0
		for _, w := range rowW {
			sum += w
		}
		// Scaled probabilities: p_i = w_i·deg/sum, mean exactly 1.
		scale := float64(deg) / sum
		small, large = small[:0], large[:0]
		for i := 0; i < deg; i++ {
			p := rowW[i] * scale
			g.alias[lo+i].prob = p
			if p < 1 {
				small = append(small, int32(i))
			} else {
				large = append(large, int32(i))
			}
		}
		// Vose pairing: each underfull slot donates its deficit to one
		// overfull slot, which may in turn become underfull.
		for len(small) > 0 && len(large) > 0 {
			s := small[len(small)-1]
			small = small[:len(small)-1]
			l := large[len(large)-1]
			g.alias[lo+int(s)].idx = int32(lo) + l
			g.alias[lo+int(l)].prob -= 1 - g.alias[lo+int(s)].prob
			if g.alias[lo+int(l)].prob < 1 {
				large = large[:len(large)-1]
				small = append(small, l)
			}
		}
		// Residual slots are within rounding of probability 1: saturate them
		// (their alias is never taken; self-alias keeps reads in range).
		for _, i := range small {
			g.alias[lo+int(i)] = aliasSlot{prob: 1, idx: int32(lo) + i}
		}
		for _, i := range large {
			g.alias[lo+int(i)] = aliasSlot{prob: 1, idx: int32(lo) + i}
		}
	}
}

// PickNeighborBinarySearch is the pre-alias weighted sampler: an O(log deg)
// binary search over per-row cumulative weights. It consumes the uniform
// variate differently from PickNeighbor, so for the same x the two may return
// different neighbors — but both map uniform variates to the exact
// weight-proportional distribution (asserted by the chi-squared parity test).
// It is kept for that test and for the sampling ablation benchmark.
func (g *Graph) PickNeighborBinarySearch(u int, x float64) int {
	lo, hi := int(g.offsets[u]), int(g.offsets[u+1])
	deg := hi - lo
	if deg == 0 {
		return -1
	}
	if g.weights == nil {
		i := int(x * float64(deg))
		if i >= deg {
			i = deg - 1
		}
		return int(g.adj[lo+i])
	}
	base := 0.0
	if lo > 0 {
		base = g.cumWeights[lo-1]
	}
	total := g.cumWeights[hi-1] - base
	target := base + x*total
	a, b := lo, hi-1
	for a < b {
		mid := (a + b) / 2
		if g.cumWeights[mid] > target {
			b = mid
		} else {
			a = mid + 1
		}
	}
	return int(g.adj[a])
}
