package graph

import "sort"

// CoreNumbers returns the k-core number of every node: the largest k such
// that the node belongs to a subgraph in which every node has degree >= k.
// Computed with the standard O(n + m) bucket peeling algorithm (Batagelj &
// Zaversnik). Core numbers are a robustness-aware alternative to raw degree
// for seed selection: a high-degree node whose neighbors are all leaves has
// a low core number.
func (g *Graph) CoreNumbers() []int {
	n := g.n
	deg := make([]int, n)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(u)
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Bucket sort nodes by degree.
	binStart := make([]int, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for d := 1; d <= maxDeg+1; d++ {
		binStart[d] += binStart[d-1]
	}
	pos := make([]int, n)  // position of node in vert
	vert := make([]int, n) // nodes sorted by current degree
	fill := make([]int, maxDeg+1)
	copy(fill, binStart[:maxDeg+1])
	for u := 0; u < n; u++ {
		p := fill[deg[u]]
		pos[u] = p
		vert[p] = u
		fill[deg[u]]++
	}
	// bin[d] = index of the first node with degree d in vert.
	bin := make([]int, maxDeg+1)
	copy(bin, binStart[:maxDeg+1])

	core := make([]int, n)
	copy(core, deg)
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, wi := range g.Neighbors(v) {
			w := int(wi)
			if core[w] > core[v] {
				dw := core[w]
				pw := pos[w]
				// Swap w with the first node of its degree bucket, then
				// shrink the bucket boundary and decrement.
				ps := bin[dw]
				s := vert[ps]
				if s != w {
					vert[ps], vert[pw] = w, s
					pos[w], pos[s] = ps, pw
				}
				bin[dw]++
				core[w]--
			}
		}
	}
	return core
}

// Degeneracy returns the graph's degeneracy: the maximum core number.
func (g *Graph) Degeneracy() int {
	maxCore := 0
	for _, c := range g.CoreNumbers() {
		if c > maxCore {
			maxCore = c
		}
	}
	return maxCore
}

// TopKByCore returns the k nodes with the highest core number, ties broken
// by higher degree then lower node id — the "Core" baseline: like Degree
// but robust to locally star-like hubs.
func (g *Graph) TopKByCore(k int) []int {
	if k > g.n {
		k = g.n
	}
	core := g.CoreNumbers()
	ids := make([]int, g.n)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		ca, cb := core[ids[a]], core[ids[b]]
		if ca != cb {
			return ca > cb
		}
		da, db := g.Degree(ids[a]), g.Degree(ids[b])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	return ids[:k]
}
