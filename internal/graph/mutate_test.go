package graph

import (
	"errors"
	"testing"
)

// rebuildWith reconstructs g's edge set through a fresh Builder after
// applying d by hand — the from-scratch referee for ApplyDelta.
func rebuildWith(t *testing.T, g *Graph, d Delta) *Graph {
	t.Helper()
	removed := make(map[[2]int]bool)
	for _, e := range d.RemoveEdges {
		removed[pairKey(g.kind, e.U, e.V)] = true
	}
	b := NewBuilder(g.N()+d.AddNodes, g.Kind())
	g.Edges(func(u, v int, w float64) bool {
		if !removed[pairKey(g.kind, u, v)] {
			b.AddWeightedEdge(u, v, w)
		}
		return true
	})
	for _, e := range d.AddEdges {
		w := e.W
		if w == 0 {
			w = 1
		}
		b.AddWeightedEdge(e.U, e.V, w)
	}
	ng, err := b.Build()
	if err != nil {
		t.Fatalf("referee rebuild: %v", err)
	}
	return ng
}

func TestApplyDeltaMatchesRebuild(t *testing.T) {
	base := MustFromEdgeList(6, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	deltas := []Delta{
		{AddEdges: []Edge{{U: 0, V: 5}}},
		{RemoveEdges: []Edge{{U: 2, V: 3}}},
		{AddNodes: 2, AddEdges: []Edge{{U: 6, V: 7}, {U: 0, V: 6}}},
		{AddEdges: []Edge{{U: 1, V: 4}}, RemoveEdges: []Edge{{U: 0, V: 1}, {U: 4, V: 5}}},
	}
	g := base
	wantEpoch := uint64(0)
	for i, d := range deltas {
		ng, touched, err := g.ApplyDelta(d)
		if err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		if g.Epoch() != wantEpoch {
			t.Fatalf("delta %d mutated the receiver's epoch", i)
		}
		wantEpoch++
		if ng.Epoch() != wantEpoch {
			t.Fatalf("delta %d: epoch = %d, want %d", i, ng.Epoch(), wantEpoch)
		}
		ref := rebuildWith(t, g, d)
		if ng.Fingerprint() != ref.Fingerprint() {
			t.Fatalf("delta %d: mutated fingerprint %x != rebuilt %x", i, ng.Fingerprint(), ref.Fingerprint())
		}
		if err := ng.Validate(); err != nil {
			t.Fatalf("delta %d: invalid graph: %v", i, err)
		}
		if len(touched) == 0 {
			t.Fatalf("delta %d: no touched nodes", i)
		}
		for _, u := range touched {
			if u < 0 || u >= ng.N() {
				t.Fatalf("delta %d: touched node %d out of range", i, u)
			}
		}
		g = ng
	}
}

func TestApplyDeltaDirectedTouchesTailOnly(t *testing.T) {
	b := NewBuilder(4, Directed)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ng, touched, err := g.ApplyDelta(Delta{AddEdges: []Edge{{U: 2, V: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(touched) != 1 || touched[0] != 2 {
		t.Fatalf("touched = %v, want [2] (directed arcs touch the tail only)", touched)
	}
	if !ng.HasEdge(2, 3) || ng.HasEdge(3, 2) {
		t.Fatalf("directed arc landed wrong: 2->3=%v 3->2=%v", ng.HasEdge(2, 3), ng.HasEdge(3, 2))
	}
}

func TestApplyDeltaWeighted(t *testing.T) {
	b := NewBuilder(3, Undirected)
	b.AddWeightedEdge(0, 1, 2.5)
	b.AddWeightedEdge(1, 2, 0.5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := Delta{AddEdges: []Edge{{U: 0, V: 2, W: 3}}, RemoveEdges: []Edge{{U: 1, V: 2}}}
	ng, _, err := g.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	ref := rebuildWith(t, g, d)
	if ng.Fingerprint() != ref.Fingerprint() {
		t.Fatalf("weighted mutation fingerprint mismatch")
	}
	if got := ng.TransitionProb(0, 2); got != ref.TransitionProb(0, 2) {
		t.Fatalf("transition prob diverged: %v vs %v", got, ref.TransitionProb(0, 2))
	}
}

func TestApplyDeltaValidation(t *testing.T) {
	g := MustFromEdgeList(4, [][2]int{{0, 1}, {1, 2}})
	cases := []struct {
		name string
		d    Delta
		want error
	}{
		{"add existing", Delta{AddEdges: []Edge{{U: 1, V: 0}}}, ErrEdgeExists},
		{"remove missing", Delta{RemoveEdges: []Edge{{U: 0, V: 3}}}, ErrEdgeMissing},
		{"self loop", Delta{AddEdges: []Edge{{U: 2, V: 2}}}, ErrSelfLoop},
		{"out of range", Delta{AddEdges: []Edge{{U: 0, V: 9}}}, ErrNodeRange},
		{"remove new node edge", Delta{AddNodes: 1, RemoveEdges: []Edge{{U: 0, V: 4}}}, ErrNodeRange},
		{"negative nodes", Delta{AddNodes: -1}, ErrNegativeN},
		{"dup add", Delta{AddEdges: []Edge{{U: 0, V: 2}, {U: 2, V: 0}}}, ErrDuplicateEdge},
		{"add and remove same", Delta{AddEdges: []Edge{{U: 0, V: 1}}, RemoveEdges: []Edge{{U: 0, V: 1}}}, ErrDuplicateEdge},
		{"weight on unweighted", Delta{AddEdges: []Edge{{U: 0, V: 3, W: 2}}}, ErrBadWeight},
	}
	fp := g.Fingerprint()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := g.ApplyDelta(tc.d); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
	if g.Fingerprint() != fp || g.Epoch() != 0 {
		t.Fatal("failed deltas must leave the receiver untouched")
	}
}

func TestApplyDeltaAddIsolatedNodes(t *testing.T) {
	g := MustFromEdgeList(2, [][2]int{{0, 1}})
	ng, touched, err := g.ApplyDelta(Delta{AddNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ng.N() != 5 || ng.M() != 1 {
		t.Fatalf("n=%d m=%d, want 5/1", ng.N(), ng.M())
	}
	if len(touched) != 0 {
		t.Fatalf("touched = %v, want none (isolated additions change no rows)", touched)
	}
	if ng.Degree(4) != 0 {
		t.Fatalf("new node degree = %d", ng.Degree(4))
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
}
