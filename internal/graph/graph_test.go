package graph

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBuilderBasic(t *testing.T) {
	g := MustFromEdgeList(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("got n=%d m=%d, want 4, 4", g.N(), g.M())
	}
	for u := 0; u < 4; u++ {
		if g.Degree(u) != 2 {
			t.Errorf("degree(%d) = %d, want 2", u, g.Degree(u))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	g := MustFromEdgeList(3, [][2]int{{0, 1}, {1, 0}, {0, 1}, {1, 2}})
	if g.M() != 2 {
		t.Fatalf("M = %d after dedup, want 2", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Fatalf("degrees wrong after dedup: %d %d", g.Degree(0), g.Degree(1))
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(3, Undirected)
	b.AddEdge(1, 1)
	if _, err := b.Build(); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("got %v, want ErrSelfLoop", err)
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	for _, e := range [][2]int{{-1, 0}, {0, 3}, {5, 1}} {
		b := NewBuilder(3, Undirected)
		b.AddEdge(e[0], e[1])
		if _, err := b.Build(); !errors.Is(err, ErrNodeRange) {
			t.Fatalf("edge %v: got %v, want ErrNodeRange", e, err)
		}
	}
}

func TestBuilderRejectsEmptyGraph(t *testing.T) {
	if _, err := NewBuilder(0, Undirected).Build(); !errors.Is(err, ErrEmptyGraph) {
		t.Fatalf("got %v, want ErrEmptyGraph", err)
	}
}

func TestBuilderRejectsBadWeight(t *testing.T) {
	b := NewBuilder(2, Undirected)
	b.AddWeightedEdge(0, 1, -2)
	if _, err := b.Build(); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("got %v, want ErrBadWeight", err)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := MustFromEdgeList(5, [][2]int{{4, 0}, {4, 3}, {4, 1}, {4, 2}})
	row := g.Neighbors(4)
	for i := 1; i < len(row); i++ {
		if row[i-1] >= row[i] {
			t.Fatalf("row not sorted: %v", row)
		}
	}
}

func TestDirectedGraph(t *testing.T) {
	b := NewBuilder(3, Directed)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatalf("out-degrees %d %d %d, want 1 1 0", g.Degree(0), g.Degree(1), g.Degree(2))
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("directed edge symmetry wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedGraph(t *testing.T) {
	b := NewBuilder(3, Undirected)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(1, 2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("graph should be weighted")
	}
	if got := g.WeightDegree(1); got != 5 {
		t.Fatalf("WeightDegree(1) = %v, want 5", got)
	}
	if got := g.TransitionProb(1, 0); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("TransitionProb(1,0) = %v, want 0.4", got)
	}
	if got := g.TransitionProb(0, 2); got != 0 {
		t.Fatalf("TransitionProb(0,2) = %v, want 0", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTransitionProbUnweighted(t *testing.T) {
	g := MustFromEdgeList(4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	if got := g.TransitionProb(0, 2); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("p = %v, want 1/3", got)
	}
	if got := g.TransitionProb(1, 0); got != 1 {
		t.Fatalf("p = %v, want 1", got)
	}
}

func TestEdgesIteration(t *testing.T) {
	g := MustFromEdgeList(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	var got [][2]int
	g.Edges(func(u, v int, w float64) bool {
		got = append(got, [2]int{u, v})
		return true
	})
	if len(got) != 3 {
		t.Fatalf("iterated %d edges, want 3", len(got))
	}
	for _, e := range got {
		if e[0] >= e[1] {
			t.Fatalf("undirected edge %v not reported with u < v", e)
		}
	}
	// Early stop.
	count := 0
	g.Edges(func(u, v int, w float64) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop iterated %d, want 2", count)
	}
}

func TestDegreeSumInvariant(t *testing.T) {
	// Property: for undirected graphs, sum of degrees = 2m.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(50)
		maxM := n * (n - 1) / 2
		m := r.Intn(maxM + 1)
		g, err := ErdosRenyi(n, m, seed)
		if err != nil {
			return false
		}
		sum := 0
		for u := 0; u < g.N(); u++ {
			sum += g.Degree(u)
		}
		return sum == 2*g.M() && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSPath(t *testing.T) {
	g, err := Path(5)
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := MustFromEdgeList(4, [][2]int{{0, 1}, {2, 3}})
	dist := g.BFS(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Fatalf("unreachable distances %v, want -1", dist[2:])
	}
}

func TestConnectedComponents(t *testing.T) {
	g := MustFromEdgeList(6, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (two comps + isolated node 5)", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("nodes 0,1,2 should share a component")
	}
	if labels[3] != labels[4] {
		t.Fatal("nodes 3,4 should share a component")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Fatal("node 5 should be its own component")
	}
}

func TestLargestComponent(t *testing.T) {
	g := MustFromEdgeList(7, [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {5, 6}})
	sub, ids, err := g.LargestComponent()
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("largest component n=%d m=%d, want 3, 3", sub.N(), sub.M())
	}
	want := map[int]bool{0: true, 1: true, 2: true}
	for _, id := range ids {
		if !want[id] {
			t.Fatalf("unexpected original id %d in largest component", id)
		}
	}
}

func TestLargestComponentConnectedIdentity(t *testing.T) {
	g := MustFromEdgeList(3, [][2]int{{0, 1}, {1, 2}})
	sub, ids, err := g.LargestComponent()
	if err != nil {
		t.Fatal(err)
	}
	if sub != g {
		t.Fatal("connected graph should be returned unchanged")
	}
	for i, id := range ids {
		if i != id {
			t.Fatalf("identity mapping broken at %d -> %d", i, id)
		}
	}
}

func TestDiameter(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
		want int
	}{
		{"path5", mustGen(Path(5)), 4},
		{"cycle6", mustGen(Cycle(6)), 3},
		{"star10", mustGen(Star(10)), 2},
		{"complete4", mustGen(Complete(4)), 1},
	} {
		if got := tc.g.Diameter(); got != tc.want {
			t.Errorf("%s diameter = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestEccentricityLowerOnTree(t *testing.T) {
	g := mustGen(Path(9))
	if got := g.EccentricityLower(4); got != 8 {
		t.Fatalf("double sweep from middle of a path = %d, want 8", got)
	}
}

func mustGen(g *Graph, err error) *Graph {
	if err != nil {
		panic(err)
	}
	return g
}

func TestGenerators(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"path", mustGen(Path(10)), 10, 9},
		{"cycle", mustGen(Cycle(10)), 10, 10},
		{"star", mustGen(Star(10)), 10, 9},
		{"complete", mustGen(Complete(5)), 5, 10},
		{"grid", mustGen(Grid(3, 4)), 12, 17},
	} {
		if tc.g.N() != tc.n || tc.g.M() != tc.m {
			t.Errorf("%s: n=%d m=%d, want %d %d", tc.name, tc.g.N(), tc.g.M(), tc.n, tc.m)
		}
		if err := tc.g.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestGeneratorErrors(t *testing.T) {
	if _, err := Path(0); err == nil {
		t.Error("Path(0) should fail")
	}
	if _, err := Cycle(2); err == nil {
		t.Error("Cycle(2) should fail")
	}
	if _, err := Star(1); err == nil {
		t.Error("Star(1) should fail")
	}
	if _, err := Complete(1); err == nil {
		t.Error("Complete(1) should fail")
	}
	if _, err := Grid(0, 5); err == nil {
		t.Error("Grid(0,5) should fail")
	}
	if _, err := BarabasiAlbert(10, 0, 1); err == nil {
		t.Error("BarabasiAlbert mPerNode=0 should fail")
	}
	if _, err := BarabasiAlbert(5, 5, 1); err == nil {
		t.Error("BarabasiAlbert mPerNode>=n should fail")
	}
	if _, err := ErdosRenyi(5, 100, 1); err == nil {
		t.Error("ErdosRenyi with too many edges should fail")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g, err := BarabasiAlbert(1000, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1000 {
		t.Fatalf("n = %d, want 1000", g.N())
	}
	// m = core path edges + mPerNode per arriving node, minus dedup losses
	// (none: chosen set is distinct per node).
	wantM := 5 + (1000-6)*5
	if g.M() != wantM {
		t.Fatalf("m = %d, want %d", g.M(), wantM)
	}
	if !g.IsConnected() {
		t.Fatal("BA graph should be connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a, _ := BarabasiAlbert(200, 3, 7)
	b, _ := BarabasiAlbert(200, 3, 7)
	if a.M() != b.M() {
		t.Fatalf("same seed gave different edge counts: %d vs %d", a.M(), b.M())
	}
	for u := 0; u < a.N(); u++ {
		ra, rb := a.Neighbors(u), b.Neighbors(u)
		if len(ra) != len(rb) {
			t.Fatalf("node %d rows differ in length", u)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("node %d rows differ", u)
			}
		}
	}
}

func TestBarabasiAlbertIsSkewed(t *testing.T) {
	ba, _ := BarabasiAlbert(2000, 5, 1)
	er, _ := ErdosRenyi(2000, ba.M(), 1)
	giniBA := ba.ComputeStats().DegreeGini
	giniER := er.ComputeStats().DegreeGini
	if giniBA <= giniER {
		t.Fatalf("BA gini %v should exceed ER gini %v", giniBA, giniER)
	}
}

func TestPaperExampleGraph(t *testing.T) {
	g := PaperExample()
	if g.N() != 8 {
		t.Fatalf("n = %d, want 8", g.N())
	}
	// Every walk the paper derives from Fig. 1 must be a valid path.
	walks := [][]int{
		{0, 1, 2, 1, 5}, // (v1,v2,v3,v2,v6)
		{0, 5, 1, 2, 4}, // (v1,v6,v2,v3,v5)
		{0, 1, 2},       // Example 3.1 walks
		{1, 2, 4},
		{2, 1, 4},
		{3, 6, 4},
		{4, 1, 5},
		{5, 6, 4},
		{6, 4, 6},
		{7, 6, 3},
	}
	for _, w := range walks {
		for i := 1; i < len(w); i++ {
			if !g.HasEdge(w[i-1], w[i]) {
				t.Errorf("walk %v: missing edge %d-%d", w, w[i-1], w[i])
			}
		}
	}
}

func TestTopKByDegree(t *testing.T) {
	g := mustGen(Star(6)) // node 0 has degree 5, rest degree 1
	top := g.TopKByDegree(3)
	if top[0] != 0 {
		t.Fatalf("top degree node = %d, want 0", top[0])
	}
	if top[1] != 1 || top[2] != 2 {
		t.Fatalf("tie-break by id broken: %v", top)
	}
	if got := g.TopKByDegree(100); len(got) != 6 {
		t.Fatalf("k > n should clamp: got %d", len(got))
	}
}

func TestComputeStats(t *testing.T) {
	g := MustFromEdgeList(5, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	s := g.ComputeStats()
	if s.Nodes != 5 || s.Edges != 3 {
		t.Fatalf("stats n=%d m=%d", s.Nodes, s.Edges)
	}
	if s.MaxDegree != 3 || s.MinDegree != 0 || s.Isolated != 1 {
		t.Fatalf("degree stats wrong: %+v", s)
	}
	if s.Components != 2 || s.LargestComp != 4 {
		t.Fatalf("component stats wrong: %+v", s)
	}
	if s.MeanDegree != 6.0/5 {
		t.Fatalf("mean degree %v", s.MeanDegree)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := mustGen(Star(5))
	h := g.DegreeHistogram()
	if h[1] != 4 || h[4] != 1 {
		t.Fatalf("histogram %v", h)
	}
}

func TestInducedSubgraphEmpty(t *testing.T) {
	g := mustGen(Path(4))
	if _, _, err := g.InducedSubgraph(func(int) bool { return false }); !errors.Is(err, ErrEmptyGraph) {
		t.Fatalf("got %v, want ErrEmptyGraph", err)
	}
}

func TestGraphString(t *testing.T) {
	g := mustGen(Path(3))
	if got := g.String(); !strings.Contains(got, "undirected") || !strings.Contains(got, "3 nodes") {
		t.Fatalf("String() = %q", got)
	}
}

func TestKindString(t *testing.T) {
	if Undirected.String() != "undirected" || Directed.String() != "directed" {
		t.Fatal("Kind.String wrong")
	}
	if got := Kind(9).String(); !strings.Contains(got, "9") {
		t.Fatalf("unknown kind string %q", got)
	}
}
