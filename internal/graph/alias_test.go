package graph

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// weightedStar returns a star with center 0 and leaves 1..d, the edge to
// leaf i carrying weight i — a maximally skewed single-row distribution, so
// any bias in either sampler concentrates in one chi-squared statistic.
func weightedStar(t *testing.T, d int) *Graph {
	t.Helper()
	b := NewBuilder(d+1, Undirected)
	for i := 1; i <= d; i++ {
		b.AddWeightedEdge(0, i, float64(i))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// chiSquared returns the statistic Σ (obs−exp)²/exp of observed counts
// against weight-proportional expectations over draws samples.
func chiSquared(counts []int, weights []float64, draws int) float64 {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	stat := 0.0
	for i, c := range counts {
		exp := float64(draws) * weights[i] / total
		diff := float64(c) - exp
		stat += diff * diff / exp
	}
	return stat
}

// TestAliasSamplerDistributionParity checks that the alias sampler and the
// binary-search sampler both realize the exact weight-proportional neighbor
// distribution on a weighted star: each sampler's chi-squared statistic
// against the true expectation must clear the df=15, p=0.001 critical value
// (37.70; generous because the seed is fixed and the test deterministic).
func TestAliasSamplerDistributionParity(t *testing.T) {
	const d = 16
	const draws = 200000
	g := weightedStar(t, d)
	weights := make([]float64, d)
	for i := range weights {
		weights[i] = float64(i + 1)
	}

	sample := func(pick func(int, float64) int, seed uint64) []int {
		r := rng.New(seed)
		counts := make([]int, d)
		for i := 0; i < draws; i++ {
			v := pick(0, r.Float64())
			if v < 1 || v > d {
				t.Fatalf("sampled non-neighbor %d", v)
			}
			counts[v-1]++
		}
		return counts
	}

	aliasCounts := sample(g.PickNeighbor, 7)
	binCounts := sample(g.PickNeighborBinarySearch, 11)
	const critical = 37.70 // chi-squared df=15 at p=0.001
	if stat := chiSquared(aliasCounts, weights, draws); stat > critical {
		t.Errorf("alias sampler chi-squared %.2f exceeds %.2f", stat, critical)
	}
	if stat := chiSquared(binCounts, weights, draws); stat > critical {
		t.Errorf("binary-search sampler chi-squared %.2f exceeds %.2f", stat, critical)
	}

	// Two-sample parity: the samplers' empirical distributions must also be
	// statistically indistinguishable from each other.
	stat := 0.0
	for i := range weights {
		a, b := float64(aliasCounts[i]), float64(binCounts[i])
		if a+b == 0 {
			continue
		}
		diff := a - b
		stat += diff * diff / (a + b)
	}
	if stat > critical {
		t.Errorf("two-sample chi-squared %.2f exceeds %.2f", stat, critical)
	}
}

// TestAliasTablesExactProbabilities verifies the constructed alias tables
// analytically: integrating the PickNeighbor decision rule over the uniform
// column and coin must recover each edge's weight share exactly.
func TestAliasTablesExactProbabilities(t *testing.T) {
	b := NewBuilder(6, Undirected)
	ws := []float64{0.5, 3, 1.25, 7, 0.25}
	for i, w := range ws {
		b.AddWeightedEdge(0, i+1, w)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := int(g.offsets[0]), int(g.offsets[0+1])
	deg := hi - lo
	prob := make([]float64, deg) // realized P[neighbor at row slot j]
	for i := 0; i < deg; i++ {
		slot := g.alias[lo+i]
		prob[int(g.adj[lo+i])-1] += slot.prob / float64(deg)
		if slot.prob < 1 {
			prob[int(g.adj[slot.idx])-1] += (1 - slot.prob) / float64(deg)
		}
	}
	total := 0.0
	for _, w := range ws {
		total += w
	}
	for j, w := range ws {
		if math.Abs(prob[j]-w/total) > 1e-12 {
			t.Errorf("neighbor %d realized probability %v, want %v", j+1, prob[j], w/total)
		}
	}
}

// TestPickNeighborUnweightedUnchanged pins the unweighted fast path: the
// alias refactor must not alter uniform sampling, which the per-walk seeding
// of the index builder depends on for reproducibility of existing artifacts.
func TestPickNeighborUnweightedUnchanged(t *testing.T) {
	g := MustFromEdgeList(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	row := g.Neighbors(0)
	for _, x := range []float64{0, 0.2499, 0.25, 0.6, 0.999999} {
		i := int(x * float64(len(row)))
		if i >= len(row) {
			i = len(row) - 1
		}
		if got := g.PickNeighbor(0, x); got != int(row[i]) {
			t.Errorf("PickNeighbor(0, %v) = %d, want %d", x, got, row[i])
		}
	}
	if g.PickNeighbor(1, 0.5) != 0 {
		t.Error("leaf should step to center")
	}
}
