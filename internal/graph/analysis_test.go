package graph

import (
	"math"
	"testing"
)

func TestGlobalClusteringKnownGraphs(t *testing.T) {
	// Complete graph: transitivity 1. Path/star/cycle(>3): 0.
	for _, tc := range []struct {
		name string
		g    *Graph
		want float64
	}{
		{"K4", mustGen(Complete(4)), 1},
		{"K5", mustGen(Complete(5)), 1},
		{"path5", mustGen(Path(5)), 0},
		{"star8", mustGen(Star(8)), 0},
		{"cycle6", mustGen(Cycle(6)), 0},
		{"triangle", MustFromEdgeList(3, [][2]int{{0, 1}, {1, 2}, {2, 0}}), 1},
	} {
		if got := tc.g.GlobalClustering(); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: transitivity %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestGlobalClusteringPaw(t *testing.T) {
	// "Paw" graph: triangle {0,1,2} plus pendant 3-0. One triangle;
	// triples: deg(0)=3 → 3, deg(1)=deg(2)=2 → 1 each, deg(3)=1 → 0.
	// C = 3·1/5 = 0.6.
	g := MustFromEdgeList(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}})
	if got := g.GlobalClustering(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("paw transitivity %v, want 0.6", got)
	}
}

func TestMeanLocalClustering(t *testing.T) {
	// Paw: local C: node0 = 1/3 (one of three neighbor pairs linked),
	// node1 = 1, node2 = 1, node3 skipped (degree 1). Mean = (1/3+1+1)/3.
	g := MustFromEdgeList(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}})
	want := (1.0/3 + 1 + 1) / 3
	if got := g.MeanLocalClustering(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("paw mean local clustering %v, want %v", got, want)
	}
	if got := mustGen(Path(5)).MeanLocalClustering(); got != 0 {
		t.Fatalf("path clustering %v", got)
	}
	// Degenerate: no node with degree >= 2.
	if got := MustFromEdgeList(2, [][2]int{{0, 1}}).MeanLocalClustering(); got != 0 {
		t.Fatalf("single-edge clustering %v", got)
	}
}

func TestDegreeAssortativity(t *testing.T) {
	// Star: every edge joins the hub (high degree) to a leaf (degree 1):
	// perfectly disassortative, r = −1.
	g := mustGen(Star(10))
	if got := g.DegreeAssortativity(); math.Abs(got-(-1)) > 1e-9 {
		t.Fatalf("star assortativity %v, want -1", got)
	}
	// Regular graphs have zero degree variance: r defined as 0 here.
	if got := mustGen(Cycle(8)).DegreeAssortativity(); got != 0 {
		t.Fatalf("cycle assortativity %v, want 0", got)
	}
}

func TestRichClubCoefficient(t *testing.T) {
	// Two hubs (0,1) connected to each other and to leaves: club of
	// degree > 2 = {0,1}, fully connected → φ = 1.
	b := NewBuilder(8, Undirected)
	b.AddEdge(0, 1)
	for i := 2; i <= 4; i++ {
		b.AddEdge(0, i)
	}
	for i := 5; i <= 7; i++ {
		b.AddEdge(1, i)
	}
	g, _ := b.Build()
	if got := g.RichClubCoefficient(2); got != 1 {
		t.Fatalf("rich club %v, want 1", got)
	}
	// Club too small → 0.
	if got := g.RichClubCoefficient(100); got != 0 {
		t.Fatalf("oversized threshold club %v, want 0", got)
	}
	// Star: club of degree > 1 is just the hub → 0.
	if got := mustGen(Star(5)).RichClubCoefficient(1); got != 0 {
		t.Fatalf("star rich club %v", got)
	}
}

func TestDegreePercentile(t *testing.T) {
	g := mustGen(Star(10)) // degrees: one 9, nine 1
	p50, err := g.DegreePercentile(50)
	if err != nil {
		t.Fatal(err)
	}
	if p50 != 1 {
		t.Fatalf("p50 = %d, want 1", p50)
	}
	p100, _ := g.DegreePercentile(100)
	if p100 != 9 {
		t.Fatalf("p100 = %d, want 9", p100)
	}
	if _, err := g.DegreePercentile(0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := g.DegreePercentile(101); err == nil {
		t.Error("p>100 accepted")
	}
}

func TestBAIsLowClustering(t *testing.T) {
	// Sanity calibration: plain BA graphs have near-zero clustering — this
	// is exactly why the dataset stand-ins use the community generator.
	ba, _ := BarabasiAlbert(2000, 5, 1)
	if c := ba.GlobalClustering(); c > 0.1 {
		t.Fatalf("BA transitivity %v unexpectedly high", c)
	}
}
