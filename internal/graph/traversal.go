package graph

// BFS runs a breadth-first search from src and returns the hop distance to
// every node, with -1 for unreachable nodes. For directed graphs distances
// follow arc direction.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, 64)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ConnectedComponents labels each node with a component id in [0, count) and
// returns the labels and the component count. For directed graphs it
// computes weakly connected components by following arcs in both directions
// implicitly (it treats the adjacency as symmetric only if the graph is
// undirected; directed callers should symmetrize first — the domination
// algorithms in this module operate on undirected graphs).
func (g *Graph) ConnectedComponents() (labels []int, count int) {
	labels = make([]int, g.n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for s := 0; s < g.n; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = count
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(int(u)) {
				if labels[v] < 0 {
					labels[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return labels, count
}

// IsConnected reports whether the undirected graph has a single connected
// component.
func (g *Graph) IsConnected() bool {
	_, c := g.ConnectedComponents()
	return c == 1
}

// LargestComponent returns the subgraph induced by the largest connected
// component together with the mapping from new node ids to original ids.
// It is used to clean raw datasets before running domination algorithms,
// since hitting times from unreachable components are pinned at L and only
// add a constant to the objective.
func (g *Graph) LargestComponent() (*Graph, []int, error) {
	labels, count := g.ConnectedComponents()
	if count <= 1 {
		ids := make([]int, g.n)
		for i := range ids {
			ids[i] = i
		}
		return g, ids, nil
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	return g.InducedSubgraph(func(u int) bool { return labels[u] == best })
}

// InducedSubgraph returns the subgraph induced by the nodes for which keep
// returns true, along with the mapping from new ids to original ids.
func (g *Graph) InducedSubgraph(keep func(u int) bool) (*Graph, []int, error) {
	newID := make([]int32, g.n)
	var ids []int
	for u := 0; u < g.n; u++ {
		if keep(u) {
			newID[u] = int32(len(ids))
			ids = append(ids, u)
		} else {
			newID[u] = -1
		}
	}
	if len(ids) == 0 {
		return nil, nil, ErrEmptyGraph
	}
	b := NewBuilder(len(ids), g.kind)
	g.Edges(func(u, v int, w float64) bool {
		if newID[u] >= 0 && newID[v] >= 0 {
			b.AddWeightedEdge(int(newID[u]), int(newID[v]), w)
		}
		return true
	})
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, ids, nil
}

// Diameter returns the exact diameter of the (assumed connected) graph via
// one BFS per node. It is O(nm) and intended for small graphs in tests and
// dataset summaries; callers with large graphs should use EccentricityLower.
func (g *Graph) Diameter() int {
	d := 0
	for u := 0; u < g.n; u++ {
		for _, dist := range g.BFS(u) {
			if dist > d {
				d = dist
			}
		}
	}
	return d
}

// EccentricityLower returns a lower bound on the diameter using the standard
// double-sweep heuristic: BFS from src, then BFS from the farthest node
// found. Exact on trees, a good bound in practice elsewhere.
func (g *Graph) EccentricityLower(src int) int {
	dist := g.BFS(src)
	far, fd := src, 0
	for u, d := range dist {
		if d > fd {
			far, fd = u, d
		}
	}
	fd = 0
	for _, d := range g.BFS(far) {
		if d > fd {
			fd = d
		}
	}
	return fd
}
