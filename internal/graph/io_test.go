package graph

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# a comment
% another comment
0 1
1 2

2 3
`
	g, err := ReadEdgeList(strings.NewReader(in), Undirected)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d, want 4, 3", g.N(), g.M())
	}
}

func TestReadEdgeListRemapsSparseIDs(t *testing.T) {
	in := "100 200\n200 300\n"
	g, err := ReadEdgeList(strings.NewReader(in), Undirected)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d, want 3, 2", g.N(), g.M())
	}
}

func TestReadEdgeListSkipsSelfLoops(t *testing.T) {
	in := "0 0\n0 1\n1 1\n"
	g, err := ReadEdgeList(strings.NewReader(in), Undirected)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("m=%d, want 1 (self-loops skipped)", g.M())
	}
}

func TestReadEdgeListCollapsesBothDirections(t *testing.T) {
	in := "0 1\n1 0\n"
	g, err := ReadEdgeList(strings.NewReader(in), Undirected)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("m=%d, want 1", g.M())
	}
}

func TestReadEdgeListWeighted(t *testing.T) {
	in := "0 1 2.5\n1 2 1.5\n"
	g, err := ReadEdgeList(strings.NewReader(in), Undirected)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("expected weighted graph")
	}
	if got := g.WeightDegree(1); got != 4 {
		t.Fatalf("WeightDegree(1) = %v, want 4", got)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, tc := range []struct {
		name, in string
	}{
		{"too many fields", "0 1 2 3\n"},
		{"one field", "7\n"},
		{"bad id", "a b\n"},
		{"negative id", "-1 2\n"},
		{"bad weight", "0 1 x\n"},
		{"nonpositive weight", "0 1 0\n"},
	} {
		if _, err := ReadEdgeList(strings.NewReader(tc.in), Undirected); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := ReadEdgeList(strings.NewReader("# only comments\n"), Undirected); !errors.Is(err, ErrEmptyGraph) {
		t.Errorf("empty input: got %v, want ErrEmptyGraph", err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	orig, err := BarabasiAlbert(100, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, Undirected)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != orig.N() || back.M() != orig.M() {
		t.Fatalf("round trip changed size: %d/%d -> %d/%d", orig.N(), orig.M(), back.N(), back.M())
	}
}

func TestEdgeListRoundTripWeighted(t *testing.T) {
	b := NewBuilder(3, Undirected)
	b.AddWeightedEdge(0, 1, 2.5)
	b.AddWeightedEdge(1, 2, 0.5)
	orig, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, Undirected)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Weighted() || back.WeightDegree(1) != 3 {
		t.Fatalf("weighted round trip broken: weighted=%v deg=%v", back.Weighted(), back.WeightDegree(1))
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	orig := MustFromEdgeList(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err := orig.SaveEdgeListFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEdgeListFile(path, Undirected)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 4 || back.M() != 3 {
		t.Fatalf("file round trip: n=%d m=%d", back.N(), back.M())
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := LoadEdgeListFile("/nonexistent/file.txt", Undirected); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestSaveEdgeListFileIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	first := MustFromEdgeList(3, [][2]int{{0, 1}, {1, 2}})
	if err := first.SaveEdgeListFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwriting an existing file must fully replace it and leave no temp
	// litter behind — the rename either happened or it didn't.
	second := MustFromEdgeList(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if err := second.SaveEdgeListFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEdgeListFile(path, Undirected)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 5 || back.M() != 4 {
		t.Fatalf("overwrite not complete: n=%d m=%d", back.N(), back.M())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "g.txt" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("temp files left behind: %v", names)
	}
}

func TestSaveEdgeListFileFailureKeepsOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	orig := MustFromEdgeList(3, [][2]int{{0, 1}, {1, 2}})
	if err := orig.SaveEdgeListFile(path); err != nil {
		t.Fatal(err)
	}
	// A save into an unwritable directory must fail without touching the
	// original file (the temp file is created next to the target, so the
	// failure happens before any rename).
	if err := orig.SaveEdgeListFile(filepath.Join(dir, "missing-subdir", "g.txt")); err == nil {
		t.Fatal("expected error saving into a nonexistent directory")
	}
	back, err := LoadEdgeListFile(path, Undirected)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 3 || back.M() != 2 {
		t.Fatalf("original file disturbed: n=%d m=%d", back.N(), back.M())
	}
}
