package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList asserts the edge-list parser never panics and that
// anything it accepts is a valid graph that round-trips.
func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"0 1\n1 2\n",
		"# comment\n% comment\n\n0 1\n",
		"0 1 2.5\n",
		"100 200\n200 300\n",
		"0 0\n",
		"a b\n",
		"-1 5\n",
		"0 1 2 3\n",
		"0 1 -9\n",
		"9999999999999999999999 1\n",
		strings.Repeat("0 1\n", 100),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data), Undirected)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadEdgeList(&buf, Undirected)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("round trip changed size: %d/%d -> %d/%d", g.N(), g.M(), back.N(), back.M())
		}
	})
}
