package graph

import (
	"fmt"

	"repro/internal/rng"
)

// BarabasiAlbert generates a power-law random graph with n nodes by
// preferential attachment: nodes arrive one at a time and connect to
// mPerNode existing nodes chosen with probability proportional to degree.
// This is the "commonly-used power-law random graph model [1]" (Barabási &
// Albert) the paper uses for its synthetic graphs, including the small
// n=1000, m≈10k graph of Figs. 2–5 and the G1..G10 scalability suite of
// Fig. 9. The result is connected when mPerNode >= 1.
//
// The generator is deterministic for a given seed.
func BarabasiAlbert(n, mPerNode int, seed uint64) (*Graph, error) {
	if n <= 0 {
		return nil, ErrEmptyGraph
	}
	if mPerNode < 1 {
		return nil, fmt.Errorf("graph: BarabasiAlbert mPerNode=%d, want >= 1", mPerNode)
	}
	if mPerNode >= n {
		return nil, fmt.Errorf("graph: BarabasiAlbert mPerNode=%d with n=%d, want mPerNode < n", mPerNode, n)
	}
	r := rng.New(seed)
	b := NewBuilder(n, Undirected)

	// targets holds one entry per edge endpoint; drawing uniformly from it
	// implements preferential attachment in O(1) per draw.
	targets := make([]int32, 0, 2*n*mPerNode)

	// Seed with a small connected core: a path over the first mPerNode+1
	// nodes, so every early node has nonzero degree.
	core := mPerNode + 1
	for i := 1; i < core; i++ {
		b.AddEdge(i-1, i)
		targets = append(targets, int32(i-1), int32(i))
	}
	chosen := make(map[int32]bool, mPerNode)
	picks := make([]int32, 0, mPerNode)
	for v := core; v < n; v++ {
		for k := range chosen {
			delete(chosen, k)
		}
		picks = picks[:0]
		for len(picks) < mPerNode {
			t := targets[r.Intn(len(targets))]
			if int(t) == v || chosen[t] {
				continue
			}
			chosen[t] = true
			picks = append(picks, t) // preserve draw order: map iteration would be nondeterministic
		}
		for _, t := range picks {
			b.AddEdge(v, int(t))
			targets = append(targets, int32(v), t)
		}
	}
	return b.Build()
}

// ErdosRenyi generates a G(n, m) uniform random graph with exactly m distinct
// edges. It is used for test fixtures and for contrast with power-law graphs
// in ablation benches.
func ErdosRenyi(n, m int, seed uint64) (*Graph, error) {
	if n <= 0 {
		return nil, ErrEmptyGraph
	}
	maxEdges := n * (n - 1) / 2
	if m < 0 || m > maxEdges {
		return nil, fmt.Errorf("graph: ErdosRenyi m=%d out of [0,%d]", m, maxEdges)
	}
	r := rng.New(seed)
	b := NewBuilder(n, Undirected)
	seen := make(map[int64]bool, m)
	for len(seen) < m {
		u := r.Intn(n)
		v := r.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(u, v)
	}
	return b.Build()
}

// Path returns the path graph 0-1-2-...-(n-1).
func Path(n int) (*Graph, error) {
	if n <= 0 {
		return nil, ErrEmptyGraph
	}
	b := NewBuilder(n, Undirected)
	for i := 1; i < n; i++ {
		b.AddEdge(i-1, i)
	}
	return b.Build()
}

// Cycle returns the cycle graph on n >= 3 nodes.
func Cycle(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: Cycle needs n >= 3, got %d", n)
	}
	b := NewBuilder(n, Undirected)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

// Star returns the star graph: node 0 is the hub connected to 1..n-1.
func Star(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: Star needs n >= 2, got %d", n)
	}
	b := NewBuilder(n, Undirected)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: Complete needs n >= 2, got %d", n)
	}
	b := NewBuilder(n, Undirected)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Grid returns the rows x cols 4-connected grid graph.
func Grid(rows, cols int) (*Graph, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("graph: Grid needs positive dimensions, got %dx%d", rows, cols)
	}
	n := rows * cols
	b := NewBuilder(n, Undirected)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// PaperExample returns the 8-node running-example graph of Fig. 1 in the
// paper. Node v_i of the paper is node i-1 here. Edges are read off the
// figure: v1 is adjacent to v2 and v6; v2 to v1, v3, v5, v6; v3 to v2, v4,
// v5; v4 to v3, v7, v8; v5 to v2, v3, v7; v6 to v1, v2, v7; v7 to v4, v5,
// v6, v8; v8 to v4, v7. This adjacency is consistent with every walk and
// every inverted-index entry the paper derives from the figure (Example 3.1
// and Table 1).
func PaperExample() *Graph {
	return MustFromEdgeList(8, [][2]int{
		{0, 1}, {0, 5},
		{1, 2}, {1, 4}, {1, 5},
		{2, 3}, {2, 4},
		{3, 6}, {3, 7},
		{4, 6},
		{5, 6},
		{6, 7},
	})
}
