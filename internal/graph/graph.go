// Package graph provides the graph substrate for the random-walk domination
// algorithms: a compact immutable adjacency structure in compressed sparse
// row (CSR) form, a mutable builder, edge-list I/O, synthetic generators, and
// basic traversal and statistics utilities.
//
// The paper (Li et al., ICDE 2014) works on undirected, unweighted graphs,
// and notes the techniques "can also be easily extended to directed and
// weighted graphs"; this package supports all three variants. Nodes are dense
// integer IDs in [0, N).
package graph

import (
	"errors"
	"fmt"
	"math"
)

// Kind distinguishes undirected from directed graphs.
type Kind uint8

const (
	// Undirected graphs store each edge in both endpoints' adjacency rows.
	Undirected Kind = iota
	// Directed graphs store each arc only in its tail's adjacency row.
	Directed
)

func (k Kind) String() string {
	switch k {
	case Undirected:
		return "undirected"
	case Directed:
		return "directed"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Errors shared by graph constructors and loaders.
var (
	ErrEmptyGraph  = errors.New("graph: graph has no nodes")
	ErrNodeRange   = errors.New("graph: node id out of range")
	ErrSelfLoop    = errors.New("graph: self-loops are not supported")
	ErrNegativeN   = errors.New("graph: negative node count")
	ErrBadWeight   = errors.New("graph: edge weight must be positive")
	ErrKindMixture = errors.New("graph: cannot mix directed and undirected edges")
)

// Graph is an immutable graph in CSR form. The neighbors of node u occupy
// adj[offsets[u]:offsets[u+1]]. For weighted graphs, weights holds the
// parallel per-neighbor edge weights; for unweighted graphs weights is nil
// and every edge has implicit weight 1.
//
// A Graph is safe for concurrent readers.
type Graph struct {
	kind    Kind
	n       int
	m       int // number of undirected edges (or directed arcs)
	offsets []int32
	adj     []int32
	weights []float64 // nil for unweighted graphs

	// epoch counts the mutations this graph lineage has absorbed: builders
	// and loaders produce epoch 0, and every ApplyDelta returns a graph at
	// epoch+1. Unlike Fingerprint, which hashes structure, the epoch never
	// repeats within a lineage — a delta and its inverse yield a graph that
	// is structurally identical to the original but two epochs newer — so
	// caches keyed by epoch can never confuse "mutated back" with "never
	// mutated". The epoch is deliberately not part of Fingerprint and not
	// persisted by the edge-list writers; a reloaded graph starts a fresh
	// lineage at epoch 0.
	epoch uint64

	// cumWeights, present only for weighted graphs, stores per-row prefix
	// sums of weights, used by WeightDegree and the binary-search sampler
	// kept for the alias parity test and ablation benchmark.
	cumWeights []float64

	// alias, present only for weighted graphs, holds per-row Walker alias
	// tables so weighted neighbor sampling is O(1); see alias.go. Slots are
	// parallel to adj; prob and the alias target are interleaved so one
	// draw touches a single cache line.
	alias []aliasSlot
}

// aliasSlot is one column of a Walker alias table: keep this slot's
// neighbor with probability prob, otherwise jump to the neighbor at
// absolute adj index idx.
type aliasSlot struct {
	prob float64
	idx  int32
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges: undirected edges for undirected graphs,
// arcs for directed graphs.
func (g *Graph) M() int { return g.m }

// Kind reports whether the graph is directed or undirected.
func (g *Graph) Kind() Kind { return g.kind }

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.weights != nil }

// Epoch returns the graph's mutation epoch: 0 for built/loaded graphs,
// incremented by every ApplyDelta. See the field comment for why this is
// distinct from Fingerprint.
func (g *Graph) Epoch() uint64 { return g.epoch }

// Degree returns the out-degree of node u (degree for undirected graphs).
func (g *Graph) Degree(u int) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// Neighbors returns the adjacency row of node u. The returned slice aliases
// the graph's internal storage and must not be modified.
func (g *Graph) Neighbors(u int) []int32 {
	return g.adj[g.offsets[u]:g.offsets[u+1]]
}

// NeighborWeights returns the edge weights parallel to Neighbors(u), or nil
// for unweighted graphs. The returned slice must not be modified.
func (g *Graph) NeighborWeights(u int) []float64 {
	if g.weights == nil {
		return nil
	}
	return g.weights[g.offsets[u]:g.offsets[u+1]]
}

// WeightDegree returns the total weight of edges incident to u. For
// unweighted graphs it equals Degree(u).
func (g *Graph) WeightDegree(u int) float64 {
	if g.weights == nil {
		return float64(g.Degree(u))
	}
	lo, hi := g.offsets[u], g.offsets[u+1]
	if lo == hi {
		return 0
	}
	// cumWeights[i] is the prefix sum within the row ending at adj index i.
	base := 0.0
	if lo > 0 {
		base = g.cumWeights[lo-1]
	}
	return g.cumWeights[hi-1] - base
}

// HasEdge reports whether an edge (arc) u->v exists. It is a linear scan of
// u's adjacency row; rows are sorted so it could binary-search, but rows are
// short in the workloads this module targets and the scan is cache-friendly.
func (g *Graph) HasEdge(u, v int) bool {
	for _, w := range g.Neighbors(u) {
		if int(w) == v {
			return true
		}
	}
	return false
}

// TransitionProb returns the single-step random-walk transition probability
// p_uv = w(u,v) / weightDegree(u), or 0 when the edge is absent or u is
// isolated.
func (g *Graph) TransitionProb(u, v int) float64 {
	d := g.WeightDegree(u)
	if d == 0 {
		return 0
	}
	row := g.Neighbors(u)
	for i, w := range row {
		if int(w) == v {
			if g.weights == nil {
				return 1 / d
			}
			return g.NeighborWeights(u)[i] / d
		}
	}
	return 0
}

// Validate checks internal consistency. It is used by tests and by loaders
// after deserialization; library construction paths always produce valid
// graphs.
func (g *Graph) Validate() error {
	if g.n < 0 {
		return ErrNegativeN
	}
	if len(g.offsets) != g.n+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.offsets), g.n+1)
	}
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	for u := 0; u < g.n; u++ {
		if g.offsets[u+1] < g.offsets[u] {
			return fmt.Errorf("graph: offsets decrease at node %d", u)
		}
	}
	if int(g.offsets[g.n]) != len(g.adj) {
		return fmt.Errorf("graph: offsets end %d, adj length %d", g.offsets[g.n], len(g.adj))
	}
	for i, v := range g.adj {
		if v < 0 || int(v) >= g.n {
			return fmt.Errorf("graph: adj[%d] = %d out of range [0,%d): %w", i, v, g.n, ErrNodeRange)
		}
	}
	if g.weights != nil {
		if len(g.weights) != len(g.adj) {
			return fmt.Errorf("graph: weights length %d, adj length %d", len(g.weights), len(g.adj))
		}
		for i, w := range g.weights {
			if w <= 0 {
				return fmt.Errorf("graph: weights[%d] = %v: %w", i, w, ErrBadWeight)
			}
		}
	}
	wantAdj := g.m
	if g.kind == Undirected {
		wantAdj = 2 * g.m
	}
	if len(g.adj) != wantAdj {
		return fmt.Errorf("graph: adj length %d inconsistent with m=%d (%s)", len(g.adj), g.m, g.kind)
	}
	return nil
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	w := ""
	if g.Weighted() {
		w = " weighted"
	}
	return fmt.Sprintf("%s%s graph: %d nodes, %d edges", g.kind, w, g.n, g.m)
}

// Fingerprint returns a 64-bit FNV-1a hash of the graph's structure (kind,
// sizes, CSR arrays, weights). Two graphs with equal fingerprints are, for
// all practical purposes, structurally identical; serialized artifacts such
// as materialized walk indexes store it to detect being loaded against the
// wrong graph.
func (g *Graph) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime
		}
	}
	mix(uint64(g.kind))
	mix(uint64(g.n))
	mix(uint64(g.m))
	for _, o := range g.offsets {
		mix(uint64(uint32(o)))
	}
	for _, a := range g.adj {
		mix(uint64(uint32(a)))
	}
	for _, w := range g.weights {
		mix(math.Float64bits(w))
	}
	return h
}

// PickNeighbor maps a uniform variate x in [0, 1) to a neighbor of u,
// selected uniformly for unweighted graphs and proportionally to edge weight
// for weighted graphs via the precomputed alias tables (O(1); see alias.go).
// It returns -1 when u has no outgoing edges. Keeping the randomness outside
// the graph keeps this method deterministic and directly testable: the
// integer part of x·deg picks the alias column, the fractional part (itself
// uniform and independent of the column) plays the alias coin.
func (g *Graph) PickNeighbor(u int, x float64) int {
	lo, hi := int(g.offsets[u]), int(g.offsets[u+1])
	deg := hi - lo
	if deg == 0 {
		return -1
	}
	scaled := x * float64(deg)
	i := int(scaled)
	if i >= deg { // guard against x rounding up to 1.0
		i = deg - 1
	}
	if g.weights == nil {
		return int(g.adj[lo+i])
	}
	slot := g.alias[lo+i]
	if scaled-float64(i) < slot.prob {
		return int(g.adj[lo+i])
	}
	return int(g.adj[slot.idx])
}

// Edges calls fn once for every edge. For undirected graphs each edge {u,v}
// is reported once with u < v; for directed graphs each arc (u,v) is reported
// once. Iteration stops early if fn returns false.
func (g *Graph) Edges(fn func(u, v int, w float64) bool) {
	for u := 0; u < g.n; u++ {
		row := g.Neighbors(u)
		var ws []float64
		if g.weights != nil {
			ws = g.NeighborWeights(u)
		}
		for i, v := range row {
			if g.kind == Undirected && int(v) < u {
				continue
			}
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			if !fn(u, int(v), w) {
				return
			}
		}
	}
}
