// Package index implements the sample-materialization machinery of Section
// 3.2 of the paper: the inverted index I[1:R][1:n] over R materialized
// L-length random walks per node (Algorithm 3), the D[1:R][1:n] table of
// per-sample hitting estimates, the approximate marginal-gain computation
// (Algorithm 4), and the incremental update after a node is selected
// (Algorithm 5).
//
// The index stores, for each sample replicate i and each node v, the list of
// source nodes whose i-th walk visits v, together with the hop of the first
// visit. Entry <w, j> in I[i][v] means "w hits v at hop j in its i-th walk".
// With the index materialized once, the marginal gain of every candidate
// under any current set S can be estimated without re-running walks, which
// is what brings the greedy algorithm down to O(kRLn) time.
//
// One deviation from the paper's presentation: Algorithm 3 stores weight 1
// for Problem 2, building a second index. Here a single index stores the
// actual first-visit hop and the Problem-2 logic simply ignores the hop
// (treating every entry as an indicator), which is arithmetically identical
// and halves memory when both problems are run on the same graph.
package index

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Problem selects which objective the D-table tracks.
type Problem int

const (
	// Problem1 is total-hitting-time minimization (Eq. 6): D[i][u] holds the
	// per-sample hitting time of u's walk to S, initialized to L.
	Problem1 Problem = 1
	// Problem2 is expected-dominated-count maximization (Eq. 7): D[i][u]
	// holds the per-sample indicator that u's walk hits S, initialized to 0.
	Problem2 Problem = 2
)

func (p Problem) String() string {
	switch p {
	case Problem1:
		return "F1"
	case Problem2:
		return "F2"
	default:
		return fmt.Sprintf("Problem(%d)", int(p))
	}
}

// Index is the immutable inverted index of Algorithm 3. It is safe for
// concurrent readers; D-tables carry the mutable state.
type Index struct {
	g *graph.Graph
	l int
	r int

	// Row (i, v) occupies ids[offsets[i*n+v]:offsets[i*n+v+1]] with parallel
	// first-visit hops in hops. Entries are (source node, hop of first
	// visit); a source appears at most once per row.
	offsets []int64
	ids     []int32
	hops    []uint16
}

// Build materializes R L-length random walks per node and constructs the
// inverted index (Algorithm 3), single-threaded. Memory is O(nRL); to avoid
// a third copy of the walk data during construction, walks are generated
// twice — once to count row sizes, once to fill rows. Each (node, replicate)
// walk is seeded independently from the master seed, so regeneration is
// exact and the parallel builder produces the same walks.
func Build(g *graph.Graph, L, R int, seed uint64) (*Index, error) {
	return BuildWorkers(g, L, R, seed, 1)
}

// BuildWorkers is Build sharded over the given number of goroutines.
// The walk set is identical for every worker count (per-walk seeding);
// only the order of entries within an index row may differ, which no
// consumer observes: Gain and EstimateObjective accumulate in integers, so
// selections are bit-for-bit reproducible regardless of parallelism.
func BuildWorkers(g *graph.Graph, L, R int, seed uint64, workers int) (*Index, error) {
	if L < 0 {
		return nil, fmt.Errorf("index: negative walk length %d", L)
	}
	if L > 1<<16-1 {
		return nil, fmt.Errorf("index: walk length %d exceeds hop storage (max %d)", L, 1<<16-1)
	}
	if R <= 0 {
		return nil, fmt.Errorf("index: sample size R = %d, want > 0", R)
	}
	if workers < 1 {
		workers = 1
	}
	n := g.N()
	if workers > n {
		workers = n
	}
	ix := &Index{g: g, l: L, r: R}
	rows := R * n
	counts := make([]int64, rows+1)

	// walkVisit invokes emit(v, hop) for the first visit of each node other
	// than the start on the i-th walk of node w. visited is a
	// generation-stamped scratch array owned by the calling worker.
	walkVisit := func(visited []uint32, generation *uint32, w, i int, emit func(v int32, hop uint16)) {
		rnd := rng.New(rng.Mix(seed, uint64(w), uint64(i)))
		*generation++
		visited[w] = *generation
		u := w
		for j := 1; j <= L; j++ {
			v := g.PickNeighbor(u, rnd.Float64())
			if v < 0 {
				return
			}
			if visited[v] != *generation {
				visited[v] = *generation
				emit(int32(v), uint16(j))
			}
			u = v
		}
	}

	// shard runs fn(w) for every node in a worker-private range.
	shard := func(fn func(worker, lo, hi int)) {
		if workers == 1 {
			fn(0, 0, n)
			return
		}
		var wg sync.WaitGroup
		per := (n + workers - 1) / workers
		for wk := 0; wk < workers; wk++ {
			lo := wk * per
			hi := lo + per
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(wk, lo, hi int) {
				defer wg.Done()
				fn(wk, lo, hi)
			}(wk, lo, hi)
		}
		wg.Wait()
	}

	// Pass 1: count entries per (i, v) row. Counts are incremented
	// atomically; contention is negligible because rows are numerous.
	shard(func(_, lo, hi int) {
		visited := make([]uint32, n)
		var generation uint32
		for w := lo; w < hi; w++ {
			for i := 0; i < R; i++ {
				base := int64(i) * int64(n)
				walkVisit(visited, &generation, w, i, func(v int32, hop uint16) {
					atomic.AddInt64(&counts[base+int64(v)+1], 1)
				})
			}
		}
	})
	ix.offsets = counts
	for i := 1; i <= rows; i++ {
		ix.offsets[i] += ix.offsets[i-1]
	}
	total := ix.offsets[rows]
	ix.ids = make([]int32, total)
	ix.hops = make([]uint16, total)

	// Pass 2: regenerate the identical walks and fill rows, claiming slots
	// with an atomic cursor per row.
	cursor := make([]int64, rows)
	copy(cursor, ix.offsets[:rows])
	shard(func(_, lo, hi int) {
		visited := make([]uint32, n)
		var generation uint32
		for w := lo; w < hi; w++ {
			ww := int32(w)
			for i := 0; i < R; i++ {
				base := int64(i) * int64(n)
				walkVisit(visited, &generation, w, i, func(v int32, hop uint16) {
					row := base + int64(v)
					c := atomic.AddInt64(&cursor[row], 1) - 1
					ix.ids[c] = ww
					ix.hops[c] = hop
				})
			}
		}
	})
	return ix, nil
}

// BuildFromWalks constructs an index from explicitly provided walks instead
// of sampling them: walks[w][i] is the i-th walk of node w and must begin at
// w. It is used by tests to reproduce the paper's worked example (Example
// 3.1 / Table 1) exactly, and by callers that generate walks elsewhere.
func BuildFromWalks(g *graph.Graph, L, R int, walks [][][]int32) (*Index, error) {
	if L < 0 || L > 1<<16-1 {
		return nil, fmt.Errorf("index: walk length %d out of range", L)
	}
	if R <= 0 {
		return nil, fmt.Errorf("index: sample size R = %d, want > 0", R)
	}
	n := g.N()
	if len(walks) != n {
		return nil, fmt.Errorf("index: walks for %d nodes, graph has %d", len(walks), n)
	}
	ix := &Index{g: g, l: L, r: R}
	rows := R * n
	counts := make([]int64, rows+1)
	visited := make([]uint32, n)
	var generation uint32

	firstVisits := func(w, i int, emit func(v int32, hop uint16)) error {
		walk := walks[w][i]
		if len(walk) == 0 || int(walk[0]) != w {
			return fmt.Errorf("index: walk %d of node %d does not start at %d", i, w, w)
		}
		if len(walk) > L+1 {
			return fmt.Errorf("index: walk %d of node %d has %d positions, max L+1=%d", i, w, len(walk), L+1)
		}
		generation++
		visited[w] = generation
		for j := 1; j < len(walk); j++ {
			v := walk[j]
			if v < 0 || int(v) >= n {
				return fmt.Errorf("index: walk %d of node %d visits out-of-range node %d", i, w, v)
			}
			if visited[v] != generation {
				visited[v] = generation
				emit(v, uint16(j))
			}
		}
		return nil
	}

	for w := 0; w < n; w++ {
		if len(walks[w]) != R {
			return nil, fmt.Errorf("index: node %d has %d walks, want R=%d", w, len(walks[w]), R)
		}
		for i := 0; i < R; i++ {
			base := int64(i) * int64(n)
			if err := firstVisits(w, i, func(v int32, hop uint16) {
				counts[base+int64(v)+1]++
			}); err != nil {
				return nil, err
			}
		}
	}
	ix.offsets = counts
	for i := 1; i <= rows; i++ {
		ix.offsets[i] += ix.offsets[i-1]
	}
	total := ix.offsets[rows]
	ix.ids = make([]int32, total)
	ix.hops = make([]uint16, total)
	cursor := make([]int64, rows)
	copy(cursor, ix.offsets[:rows])
	for w := 0; w < n; w++ {
		ww := int32(w)
		for i := 0; i < R; i++ {
			base := int64(i) * int64(n)
			if err := firstVisits(w, i, func(v int32, hop uint16) {
				row := base + int64(v)
				c := cursor[row]
				ix.ids[c] = ww
				ix.hops[c] = hop
				cursor[row] = c + 1
			}); err != nil {
				return nil, err
			}
		}
	}
	return ix, nil
}

// Graph returns the indexed graph.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// L returns the walk-length bound the index was built with.
func (ix *Index) L() int { return ix.l }

// R returns the number of sample replicates per node.
func (ix *Index) R() int { return ix.r }

// Entries returns the number of materialized (source, first-visit) pairs;
// it is bounded by nRL.
func (ix *Index) Entries() int64 { return ix.offsets[len(ix.offsets)-1] }

// Row returns the sources that hit node v in replicate i and their
// first-visit hops. The slices alias index storage and must not be modified.
func (ix *Index) Row(i, v int) (ids []int32, hops []uint16) {
	row := int64(i)*int64(ix.g.N()) + int64(v)
	lo, hi := ix.offsets[row], ix.offsets[row+1]
	return ix.ids[lo:hi], ix.hops[lo:hi]
}

// MemoryBytes reports the approximate heap footprint of the index, used by
// the scalability experiment to confirm O(nRL + m) space.
func (ix *Index) MemoryBytes() int64 {
	return int64(len(ix.offsets))*8 + int64(len(ix.ids))*4 + int64(len(ix.hops))*2
}

// DTable is the mutable D[1:R][1:n] array of Algorithms 4–6, tracking the
// per-sample hitting estimate of each node's walks under the current set S.
// A DTable belongs to a single greedy run and is not safe for concurrent
// mutation.
type DTable struct {
	ix      *Index
	problem Problem
	d       []uint16 // row-major: d[i*n+u]
	size    int      // |S| so far
}

// NewDTable returns a fresh D-table for the given problem: initialized to L
// everywhere for Problem 1 ("h_uS = L given S = ∅", Algorithm 6 line 3) and
// to 0 everywhere for Problem 2.
func (ix *Index) NewDTable(p Problem) (*DTable, error) {
	if p != Problem1 && p != Problem2 {
		return nil, fmt.Errorf("index: unknown problem %d", int(p))
	}
	d := &DTable{ix: ix, problem: p, d: make([]uint16, ix.r*ix.g.N())}
	if p == Problem1 {
		l := uint16(ix.l)
		for i := range d.d {
			d.d[i] = l
		}
	}
	return d, nil
}

// Problem returns which objective this table tracks.
func (t *DTable) Problem() Problem { return t.problem }

// Clone returns an independent copy of the table, used to evaluate
// hypothetical selections without disturbing the greedy state.
func (t *DTable) Clone() *DTable {
	d := make([]uint16, len(t.d))
	copy(d, t.d)
	return &DTable{ix: t.ix, problem: t.problem, d: d, size: t.size}
}

// Size returns the number of Update calls applied, i.e. |S|.
func (t *DTable) Size() int { return t.size }

// Gain implements Algorithm 4: the approximate marginal gain of adding u to
// the current set, averaged over the R replicates.
//
// For Problem 1 this estimates F1(S∪{u}) − F1(S) under the Eq. (6) form
// F1(S) = nL − Σ_{u∈V\S} h^L_{uS}, which equals h_uS + Σ_w (h_wS − h_wSu).
// (The paper states σ_u = ... − L because its complexity analysis uses the
// alternative form Σ_{u∈V\S}(L − h_uS); the two differ by the constant L per
// added node and induce the same argmax, as the paper notes.) For Problem 2
// it estimates F2(S∪{u}) − F2(S) directly.
func (t *DTable) Gain(u int) float64 {
	n := t.ix.g.N()
	var acc int64
	if t.problem == Problem1 {
		for i := 0; i < t.ix.r; i++ {
			base := i * n
			acc += int64(t.d[base+u])
			ids, hops := t.ix.Row(i, u)
			for e, v := range ids {
				if dv := t.d[base+int(v)]; hops[e] < dv {
					acc += int64(dv - hops[e])
				}
			}
		}
	} else {
		for i := 0; i < t.ix.r; i++ {
			base := i * n
			if t.d[base+u] == 0 {
				acc++
			}
			ids, _ := t.ix.Row(i, u)
			for _, v := range ids {
				if t.d[base+int(v)] == 0 {
					acc++
				}
			}
		}
	}
	return float64(acc) / float64(t.ix.r)
}

// Update implements Algorithm 5: fold the newly selected node u into the
// D-table so subsequent Gain calls are relative to S ∪ {u}.
func (t *DTable) Update(u int) {
	n := t.ix.g.N()
	if t.problem == Problem1 {
		for i := 0; i < t.ix.r; i++ {
			base := i * n
			t.d[base+u] = 0
			ids, hops := t.ix.Row(i, u)
			for e, v := range ids {
				if hops[e] < t.d[base+int(v)] {
					t.d[base+int(v)] = hops[e]
				}
			}
		}
	} else {
		for i := 0; i < t.ix.r; i++ {
			base := i * n
			t.d[base+u] = 1
			ids, _ := t.ix.Row(i, u)
			for _, v := range ids {
				t.d[base+int(v)] = 1
			}
		}
	}
	t.size++
}

// EstimateObjective returns the sampled objective value implied by the
// current D-table: for Problem 1, F̂1 = nL − Σ_{u∉S} D̄[u] where D̄ is the
// replicate average (S-members hold D = 0 and are excluded by construction
// since their D is 0); for Problem 2, F̂2 = Σ_u D̄[u]. The members parameter
// identifies S for the Problem-1 exclusion.
func (t *DTable) EstimateObjective(members []bool) float64 {
	n := t.ix.g.N()
	var acc int64
	for i := 0; i < t.ix.r; i++ {
		base := i * n
		for u := 0; u < n; u++ {
			if t.problem == Problem1 && members[u] {
				continue
			}
			acc += int64(t.d[base+u])
		}
	}
	avg := float64(acc) / float64(t.ix.r)
	if t.problem == Problem1 {
		return float64(n)*float64(t.ix.l) - avg
	}
	return avg
}
