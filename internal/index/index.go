// Package index implements the sample-materialization machinery of Section
// 3.2 of the paper: the inverted index I[1:R][1:n] over R materialized
// L-length random walks per node (Algorithm 3), the D[1:R][1:n] table of
// per-sample hitting estimates, the approximate marginal-gain computation
// (Algorithm 4), and the incremental update after a node is selected
// (Algorithm 5).
//
// The index stores, for each sample replicate i and each node v, the list of
// source nodes whose i-th walk visits v, together with the hop of the first
// visit. Entry <w, j> in I[i][v] means "w hits v at hop j in its i-th walk".
// With the index materialized once, the marginal gain of every candidate
// under any current set S can be estimated without re-running walks, which
// is what brings the greedy algorithm down to O(kRLn) time.
//
// One deviation from the paper's presentation: Algorithm 3 stores weight 1
// for Problem 2, building a second index. Here a single index stores the
// actual first-visit hop and the Problem-2 logic simply ignores the hop
// (treating every entry as an indicator), which is arithmetically identical
// and halves memory when both problems are run on the same graph.
//
// # Memory layout
//
// Within one materialized replicate range, the index and the D-table are
// stored candidate-major: row (v, i) lives at v·R+i, so the R replicate rows
// of one node are contiguous. One Gain(u) therefore reads a single
// contiguous span of index entries (ids[offsets[u·R] : offsets[(u+1)·R]])
// and one contiguous D-span (d[u·R : (u+1)·R]) instead of the R scattered
// rows a replicate-major d[i·n+u] layout costs. The selection loop evaluates
// Gain over many candidates per round, so this is the hot-path layout; the
// ablation benchmark in the index test suite quantifies the difference.
//
// An index can also be chunked (chunked.go): an ordered set of replicate
// chunks, each a self-contained candidate-major CSR over a consecutive
// replicate range built by BuildRangeWorkers from the same master seed.
// Per-walk seeding by (node, absolute replicate) makes each chunk a
// deterministic slice of the flat build, so integer gain/objective partials
// summed across chunks equal the flat sums exactly, and a chunked index can
// grow one chunk at a time (ExtendReplicates) — the mechanism behind
// adaptive accuracy budgets. The on-disk format (serialize.go, v7) stores
// one payload + CRC per chunk; a flat index serializes as a single chunk.
//
// Gains are pure reads of the D-table between Update calls and accumulate
// in integers, so GainBatch may be invoked concurrently from any number of
// goroutines with bit-for-bit identical results — the property the parallel
// greedy driver in internal/greedy relies on.
package index

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/store"
)

// Problem selects which objective the D-table tracks.
type Problem int

const (
	// Problem1 is total-hitting-time minimization (Eq. 6): D[i][u] holds the
	// per-sample hitting time of u's walk to S, initialized to L.
	Problem1 Problem = 1
	// Problem2 is expected-dominated-count maximization (Eq. 7): D[i][u]
	// holds the per-sample indicator that u's walk hits S, initialized to 0.
	Problem2 Problem = 2
)

func (p Problem) String() string {
	switch p {
	case Problem1:
		return "F1"
	case Problem2:
		return "F2"
	default:
		return fmt.Sprintf("Problem(%d)", int(p))
	}
}

// Index is the inverted index of Algorithm 3. It is safe for concurrent
// readers and immutable under them; the only mutation is Repair (mutate.go),
// which requires the caller to exclude readers for its duration. D-tables
// carry the per-query mutable state.
type Index struct {
	g *graph.Graph
	l int
	r int
	// rbase is the first absolute replicate number materialized: a partial
	// index built by BuildRangeWorkers over [r0, r1) has rbase = r0 and
	// r = r1 − r0. Walks are seeded per (node, absolute replicate), so the
	// partial index holds exactly the rows [r0, r1) of the full build — the
	// invariant replicate-sharded serving merges on. Full builds have
	// rbase = 0.
	rbase int
	// seed is the master walk seed the index was built from (0 for indexes
	// assembled by BuildFromWalks, which samples nothing). It is part of the
	// serialized identity: the cache's spill loader verifies it so a stale
	// or colliding spill file can never impersonate a different build.
	seed uint64

	// gepoch is the mutation epoch of the graph the entries reflect: equal to
	// g.Epoch() at build time and advanced by every Repair. It is part of the
	// serialized identity (format v6), so a spill file written before a
	// mutation can never warm-load as current afterwards even when the
	// mutation round-trips the structure (fingerprint alone cannot tell
	// "mutated back" from "never mutated").
	gepoch uint64
	// fromWalks marks indexes assembled by BuildFromWalks: their walks were
	// supplied, not sampled from seed, so Repair cannot deterministically
	// regenerate them and refuses.
	fromWalks bool

	// parts, when non-nil, marks a chunked index: an ordered set of
	// self-contained partial indexes over consecutive replicate ranges
	// (chunked.go). Each part is a flat candidate-major CSR built by
	// BuildRangeWorkers over its own range, so per-walk seeding guarantees the
	// chunks concatenate to exactly the rows a flat build of the same total
	// width materializes. A chunked parent holds only aggregate metadata
	// (g/l/r/rbase/seed/gepoch) — its offsets/ids/hops/ends stay nil — and
	// every accessor sums or delegates across parts in replicate order.
	// Flat indexes (parts == nil) are untouched by the chunked machinery.
	parts []*Index

	// Row (i, v) occupies ids[span(v*R+i)] with parallel first-visit hops in
	// hops — candidate-major, all R rows of a node contiguous (see the
	// package comment). Entries are (source node, hop of first visit), sorted
	// by source; a source appears at most once per row.
	//
	// Freshly built or loaded indexes are compact: ends is nil and row k is
	// ids[offsets[k]:offsets[k+1]]. After a Repair the index is patched: ends
	// is non-nil, row k is ids[offsets[k]:ends[k]], rows need not be adjacent
	// or in order, and dead counts unreachable slots (shrunken-row slack and
	// relocated rows' old storage). Compact restores the canonical compact
	// form; WriteTo always serializes it, so the on-disk format never sees
	// patched layout.
	offsets []int64
	ids     []int32
	hops    []uint16
	ends    []int64
	dead    int64

	// stf, when non-nil, marks a store-backed index (backing.go): the CSR
	// data lives in a format-v8 store file (internal/store), served either
	// by aliasing offsets/ids/hops directly out of its pages (raw chunks) or
	// by decode-on-read (sb below). The reference pins the file's mapping —
	// slices into a mapping do not keep it reachable on their own — so an
	// in-flight query can never lose its pages; unmapping happens via
	// finalizer when the last store-backed Index drops. On a chunked parent
	// stf is the shared file of its store-backed parts.
	stf *store.File
	// sb, when non-nil, serves this flat chunk's rows by decoding the
	// file's compressed spans on read (with a hot-row cache) instead of
	// materialized arrays; offsets/ids/hops are nil and sbEntries holds the
	// chunk's entry count from the file directory. Mutation promotes to
	// heap first (Promote).
	sb        *store.Spans
	sbEntries int64

	// emptyGains memoizes the per-problem empty-set gain vectors (slot 0:
	// Problem 1, slot 1: Problem 2), computed lazily by EmptySetGains under
	// emptyMu, which makes the index safe to share across concurrent callers.
	// emptySums is the integer-domain twin serving the partial read path
	// (EmptySetGainSums). Repair drops both (the entries they summarize
	// changed); a plain mutex rather than sync.Once keeps the memo resettable.
	emptyMu    sync.Mutex
	emptyGains [2][]float64
	emptySums  [2][]int64
}

// span returns the bounds of row k in ids/hops, valid in both compact and
// patched layouts.
func (ix *Index) span(k int64) (lo, hi int64) {
	if ix.ends == nil {
		return ix.offsets[k], ix.offsets[k+1]
	}
	return ix.offsets[k], ix.ends[k]
}

// Build materializes R L-length random walks per node and constructs the
// inverted index (Algorithm 3), single-threaded. Memory is O(nRL): the
// final CSR arrays plus, transiently during construction, one buffered copy
// of the per-walk first visits (6 bytes per entry, the same size as the
// final ids+hops payload), so each walk is generated exactly once. Each
// (node, replicate) walk is seeded independently from the master seed, so
// the parallel builder produces the same walks.
func Build(g *graph.Graph, L, R int, seed uint64) (*Index, error) {
	return BuildWorkers(g, L, R, seed, 1)
}

// walkBuffer holds one worker's buffered walk visits: walk t of the
// worker's (node, replicate) sequence emitted lens[t] first visits, stored
// consecutively in vs/hops. Buffering costs one transient copy of the entry
// data but means the RNG, PickNeighbor and visited-stamp work per walk
// happens once instead of twice (generate-to-count, regenerate-to-fill).
type walkBuffer struct {
	vs   []int32
	hops []uint16
	lens []uint16
}

// BuildWorkers is Build sharded over the given number of goroutines.
// The walk set is identical for every worker count (per-walk seeding);
// only the order of entries within an index row may differ, which no
// consumer observes: Gain and EstimateObjective accumulate in integers, so
// selections are bit-for-bit reproducible regardless of parallelism.
func BuildWorkers(g *graph.Graph, L, R int, seed uint64, workers int) (*Index, error) {
	if R <= 0 {
		return nil, fmt.Errorf("index: sample size R = %d, want > 0", R)
	}
	return BuildRangeWorkers(g, L, seed, 0, R, workers)
}

// BuildRangeWorkers materializes only the replicate range [r0, r1) of a full
// R-replicate build. Walk i of the partial index is seeded per
// (node, absolute replicate) — rng.Mix(seed, w, r0+i) — exactly as
// BuildWorkers seeds replicate r0+i of the full build, so the partial index
// is a deterministic slice of the full one: its rows equal rows [r0, r1) of
// BuildWorkers(g, L, r1, seed, ·). Integer gain/objective sums over disjoint
// ranges therefore add up to the full-build sums exactly, which is what lets
// a replicate-sharded deployment merge partial answers bit-for-bit.
// BuildWorkers is BuildRangeWorkers over [0, R).
func BuildRangeWorkers(g *graph.Graph, L int, seed uint64, r0, r1, workers int) (*Index, error) {
	if L < 0 {
		return nil, fmt.Errorf("index: negative walk length %d", L)
	}
	if L > 1<<16-1 {
		return nil, fmt.Errorf("index: walk length %d exceeds hop storage (max %d)", L, 1<<16-1)
	}
	if r0 < 0 || r1 <= r0 {
		return nil, fmt.Errorf("index: replicate range [%d, %d) invalid, want 0 <= r0 < r1", r0, r1)
	}
	R := r1 - r0
	if workers < 1 {
		workers = 1
	}
	n := g.N()
	if workers > n {
		workers = n
	}
	ix := &Index{g: g, l: L, r: R, rbase: r0, seed: seed, gepoch: g.Epoch()}
	rows := R * n
	counts := make([]int64, rows+1)

	// Sharded workers collide on row counters and row cursors (rows are
	// keyed by visited node, not by the source shard). Two schemes:
	// per-worker private counter/cursor arrays (no atomics, no cache-line
	// ping-pong between cores — the fast path), or shared arrays with
	// atomic increments when the private arrays would cost too much
	// transient memory on huge row spaces.
	const privateBudget = 1 << 28 // 256 MiB of per-worker counters
	private := workers > 1 && int64(workers)*int64(rows)*8 <= privateBudget
	atomicOps := workers > 1 && !private
	var perWorker [][]int64
	if private {
		perWorker = make([][]int64, workers)
		for wk := range perWorker {
			perWorker[wk] = make([]int64, rows)
		}
	}

	// shard runs fn over worker-private node ranges.
	shard := func(fn func(worker, lo, hi int)) {
		if workers == 1 {
			fn(0, 0, n)
			return
		}
		var wg sync.WaitGroup
		per := (n + workers - 1) / workers
		for wk := 0; wk < workers; wk++ {
			lo := wk * per
			hi := lo + per
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(wk, lo, hi int) {
				defer wg.Done()
				fn(wk, lo, hi)
			}(wk, lo, hi)
		}
		wg.Wait()
	}

	// Pass 1: generate every walk once, buffering its first visits and
	// counting row sizes (candidate-major row id v·R+i).
	bufs := make([]walkBuffer, workers)
	shard(func(wk, lo, hi int) {
		visited := make([]uint32, n)
		var generation uint32
		var rnd rng.Source
		var mine []int64
		if private {
			mine = perWorker[wk]
		}
		buf := walkBuffer{
			// Start at a quarter of the nRL upper bound; append grows the
			// rare dense cases.
			vs:   make([]int32, 0, (hi-lo)*R*(L/4+1)),
			hops: make([]uint16, 0, (hi-lo)*R*(L/4+1)),
			lens: make([]uint16, 0, (hi-lo)*R),
		}
		for w := lo; w < hi; w++ {
			for i := 0; i < R; i++ {
				rnd.Seed(rng.Mix(seed, uint64(w), uint64(r0+i)))
				generation++
				visited[w] = generation
				u := w
				emitted := uint16(0)
				for j := 1; j <= L; j++ {
					v := g.PickNeighbor(u, rnd.Float64())
					if v < 0 {
						break
					}
					if visited[v] != generation {
						visited[v] = generation
						buf.vs = append(buf.vs, int32(v))
						buf.hops = append(buf.hops, uint16(j))
						emitted++
						row := int64(v)*int64(R) + int64(i)
						switch {
						case mine != nil:
							mine[row]++
						case atomicOps:
							atomic.AddInt64(&counts[row+1], 1)
						default:
							counts[row+1]++
						}
					}
					u = v
				}
				buf.lens = append(buf.lens, emitted)
			}
		}
		bufs[wk] = buf
	})
	ix.offsets = counts
	if private {
		// Merge the private counters into CSR starts, and in the same pass
		// turn each worker's counter into its absolute write cursor: workers
		// own disjoint, consecutive sub-ranges of every row, so pass 2 needs
		// no synchronization at all.
		run := int64(0)
		for row := 0; row < rows; row++ {
			ix.offsets[row] = run
			for wk := 0; wk < workers; wk++ {
				c := perWorker[wk][row]
				perWorker[wk][row] = run
				run += c
			}
		}
		ix.offsets[rows] = run
	} else {
		for i := 1; i <= rows; i++ {
			ix.offsets[i] += ix.offsets[i-1]
		}
	}
	total := ix.offsets[rows]
	ix.ids = make([]int32, total)
	ix.hops = make([]uint16, total)

	// Pass 2: replay the buffers — a sequential read — and scatter entries
	// into their rows. On the private path each worker claims slots from its
	// own cursor array; otherwise slots are claimed directly from offsets
	// (offsets[row] is the next free slot of its row, atomically when
	// sharded), and the starts are restored by one shift afterwards,
	// avoiding a separate cursor array.
	shard(func(wk, lo, hi int) {
		buf := bufs[wk]
		var mine []int64
		if private {
			mine = perWorker[wk]
		}
		pos, t := 0, 0
		for w := lo; w < hi; w++ {
			ww := int32(w)
			for i := 0; i < R; i++ {
				cnt := int(buf.lens[t])
				t++
				for e := 0; e < cnt; e++ {
					row := int64(buf.vs[pos])*int64(R) + int64(i)
					var c int64
					switch {
					case mine != nil:
						c = mine[row]
						mine[row] = c + 1
					case atomicOps:
						c = atomic.AddInt64(&ix.offsets[row], 1) - 1
					default:
						c = ix.offsets[row]
						ix.offsets[row] = c + 1
					}
					ix.ids[c] = ww
					ix.hops[c] = buf.hops[pos]
					pos++
				}
			}
		}
	})
	if !private {
		// offsets[row] now holds the end of its row, i.e. the start of row+1:
		// shift right to restore the CSR starts (offsets[rows] was never used
		// as a cursor and still holds the total).
		copy(ix.offsets[1:], ix.offsets[:rows])
		ix.offsets[0] = 0
	}
	return ix, nil
}

// BuildFromWalks constructs an index from explicitly provided walks instead
// of sampling them: walks[w][i] is the i-th walk of node w and must begin at
// w. It is used by tests to reproduce the paper's worked example (Example
// 3.1 / Table 1) exactly, and by callers that generate walks elsewhere.
func BuildFromWalks(g *graph.Graph, L, R int, walks [][][]int32) (*Index, error) {
	if L < 0 || L > 1<<16-1 {
		return nil, fmt.Errorf("index: walk length %d out of range", L)
	}
	if R <= 0 {
		return nil, fmt.Errorf("index: sample size R = %d, want > 0", R)
	}
	n := g.N()
	if len(walks) != n {
		return nil, fmt.Errorf("index: walks for %d nodes, graph has %d", len(walks), n)
	}
	ix := &Index{g: g, l: L, r: R, gepoch: g.Epoch(), fromWalks: true}
	rows := R * n
	counts := make([]int64, rows+1)
	visited := make([]uint32, n)
	var generation uint32

	firstVisits := func(w, i int, emit func(v int32, hop uint16)) error {
		walk := walks[w][i]
		if len(walk) == 0 || int(walk[0]) != w {
			return fmt.Errorf("index: walk %d of node %d does not start at %d", i, w, w)
		}
		if len(walk) > L+1 {
			return fmt.Errorf("index: walk %d of node %d has %d positions, max L+1=%d", i, w, len(walk), L+1)
		}
		generation++
		visited[w] = generation
		for j := 1; j < len(walk); j++ {
			v := walk[j]
			if v < 0 || int(v) >= n {
				return fmt.Errorf("index: walk %d of node %d visits out-of-range node %d", i, w, v)
			}
			if visited[v] != generation {
				visited[v] = generation
				emit(v, uint16(j))
			}
		}
		return nil
	}

	for w := 0; w < n; w++ {
		if len(walks[w]) != R {
			return nil, fmt.Errorf("index: node %d has %d walks, want R=%d", w, len(walks[w]), R)
		}
		for i := 0; i < R; i++ {
			ii := int64(i)
			if err := firstVisits(w, i, func(v int32, hop uint16) {
				counts[int64(v)*int64(R)+ii+1]++
			}); err != nil {
				return nil, err
			}
		}
	}
	ix.offsets = counts
	for i := 1; i <= rows; i++ {
		ix.offsets[i] += ix.offsets[i-1]
	}
	total := ix.offsets[rows]
	ix.ids = make([]int32, total)
	ix.hops = make([]uint16, total)
	cursor := make([]int64, rows)
	copy(cursor, ix.offsets[:rows])
	for w := 0; w < n; w++ {
		ww := int32(w)
		for i := 0; i < R; i++ {
			ii := int64(i)
			if err := firstVisits(w, i, func(v int32, hop uint16) {
				row := int64(v)*int64(R) + ii
				c := cursor[row]
				ix.ids[c] = ww
				ix.hops[c] = hop
				cursor[row] = c + 1
			}); err != nil {
				return nil, err
			}
		}
	}
	return ix, nil
}

// Graph returns the indexed graph.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// L returns the walk-length bound the index was built with.
func (ix *Index) L() int { return ix.l }

// R returns the number of sample replicates per node materialized in this
// index — for a partial index, the width r1 − r0 of its replicate range.
func (ix *Index) R() int { return ix.r }

// R0 returns the first absolute replicate number materialized: 0 for full
// builds, r0 for an index built by BuildRangeWorkers over [r0, r1). The
// materialized range is [R0, R0+R).
func (ix *Index) R0() int { return ix.rbase }

// Seed returns the master walk seed the index was built from; 0 for indexes
// assembled from explicit walks (BuildFromWalks).
func (ix *Index) Seed() uint64 { return ix.seed }

// GraphEpoch returns the mutation epoch of the graph state the index
// reflects: g.Epoch() at build time, advanced by every Repair.
func (ix *Index) GraphEpoch() uint64 { return ix.gepoch }

// Entries returns the number of materialized (source, first-visit) pairs;
// it is bounded by nRL.
func (ix *Index) Entries() int64 {
	if ix.parts != nil {
		var total int64
		for _, pt := range ix.parts {
			total += pt.Entries()
		}
		return total
	}
	if ix.sb != nil {
		return ix.sbEntries
	}
	if ix.ends != nil {
		return int64(len(ix.ids)) - ix.dead
	}
	return ix.offsets[len(ix.offsets)-1]
}

// Row returns the sources that hit node v in replicate i and their
// first-visit hops. The slices alias index storage and must not be modified.
func (ix *Index) Row(i, v int) (ids []int32, hops []uint16) {
	if ix.parts != nil {
		pt, li := ix.partFor(i)
		return pt.Row(li, v)
	}
	if ix.sb != nil {
		return ix.storeRow(i, v)
	}
	lo, hi := ix.span(int64(v)*int64(ix.r) + int64(i))
	return ix.ids[lo:hi], ix.hops[lo:hi]
}

// MemoryBytes reports the approximate heap footprint of the index, used by
// the scalability experiment to confirm O(nRL + m) space and by the cache's
// bytes budget. A store-backed chunk's entry data lives on mapped pages (or
// in the shared file buffer accounted once on the parent, see below), not
// the Go heap, so it reports ~0: mapped indexes are nearly free against the
// budget, which is exactly what lets a cache serve more index than RAM.
func (ix *Index) MemoryBytes() int64 {
	if ix.parts != nil {
		total := int64(0)
		if ix.stf != nil {
			total = ix.stf.HeapBytes()
		}
		for _, pt := range ix.parts {
			if pt.stf != nil {
				continue // pages or shared buffer, counted on the parent
			}
			total += pt.MemoryBytes()
		}
		return total
	}
	if ix.stf != nil {
		return ix.stf.HeapBytes()
	}
	return int64(len(ix.offsets))*8 + int64(len(ix.ids))*4 + int64(len(ix.hops))*2 + int64(len(ix.ends))*8
}

// DTable is the mutable D[1:R][1:n] array of Algorithms 4–6, tracking the
// per-sample hitting estimate of each node's walks under the current set S.
// A DTable belongs to a single greedy run and is not safe for concurrent
// mutation; Gain and GainBatch are pure reads and may run concurrently with
// each other (but not with Update or EstimateObjective).
type DTable struct {
	ix      *Index
	problem Problem
	d       []uint16 // candidate-major: d[u*R+i], matching the index rows
	size    int      // |S| so far
	// tabs, when non-nil, marks the table of a chunked index: one flat child
	// table per replicate chunk (per-chunk columns), with d/sat unused on the
	// parent. Every read sums exact int64 partials across tabs; Update fans
	// out to every tab. sel records the Update history so SyncChunks can
	// replay it into columns for chunks attached after the table was created.
	tabs []*DTable
	sel  []int
	// sat, Problem 2 only, memoizes nodes whose replicate row is fully
	// saturated (all R entries 1). Rows are monotone non-decreasing, so a
	// saturated row stays saturated; EstimateObjective uses it to skip the
	// O(R) scan. Lazily maintained — false just means "not yet observed
	// saturated".
	sat []bool
	// muts counts semantic mutations (Update, ExtendFrom) so Snapshot can
	// detect that its aliased view of the table went stale. sat memoization
	// is not a semantic mutation and does not bump it.
	muts uint64
}

// NewDTable returns a fresh D-table for the given problem: initialized to L
// everywhere for Problem 1 ("h_uS = L given S = ∅", Algorithm 6 line 3) and
// to 0 everywhere for Problem 2.
func (ix *Index) NewDTable(p Problem) (*DTable, error) {
	if p != Problem1 && p != Problem2 {
		return nil, fmt.Errorf("index: unknown problem %d", int(p))
	}
	if ix.parts != nil {
		t := &DTable{ix: ix, problem: p, tabs: make([]*DTable, 0, len(ix.parts))}
		for _, pt := range ix.parts {
			ct, err := pt.NewDTable(p)
			if err != nil {
				return nil, err
			}
			t.tabs = append(t.tabs, ct)
		}
		return t, nil
	}
	d := &DTable{ix: ix, problem: p, d: make([]uint16, ix.r*ix.g.N())}
	if p == Problem1 {
		l := uint16(ix.l)
		for i := range d.d {
			d.d[i] = l
		}
	} else {
		d.sat = make([]bool, ix.g.N())
	}
	return d, nil
}

// Problem returns which objective this table tracks.
func (t *DTable) Problem() Problem { return t.problem }

// Clone returns an independent copy of the table, used to evaluate
// hypothetical selections without disturbing the greedy state.
func (t *DTable) Clone() *DTable {
	if t.tabs != nil {
		c := &DTable{ix: t.ix, problem: t.problem, size: t.size, tabs: make([]*DTable, 0, len(t.tabs))}
		for _, tb := range t.tabs {
			c.tabs = append(c.tabs, tb.Clone())
		}
		c.sel = append([]int(nil), t.sel...)
		return c
	}
	d := make([]uint16, len(t.d))
	copy(d, t.d)
	var sat []bool
	if t.sat != nil {
		sat = make([]bool, len(t.sat))
		copy(sat, t.sat)
	}
	return &DTable{ix: t.ix, problem: t.problem, d: d, size: t.size, sat: sat}
}

// Size returns the number of Update calls applied, i.e. |S|.
func (t *DTable) Size() int { return t.size }

// Gain implements Algorithm 4: the approximate marginal gain of adding u to
// the current set, averaged over the R replicates.
//
// For Problem 1 this estimates F1(S∪{u}) − F1(S) under the Eq. (6) form
// F1(S) = nL − Σ_{u∈V\S} h^L_{uS}, which equals h_uS + Σ_w (h_wS − h_wSu).
// (The paper states σ_u = ... − L because its complexity analysis uses the
// alternative form Σ_{u∈V\S}(L − h_uS); the two differ by the constant L per
// added node and induce the same argmax, as the paper notes.) For Problem 2
// it estimates F2(S∪{u}) − F2(S) directly.
func (t *DTable) Gain(u int) float64 {
	return float64(t.gainInt(u)) / float64(t.ix.r)
}

// gainInt is Gain before the final division: the integer sum over the R
// replicates. Integer accumulation makes the value independent of entry
// order within rows and of how candidates are sharded across goroutines,
// which is what keeps parallel selections bit-for-bit reproducible.
//
// The candidate-major layout makes this a single pass over two contiguous
// spans: the candidate's own D-row d[u·R : (u+1)·R] and the candidate's
// index entries ids[offsets[u·R] : offsets[(u+1)·R]].
func (t *DTable) gainInt(u int) int64 {
	if t.tabs != nil {
		var acc int64
		for _, tb := range t.tabs {
			acc += tb.gainInt(u)
		}
		return acc
	}
	if t.ix.sb != nil {
		return t.gainIntStore(u)
	}
	r := t.ix.r
	base := u * r
	ends := t.ix.ends
	var acc int64
	if t.problem == Problem1 {
		for i := 0; i < r; i++ {
			acc += int64(t.d[base+i])
			lo, hi := t.ix.offsets[base+i], t.ix.offsets[base+i+1]
			if ends != nil {
				hi = ends[base+i]
			}
			ids := t.ix.ids[lo:hi]
			hops := t.ix.hops[lo:hi]
			for e, v := range ids {
				if dv := t.d[int(v)*r+i]; hops[e] < dv {
					acc += int64(dv - hops[e])
				}
			}
		}
	} else {
		for i := 0; i < r; i++ {
			if t.d[base+i] == 0 {
				acc++
			}
			lo, hi := t.ix.offsets[base+i], t.ix.offsets[base+i+1]
			if ends != nil {
				hi = ends[base+i]
			}
			for _, v := range t.ix.ids[lo:hi] {
				if t.d[int(v)*r+i] == 0 {
					acc++
				}
			}
		}
	}
	return acc
}

// GainBatch computes Gain for every candidate in us, appending into (and
// returning) out, which is grown as needed. It is a pure read of the D-table
// and safe to invoke concurrently from several goroutines over disjoint or
// overlapping candidate shards — the batch-capable oracle the parallel
// greedy driver shards its CELF sweeps over.
func (t *DTable) GainBatch(us []int, out []float64) []float64 {
	// Divide (not multiply by a reciprocal) so batch and single-candidate
	// gains are the same float64 bit pattern.
	r := float64(t.ix.r)
	for _, u := range us {
		out = append(out, float64(t.gainInt(u))/r)
	}
	return out
}

// GainSumBatch computes the integer gain sum (Gain before the final division
// by R) for every candidate in us, appending into (and returning) out. Like
// GainBatch it is a pure read, safe to invoke concurrently from several
// goroutines. It is the scatter-gather primitive of replicate-sharded
// serving: integer sums over disjoint replicate ranges merge exactly by
// addition, and the coordinator performs the single float64 division at the
// end — the same expression the unsharded Gain computes — so merged gains
// are bit-identical to unsharded ones.
func (t *DTable) GainSumBatch(us []int, out []int64) []int64 {
	for _, u := range us {
		out = append(out, t.gainInt(u))
	}
	return out
}

// ObjectiveSum returns the integer objective accumulator Σ D[u] underlying
// EstimateObjective, before averaging over replicates and (for Problem 1)
// subtracting from nL. Unlike EstimateObjective it is a pure read — it
// consults the Problem-2 saturation memo but never writes it — so it is safe
// on shared memoized tables and may run concurrently with Gain reads. The
// sharded coordinator adds these sums across replicate ranges and applies
// the final float64 arithmetic once, reproducing EstimateObjective's value
// bit-for-bit.
func (t *DTable) ObjectiveSum(members []bool) int64 {
	if t.tabs != nil {
		var acc int64
		for _, tb := range t.tabs {
			acc += tb.ObjectiveSum(members)
		}
		return acc
	}
	n := t.ix.g.N()
	r := t.ix.r
	var acc int64
	for u := 0; u < n; u++ {
		if t.problem == Problem1 && members[u] {
			continue
		}
		if t.sat != nil && t.sat[u] {
			acc += int64(r)
			continue
		}
		base := u * r
		for i := 0; i < r; i++ {
			acc += int64(t.d[base+i])
		}
	}
	return acc
}

// Update implements Algorithm 5: fold the newly selected node u into the
// D-table so subsequent Gain calls are relative to S ∪ {u}.
func (t *DTable) Update(u int) {
	if t.tabs != nil {
		for _, tb := range t.tabs {
			tb.Update(u)
		}
		t.sel = append(t.sel, u)
		t.size++
		t.muts++
		return
	}
	if t.ix.sb != nil {
		t.updateStore(u)
		t.size++
		t.muts++
		return
	}
	r := t.ix.r
	base := u * r
	ends := t.ix.ends
	if t.problem == Problem1 {
		for i := 0; i < r; i++ {
			t.d[base+i] = 0
			lo, hi := t.ix.offsets[base+i], t.ix.offsets[base+i+1]
			if ends != nil {
				hi = ends[base+i]
			}
			ids := t.ix.ids[lo:hi]
			hops := t.ix.hops[lo:hi]
			for e, v := range ids {
				if j := int(v)*r + i; hops[e] < t.d[j] {
					t.d[j] = hops[e]
				}
			}
		}
	} else {
		for i := 0; i < r; i++ {
			t.d[base+i] = 1
			lo, hi := t.ix.offsets[base+i], t.ix.offsets[base+i+1]
			if ends != nil {
				hi = ends[base+i]
			}
			for _, v := range t.ix.ids[lo:hi] {
				t.d[int(v)*r+i] = 1
			}
		}
	}
	t.size++
	t.muts++
}

// EstimateObjective returns the sampled objective value implied by the
// current D-table: for Problem 1, F̂1 = nL − Σ_{u∉S} D̄[u] where D̄ is the
// replicate average (S-members hold D = 0 and are excluded by construction
// since their D is 0); for Problem 2, F̂2 = Σ_u D̄[u]. The members parameter
// identifies S for the Problem-1 exclusion.
//
// The scan is candidate-major — one contiguous R-span per node — and for
// Problem 2 a node observed fully saturated (all replicates hit) is
// memoized in the sat bitmap and skipped on later calls: rows only ever
// grow toward saturation, and late greedy rounds saturate most of the
// graph, so repeated objective probes become nearly O(n).
func (t *DTable) EstimateObjective(members []bool) float64 {
	var acc int64
	if t.tabs != nil {
		for _, tb := range t.tabs {
			acc += tb.objectiveAccum(members)
		}
	} else {
		acc = t.objectiveAccum(members)
	}
	n := t.ix.g.N()
	avg := float64(acc) / float64(t.ix.r)
	if t.problem == Problem1 {
		return float64(n)*float64(t.ix.l) - avg
	}
	return avg
}

// objectiveAccum is EstimateObjective's integer accumulator over a flat
// table's replicate columns, maintaining the Problem-2 saturation memo. The
// chunked path sums it across child tables and applies the float arithmetic
// once with the total replicate width, so chunked objectives are bit-for-bit
// identical to flat ones.
func (t *DTable) objectiveAccum(members []bool) int64 {
	n := t.ix.g.N()
	r := t.ix.r
	var acc int64
	for u := 0; u < n; u++ {
		if t.problem == Problem1 && members[u] {
			continue
		}
		if t.sat != nil && t.sat[u] {
			acc += int64(r)
			continue
		}
		var row int64
		base := u * r
		for i := 0; i < r; i++ {
			row += int64(t.d[base+i])
		}
		if t.sat != nil && row == int64(r) {
			t.sat[u] = true
		}
		acc += row
	}
	return acc
}
