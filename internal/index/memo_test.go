package index

import (
	"math"
	"sync"
	"testing"

	"repro/internal/graph"
)

func memoTestIndex(t *testing.T, n int, L, R int, seed uint64) *Index {
	t.Helper()
	g, err := graph.BarabasiAlbert(n, 3, seed)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, L, R, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// Empty-set gains computed off the index must be bit-identical to a fresh
// D-table's gains — the property the server's zero-allocation gain path
// relies on.
func TestEmptySetGainsMatchFreshDTable(t *testing.T) {
	ix := memoTestIndex(t, 400, 5, 20, 7)
	for _, p := range []Problem{Problem1, Problem2} {
		gains, err := ix.EmptySetGains(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(gains) != ix.Graph().N() {
			t.Fatalf("%v: %d gains for %d nodes", p, len(gains), ix.Graph().N())
		}
		d, err := ix.NewDTable(p)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < ix.Graph().N(); u++ {
			if want := d.Gain(u); math.Float64bits(gains[u]) != math.Float64bits(want) {
				t.Fatalf("%v: EmptySetGains[%d] = %v, fresh table says %v", p, u, gains[u], want)
			}
		}
		// Memoized: the second call returns the same shared slice.
		again, err := ix.EmptySetGains(p)
		if err != nil {
			t.Fatal(err)
		}
		if &again[0] != &gains[0] {
			t.Fatalf("%v: EmptySetGains not memoized", p)
		}
	}
	if _, err := ix.EmptySetGains(Problem(9)); err == nil {
		t.Fatal("unknown problem: expected error")
	}
}

func TestEmptySetGainsConcurrent(t *testing.T) {
	ix := memoTestIndex(t, 300, 4, 10, 3)
	var wg sync.WaitGroup
	results := make([][]float64, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := ix.EmptySetGains(Problem1)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = g
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if &results[i][0] != &results[0][0] {
			t.Fatal("concurrent EmptySetGains returned different slices")
		}
	}
}

func TestEmptySetObjectiveMatchesFreshDTable(t *testing.T) {
	ix := memoTestIndex(t, 250, 6, 15, 11)
	members := make([]bool, ix.Graph().N())
	for _, p := range []Problem{Problem1, Problem2} {
		got, err := ix.EmptySetObjective(p)
		if err != nil {
			t.Fatal(err)
		}
		d, err := ix.NewDTable(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := d.EstimateObjective(members); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%v: EmptySetObjective = %v, fresh table says %v", p, got, want)
		}
	}
	if _, err := ix.EmptySetObjective(Problem(0)); err == nil {
		t.Fatal("unknown problem: expected error")
	}
}

// ExtendFrom(snapshot of S, Δ...) must land on exactly the state a full
// replay of S ∪ Δ produces — gains and objective bit-identical.
func TestSnapshotExtendFromMatchesReplay(t *testing.T) {
	ix := memoTestIndex(t, 350, 5, 12, 5)
	n := ix.Graph().N()
	for _, p := range []Problem{Problem1, Problem2} {
		prefix := []int{17, 3, 250}
		delta := []int{42, 9}

		base, err := ix.NewDTable(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range prefix {
			base.Update(u)
		}
		snap := base.Snapshot()

		ext, err := ix.NewDTable(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := ext.ExtendFrom(snap, delta...); err != nil {
			t.Fatal(err)
		}

		replay, err := ix.NewDTable(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range append(append([]int{}, prefix...), delta...) {
			replay.Update(u)
		}

		if ext.Size() != replay.Size() {
			t.Fatalf("%v: extended size %d, replay %d", p, ext.Size(), replay.Size())
		}
		for u := 0; u < n; u++ {
			if g, w := ext.Gain(u), replay.Gain(u); math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("%v: Gain(%d) = %v after ExtendFrom, %v after replay", p, u, g, w)
			}
		}
		members := make([]bool, n)
		for _, u := range append(append([]int{}, prefix...), delta...) {
			members[u] = true
		}
		if g, w := ext.EstimateObjective(members), replay.EstimateObjective(members); math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("%v: objective %v after ExtendFrom, %v after replay", p, g, w)
		}
	}
}

func TestSnapshotInvalidation(t *testing.T) {
	ix := memoTestIndex(t, 100, 4, 8, 2)
	d, err := ix.NewDTable(Problem2)
	if err != nil {
		t.Fatal(err)
	}
	d.Update(1)
	snap := d.Snapshot()
	if snap.Size() != 1 || snap.Problem() != Problem2 {
		t.Fatalf("snapshot size/problem = %d/%v", snap.Size(), snap.Problem())
	}
	dst, err := ix.NewDTable(Problem2)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ExtendFrom(snap); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	d.Update(2) // invalidates snap
	if err := dst.ExtendFrom(snap); err == nil {
		t.Fatal("stale snapshot accepted")
	}
}

func TestExtendFromMismatches(t *testing.T) {
	ix := memoTestIndex(t, 100, 4, 8, 2)
	other := memoTestIndex(t, 100, 4, 8, 3)
	d1, _ := ix.NewDTable(Problem1)
	d2, _ := ix.NewDTable(Problem2)
	o1, _ := other.NewDTable(Problem1)
	if err := d1.ExtendFrom(d2.Snapshot()); err == nil {
		t.Fatal("cross-problem ExtendFrom accepted")
	}
	if err := d1.ExtendFrom(o1.Snapshot()); err == nil {
		t.Fatal("cross-index ExtendFrom accepted")
	}
	if err := d1.ExtendFrom(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}

func TestDTableAccessors(t *testing.T) {
	ix := memoTestIndex(t, 120, 4, 8, 2)
	d, _ := ix.NewDTable(Problem2)
	if d.Index() != ix {
		t.Fatal("Index() accessor broken")
	}
	want := int64(len(d.d))*2 + int64(len(d.sat))
	if d.MemoryBytes() != want {
		t.Fatalf("MemoryBytes = %d, want %d", d.MemoryBytes(), want)
	}
}
