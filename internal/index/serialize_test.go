package index

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestIndexRoundTrip(t *testing.T) {
	g, _ := graph.BarabasiAlbert(200, 3, 7)
	orig, err := Build(g, 5, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	back, err := ReadIndex(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if back.L() != orig.L() || back.R() != orig.R() || back.Entries() != orig.Entries() {
		t.Fatalf("metadata mismatch after round trip")
	}
	if back.Seed() != 42 {
		t.Fatalf("seed after round trip = %d, want 42", back.Seed())
	}
	for i := range orig.ids {
		if orig.ids[i] != back.ids[i] || orig.hops[i] != back.hops[i] {
			t.Fatal("payload mismatch after round trip")
		}
	}
	// The loaded index must behave identically in a greedy run.
	d1, _ := orig.NewDTable(Problem1)
	d2, _ := back.NewDTable(Problem1)
	for _, u := range []int{3, 77, 150} {
		if d1.Gain(u) != d2.Gain(u) {
			t.Fatalf("gain mismatch at %d", u)
		}
		d1.Update(u)
		d2.Update(u)
	}
}

func TestIndexFileRoundTrip(t *testing.T) {
	g, _ := graph.BarabasiAlbert(100, 2, 9)
	orig, _ := Build(g, 4, 5, 1)
	path := filepath.Join(t.TempDir(), "walks.idx")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if back.Entries() != orig.Entries() {
		t.Fatal("file round trip lost entries")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.idx"), g); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadAgainstWrongGraphRejected(t *testing.T) {
	g1, _ := graph.BarabasiAlbert(100, 2, 1)
	g2, _ := graph.BarabasiAlbert(100, 2, 2) // same size, different structure
	ix, _ := Build(g1, 4, 5, 1)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := ReadIndex(&buf, g2)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("wrong-graph load: got %v, want fingerprint mismatch", err)
	}
}

func TestCorruptStreamsRejected(t *testing.T) {
	g, _ := graph.BarabasiAlbert(50, 2, 3)
	ix, _ := Build(g, 3, 4, 5)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, err := ReadIndex(bytes.NewReader(bad), g); err == nil {
		t.Error("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte(nil), raw...)
	bad[8] = 99
	if _, err := ReadIndex(bytes.NewReader(bad), g); err == nil {
		t.Error("bad version accepted")
	}
	// Truncated payload.
	if _, err := ReadIndex(bytes.NewReader(raw[:len(raw)/2]), g); err == nil {
		t.Error("truncated stream accepted")
	}
	// Corrupted entry: flip a node id byte deep in the payload to an
	// out-of-range value. Locate the ids section: header is 8 + 7*8 bytes,
	// then offsets (rows+1)*8 bytes.
	rows := ix.R()*g.N() + 1
	idsStart := 8 + 7*8 + rows*8
	if idsStart+4 < len(raw) {
		bad = append([]byte(nil), raw...)
		bad[idsStart] = 0xFF
		bad[idsStart+1] = 0xFF
		bad[idsStart+2] = 0xFF
		bad[idsStart+3] = 0x7F // id = MaxInt32: out of range
		if _, err := ReadIndex(bytes.NewReader(bad), g); err == nil {
			t.Error("corrupt node id accepted")
		}
	}
	// Empty stream.
	if _, err := ReadIndex(bytes.NewReader(nil), g); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestBuildWorkersEquivalence(t *testing.T) {
	// The parallel builder must produce semantically identical indexes for
	// any worker count: same per-row entry multisets, hence identical gains
	// and selections at every greedy stage.
	g, _ := graph.BarabasiAlbert(150, 3, 11)
	const L, R = 5, 8
	seq, err := BuildWorkers(g, L, R, 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildWorkers(g, L, R, 99, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Entries() != par.Entries() {
		t.Fatalf("entry counts differ: %d vs %d", seq.Entries(), par.Entries())
	}
	dSeq, _ := seq.NewDTable(Problem1)
	dPar, _ := par.NewDTable(Problem1)
	picks := []int{10, 42, 99, 3}
	for _, u := range picks {
		for probe := 0; probe < g.N(); probe += 13 {
			if gs, gp := dSeq.Gain(probe), dPar.Gain(probe); gs != gp {
				t.Fatalf("gain(%d) differs after %d updates: %v vs %v", probe, dSeq.Size(), gs, gp)
			}
		}
		dSeq.Update(u)
		dPar.Update(u)
	}
	// Problem 2 as well.
	d2Seq, _ := seq.NewDTable(Problem2)
	d2Par, _ := par.NewDTable(Problem2)
	for probe := 0; probe < g.N(); probe += 7 {
		if gs, gp := d2Seq.Gain(probe), d2Par.Gain(probe); gs != gp {
			t.Fatalf("P2 gain(%d) differs: %v vs %v", probe, gs, gp)
		}
	}
}

func TestBuildWorkersDegenerate(t *testing.T) {
	g, _ := graph.Path(5)
	// workers > n and workers < 1 are both clamped.
	a, err := BuildWorkers(g, 3, 2, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildWorkers(g, 3, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Entries() != b.Entries() {
		t.Fatal("clamped worker counts disagree")
	}
}
