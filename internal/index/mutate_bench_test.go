package index

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// BenchmarkIncrementalRepair measures Repair proper (the graph-side
// ApplyDelta copy runs outside the timer) along the two axes of the claim
// "repair cost scales with the delta, not the graph": the delta axis grows
// the toggled-edge batch on a fixed graph, the graph axis grows the graph
// under a fixed batch. Each iteration toggles the same k edges (remove on
// even epochs, re-add on odd), so every iteration disturbs the same walk
// population; one warm-up toggle before the timer pays the one-off
// compact→patched transition. Contrast with BenchmarkIncrementalRepair/
// rebuild, which pays the full nRL build a repair avoids.
//
// The graph is Erdős–Rényi with fixed average degree, where each node is
// visited by ≈ R·L walks regardless of n, so the affected-walk population
// per toggled edge is n-independent and the axes isolate the algorithm. (On
// a scale-free graph, toggling a hub edge is intrinsically expensive: the
// affected population is every walk that traverses the hub, which grows
// with the graph — that cost is the workload's, not the repair's.)
func BenchmarkIncrementalRepair(b *testing.B) {
	const L, R, seed = 8, 8, 42

	spreadEdges := func(g *graph.Graph, k int) []graph.Edge {
		total := g.M()
		if total < k {
			b.Fatalf("graph has only %d edges, need %d", total, k)
		}
		stride := total / k
		edges := make([]graph.Edge, 0, k)
		i := 0
		g.Edges(func(u, v int, w float64) bool {
			if i%stride == 0 && len(edges) < k {
				edges = append(edges, graph.Edge{U: u, V: v})
			}
			i++
			return len(edges) < k
		})
		return edges
	}

	repairLoop := func(b *testing.B, n, k int) {
		g, err := graph.ErdosRenyi(n, 4*n, 1)
		if err != nil {
			b.Fatal(err)
		}
		ix, err := Build(g, L, R, seed)
		if err != nil {
			b.Fatal(err)
		}
		edges := spreadEdges(g, k)
		present := true
		toggle := func() (*graph.Graph, []int) {
			var d graph.Delta
			if present {
				d = graph.Delta{RemoveEdges: edges}
			} else {
				d = graph.Delta{AddEdges: edges}
			}
			present = !present
			ng, touched, err := g.ApplyDelta(d)
			if err != nil {
				b.Fatal(err)
			}
			return ng, touched
		}
		ng, touched := toggle()
		if err := ix.Repair(ng, touched); err != nil { // warm up: enter patched layout
			b.Fatal(err)
		}
		g = ng
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ng, touched := toggle()
			b.StartTimer()
			if err := ix.Repair(ng, touched); err != nil {
				b.Fatal(err)
			}
			g = ng
		}
	}

	for _, k := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("delta/n=20000/k=%d", k), func(b *testing.B) { repairLoop(b, 20000, k) })
	}
	for _, n := range []int{5000, 20000, 80000} {
		b.Run(fmt.Sprintf("graph/k=8/n=%d", n), func(b *testing.B) { repairLoop(b, n, 8) })
	}
	// The alternative a repair displaces: a from-scratch rebuild at each
	// graph size (delta-independent).
	for _, n := range []int{5000, 20000, 80000} {
		b.Run(fmt.Sprintf("rebuild/n=%d", n), func(b *testing.B) {
			g, err := graph.ErdosRenyi(n, 4*n, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Build(g, L, R, seed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
