package index

import (
	"fmt"

	"repro/internal/graph"
)

// Chunked replicate columns. A chunked index materializes its replicate
// range as an ordered set of chunks, each a self-contained candidate-major
// CSR over a consecutive sub-range built by BuildRangeWorkers from the same
// master seed. Because every walk is seeded per (node, absolute replicate) —
// rng.Mix(seed, w, r0+i) — chunk c over [c0, c1) holds exactly the rows
// [c0, c1) of the flat build, so:
//
//   - integer gain and objective partials summed across chunks equal the
//     flat build's sums exactly (the same invariant replicate-sharded
//     serving merges on), making every chunked answer bit-identical to the
//     flat answer at the same total width;
//   - the index can grow one chunk at a time (ExtendReplicates) without
//     disturbing existing chunks — the mechanism the adaptive accuracy
//     driver in internal/core uses to stop sampling early when a confidence
//     interval on the leading candidate's separation is tight.
//
// D-tables of a chunked index hold per-chunk columns (one flat child table
// per chunk) behind the unchanged DTable API; SyncChunks attaches columns
// for freshly extended chunks by replaying the table's selection history.

// BuildChunkedWorkers materializes R replicates as consecutive chunks of
// (at most) chunk replicates each — the last chunk is ragged when
// R % chunk != 0 — sharded over the given number of goroutines per chunk
// build. The result answers every query bit-identically to
// BuildWorkers(g, L, R, seed, ·); it differs only in physical layout and in
// supporting ExtendReplicates.
func BuildChunkedWorkers(g *graph.Graph, L, R int, seed uint64, chunk, workers int) (*Index, error) {
	if R <= 0 {
		return nil, fmt.Errorf("index: sample size R = %d, want > 0", R)
	}
	return BuildChunkedRangeWorkers(g, L, seed, 0, R, chunk, workers)
}

// BuildChunkedRangeWorkers is BuildChunkedWorkers over the replicate range
// [r0, r1): the chunked twin of BuildRangeWorkers. Chunk boundaries fall at
// r0, r0+chunk, r0+2·chunk, ... capped at r1.
func BuildChunkedRangeWorkers(g *graph.Graph, L int, seed uint64, r0, r1, chunk, workers int) (*Index, error) {
	if chunk < 1 {
		return nil, fmt.Errorf("index: chunk size %d, want >= 1", chunk)
	}
	if r0 < 0 || r1 <= r0 {
		return nil, fmt.Errorf("index: replicate range [%d, %d) invalid, want 0 <= r0 < r1", r0, r1)
	}
	parent := &Index{g: g, l: L, rbase: r0, seed: seed, gepoch: g.Epoch(), parts: make([]*Index, 0, (r1-r0+chunk-1)/chunk)}
	for c0 := r0; c0 < r1; c0 += chunk {
		c1 := c0 + chunk
		if c1 > r1 {
			c1 = r1
		}
		pt, err := BuildRangeWorkers(g, L, seed, c0, c1, workers)
		if err != nil {
			return nil, err
		}
		parent.parts = append(parent.parts, pt)
		parent.r += c1 - c0
	}
	return parent, nil
}

// ExtendReplicates appends one fresh chunk of width replicates at the end of
// the materialized range, so the index answers for R+width replicates
// exactly as a from-scratch chunked build of that width would. Only chunked
// indexes extend; D-tables created before the extension must call SyncChunks
// before their next read. Like Repair, ExtendReplicates mutates the index
// and must not run concurrently with readers.
func (ix *Index) ExtendReplicates(width, workers int) error {
	if ix.parts == nil {
		return fmt.Errorf("index: ExtendReplicates requires a chunked index (BuildChunkedWorkers)")
	}
	if width <= 0 {
		return fmt.Errorf("index: extend width %d, want > 0", width)
	}
	c0 := ix.rbase + ix.r
	pt, err := BuildRangeWorkers(ix.g, ix.l, ix.seed, c0, c0+width, workers)
	if err != nil {
		return err
	}
	ix.parts = append(ix.parts, pt)
	ix.r += width
	ix.resetEmptyMemos()
	return nil
}

// Chunked reports whether the index is stored as replicate chunks.
func (ix *Index) Chunked() bool { return ix.parts != nil }

// Chunks returns the number of replicate chunks: 1 for a flat index.
func (ix *Index) Chunks() int {
	if ix.parts == nil {
		return 1
	}
	return len(ix.parts)
}

// partFor maps local replicate i to the chunk holding it and i's offset
// within that chunk.
func (ix *Index) partFor(i int) (*Index, int) {
	for _, pt := range ix.parts {
		if i < pt.r {
			return pt, i
		}
		i -= pt.r
	}
	panic(fmt.Sprintf("index: replicate %d beyond materialized width", i))
}

// MaxRowLen returns the largest number of index entries in any single
// replicate row of node u. The adaptive accuracy driver turns it into a
// range bound on u's per-replicate gain (every entry contributes at most 1
// for Problem 2 and at most L−1 hitting-time improvement for Problem 1) for
// its Hoeffding/empirical-Bernstein confidence intervals.
func (ix *Index) MaxRowLen(u int) int {
	if ix.parts != nil {
		best := 0
		for _, pt := range ix.parts {
			if m := pt.MaxRowLen(u); m > best {
				best = m
			}
		}
		return best
	}
	if ix.sb != nil {
		return ix.maxRowLenStore(u)
	}
	base := int64(u) * int64(ix.r)
	best := int64(0)
	for i := int64(0); i < int64(ix.r); i++ {
		lo, hi := ix.span(base + i)
		if hi-lo > best {
			best = hi - lo
		}
	}
	return int(best)
}

// SyncChunks attaches per-chunk columns for chunks the index gained through
// ExtendReplicates since this table was created (or last synced), replaying
// the table's Update history into each new column. Afterwards the table
// answers exactly as a table freshly built at the current width with the
// same selections applied. Syncing is a semantic mutation: outstanding
// Snapshots of the table are invalidated when columns were attached.
func (t *DTable) SyncChunks() error {
	if t.tabs == nil {
		if t.ix.parts == nil {
			return nil
		}
		return fmt.Errorf("index: SyncChunks on a flat table of a chunked index")
	}
	grew := false
	for len(t.tabs) < len(t.ix.parts) {
		ct, err := t.ix.parts[len(t.tabs)].NewDTable(t.problem)
		if err != nil {
			return err
		}
		for _, u := range t.sel {
			ct.Update(u)
		}
		t.tabs = append(t.tabs, ct)
		grew = true
	}
	if grew {
		t.muts++
	}
	return nil
}

// AppendReplicateGainSums appends u's integer gain in each materialized
// replicate — the per-replicate terms whose sum is exactly the gainInt
// behind Gain/GainSumBatch — to out in replicate order, and returns the
// grown slice. It is a pure read, safe concurrently with other reads. The
// adaptive accuracy driver uses the per-replicate samples of the two
// leading candidates to bound the separation of their means.
func (t *DTable) AppendReplicateGainSums(u int, out []int64) []int64 {
	if t.tabs != nil {
		for _, tb := range t.tabs {
			out = tb.AppendReplicateGainSums(u, out)
		}
		return out
	}
	if t.ix.sb != nil {
		return t.appendReplicateGainSumsStore(u, out)
	}
	r := t.ix.r
	base := u * r
	ends := t.ix.ends
	if t.problem == Problem1 {
		for i := 0; i < r; i++ {
			acc := int64(t.d[base+i])
			lo, hi := t.ix.offsets[base+i], t.ix.offsets[base+i+1]
			if ends != nil {
				hi = ends[base+i]
			}
			ids := t.ix.ids[lo:hi]
			hops := t.ix.hops[lo:hi]
			for e, v := range ids {
				if dv := t.d[int(v)*r+i]; hops[e] < dv {
					acc += int64(dv - hops[e])
				}
			}
			out = append(out, acc)
		}
		return out
	}
	for i := 0; i < r; i++ {
		var acc int64
		if t.d[base+i] == 0 {
			acc++
		}
		lo, hi := t.ix.offsets[base+i], t.ix.offsets[base+i+1]
		if ends != nil {
			hi = ends[base+i]
		}
		for _, v := range t.ix.ids[lo:hi] {
			if t.d[int(v)*r+i] == 0 {
				acc++
			}
		}
		out = append(out, acc)
	}
	return out
}
