package index

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// Store-backed serving parity: a v8 store file — raw or compressed, mmap'd
// or heap-loaded, with or without the hot-row cache — must answer every
// read bit-identically to the heap-resident index it was written from.
// Gains and objectives are integer sums divided by R last on both paths, so
// "bit-identical" is exact float64 equality, not a tolerance.

// storeVariant is one way of serving a store file.
type storeVariant struct {
	name     string
	compress bool
	opt      StoreOptions
}

// storeVariants is the serving matrix: raw mmap (zero-copy page aliasing),
// compressed on-heap (decode-on-read off a heap buffer), hybrid
// (compressed + mmap + hot-row cache — the -mmap production mode), and
// hybrid with the hot-row cache disabled (every read decodes).
func storeVariants() []storeVariant {
	return []storeVariant{
		{name: "raw-mmap", compress: false, opt: StoreOptions{Mmap: true}},
		{name: "compressed-heap", compress: true, opt: StoreOptions{}},
		{name: "hybrid", compress: true, opt: StoreOptions{Mmap: true}},
		{name: "hybrid-nocache", compress: true, opt: StoreOptions{Mmap: true, HotRows: -1}},
	}
}

// storeLoad round-trips ix through a v8 file and loads it per the variant.
func storeLoad(t *testing.T, ix *Index, v storeVariant) *Index {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ix.rwdomidx")
	if err := ix.SaveStore(path, v.compress); err != nil {
		t.Fatalf("SaveStore: %v", err)
	}
	got, err := LoadStore(path, ix.Graph(), v.opt)
	if err != nil {
		t.Fatalf("LoadStore(%s): %v", v.name, err)
	}
	if !got.StoreBacked() {
		t.Fatalf("LoadStore(%s): index not store-backed", v.name)
	}
	if v.opt.Mmap && !got.StoreMapped() {
		t.Skipf("mmap unavailable on this platform") // !unix heap fallback
	}
	return got
}

// assertReadParity drives the full read surface of want and got through an
// identical greedy-flavored selection and fails on the first diverging bit.
func assertReadParity(t *testing.T, want, got *Index, p Problem) {
	t.Helper()
	n := want.Graph().N()
	if w, g := want.Entries(), got.Entries(); w != g {
		t.Fatalf("Entries: %d vs %d", w, g)
	}
	wantEmpty, err := want.EmptySetGains(p)
	if err != nil {
		t.Fatal(err)
	}
	gotEmpty, err := got.EmptySetGains(p)
	if err != nil {
		t.Fatal(err)
	}
	for u := range wantEmpty {
		if math.Float64bits(wantEmpty[u]) != math.Float64bits(gotEmpty[u]) {
			t.Fatalf("EmptySetGains(%v)[%d]: %v vs %v", p, u, wantEmpty[u], gotEmpty[u])
		}
	}
	wt, err := want.NewDTable(p)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := got.NewDTable(p)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]bool, n)
	// Three greedy rounds: full-sweep gain parity, then both tables update
	// with the same argmax, then objective parity over the selected set.
	for round := 0; round < 3; round++ {
		best, bestGain := -1, math.Inf(-1)
		for u := 0; u < n; u++ {
			w, g := wt.Gain(u), gt.Gain(u)
			if math.Float64bits(w) != math.Float64bits(g) {
				t.Fatalf("round %d Gain(%d): %v vs %v", round, u, w, g)
			}
			if !members[u] && w > bestGain {
				best, bestGain = u, w
			}
		}
		if w, g := want.MaxRowLen(best), got.MaxRowLen(best); w != g {
			t.Fatalf("MaxRowLen(%d): %d vs %d", best, w, g)
		}
		ws := wt.AppendReplicateGainSums(best, nil)
		gs := gt.AppendReplicateGainSums(best, nil)
		if len(ws) != len(gs) {
			t.Fatalf("AppendReplicateGainSums(%d): %d vs %d samples", best, len(ws), len(gs))
		}
		for i := range ws {
			if ws[i] != gs[i] {
				t.Fatalf("AppendReplicateGainSums(%d)[%d]: %d vs %d", best, i, ws[i], gs[i])
			}
		}
		wt.Update(best)
		gt.Update(best)
		members[best] = true
		w, g := wt.EstimateObjective(members), gt.EstimateObjective(members)
		if math.Float64bits(w) != math.Float64bits(g) {
			t.Fatalf("round %d EstimateObjective: %v vs %v", round, w, g)
		}
	}
}

func TestStoreParityReadSurface(t *testing.T) {
	g, err := graph.BarabasiAlbert(250, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Build(g, 5, 18, 42)
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := BuildChunkedWorkers(g, 5, 18, 42, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	layouts := map[string]*Index{"flat": flat, "chunked": chunked}
	for lname, heap := range layouts {
		for _, v := range storeVariants() {
			for _, p := range []Problem{Problem1, Problem2} {
				t.Run(lname+"/"+v.name+"/"+p.String(), func(t *testing.T) {
					assertReadParity(t, heap, storeLoad(t, heap, v), p)
				})
			}
		}
	}
}

// TestStoreParityAfterGrowth grows a store-backed chunked index with
// ExtendReplicates (the new chunk is a fresh heap chunk appended after the
// store-backed ones) and checks it keeps answering bit-identically to a
// heap index grown the same way, including a D-table created before the
// growth and attached to the new chunk via SyncChunks.
func TestStoreParityAfterGrowth(t *testing.T) {
	g, err := graph.BarabasiAlbert(200, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := BuildChunkedWorkers(g, 5, 14, 9, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range storeVariants() {
		t.Run(v.name, func(t *testing.T) {
			got := storeLoad(t, heap, v)
			wt, err := heap.NewDTable(Problem2)
			if err != nil {
				t.Fatal(err)
			}
			gt, err := got.NewDTable(Problem2)
			if err != nil {
				t.Fatal(err)
			}
			wt.Update(3)
			gt.Update(3)
			// Grow both sides identically; the heap clone is built fresh so
			// the two growth paths share no storage.
			if err := heap.ExtendReplicates(6, 2); err != nil {
				t.Fatal(err)
			}
			if err := got.ExtendReplicates(6, 2); err != nil {
				t.Fatalf("ExtendReplicates on store-backed index: %v", err)
			}
			if err := wt.SyncChunks(); err != nil {
				t.Fatal(err)
			}
			if err := gt.SyncChunks(); err != nil {
				t.Fatal(err)
			}
			for u := 0; u < g.N(); u++ {
				w, gg := wt.Gain(u), gt.Gain(u)
				if math.Float64bits(w) != math.Float64bits(gg) {
					t.Fatalf("post-growth Gain(%d): %v vs %v", u, w, gg)
				}
			}
			assertReadParity(t, heap, got, Problem1)
		})
	}
}

// TestStoreParityAfterRepair covers the store→heap promotion contract: a
// store-backed index serves off read-only pages, so Repair must first
// Promote (copy every store-backed chunk onto the heap) and then patch —
// after which the index is no longer store-backed and answers bit-identically
// to a heap index repaired through the same delta.
func TestStoreParityAfterRepair(t *testing.T) {
	g, err := graph.BarabasiAlbert(150, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := Build(g, 5, 16, 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range storeVariants() {
		t.Run(v.name, func(t *testing.T) {
			got := storeLoad(t, heap, v)
			// Fresh heap twin so the repair below cannot share state with it.
			want, err := Build(g, 5, 16, 21)
			if err != nil {
				t.Fatal(err)
			}
			add := graph.Edge{U: 0, V: 17}
			for ; g.HasEdge(add.U, add.V); add.V++ {
			}
			ng, touched, err := g.ApplyDelta(graph.Delta{AddEdges: []graph.Edge{add}})
			if err != nil {
				t.Fatal(err)
			}
			if err := want.Repair(ng, touched); err != nil {
				t.Fatal(err)
			}
			if err := got.Repair(ng, touched); err != nil {
				t.Fatalf("Repair of store-backed index: %v", err)
			}
			if got.StoreBacked() {
				t.Fatal("index still store-backed after Repair (promotion missing)")
			}
			assertReadParity(t, want, got, Problem2)
		})
	}
}

// TestStorePromote is the promotion contract on its own: Promote detaches
// the index from its file (StoreBacked flips off, MemoryBytes flips from
// file/mapping accounting to heap accounting) without changing one answer.
func TestStorePromote(t *testing.T) {
	g, err := graph.BarabasiAlbert(150, 3, 19)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := BuildChunkedWorkers(g, 5, 12, 33, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range storeVariants() {
		t.Run(v.name, func(t *testing.T) {
			got := storeLoad(t, heap, v)
			if err := got.Promote(); err != nil {
				t.Fatalf("Promote: %v", err)
			}
			if got.StoreBacked() || got.StoreMapped() {
				t.Fatal("index still store-backed after Promote")
			}
			if got.MemoryBytes() == 0 {
				t.Fatal("promoted index reports zero heap bytes")
			}
			assertReadParity(t, heap, got, Problem1)
			assertReadParity(t, heap, got, Problem2)
		})
	}
}
