package index

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Incremental index repair after a graph mutation. Walks are seeded per
// (node, absolute replicate) — rng.Mix(seed, w, r0+i) — so every walk is
// deterministically regenerable from its identity alone, and a walk's
// trajectory depends only on the adjacency rows of the nodes it visits.
// graph.ApplyDelta reports exactly which rows changed (the touched nodes),
// which makes the affected-walk set identifiable from the index itself:
//
//   - walk (w, i) is affected iff its OLD trajectory visits a touched node,
//     i.e. w is a touched node or w appears in old row (t, i) of some
//     touched t (rows record every source whose walk visits t);
//   - every other walk replays bit-identically on the new graph (inductively,
//     each step leaves from an untouched node whose row is unchanged) and
//     needs no repair;
//   - walks of freshly added nodes are new and are generated outright; any
//     walk reaching a new node must traverse a new edge and therefore leaves
//     from a touched node first, so it is already in the affected set.
//
// Repair replays each affected walk on the old graph to locate the entries
// it contributed, regenerates it on the new graph, and applies the edits
// row-by-row, leaving the index patched (see the layout comment in index.go)
// until enough storage is dead to warrant compaction. The cost is
// proportional to the walks the delta disturbs — O(|affected|·L) plus the
// touched-row edits — not to the nRL cost of a full rebuild.

// ErrUnrepairable marks indexes Repair cannot service: BuildFromWalks
// assembles entries from caller-provided walks, which cannot be regenerated
// from the seed.
var ErrUnrepairable = fmt.Errorf("index: built from explicit walks, cannot repair")

// compactThreshold triggers compaction when more than this fraction of the
// physical entry storage is dead.
const compactThreshold = 0.5

// rowEdit accumulates one row's pending changes: sources whose old entry
// must go, and the regenerated entries to insert.
type rowEdit struct {
	remove map[int32]struct{}
	ids    []int32
	hops   []uint16
}

// entrySorter sorts a row's (id, hop) pairs by source id. Build emits each
// row's entries in ascending source order for every worker count, so keeping
// repaired rows sorted is what makes a compacted repair bit-identical to a
// full rebuild.
type entrySorter struct {
	ids  []int32
	hops []uint16
}

func (s *entrySorter) Len() int           { return len(s.ids) }
func (s *entrySorter) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s *entrySorter) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.hops[i], s.hops[j] = s.hops[j], s.hops[i]
}

// Repair updates the index in place from the graph it currently reflects to
// ng, the result of exactly one graph.ApplyDelta (ng.Epoch() must be one
// past the index's GraphEpoch). touched is the delta's touched-node list as
// returned by ApplyDelta. After Repair the index answers every query exactly
// as a fresh build against ng would: Compact() followed by comparing the CSR
// arrays to a rebuild is bit-identical, which the parity tests assert.
//
// Repair mutates the index and is NOT safe to run concurrently with any
// reader (Gain, Update, Row, EmptySetGains, WriteTo, ...); the engine
// serializes it against in-flight queries. D-tables created before a Repair
// are invalid afterwards and must be discarded.
func (ix *Index) Repair(ng *graph.Graph, touched []int) error {
	if ix.fromWalks {
		return ErrUnrepairable
	}
	if ng == nil {
		return fmt.Errorf("index: repair against nil graph")
	}
	if ng.Epoch() != ix.gepoch+1 {
		return fmt.Errorf("index: repair applies one delta: index at graph epoch %d, graph at %d (want %d)",
			ix.gepoch, ng.Epoch(), ix.gepoch+1)
	}
	oldN, newN := ix.g.N(), ng.N()
	if newN < oldN {
		return fmt.Errorf("index: repair shrank the graph (%d -> %d nodes)", oldN, newN)
	}
	for _, t := range touched {
		if t < 0 || t >= newN {
			return fmt.Errorf("index: touched node %d out of range [0,%d)", t, newN)
		}
	}
	// Mutation needs writable arrays; a store-backed index serves off
	// read-only pages, so copy-on-write onto the heap first (backing.go).
	if err := ix.Promote(); err != nil {
		return err
	}
	if ix.parts != nil {
		// Chunks are self-contained partial indexes over disjoint replicate
		// ranges, so each repairs independently against the same delta; the
		// parent then advances its aggregate graph state.
		for _, pt := range ix.parts {
			if err := pt.Repair(ng, touched); err != nil {
				return err
			}
		}
		ix.g = ng
		ix.gepoch = ng.Epoch()
		ix.resetEmptyMemos()
		return nil
	}
	R := ix.r
	L := ix.l
	oldRows := int64(oldN) * int64(R)
	newRows := int64(newN) * int64(R)

	// Enter the patched layout (idempotent), then grow the row space for any
	// added nodes: new rows start empty at the current tail.
	if ix.ends == nil {
		ends := make([]int64, oldRows, newRows)
		copy(ends, ix.offsets[1:oldRows+1])
		ix.ends = ends
	}
	if newRows > oldRows {
		tail := int64(len(ix.ids))
		off := make([]int64, newRows+1)
		copy(off, ix.offsets[:oldRows+1])
		for k := oldRows; k <= newRows; k++ {
			off[k] = tail
		}
		ix.offsets = off
		for k := oldRows; k < newRows; k++ {
			ix.ends = append(ix.ends, tail)
		}
	}

	// Affected walks, keyed w·R+i. Touched nodes beyond oldN are new; they
	// have no old rows and their walks are generated in the new-node loop.
	affected := make(map[int64]struct{})
	for _, t := range touched {
		if t >= oldN {
			continue
		}
		for i := 0; i < R; i++ {
			k := int64(t)*int64(R) + int64(i)
			affected[k] = struct{}{}
			lo, hi := ix.offsets[k], ix.ends[k]
			for _, w := range ix.ids[lo:hi] {
				affected[int64(w)*int64(R)+int64(i)] = struct{}{}
			}
		}
	}
	walkIDs := make([]int64, 0, len(affected))
	for k := range affected {
		walkIDs = append(walkIDs, k)
	}
	sort.Slice(walkIDs, func(i, j int) bool { return walkIDs[i] < walkIDs[j] })

	visited := make([]uint32, newN)
	var generation uint32
	var rnd rng.Source
	// replay regenerates walk (w, i) on g and reports its first visits —
	// exactly the build's walk loop, so replaying on the old graph yields the
	// entries the build materialized.
	replay := func(g *graph.Graph, w, i int, emit func(v int32, hop uint16)) {
		rnd.Seed(rng.Mix(ix.seed, uint64(w), uint64(ix.rbase+i)))
		generation++
		visited[w] = generation
		u := w
		for j := 1; j <= L; j++ {
			v := g.PickNeighbor(u, rnd.Float64())
			if v < 0 {
				break
			}
			if visited[v] != generation {
				visited[v] = generation
				emit(int32(v), uint16(j))
			}
			u = v
		}
	}

	edits := make(map[int64]*rowEdit)
	edit := func(k int64) *rowEdit {
		e := edits[k]
		if e == nil {
			e = &rowEdit{}
			edits[k] = e
		}
		return e
	}
	for _, id := range walkIDs {
		w := int(id / int64(R))
		i := int(id % int64(R))
		replay(ix.g, w, i, func(v int32, _ uint16) {
			e := edit(int64(v)*int64(R) + int64(i))
			if e.remove == nil {
				e.remove = make(map[int32]struct{})
			}
			e.remove[int32(w)] = struct{}{}
		})
		replay(ng, w, i, func(v int32, hop uint16) {
			e := edit(int64(v)*int64(R) + int64(i))
			e.ids = append(e.ids, int32(w))
			e.hops = append(e.hops, hop)
		})
	}
	for w := oldN; w < newN; w++ {
		for i := 0; i < R; i++ {
			replay(ng, w, i, func(v int32, hop uint16) {
				e := edit(int64(v)*int64(R) + int64(i))
				e.ids = append(e.ids, int32(w))
				e.hops = append(e.hops, hop)
			})
		}
	}

	// Apply the edits row by row: rebuild each edited row sorted by source,
	// writing in place when it fits its old span and relocating it to the
	// tail when it grew. Row order is for determinism of the physical layout
	// only; rows are independent.
	rowKeys := make([]int64, 0, len(edits))
	for k := range edits {
		rowKeys = append(rowKeys, k)
	}
	sort.Slice(rowKeys, func(i, j int) bool { return rowKeys[i] < rowKeys[j] })
	for _, k := range rowKeys {
		e := edits[k]
		lo, hi := ix.offsets[k], ix.ends[k]
		oldLen := hi - lo
		merged := entrySorter{
			ids:  make([]int32, 0, int(oldLen)+len(e.ids)),
			hops: make([]uint16, 0, int(oldLen)+len(e.ids)),
		}
		for p := lo; p < hi; p++ {
			if _, rm := e.remove[ix.ids[p]]; rm {
				continue
			}
			merged.ids = append(merged.ids, ix.ids[p])
			merged.hops = append(merged.hops, ix.hops[p])
		}
		merged.ids = append(merged.ids, e.ids...)
		merged.hops = append(merged.hops, e.hops...)
		sort.Sort(&merged)
		if n := int64(len(merged.ids)); n <= oldLen {
			copy(ix.ids[lo:], merged.ids)
			copy(ix.hops[lo:], merged.hops)
			ix.ends[k] = lo + n
			ix.dead += oldLen - n
		} else {
			start := int64(len(ix.ids))
			ix.ids = append(ix.ids, merged.ids...)
			ix.hops = append(ix.hops, merged.hops...)
			ix.offsets[k] = start
			ix.ends[k] = start + n
			ix.dead += oldLen
		}
	}

	ix.g = ng
	ix.gepoch = ng.Epoch()
	ix.resetEmptyMemos()
	if float64(ix.dead) > compactThreshold*float64(len(ix.ids)) {
		ix.Compact()
	}
	return nil
}

// compactArrays builds fresh compact CSR arrays from a patched index's live
// spans, in row order, without touching the receiver.
func (ix *Index) compactArrays() ([]int64, []int32, []uint16) {
	rows := int64(len(ix.ends))
	total := int64(len(ix.ids)) - ix.dead
	offsets := make([]int64, rows+1)
	ids := make([]int32, total)
	hops := make([]uint16, total)
	pos := int64(0)
	for k := int64(0); k < rows; k++ {
		offsets[k] = pos
		lo, hi := ix.offsets[k], ix.ends[k]
		pos += int64(copy(ids[pos:], ix.ids[lo:hi]))
		copy(hops[offsets[k]:], ix.hops[lo:hi])
	}
	offsets[rows] = pos
	return offsets, ids, hops
}

// Compact restores the canonical compact layout after Repairs have left the
// index patched: rows become adjacent and in row order again, dead storage
// is released, and — because Repair keeps rows sorted by source — the
// resulting arrays are bit-identical to a fresh build against the current
// graph. It is a no-op on a compact index. Like Repair it mutates the index
// and must not run concurrently with readers.
func (ix *Index) Compact() {
	if ix.parts != nil {
		for _, pt := range ix.parts {
			pt.Compact()
		}
		return
	}
	if ix.ends == nil {
		return
	}
	ix.offsets, ix.ids, ix.hops = ix.compactArrays()
	ix.ends = nil
	ix.dead = 0
}

// compacted returns a compact view of the index for serialization: the
// receiver itself when already compact, otherwise a shallow copy with
// freshly compacted arrays — the receiver is never mutated, so WriteTo stays
// safe for concurrent readers of a compact index and never persists the
// patched layout.
func (ix *Index) compacted() *Index {
	if ix.parts != nil {
		// Chunked parents hold no arrays; WriteTo compacts chunk by chunk.
		return ix
	}
	if ix.sb != nil {
		// Decode-on-read chunks have no materialized arrays: decode the
		// whole chunk into a compact copy (blocks are compact by
		// construction), leaving the receiver untouched.
		offsets, ids, hops, err := ix.sb.Materialize()
		if err != nil {
			// Unreachable short of a writer bug (the file passed its CRC
			// pass at open); serialize an empty chunk rather than panic.
			offsets = make([]int64, int64(ix.r)*int64(ix.g.N())+1)
		}
		c := &Index{g: ix.g, l: ix.l, r: ix.r, rbase: ix.rbase, seed: ix.seed, gepoch: ix.gepoch, fromWalks: ix.fromWalks}
		c.offsets, c.ids, c.hops = offsets, ids, hops
		return c
	}
	if ix.ends == nil {
		return ix
	}
	c := &Index{g: ix.g, l: ix.l, r: ix.r, rbase: ix.rbase, seed: ix.seed, gepoch: ix.gepoch, fromWalks: ix.fromWalks}
	c.offsets, c.ids, c.hops = ix.compactArrays()
	return c
}
