package index

import (
	"fmt"
	"io"
	"os"

	"repro/internal/graph"
	"repro/internal/store"
)

// Bridges between Index and the format-v8 store container (internal/store).
// v7 (serialize.go) remains the legacy read-compatible format; v8 is what
// spill saves write by default: page-aligned sections that load by mmap (or
// one aligned read) instead of a full deserialize, optionally with
// delta/varint-compressed spans.

// Spill format names, as configured through engine.Config.SpillFormat and
// the rwdomd -spill-format flag.
const (
	// FormatV8 is the store container with delta/varint-compressed spans:
	// smallest files, decode-on-read serving with a hot-row cache.
	FormatV8 = "v8"
	// FormatV8Raw is the store container with raw page-aligned sections:
	// zero decode work (reads alias the pages directly) at raw size.
	FormatV8Raw = "v8raw"
	// FormatV7 is the legacy full-deserialize format.
	FormatV7 = "v7"
)

// storeChunks collects the index's chunks in compact form for the store
// writer, materializing patched or decode-backed chunks without mutating
// the receiver (same contract as WriteTo).
func (ix *Index) storeChunks() []store.Chunk {
	var parts []*Index
	if ix.parts != nil {
		parts = make([]*Index, len(ix.parts))
		for i, pt := range ix.parts {
			parts[i] = pt.compacted()
		}
	} else {
		parts = []*Index{ix.compacted()}
	}
	chunks := make([]store.Chunk, len(parts))
	for i, pt := range parts {
		chunks[i] = store.Chunk{
			R0: pt.rbase, Width: pt.r,
			Offsets: pt.offsets, Ids: pt.ids, Hops: pt.hops,
		}
	}
	return chunks
}

// WriteStore serializes the index in format v8 (compress selects
// delta/varint spans vs raw sections). Like WriteTo it never mutates the
// receiver and never writes the patched post-Repair layout.
func (ix *Index) WriteStore(w io.Writer, compress bool) (int64, error) {
	id := store.Identity{
		Fingerprint: ix.g.Fingerprint(),
		Epoch:       ix.gepoch,
		N:           ix.g.N(),
		L:           ix.l,
		R:           ix.r,
		R0:          ix.rbase,
		Seed:        ix.seed,
	}
	return store.Write(w, id, ix.storeChunks(), store.WriteOptions{Compress: compress})
}

// SaveStore writes the index to path in format v8.
func (ix *Index) SaveStore(path string, compress bool) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	if _, err := ix.WriteStore(f, compress); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("index: %w", err)
	}
	return nil
}

// LoadAny loads an index from path, sniffing the format from the leading
// magic: v8 store files load through internal/store (mmap'd when opt.Mmap),
// v7 files through the legacy full deserialize — read-compatibility for
// spill directories written by older daemons. Unknown magics are rejected.
func LoadAny(path string, g *graph.Graph, opt StoreOptions) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	var magic [8]byte
	_, rerr := io.ReadFull(f, magic[:])
	f.Close()
	if rerr != nil {
		return nil, fmt.Errorf("index: sniff %s: %w", path, rerr)
	}
	switch string(magic[:]) {
	case store.Magic:
		return LoadStore(path, g, opt)
	case indexMagic:
		return LoadFile(path, g)
	default:
		return nil, fmt.Errorf("index: %s: unknown magic %q", path, magic[:])
	}
}
