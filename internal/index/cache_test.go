package index

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
)

// waitForSpillSaves polls for eviction spills, which run asynchronously.
func waitForSpillSaves(t *testing.T, c *Cache, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().SpillSaves < want {
		if time.Now().After(deadline) {
			t.Fatalf("spill saves = %d, want %d", c.Stats().SpillSaves, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func cacheTestGraph(t testing.TB, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.BarabasiAlbert(200, 3, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func buildFor(g *graph.Graph, key CacheKey, builds *atomic.Int64) func() (*Index, error) {
	return func() (*Index, error) {
		builds.Add(1)
		return Build(g, key.L, key.R, key.Seed)
	}
}

func TestCacheCoalescesConcurrentBuilds(t *testing.T) {
	g := cacheTestGraph(t, 1)
	c, err := NewCache(4, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey{Graph: "g", L: 4, R: 20, Seed: 7}
	var builds atomic.Int64
	const callers = 16
	handles := make([]*Handle, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := c.Acquire(key, g, buildFor(g, key, &builds))
			if err != nil {
				t.Error(err)
				return
			}
			handles[i] = h
		}(i)
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("%d concurrent Acquires ran %d builds, want exactly 1", callers, got)
	}
	for _, h := range handles {
		if h == nil {
			t.Fatal("missing handle")
		}
		if h.Index() != handles[0].Index() {
			t.Fatal("concurrent Acquires returned different indexes")
		}
		h.Release()
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != callers-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits", s, callers-1)
	}
}

func TestCacheLRUEvictionRespectsRefs(t *testing.T) {
	g := cacheTestGraph(t, 2)
	c, err := NewCache(2, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	acquire := func(seed uint64) *Handle {
		key := CacheKey{Graph: "g", L: 3, R: 10, Seed: seed}
		h, err := c.Acquire(key, g, buildFor(g, key, &builds))
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	h1 := acquire(1) // pinned: must survive any eviction pressure
	h2 := acquire(2)
	h2.Release()
	h3 := acquire(3) // over capacity: seed 2 (unreferenced LRU) must go
	h3.Release()
	keys := c.Keys()
	if len(keys) != 2 {
		t.Fatalf("resident keys = %v, want 2", keys)
	}
	for _, k := range keys {
		if k.Seed == 2 {
			t.Fatalf("unreferenced LRU entry (seed 2) not evicted: %v", keys)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	// Re-acquiring the pinned entry is a hit even after pressure.
	before := builds.Load()
	h1b := acquire(1)
	if builds.Load() != before {
		t.Fatal("pinned entry was rebuilt")
	}
	h1b.Release()
	h1.Release()
	h1.Release() // double release is a no-op
}

func TestCacheSpillRoundTrip(t *testing.T) {
	g := cacheTestGraph(t, 3)
	dir := t.TempDir()
	c, err := NewCache(1, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	// The second Acquire of k1 below evicts k2, whose spill runs in the
	// background; drain it before the TempDir cleanup removes the directory
	// out from under the rename.
	t.Cleanup(c.spillWG.Wait)
	var builds atomic.Int64
	k1 := CacheKey{Graph: "g", L: 4, R: 15, Seed: 1}
	k2 := CacheKey{Graph: "g", L: 4, R: 15, Seed: 2}
	h1, err := c.Acquire(k1, g, buildFor(g, k1, &builds))
	if err != nil {
		t.Fatal(err)
	}
	wantEntries := h1.Index().Entries()
	h1.Release()
	h2, err := c.Acquire(k2, g, buildFor(g, k2, &builds)) // evicts + spills k1
	if err != nil {
		t.Fatal(err)
	}
	h2.Release()
	waitForSpillSaves(t, c, 1)
	// Miss on k1 now loads from disk instead of building.
	before := builds.Load()
	h1b, err := c.Acquire(k1, g, func() (*Index, error) {
		return nil, errors.New("build must not run: spill file exists")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h1b.Release()
	if builds.Load() != before {
		t.Fatal("spill load still ran the build")
	}
	if got := h1b.Index().Entries(); got != wantEntries {
		t.Fatalf("spill-loaded index has %d entries, want %d", got, wantEntries)
	}
	if s := c.Stats(); s.SpillLoads != 1 {
		t.Fatalf("spill loads = %d, want 1", s.SpillLoads)
	}
}

func TestCacheWarmRestartViaSpillAll(t *testing.T) {
	g := cacheTestGraph(t, 4)
	dir := t.TempDir()
	c, err := NewCache(4, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	key := CacheKey{Graph: "g", L: 5, R: 12, Seed: 9}
	h, err := c.Acquire(key, g, buildFor(g, key, &builds))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if err := c.SpillAll(); err != nil {
		t.Fatal(err)
	}
	// A "restarted daemon": fresh cache over the same spill dir.
	c2, err := NewCache(4, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c2.Acquire(key, g, func() (*Index, error) {
		return nil, errors.New("cold build after restart: spill file should have been used")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if s := c2.Stats(); s.SpillLoads != 1 {
		t.Fatalf("restart spill loads = %d, want 1", s.SpillLoads)
	}
}

func TestCacheSpillRejectsDifferentGraph(t *testing.T) {
	g := cacheTestGraph(t, 5)
	other := cacheTestGraph(t, 6)
	dir := t.TempDir()
	c, err := NewCache(4, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey{Graph: "g", L: 4, R: 10, Seed: 1}
	var builds atomic.Int64
	h, err := c.Acquire(key, g, buildFor(g, key, &builds))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if err := c.SpillAll(); err != nil {
		t.Fatal(err)
	}
	// Same key, structurally different graph: the fingerprint check must
	// reject the spill file and fall back to the build.
	c2, err := NewCache(4, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c2.Acquire(key, other, buildFor(other, key, &builds))
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if got := builds.Load(); got != 2 {
		t.Fatalf("builds = %d, want 2 (spill file for a different graph must be rejected)", got)
	}
}

// A spill file whose path matches a key but whose build seed differs (an
// FNV path collision, or a file left by an older daemon) must be rejected
// by the header check, not warm-loaded — a wrong-seed index silently
// changes every answer.
func TestCacheSpillRejectsDifferentSeed(t *testing.T) {
	g := cacheTestGraph(t, 9)
	dir := t.TempDir()
	c, err := NewCache(4, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	wrongSeed, err := Build(g, 4, 10, 999)
	if err != nil {
		t.Fatal(err)
	}
	// Plant the wrong-seed index at exactly the path the colliding key maps
	// to: same graph, L and R, so only the (newly serialized) seed header
	// field can expose the mismatch.
	key := CacheKey{Graph: "g", L: 4, R: 10, Seed: 1}
	if err := wrongSeed.SaveFile(c.spillPath(key)); err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	h, err := c.Acquire(key, g, buildFor(g, key, &builds))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if builds.Load() != 1 {
		t.Fatal("wrong-seed spill file was warm-loaded instead of rebuilt")
	}
	if got := h.Index().Seed(); got != 1 {
		t.Fatalf("acquired index has seed %d, want 1", got)
	}
	if s := c.Stats(); s.SpillLoads != 0 {
		t.Fatalf("spill loads = %d, want 0", s.SpillLoads)
	}
}

// The bytes budget evicts LRU indexes once their summed MemoryBytes exceeds
// it, independent of the entry-count cap.
func TestCacheBytesBudget(t *testing.T) {
	g := cacheTestGraph(t, 10)
	probe, err := Build(g, 4, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	budget := probe.MemoryBytes() + probe.MemoryBytes()/2 // fits 1, not 2
	c, err := NewCache(0, budget, "")
	if err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	for seed := uint64(1); seed <= 3; seed++ {
		key := CacheKey{Graph: "g", L: 4, R: 12, Seed: seed}
		h, err := c.Acquire(key, g, buildFor(g, key, &builds))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	s := c.Stats()
	if s.ResidentBytes > budget {
		t.Fatalf("resident bytes %d over the %d budget", s.ResidentBytes, budget)
	}
	if s.Evictions == 0 {
		t.Fatal("bytes budget never evicted")
	}
	// The newest index survived.
	keys := c.Keys()
	if len(keys) == 0 {
		t.Fatal("budget evicted everything")
	}
	for _, k := range keys {
		if k.Seed == 1 {
			t.Fatalf("LRU entry survived bytes pressure: %v", keys)
		}
	}
}

// Evictions must reach the registered eviction hook with their keys — the
// linkage the serving layer uses to drop dependent memo tables.
func TestCacheEvictionHook(t *testing.T) {
	g := cacheTestGraph(t, 11)
	c, err := NewCache(1, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var notified []CacheKey
	c.OnEviction(func(keys []CacheKey) {
		mu.Lock()
		notified = append(notified, keys...)
		mu.Unlock()
	})
	var builds atomic.Int64
	for seed := uint64(1); seed <= 2; seed++ {
		key := CacheKey{Graph: "g", L: 3, R: 8, Seed: seed}
		h, err := c.Acquire(key, g, buildFor(g, key, &builds))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	mu.Lock()
	defer mu.Unlock()
	if len(notified) != 1 || notified[0].Seed != 1 {
		t.Fatalf("eviction hook saw %v, want the seed-1 key", notified)
	}
}

func TestCacheBuildErrorPropagatesToAllWaiters(t *testing.T) {
	g := cacheTestGraph(t, 7)
	c, err := NewCache(4, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey{Graph: "g", L: 4, R: 10, Seed: 1}
	boom := errors.New("boom")
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := c.Acquire(key, g, func() (*Index, error) { return nil, boom })
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("waiter %d: err = %v, want boom", i, err)
		}
	}
	// The failed entry must not stay resident; the next Acquire rebuilds.
	var builds atomic.Int64
	h, err := c.Acquire(key, g, buildFor(g, key, &builds))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if builds.Load() != 1 {
		t.Fatal("failed build left a poisoned entry")
	}
}

func TestCacheEvictIdle(t *testing.T) {
	g := cacheTestGraph(t, 8)
	c, err := NewCache(0, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	for seed := uint64(1); seed <= 3; seed++ {
		key := CacheKey{Graph: "g", L: 3, R: 8, Seed: seed}
		h, err := c.Acquire(key, g, buildFor(g, key, &builds))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	mark := c.Clock()
	// Touch seed 3 after the mark; idle eviction at the mark must drop only
	// seeds 1 and 2.
	key3 := CacheKey{Graph: "g", L: 3, R: 8, Seed: 3}
	h, err := c.Acquire(key3, g, buildFor(g, key3, &builds))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if got := c.EvictIdle(mark); got != 2 {
		t.Fatalf("EvictIdle evicted %d, want 2", got)
	}
	keys := c.Keys()
	if len(keys) != 1 || keys[0].Seed != 3 {
		t.Fatalf("resident after idle eviction = %v, want only seed 3", keys)
	}
}

func TestCacheKeyString(t *testing.T) {
	k := CacheKey{Graph: "epinions", L: 6, R: 100, Seed: 42}
	if got, want := k.String(), "epinions/L=6/R=100/seed=42"; got != want {
		t.Fatalf("key string = %q, want %q", got, want)
	}
	c, err := NewCache(0, 0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p1 := c.spillPath(k)
	p2 := c.spillPath(CacheKey{Graph: "epinions", L: 6, R: 100, Seed: 43})
	if p1 == p2 {
		t.Fatal("distinct keys share a spill path")
	}
	if fmt.Sprint(p1) == "" {
		t.Fatal("empty spill path")
	}
}
