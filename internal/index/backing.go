package index

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/store"
)

// Store-backed indexes. An Index is either heap-resident (every build path:
// offsets/ids/hops are owned heap arrays) or store-backed: loaded from a
// format-v8 store file (internal/store) whose pages serve the entries
// directly. Raw chunks alias their CSR arrays straight out of the file's
// mapping — the hot paths are untouched and read mapped pages through the
// exact same slices — while compressed chunks leave offsets/ids/hops nil and
// serve node spans through a decode-on-read view (sb) with a hot-row cache.
//
// Both backings answer every query bit-identically: the store-backed gain
// kernels below run the same integer arithmetic over the same logical rows
// (entry order inside a row may differ after the writer's canonical sort,
// which no consumer observes — all accumulation is integer and
// order-independent). The storeparity test sweep pins this.
//
// Mutation is the one operation mapped pages cannot serve (the mapping is
// PROT_READ): Repair promotes the index to heap first — see Promote, the
// store→heap copy-on-write path.

// StoreOptions configures how LoadStore binds a store file.
type StoreOptions struct {
	// Mmap serves the file through a read-only mapping (O(1)-page-in warm
	// restart, larger-than-RAM serving); otherwise the file is read into an
	// aligned heap buffer with the same zero-parse views.
	Mmap bool
	// HotRows sizes the decoded-block cache of each compressed chunk: 0
	// means store.DefaultHotRows, negative disables caching (every read
	// decodes — the pure decode-on-read mode).
	HotRows int
}

// StoreBacked reports whether the index (or any of its chunks) serves
// entries from a store file instead of owned heap arrays.
func (ix *Index) StoreBacked() bool { return ix.stf != nil }

// StoreMapped reports whether the backing store file is mmap'd (vs read
// into a heap buffer).
func (ix *Index) StoreMapped() bool { return ix.stf != nil && ix.stf.Mapped() }

// StorePath returns the path of the backing store file, "" when heap-
// resident.
func (ix *Index) StorePath() string {
	if ix.stf == nil {
		return ""
	}
	return ix.stf.Path()
}

// MappedBytes returns the size of the read-only mapping serving this index,
// 0 when heap-resident or heap-loaded.
func (ix *Index) MappedBytes() int64 {
	if ix.stf == nil {
		return 0
	}
	return ix.stf.MappedBytes()
}

// StoreStats snapshots the backing file's decode-on-read counters (zeros
// when heap-resident).
func (ix *Index) StoreStats() store.FileStats {
	if ix.stf == nil {
		return store.FileStats{}
	}
	return ix.stf.Stats()
}

// storeComplete reports whether the backing file still covers the index's
// whole replicate range — false once ExtendReplicates has appended chunks
// the file does not hold. The cache uses it to decide whether an eviction
// can skip re-spilling (the bytes are already on disk) or must write a
// fresh file.
func (ix *Index) storeComplete() bool {
	return ix.stf != nil && ix.stf.Identity().R == ix.r && ix.stf.Identity().Epoch == ix.gepoch
}

// LoadStore opens a v8 store file and binds it to g as a serving Index,
// verifying the full build identity exactly as the v7 reader does
// (fingerprint, epoch, node count). A single-chunk file loads as a flat
// index, a multi-chunk file as a chunked index with its written boundaries.
func LoadStore(path string, g *graph.Graph, opt StoreOptions) (*Index, error) {
	f, err := store.Open(path, store.OpenOptions{Mmap: opt.Mmap, HotRows: opt.HotRows})
	if err != nil {
		return nil, err
	}
	id := f.Identity()
	if got := g.Fingerprint(); got != id.Fingerprint {
		return nil, fmt.Errorf("index: graph fingerprint mismatch: index built on %016x, loading against %016x", id.Fingerprint, got)
	}
	if got := g.Epoch(); got != id.Epoch {
		return nil, fmt.Errorf("index: graph epoch mismatch: index built at epoch %d, loading against epoch %d", id.Epoch, got)
	}
	if id.N != g.N() {
		return nil, fmt.Errorf("index: node count mismatch: %d vs %d", id.N, g.N())
	}
	parts := make([]*Index, 0, f.Chunks())
	for c := 0; c < f.Chunks(); c++ {
		cv := f.Chunk(c)
		pt := &Index{
			g: g, l: id.L, r: cv.Width(), rbase: cv.R0(),
			seed: id.Seed, gepoch: id.Epoch, stf: f,
		}
		if cv.Compressed() {
			pt.sb = cv.Spans()
			pt.sbEntries = cv.Entries()
		} else {
			pt.offsets, pt.ids, pt.hops = cv.Raw()
		}
		parts = append(parts, pt)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return &Index{
		g: g, l: id.L, r: id.R, rbase: id.R0,
		seed: id.Seed, gepoch: id.Epoch, parts: parts, stf: f,
	}, nil
}

// Promote materializes a store-backed index onto the heap — the copy-on-
// write boundary of the backing abstraction. Raw chunks copy their aliased
// arrays; compressed chunks decode in full. Afterwards the index owns every
// array, drops its reference to the store file (unmapping follows when the
// last reference goes), and behaves exactly like a fresh heap build —
// Repair calls this first, since mutation needs writable arrays and the
// mapping is read-only. No-op on heap-resident indexes. Like every
// mutation, Promote must not run concurrently with readers.
func (ix *Index) Promote() error {
	if ix.parts != nil {
		for _, pt := range ix.parts {
			if err := pt.Promote(); err != nil {
				return err
			}
		}
		ix.stf = nil
		return nil
	}
	if ix.stf == nil {
		return nil
	}
	if ix.sb != nil {
		offsets, ids, hops, err := ix.sb.Materialize()
		if err != nil {
			return fmt.Errorf("index: promote store-backed chunk: %w", err)
		}
		ix.offsets, ix.ids, ix.hops = offsets, ids, hops
		ix.sb = nil
		ix.sbEntries = 0
	} else {
		ix.offsets = append([]int64(nil), ix.offsets...)
		ix.ids = append([]int32(nil), ix.ids...)
		ix.hops = append([]uint16(nil), ix.hops...)
	}
	ix.stf = nil
	return nil
}

// storeRow returns row (i, v) of a decode-on-read chunk.
func (ix *Index) storeRow(i, v int) (ids []int32, hops []uint16) {
	offs, bids, bhops := ix.sb.NodeSpan(v)
	return bids[offs[i]:offs[i+1]], bhops[offs[i]:offs[i+1]]
}

// maxRowLenStore is MaxRowLen over a decode-on-read chunk.
func (ix *Index) maxRowLenStore(u int) int {
	offs, _, _ := ix.sb.NodeSpan(u)
	best := int64(0)
	for i := 0; i < ix.r; i++ {
		if n := offs[i+1] - offs[i]; n > best {
			best = n
		}
	}
	return int(best)
}

// emptySumIntStore is emptySumInt over a decode-on-read chunk: identical
// integer accumulation over the same logical entries, hence bit-identical.
func (ix *Index) emptySumIntStore(p Problem, u int) int64 {
	r := int64(ix.r)
	l := int64(ix.l)
	offs, _, hops := ix.sb.NodeSpan(u)
	var acc int64
	if p == Problem1 {
		acc = r * l
		for _, hop := range hops[offs[0]:offs[ix.r]] {
			if int64(hop) < l {
				acc += l - int64(hop)
			}
		}
		return acc
	}
	return r + offs[ix.r] - offs[0]
}

// gainIntStore is gainInt over a decode-on-read chunk. The loop body is
// line-for-line the heap kernel's with the span fetched once per candidate;
// integer accumulation keeps the result independent of entry order, so the
// writer's canonical row sort cannot change any answer.
func (t *DTable) gainIntStore(u int) int64 {
	r := t.ix.r
	base := u * r
	offs, bids, bhops := t.ix.sb.NodeSpan(u)
	var acc int64
	if t.problem == Problem1 {
		for i := 0; i < r; i++ {
			acc += int64(t.d[base+i])
			ids := bids[offs[i]:offs[i+1]]
			hops := bhops[offs[i]:offs[i+1]]
			for e, v := range ids {
				if dv := t.d[int(v)*r+i]; hops[e] < dv {
					acc += int64(dv - hops[e])
				}
			}
		}
	} else {
		for i := 0; i < r; i++ {
			if t.d[base+i] == 0 {
				acc++
			}
			for _, v := range bids[offs[i]:offs[i+1]] {
				if t.d[int(v)*r+i] == 0 {
					acc++
				}
			}
		}
	}
	return acc
}

// updateStore is Update over a decode-on-read chunk.
func (t *DTable) updateStore(u int) {
	r := t.ix.r
	base := u * r
	offs, bids, bhops := t.ix.sb.NodeSpan(u)
	if t.problem == Problem1 {
		for i := 0; i < r; i++ {
			t.d[base+i] = 0
			ids := bids[offs[i]:offs[i+1]]
			hops := bhops[offs[i]:offs[i+1]]
			for e, v := range ids {
				if j := int(v)*r + i; hops[e] < t.d[j] {
					t.d[j] = hops[e]
				}
			}
		}
	} else {
		for i := 0; i < r; i++ {
			t.d[base+i] = 1
			for _, v := range bids[offs[i]:offs[i+1]] {
				t.d[int(v)*r+i] = 1
			}
		}
	}
}

// appendReplicateGainSumsStore is AppendReplicateGainSums over a decode-on-
// read chunk.
func (t *DTable) appendReplicateGainSumsStore(u int, out []int64) []int64 {
	r := t.ix.r
	base := u * r
	offs, bids, bhops := t.ix.sb.NodeSpan(u)
	if t.problem == Problem1 {
		for i := 0; i < r; i++ {
			acc := int64(t.d[base+i])
			ids := bids[offs[i]:offs[i+1]]
			hops := bhops[offs[i]:offs[i+1]]
			for e, v := range ids {
				if dv := t.d[int(v)*r+i]; hops[e] < dv {
					acc += int64(dv - hops[e])
				}
			}
			out = append(out, acc)
		}
		return out
	}
	for i := 0; i < r; i++ {
		var acc int64
		if t.d[base+i] == 0 {
			acc++
		}
		for _, v := range bids[offs[i]:offs[i+1]] {
			if t.d[int(v)*r+i] == 0 {
				acc++
			}
		}
		out = append(out, acc)
	}
	return out
}
