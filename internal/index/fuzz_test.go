package index

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// FuzzReadIndex asserts the index deserializer never panics and never
// accepts a stream whose contents would later break a greedy run.
func FuzzReadIndex(f *testing.F) {
	g, err := graph.BarabasiAlbert(30, 2, 1)
	if err != nil {
		f.Fatal(err)
	}
	ix, err := Build(g, 3, 2, 7)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("RWDOMIDX garbage"))
	f.Add([]byte{})
	// A few single-byte corruptions of the valid stream.
	for _, pos := range []int{0, 8, 16, 40, len(valid) - 1} {
		if pos >= 0 && pos < len(valid) {
			mut := append([]byte(nil), valid...)
			mut[pos] ^= 0xFF
			f.Add(mut)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := ReadIndex(bytes.NewReader(data), g)
		if err != nil {
			return
		}
		// Whatever was accepted must be safe to select against.
		d, err := loaded.NewDTable(Problem1)
		if err != nil {
			t.Fatalf("accepted index rejects DTable: %v", err)
		}
		for u := 0; u < g.N(); u++ {
			_ = d.Gain(u)
		}
		d.Update(0)
		_ = d.Gain(1)
	})
}
