package index

import (
	"fmt"
)

// This file holds the memoized read-path machinery the query-serving daemon
// builds on: per-problem empty-set gain vectors computed straight off the
// index (no D-table at all), and cheap state transfer between D-tables
// (Snapshot/ExtendFrom) so a table replayed for a set S can be extended to
// S ∪ Δ without replaying S.

// emptySlot maps a Problem to its memo slot in the Index.
func emptySlot(p Problem) (int, error) {
	switch p {
	case Problem1:
		return 0, nil
	case Problem2:
		return 1, nil
	default:
		return 0, fmt.Errorf("index: unknown problem %d", int(p))
	}
}

// emptySumInt computes the empty-set integer gain sum of node u — the shared
// kernel of EmptySetGains and EmptySetGainSums. In the compact layout a
// node's R replicate rows are contiguous (candidate-major) and the whole sum
// reads one span; a patched index walks the R row spans individually.
func (ix *Index) emptySumInt(p Problem, u int) int64 {
	if ix.parts != nil {
		// Per-chunk accumulators start from the chunk's own width (R_c·L or
		// R_c), so they sum to the flat accumulator exactly: Σ R_c = R.
		var acc int64
		for _, pt := range ix.parts {
			acc += pt.emptySumInt(p, u)
		}
		return acc
	}
	if ix.sb != nil {
		return ix.emptySumIntStore(p, u)
	}
	r := int64(ix.r)
	l := int64(ix.l)
	var acc int64
	if p == Problem1 {
		// d ≡ L: the node's own rows contribute R·L, and every index entry
		// with hop < L improves its source's hitting time by L − hop.
		acc = r * l
	} else {
		// d ≡ 0: the node's own rows contribute R, and every index entry is
		// a not-yet-dominated source walk.
		acc = r
	}
	base := int64(u) * r
	if ix.ends == nil {
		lo, hi := ix.offsets[base], ix.offsets[base+r]
		if p == Problem1 {
			for _, hop := range ix.hops[lo:hi] {
				if int64(hop) < l {
					acc += l - int64(hop)
				}
			}
		} else {
			acc += hi - lo
		}
		return acc
	}
	for i := int64(0); i < r; i++ {
		lo, hi := ix.offsets[base+i], ix.ends[base+i]
		if p == Problem1 {
			for _, hop := range ix.hops[lo:hi] {
				if int64(hop) < l {
					acc += l - int64(hop)
				}
			}
		} else {
			acc += hi - lo
		}
	}
	return acc
}

// EmptySetGains returns the marginal gain of every node against the empty
// set — Gain(u) of a fresh D-table — computed directly from the index
// entries without materializing any n·R table. The vector is computed once
// per problem and memoized on the index until the next Repair drops it, so
// steady-state calls are free; it is safe for concurrent callers. The
// returned slice is shared and must not be modified.
//
// Values are bit-for-bit identical to NewDTable(p).Gain(u): both accumulate
// the same integer sum over u's replicate span and divide by R last.
func (ix *Index) EmptySetGains(p Problem) ([]float64, error) {
	slot, err := emptySlot(p)
	if err != nil {
		return nil, err
	}
	ix.emptyMu.Lock()
	defer ix.emptyMu.Unlock()
	if ix.emptyGains[slot] == nil {
		n := ix.g.N()
		gains := make([]float64, n)
		fr := float64(ix.r)
		for u := 0; u < n; u++ {
			gains[u] = float64(ix.emptySumInt(p, u)) / fr
		}
		ix.emptyGains[slot] = gains
	}
	return ix.emptyGains[slot], nil
}

// EmptySetGainSums is EmptySetGains in the integer domain: the gain sum of
// every node against the empty set, before the division by R. Like
// EmptySetGains the vector is computed once per problem and memoized on the
// index until the next Repair; the returned slice is shared and must not be
// modified. It is the empty-set fast path of the partial (replicate-sharded)
// read surface, where answers stay integral so the coordinator can merge
// shard ranges exactly.
func (ix *Index) EmptySetGainSums(p Problem) ([]int64, error) {
	slot, err := emptySlot(p)
	if err != nil {
		return nil, err
	}
	ix.emptyMu.Lock()
	defer ix.emptyMu.Unlock()
	if ix.emptySums[slot] == nil {
		n := ix.g.N()
		sums := make([]int64, n)
		for u := 0; u < n; u++ {
			sums[u] = ix.emptySumInt(p, u)
		}
		ix.emptySums[slot] = sums
	}
	return ix.emptySums[slot], nil
}

// resetEmptyMemos drops the memoized empty-set vectors; Repair calls it
// because the entries (and possibly n) they summarize changed.
func (ix *Index) resetEmptyMemos() {
	ix.emptyMu.Lock()
	ix.emptyGains = [2][]float64{}
	ix.emptySums = [2][]int64{}
	ix.emptyMu.Unlock()
}

// EmptySetObjectiveSum returns the integer objective accumulator of the
// empty set — what DTable.ObjectiveSum reports on a fresh table: n·R·L for
// Problem 1 (every replicate row holds L), 0 for Problem 2.
func (ix *Index) EmptySetObjectiveSum(p Problem) (int64, error) {
	if _, err := emptySlot(p); err != nil {
		return 0, err
	}
	if p == Problem1 {
		return int64(ix.g.N()) * int64(ix.r) * int64(ix.l), nil
	}
	return 0, nil
}

// EmptySetObjective returns the estimated objective of the empty set — what
// EstimateObjective reports on a fresh D-table — without materializing one.
// (Both objectives are 0 by construction; the value is computed with the
// same floating-point operations as the D-table path so the two read paths
// stay bit-for-bit identical.)
func (ix *Index) EmptySetObjective(p Problem) (float64, error) {
	if _, err := emptySlot(p); err != nil {
		return 0, err
	}
	n := ix.g.N()
	if p == Problem1 {
		// acc = Σ_u Σ_i L, then the same nL − acc/R the D-table scan performs.
		acc := int64(n) * int64(ix.r) * int64(ix.l)
		avg := float64(acc) / float64(ix.r)
		return float64(n)*float64(ix.l) - avg, nil
	}
	return 0, nil
}

// Snapshot is a read-only view of a D-table's state at a point in time,
// the source side of ExtendFrom. It aliases the table's storage rather than
// copying it: taking one is O(1), and it remains valid only until the next
// mutation (Update or ExtendFrom) of the source table. ExtendFrom rejects
// an invalidated snapshot.
//
// The memoized gain cache in internal/server relies on exactly this
// shape: cached tables are frozen after population, so their snapshots stay
// valid indefinitely and extending one to a superset set costs a single
// array copy plus the delta replay — never a replay of the whole set.
type Snapshot struct {
	src  *DTable
	muts uint64
}

// Snapshot returns a read-only view of the table's current state. See the
// Snapshot type for the aliasing/validity contract.
func (t *DTable) Snapshot() *Snapshot {
	return &Snapshot{src: t, muts: t.muts}
}

// Size returns |S| of the snapshotted state.
func (s *Snapshot) Size() int { return s.src.size }

// Problem returns the objective the snapshotted table tracks.
func (s *Snapshot) Problem() Problem { return s.src.problem }

// ExtendFrom replaces t's state with the snapshot's and then folds each
// node of extra in (Algorithm 5), so t becomes the table for
// S_snapshot ∪ extra without replaying S_snapshot. t must belong to the
// same index and problem as the snapshot's source, and the snapshot must
// still be valid (no mutation of its source since it was taken).
func (t *DTable) ExtendFrom(s *Snapshot, extra ...int) error {
	if s == nil || s.src == nil {
		return fmt.Errorf("index: ExtendFrom of nil snapshot")
	}
	if s.src.ix != t.ix {
		return fmt.Errorf("index: ExtendFrom across indexes")
	}
	if s.src.problem != t.problem {
		return fmt.Errorf("index: ExtendFrom across problems (%v vs %v)", s.src.problem, t.problem)
	}
	if s.muts != s.src.muts {
		return fmt.Errorf("index: snapshot invalidated by %d later mutation(s) of its source", s.src.muts-s.muts)
	}
	if t != s.src {
		if t.tabs != nil || s.src.tabs != nil {
			// Chunked tables transfer column by column; both sides must hold
			// the same chunk set (a SyncChunks on either side bumps muts, so
			// width drift is caught here or by the snapshot check above).
			if len(t.tabs) != len(s.src.tabs) {
				return fmt.Errorf("index: ExtendFrom across chunk widths (%d vs %d chunks)", len(t.tabs), len(s.src.tabs))
			}
			for i, st := range s.src.tabs {
				dt := t.tabs[i]
				copy(dt.d, st.d)
				if dt.sat != nil {
					copy(dt.sat, st.sat)
				}
				dt.size = st.size
			}
			t.sel = append(t.sel[:0], s.src.sel...)
		} else {
			copy(t.d, s.src.d)
			if t.sat != nil {
				copy(t.sat, s.src.sat)
			}
		}
		t.size = s.src.size
	}
	t.muts++
	for _, u := range extra {
		t.Update(u)
	}
	return nil
}

// Index returns the index the table reads.
func (t *DTable) Index() *Index { return t.ix }

// MemoryBytes reports the approximate heap footprint of the table, used by
// the serving layer's memo cache for /stats accounting.
func (t *DTable) MemoryBytes() int64 {
	total := int64(len(t.d))*2 + int64(len(t.sat)) + int64(len(t.sel))*8
	for _, tb := range t.tabs {
		total += tb.MemoryBytes()
	}
	return total
}
