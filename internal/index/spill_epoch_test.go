package index

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

// TestSpillRejectsStaleEpoch is the stale-spill regression test for mutable
// graphs: the spill header's graph fingerprint cannot distinguish a graph
// that was mutated and mutated back (the structure round-trips) from one
// that was never mutated, so the v6 format carries the graph epoch and the
// loader rejects on mismatch — a stale file falls back to a rebuild, exactly
// like a corrupt one, never a silent warm load. Before v6 both scenarios
// below loaded "successfully".
func TestSpillRejectsStaleEpoch(t *testing.T) {
	dir := t.TempDir()
	key := CacheKey{Graph: "g", L: 4, R: 15, Seed: 3}
	_, path := spillFileFor(t, dir, key) // written at graph epoch 0

	g := cacheTestGraph(t, 31)
	var e graph.Edge
	g.Edges(func(u, v int, w float64) bool { e = graph.Edge{U: u, V: v}; return false })
	g1, _, err := g.ApplyDelta(graph.Delta{RemoveEdges: []graph.Edge{e}})
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := g1.ApplyDelta(graph.Delta{AddEdges: []graph.Edge{e}})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Fingerprint() != g.Fingerprint() {
		t.Fatal("test premise: a delta plus its inverse must round-trip the fingerprint")
	}
	if g2.Epoch() != 2 {
		t.Fatalf("test premise: epoch = %d, want 2", g2.Epoch())
	}

	// Direct load: the epoch-0 file must be rejected against the epoch-2
	// graph on the epoch alone — the fingerprint check cannot fire here.
	// (LoadAny: the cache writes v8 store files by default now, and the v8
	// loader carries the same epoch check.)
	if _, err := LoadAny(path, g2, StoreOptions{}); err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("LoadAny against mutated-back graph: err = %v, want epoch mismatch", err)
	}

	// Restart-style cache path: an index spilled post-mutation sits at the
	// pre-mutation key's path (stale file, hash collision — the mechanism
	// does not matter). The warm load must fail, be counted, and fall back
	// to a rebuild.
	ix2, err := Build(g2, key.L, key.R, key.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.GraphEpoch() != 2 {
		t.Fatalf("built GraphEpoch = %d, want 2", ix2.GraphEpoch())
	}
	if err := ix2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	c, err := NewCache(4, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	var rebuilds atomic.Int64
	h, err := c.Acquire(key, g, buildFor(g, key, &rebuilds))
	if err != nil {
		t.Fatalf("acquire over stale-epoch spill: %v", err)
	}
	defer h.Release()
	if rebuilds.Load() != 1 {
		t.Fatalf("rebuilds = %d, want 1 (stale-epoch spill must not be served)", rebuilds.Load())
	}
	s := c.Stats()
	if s.SpillLoadErrors != 1 {
		t.Fatalf("SpillLoadErrors = %d, want 1", s.SpillLoadErrors)
	}
	if s.SpillLoads != 0 {
		t.Fatalf("SpillLoads = %d, want 0", s.SpillLoads)
	}
}

// TestCacheKeyEpochSeparatesSpillPaths asserts keys at different epochs
// spill to different paths (the first line of defense: a post-mutation miss
// can never even open a pre-mutation file), while epoch 0 keeps the
// pre-mutation path stable.
func TestCacheKeyEpochSeparatesSpillPaths(t *testing.T) {
	c, err := NewCache(4, 0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k0 := CacheKey{Graph: "g", L: 4, R: 15, Seed: 3}
	k2 := k0
	k2.Epoch = 2
	if c.spillPath(k0) == c.spillPath(k2) {
		t.Fatal("epoch does not separate spill paths")
	}
	if got, want := k0.String(), "g/L=4/R=15/seed=3"; got != want {
		t.Fatalf("epoch-0 key string = %q, want unchanged %q", got, want)
	}
	if !strings.Contains(k2.String(), "epoch=2") {
		t.Fatalf("epoch-2 key string = %q, want epoch rendered", k2.String())
	}
}
