package index

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/faultinject"
	"repro/internal/graph"
)

// Cache is a refcounted LRU of built indexes, the shared-state core of the
// query-serving daemon: many concurrent requests against the same
// (graph, L, R, seed) tuple share one materialized index, concurrent misses
// for the same key coalesce into a single build (singleflight), and evicted
// indexes are optionally spilled to disk in the current serialization format
// so a later miss — or a daemon restart — reloads them instead of re-walking
// the graph.
//
// The refs/ready/LRU machinery itself lives in the generic internal/cache
// core (shared with the serving layer's memo cache); this type adds the
// index-specific policy: spill-to-disk on eviction, spill-before-build on
// miss (with L/R/seed verification so a stale or colliding spill file can
// never impersonate a different build), and an eviction hook the serving
// layer uses to drop memoized D-tables when the index they were built from
// leaves the cache.
//
// Entries are only evicted when no handle references them, so an index can
// never disappear under an in-flight query; a handle therefore pins at most
// one entry and must be Released when the query finishes.
type Cache struct {
	core     *cache.Cache[CacheKey, *Index]
	spillDir string
	spillCfg SpillConfig
	// spillWG tracks in-flight background spills so SpillAll (shutdown)
	// does not race past them.
	spillWG sync.WaitGroup

	mu              sync.Mutex
	spillLoads      int64
	spillSaves      int64
	spillLoadErrors int64
	spillSkipped    int64
	mmapLoads       int64
	evictHook       func([]CacheKey)
}

// SpillConfig selects how the cache persists and reloads spilled indexes.
// The zero value is the production default: write compressed v8 store
// files, load them fully onto the heap.
type SpillConfig struct {
	// Format is what spill saves write: FormatV8 (compressed store
	// container, the default), FormatV8Raw (store container with raw
	// page-aligned sections), or FormatV7 (legacy). Loads always sniff the
	// file magic and accept every format, so changing the write format
	// never invalidates an existing spill directory.
	Format string
	// Mmap serves v8 spill loads store-backed through a read-only mapping:
	// a warm restart pages rows in on demand instead of deserializing, and
	// the loaded index costs ~nothing against the cache's bytes budget
	// (its pages are reclaimable page cache, not heap). v7 files always
	// fully deserialize.
	Mmap bool
	// HotRows sizes the decoded-block cache of each compressed chunk
	// (see store.OpenOptions): 0 means store.DefaultHotRows, negative
	// disables caching.
	HotRows int
}

// format returns the effective write format.
func (sc SpillConfig) format() string {
	if sc.Format == "" {
		return FormatV8
	}
	return sc.Format
}

func (sc SpillConfig) validate() error {
	switch sc.format() {
	case FormatV7, FormatV8, FormatV8Raw:
		return nil
	default:
		return fmt.Errorf("index: unknown spill format %q (want %s, %s or %s)", sc.Format, FormatV8, FormatV8Raw, FormatV7)
	}
}

// CacheKey identifies one materialized index: the logical graph name plus
// the build parameters. Two graphs with the same name are assumed identical
// (the daemon loads each named graph once); the spill loader still verifies
// the graph fingerprint, so a stale spill file from a renamed graph is
// rejected rather than misused.
type CacheKey struct {
	Graph string
	L     int
	R     int
	Seed  uint64
	// R0 is the first absolute replicate number of a partial (replicate-range
	// sharded) index: the key identifies the range [R0, R0+R) of the full
	// build. Zero for full indexes, which keeps every pre-sharding key — and
	// its String form, spill path and /stats rendering — unchanged.
	R0 int
	// Epoch is the mutation epoch of the graph content the index reflects
	// (graph.Epoch()). Keys at different epochs are distinct, so an index
	// built before a graph mutation can never serve a post-mutation request
	// through the cache. Zero for never-mutated graphs, which keeps every
	// pre-mutation key, String form and spill path unchanged.
	Epoch uint64
}

func (k CacheKey) String() string {
	s := fmt.Sprintf("%s/L=%d/R=%d/seed=%d", k.Graph, k.L, k.R, k.Seed)
	if k.R0 != 0 {
		s += fmt.Sprintf("/r0=%d", k.R0)
	}
	if k.Epoch != 0 {
		s += fmt.Sprintf("/epoch=%d", k.Epoch)
	}
	return s
}

// CacheStats counts cache traffic. Snapshot via Cache.Stats.
type CacheStats struct {
	// Hits counts Acquires served by a resident index; Coalesced counts the
	// subset that attached to a build already in flight.
	Hits      int64
	Coalesced int64
	// Misses counts Acquires that started a build (or a spill load).
	Misses int64
	// SpillLoads counts misses served from the spill directory instead of a
	// fresh build; SpillSaves counts evictions persisted to it.
	SpillLoads int64
	SpillSaves int64
	// SpillLoadErrors counts spill files that existed but failed to load
	// (corrupt, truncated, wrong version) — each one fell back to a rebuild.
	// A missing file is a plain cold miss, not an error.
	SpillLoadErrors int64
	// SpillSkipped counts evictions that skipped re-serializing because the
	// victim was store-backed by its own up-to-date spill file (the bytes
	// were already durable on disk).
	SpillSkipped int64
	// MmapLoads counts the subset of SpillLoads served store-backed through
	// an mmap — page-in restarts that paid no deserialize.
	MmapLoads int64
	// Evictions counts entries dropped from the cache (spilled or not).
	Evictions int64
	// BuildErrors counts failed Acquires: the failed build itself plus every
	// waiter that coalesced onto it (failed Acquires hold no entry and are
	// not hits — the hit rate stays truthful when builds are failing).
	BuildErrors int64
	// Resident is the number of entries at snapshot time; ResidentBytes the
	// sum of their approximate heap footprints.
	Resident      int
	ResidentBytes int64
}

// Handle pins one cached index. Callers must Release exactly once; Release
// after the first is a no-op.
type Handle struct {
	h *cache.Handle[CacheKey, *Index]
}

// Index returns the pinned index.
func (h *Handle) Index() *Index { return h.h.Value() }

// Key returns the cache key the handle was acquired under.
func (h *Handle) Key() CacheKey { return h.h.Key() }

// Release unpins the index, making its entry eligible for eviction.
func (h *Handle) Release() { h.h.Release() }

// NewCache returns a cache holding at most maxEntries indexes (<= 0 means
// unbounded) totaling at most maxBytes of index heap (<= 0 means unbounded;
// the budget is soft while every candidate victim is pinned — the cache
// never frees an index in use). If spillDir is non-empty it is created if
// needed; evicted indexes are serialized there and misses check it before
// building.
func NewCache(maxEntries int, maxBytes int64, spillDir string) (*Cache, error) {
	return NewCacheWith(maxEntries, maxBytes, spillDir, SpillConfig{})
}

// NewCacheWith is NewCache with an explicit spill configuration (format,
// mmap serving, hot-row cache size).
func NewCacheWith(maxEntries int, maxBytes int64, spillDir string, cfg SpillConfig) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if spillDir != "" {
		if err := os.MkdirAll(spillDir, 0o755); err != nil {
			return nil, fmt.Errorf("index: cache spill dir: %w", err)
		}
	}
	c := &Cache{spillDir: spillDir, spillCfg: cfg}
	c.core = cache.New(cache.Config[CacheKey, *Index]{
		MaxEntries: maxEntries,
		MaxBytes:   maxBytes,
		OnEvict:    c.onEvict,
	})
	return c, nil
}

// OnEviction registers fn to be called with the keys of every batch of
// evicted indexes (capacity, bytes budget, or idle eviction — not SpillAll,
// which evicts nothing). The serving layer uses it to drop memoized
// D-tables built from an evicted index, so the eviction actually releases
// the index's heap instead of leaving it pinned by its dependents. fn runs
// on the goroutine that triggered the eviction, without any cache lock
// held (so it may call back into this or another cache), and should stay
// cheap — long work belongs on a background goroutine.
func (c *Cache) OnEviction(fn func([]CacheKey)) {
	c.mu.Lock()
	c.evictHook = fn
	c.mu.Unlock()
}

// onEvict is the core's eviction hook: notify the cross-cache linkage
// synchronously (dropping dependent memo tables is cheap map work), then
// spill the victims in the background.
func (c *Cache) onEvict(victims []cache.Entry[CacheKey, *Index]) {
	c.mu.Lock()
	hook := c.evictHook
	c.mu.Unlock()
	if hook != nil {
		keys := make([]CacheKey, len(victims))
		for i, v := range victims {
			keys[i] = v.Key
		}
		hook(keys)
	}
	c.spillAsync(victims)
}

// Acquire returns a handle on the index for key, building it at most once
// per residency: a resident entry is returned immediately, a build in flight
// is awaited (coalescing), and otherwise the caller's build function runs —
// after first consulting the spill directory. g must be the graph key.Graph
// names; it binds spill-loaded indexes and validates their fingerprint.
//
// The returned values follow func-call convention: on error the handle is
// nil and nothing needs releasing.
func (c *Cache) Acquire(key CacheKey, g *graph.Graph, build func() (*Index, error)) (*Handle, error) {
	spilled := false
	h, err := c.core.Acquire(key, func() (*Index, int64, error) {
		ix, sp, err := c.loadOrBuild(key, g, build)
		if err != nil {
			return nil, 0, err
		}
		spilled = sp
		return ix, ix.MemoryBytes(), nil
	})
	if err != nil {
		return nil, err
	}
	if spilled {
		c.mu.Lock()
		c.spillLoads++
		c.mu.Unlock()
	}
	return &Handle{h: h}, nil
}

// Adopt inserts an already-built index into the cache under its own build
// parameters (L, R, seed) and the given graph name, without pinning it:
// later Acquires for that key are hits. If the key is already resident or
// mid-population the cache keeps what it has — the two indexes are
// interchangeable, since walks are fully determined by (graph, L, R, seed).
// The engine uses this to serve selections over caller-materialized indexes
// (the old SelectWithIndex facade path) through the same cache stack as
// everything else.
func (c *Cache) Adopt(key CacheKey, ix *Index) error {
	if ix == nil {
		return errors.New("index: adopt nil index")
	}
	if key.L != ix.L() || key.R != ix.R() || key.Seed != ix.Seed() || key.R0 != ix.R0() || key.Epoch != ix.GraphEpoch() {
		return fmt.Errorf("index: adopt key %s does not match index build (L=%d R=%d seed=%d R0=%d epoch=%d)",
			key, ix.L(), ix.R(), ix.Seed(), ix.R0(), ix.GraphEpoch())
	}
	h, err := c.core.Acquire(key, func() (*Index, int64, error) {
		return ix, ix.MemoryBytes(), nil
	})
	if err != nil {
		return err
	}
	h.Release()
	return nil
}

// loadOrBuild tries the spill directory, then falls back to build. A spill
// file is only trusted if every build parameter matches the key — L, R and
// the build seed (serialized in the spill header) — on top of the graph
// fingerprint LoadFile already verifies, so an FNV path collision or a
// stale file can never warm-load an index built with different parameters
// and silently change every answer.
func (c *Cache) loadOrBuild(key CacheKey, g *graph.Graph, build func() (*Index, error)) (*Index, bool, error) {
	if c.spillDir != "" {
		if ferr := faultinject.Do(faultinject.SiteSpillLoad); ferr != nil {
			// An injected unreadable file: count it and fall through to the
			// rebuild, exactly like an organic load failure.
			c.noteSpillLoadError()
		} else if ix, err := LoadAny(c.spillPath(key), g, StoreOptions{Mmap: c.spillCfg.Mmap, HotRows: c.spillCfg.HotRows}); err == nil {
			if ix.L() == key.L && ix.R() == key.R && ix.Seed() == key.Seed && ix.R0() == key.R0 && ix.GraphEpoch() == key.Epoch {
				if ix.StoreMapped() {
					// A page-in restart: the index came up without a
					// deserialize — rows fault in from the file as queries
					// touch them.
					c.mu.Lock()
					c.mmapLoads++
					c.mu.Unlock()
				}
				return ix, true, nil
			}
			// A hash collision between distinct keys (or a stale file from
			// an older build): ignore it.
		} else if !errors.Is(err, fs.ErrNotExist) {
			// The file was there but would not load (corrupt, truncated, old
			// version): the rebuild below recovers, but the failure is worth
			// counting — persistent spill corruption means every restart pays
			// full build cost while looking warm.
			c.noteSpillLoadError()
		}
	}
	if err := faultinject.Do(faultinject.SiteIndexPopulate); err != nil {
		return nil, false, err
	}
	ix, err := build()
	return ix, false, err
}

// noteSpillLoadError counts one spill file that existed but failed to load.
func (c *Cache) noteSpillLoadError() {
	c.mu.Lock()
	c.spillLoadErrors++
	c.mu.Unlock()
}

// spillPath names the spill file for a key: a readable prefix plus an FNV-1a
// hash of the full key so arbitrary graph names cannot escape the directory.
func (c *Cache) spillPath(key CacheKey) string {
	h := fnv.New64a()
	fmt.Fprint(h, key.String())
	return filepath.Join(c.spillDir, fmt.Sprintf("idx-%016x.rwdomidx", h.Sum64()))
}

// saveAtomic writes ix to path in the configured format via a temp file +
// fsync + rename, so concurrent spill-loads never observe a partially
// written index, two spillers of the same key cannot interleave, and a
// crash between the write and the rename can never publish a torn file
// under the final name — the same durability contract graph saves follow.
// (A torn file would still only cost a counted rebuild thanks to the CRCs,
// but the fsync keeps the failure mode "old file or new file", never
// "garbage file".)
func saveAtomic(ix *Index, path string, cfg SpillConfig) error {
	if err := faultinject.Do(faultinject.SiteSpillSave); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	tmp := f.Name()
	switch cfg.format() {
	case FormatV7:
		_, err = ix.WriteTo(f)
	case FormatV8Raw:
		_, err = ix.WriteStore(f, false)
	default: // FormatV8
		_, err = ix.WriteStore(f, true)
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("index: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("index: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("index: %w", err)
	}
	return nil
}

// spill persists evicted entries to the spill directory, when configured.
func (c *Cache) spill(victims []cache.Entry[CacheKey, *Index]) {
	if c.spillDir == "" || len(victims) == 0 {
		return
	}
	saved, skipped := int64(0), int64(0)
	for _, v := range victims {
		path := c.spillPath(v.Key)
		if c.spillCurrent(v.Value, path) {
			skipped++
			continue
		}
		if err := saveAtomic(v.Value, path, c.spillCfg); err == nil {
			saved++
		}
	}
	c.mu.Lock()
	c.spillSaves += saved
	c.spillSkipped += skipped
	c.mu.Unlock()
}

// spillCurrent reports whether ix's bytes are already durable at path: a
// store-backed index loaded from that very spill file, still covering its
// whole replicate range (ExtendReplicates since load would have widened it).
// Resident indexes are immutable (Repair only happens on indexes removed
// via TakeGraph), so re-serializing an unchanged store-backed index on
// eviction would write back the bytes it is serving from.
func (c *Cache) spillCurrent(ix *Index, path string) bool {
	if !ix.storeComplete() || ix.StorePath() != path {
		return false
	}
	_, err := os.Stat(path)
	return err == nil
}

// spillAsync runs spill in the background: serializing a large evicted
// index must not sit on the latency of whichever request happened to tip
// the cache over capacity, nor stall the background evictor's tick.
// saveAtomic's temp+rename keeps concurrent readers and duplicate spillers
// of the same key safe.
func (c *Cache) spillAsync(victims []cache.Entry[CacheKey, *Index]) {
	if c.spillDir == "" || len(victims) == 0 {
		return
	}
	c.spillWG.Add(1)
	go func() {
		defer c.spillWG.Done()
		c.spill(victims)
	}()
}

// TakenIndex is one resident index removed by TakeGraph, with the key it
// was resident under. The caller owns the index exclusively.
type TakenIndex struct {
	Key   CacheKey
	Index *Index
}

// TakeGraph removes every resident index for the named graph, returning
// exclusive ownership of the unpinned ones — no handle and no map entry
// references them, so the caller may Repair them in place after a graph
// mutation — plus the keys of the pinned ones, which are orphaned: their
// in-flight readers finish on them (a consistent pre-mutation answer), but
// nothing new can acquire them. Neither set flows through the eviction
// hook: nothing is spilled (the values are about to be repaired or
// dropped, and a pre-mutation file on disk is unreachable anyway — the
// post-mutation key has a different spill path), and the caller is the
// serving layer itself, which drops the dependent memo tables explicitly.
func (c *Cache) TakeGraph(name string) (taken []TakenIndex, orphaned []CacheKey) {
	entries, orphaned := c.core.Take(func(k CacheKey) bool { return k.Graph == name })
	taken = make([]TakenIndex, 0, len(entries))
	for _, e := range entries {
		taken = append(taken, TakenIndex{Key: e.Key, Index: e.Value})
	}
	return taken, orphaned
}

// EvictIdle evicts every unreferenced entry whose last use is not newer than
// olderThan on the logical clock (see Clock and StartEvictor) and returns
// how many were evicted. Victims are spilled asynchronously (through the
// same eviction hook every other eviction uses), so one slow disk write
// cannot stall the eviction tick.
func (c *Cache) EvictIdle(olderThan int64) int {
	return c.core.EvictIdle(olderThan)
}

// Clock returns the current logical LRU clock (bumped on every Acquire).
func (c *Cache) Clock() int64 { return c.core.Clock() }

// StartEvictor launches a goroutine that every interval evicts entries not
// acquired since the previous tick — the background eviction that keeps a
// long-idle daemon's heap proportional to its working set rather than its
// history. The returned stop function terminates the goroutine and must be
// called before the cache is abandoned.
func (c *Cache) StartEvictor(interval time.Duration) (stop func()) {
	return c.core.StartEvictor(interval)
}

// SpillAll persists every resident index to the spill directory without
// evicting it — called at daemon shutdown so a restart starts warm. It is a
// no-op without a spill directory.
func (c *Cache) SpillAll() error {
	if c.spillDir == "" {
		return nil
	}
	c.spillWG.Wait() // let in-flight background spills land first
	var errs []error
	saved, skipped := int64(0), int64(0)
	for _, e := range c.core.Resident() {
		path := c.spillPath(e.Key)
		if c.spillCurrent(e.Value, path) {
			skipped++
			continue
		}
		if err := saveAtomic(e.Value, path, c.spillCfg); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", e.Key, err))
		} else {
			saved++
		}
	}
	c.mu.Lock()
	c.spillSaves += saved
	c.spillSkipped += skipped
	c.mu.Unlock()
	return errors.Join(errs...)
}

// Stats returns a snapshot of the traffic counters plus current residency.
func (c *Cache) Stats() CacheStats {
	cs := c.core.Stats()
	c.mu.Lock()
	loads, saves, loadErrs := c.spillLoads, c.spillSaves, c.spillLoadErrors
	skipped, mmaps := c.spillSkipped, c.mmapLoads
	c.mu.Unlock()
	return CacheStats{
		Hits:            cs.Hits,
		Coalesced:       cs.Coalesced,
		Misses:          cs.Misses,
		SpillLoads:      loads,
		SpillSaves:      saves,
		SpillLoadErrors: loadErrs,
		SpillSkipped:    skipped,
		MmapLoads:       mmaps,
		Evictions:       cs.Evictions,
		BuildErrors:     cs.PopulateErrors,
		Resident:        cs.Resident,
		ResidentBytes:   cs.ResidentBytes,
	}
}

// StorageStats describes the storage subsystem's view of the cache: the
// configured spill format, and the aggregate mmap/decode counters of every
// resident store-backed index. Snapshot via Cache.StorageStats; the serving
// layer renders it as the /stats "storage" block.
type StorageStats struct {
	// SpillFormat is the effective write format (v8, v8raw, or v7); Mmap
	// reports whether v8 spill loads serve store-backed off mapped pages.
	SpillFormat string
	Mmap        bool
	// MappedIndexes is the number of resident indexes serving through a
	// mapping; MappedBytes the total size of their read-only mappings
	// (page-cache residency, not Go heap).
	MappedIndexes int
	MappedBytes   int64
	// DecodeHits/DecodeMisses count compressed-span reads served from
	// hot-row caches vs decoded from mapped blobs, summed over resident
	// store-backed indexes; DecodeErrors counts malformed blocks served as
	// empty spans (writer bug — corruption is caught at load).
	DecodeHits   int64
	DecodeMisses int64
	DecodeErrors int64
	// PageInRestarts counts spill loads that came up by mmap page-in
	// instead of a deserialize (CacheStats.MmapLoads).
	PageInRestarts int64
}

// StorageStats snapshots the storage subsystem counters across resident
// indexes.
func (c *Cache) StorageStats() StorageStats {
	c.mu.Lock()
	s := StorageStats{
		SpillFormat:    c.spillCfg.format(),
		Mmap:           c.spillCfg.Mmap,
		PageInRestarts: c.mmapLoads,
	}
	c.mu.Unlock()
	for _, e := range c.core.Resident() {
		ix := e.Value
		if !ix.StoreBacked() {
			continue
		}
		if ix.StoreMapped() {
			s.MappedIndexes++
			s.MappedBytes += ix.MappedBytes()
		}
		st := ix.StoreStats()
		s.DecodeHits += st.DecodeHits
		s.DecodeMisses += st.DecodeMisses
		s.DecodeErrors += st.DecodeErrors
	}
	return s
}

// PinnedRefs returns the total refcount across resident entries — test
// observability for "no index is still pinned once traffic stops".
func (c *Cache) PinnedRefs() int { return c.core.PinnedRefs() }

// Keys returns the resident keys sorted by string form, for /stats output.
func (c *Cache) Keys() []CacheKey {
	keys := c.core.Keys()
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}
