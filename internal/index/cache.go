package index

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
)

// Cache is a refcounted LRU of built indexes, the shared-state core of the
// query-serving daemon: many concurrent requests against the same
// (graph, L, R, seed) tuple share one materialized index, concurrent misses
// for the same key coalesce into a single build (singleflight), and evicted
// indexes are optionally spilled to disk in the v2 serialization format so a
// later miss — or a daemon restart — reloads them instead of re-walking the
// graph.
//
// Entries are only evicted when no handle references them, so an index can
// never disappear under an in-flight query; a handle therefore pins at most
// one entry and must be Released when the query finishes.
type Cache struct {
	mu       sync.Mutex
	max      int
	spillDir string
	entries  map[CacheKey]*cacheEntry
	clock    int64 // logical LRU clock, bumped on every Acquire
	stats    CacheStats
	// spillWG tracks in-flight background spills so SpillAll (shutdown)
	// does not race past them.
	spillWG sync.WaitGroup
}

// CacheKey identifies one materialized index: the logical graph name plus
// the build parameters. Two graphs with the same name are assumed identical
// (the daemon loads each named graph once); the spill loader still verifies
// the graph fingerprint, so a stale spill file from a renamed graph is
// rejected rather than misused.
type CacheKey struct {
	Graph string
	L     int
	R     int
	Seed  uint64
}

func (k CacheKey) String() string {
	return fmt.Sprintf("%s/L=%d/R=%d/seed=%d", k.Graph, k.L, k.R, k.Seed)
}

// CacheStats counts cache traffic. Snapshot via Cache.Stats.
type CacheStats struct {
	// Hits counts Acquires served by a resident index; Coalesced counts the
	// subset that attached to a build already in flight.
	Hits      int64
	Coalesced int64
	// Misses counts Acquires that started a build (or a spill load).
	Misses int64
	// SpillLoads counts misses served from the spill directory instead of a
	// fresh build; SpillSaves counts evictions persisted to it.
	SpillLoads int64
	SpillSaves int64
	// Evictions counts entries dropped from the cache (spilled or not).
	Evictions int64
	// BuildErrors counts failed builds (failed Acquires hold no entry).
	BuildErrors int64
	// Resident is the number of entries at snapshot time; ResidentBytes the
	// sum of their approximate heap footprints.
	Resident      int
	ResidentBytes int64
}

type cacheEntry struct {
	key     CacheKey
	ready   chan struct{} // closed once ix/err are set
	ix      *Index
	err     error
	refs    int
	lastUse int64
}

// Handle pins one cached index. Callers must Release exactly once; Release
// after the first is a no-op.
type Handle struct {
	c    *Cache
	e    *cacheEntry
	once sync.Once
}

// Index returns the pinned index.
func (h *Handle) Index() *Index { return h.e.ix }

// Key returns the cache key the handle was acquired under.
func (h *Handle) Key() CacheKey { return h.e.key }

// Release unpins the index, making its entry eligible for eviction.
func (h *Handle) Release() {
	h.once.Do(func() {
		h.c.mu.Lock()
		h.e.refs--
		victims := h.c.collectOverCapacityLocked()
		h.c.mu.Unlock()
		h.c.spillAsync(victims)
	})
}

// NewCache returns a cache holding at most max indexes (max <= 0 means
// unbounded). If spillDir is non-empty it is created if needed; evicted
// indexes are serialized there and misses check it before building.
func NewCache(max int, spillDir string) (*Cache, error) {
	if spillDir != "" {
		if err := os.MkdirAll(spillDir, 0o755); err != nil {
			return nil, fmt.Errorf("index: cache spill dir: %w", err)
		}
	}
	return &Cache{max: max, spillDir: spillDir, entries: make(map[CacheKey]*cacheEntry)}, nil
}

// Acquire returns a handle on the index for key, building it at most once
// per residency: a resident entry is returned immediately, a build in flight
// is awaited (coalescing), and otherwise the caller's build function runs —
// after first consulting the spill directory. g must be the graph key.Graph
// names; it binds spill-loaded indexes and validates their fingerprint.
//
// The returned values follow func-call convention: on error the handle is
// nil and nothing needs releasing.
func (c *Cache) Acquire(key CacheKey, g *graph.Graph, build func() (*Index, error)) (*Handle, error) {
	c.mu.Lock()
	c.clock++
	if e, ok := c.entries[key]; ok {
		e.refs++
		e.lastUse = c.clock
		select {
		case <-e.ready:
			c.stats.Hits++
		default:
			c.stats.Hits++
			c.stats.Coalesced++
		}
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The build leader failed and removed the entry; drop our ref on
			// the orphaned entry (no eviction bookkeeping needed).
			c.mu.Lock()
			e.refs--
			c.mu.Unlock()
			return nil, e.err
		}
		return &Handle{c: c, e: e}, nil
	}
	e := &cacheEntry{key: key, ready: make(chan struct{}), refs: 1, lastUse: c.clock}
	c.entries[key] = e
	c.stats.Misses++
	c.mu.Unlock()

	ix, spilled, err := c.loadOrBuild(key, g, build)

	c.mu.Lock()
	e.ix, e.err = ix, err
	var victims []*cacheEntry
	if err != nil {
		c.stats.BuildErrors++
		e.refs--
		delete(c.entries, key)
	} else {
		if spilled {
			c.stats.SpillLoads++
		}
		victims = c.collectOverCapacityLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	c.spillAsync(victims)
	if err != nil {
		return nil, err
	}
	return &Handle{c: c, e: e}, nil
}

// loadOrBuild tries the spill directory, then falls back to build.
func (c *Cache) loadOrBuild(key CacheKey, g *graph.Graph, build func() (*Index, error)) (*Index, bool, error) {
	if c.spillDir != "" {
		if ix, err := LoadFile(c.spillPath(key), g); err == nil {
			if ix.L() == key.L && ix.R() == key.R {
				return ix, true, nil
			}
			// A hash collision between distinct keys: ignore the file.
		}
	}
	ix, err := build()
	return ix, false, err
}

// spillPath names the spill file for a key: a readable prefix plus an FNV-1a
// hash of the full key so arbitrary graph names cannot escape the directory.
func (c *Cache) spillPath(key CacheKey) string {
	h := fnv.New64a()
	fmt.Fprint(h, key.String())
	return filepath.Join(c.spillDir, fmt.Sprintf("idx-%016x.rwdomidx", h.Sum64()))
}

// collectOverCapacityLocked removes least-recently-used unreferenced entries
// from the map until the cache is within capacity, returning the victims for
// the caller to spill after releasing the lock (writing a large index to
// disk must not block other Acquires). Entries still building or still
// referenced are never evicted.
func (c *Cache) collectOverCapacityLocked() []*cacheEntry {
	if c.max <= 0 {
		return nil
	}
	var victims []*cacheEntry
	for len(c.entries) > c.max {
		v := c.popVictimLocked(func(*cacheEntry) bool { return true })
		if v == nil {
			break
		}
		victims = append(victims, v)
	}
	return victims
}

// popVictimLocked removes and returns the LRU ready entry with refs == 0
// matching ok, or nil if none qualifies.
func (c *Cache) popVictimLocked(ok func(*cacheEntry) bool) *cacheEntry {
	var victim *cacheEntry
	for _, e := range c.entries {
		select {
		case <-e.ready:
		default:
			continue // still building
		}
		if e.refs > 0 || e.err != nil || !ok(e) {
			continue
		}
		if victim == nil || e.lastUse < victim.lastUse {
			victim = e
		}
	}
	if victim == nil {
		return nil
	}
	delete(c.entries, victim.key)
	c.stats.Evictions++
	return victim
}

// saveAtomic writes ix to path via a temp file + rename, so concurrent
// spill-loads never observe a partially written index and two spillers of
// the same key cannot interleave.
func saveAtomic(ix *Index, path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	tmp := f.Name()
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("index: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("index: %w", err)
	}
	return nil
}

// spill persists evicted entries to the spill directory, when configured.
func (c *Cache) spill(victims []*cacheEntry) {
	if c.spillDir == "" || len(victims) == 0 {
		return
	}
	saved := int64(0)
	for _, v := range victims {
		if err := saveAtomic(v.ix, c.spillPath(v.key)); err == nil {
			saved++
		}
	}
	c.mu.Lock()
	c.stats.SpillSaves += saved
	c.mu.Unlock()
}

// spillAsync runs spill in the background: serializing a large evicted
// index must not sit on the latency of whichever request happened to tip
// the cache over capacity. saveAtomic's temp+rename keeps concurrent
// readers and duplicate spillers of the same key safe.
func (c *Cache) spillAsync(victims []*cacheEntry) {
	if c.spillDir == "" || len(victims) == 0 {
		return
	}
	c.spillWG.Add(1)
	go func() {
		defer c.spillWG.Done()
		c.spill(victims)
	}()
}

// EvictIdle evicts every unreferenced entry whose last use is not newer than
// olderThan on the logical clock (see Clock and StartEvictor) and returns
// how many were evicted.
func (c *Cache) EvictIdle(olderThan int64) int {
	c.mu.Lock()
	var victims []*cacheEntry
	for {
		v := c.popVictimLocked(func(e *cacheEntry) bool { return e.lastUse <= olderThan })
		if v == nil {
			break
		}
		victims = append(victims, v)
	}
	c.mu.Unlock()
	c.spill(victims)
	return len(victims)
}

// Clock returns the current logical LRU clock (bumped on every Acquire).
func (c *Cache) Clock() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clock
}

// StartEvictor launches a goroutine that every interval evicts entries not
// acquired since the previous tick — the background eviction that keeps a
// long-idle daemon's heap proportional to its working set rather than its
// history. The returned stop function terminates the goroutine and must be
// called before the cache is abandoned.
func (c *Cache) StartEvictor(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		mark := c.Clock()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				c.EvictIdle(mark)
				mark = c.Clock()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// SpillAll persists every resident index to the spill directory without
// evicting it — called at daemon shutdown so a restart starts warm. It is a
// no-op without a spill directory.
func (c *Cache) SpillAll() error {
	if c.spillDir == "" {
		return nil
	}
	c.spillWG.Wait() // let in-flight background spills land first
	c.mu.Lock()
	resident := make([]*cacheEntry, 0, len(c.entries))
	for _, e := range c.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				resident = append(resident, e)
			}
		default:
		}
	}
	c.mu.Unlock()
	var errs []error
	saved := int64(0)
	for _, e := range resident {
		if err := saveAtomic(e.ix, c.spillPath(e.key)); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", e.key, err))
		} else {
			saved++
		}
	}
	c.mu.Lock()
	c.stats.SpillSaves += saved
	c.mu.Unlock()
	return errors.Join(errs...)
}

// Stats returns a snapshot of the traffic counters plus current residency.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Resident = len(c.entries)
	for _, e := range c.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				s.ResidentBytes += e.ix.MemoryBytes()
			}
		default:
		}
	}
	return s
}

// Keys returns the resident keys sorted by string form, for /stats output.
func (c *Cache) Keys() []CacheKey {
	c.mu.Lock()
	keys := make([]CacheKey, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	c.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}
