package index

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/faultinject"
	"repro/internal/graph"
)

// Cache is a refcounted LRU of built indexes, the shared-state core of the
// query-serving daemon: many concurrent requests against the same
// (graph, L, R, seed) tuple share one materialized index, concurrent misses
// for the same key coalesce into a single build (singleflight), and evicted
// indexes are optionally spilled to disk in the current serialization format
// so a later miss — or a daemon restart — reloads them instead of re-walking
// the graph.
//
// The refs/ready/LRU machinery itself lives in the generic internal/cache
// core (shared with the serving layer's memo cache); this type adds the
// index-specific policy: spill-to-disk on eviction, spill-before-build on
// miss (with L/R/seed verification so a stale or colliding spill file can
// never impersonate a different build), and an eviction hook the serving
// layer uses to drop memoized D-tables when the index they were built from
// leaves the cache.
//
// Entries are only evicted when no handle references them, so an index can
// never disappear under an in-flight query; a handle therefore pins at most
// one entry and must be Released when the query finishes.
type Cache struct {
	core     *cache.Cache[CacheKey, *Index]
	spillDir string
	// spillWG tracks in-flight background spills so SpillAll (shutdown)
	// does not race past them.
	spillWG sync.WaitGroup

	mu              sync.Mutex
	spillLoads      int64
	spillSaves      int64
	spillLoadErrors int64
	evictHook       func([]CacheKey)
}

// CacheKey identifies one materialized index: the logical graph name plus
// the build parameters. Two graphs with the same name are assumed identical
// (the daemon loads each named graph once); the spill loader still verifies
// the graph fingerprint, so a stale spill file from a renamed graph is
// rejected rather than misused.
type CacheKey struct {
	Graph string
	L     int
	R     int
	Seed  uint64
	// R0 is the first absolute replicate number of a partial (replicate-range
	// sharded) index: the key identifies the range [R0, R0+R) of the full
	// build. Zero for full indexes, which keeps every pre-sharding key — and
	// its String form, spill path and /stats rendering — unchanged.
	R0 int
	// Epoch is the mutation epoch of the graph content the index reflects
	// (graph.Epoch()). Keys at different epochs are distinct, so an index
	// built before a graph mutation can never serve a post-mutation request
	// through the cache. Zero for never-mutated graphs, which keeps every
	// pre-mutation key, String form and spill path unchanged.
	Epoch uint64
}

func (k CacheKey) String() string {
	s := fmt.Sprintf("%s/L=%d/R=%d/seed=%d", k.Graph, k.L, k.R, k.Seed)
	if k.R0 != 0 {
		s += fmt.Sprintf("/r0=%d", k.R0)
	}
	if k.Epoch != 0 {
		s += fmt.Sprintf("/epoch=%d", k.Epoch)
	}
	return s
}

// CacheStats counts cache traffic. Snapshot via Cache.Stats.
type CacheStats struct {
	// Hits counts Acquires served by a resident index; Coalesced counts the
	// subset that attached to a build already in flight.
	Hits      int64
	Coalesced int64
	// Misses counts Acquires that started a build (or a spill load).
	Misses int64
	// SpillLoads counts misses served from the spill directory instead of a
	// fresh build; SpillSaves counts evictions persisted to it.
	SpillLoads int64
	SpillSaves int64
	// SpillLoadErrors counts spill files that existed but failed to load
	// (corrupt, truncated, wrong version) — each one fell back to a rebuild.
	// A missing file is a plain cold miss, not an error.
	SpillLoadErrors int64
	// Evictions counts entries dropped from the cache (spilled or not).
	Evictions int64
	// BuildErrors counts failed Acquires: the failed build itself plus every
	// waiter that coalesced onto it (failed Acquires hold no entry and are
	// not hits — the hit rate stays truthful when builds are failing).
	BuildErrors int64
	// Resident is the number of entries at snapshot time; ResidentBytes the
	// sum of their approximate heap footprints.
	Resident      int
	ResidentBytes int64
}

// Handle pins one cached index. Callers must Release exactly once; Release
// after the first is a no-op.
type Handle struct {
	h *cache.Handle[CacheKey, *Index]
}

// Index returns the pinned index.
func (h *Handle) Index() *Index { return h.h.Value() }

// Key returns the cache key the handle was acquired under.
func (h *Handle) Key() CacheKey { return h.h.Key() }

// Release unpins the index, making its entry eligible for eviction.
func (h *Handle) Release() { h.h.Release() }

// NewCache returns a cache holding at most maxEntries indexes (<= 0 means
// unbounded) totaling at most maxBytes of index heap (<= 0 means unbounded;
// the budget is soft while every candidate victim is pinned — the cache
// never frees an index in use). If spillDir is non-empty it is created if
// needed; evicted indexes are serialized there and misses check it before
// building.
func NewCache(maxEntries int, maxBytes int64, spillDir string) (*Cache, error) {
	if spillDir != "" {
		if err := os.MkdirAll(spillDir, 0o755); err != nil {
			return nil, fmt.Errorf("index: cache spill dir: %w", err)
		}
	}
	c := &Cache{spillDir: spillDir}
	c.core = cache.New(cache.Config[CacheKey, *Index]{
		MaxEntries: maxEntries,
		MaxBytes:   maxBytes,
		OnEvict:    c.onEvict,
	})
	return c, nil
}

// OnEviction registers fn to be called with the keys of every batch of
// evicted indexes (capacity, bytes budget, or idle eviction — not SpillAll,
// which evicts nothing). The serving layer uses it to drop memoized
// D-tables built from an evicted index, so the eviction actually releases
// the index's heap instead of leaving it pinned by its dependents. fn runs
// on the goroutine that triggered the eviction, without any cache lock
// held (so it may call back into this or another cache), and should stay
// cheap — long work belongs on a background goroutine.
func (c *Cache) OnEviction(fn func([]CacheKey)) {
	c.mu.Lock()
	c.evictHook = fn
	c.mu.Unlock()
}

// onEvict is the core's eviction hook: notify the cross-cache linkage
// synchronously (dropping dependent memo tables is cheap map work), then
// spill the victims in the background.
func (c *Cache) onEvict(victims []cache.Entry[CacheKey, *Index]) {
	c.mu.Lock()
	hook := c.evictHook
	c.mu.Unlock()
	if hook != nil {
		keys := make([]CacheKey, len(victims))
		for i, v := range victims {
			keys[i] = v.Key
		}
		hook(keys)
	}
	c.spillAsync(victims)
}

// Acquire returns a handle on the index for key, building it at most once
// per residency: a resident entry is returned immediately, a build in flight
// is awaited (coalescing), and otherwise the caller's build function runs —
// after first consulting the spill directory. g must be the graph key.Graph
// names; it binds spill-loaded indexes and validates their fingerprint.
//
// The returned values follow func-call convention: on error the handle is
// nil and nothing needs releasing.
func (c *Cache) Acquire(key CacheKey, g *graph.Graph, build func() (*Index, error)) (*Handle, error) {
	spilled := false
	h, err := c.core.Acquire(key, func() (*Index, int64, error) {
		ix, sp, err := c.loadOrBuild(key, g, build)
		if err != nil {
			return nil, 0, err
		}
		spilled = sp
		return ix, ix.MemoryBytes(), nil
	})
	if err != nil {
		return nil, err
	}
	if spilled {
		c.mu.Lock()
		c.spillLoads++
		c.mu.Unlock()
	}
	return &Handle{h: h}, nil
}

// Adopt inserts an already-built index into the cache under its own build
// parameters (L, R, seed) and the given graph name, without pinning it:
// later Acquires for that key are hits. If the key is already resident or
// mid-population the cache keeps what it has — the two indexes are
// interchangeable, since walks are fully determined by (graph, L, R, seed).
// The engine uses this to serve selections over caller-materialized indexes
// (the old SelectWithIndex facade path) through the same cache stack as
// everything else.
func (c *Cache) Adopt(key CacheKey, ix *Index) error {
	if ix == nil {
		return errors.New("index: adopt nil index")
	}
	if key.L != ix.L() || key.R != ix.R() || key.Seed != ix.Seed() || key.R0 != ix.R0() || key.Epoch != ix.GraphEpoch() {
		return fmt.Errorf("index: adopt key %s does not match index build (L=%d R=%d seed=%d R0=%d epoch=%d)",
			key, ix.L(), ix.R(), ix.Seed(), ix.R0(), ix.GraphEpoch())
	}
	h, err := c.core.Acquire(key, func() (*Index, int64, error) {
		return ix, ix.MemoryBytes(), nil
	})
	if err != nil {
		return err
	}
	h.Release()
	return nil
}

// loadOrBuild tries the spill directory, then falls back to build. A spill
// file is only trusted if every build parameter matches the key — L, R and
// the build seed (serialized in the spill header) — on top of the graph
// fingerprint LoadFile already verifies, so an FNV path collision or a
// stale file can never warm-load an index built with different parameters
// and silently change every answer.
func (c *Cache) loadOrBuild(key CacheKey, g *graph.Graph, build func() (*Index, error)) (*Index, bool, error) {
	if c.spillDir != "" {
		if ferr := faultinject.Do(faultinject.SiteSpillLoad); ferr != nil {
			// An injected unreadable file: count it and fall through to the
			// rebuild, exactly like an organic load failure.
			c.noteSpillLoadError()
		} else if ix, err := LoadFile(c.spillPath(key), g); err == nil {
			if ix.L() == key.L && ix.R() == key.R && ix.Seed() == key.Seed && ix.R0() == key.R0 && ix.GraphEpoch() == key.Epoch {
				return ix, true, nil
			}
			// A hash collision between distinct keys (or a stale file from
			// an older build): ignore it.
		} else if !errors.Is(err, fs.ErrNotExist) {
			// The file was there but would not load (corrupt, truncated, old
			// version): the rebuild below recovers, but the failure is worth
			// counting — persistent spill corruption means every restart pays
			// full build cost while looking warm.
			c.noteSpillLoadError()
		}
	}
	if err := faultinject.Do(faultinject.SiteIndexPopulate); err != nil {
		return nil, false, err
	}
	ix, err := build()
	return ix, false, err
}

// noteSpillLoadError counts one spill file that existed but failed to load.
func (c *Cache) noteSpillLoadError() {
	c.mu.Lock()
	c.spillLoadErrors++
	c.mu.Unlock()
}

// spillPath names the spill file for a key: a readable prefix plus an FNV-1a
// hash of the full key so arbitrary graph names cannot escape the directory.
func (c *Cache) spillPath(key CacheKey) string {
	h := fnv.New64a()
	fmt.Fprint(h, key.String())
	return filepath.Join(c.spillDir, fmt.Sprintf("idx-%016x.rwdomidx", h.Sum64()))
}

// saveAtomic writes ix to path via a temp file + rename, so concurrent
// spill-loads never observe a partially written index and two spillers of
// the same key cannot interleave.
func saveAtomic(ix *Index, path string) error {
	if err := faultinject.Do(faultinject.SiteSpillSave); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	tmp := f.Name()
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("index: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("index: %w", err)
	}
	return nil
}

// spill persists evicted entries to the spill directory, when configured.
func (c *Cache) spill(victims []cache.Entry[CacheKey, *Index]) {
	if c.spillDir == "" || len(victims) == 0 {
		return
	}
	saved := int64(0)
	for _, v := range victims {
		if err := saveAtomic(v.Value, c.spillPath(v.Key)); err == nil {
			saved++
		}
	}
	c.mu.Lock()
	c.spillSaves += saved
	c.mu.Unlock()
}

// spillAsync runs spill in the background: serializing a large evicted
// index must not sit on the latency of whichever request happened to tip
// the cache over capacity, nor stall the background evictor's tick.
// saveAtomic's temp+rename keeps concurrent readers and duplicate spillers
// of the same key safe.
func (c *Cache) spillAsync(victims []cache.Entry[CacheKey, *Index]) {
	if c.spillDir == "" || len(victims) == 0 {
		return
	}
	c.spillWG.Add(1)
	go func() {
		defer c.spillWG.Done()
		c.spill(victims)
	}()
}

// TakenIndex is one resident index removed by TakeGraph, with the key it
// was resident under. The caller owns the index exclusively.
type TakenIndex struct {
	Key   CacheKey
	Index *Index
}

// TakeGraph removes every resident index for the named graph, returning
// exclusive ownership of the unpinned ones — no handle and no map entry
// references them, so the caller may Repair them in place after a graph
// mutation — plus the keys of the pinned ones, which are orphaned: their
// in-flight readers finish on them (a consistent pre-mutation answer), but
// nothing new can acquire them. Neither set flows through the eviction
// hook: nothing is spilled (the values are about to be repaired or
// dropped, and a pre-mutation file on disk is unreachable anyway — the
// post-mutation key has a different spill path), and the caller is the
// serving layer itself, which drops the dependent memo tables explicitly.
func (c *Cache) TakeGraph(name string) (taken []TakenIndex, orphaned []CacheKey) {
	entries, orphaned := c.core.Take(func(k CacheKey) bool { return k.Graph == name })
	taken = make([]TakenIndex, 0, len(entries))
	for _, e := range entries {
		taken = append(taken, TakenIndex{Key: e.Key, Index: e.Value})
	}
	return taken, orphaned
}

// EvictIdle evicts every unreferenced entry whose last use is not newer than
// olderThan on the logical clock (see Clock and StartEvictor) and returns
// how many were evicted. Victims are spilled asynchronously (through the
// same eviction hook every other eviction uses), so one slow disk write
// cannot stall the eviction tick.
func (c *Cache) EvictIdle(olderThan int64) int {
	return c.core.EvictIdle(olderThan)
}

// Clock returns the current logical LRU clock (bumped on every Acquire).
func (c *Cache) Clock() int64 { return c.core.Clock() }

// StartEvictor launches a goroutine that every interval evicts entries not
// acquired since the previous tick — the background eviction that keeps a
// long-idle daemon's heap proportional to its working set rather than its
// history. The returned stop function terminates the goroutine and must be
// called before the cache is abandoned.
func (c *Cache) StartEvictor(interval time.Duration) (stop func()) {
	return c.core.StartEvictor(interval)
}

// SpillAll persists every resident index to the spill directory without
// evicting it — called at daemon shutdown so a restart starts warm. It is a
// no-op without a spill directory.
func (c *Cache) SpillAll() error {
	if c.spillDir == "" {
		return nil
	}
	c.spillWG.Wait() // let in-flight background spills land first
	var errs []error
	saved := int64(0)
	for _, e := range c.core.Resident() {
		if err := saveAtomic(e.Value, c.spillPath(e.Key)); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", e.Key, err))
		} else {
			saved++
		}
	}
	c.mu.Lock()
	c.spillSaves += saved
	c.mu.Unlock()
	return errors.Join(errs...)
}

// Stats returns a snapshot of the traffic counters plus current residency.
func (c *Cache) Stats() CacheStats {
	cs := c.core.Stats()
	c.mu.Lock()
	loads, saves, loadErrs := c.spillLoads, c.spillSaves, c.spillLoadErrors
	c.mu.Unlock()
	return CacheStats{
		Hits:            cs.Hits,
		Coalesced:       cs.Coalesced,
		Misses:          cs.Misses,
		SpillLoads:      loads,
		SpillSaves:      saves,
		SpillLoadErrors: loadErrs,
		Evictions:       cs.Evictions,
		BuildErrors:     cs.PopulateErrors,
		Resident:        cs.Resident,
		ResidentBytes:   cs.ResidentBytes,
	}
}

// PinnedRefs returns the total refcount across resident entries — test
// observability for "no index is still pinned once traffic stops".
func (c *Cache) PinnedRefs() int { return c.core.PinnedRefs() }

// Keys returns the resident keys sorted by string form, for /stats output.
func (c *Cache) Keys() []CacheKey {
	keys := c.core.Keys()
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}
