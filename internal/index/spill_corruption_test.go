package index

import (
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// spillFileFor builds key's index into a spilled file under dir and returns
// the cache (for its path naming) and the spill path.
func spillFileFor(t *testing.T, dir string, key CacheKey) (*Cache, string) {
	t.Helper()
	g := cacheTestGraph(t, 31)
	c, err := NewCache(4, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	h, err := c.Acquire(key, g, buildFor(g, key, &builds))
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	if err := c.SpillAll(); err != nil {
		t.Fatal(err)
	}
	path := c.spillPath(key)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("spill file not written: %v", err)
	}
	return c, path
}

// TestCacheRebuildsOnCorruptSpill is the spill-corruption regression test: a
// spill file that was truncated or bit-flipped on disk must fail its CRC (or
// short-read) at load, tick SpillLoadErrors, and fall back to a rebuild —
// never a crash, never a silently wrong index.
func TestCacheRebuildsOnCorruptSpill(t *testing.T) {
	corruptions := map[string]func(t *testing.T, path string){
		"truncated": func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, b[:len(b)-16], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"bitflip": func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)-100] ^= 0x40 // one flipped bit in the payload
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			key := CacheKey{Graph: "g", L: 4, R: 15, Seed: 3}
			_, path := spillFileFor(t, dir, key)
			corrupt(t, path)

			// A "restarted daemon" over the corrupt spill: the load must fail,
			// be counted, and fall back to the build.
			g := cacheTestGraph(t, 31)
			c2, err := NewCache(4, 0, dir)
			if err != nil {
				t.Fatal(err)
			}
			var rebuilds atomic.Int64
			h, err := c2.Acquire(key, g, buildFor(g, key, &rebuilds))
			if err != nil {
				t.Fatalf("acquire over corrupt spill: %v", err)
			}
			defer h.Release()
			if rebuilds.Load() != 1 {
				t.Fatalf("rebuilds = %d, want 1 (corrupt spill must not be served)", rebuilds.Load())
			}
			s := c2.Stats()
			if s.SpillLoadErrors != 1 {
				t.Fatalf("SpillLoadErrors = %d, want 1", s.SpillLoadErrors)
			}
			if s.SpillLoads != 0 {
				t.Fatalf("SpillLoads = %d, want 0 (the corrupt file must not count as a load)", s.SpillLoads)
			}
		})
	}
}

// TestReadIndexRejectsBitFlipAnywhere sweeps a flipped bit across the stream
// (sampled) and asserts the reader never returns success: whatever the CRC
// misses, the structural checks must catch, and vice versa. The file is
// written in the legacy v7 format explicitly — this is the v7 reader's
// sweep; internal/store carries the v8 equivalent.
func TestReadIndexRejectsBitFlipAnywhere(t *testing.T) {
	g := cacheTestGraph(t, 31)
	ix, err := Build(g, 3, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ix.rwdomidx")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	step := len(orig)/64 + 1
	for off := 0; off < len(orig); off += step {
		b := append([]byte(nil), orig...)
		b[off] ^= 0x01
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(path, g); err == nil {
			t.Fatalf("flipped bit at offset %d was not detected", off)
		} else if strings.Contains(err.Error(), "panic") {
			t.Fatalf("flipped bit at offset %d: %v", off, err)
		}
	}
}
