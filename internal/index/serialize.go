package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/graph"
)

// Serialization of materialized walk indexes. Building the index is the
// dominant cost of the approximate greedy algorithm (Fig. 8), and the same
// index serves every budget and both problems, so persisting it across runs
// is the natural production optimization. Loading against a structurally
// different graph is rejected.
//
// # Format v7 (chunked container)
//
// The layout is little-endian with every byte outside the checksums
// themselves covered by a CRC32-C:
//
//	magic "RWDOMIDX"
//	header: 10 × uint64 — version, graph fingerprint, n, L, R (total
//	        replicate width), seed, total entries, R0 (first absolute
//	        replicate), graph epoch, chunk count
//	header CRC32-C (uint32, covers magic + header)
//	then per chunk, in replicate order:
//	  sub-header: 3 × uint64 — chunk's first absolute replicate, chunk
//	              width, chunk entries
//	  payload: offsets (width·n+1 × int64), ids (int32), hops (uint16)
//	  chunk CRC32-C (uint32, covers sub-header + payload)
//
// A flat index serializes as a single chunk spanning [R0, R0+R), and a
// single-chunk stream loads back as a flat index, so flat round-trips are
// byte-stable; a multi-chunk stream loads as a chunked index with the same
// chunk boundaries it was written with. Chunks are always written in their
// canonical compact form (never the patched post-Repair layout).
const (
	indexMagic = "RWDOMIDX"
	// indexVersion 2 switched the row order from replicate-major (i·n+v) to
	// candidate-major (v·R+i); version 3 added the build seed to the header
	// so a loader can verify the full build identity (previously only L and
	// R were recoverable, letting a stale or path-colliding spill file
	// impersonate an index built with a different seed); version 4 appended a
	// CRC32-C trailer over the magic, header and payload, so silently
	// corrupted spill files (torn writes, truncation, bit rot) are detected
	// at load time — forcing a rebuild — instead of surviving the structural
	// checks and shifting every served answer; version 5 appended the first
	// replicate number (R0) to the header so a partial index built over a
	// replicate range [r0, r1) round-trips its range identity and a spilled
	// shard slice can never be warm-loaded as a full build (or as a
	// different shard's slice); version 6 appended the graph mutation epoch,
	// so once graphs can change at runtime (graph.ApplyDelta) a spill file
	// written before a mutation is rejected on restart instead of silently
	// serving pre-mutation walks — including when a delta and its inverse
	// leave the structure (and thus the fingerprint) identical but the
	// lineage two epochs newer; version 7 turned the single flat payload into
	// the chunked container documented above (a chunk count in the header,
	// one self-contained payload + CRC per replicate chunk) so chunked
	// indexes — the substrate of adaptive accuracy budgets — spill and
	// warm-load with their chunk boundaries intact, and a corrupt chunk is
	// pinpointed without reading the rest of the file. Older versions are
	// rejected rather than silently misread, forcing a cheap rebuild.
	indexVersion = 7
)

// castagnoli is the CRC32-C polynomial table the checksums use (the same
// checksum iSCSI and ext4 use; hardware-accelerated on amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteTo serializes the index in the v7 chunked container; it implements
// io.WriterTo. A flat index is written as one chunk; a chunked index writes
// one payload per chunk. Patched (post-Repair) chunks are serialized in
// their canonical compacted form, computed on copies — the receiver is not
// mutated.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	var parts []*Index
	if ix.parts != nil {
		parts = make([]*Index, len(ix.parts))
		for i, pt := range ix.parts {
			parts[i] = pt.compacted()
		}
	} else {
		parts = []*Index{ix.compacted()}
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	sum := crc32.New(castagnoli)
	cw := io.MultiWriter(bw, sum)
	var written int64
	put := func(data interface{}) error {
		if err := binary.Write(cw, binary.LittleEndian, data); err != nil {
			return err
		}
		written += int64(binary.Size(data))
		return nil
	}
	// putSum writes the running CRC outside the checksummed writer (it
	// covers the preceding section, it is not part of it) and resets it for
	// the next section.
	putSum := func() error {
		if err := binary.Write(bw, binary.LittleEndian, sum.Sum32()); err != nil {
			return err
		}
		written += 4
		sum.Reset()
		return nil
	}
	if _, err := io.WriteString(cw, indexMagic); err != nil {
		return written, fmt.Errorf("index: write header: %w", err)
	}
	written += int64(len(indexMagic))
	var entries uint64
	for _, pt := range parts {
		entries += uint64(len(pt.ids))
	}
	header := []uint64{
		indexVersion,
		ix.g.Fingerprint(),
		uint64(ix.g.N()),
		uint64(ix.l),
		uint64(ix.r),
		ix.seed,
		entries,
		uint64(ix.rbase),
		ix.gepoch,
		uint64(len(parts)),
	}
	for _, h := range header {
		if err := put(h); err != nil {
			return written, fmt.Errorf("index: write header: %w", err)
		}
	}
	if err := putSum(); err != nil {
		return written, fmt.Errorf("index: write header checksum: %w", err)
	}
	for _, pt := range parts {
		for _, h := range []uint64{uint64(pt.rbase), uint64(pt.r), uint64(len(pt.ids))} {
			if err := put(h); err != nil {
				return written, fmt.Errorf("index: write chunk header: %w", err)
			}
		}
		for _, payload := range []interface{}{pt.offsets, pt.ids, pt.hops} {
			if err := put(payload); err != nil {
				return written, fmt.Errorf("index: write payload: %w", err)
			}
		}
		if err := putSum(); err != nil {
			return written, fmt.Errorf("index: write chunk checksum: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return written, fmt.Errorf("index: flush: %w", err)
	}
	return written, nil
}

// ReadIndex deserializes an index previously written with WriteTo and binds
// it to g. It fails if the stream was built on a different graph (detected
// by fingerprint) or graph epoch, has an unknown version, or fails any of
// its CRC32-C checksums — a truncated or bit-flipped spill file is reported
// as corrupt rather than trusted to the structural checks alone. A
// single-chunk stream loads as a flat index; a multi-chunk stream loads
// chunked with its written boundaries.
func ReadIndex(r io.Reader, g *graph.Graph) (*Index, error) {
	bufr := bufio.NewReaderSize(r, 1<<20)
	sum := crc32.New(castagnoli)
	br := io.TeeReader(bufr, sum)
	// checkSum reads the section checksum from the underlying reader (it is
	// not itself checksummed) and resets the CRC for the next section.
	checkSum := func(section string) error {
		var want uint32
		if err := binary.Read(bufr, binary.LittleEndian, &want); err != nil {
			return fmt.Errorf("index: read %s checksum: %w", section, err)
		}
		if got := sum.Sum32(); got != want {
			return fmt.Errorf("index: corrupt %s: checksum %08x, want %08x", section, got, want)
		}
		sum.Reset()
		return nil
	}
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: read header: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("index: bad magic %q", magic)
	}
	var header [10]uint64
	for i := range header {
		if err := binary.Read(br, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("index: read header: %w", err)
		}
		if i == 0 && header[0] != indexVersion {
			return nil, fmt.Errorf("index: unsupported version %d (want %d)", header[0], indexVersion)
		}
	}
	fp, n, l, rr, seed, entries, rbase, gepoch, chunks := header[1], header[2], header[3], header[4], header[5], header[6], header[7], header[8], header[9]
	if got := g.Fingerprint(); got != fp {
		return nil, fmt.Errorf("index: graph fingerprint mismatch: index built on %016x, loading against %016x", fp, got)
	}
	if got := g.Epoch(); got != gepoch {
		// The fingerprint above cannot catch a delta plus its inverse (the
		// structure round-trips); the monotone epoch can.
		return nil, fmt.Errorf("index: graph epoch mismatch: index built at epoch %d, loading against epoch %d", gepoch, got)
	}
	if int(n) != g.N() {
		return nil, fmt.Errorf("index: node count mismatch: %d vs %d", n, g.N())
	}
	if l > 1<<16-1 || rr == 0 || rr > 1<<31 || rbase > 1<<31 {
		return nil, fmt.Errorf("index: implausible parameters L=%d R=%d R0=%d", l, rr, rbase)
	}
	if chunks == 0 || chunks > rr {
		return nil, fmt.Errorf("index: implausible chunk count %d for R=%d", chunks, rr)
	}
	if int64(entries) > int64(rr)*int64(n)*int64(l) {
		return nil, fmt.Errorf("index: entry count %d exceeds nRL bound %d", entries, int64(rr)*int64(n)*int64(l))
	}
	if err := checkSum("header"); err != nil {
		return nil, err
	}
	parts := make([]*Index, 0, chunks)
	next := rbase
	var total uint64
	for c := uint64(0); c < chunks; c++ {
		var sub [3]uint64
		for i := range sub {
			if err := binary.Read(br, binary.LittleEndian, &sub[i]); err != nil {
				return nil, fmt.Errorf("index: read chunk %d header: %w", c, err)
			}
		}
		c0, width, centries := sub[0], sub[1], sub[2]
		if c0 != next || width == 0 || c0+width > rbase+rr {
			return nil, fmt.Errorf("index: corrupt chunk %d range [%d, %d) (expected start %d within [%d, %d))", c, c0, c0+width, next, rbase, rbase+rr)
		}
		if int64(centries) > int64(width)*int64(n)*int64(l) {
			return nil, fmt.Errorf("index: chunk %d entry count %d exceeds its nRL bound", c, centries)
		}
		rows := int64(width) * int64(n)
		pt := &Index{
			g:       g,
			l:       int(l),
			r:       int(width),
			rbase:   int(c0),
			seed:    seed,
			gepoch:  gepoch,
			offsets: make([]int64, rows+1),
			ids:     make([]int32, centries),
			hops:    make([]uint16, centries),
		}
		for _, payload := range []interface{}{pt.offsets, pt.ids, pt.hops} {
			if err := binary.Read(br, binary.LittleEndian, payload); err != nil {
				return nil, fmt.Errorf("index: read chunk %d payload: %w", c, err)
			}
		}
		if err := checkSum(fmt.Sprintf("chunk %d", c)); err != nil {
			return nil, err
		}
		// Structural validation so corrupted files fail fast, not at query
		// time. (The CRC catches transport corruption; these catch a writer
		// that serialized garbage.)
		if pt.offsets[0] != 0 || pt.offsets[rows] != int64(centries) {
			return nil, fmt.Errorf("index: corrupt chunk %d offsets (start %d, end %d, entries %d)", c, pt.offsets[0], pt.offsets[rows], centries)
		}
		for i := int64(1); i <= rows; i++ {
			if pt.offsets[i] < pt.offsets[i-1] {
				return nil, fmt.Errorf("index: corrupt chunk %d offsets: decrease at row %d", c, i)
			}
		}
		for i, id := range pt.ids {
			if id < 0 || int(id) >= g.N() {
				return nil, fmt.Errorf("index: corrupt chunk %d entry %d: node %d out of range", c, i, id)
			}
			if pt.hops[i] == 0 || int(pt.hops[i]) > int(l) {
				return nil, fmt.Errorf("index: corrupt chunk %d entry %d: hop %d outside [1,%d]", c, i, pt.hops[i], l)
			}
		}
		parts = append(parts, pt)
		next = c0 + width
		total += centries
	}
	if next != rbase+rr {
		return nil, fmt.Errorf("index: chunks cover [%d, %d), header declares [%d, %d)", rbase, next, rbase, rbase+rr)
	}
	if total != entries {
		return nil, fmt.Errorf("index: chunks hold %d entries, header declares %d", total, entries)
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return &Index{
		g:      g,
		l:      int(l),
		r:      int(rr),
		rbase:  int(rbase),
		seed:   seed,
		gepoch: gepoch,
		parts:  parts,
	}, nil
}

// SaveFile writes the index to a file.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("index: %w", err)
	}
	return nil
}

// LoadFile reads an index from a file and binds it to g.
func LoadFile(path string, g *graph.Graph) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	defer f.Close()
	return ReadIndex(f, g)
}
