package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/graph"
)

// Serialization of materialized walk indexes. Building the index is the
// dominant cost of the approximate greedy algorithm (Fig. 8), and the same
// index serves every budget and both problems, so persisting it across runs
// is the natural production optimization. The format is a little-endian
// binary layout with a magic header, a version byte, and the fingerprint of
// the graph the index was built on; loading against a structurally different
// graph is rejected.

const (
	indexMagic = "RWDOMIDX"
	// indexVersion 2 switched the row order from replicate-major (i·n+v) to
	// candidate-major (v·R+i); version 3 added the build seed to the header
	// so a loader can verify the full build identity (previously only L and
	// R were recoverable, letting a stale or path-colliding spill file
	// impersonate an index built with a different seed); version 4 appended a
	// CRC32-C trailer over the magic, header and payload, so silently
	// corrupted spill files (torn writes, truncation, bit rot) are detected
	// at load time — forcing a rebuild — instead of surviving the structural
	// checks and shifting every served answer; version 5 appended the first
	// replicate number (R0) to the header so a partial index built over a
	// replicate range [r0, r1) round-trips its range identity and a spilled
	// shard slice can never be warm-loaded as a full build (or as a
	// different shard's slice); version 6 appended the graph mutation epoch,
	// so once graphs can change at runtime (graph.ApplyDelta) a spill file
	// written before a mutation is rejected on restart instead of silently
	// serving pre-mutation walks — including when a delta and its inverse
	// leave the structure (and thus the fingerprint) identical but the
	// lineage two epochs newer. Older versions are rejected rather than
	// silently misread, forcing a cheap rebuild.
	indexVersion = 6
)

// castagnoli is the CRC32-C polynomial table the v4 trailer uses (the same
// checksum iSCSI and ext4 use; hardware-accelerated on amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteTo serializes the index. It implements io.WriterTo. Everything from
// the magic through the payload is covered by a trailing CRC32-C, verified
// by ReadIndex. A patched (post-Repair) index is serialized in its canonical
// compacted form, computed on a copy — the receiver is not mutated.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	ix = ix.compacted()
	bw := bufio.NewWriterSize(w, 1<<20)
	sum := crc32.New(castagnoli)
	cw := io.MultiWriter(bw, sum)
	var written int64
	put := func(data interface{}) error {
		if err := binary.Write(cw, binary.LittleEndian, data); err != nil {
			return err
		}
		written += int64(binary.Size(data))
		return nil
	}
	if _, err := io.WriteString(cw, indexMagic); err != nil {
		return written, fmt.Errorf("index: write header: %w", err)
	}
	written += int64(len(indexMagic))
	header := []uint64{
		indexVersion,
		ix.g.Fingerprint(),
		uint64(ix.g.N()),
		uint64(ix.l),
		uint64(ix.r),
		ix.seed,
		uint64(len(ix.ids)),
		uint64(ix.rbase),
		ix.gepoch,
	}
	for _, h := range header {
		if err := put(h); err != nil {
			return written, fmt.Errorf("index: write header: %w", err)
		}
	}
	for _, chunk := range []interface{}{ix.offsets, ix.ids, ix.hops} {
		if err := put(chunk); err != nil {
			return written, fmt.Errorf("index: write payload: %w", err)
		}
	}
	// The trailer is written outside the checksummed writer: it covers the
	// stream, it is not part of it.
	if err := binary.Write(bw, binary.LittleEndian, sum.Sum32()); err != nil {
		return written, fmt.Errorf("index: write checksum: %w", err)
	}
	written += 4
	if err := bw.Flush(); err != nil {
		return written, fmt.Errorf("index: flush: %w", err)
	}
	return written, nil
}

// ReadIndex deserializes an index previously written with WriteTo and binds
// it to g. It fails if the stream was built on a different graph (detected
// by fingerprint), has an unknown version, or fails its CRC32-C trailer —
// a truncated or bit-flipped spill file is reported as corrupt rather than
// trusted to the structural checks alone.
func ReadIndex(r io.Reader, g *graph.Graph) (*Index, error) {
	bufr := bufio.NewReaderSize(r, 1<<20)
	sum := crc32.New(castagnoli)
	br := io.TeeReader(bufr, sum)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: read header: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("index: bad magic %q", magic)
	}
	var header [9]uint64
	for i := range header {
		if err := binary.Read(br, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("index: read header: %w", err)
		}
		if i == 0 && header[0] != indexVersion {
			return nil, fmt.Errorf("index: unsupported version %d (want %d)", header[0], indexVersion)
		}
	}
	fp, n, l, rr, seed, entries, rbase, gepoch := header[1], header[2], header[3], header[4], header[5], header[6], header[7], header[8]
	if got := g.Fingerprint(); got != fp {
		return nil, fmt.Errorf("index: graph fingerprint mismatch: index built on %016x, loading against %016x", fp, got)
	}
	if got := g.Epoch(); got != gepoch {
		// The fingerprint above cannot catch a delta plus its inverse (the
		// structure round-trips); the monotone epoch can.
		return nil, fmt.Errorf("index: graph epoch mismatch: index built at epoch %d, loading against epoch %d", gepoch, got)
	}
	if int(n) != g.N() {
		return nil, fmt.Errorf("index: node count mismatch: %d vs %d", n, g.N())
	}
	if l > 1<<16-1 || rr == 0 || rr > 1<<31 || rbase > 1<<31 {
		return nil, fmt.Errorf("index: implausible parameters L=%d R=%d R0=%d", l, rr, rbase)
	}
	rows := int64(rr) * int64(n)
	maxEntries := rows * int64(l)
	if int64(entries) > maxEntries {
		return nil, fmt.Errorf("index: entry count %d exceeds nRL bound %d", entries, maxEntries)
	}
	ix := &Index{
		g:       g,
		l:       int(l),
		r:       int(rr),
		rbase:   int(rbase),
		seed:    seed,
		gepoch:  gepoch,
		offsets: make([]int64, rows+1),
		ids:     make([]int32, entries),
		hops:    make([]uint16, entries),
	}
	for _, chunk := range []interface{}{ix.offsets, ix.ids, ix.hops} {
		if err := binary.Read(br, binary.LittleEndian, chunk); err != nil {
			return nil, fmt.Errorf("index: read payload: %w", err)
		}
	}
	// The CRC trailer is read from the underlying reader, not the teed one:
	// it covers the stream, it is not part of it.
	var want uint32
	if err := binary.Read(bufr, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("index: read checksum: %w", err)
	}
	if got := sum.Sum32(); got != want {
		return nil, fmt.Errorf("index: corrupt stream: checksum %08x, want %08x", got, want)
	}
	// Structural validation so corrupted files fail fast, not at query time.
	if ix.offsets[0] != 0 || ix.offsets[rows] != int64(entries) {
		return nil, fmt.Errorf("index: corrupt offsets (start %d, end %d, entries %d)", ix.offsets[0], ix.offsets[rows], entries)
	}
	for i := int64(1); i <= rows; i++ {
		if ix.offsets[i] < ix.offsets[i-1] {
			return nil, fmt.Errorf("index: corrupt offsets: decrease at row %d", i)
		}
	}
	for i, id := range ix.ids {
		if id < 0 || int(id) >= g.N() {
			return nil, fmt.Errorf("index: corrupt entry %d: node %d out of range", i, id)
		}
		if ix.hops[i] == 0 || int(ix.hops[i]) > int(l) {
			return nil, fmt.Errorf("index: corrupt entry %d: hop %d outside [1,%d]", i, ix.hops[i], l)
		}
	}
	return ix, nil
}

// SaveFile writes the index to a file.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("index: %w", err)
	}
	return nil
}

// LoadFile reads an index from a file and binds it to g.
func LoadFile(path string, g *graph.Graph) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: %w", err)
	}
	defer f.Close()
	return ReadIndex(f, g)
}
