package index

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/hitting"
	"repro/internal/rng"
)

// paperWalks returns the fixed 2-length walks of Example 3.1, node v_i of
// the paper being node i−1: (v1,v2,v3), (v2,v3,v5), (v3,v2,v5), (v4,v7,v5),
// (v5,v2,v6), (v6,v7,v5), (v7,v5,v7), (v8,v7,v4).
func paperWalks() [][][]int32 {
	raw := [][]int32{
		{0, 1, 2},
		{1, 2, 4},
		{2, 1, 4},
		{3, 6, 4},
		{4, 1, 5},
		{5, 6, 4},
		{6, 4, 6},
		{7, 6, 3},
	}
	walks := make([][][]int32, len(raw))
	for w := range raw {
		walks[w] = [][]int32{raw[w]}
	}
	return walks
}

func paperIndex(t *testing.T) *Index {
	t.Helper()
	ix, err := BuildFromWalks(graph.PaperExample(), 2, 1, paperWalks())
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestPaperTable1InvertedIndex(t *testing.T) {
	// The index must reproduce Table 1 of the paper exactly.
	ix := paperIndex(t)
	want := map[int][]struct {
		id  int32
		hop uint16
	}{
		0: {},
		1: {{0, 1}, {2, 1}, {4, 1}},
		2: {{0, 2}, {1, 1}},
		3: {{7, 2}},
		4: {{1, 2}, {2, 2}, {3, 2}, {5, 2}, {6, 1}},
		5: {{4, 2}},
		6: {{3, 1}, {5, 1}, {7, 1}},
		7: {},
	}
	for v, entries := range want {
		ids, hops := ix.Row(0, v)
		if len(ids) != len(entries) {
			t.Fatalf("row v%d: %d entries, want %d (ids=%v)", v+1, len(ids), len(entries), ids)
		}
		got := map[int32]uint16{}
		for e := range ids {
			got[ids[e]] = hops[e]
		}
		for _, ent := range entries {
			if got[ent.id] != ent.hop {
				t.Errorf("row v%d: entry <v%d,%d> missing or wrong hop (got %d)", v+1, ent.id+1, ent.hop, got[ent.id])
			}
		}
	}
	// The repeated v7 in walk (v7, v5, v7) must not be indexed: v7's row in
	// I[1][7] has no self entry, checked above by the 3-entry count.
}

func TestPaperExample31GainsRound1(t *testing.T) {
	// Marginal gains at S=∅ must match the paper: σv1=2, σv2=5, σv3=3,
	// σv4=2, σv5=3, σv6=2, σv7=5, σv8=2.
	ix := paperIndex(t)
	d, err := ix.NewDTable(Problem1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 5, 3, 2, 3, 2, 5, 2}
	for u, w := range want {
		if got := d.Gain(u); got != w {
			t.Errorf("σ_v%d(∅) = %v, want %v", u+1, got, w)
		}
	}
}

func TestPaperExample31SelectionSequence(t *testing.T) {
	// Greedy on the fixed samples selects {v2, v7} (paper breaks the v2/v7
	// tie toward v2; our argmax keeps the first maximum, and v2 < v7).
	ix := paperIndex(t)
	d, _ := ix.NewDTable(Problem1)
	argmax := func() int {
		best, bestGain := -1, math.Inf(-1)
		for u := 0; u < ix.Graph().N(); u++ {
			if g := d.Gain(u); g > bestGain {
				best, bestGain = u, g
			}
		}
		return best
	}
	first := argmax()
	if first != 1 {
		t.Fatalf("round 1 selected v%d, want v2", first+1)
	}
	d.Update(first)
	second := argmax()
	if second != 6 {
		t.Fatalf("round 2 selected v%d, want v7", second+1)
	}
}

func TestPaperExample31DTableAfterUpdate(t *testing.T) {
	// After selecting v2: D[v2]=0 and D[v1], D[v3], D[v5] become 1; all
	// others stay 2 (paper, Example 3.1).
	ix := paperIndex(t)
	d, _ := ix.NewDTable(Problem1)
	d.Update(1)
	want := []uint16{1, 0, 1, 2, 1, 2, 2, 2}
	for u, w := range want {
		if d.d[u] != w {
			t.Errorf("D[v%d] = %d, want %d", u+1, d.d[u], w)
		}
	}
}

func TestGainEqualsObjectiveDelta(t *testing.T) {
	// For both problems, Gain(u) must equal the change in the sampled
	// objective caused by Update(u), at every greedy stage. This pins the
	// Algorithm 4 / Algorithm 5 arithmetic to the estimator semantics.
	g, err := graph.BarabasiAlbert(80, 3, 21)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, 5, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Problem{Problem1, Problem2} {
		d, err := ix.NewDTable(p)
		if err != nil {
			t.Fatal(err)
		}
		members := make([]bool, g.N())
		seq := []int{3, 17, 42, 5}
		for _, u := range seq {
			before := d.EstimateObjective(members)
			gain := d.Gain(u)
			d.Update(u)
			members[u] = true
			after := d.EstimateObjective(members)
			if math.Abs((after-before)-gain) > 1e-9 {
				t.Fatalf("%v: Δobjective=%v but gain=%v after adding %d", p, after-before, gain, u)
			}
		}
	}
}

func TestGainSubmodularOnSamples(t *testing.T) {
	// The sampled objective is submodular sample-by-sample, so gains must
	// never increase as the set grows (this is what justifies CELF on the
	// materialized samples).
	g, _ := graph.BarabasiAlbert(60, 3, 4)
	ix, err := Build(g, 4, 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Problem{Problem1, Problem2} {
		d, _ := ix.NewDTable(p)
		const candidate = 30
		prev := d.Gain(candidate)
		for _, u := range []int{2, 9, 44, 51} {
			d.Update(u)
			cur := d.Gain(candidate)
			if cur > prev+1e-9 {
				t.Fatalf("%v: gain of %d grew from %v to %v after adding %d", p, candidate, prev, cur, u)
			}
			prev = cur
		}
	}
}

func TestIndexEstimatesMatchExactDP(t *testing.T) {
	// With generous R, the index-based objective estimate approximates the
	// exact DP objective for a fixed set.
	g, _ := graph.BarabasiAlbert(100, 3, 8)
	const L = 5
	ix, err := Build(g, L, 600, 17)
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := hitting.NewEvaluator(g, L)
	S := []int{0, 13, 57}
	members := make([]bool, g.N())
	for _, p := range []Problem{Problem1, Problem2} {
		d, _ := ix.NewDTable(p)
		for i := range members {
			members[i] = false
		}
		for _, u := range S {
			d.Update(u)
			members[u] = true
		}
		got := d.EstimateObjective(members)
		var want float64
		if p == Problem1 {
			want, _ = ev.F1(S)
			if math.Abs(got-want) > 0.03*float64(g.N())*L {
				t.Errorf("F̂1=%v exact=%v", got, want)
			}
		} else {
			want, _ = ev.F2(S)
			if math.Abs(got-want) > 0.03*float64(g.N()) {
				t.Errorf("F̂2=%v exact=%v", got, want)
			}
		}
	}
}

func TestGainApproximatesExactMarginal(t *testing.T) {
	// With generous R, the index gain at a non-empty stage must approximate
	// the exact DP marginal gain for both problems (this is the statistical
	// core of the 1−1/e−ε claim).
	g, _ := graph.BarabasiAlbert(80, 3, 31)
	const L = 5
	ix, err := Build(g, L, 800, 3)
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := hitting.NewEvaluator(g, L)
	base := []int{4, 61}
	candidates := []int{0, 17, 40, 79}
	for _, p := range []Problem{Problem1, Problem2} {
		d, _ := ix.NewDTable(p)
		for _, u := range base {
			d.Update(u)
		}
		for _, u := range candidates {
			got := d.Gain(u)
			withU := append(append([]int(nil), base...), u)
			var want, tol float64
			if p == Problem1 {
				fS, _ := ev.F1(base)
				fSu, _ := ev.F1(withU)
				want = fSu - fS
				tol = 0.05 * float64(g.N()) * L / 10 // generous: marginals are small differences
			} else {
				fS, _ := ev.F2(base)
				fSu, _ := ev.F2(withU)
				want = fSu - fS
				tol = 0.05 * float64(g.N()) / 2
			}
			if math.Abs(got-want) > tol {
				t.Errorf("%v gain(%d | %v) = %v, exact %v (tol %v)", p, u, base, got, want, tol)
			}
		}
	}
}

func TestBuildValidation(t *testing.T) {
	g, _ := graph.Path(3)
	if _, err := Build(g, -1, 5, 1); err == nil {
		t.Error("negative L accepted")
	}
	if _, err := Build(g, 5, 0, 1); err == nil {
		t.Error("R=0 accepted")
	}
	if _, err := Build(g, 1<<17, 5, 1); err == nil {
		t.Error("oversized L accepted")
	}
}

func TestBuildFromWalksValidation(t *testing.T) {
	g, _ := graph.Path(3)
	mk := func(w ...[]int32) [][][]int32 {
		out := make([][][]int32, len(w))
		for i := range w {
			out[i] = [][]int32{w[i]}
		}
		return out
	}
	if _, err := BuildFromWalks(g, 2, 1, mk([]int32{0, 1}, []int32{1, 0})); err == nil {
		t.Error("wrong node count accepted")
	}
	if _, err := BuildFromWalks(g, 2, 1, mk([]int32{1, 0}, []int32{1, 0}, []int32{2, 1})); err == nil {
		t.Error("walk not starting at its node accepted")
	}
	if _, err := BuildFromWalks(g, 1, 1, mk([]int32{0, 1, 0}, []int32{1}, []int32{2})); err == nil {
		t.Error("overlong walk accepted")
	}
	if _, err := BuildFromWalks(g, 2, 1, mk([]int32{0, 9}, []int32{1}, []int32{2})); err == nil {
		t.Error("out-of-range visit accepted")
	}
	if _, err := BuildFromWalks(g, 2, 2, mk([]int32{0}, []int32{1}, []int32{2})); err == nil {
		t.Error("R mismatch accepted")
	}
	if _, err := BuildFromWalks(g, 2, 0, nil); err == nil {
		t.Error("R=0 accepted")
	}
}

func TestNewDTableValidation(t *testing.T) {
	g, _ := graph.Path(3)
	ix, _ := Build(g, 2, 2, 1)
	if _, err := ix.NewDTable(Problem(7)); err == nil {
		t.Error("unknown problem accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	g, _ := graph.BarabasiAlbert(50, 2, 3)
	a, _ := Build(g, 4, 5, 42)
	b, _ := Build(g, 4, 5, 42)
	if a.Entries() != b.Entries() {
		t.Fatalf("entry counts differ: %d vs %d", a.Entries(), b.Entries())
	}
	for i := range a.ids {
		if a.ids[i] != b.ids[i] || a.hops[i] != b.hops[i] {
			t.Fatal("index contents differ for identical seed")
		}
	}
}

func TestEntriesBoundedByNRL(t *testing.T) {
	g, _ := graph.BarabasiAlbert(200, 3, 6)
	const L, R = 6, 10
	ix, _ := Build(g, L, R, 2)
	if ix.Entries() > int64(g.N())*L*R {
		t.Fatalf("entries %d exceed nRL=%d", ix.Entries(), g.N()*L*R)
	}
	if ix.MemoryBytes() <= 0 {
		t.Fatal("memory accounting broken")
	}
	if ix.L() != L || ix.R() != R || ix.Graph() != g {
		t.Fatal("accessors broken")
	}
}

func TestCloneIndependence(t *testing.T) {
	g, _ := graph.BarabasiAlbert(30, 2, 5)
	ix, _ := Build(g, 3, 4, 9)
	d, _ := ix.NewDTable(Problem1)
	c := d.Clone()
	c.Update(3)
	if d.Size() != 0 || c.Size() != 1 {
		t.Fatalf("clone sizes: original %d clone %d", d.Size(), c.Size())
	}
	if d.Gain(3) != float64(ixGainFresh(ix, 3)) {
		t.Fatal("original table mutated by clone update")
	}
}

func ixGainFresh(ix *Index, u int) float64 {
	d, _ := ix.NewDTable(Problem1)
	return d.Gain(u)
}

func TestProblemString(t *testing.T) {
	if Problem1.String() != "F1" || Problem2.String() != "F2" {
		t.Fatal("Problem.String wrong")
	}
	if Problem(5).String() == "" {
		t.Fatal("unknown problem string empty")
	}
}

func BenchmarkBuild(b *testing.B) {
	g, _ := graph.BarabasiAlbert(2000, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, 6, 20, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGainAllNodes(b *testing.B) {
	g, _ := graph.BarabasiAlbert(2000, 5, 1)
	ix, _ := Build(g, 6, 20, 1)
	d, _ := ix.NewDTable(Problem1)
	r := rng.New(7)
	for i := 0; i < 5; i++ {
		d.Update(r.Intn(g.N()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink float64
		for u := 0; u < g.N(); u++ {
			sink += d.Gain(u)
		}
		_ = sink
	}
}
