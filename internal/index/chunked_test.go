package index

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// chunkCases covers the chunk-boundary degeneracies: an even split, a ragged
// last chunk (R % C != 0), R < C (one short chunk), a single exact chunk
// (C == R), and one-replicate chunks (C == 1).
var chunkCases = []struct {
	name     string
	R, chunk int
}{
	{"even", 12, 4},
	{"ragged", 10, 3},
	{"r_lt_c", 4, 16},
	{"single", 8, 8},
	{"unit", 6, 1},
}

// TestChunkedBitParity pins the tentpole invariant: a chunked index answers
// every query — gains, empty-set gains, objectives, greedy selections —
// bit-identically to the flat build of the same total width, for both
// problems, at every chunk-boundary degeneracy and worker count.
func TestChunkedBitParity(t *testing.T) {
	g, _ := graph.BarabasiAlbert(150, 3, 11)
	const L = 5
	for _, tc := range chunkCases {
		for _, workers := range []int{1, 4} {
			flat, err := BuildWorkers(g, L, tc.R, 42, workers)
			if err != nil {
				t.Fatal(err)
			}
			chk, err := BuildChunkedWorkers(g, L, tc.R, 42, tc.chunk, workers)
			if err != nil {
				t.Fatal(err)
			}
			wantChunks := (tc.R + tc.chunk - 1) / tc.chunk
			if !chk.Chunked() || chk.Chunks() != wantChunks {
				t.Fatalf("%s/w%d: Chunks() = %d, want %d", tc.name, workers, chk.Chunks(), wantChunks)
			}
			if chk.R() != flat.R() || chk.Entries() != flat.Entries() {
				t.Fatalf("%s/w%d: R/Entries mismatch: %d/%d vs %d/%d", tc.name, workers, chk.R(), chk.Entries(), flat.R(), flat.Entries())
			}
			for _, p := range []Problem{Problem1, Problem2} {
				fe, _ := flat.EmptySetGains(p)
				ce, _ := chk.EmptySetGains(p)
				for u := range fe {
					if fe[u] != ce[u] {
						t.Fatalf("%s/w%d/%v: empty-set gain mismatch at %d: %v vs %v", tc.name, workers, p, u, fe[u], ce[u])
					}
				}
				ft, _ := flat.NewDTable(p)
				ct, _ := chk.NewDTable(p)
				members := make([]bool, g.N())
				for round := 0; round < 4; round++ {
					best, bestGain := -1, 0.0
					for u := 0; u < g.N(); u++ {
						if members[u] {
							continue
						}
						fg, cg := ft.Gain(u), ct.Gain(u)
						if fg != cg {
							t.Fatalf("%s/w%d/%v: gain mismatch at %d round %d: %v vs %v", tc.name, workers, p, u, round, fg, cg)
						}
						if best < 0 || fg > bestGain {
							best, bestGain = u, fg
						}
					}
					if fo, co := ft.EstimateObjective(members), ct.EstimateObjective(members); fo != co {
						t.Fatalf("%s/w%d/%v: objective mismatch round %d: %v vs %v", tc.name, workers, p, round, fo, co)
					}
					if fs, cs := ft.ObjectiveSum(members), ct.ObjectiveSum(members); fs != cs {
						t.Fatalf("%s/w%d/%v: objective sum mismatch round %d: %d vs %d", tc.name, workers, p, round, fs, cs)
					}
					ft.Update(best)
					ct.Update(best)
					members[best] = true
				}
			}
		}
	}
}

// TestChunkedRows pins that Row delegates to the owning chunk: every
// (replicate, node) row matches the flat build entry for entry.
func TestChunkedRows(t *testing.T) {
	g, _ := graph.BarabasiAlbert(60, 2, 3)
	flat, _ := BuildWorkers(g, 4, 10, 7, 2)
	chk, _ := BuildChunkedWorkers(g, 4, 10, 7, 3, 2)
	for i := 0; i < 10; i++ {
		for v := 0; v < g.N(); v++ {
			fi, fh := flat.Row(i, v)
			ci, ch := chk.Row(i, v)
			if len(fi) != len(ci) {
				t.Fatalf("row (%d, %d): %d vs %d entries", i, v, len(fi), len(ci))
			}
			for e := range fi {
				if fi[e] != ci[e] || fh[e] != ch[e] {
					t.Fatalf("row (%d, %d) entry %d mismatch", i, v, e)
				}
			}
		}
	}
}

// TestExtendReplicatesParity pins lazy growth: a chunked index extended in
// uneven steps answers exactly as a from-scratch build of the final width,
// and D-tables follow along via SyncChunks replaying their history.
func TestExtendReplicatesParity(t *testing.T) {
	g, _ := graph.BarabasiAlbert(120, 3, 5)
	const L, R = 5, 11
	for _, p := range []Problem{Problem1, Problem2} {
		full, _ := BuildWorkers(g, L, R, 9, 2)
		ref, _ := full.NewDTable(p)
		chk, err := BuildChunkedWorkers(g, L, 3, 9, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		ct, _ := chk.NewDTable(p)
		// Select two nodes at the narrow width, then grow 3 → 7 → 11.
		ref.Update(1)
		ref.Update(17)
		ct.Update(1)
		ct.Update(17)
		for _, step := range []int{4, 4} {
			if err := chk.ExtendReplicates(step, 2); err != nil {
				t.Fatal(err)
			}
			if err := ct.SyncChunks(); err != nil {
				t.Fatal(err)
			}
		}
		if chk.R() != R || chk.Chunks() != 3 {
			t.Fatalf("after extension: R = %d chunks = %d, want %d/3", chk.R(), chk.Chunks(), R)
		}
		for u := 0; u < g.N(); u++ {
			if rg, cg := ref.Gain(u), ct.Gain(u); rg != cg {
				t.Fatalf("%v: gain mismatch at %d after extension: %v vs %v", p, u, rg, cg)
			}
		}
		members := make([]bool, g.N())
		members[1], members[17] = true, true
		if ro, co := ref.EstimateObjective(members), ct.EstimateObjective(members); ro != co {
			t.Fatalf("%v: objective mismatch after extension: %v vs %v", p, ro, co)
		}
	}
}

// TestExtendReplicatesErrors pins the extension contract: flat indexes and
// non-positive widths are rejected.
func TestExtendReplicatesErrors(t *testing.T) {
	g, _ := graph.BarabasiAlbert(40, 2, 1)
	flat, _ := Build(g, 3, 4, 2)
	if err := flat.ExtendReplicates(2, 1); err == nil {
		t.Fatal("ExtendReplicates on a flat index accepted")
	}
	chk, _ := BuildChunkedWorkers(g, 3, 4, 2, 2, 1)
	if err := chk.ExtendReplicates(0, 1); err == nil {
		t.Fatal("zero-width extension accepted")
	}
}

// TestAppendReplicateGainSums pins the CI sampling primitive: one value per
// materialized replicate, summing exactly to the integer gain, identical
// between flat and chunked layouts.
func TestAppendReplicateGainSums(t *testing.T) {
	g, _ := graph.BarabasiAlbert(80, 3, 13)
	flat, _ := BuildWorkers(g, 4, 9, 21, 2)
	chk, _ := BuildChunkedWorkers(g, 4, 9, 21, 4, 2)
	for _, p := range []Problem{Problem1, Problem2} {
		ft, _ := flat.NewDTable(p)
		ct, _ := chk.NewDTable(p)
		ft.Update(5)
		ct.Update(5)
		for _, u := range []int{0, 5, 12, 79} {
			fs := ft.AppendReplicateGainSums(u, nil)
			cs := ct.AppendReplicateGainSums(u, nil)
			if len(fs) != 9 || len(cs) != 9 {
				t.Fatalf("%v: %d/%d samples, want 9", p, len(fs), len(cs))
			}
			var sum int64
			for i := range fs {
				if fs[i] != cs[i] {
					t.Fatalf("%v: sample %d of node %d differs: %d vs %d", p, i, u, fs[i], cs[i])
				}
				sum += fs[i]
			}
			if sum != ft.gainInt(u) {
				t.Fatalf("%v: samples sum to %d, gainInt is %d", p, sum, ft.gainInt(u))
			}
		}
	}
}

// TestMaxRowLenParity pins the CI range bound across layouts.
func TestMaxRowLenParity(t *testing.T) {
	g, _ := graph.BarabasiAlbert(70, 3, 17)
	flat, _ := BuildWorkers(g, 5, 8, 4, 1)
	chk, _ := BuildChunkedWorkers(g, 5, 8, 4, 3, 1)
	for u := 0; u < g.N(); u++ {
		if fm, cm := flat.MaxRowLen(u), chk.MaxRowLen(u); fm != cm {
			t.Fatalf("MaxRowLen(%d): %d vs %d", u, fm, cm)
		}
	}
}

// TestChunkedSerializeRoundTrip pins the v7 container: a chunked index
// round-trips with its chunk boundaries intact and identical answers, and a
// flat index still loads back flat.
func TestChunkedSerializeRoundTrip(t *testing.T) {
	g, _ := graph.BarabasiAlbert(90, 3, 19)
	chk, _ := BuildChunkedWorkers(g, 4, 10, 33, 4, 2)
	var buf bytes.Buffer
	nw, err := chk.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nw != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", nw, buf.Len())
	}
	back, err := ReadIndex(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Chunked() || back.Chunks() != 3 || back.R() != 10 || back.Entries() != chk.Entries() {
		t.Fatalf("round trip lost chunk structure: chunks = %d R = %d", back.Chunks(), back.R())
	}
	for _, p := range []Problem{Problem1, Problem2} {
		a, _ := chk.NewDTable(p)
		b, _ := back.NewDTable(p)
		for _, u := range []int{0, 7, 44, 89} {
			if a.Gain(u) != b.Gain(u) {
				t.Fatalf("%v: gain mismatch at %d after round trip", p, u)
			}
			a.Update(u)
			b.Update(u)
		}
	}
	flat, _ := Build(g, 4, 10, 33)
	buf.Reset()
	if _, err := flat.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	fb, err := ReadIndex(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Chunked() {
		t.Fatal("flat index loaded back chunked")
	}
}

// TestChunkedCorruptChunkRejected flips one payload byte of a middle chunk
// and expects the per-chunk CRC to report it.
func TestChunkedCorruptChunkRejected(t *testing.T) {
	g, _ := graph.BarabasiAlbert(60, 2, 23)
	chk, _ := BuildChunkedWorkers(g, 4, 9, 3, 3, 1)
	var buf bytes.Buffer
	if _, err := chk.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0x10
	if _, err := ReadIndex(bytes.NewReader(bad), g); err == nil {
		t.Fatal("corrupt chunk accepted")
	}
}

// TestChunkedRepairParity pins incremental repair across chunks: repairing a
// chunked index after a graph delta answers exactly as a fresh chunked (and
// flat) build against the mutated graph.
func TestChunkedRepairParity(t *testing.T) {
	g, _ := graph.BarabasiAlbert(100, 3, 29)
	chk, err := BuildChunkedWorkers(g, 5, 10, 77, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ng, touched, err := g.ApplyDelta(graph.Delta{
		AddEdges:    []graph.Edge{{U: 3, V: 90}, {U: 50, V: 51}},
		RemoveEdges: []graph.Edge{{U: 0, V: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := chk.Repair(ng, touched); err != nil {
		t.Fatal(err)
	}
	if chk.GraphEpoch() != ng.Epoch() {
		t.Fatalf("epoch after repair = %d, want %d", chk.GraphEpoch(), ng.Epoch())
	}
	rebuiltChk, _ := BuildChunkedWorkers(ng, 5, 10, 77, 4, 2)
	rebuiltFlat, _ := BuildWorkers(ng, 5, 10, 77, 2)
	for _, p := range []Problem{Problem1, Problem2} {
		a, _ := chk.NewDTable(p)
		b, _ := rebuiltChk.NewDTable(p)
		c, _ := rebuiltFlat.NewDTable(p)
		for u := 0; u < ng.N(); u++ {
			if a.Gain(u) != b.Gain(u) || a.Gain(u) != c.Gain(u) {
				t.Fatalf("%v: repaired gain at %d diverges from rebuild", p, u)
			}
		}
		a.Update(42)
		b.Update(42)
		c.Update(42)
		members := make([]bool, ng.N())
		members[42] = true
		if a.EstimateObjective(members) != b.EstimateObjective(members) || a.EstimateObjective(members) != c.EstimateObjective(members) {
			t.Fatalf("%v: repaired objective diverges from rebuild", p)
		}
	}
	// Compacting every chunk must reproduce the rebuild's physical arrays.
	chk.Compact()
	for ci, pt := range chk.parts {
		ref := rebuiltChk.parts[ci]
		if len(pt.ids) != len(ref.ids) {
			t.Fatalf("chunk %d: %d ids after compacted repair, rebuild has %d", ci, len(pt.ids), len(ref.ids))
		}
		for e := range pt.ids {
			if pt.ids[e] != ref.ids[e] || pt.hops[e] != ref.hops[e] {
				t.Fatalf("chunk %d: entry %d diverges from rebuild", ci, e)
			}
		}
	}
}

// TestChunkedSnapshotExtendFrom pins the memo-path state transfer on
// chunked tables, including invalidation when a sync widens the source.
func TestChunkedSnapshotExtendFrom(t *testing.T) {
	g, _ := graph.BarabasiAlbert(80, 2, 31)
	chk, _ := BuildChunkedWorkers(g, 4, 8, 5, 3, 1)
	src, _ := chk.NewDTable(Problem2)
	src.Update(2)
	snap := src.Snapshot()
	dst, _ := chk.NewDTable(Problem2)
	if err := dst.ExtendFrom(snap, 9); err != nil {
		t.Fatal(err)
	}
	want, _ := chk.NewDTable(Problem2)
	want.Update(2)
	want.Update(9)
	for u := 0; u < g.N(); u++ {
		if dst.Gain(u) != want.Gain(u) {
			t.Fatalf("extended table diverges at %d", u)
		}
	}
	// Widening the source invalidates its outstanding snapshots.
	if err := chk.ExtendReplicates(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := src.SyncChunks(); err != nil {
		t.Fatal(err)
	}
	fresh, _ := chk.NewDTable(Problem2)
	if err := fresh.ExtendFrom(snap); err == nil {
		t.Fatal("stale snapshot accepted after SyncChunks widened its source")
	}
}
