package index

import (
	"reflect"
	"slices"
	"strings"
	"testing"

	"repro/internal/graph"
)

// applyAndRepair applies d to g, repairs ix in place, and returns the
// mutated graph.
func applyAndRepair(t testing.TB, ix *Index, g *graph.Graph, d graph.Delta) *graph.Graph {
	t.Helper()
	ng, touched, err := g.ApplyDelta(d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if err := ix.Repair(ng, touched); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	return ng
}

// assertRebuildParity asserts the repaired index is bit-identical to a fresh
// build against its current graph: same row contents walk-for-walk, and —
// once compacted — the exact same CSR arrays.
func assertRebuildParity(t testing.TB, ix *Index, workers int) {
	t.Helper()
	ref, err := BuildRangeWorkers(ix.Graph(), ix.L(), ix.Seed(), ix.R0(), ix.R0()+ix.R(), workers)
	if err != nil {
		t.Fatalf("reference rebuild: %v", err)
	}
	n := ix.Graph().N()
	for v := 0; v < n; v++ {
		for i := 0; i < ix.R(); i++ {
			gotIDs, gotHops := ix.Row(i, v)
			wantIDs, wantHops := ref.Row(i, v)
			if !slices.Equal(gotIDs, wantIDs) || !slices.Equal(gotHops, wantHops) {
				t.Fatalf("row (%d,%d) diverged: got %v/%v want %v/%v", i, v, gotIDs, gotHops, wantIDs, wantHops)
			}
		}
	}
	c := ix.compacted()
	if !reflect.DeepEqual(c.offsets, ref.offsets) || !reflect.DeepEqual(c.ids, ref.ids) || !reflect.DeepEqual(c.hops, ref.hops) {
		t.Fatal("compacted repair is not bit-identical to a fresh rebuild")
	}
	if c.gepoch != ref.gepoch {
		t.Fatalf("graph epoch diverged: repaired %d, rebuilt %d", c.gepoch, ref.gepoch)
	}
	if got, want := ix.Entries(), ref.Entries(); got != want {
		t.Fatalf("Entries() = %d, want %d", got, want)
	}
}

// TestRepairMatchesRebuild drives a delta sequence (edge adds, removals,
// node growth, a structural round-trip) through Repair and asserts parity
// with a from-scratch rebuild after every step, across worker counts and a
// partial replicate range.
func TestRepairMatchesRebuild(t *testing.T) {
	deltas := []graph.Delta{
		{AddEdges: []graph.Edge{{U: 3, V: 90}, {U: 0, V: 111}}},
		{RemoveEdges: []graph.Edge{{U: 3, V: 90}}},
		{AddNodes: 2, AddEdges: []graph.Edge{{U: 150, V: 151}, {U: 7, V: 150}}},
		{AddEdges: []graph.Edge{{U: 3, V: 90}}}, // round-trips delta 2's removal
		{RemoveEdges: []graph.Edge{{U: 0, V: 111}, {U: 7, V: 150}}},
	}
	builds := []struct {
		name    string
		r0, r1  int
		workers int
	}{
		{"full/workers=1", 0, 6, 1},
		{"full/workers=4", 0, 6, 4},
		{"partial[2,5)/workers=2", 2, 5, 2},
	}
	for _, bc := range builds {
		t.Run(bc.name, func(t *testing.T) {
			g, err := graph.BarabasiAlbert(150, 3, 11)
			if err != nil {
				t.Fatal(err)
			}
			ix, err := BuildRangeWorkers(g, 6, 9, bc.r0, bc.r1, bc.workers)
			if err != nil {
				t.Fatal(err)
			}
			for i, d := range deltas {
				g = applyAndRepair(t, ix, g, d)
				if ix.GraphEpoch() != uint64(i+1) {
					t.Fatalf("delta %d: GraphEpoch = %d, want %d", i, ix.GraphEpoch(), i+1)
				}
				assertRebuildParity(t, ix, bc.workers)
			}
		})
	}
}

// TestRepairDirectedAndWeighted covers the graph variants whose adjacency
// semantics differ: directed arcs touch only the tail, weighted graphs
// resample through rebuilt alias tables.
func TestRepairDirectedAndWeighted(t *testing.T) {
	t.Run("directed", func(t *testing.T) {
		b := graph.NewBuilder(40, graph.Directed)
		for u := 0; u < 39; u++ {
			b.AddEdge(u, u+1)
			b.AddEdge(u, (u*7+3)%40)
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Build(g, 5, 4, 21)
		if err != nil {
			t.Fatal(err)
		}
		g = applyAndRepair(t, ix, g, graph.Delta{AddEdges: []graph.Edge{{U: 39, V: 0}}})
		assertRebuildParity(t, ix, 1)
		g = applyAndRepair(t, ix, g, graph.Delta{RemoveEdges: []graph.Edge{{U: 0, V: 1}}})
		assertRebuildParity(t, ix, 1)
	})
	t.Run("weighted", func(t *testing.T) {
		b := graph.NewBuilder(30, graph.Undirected)
		for u := 0; u < 29; u++ {
			b.AddWeightedEdge(u, u+1, float64(u%5)+0.5)
			if w := (u*3 + 2) % 30; w != u {
				b.AddWeightedEdge(u, w, 2)
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Build(g, 5, 4, 22)
		if err != nil {
			t.Fatal(err)
		}
		g = applyAndRepair(t, ix, g, graph.Delta{AddEdges: []graph.Edge{{U: 0, V: 15, W: 3.25}}})
		assertRebuildParity(t, ix, 1)
		_ = applyAndRepair(t, ix, g, graph.Delta{RemoveEdges: []graph.Edge{{U: 0, V: 1}}})
		assertRebuildParity(t, ix, 1)
	})
}

// TestRepairRejections covers the guard rails: explicit-walk indexes, epoch
// skew, shrunken graphs, out-of-range touched nodes.
func TestRepairRejections(t *testing.T) {
	g, err := graph.BarabasiAlbert(30, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	g1, touched, err := g.ApplyDelta(graph.Delta{AddEdges: []graph.Edge{{U: 0, V: 20}}})
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := g1.ApplyDelta(graph.Delta{RemoveEdges: []graph.Edge{{U: 0, V: 20}}})
	if err != nil {
		t.Fatal(err)
	}

	walks := make([][][]int32, g.N())
	for w := range walks {
		walks[w] = [][]int32{{int32(w)}}
	}
	fromWalks, err := BuildFromWalks(g, 2, 1, walks)
	if err != nil {
		t.Fatal(err)
	}
	if err := fromWalks.Repair(g1, touched); err != ErrUnrepairable {
		t.Fatalf("BuildFromWalks repair err = %v, want ErrUnrepairable", err)
	}

	ix, err := Build(g, 4, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Repair(g2, touched); err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("two-epoch jump err = %v, want epoch mismatch", err)
	}
	if err := ix.Repair(g1, []int{g1.N()}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range touched err = %v, want range error", err)
	}
	if err := ix.Repair(nil, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	// The failed attempts must not have mutated the index.
	if ix.GraphEpoch() != 0 || ix.ends != nil {
		t.Fatal("rejected repair left the index modified")
	}
}

// TestRepairDropsEmptySetMemos asserts the memoized empty-set vectors are
// recomputed against the post-mutation entries (and resized when nodes were
// added) instead of served stale.
func TestRepairDropsEmptySetMemos(t *testing.T) {
	g, err := graph.BarabasiAlbert(60, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, 5, 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Problem{Problem1, Problem2} {
		if _, err := ix.EmptySetGains(p); err != nil {
			t.Fatal(err)
		}
		if _, err := ix.EmptySetGainSums(p); err != nil {
			t.Fatal(err)
		}
	}
	g = applyAndRepair(t, ix, g, graph.Delta{AddNodes: 1, AddEdges: []graph.Edge{{U: 0, V: 60}, {U: 1, V: 60}}})
	ref, err := Build(g, 5, 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Problem{Problem1, Problem2} {
		got, err := ix.EmptySetGains(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.EmptySetGains(p)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got, want) {
			t.Fatalf("%v: post-repair EmptySetGains diverge from rebuild", p)
		}
		gotS, err := ix.EmptySetGainSums(p)
		if err != nil {
			t.Fatal(err)
		}
		wantS, err := ref.EmptySetGainSums(p)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(gotS, wantS) {
			t.Fatalf("%v: post-repair EmptySetGainSums diverge from rebuild", p)
		}
	}
}

// TestWriteToSerializesPatchedAsCompact asserts serialization of a patched
// index emits the canonical compact form without mutating the receiver, and
// that the round-trip preserves the graph epoch.
func TestWriteToSerializesPatchedAsCompact(t *testing.T) {
	g, err := graph.BarabasiAlbert(50, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, 5, 4, 19)
	if err != nil {
		t.Fatal(err)
	}
	g = applyAndRepair(t, ix, g, graph.Delta{AddEdges: []graph.Edge{{U: 0, V: 30}}})
	if ix.ends == nil {
		t.Fatal("test premise: index should be patched after repair")
	}
	path := t.TempDir() + "/patched.rwdomidx"
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if ix.ends == nil {
		t.Fatal("WriteTo compacted the receiver; it must serialize a copy")
	}
	loaded, err := LoadFile(path, g)
	if err != nil {
		t.Fatalf("round-trip of a patched index: %v", err)
	}
	if loaded.GraphEpoch() != 1 {
		t.Fatalf("round-tripped GraphEpoch = %d, want 1", loaded.GraphEpoch())
	}
	c := ix.compacted()
	if !reflect.DeepEqual(loaded.offsets, c.offsets) || !reflect.DeepEqual(loaded.ids, c.ids) || !reflect.DeepEqual(loaded.hops, c.hops) {
		t.Fatal("round-trip diverges from the compacted form")
	}
}

// TestRepairCompactsWhenMostlyDead forces enough relocations that the dead
// fraction crosses the threshold and asserts the index lands compact again.
func TestRepairCompactsWhenMostlyDead(t *testing.T) {
	g, err := graph.BarabasiAlbert(40, 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, 6, 3, 29)
	if err != nil {
		t.Fatal(err)
	}
	// Toggle a hub's edge repeatedly: every toggle rewrites many rows, so
	// dead storage accumulates until the threshold compaction fires.
	compacted := false
	for k := 0; k < 40; k++ {
		var d graph.Delta
		if g.HasEdge(0, 25) {
			d = graph.Delta{RemoveEdges: []graph.Edge{{U: 0, V: 25}}}
		} else {
			d = graph.Delta{AddEdges: []graph.Edge{{U: 0, V: 25}}}
		}
		g = applyAndRepair(t, ix, g, d)
		if ix.ends == nil && ix.GraphEpoch() > 0 {
			compacted = true
		}
	}
	if !compacted {
		t.Fatal("threshold compaction never fired across 40 churning deltas")
	}
	assertRebuildParity(t, ix, 1)
}

// FuzzApplyDelta drives random delta sequences through ApplyDelta + Repair
// and asserts the incremental index stays walk-for-walk identical to a
// from-scratch rebuild, with a monotone epoch, at every step.
func FuzzApplyDelta(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 7, 200, 13, 0, 7, 200, 13}) // toggle the same pair twice
	f.Add([]byte{0, 0, 14, 14, 21, 22})         // AddNodes opcodes and a no-op pair
	f.Fuzz(func(t *testing.T, ops []byte) {
		g, err := graph.ErdosRenyi(24, 40, 5)
		if err != nil {
			t.Fatal(err)
		}
		const L, R, seed = 5, 3, 17
		ix, err := Build(g, L, R, seed)
		if err != nil {
			t.Fatal(err)
		}
		epoch := uint64(0)
		steps := 0
		for k := 0; k+1 < len(ops) && steps < 24; k += 2 {
			a, b := ops[k], ops[k+1]
			n := g.N()
			u, v := int(a)%n, int(b)%n
			var d graph.Delta
			switch {
			case a%7 == 0:
				d = graph.Delta{AddNodes: 1}
			case u == v:
				continue
			case g.HasEdge(u, v):
				d = graph.Delta{RemoveEdges: []graph.Edge{{U: u, V: v}}}
			default:
				d = graph.Delta{AddEdges: []graph.Edge{{U: u, V: v}}}
			}
			ng, touched, err := g.ApplyDelta(d)
			if err != nil {
				t.Fatalf("step %d: ApplyDelta(%+v): %v", steps, d, err)
			}
			if err := ix.Repair(ng, touched); err != nil {
				t.Fatalf("step %d: Repair: %v", steps, err)
			}
			g = ng
			epoch++
			steps++
			if g.Epoch() != epoch || ix.GraphEpoch() != epoch {
				t.Fatalf("step %d: epoch not monotone (graph %d, index %d, want %d)", steps, g.Epoch(), ix.GraphEpoch(), epoch)
			}
			assertRebuildParity(t, ix, 1)
		}
	})
}
