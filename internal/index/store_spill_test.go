package index

import (
	"os"
	"sync/atomic"
	"testing"
)

// Cache-level corruption and compatibility tests for v8 spill files served
// through the mmap path. The invariant under every corruption: the load
// fails at Open (CRCs + structural validation), SpillLoadErrors ticks, the
// build runs, and the served answers are those of a fresh build — never a
// panic, never a silently wrong index.

// mmapCache opens a cache over dir that writes compressed v8 and serves
// loads store-backed via mmap.
func mmapCache(t *testing.T, dir string, entries int) *Cache {
	t.Helper()
	c, err := NewCacheWith(entries, 0, dir, SpillConfig{Format: FormatV8, Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.spillWG.Wait)
	return c
}

func TestCacheRebuildsOnCorruptV8Spill(t *testing.T) {
	corruptions := map[string]func(t *testing.T, path string){
		// One flipped bit in the first data section — for the default
		// compressed format that is a chunk's block-offset/span region; the
		// section CRC must reject it at Open.
		"compressed-span-bitflip": func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(b) <= 4096 {
				t.Fatalf("spill file only %d bytes; first section expected at 4096", len(b))
			}
			b[4096] ^= 0x01
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		// A file cut mid-section: the mmap is shorter than the directory
		// promises, which must fail the structural bounds check — not fault
		// when a query first touches the missing pages.
		"truncated-mmap": func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		// The chunk directory itself damaged: its CRC must reject the file
		// before any section offset in it is trusted.
		"directory-bitflip": func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[120] ^= 0x80 // inside the first directory entry (header is 108 bytes)
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			key := CacheKey{Graph: "g", L: 4, R: 15, Seed: 3}
			g := cacheTestGraph(t, 31)
			c, err := NewCacheWith(4, 0, dir, SpillConfig{Format: FormatV8, Mmap: true})
			if err != nil {
				t.Fatal(err)
			}
			var builds atomic.Int64
			h, err := c.Acquire(key, g, buildFor(g, key, &builds))
			if err != nil {
				t.Fatal(err)
			}
			wantEntries := h.Index().Entries()
			h.Release()
			if err := c.SpillAll(); err != nil {
				t.Fatal(err)
			}
			corrupt(t, c.spillPath(key))

			// A "restarted daemon" over the corrupt v8 spill.
			c2 := mmapCache(t, dir, 4)
			var rebuilds atomic.Int64
			h2, err := c2.Acquire(key, g, buildFor(g, key, &rebuilds))
			if err != nil {
				t.Fatalf("acquire over corrupt v8 spill: %v", err)
			}
			defer h2.Release()
			if rebuilds.Load() != 1 {
				t.Fatalf("rebuilds = %d, want 1 (corrupt spill must not be served)", rebuilds.Load())
			}
			if got := h2.Index().Entries(); got != wantEntries {
				t.Fatalf("rebuilt index has %d entries, want %d", got, wantEntries)
			}
			s := c2.Stats()
			if s.SpillLoadErrors != 1 {
				t.Fatalf("SpillLoadErrors = %d, want 1", s.SpillLoadErrors)
			}
			if s.SpillLoads != 0 || s.MmapLoads != 0 {
				t.Fatalf("SpillLoads = %d, MmapLoads = %d, want 0, 0", s.SpillLoads, s.MmapLoads)
			}
		})
	}
}

// TestCacheIgnoresStaleV8Spill covers a mismatched file under a key's path
// (hash collision or stale directory contents): the store opens fine but its
// identity does not match the key, so the cache must quietly rebuild — a
// stale file is not corruption, and must never be served.
func TestCacheIgnoresStaleV8Spill(t *testing.T) {
	dir := t.TempDir()
	g := cacheTestGraph(t, 31)
	key := CacheKey{Graph: "g", L: 4, R: 15, Seed: 3}
	other, err := Build(g, 4, 15, 99) // same shape, different seed
	if err != nil {
		t.Fatal(err)
	}
	c := mmapCache(t, dir, 4)
	if err := other.SaveStore(c.spillPath(key), true); err != nil {
		t.Fatal(err)
	}
	var rebuilds atomic.Int64
	h, err := c.Acquire(key, g, buildFor(g, key, &rebuilds))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if rebuilds.Load() != 1 {
		t.Fatalf("rebuilds = %d, want 1 (stale spill must not be served)", rebuilds.Load())
	}
	if got := h.Index().Seed(); got != key.Seed {
		t.Fatalf("served index has seed %d, want %d", got, key.Seed)
	}
	s := c.Stats()
	if s.SpillLoads != 0 || s.SpillLoadErrors != 0 {
		t.Fatalf("SpillLoads = %d, SpillLoadErrors = %d, want 0, 0 (stale is neither a load nor an error)", s.SpillLoads, s.SpillLoadErrors)
	}
}

// TestCacheLoadsV7Spill is the read-compatibility contract: a spill
// directory written by a v7 daemon keeps warm-loading after an upgrade —
// the loader sniffs the magic, so the write-format default moving to v8
// never invalidates existing spills.
func TestCacheLoadsV7Spill(t *testing.T) {
	dir := t.TempDir()
	g := cacheTestGraph(t, 31)
	key := CacheKey{Graph: "g", L: 4, R: 15, Seed: 3}
	ix, err := Build(g, key.L, key.R, key.Seed)
	if err != nil {
		t.Fatal(err)
	}
	c := mmapCache(t, dir, 4)
	if err := ix.SaveFile(c.spillPath(key)); err != nil { // legacy v7 writer
		t.Fatal(err)
	}
	var builds atomic.Int64
	h, err := c.Acquire(key, g, func() (*Index, error) {
		builds.Add(1)
		return nil, os.ErrInvalid // must not run
	})
	if err != nil {
		t.Fatalf("acquire over v7 spill: %v", err)
	}
	defer h.Release()
	if builds.Load() != 0 {
		t.Fatal("v7 spill file did not warm-load")
	}
	if h.Index().StoreBacked() {
		t.Fatal("v7 load must fully deserialize, not be store-backed")
	}
	s := c.Stats()
	if s.SpillLoads != 1 {
		t.Fatalf("SpillLoads = %d, want 1", s.SpillLoads)
	}
	if s.MmapLoads != 0 {
		t.Fatalf("MmapLoads = %d, want 0 (v7 never maps)", s.MmapLoads)
	}
}

// TestCacheMmapRoundTrip is the page-in warm-restart path end to end: spill
// a built index as compressed v8, reopen the directory with mmap serving,
// and check the reload is store-backed, mapped, counted as a page-in
// restart, skipped on re-spill (its bytes are already durable), and that
// StorageStats reports the mapping.
func TestCacheMmapRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := cacheTestGraph(t, 31)
	key := CacheKey{Graph: "g", L: 4, R: 15, Seed: 3}
	c := mmapCache(t, dir, 4)
	var builds atomic.Int64
	h, err := c.Acquire(key, g, buildFor(g, key, &builds))
	if err != nil {
		t.Fatal(err)
	}
	wantEntries := h.Index().Entries()
	h.Release()
	if err := c.SpillAll(); err != nil {
		t.Fatal(err)
	}

	c2 := mmapCache(t, dir, 4)
	h2, err := c2.Acquire(key, g, func() (*Index, error) {
		return nil, os.ErrInvalid // must not run
	})
	if err != nil {
		t.Fatalf("warm acquire: %v", err)
	}
	defer h2.Release()
	ix := h2.Index()
	if got := ix.Entries(); got != wantEntries {
		t.Fatalf("warm-loaded index has %d entries, want %d", got, wantEntries)
	}
	if !ix.StoreBacked() {
		t.Fatal("warm load not store-backed")
	}
	if !ix.StoreMapped() {
		t.Skip("mmap unavailable on this platform")
	}
	s := c2.Stats()
	if s.SpillLoads != 1 || s.MmapLoads != 1 {
		t.Fatalf("SpillLoads = %d, MmapLoads = %d, want 1, 1", s.SpillLoads, s.MmapLoads)
	}
	st := c2.StorageStats()
	if st.SpillFormat != FormatV8 || !st.Mmap {
		t.Fatalf("StorageStats format/mmap = %q/%v, want %q/true", st.SpillFormat, st.Mmap, FormatV8)
	}
	if st.MappedIndexes != 1 || st.MappedBytes <= 0 {
		t.Fatalf("MappedIndexes = %d, MappedBytes = %d, want 1, > 0", st.MappedIndexes, st.MappedBytes)
	}
	if st.PageInRestarts != 1 {
		t.Fatalf("PageInRestarts = %d, want 1", st.PageInRestarts)
	}
	// Mapped pages are page cache, not heap: the index must cost ~nothing
	// against the cache's bytes budget.
	if ix.MemoryBytes() != 0 {
		t.Fatalf("mapped index MemoryBytes = %d, want 0", ix.MemoryBytes())
	}
	// Re-spilling the unchanged store-backed index is skipped: the file on
	// disk already holds exactly these bytes.
	if err := c2.SpillAll(); err != nil {
		t.Fatal(err)
	}
	if s := c2.Stats(); s.SpillSkipped != 1 || s.SpillSaves != 0 {
		t.Fatalf("SpillSkipped = %d, SpillSaves = %d, want 1, 0", s.SpillSkipped, s.SpillSaves)
	}
}
