package index

import (
	"testing"

	"repro/internal/graph"
)

// This file benchmarks the PR's layout decision in isolation: the
// candidate-major index/D-table (row v·R+i, d[u·R+i]; all replicates of one
// node contiguous) against the prior replicate-major layout (row i·n+v,
// d[i·n+u]; one Gain touching R scattered rows). rmTable reimplements the
// replicate-major arithmetic verbatim so both arms compute identical values
// over identical samples and only the memory layout differs.

type rmTable struct {
	n, r    int
	l       int
	offsets []int64 // row (i, v) at i*n+v
	ids     []int32
	hops    []uint16
	d       []uint16 // d[i*n+u]
}

// toReplicateMajor transposes an index and a fresh Problem-1 D-table into
// the pre-PR layout.
func toReplicateMajor(ix *Index) *rmTable {
	n, r := ix.g.N(), ix.r
	t := &rmTable{n: n, r: r, l: ix.l, d: make([]uint16, n*r)}
	for i := range t.d {
		t.d[i] = uint16(ix.l)
	}
	t.offsets = make([]int64, r*n+1)
	for i := 0; i < r; i++ {
		for v := 0; v < n; v++ {
			ids, _ := ix.Row(i, v)
			t.offsets[i*n+v+1] = t.offsets[i*n+v] + int64(len(ids))
		}
	}
	total := t.offsets[r*n]
	t.ids = make([]int32, total)
	t.hops = make([]uint16, total)
	for i := 0; i < r; i++ {
		for v := 0; v < n; v++ {
			ids, hops := ix.Row(i, v)
			lo := t.offsets[i*n+v]
			copy(t.ids[lo:], ids)
			copy(t.hops[lo:], hops)
		}
	}
	return t
}

func (t *rmTable) gain(u int) float64 {
	var acc int64
	for i := 0; i < t.r; i++ {
		base := i * t.n
		acc += int64(t.d[base+u])
		row := int64(base + u)
		lo, hi := t.offsets[row], t.offsets[row+1]
		ids := t.ids[lo:hi]
		hops := t.hops[lo:hi]
		for e, v := range ids {
			if dv := t.d[base+int(v)]; hops[e] < dv {
				acc += int64(dv - hops[e])
			}
		}
	}
	return float64(acc) / float64(t.r)
}

func (t *rmTable) update(u int) {
	for i := 0; i < t.r; i++ {
		base := i * t.n
		t.d[base+u] = 0
		row := int64(base + u)
		lo, hi := t.offsets[row], t.offsets[row+1]
		ids := t.ids[lo:hi]
		hops := t.hops[lo:hi]
		for e, v := range ids {
			if hops[e] < t.d[base+int(v)] {
				t.d[base+int(v)] = hops[e]
			}
		}
	}
}

// BenchmarkAblationDTableLayout measures a full-candidate Gain sweep — the
// shape of the CELF initial round, the selection hot path — under both
// layouts, after a few updates so the D-table is in a mid-greedy state.
func BenchmarkAblationDTableLayout(b *testing.B) {
	g, err := graph.BarabasiAlbert(5000, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := Build(g, 6, 50, 1)
	if err != nil {
		b.Fatal(err)
	}
	picks := []int{11, 222, 3333}

	b.Run("CandidateMajor", func(b *testing.B) {
		d, _ := ix.NewDTable(Problem1)
		for _, u := range picks {
			d.Update(u)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var sink float64
			for u := 0; u < g.N(); u++ {
				sink += d.Gain(u)
			}
			_ = sink
		}
	})
	b.Run("ReplicateMajor", func(b *testing.B) {
		t := toReplicateMajor(ix)
		for _, u := range picks {
			t.update(u)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var sink float64
			for u := 0; u < g.N(); u++ {
				sink += t.gain(u)
			}
			_ = sink
		}
	})
}

// TestReplicateMajorEmulationAgrees keeps the ablation honest: both layouts
// must compute identical gains, so the benchmark measures layout and nothing
// else.
func TestReplicateMajorEmulationAgrees(t *testing.T) {
	g, _ := graph.BarabasiAlbert(300, 3, 2)
	ix, err := Build(g, 5, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := ix.NewDTable(Problem1)
	rm := toReplicateMajor(ix)
	for _, u := range []int{0, 42, 120} {
		d.Update(u)
		rm.update(u)
	}
	for u := 0; u < g.N(); u += 17 {
		if got, want := rm.gain(u), d.Gain(u); got != want {
			t.Fatalf("layouts disagree at %d: replicate-major %v, candidate-major %v", u, got, want)
		}
	}
}
