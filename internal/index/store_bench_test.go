package index

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// BenchmarkWarmRestart measures what a daemon restart pays per warm index:
// the legacy v7 full deserialize against a v8 mmap open (CRC verification +
// mapping, no deserialize, rows page in on demand). disk_bytes reports each
// format's on-disk size — v8's compressed spans shrink the file while v8's
// open time stays O(file bytes)/CRC-speed instead of O(entries)/decode-speed.
func BenchmarkWarmRestart(b *testing.B) {
	g, _ := graph.BarabasiAlbert(8000, 5, 1)
	ix, _ := Build(g, 6, 20, 1)
	dir := b.TempDir()
	v7 := filepath.Join(dir, "ix.v7")
	v8 := filepath.Join(dir, "ix.v8")
	if err := ix.SaveFile(v7); err != nil {
		b.Fatal(err)
	}
	if err := ix.SaveStore(v8, true); err != nil {
		b.Fatal(err)
	}
	size := func(path string) float64 {
		fi, err := os.Stat(path)
		if err != nil {
			b.Fatal(err)
		}
		return float64(fi.Size())
	}
	// ReportMetric after the loop: ResetTimer deletes user-reported metrics.
	b.Run("v7", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := LoadFile(v7, g); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(size(v7), "disk_bytes")
	})
	b.Run("v8-mmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := LoadStore(v8, g, StoreOptions{Mmap: true}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(size(v8), "disk_bytes")
	})
}

// BenchmarkStoreBackedGain is BenchmarkGainAllNodes served store-backed in
// the production hybrid mode (compressed v8 + mmap + hot-row cache) instead
// of off the heap — the decode-on-read overhead the benchcheck gate holds
// against the heap baseline. One warmup sweep fills the hot-row cache first,
// so the steady serving state is what's measured.
func BenchmarkStoreBackedGain(b *testing.B) {
	g, _ := graph.BarabasiAlbert(2000, 5, 1)
	heap, _ := Build(g, 6, 20, 1)
	path := filepath.Join(b.TempDir(), "ix.v8")
	if err := heap.SaveStore(path, true); err != nil {
		b.Fatal(err)
	}
	ix, err := LoadStore(path, g, StoreOptions{Mmap: true})
	if err != nil {
		b.Fatal(err)
	}
	d, _ := ix.NewDTable(Problem1)
	r := rng.New(7)
	for i := 0; i < 5; i++ {
		d.Update(r.Intn(g.N()))
	}
	for u := 0; u < g.N(); u++ { // warmup: populate the hot-row cache
		_ = d.Gain(u)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink float64
		for u := 0; u < g.N(); u++ {
			sink += d.Gain(u)
		}
		_ = sink
	}
}
