package simulate

import (
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/hitting"
)

func TestSimulatorValidation(t *testing.T) {
	g, _ := graph.Path(4)
	if _, err := New(nil, nil, 3, 1); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := New(g, nil, -1, 1); err == nil {
		t.Error("negative L accepted")
	}
	if _, err := New(g, []int{9}, 3, 1); err == nil {
		t.Error("out-of-range target accepted")
	}
	sim, _ := New(g, []int{0}, 3, 1)
	if _, err := sim.RunAll(0); err == nil {
		t.Error("sessionsPerNode=0 accepted")
	}
}

func TestSessionFromTargetIsImmediate(t *testing.T) {
	g, _ := graph.Star(5)
	sim, _ := New(g, []int{0}, 4, 1)
	sess := sim.Run(0, 0)
	if !sess.Hit || sess.Latency != 0 || sess.Target != 0 {
		t.Fatalf("session from target: %+v", sess)
	}
}

func TestStarSessionsAlwaysDiscover(t *testing.T) {
	// Every leaf steps straight to the hub: 100% discovery at latency 1.
	g, _ := graph.Star(20)
	sim, _ := New(g, []int{0}, 4, 2)
	out, err := sim.RunAll(50)
	if err != nil {
		t.Fatal(err)
	}
	if out.DiscoveryRate() != 1 {
		t.Fatalf("discovery rate %v, want 1", out.DiscoveryRate())
	}
	if out.MeanLatency != 1 {
		t.Fatalf("mean latency %v, want 1", out.MeanLatency)
	}
	if out.LatencyHistogram[1] != out.Sessions {
		t.Fatalf("latency histogram %v", out.LatencyHistogram)
	}
}

func TestMeanLatencyMatchesExactHittingTime(t *testing.T) {
	// The realized mean latency must converge to the exact generalized
	// hitting time averaged over sources (the AHT metric).
	g, err := graph.BarabasiAlbert(80, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	S := []int{0, 13}
	const L = 5
	sim, _ := New(g, S, L, 7)
	out, err := sim.RunAll(2000)
	if err != nil {
		t.Fatal(err)
	}
	ev, _ := hitting.NewEvaluator(g, L)
	aht, _ := ev.AverageHittingTime(S)
	if math.Abs(out.MeanLatency-aht) > 0.05 {
		t.Fatalf("simulated mean latency %v vs exact AHT %v", out.MeanLatency, aht)
	}
	// Discovery rate must converge to mean hit probability over non-targets.
	p, _ := ev.HitProbsToSet(S, nil)
	want := 0.0
	cnt := 0
	for u, pu := range p {
		if u != 0 && u != 13 {
			want += pu
			cnt++
		}
	}
	want /= float64(cnt)
	if math.Abs(out.DiscoveryRate()-want) > 0.02 {
		t.Fatalf("discovery rate %v vs exact %v", out.DiscoveryRate(), want)
	}
}

func TestLatencyPercentile(t *testing.T) {
	o := &Outcome{
		Sessions:         10,
		LatencyHistogram: []int{0, 5, 3, 0, 2}, // 5 at hop 1, 3 at hop 2, 2 at hop 4
	}
	if got := o.LatencyPercentile(50); got != 1 {
		t.Fatalf("p50 = %d, want 1", got)
	}
	if got := o.LatencyPercentile(80); got != 2 {
		t.Fatalf("p80 = %d, want 2", got)
	}
	if got := o.LatencyPercentile(100); got != 4 {
		t.Fatalf("p100 = %d, want 4", got)
	}
	if got := o.LatencyPercentile(0); got != 0 {
		t.Fatalf("p0 = %d, want 0", got)
	}
	empty := &Outcome{}
	if empty.LatencyPercentile(50) != 0 {
		t.Fatal("empty outcome percentile")
	}
}

func TestTargetLoadAndImbalance(t *testing.T) {
	// Path 0-1-2 with targets at both ends: node 1 discovers each end with
	// equal probability, so the load should be roughly even.
	g, _ := graph.Path(3)
	sim, _ := New(g, []int{0, 2}, 1, 5)
	out, err := sim.RunAll(4000)
	if err != nil {
		t.Fatal(err)
	}
	if out.DiscoveryRate() != 1 {
		t.Fatalf("middle node always hits an end, rate=%v", out.DiscoveryRate())
	}
	imb := out.LoadImbalance()
	if imb < 1 || imb > 1.1 {
		t.Fatalf("load imbalance %v, want ≈1 (even split)", imb)
	}
	// Degenerate outcomes.
	if (&Outcome{}).LoadImbalance() != 0 {
		t.Fatal("empty outcome imbalance")
	}
}

func TestDeterministicSessions(t *testing.T) {
	g, _ := graph.BarabasiAlbert(50, 2, 3)
	a, _ := New(g, []int{0}, 5, 9)
	b, _ := New(g, []int{0}, 5, 9)
	for u := 1; u < 10; u++ {
		for i := 0; i < 5; i++ {
			if a.Run(u, i) != b.Run(u, i) {
				t.Fatal("sessions not reproducible")
			}
		}
	}
}

func TestCompareSelections(t *testing.T) {
	g, _ := graph.Star(30)
	out, err := CompareSelections(g, 4, 1, 100, map[string][]int{
		"hub":  {0},
		"leaf": {5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out["hub"].DiscoveryRate() <= out["leaf"].DiscoveryRate() {
		t.Fatalf("hub rate %v should beat leaf rate %v",
			out["hub"].DiscoveryRate(), out["leaf"].DiscoveryRate())
	}
	if _, err := CompareSelections(g, 4, 1, 100, map[string][]int{"bad": {99}}); err == nil {
		t.Fatal("invalid selection accepted")
	}
}

func TestOutcomeString(t *testing.T) {
	g, _ := graph.Star(5)
	sim, _ := New(g, []int{0}, 3, 1)
	out, _ := sim.RunAll(10)
	if s := out.String(); !strings.Contains(s, "discovered") {
		t.Fatalf("String() = %q", s)
	}
}

func TestStuckSessionCountsAsMiss(t *testing.T) {
	// Node 2 is isolated: sessions from it never move and never discover.
	g := graph.MustFromEdgeList(3, [][2]int{{0, 1}})
	sim, _ := New(g, []int{0}, 4, 1)
	sess := sim.Run(2, 0)
	if sess.Hit || sess.Latency != 4 {
		t.Fatalf("isolated session %+v, want miss at latency L", sess)
	}
}
