// Package simulate provides an agent-based simulator for the browsing and
// search processes that motivate the paper's problems (Section 1.1): social
// browsing in a social network, Ad discovery in an advertisement network,
// and TTL-bounded resource search in a P2P overlay.
//
// Where internal/walk estimates the *expectations* the objectives are built
// on, this package simulates the processes themselves and reports realized
// outcome distributions: how many sessions discovered a target, the full
// latency histogram, per-node discovery counts. It is the independent
// validation layer — its means must agree with the exact DP quantities
// (tested), but it also answers questions expectations cannot, such as tail
// latencies and discovery concentration.
package simulate

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Session describes one simulated browsing/search session.
type Session struct {
	// Start is the node the session began at.
	Start int
	// Hit reports whether the session reached a target.
	Hit bool
	// Latency is the hop at which the first target was reached; L if none.
	Latency int
	// Target is the target node reached, or -1.
	Target int
}

// Outcome aggregates a batch of simulated sessions.
type Outcome struct {
	// Sessions is the number of simulated sessions.
	Sessions int
	// Discoveries is the number of sessions that reached a target.
	Discoveries int
	// MeanLatency is the average latency over all sessions (capped at L for
	// misses), the realized analogue of the AHT metric.
	MeanLatency float64
	// LatencyHistogram[t] counts sessions whose first hit happened at hop t;
	// index L additionally counts misses (latency capped), matching T^L.
	LatencyHistogram []int
	// TargetLoad maps each target node to the number of sessions it
	// absorbed; measures how evenly the selection shares the load.
	TargetLoad map[int]int
}

// DiscoveryRate returns the fraction of sessions that reached a target.
func (o *Outcome) DiscoveryRate() float64 {
	if o.Sessions == 0 {
		return 0
	}
	return float64(o.Discoveries) / float64(o.Sessions)
}

// LatencyPercentile returns the p-th percentile (0 < p <= 100) of session
// latencies, counting misses at L.
func (o *Outcome) LatencyPercentile(p float64) int {
	if o.Sessions == 0 || p <= 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(o.Sessions)))
	seen := 0
	for t, c := range o.LatencyHistogram {
		seen += c
		if seen >= rank {
			return t
		}
	}
	return len(o.LatencyHistogram) - 1
}

// LoadImbalance returns the ratio of the maximum to the mean target load
// (1 = perfectly even; 0 if nothing was discovered).
func (o *Outcome) LoadImbalance() float64 {
	if len(o.TargetLoad) == 0 || o.Discoveries == 0 {
		return 0
	}
	maxLoad := 0
	for _, c := range o.TargetLoad {
		if c > maxLoad {
			maxLoad = c
		}
	}
	mean := float64(o.Discoveries) / float64(len(o.TargetLoad))
	return float64(maxLoad) / mean
}

func (o *Outcome) String() string {
	return fmt.Sprintf("sessions=%d discovered=%.1f%% meanLatency=%.3f p95=%d",
		o.Sessions, 100*o.DiscoveryRate(), o.MeanLatency, o.LatencyPercentile(95))
}

// Simulator runs browsing sessions over a fixed graph and target set.
type Simulator struct {
	g    *graph.Graph
	l    int
	inS  []bool
	seed uint64
}

// New returns a simulator for sessions of at most L hops targeting S.
func New(g *graph.Graph, S []int, L int, seed uint64) (*Simulator, error) {
	if g == nil || g.N() == 0 {
		return nil, graph.ErrEmptyGraph
	}
	if L < 0 {
		return nil, fmt.Errorf("simulate: negative session length %d", L)
	}
	inS := make([]bool, g.N())
	for _, v := range S {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("simulate: target %d out of range [0,%d): %w", v, g.N(), graph.ErrNodeRange)
		}
		inS[v] = true
	}
	return &Simulator{g: g, l: L, inS: inS, seed: seed}, nil
}

// Run simulates one session from the given start node using an independent
// per-session random stream (session ids are reproducible handles).
func (s *Simulator) Run(start, session int) Session {
	out := Session{Start: start, Latency: s.l, Target: -1}
	if s.inS[start] {
		out.Hit, out.Latency, out.Target = true, 0, start
		return out
	}
	rnd := rng.New(rng.Mix(s.seed, uint64(start), uint64(session)))
	u := start
	for t := 1; t <= s.l; t++ {
		v := s.g.PickNeighbor(u, rnd.Float64())
		if v < 0 {
			break
		}
		if s.inS[v] {
			out.Hit, out.Latency, out.Target = true, t, v
			return out
		}
		u = v
	}
	return out
}

// RunAll simulates sessionsPerNode sessions from every non-target node and
// aggregates the outcomes.
func (s *Simulator) RunAll(sessionsPerNode int) (*Outcome, error) {
	if sessionsPerNode <= 0 {
		return nil, fmt.Errorf("simulate: sessionsPerNode = %d, want > 0", sessionsPerNode)
	}
	out := &Outcome{
		LatencyHistogram: make([]int, s.l+1),
		TargetLoad:       map[int]int{},
	}
	totalLatency := 0
	for u := 0; u < s.g.N(); u++ {
		if s.inS[u] {
			continue
		}
		for i := 0; i < sessionsPerNode; i++ {
			sess := s.Run(u, i)
			out.Sessions++
			out.LatencyHistogram[sess.Latency]++
			totalLatency += sess.Latency
			if sess.Hit {
				out.Discoveries++
				out.TargetLoad[sess.Target]++
			}
		}
	}
	if out.Sessions > 0 {
		out.MeanLatency = float64(totalLatency) / float64(out.Sessions)
	}
	return out, nil
}

// CompareSelections simulates the same session workload under several
// alternative target selections and returns the outcomes keyed by name —
// the A/B test a practitioner would run before committing a placement.
func CompareSelections(g *graph.Graph, L int, seed uint64, sessionsPerNode int, selections map[string][]int) (map[string]*Outcome, error) {
	out := make(map[string]*Outcome, len(selections))
	names := make([]string, 0, len(selections))
	for name := range selections {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic order
	for _, name := range names {
		sim, err := New(g, selections[name], L, seed)
		if err != nil {
			return nil, fmt.Errorf("simulate: selection %q: %w", name, err)
		}
		o, err := sim.RunAll(sessionsPerNode)
		if err != nil {
			return nil, err
		}
		out[name] = o
	}
	return out, nil
}
