// Package store owns the on-disk index formats of the walk-index subsystem:
// a page-aligned container (format v8) whose sections can be served straight
// off an mmap'd file, plus a delta/varint codec for compressed candidate-major
// CSR spans with a decode-on-read hot-row cache.
//
// The package is deliberately dependency-free (stdlib only) and deals in
// generic CSR chunks; internal/index owns the glue that turns a store file
// into a serving Index and an Index into a store file. That keeps the
// dependency arrow pointing one way (index → store) even though the cache and
// the serving hot paths live in internal/index.
//
// # Format v8
//
// Everything is little-endian. The file is laid out so that every payload
// section starts on a page boundary and is covered by its own CRC32-C:
//
//	magic "RWDOMST8"
//	header: 12 × uint64 — version (8), graph fingerprint, graph epoch,
//	        n, L, R (total replicate width), R0 (first absolute
//	        replicate), seed, total entries, chunk count, page size,
//	        flags (reserved, 0)
//	header CRC32-C (uint32, covers magic + header)
//	directory: per chunk, 13 × uint64 — first absolute replicate, width,
//	        entries, encoding (0 raw, 1 varint), then for each of three
//	        sections: byte offset, byte length, CRC32-C
//	directory CRC32-C (uint32, covers the directory)
//	sections, each padded to the next page boundary
//
// A raw chunk stores its three CSR arrays verbatim (offsets: (width·n+1)
// int64, ids: int32, hops: uint16) in sections 0–2; because sections are
// page-aligned, a loader can alias them directly out of a read-only mapping
// with zero copies and zero decode work. A varint chunk stores two sections:
// per-node block offsets ((n+1) int64) and the block blob; section 2 is
// empty. Node u's block encodes the node's width replicate rows back to back:
// for each row, uvarint(rowLen) then rowLen × (uvarint(idDelta), uvarint(hop))
// with ids strictly ascending per row (delta ≥ 1 from a previous id of −1),
// which is what makes the deltas small and the blob typically 2–3× smaller
// than the raw arrays.
//
// Open verifies the header and directory CRCs, every structural bound, and
// every section CRC before returning — a bit flip, truncation, or stale
// directory anywhere in the file surfaces as an open error (the cache turns
// that into a counted rebuild), never as a wrong answer. The CRC pass is a
// sequential hardware-accelerated scan with no allocation or parse, so a v8
// open stays far cheaper than a v7 full deserialize even though it touches
// every page once.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"unsafe"
)

const (
	// Magic identifies a format-v8 store file; it deliberately differs from
	// the v7 magic ("RWDOMIDX") so loaders can sniff the format from the
	// first 8 bytes.
	Magic = "RWDOMST8"
	// Version is the container version this package reads and writes.
	Version = 8
	// DefaultPageSize is the section alignment written by default: the
	// ubiquitous 4 KiB page, which also guarantees 8-byte alignment for the
	// int64 sections aliased out of a mapping.
	DefaultPageSize = 4096
	// DefaultHotRows is the default decoded-block cache size per compressed
	// chunk (see Spans): enough to keep a selection sweep's working set
	// decoded without materializing the chunk.
	DefaultHotRows = 4096
)

// Section encodings, one per chunk in the directory.
const (
	encodingRaw    = 0
	encodingVarint = 1
)

const (
	headerWords  = 12
	headerSize   = len(Magic) + headerWords*8 + 4 // + CRC32-C
	dirEntrySize = 13 * 8
)

// castagnoli is the CRC32-C table every checksum in the format uses
// (hardware-accelerated on amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Identity is the build identity a store file carries, mirroring the v7
// header: enough for a loader to verify the file matches the graph and build
// parameters it is being bound to.
type Identity struct {
	Fingerprint uint64
	Epoch       uint64
	N           int
	L           int
	R           int
	R0          int
	Seed        uint64
	Entries     int64
}

// Chunk is one replicate chunk's compact candidate-major CSR, the unit the
// writer consumes: row (v, i) of the chunk is
// Ids[Offsets[v·Width+i]:Offsets[v·Width+i+1]] with parallel Hops.
type Chunk struct {
	R0      int
	Width   int
	Offsets []int64
	Ids     []int32
	Hops    []uint16
}

// hostLittleEndian reports whether the host stores integers little-endian.
// The format is defined little-endian and the zero-copy section views assume
// the host matches; every supported deployment target (amd64, arm64, riscv)
// does.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func checkHostEndian() error {
	if !hostLittleEndian {
		return fmt.Errorf("store: big-endian hosts are not supported by the zero-copy v8 reader")
	}
	return nil
}

// int64Bytes views a []int64 as its underlying bytes (little-endian hosts
// only; guarded by checkHostEndian).
func int64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

func int32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

func uint16Bytes(s []uint16) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*2)
}

// bytesInt64 views a byte slice as []int64. The caller guarantees 8-byte
// alignment (sections are page-aligned and heap buffers are allocated
// aligned) and a length that is a multiple of 8.
func bytesInt64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func bytesInt32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func bytesUint16(b []byte) []uint16 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), len(b)/2)
}

// putUint64 appends v little-endian.
func putUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// alignUp rounds n up to the next multiple of page (a power of two).
func alignUp(n, page int64) int64 {
	return (n + page - 1) &^ (page - 1)
}
