package store

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"testing"
)

// readChunkData loads every chunk's logical content for equality checks: the
// corruption sweep accepts a flip either failing Open or landing in padding
// (bytes no reader ever consumes), in which case the served data must be
// identical.
func readChunkData(t *testing.T, f *File) [][]byte {
	t.Helper()
	var out [][]byte
	for c := 0; c < f.Chunks(); c++ {
		cv := f.Chunk(c)
		if cv.Compressed() {
			offsets, ids, hops, err := cv.Spans().Materialize()
			if err != nil {
				t.Fatalf("materialize chunk %d: %v", c, err)
			}
			out = append(out, append([]byte{}, int64Bytes(offsets)...), append([]byte{}, int32Bytes(ids)...), append([]byte{}, uint16Bytes(hops)...))
		} else {
			offsets, ids, hops := cv.Raw()
			out = append(out, append([]byte{}, int64Bytes(offsets)...), append([]byte{}, int32Bytes(ids)...), append([]byte{}, uint16Bytes(hops)...))
		}
	}
	return out
}

func equalData(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			return false
		}
	}
	return true
}

// TestOpenRejectsBitFlips sweeps a single-bit flip across the file: every
// flip must either fail Open (CRC or structural check) or — when it lands in
// inter-section padding, which no CRC covers because no reader consumes it —
// leave every served byte identical. A flip that opens AND changes data
// would be the silent-wrong-answer failure mode the format exists to
// prevent.
func TestOpenRejectsBitFlips(t *testing.T) {
	for _, compress := range []bool{false, true} {
		id, chunks := testChunks(t, 30, 0, []int{3, 2}, 7)
		path := writeTemp(t, id, chunks, WriteOptions{Compress: compress})
		pristine, err := Open(path, OpenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := readChunkData(t, pristine)
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		step := len(blob)/96 + 1
		for off := 0; off < len(blob); off += step {
			corrupt := append([]byte{}, blob...)
			corrupt[off] ^= 0x10
			if err := os.WriteFile(path, corrupt, 0o644); err != nil {
				t.Fatal(err)
			}
			f, err := Open(path, OpenOptions{})
			if err != nil {
				continue // detected: the required outcome for covered bytes
			}
			if !equalData(want, readChunkData(t, f)) {
				t.Fatalf("compress=%v: flip at byte %d opened cleanly but changed served data", compress, off)
			}
		}
	}
}

func TestOpenRejectsTruncation(t *testing.T) {
	id, chunks := testChunks(t, 30, 0, []int{4}, 8)
	path := writeTemp(t, id, chunks, WriteOptions{Compress: true})
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{0, 7, headerSize - 1, headerSize + 10, len(blob) / 2, len(blob) - 1} {
		if err := os.WriteFile(path, blob[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path, OpenOptions{Mmap: true}); err == nil {
			t.Fatalf("truncation to %d bytes accepted", keep)
		}
	}
}

// TestOpenRejectsStaleDirectory tampers with the section directory itself —
// swapping two section offsets and recomputing the directory CRC, so only
// the section-level validation can catch the mismatch between the directory
// and the payloads it points at.
func TestOpenRejectsStaleDirectory(t *testing.T) {
	id, chunks := testChunks(t, 30, 0, []int{4}, 9)
	path := writeTemp(t, id, chunks, WriteOptions{Compress: true})
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Directory entry 0: words 4..6 are section 0 (off, size, crc), words
	// 7..9 section 1. Point section 0 at section 1's range.
	dirOff := headerSize
	e := blob[dirOff:]
	off1 := binary.LittleEndian.Uint64(e[7*8:])
	size1 := binary.LittleEndian.Uint64(e[8*8:])
	binary.LittleEndian.PutUint64(e[4*8:], off1)
	binary.LittleEndian.PutUint64(e[5*8:], size1)
	dirSize := 1 * dirEntrySize
	sum := crc32.Checksum(blob[dirOff:dirOff+dirSize], castagnoli)
	binary.LittleEndian.PutUint32(blob[dirOff+dirSize:], sum)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, OpenOptions{}); err == nil {
		t.Fatal("stale directory (swapped section ranges) accepted")
	}
}

func TestOpenRejectsWrongMagic(t *testing.T) {
	id, chunks := testChunks(t, 10, 0, []int{1}, 10)
	path := writeTemp(t, id, chunks, WriteOptions{})
	blob, _ := os.ReadFile(path)
	copy(blob, "RWDOMIDX") // the v7 magic
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, OpenOptions{}); err == nil {
		t.Fatal("v7 magic accepted by the v8 reader")
	}
}
