package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sync/atomic"
)

// OpenOptions configures the read path.
type OpenOptions struct {
	// Mmap serves the file through a read-only memory mapping: opening is a
	// metadata parse plus one sequential CRC scan (page-in happens lazily as
	// rows are touched), and a file larger than RAM serves through the page
	// cache. Without it the whole file is read into an aligned heap buffer —
	// same bytes, same views, no page-cache residency requirements.
	Mmap bool
	// HotRows sizes the per-chunk decoded-block cache for compressed chunks
	// (rounded up to a power of two): 0 means DefaultHotRows, negative
	// disables caching so every read decodes (the pure decode-on-read mode
	// the overhead benchmark measures).
	HotRows int
}

// FileStats is a snapshot of one file's decode-on-read counters.
type FileStats struct {
	// DecodeHits / DecodeMisses count compressed-span reads served from the
	// hot-row cache vs decoded from the blob. Raw chunks never decode and
	// count nothing.
	DecodeHits   int64
	DecodeMisses int64
	// DecodeErrors counts malformed blocks (writer bug — file corruption is
	// caught by the open-time CRC pass); each one served an empty span
	// rather than panicking.
	DecodeErrors int64
}

// File is an opened v8 store file. All methods are safe for concurrent use.
//
// Lifetime: slices returned by ChunkView.Raw and Spans.NodeSpan alias the
// file's mapping (or heap buffer) and do NOT keep the File reachable on
// their own — the consumer must hold the *File for as long as any view is
// live. internal/index pins it on every store-backed Index; the mapping is
// unmapped by a finalizer once the last reference drops, so eviction never
// races an in-flight query off its pages.
type File struct {
	path     string
	data     []byte
	mapped   bool
	pageSize int64
	id       Identity
	chunks   []chunkMeta

	decodeHits   atomic.Int64
	decodeMisses atomic.Int64
	decodeErrors atomic.Int64
}

type chunkMeta struct {
	r0, width int
	entries   int64
	encoding  uint64
	// sections: byte ranges into File.data, CRC-verified at open.
	secs [3]struct{ off, size int64 }
	// spans is the decode-on-read view of a varint chunk, built at open.
	spans *Spans
}

// Open opens, validates, and (optionally) maps a v8 store file. Every CRC
// (header, directory, all sections) and every structural bound is verified
// before returning: a truncated file, a flipped bit, or a directory whose
// section ranges do not match the payloads fails here — never at query time.
func Open(path string, opts OpenOptions) (*File, error) {
	if err := checkHostEndian(); err != nil {
		return nil, err
	}
	osf, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer osf.Close()
	fi, err := osf.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	if size < int64(headerSize) {
		return nil, fmt.Errorf("store: %s: %d bytes, smaller than the %d-byte header", path, size, headerSize)
	}

	f := &File{path: path}
	if opts.Mmap {
		if data, merr := mmapFile(osf, size); merr == nil {
			f.data = data
			f.mapped = true
			runtime.SetFinalizer(f, func(ff *File) { _ = munmapFile(ff.data) })
		}
	}
	if f.data == nil {
		// Heap fallback: read into an 8-aligned buffer so the int64 section
		// views stay aligned exactly as the page-aligned mapping would be.
		buf := make([]int64, (size+7)/8)
		b := int64Bytes(buf)[:size]
		if _, err := io.ReadFull(osf, b); err != nil {
			return nil, fmt.Errorf("store: read %s: %w", path, err)
		}
		f.data = b
	}

	if err := f.parseAndVerify(opts); err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return f, nil
}

// parseAndVerify checks the header, directory, and every section.
func (f *File) parseAndVerify(opts OpenOptions) error {
	data := f.data
	if string(data[:len(Magic)]) != Magic {
		return fmt.Errorf("bad magic %q", data[:len(Magic)])
	}
	hdrEnd := len(Magic) + headerWords*8
	wantCRC := binary.LittleEndian.Uint32(data[hdrEnd:])
	if got := crc32.Checksum(data[:hdrEnd], castagnoli); got != wantCRC {
		return fmt.Errorf("corrupt header: checksum %08x, want %08x", got, wantCRC)
	}
	var h [headerWords]uint64
	for i := range h {
		h[i] = binary.LittleEndian.Uint64(data[len(Magic)+i*8:])
	}
	if h[0] != Version {
		return fmt.Errorf("unsupported version %d (want %d)", h[0], Version)
	}
	f.id = Identity{
		Fingerprint: h[1],
		Epoch:       h[2],
		N:           int(h[3]),
		L:           int(h[4]),
		R:           int(h[5]),
		R0:          int(h[6]),
		Seed:        h[7],
		Entries:     int64(h[8]),
	}
	chunkCount := h[9]
	f.pageSize = int64(h[10])
	if h[4] > 1<<16-1 || h[5] == 0 || h[5] > 1<<31 || h[6] > 1<<31 || h[3] > 1<<31 {
		return fmt.Errorf("implausible parameters n=%d L=%d R=%d R0=%d", h[3], h[4], h[5], h[6])
	}
	if chunkCount == 0 || chunkCount > h[5] {
		return fmt.Errorf("implausible chunk count %d for R=%d", chunkCount, h[5])
	}
	if f.id.Entries > int64(f.id.N)*int64(f.id.R)*int64(f.id.L) {
		return fmt.Errorf("entry count %d exceeds nRL bound", f.id.Entries)
	}
	if f.pageSize < 512 || f.pageSize&(f.pageSize-1) != 0 || f.pageSize > 1<<24 {
		return fmt.Errorf("implausible page size %d", f.pageSize)
	}

	dirOff := int64(headerSize)
	dirSize := int64(chunkCount) * dirEntrySize
	if dirOff+dirSize+4 > int64(len(data)) {
		return fmt.Errorf("truncated directory (%d chunks, %d bytes)", chunkCount, len(data))
	}
	dir := data[dirOff : dirOff+dirSize]
	wantCRC = binary.LittleEndian.Uint32(data[dirOff+dirSize:])
	if got := crc32.Checksum(dir, castagnoli); got != wantCRC {
		return fmt.Errorf("corrupt directory: checksum %08x, want %08x", got, wantCRC)
	}

	f.chunks = make([]chunkMeta, chunkCount)
	next := f.id.R0
	var totalEntries int64
	for c := range f.chunks {
		e := dir[c*dirEntrySize:]
		word := func(i int) uint64 { return binary.LittleEndian.Uint64(e[i*8:]) }
		m := &f.chunks[c]
		m.r0 = int(word(0))
		m.width = int(word(1))
		m.entries = int64(word(2))
		m.encoding = word(3)
		if m.r0 != next || m.width <= 0 || m.r0+m.width > f.id.R0+f.id.R {
			return fmt.Errorf("chunk %d range [%d, %d) (expected start %d within [%d, %d))",
				c, m.r0, m.r0+m.width, next, f.id.R0, f.id.R0+f.id.R)
		}
		if m.entries < 0 || m.entries > int64(m.width)*int64(f.id.N)*int64(f.id.L) {
			return fmt.Errorf("chunk %d entry count %d exceeds its nRL bound", c, m.entries)
		}
		if m.encoding != encodingRaw && m.encoding != encodingVarint {
			return fmt.Errorf("chunk %d unknown encoding %d", c, m.encoding)
		}
		rows := int64(m.width) * int64(f.id.N)
		var wantSizes [3]int64
		if m.encoding == encodingRaw {
			wantSizes = [3]int64{(rows + 1) * 8, m.entries * 4, m.entries * 2}
		} else {
			wantSizes = [3]int64{int64(f.id.N+1) * 8, -1, 0}
		}
		for s := 0; s < 3; s++ {
			off := int64(word(4 + s*3))
			sz := int64(word(4 + s*3 + 1))
			crc := uint32(word(4 + s*3 + 2))
			if wantSizes[s] >= 0 && sz != wantSizes[s] {
				return fmt.Errorf("chunk %d section %d: %d bytes, want %d (stale directory?)", c, s, sz, wantSizes[s])
			}
			if sz == 0 {
				continue
			}
			if off < int64(headerSize) || off%f.pageSize != 0 || sz < 0 || off+sz > int64(len(data)) {
				return fmt.Errorf("chunk %d section %d: range [%d, %d) outside file of %d bytes", c, s, off, off+sz, len(data))
			}
			if got := crc32.Checksum(data[off:off+sz], castagnoli); got != crc {
				return fmt.Errorf("chunk %d section %d: checksum %08x, want %08x", c, s, got, crc)
			}
			m.secs[s].off, m.secs[s].size = off, sz
		}
		next = m.r0 + m.width
		totalEntries += m.entries

		// Structural validation of the aliased arrays: the CRCs above catch
		// corruption, these catch a writer that serialized garbage — the
		// span bounds in particular must hold before gain loops slice with
		// them. Mirrors the v7 reader's checks, minus its decode and copy.
		if m.encoding == encodingRaw {
			offs := bytesInt64(f.section(m, 0))
			if offs[0] != 0 || offs[rows] != m.entries {
				return fmt.Errorf("chunk %d offsets (start %d, end %d, entries %d)", c, offs[0], offs[rows], m.entries)
			}
			for i := int64(1); i <= rows; i++ {
				if offs[i] < offs[i-1] {
					return fmt.Errorf("chunk %d offsets: decrease at row %d", c, i)
				}
			}
			ids := bytesInt32(f.section(m, 1))
			hops := bytesUint16(f.section(m, 2))
			for i, id := range ids {
				if id < 0 || int(id) >= f.id.N {
					return fmt.Errorf("chunk %d entry %d: node %d out of range", c, i, id)
				}
				if hops[i] == 0 || int(hops[i]) > f.id.L {
					return fmt.Errorf("chunk %d entry %d: hop %d outside [1,%d]", c, i, hops[i], f.id.L)
				}
			}
		} else {
			offs := bytesInt64(f.section(m, 0))
			blobLen := m.secs[1].size
			if offs[0] != 0 || offs[f.id.N] != blobLen {
				return fmt.Errorf("chunk %d block offsets (start %d, end %d, blob %d)", c, offs[0], offs[f.id.N], blobLen)
			}
			for i := 1; i <= f.id.N; i++ {
				if offs[i] < offs[i-1] {
					return fmt.Errorf("chunk %d block offsets: decrease at node %d", c, i)
				}
			}
			m.spans = newSpans(f, m, opts.HotRows)
		}
	}
	if next != f.id.R0+f.id.R {
		return fmt.Errorf("chunks cover [%d, %d), header declares [%d, %d)", f.id.R0, next, f.id.R0, f.id.R0+f.id.R)
	}
	if totalEntries != f.id.Entries {
		return fmt.Errorf("chunks hold %d entries, header declares %d", totalEntries, f.id.Entries)
	}
	return nil
}

// section returns the byte range of one chunk section.
func (f *File) section(m *chunkMeta, s int) []byte {
	sec := m.secs[s]
	return f.data[sec.off : sec.off+sec.size]
}

// Path returns the file path the store was opened from.
func (f *File) Path() string { return f.path }

// Identity returns the build identity from the header.
func (f *File) Identity() Identity { return f.id }

// Mapped reports whether the file is served through an mmap (vs a heap
// buffer).
func (f *File) Mapped() bool { return f.mapped }

// MappedBytes returns the size of the read-only mapping, 0 when heap-loaded.
func (f *File) MappedBytes() int64 {
	if !f.mapped {
		return 0
	}
	return int64(len(f.data))
}

// HeapBytes returns the heap footprint of the loaded file: the full buffer
// when heap-loaded, ~0 when mapped (pages belong to the page cache).
func (f *File) HeapBytes() int64 {
	if f.mapped {
		return 0
	}
	return int64(len(f.data))
}

// Chunks returns the number of replicate chunks in the file.
func (f *File) Chunks() int { return len(f.chunks) }

// Stats snapshots the decode-on-read counters.
func (f *File) Stats() FileStats {
	return FileStats{
		DecodeHits:   f.decodeHits.Load(),
		DecodeMisses: f.decodeMisses.Load(),
		DecodeErrors: f.decodeErrors.Load(),
	}
}

// ChunkView is a read-only view of one chunk.
type ChunkView struct {
	f *File
	m *chunkMeta
}

// Chunk returns the view of chunk c (0-based, in replicate order).
func (f *File) Chunk(c int) ChunkView { return ChunkView{f: f, m: &f.chunks[c]} }

// R0 returns the chunk's first absolute replicate number.
func (cv ChunkView) R0() int { return cv.m.r0 }

// Width returns the chunk's replicate width.
func (cv ChunkView) Width() int { return cv.m.width }

// Entries returns the chunk's materialized entry count.
func (cv ChunkView) Entries() int64 { return cv.m.entries }

// Compressed reports whether the chunk's spans are delta/varint-encoded.
func (cv ChunkView) Compressed() bool { return cv.m.encoding == encodingVarint }

// Raw returns the chunk's CSR arrays aliased directly out of the mapping (or
// heap buffer) with zero copies — raw chunks only. The slices are read-only
// (the mapping is PROT_READ: writes fault) and are valid only while the
// owning *File is reachable.
func (cv ChunkView) Raw() (offsets []int64, ids []int32, hops []uint16) {
	if cv.Compressed() {
		panic("store: Raw on a compressed chunk")
	}
	return bytesInt64(cv.f.section(cv.m, 0)), bytesInt32(cv.f.section(cv.m, 1)), bytesUint16(cv.f.section(cv.m, 2))
}

// Spans returns the decode-on-read view of a compressed chunk — nil for raw
// chunks (use Raw).
func (cv ChunkView) Spans() *Spans { return cv.m.spans }
