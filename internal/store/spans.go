package store

import "sync/atomic"

// Spans serves a compressed chunk's rows by decode-on-read: NodeSpan(u)
// returns node u's block — all of the chunk's replicate rows for u — in
// exactly the shape the heap-resident hot paths consume, decoding from the
// mapped blob on demand.
//
// A direct-mapped cache of decoded blocks (atomic.Pointer slots, lock-free
// for readers and writers) keeps hot rows materialized: a selection sweep
// touches the same candidate blocks every round, so steady-state reads are a
// slot load + pointer compare, preserving the contiguous-span win the layout
// ablations measured while cold rows stay compressed on the map. Concurrent
// decoders of the same cold block may race benignly — both decode, one's
// result wins the slot, answers are identical either way.
type Spans struct {
	f     *File
	m     *chunkMeta
	n     int
	width int
	// blockOffs/blob alias the file's pages.
	blockOffs []int64
	blob      []byte
	// slots is the direct-mapped decoded-block cache (nil: caching disabled,
	// every read decodes). mask = len(slots)-1, a power of two.
	slots []atomic.Pointer[decoded]
	mask  uint32
	// empty is the span served for a malformed block (decode error): zero
	// entries in every row — never garbage, never a panic.
	empty *decoded
}

func newSpans(f *File, m *chunkMeta, hotRows int) *Spans {
	s := &Spans{
		f:         f,
		m:         m,
		n:         f.id.N,
		width:     m.width,
		blockOffs: bytesInt64(f.section(m, 0)),
		blob:      f.section(m, 1),
		empty:     &decoded{u: -1, offs: make([]int64, m.width+1)},
	}
	if hotRows == 0 {
		hotRows = DefaultHotRows
	}
	if hotRows > 0 {
		size := 1
		for size < hotRows {
			size <<= 1
		}
		s.slots = make([]atomic.Pointer[decoded], size)
		s.mask = uint32(size - 1)
	}
	return s
}

// NodeSpan returns node u's rows: row i of the chunk is
// ids[offs[i]:offs[i+1]] with parallel hops. The slices are read-only and
// valid while the owning *File is reachable (cached blocks are heap-resident
// but follow the same rule for uniformity).
func (s *Spans) NodeSpan(u int) (offs []int64, ids []int32, hops []uint16) {
	var slot *atomic.Pointer[decoded]
	if s.slots != nil {
		slot = &s.slots[uint32(u)&s.mask]
		if d := slot.Load(); d != nil && int(d.u) == u {
			s.f.decodeHits.Add(1)
			return d.offs, d.ids, d.hops
		}
	}
	s.f.decodeMisses.Add(1)
	d := s.decode(u)
	if slot != nil && d != s.empty {
		slot.Store(d)
	}
	return d.offs, d.ids, d.hops
}

// decode materializes node u's block from the blob. The open-time CRC pass
// makes a malformed block unreachable short of a writer bug; if one appears
// anyway it is counted and served as an empty span, never a panic.
func (s *Spans) decode(u int) *decoded {
	lo, hi := s.blockOffs[u], s.blockOffs[u+1]
	d, err := decodeBlock(s.blob[lo:hi], u, s.width, s.n, s.f.id.L)
	if err != nil {
		s.f.decodeErrors.Add(1)
		return s.empty
	}
	return d
}

// Materialize decodes the whole chunk into fresh compact CSR arrays — the
// store→heap promotion path mutation forces (Repair needs writable arrays),
// and the bridge for re-serializing a store-backed index.
func (s *Spans) Materialize() (offsets []int64, ids []int32, hops []uint16, err error) {
	rows := int64(s.n) * int64(s.width)
	offsets = make([]int64, rows+1)
	ids = make([]int32, 0, s.m.entries)
	hops = make([]uint16, 0, s.m.entries)
	for u := 0; u < s.n; u++ {
		lo, hi := s.blockOffs[u], s.blockOffs[u+1]
		d, derr := decodeBlock(s.blob[lo:hi], u, s.width, s.n, s.f.id.L)
		if derr != nil {
			return nil, nil, nil, derr
		}
		base := int64(u) * int64(s.width)
		for i := 0; i <= s.width; i++ {
			offsets[base+int64(i)] = int64(len(ids)) + d.offs[i]
		}
		ids = append(ids, d.ids...)
		hops = append(hops, d.hops...)
	}
	offsets[rows] = int64(len(ids))
	return offsets, ids, hops, nil
}
