package store

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Delta/varint codec for compressed chunks. One node's block holds the
// node's replicate rows back to back; within a row, ids are strictly
// ascending so consecutive deltas stay small and most entries encode in
// 2–3 bytes (delta + hop) instead of the raw 6.

// rowSorter orders one row's (id, hop) pairs by id for encoding. The
// sharded build's atomic fallback path may scatter a row's entries out of
// source order; every consumer accumulates in integers so answers are
// order-independent, but the delta codec needs ascending ids, so the writer
// canonicalizes. A source appears at most once per row (first-visit
// semantics), so the order is total.
type rowSorter struct {
	ids  []int32
	hops []uint16
}

func (s *rowSorter) Len() int           { return len(s.ids) }
func (s *rowSorter) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s *rowSorter) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.hops[i], s.hops[j] = s.hops[j], s.hops[i]
}

// sortedRow returns row entries sorted ascending by id, reusing scratch when
// a copy is needed; rows that are already sorted (the common case — every
// build path except the atomic-counter fallback emits them sorted) are
// returned as-is with zero copies.
func sortedRow(ids []int32, hops []uint16, scratch *rowSorter) ([]int32, []uint16) {
	sorted := true
	for e := 1; e < len(ids); e++ {
		if ids[e] < ids[e-1] {
			sorted = false
			break
		}
	}
	if sorted {
		return ids, hops
	}
	scratch.ids = append(scratch.ids[:0], ids...)
	scratch.hops = append(scratch.hops[:0], hops...)
	sort.Sort(scratch)
	return scratch.ids, scratch.hops
}

// encodeBlock appends node u's block — the chunk's width rows for u — to dst
// and returns it. offsets/ids/hops are the chunk's compact CSR.
func encodeBlock(dst []byte, u, width int, offsets []int64, ids []int32, hops []uint16, scratch *rowSorter) []byte {
	base := int64(u) * int64(width)
	for i := int64(0); i < int64(width); i++ {
		lo, hi := offsets[base+i], offsets[base+i+1]
		rid, rhop := sortedRow(ids[lo:hi], hops[lo:hi], scratch)
		dst = binary.AppendUvarint(dst, uint64(len(rid)))
		prev := int32(-1)
		for e := range rid {
			dst = binary.AppendUvarint(dst, uint64(rid[e]-prev))
			dst = binary.AppendUvarint(dst, uint64(rhop[e]))
			prev = rid[e]
		}
	}
	return dst
}

// decoded is one node's decoded block: local row bounds (offs[i]:offs[i+1]
// indexes ids/hops for row i) plus the entry arrays — the same shape the
// heap-resident hot paths consume, so store-backed gain arithmetic is
// line-for-line identical to heap-resident and therefore bit-identical.
type decoded struct {
	u    int32
	offs []int64
	ids  []int32
	hops []uint16
}

// decodeBlock decodes node u's block from blob. Every read is bounds-checked
// and every decoded id/hop validated, so a malformed block (impossible after
// the open-time CRC pass short of a writer bug) returns an error instead of
// panicking or serving garbage.
func decodeBlock(blob []byte, u, width, n, maxHop int) (*decoded, error) {
	d := &decoded{u: int32(u), offs: make([]int64, width+1)}
	pos := 0
	for i := 0; i < width; i++ {
		d.offs[i] = int64(len(d.ids))
		rowLen, sz := binary.Uvarint(blob[pos:])
		if sz <= 0 {
			return nil, fmt.Errorf("store: node %d row %d: truncated row length", u, i)
		}
		pos += sz
		if rowLen > uint64(n) {
			return nil, fmt.Errorf("store: node %d row %d: length %d exceeds n=%d", u, i, rowLen, n)
		}
		prev := int64(-1)
		for e := uint64(0); e < rowLen; e++ {
			delta, sz := binary.Uvarint(blob[pos:])
			if sz <= 0 {
				return nil, fmt.Errorf("store: node %d row %d: truncated id delta", u, i)
			}
			pos += sz
			hop, sz := binary.Uvarint(blob[pos:])
			if sz <= 0 {
				return nil, fmt.Errorf("store: node %d row %d: truncated hop", u, i)
			}
			pos += sz
			id := prev + int64(delta)
			if delta == 0 || id >= int64(n) {
				return nil, fmt.Errorf("store: node %d row %d: id %d out of range (delta %d)", u, i, id, delta)
			}
			if hop == 0 || hop > uint64(maxHop) {
				return nil, fmt.Errorf("store: node %d row %d: hop %d outside [1,%d]", u, i, hop, maxHop)
			}
			d.ids = append(d.ids, int32(id))
			d.hops = append(d.hops, uint16(hop))
			prev = id
		}
	}
	if pos != len(blob) {
		return nil, fmt.Errorf("store: node %d: block has %d trailing bytes", u, len(blob)-pos)
	}
	d.offs[width] = int64(len(d.ids))
	return d, nil
}
