//go:build !unix

package store

import (
	"fmt"
	"os"
)

// mmapFile on platforms without syscall.Mmap support: Open falls back to the
// aligned heap read path, which serves the same bytes with the same
// validation — only the O(1)-page-in property is lost.
func mmapFile(*os.File, int64) ([]byte, error) {
	return nil, fmt.Errorf("store: mmap unsupported on this platform")
}

func munmapFile([]byte) error { return nil }
