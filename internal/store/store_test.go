package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// testChunks builds a deterministic multi-chunk CSR fixture: n nodes, chunks
// of the given widths starting at r0, row lengths and entries drawn from a
// seeded RNG with ids ascending (the canonical build layout).
func testChunks(t *testing.T, n, r0 int, widths []int, seed int64) (Identity, []Chunk) {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	const L = 9
	id := Identity{Fingerprint: 0xfeedface, Epoch: 3, N: n, L: L, R0: r0, Seed: 42}
	var chunks []Chunk
	next := r0
	for _, w := range widths {
		rows := w * n
		ch := Chunk{R0: next, Width: w, Offsets: make([]int64, rows+1)}
		for k := 0; k < rows; k++ {
			ch.Offsets[k+1] = ch.Offsets[k]
			rowLen := rnd.Intn(5)
			if rowLen > n {
				rowLen = n
			}
			perm := rnd.Perm(n)[:rowLen]
			ids := make([]int, rowLen)
			copy(ids, perm)
			// ascending ids, like the build emits
			for i := 1; i < len(ids); i++ {
				for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
					ids[j], ids[j-1] = ids[j-1], ids[j]
				}
			}
			for _, v := range ids {
				ch.Ids = append(ch.Ids, int32(v))
				ch.Hops = append(ch.Hops, uint16(1+rnd.Intn(L)))
				ch.Offsets[k+1]++
			}
		}
		id.Entries += int64(len(ch.Ids))
		id.R += w
		next += w
		chunks = append(chunks, ch)
	}
	return id, chunks
}

func writeTemp(t *testing.T, id Identity, chunks []Chunk, opts WriteOptions) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.rwdomidx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Write(f, id, chunks, opts); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// expectChunk checks a view serves exactly the source chunk's rows.
func expectChunk(t *testing.T, f *File, c int, want Chunk, n int) {
	t.Helper()
	cv := f.Chunk(c)
	if cv.R0() != want.R0 || cv.Width() != want.Width || cv.Entries() != int64(len(want.Ids)) {
		t.Fatalf("chunk %d meta (%d, %d, %d), want (%d, %d, %d)",
			c, cv.R0(), cv.Width(), cv.Entries(), want.R0, want.Width, len(want.Ids))
	}
	if cv.Compressed() {
		sp := cv.Spans()
		for u := 0; u < n; u++ {
			offs, ids, hops := sp.NodeSpan(u)
			base := int64(u) * int64(want.Width)
			for i := 0; i < want.Width; i++ {
				lo, hi := want.Offsets[base+int64(i)], want.Offsets[base+int64(i)+1]
				if !reflect.DeepEqual(append([]int32{}, ids[offs[i]:offs[i+1]]...), append([]int32{}, want.Ids[lo:hi]...)) {
					t.Fatalf("chunk %d node %d row %d ids mismatch", c, u, i)
				}
				if !reflect.DeepEqual(append([]uint16{}, hops[offs[i]:offs[i+1]]...), append([]uint16{}, want.Hops[lo:hi]...)) {
					t.Fatalf("chunk %d node %d row %d hops mismatch", c, u, i)
				}
			}
		}
	} else {
		offsets, ids, hops := cv.Raw()
		if !reflect.DeepEqual(append([]int64{}, offsets...), want.Offsets) {
			t.Fatalf("chunk %d raw offsets mismatch", c)
		}
		if len(want.Ids) != 0 && (!reflect.DeepEqual(append([]int32{}, ids...), want.Ids) || !reflect.DeepEqual(append([]uint16{}, hops...), want.Hops)) {
			t.Fatalf("chunk %d raw entries mismatch", c)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		for _, mmap := range []bool{false, true} {
			id, chunks := testChunks(t, 60, 5, []int{4, 4, 3}, 1)
			path := writeTemp(t, id, chunks, WriteOptions{Compress: compress})
			f, err := Open(path, OpenOptions{Mmap: mmap})
			if err != nil {
				t.Fatalf("compress=%v mmap=%v: Open: %v", compress, mmap, err)
			}
			if f.Identity() != id {
				t.Fatalf("identity %+v, want %+v", f.Identity(), id)
			}
			if f.Chunks() != len(chunks) {
				t.Fatalf("%d chunks, want %d", f.Chunks(), len(chunks))
			}
			for c, ch := range chunks {
				expectChunk(t, f, c, ch, id.N)
			}
			if mmap != f.Mapped() {
				t.Fatalf("Mapped() = %v, want %v", f.Mapped(), mmap)
			}
			if mmap && f.MappedBytes() == 0 {
				t.Fatal("mapped file reports 0 mapped bytes")
			}
		}
	}
}

func TestCompressedSmallerThanRaw(t *testing.T) {
	id, chunks := testChunks(t, 200, 0, []int{16}, 2)
	raw := writeTemp(t, id, chunks, WriteOptions{})
	comp := writeTemp(t, id, chunks, WriteOptions{Compress: true})
	ri, _ := os.Stat(raw)
	ci, _ := os.Stat(comp)
	if ci.Size() >= ri.Size() {
		t.Fatalf("compressed %d bytes >= raw %d bytes", ci.Size(), ri.Size())
	}
}

// TestWriterSortsUnsortedRows pins the canonicalization: the atomic-fallback
// build path may emit rows out of source order; the compressed writer must
// sort them (delta coding needs ascending ids) and serve the same multiset.
func TestWriterSortsUnsortedRows(t *testing.T) {
	id := Identity{Fingerprint: 1, N: 5, L: 4, R: 1, Seed: 9, Entries: 3}
	ch := Chunk{
		Width:   1,
		Offsets: []int64{0, 3, 3, 3, 3, 3},
		Ids:     []int32{4, 1, 2},
		Hops:    []uint16{2, 3, 1},
	}
	path := writeTemp(t, id, []Chunk{ch}, WriteOptions{Compress: true})
	f, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	offs, ids, hops := f.Chunk(0).Spans().NodeSpan(0)
	if offs[1]-offs[0] != 3 {
		t.Fatalf("row length %d, want 3", offs[1]-offs[0])
	}
	wantIds := []int32{1, 2, 4}
	wantHops := []uint16{3, 1, 2}
	for e := 0; e < 3; e++ {
		if ids[e] != wantIds[e] || hops[e] != wantHops[e] {
			t.Fatalf("entry %d = (%d, %d), want (%d, %d)", e, ids[e], hops[e], wantIds[e], wantHops[e])
		}
	}
}

func TestHotRowCacheCounters(t *testing.T) {
	id, chunks := testChunks(t, 40, 0, []int{6}, 3)
	path := writeTemp(t, id, chunks, WriteOptions{Compress: true})
	f, err := Open(path, OpenOptions{Mmap: true, HotRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	sp := f.Chunk(0).Spans()
	sp.NodeSpan(7)
	sp.NodeSpan(7)
	sp.NodeSpan(7)
	st := f.Stats()
	if st.DecodeMisses != 1 || st.DecodeHits != 2 {
		t.Fatalf("stats %+v, want 1 miss + 2 hits", st)
	}

	// Caching disabled: every read decodes.
	f2, err := Open(path, OpenOptions{HotRows: -1})
	if err != nil {
		t.Fatal(err)
	}
	sp2 := f2.Chunk(0).Spans()
	sp2.NodeSpan(7)
	sp2.NodeSpan(7)
	if st := f2.Stats(); st.DecodeMisses != 2 || st.DecodeHits != 0 {
		t.Fatalf("uncached stats %+v, want 2 misses", st)
	}
}

func TestMaterializeMatchesSource(t *testing.T) {
	id, chunks := testChunks(t, 50, 0, []int{7}, 4)
	path := writeTemp(t, id, chunks, WriteOptions{Compress: true})
	f, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	offsets, ids, hops, err := f.Chunk(0).Spans().Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(offsets, chunks[0].Offsets) {
		t.Fatal("materialized offsets mismatch")
	}
	if !reflect.DeepEqual(ids, chunks[0].Ids) || !reflect.DeepEqual(hops, chunks[0].Hops) {
		t.Fatal("materialized entries mismatch")
	}
}

func TestConcurrentNodeSpan(t *testing.T) {
	id, chunks := testChunks(t, 128, 0, []int{8}, 5)
	path := writeTemp(t, id, chunks, WriteOptions{Compress: true})
	f, err := Open(path, OpenOptions{Mmap: true, HotRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	sp := f.Chunk(0).Spans()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for iter := 0; iter < 200; iter++ {
				u := (g*37 + iter) % id.N
				offs, ids, _ := sp.NodeSpan(u)
				if int64(len(ids)) != offs[len(offs)-1] {
					t.Errorf("node %d: %d ids, offs end %d", u, len(ids), offs[len(offs)-1])
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if st := f.Stats(); st.DecodeErrors != 0 {
		t.Fatalf("decode errors: %+v", st)
	}
}

func TestWriteRejectsBadChunks(t *testing.T) {
	id, chunks := testChunks(t, 20, 0, []int{2, 2}, 6)
	bad := make([]Chunk, len(chunks))
	copy(bad, chunks)
	bad[1].R0 = 5 // gap
	if _, err := Write(discard{}, id, bad, WriteOptions{}); err == nil {
		t.Fatal("gap in chunk ranges accepted")
	}
	short := chunks[0]
	short.Offsets = short.Offsets[:len(short.Offsets)-1]
	if _, err := Write(discard{}, id, []Chunk{short}, WriteOptions{}); err == nil {
		t.Fatal("short offsets accepted")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
