//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapFile maps the whole file read-only. The mapping is private to the
// *File that owns it and is released by its finalizer (see Open): slices
// aliasing the mapping are not tracked by the GC, so consumers pin the
// owning *File instead.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
