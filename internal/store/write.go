package store

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
)

// WriteOptions configures the writer.
type WriteOptions struct {
	// Compress delta/varint-encodes every chunk's spans (encoding 1) instead
	// of storing the raw arrays (encoding 0). Compressed files are typically
	// 2–3× smaller; raw files serve reads with zero decode work when mmap'd.
	Compress bool
	// PageSize overrides the section alignment; 0 means DefaultPageSize.
	// Must be a power of two ≥ 512 (so int64 sections stay 8-aligned and the
	// alignment survives any real mmap granularity).
	PageSize int
}

// section is one laid-out payload section: its final file range, checksum,
// and the byte fragments that produce it.
type section struct {
	off, size int64
	crc       uint32
	frags     [][]byte
}

// Write serializes chunks under the given identity in format v8. The layout
// is computed up front (section offsets, lengths and CRCs included), so the
// stream is written strictly forward — no seeking — which keeps it compatible
// with the cache's temp-file + fsync + rename spill path.
func Write(w io.Writer, id Identity, chunks []Chunk, opts WriteOptions) (int64, error) {
	if err := checkHostEndian(); err != nil {
		return 0, err
	}
	page := int64(opts.PageSize)
	if page == 0 {
		page = DefaultPageSize
	}
	if page < 512 || page&(page-1) != 0 {
		return 0, fmt.Errorf("store: page size %d, want a power of two >= 512", page)
	}
	if len(chunks) == 0 {
		return 0, fmt.Errorf("store: no chunks to write")
	}
	if id.N < 0 || id.L < 0 || id.L > 1<<16-1 || id.R <= 0 || id.R0 < 0 {
		return 0, fmt.Errorf("store: implausible identity n=%d L=%d R=%d R0=%d", id.N, id.L, id.R, id.R0)
	}

	// Validate the chunk ranges and precompute every section: raw sections
	// alias the caller's arrays (zero copies), varint sections are encoded
	// into fresh buffers.
	encoding := uint64(encodingRaw)
	if opts.Compress {
		encoding = encodingVarint
	}
	next := id.R0
	var totalEntries int64
	secs := make([][3]section, len(chunks))
	var scratch rowSorter
	for c, ch := range chunks {
		if ch.R0 != next || ch.Width <= 0 || ch.R0+ch.Width > id.R0+id.R {
			return 0, fmt.Errorf("store: chunk %d range [%d, %d) (expected start %d within [%d, %d))",
				c, ch.R0, ch.R0+ch.Width, next, id.R0, id.R0+id.R)
		}
		rows := int64(ch.Width) * int64(id.N)
		if int64(len(ch.Offsets)) != rows+1 {
			return 0, fmt.Errorf("store: chunk %d has %d offsets, want %d", c, len(ch.Offsets), rows+1)
		}
		entries := ch.Offsets[rows]
		if ch.Offsets[0] != 0 || entries != int64(len(ch.Ids)) || len(ch.Ids) != len(ch.Hops) {
			return 0, fmt.Errorf("store: chunk %d arrays inconsistent (entries %d, ids %d, hops %d)",
				c, entries, len(ch.Ids), len(ch.Hops))
		}
		totalEntries += entries
		next = ch.R0 + ch.Width
		if opts.Compress {
			blockOffs := make([]int64, id.N+1)
			// Size hint: compressed entries usually take 2–4 bytes vs raw 6.
			blob := make([]byte, 0, entries*3+rows)
			for u := 0; u < id.N; u++ {
				blockOffs[u] = int64(len(blob))
				blob = encodeBlock(blob, u, ch.Width, ch.Offsets, ch.Ids, ch.Hops, &scratch)
			}
			blockOffs[id.N] = int64(len(blob))
			secs[c][0].frags = [][]byte{int64Bytes(blockOffs)}
			secs[c][1].frags = [][]byte{blob}
		} else {
			secs[c][0].frags = [][]byte{int64Bytes(ch.Offsets)}
			secs[c][1].frags = [][]byte{int32Bytes(ch.Ids)}
			secs[c][2].frags = [][]byte{uint16Bytes(ch.Hops)}
		}
	}
	if next != id.R0+id.R {
		return 0, fmt.Errorf("store: chunks cover [%d, %d), identity declares [%d, %d)", id.R0, next, id.R0, id.R0+id.R)
	}
	if id.Entries != 0 && id.Entries != totalEntries {
		return 0, fmt.Errorf("store: identity declares %d entries, chunks hold %d", id.Entries, totalEntries)
	}

	// Lay the sections out page-aligned after the header + directory, and
	// checksum each one so the directory can be emitted in the same forward
	// pass as everything else.
	pos := int64(headerSize + len(chunks)*dirEntrySize + 4)
	for c := range secs {
		for s := range secs[c] {
			sec := &secs[c][s]
			for _, frag := range sec.frags {
				sec.size += int64(len(frag))
			}
			if sec.size == 0 {
				continue
			}
			pos = alignUp(pos, page)
			sec.off = pos
			pos += sec.size
			sum := crc32.New(castagnoli)
			for _, frag := range sec.frags {
				sum.Write(frag)
			}
			sec.crc = sum.Sum32()
		}
	}

	header := make([]byte, 0, headerSize)
	header = append(header, Magic...)
	for _, v := range []uint64{
		Version, id.Fingerprint, id.Epoch,
		uint64(id.N), uint64(id.L), uint64(id.R), uint64(id.R0),
		id.Seed, uint64(totalEntries), uint64(len(chunks)), uint64(page), 0,
	} {
		header = putUint64(header, v)
	}
	header = binary32(header, crc32.Checksum(header, castagnoli))

	dir := make([]byte, 0, len(chunks)*dirEntrySize+4)
	for c, ch := range chunks {
		entries := ch.Offsets[int64(ch.Width)*int64(id.N)]
		dir = putUint64(dir, uint64(ch.R0))
		dir = putUint64(dir, uint64(ch.Width))
		dir = putUint64(dir, uint64(entries))
		dir = putUint64(dir, encoding)
		for s := range secs[c] {
			sec := &secs[c][s]
			dir = putUint64(dir, uint64(sec.off))
			dir = putUint64(dir, uint64(sec.size))
			dir = putUint64(dir, uint64(sec.crc))
		}
	}
	dir = binary32(dir, crc32.Checksum(dir, castagnoli))

	bw := bufio.NewWriterSize(w, 1<<20)
	written := int64(0)
	emit := func(b []byte) error {
		n, err := bw.Write(b)
		written += int64(n)
		return err
	}
	if err := emit(header); err != nil {
		return written, fmt.Errorf("store: write header: %w", err)
	}
	if err := emit(dir); err != nil {
		return written, fmt.Errorf("store: write directory: %w", err)
	}
	var pad [DefaultPageSize]byte
	for c := range secs {
		for s := range secs[c] {
			sec := &secs[c][s]
			if sec.size == 0 {
				continue
			}
			for written < sec.off {
				gap := sec.off - written
				if gap > int64(len(pad)) {
					gap = int64(len(pad))
				}
				if err := emit(pad[:gap]); err != nil {
					return written, fmt.Errorf("store: write padding: %w", err)
				}
			}
			for _, frag := range sec.frags {
				if err := emit(frag); err != nil {
					return written, fmt.Errorf("store: write chunk %d section %d: %w", c, s, err)
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return written, fmt.Errorf("store: flush: %w", err)
	}
	return written, nil
}

// binary32 appends v little-endian as 4 bytes.
func binary32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
