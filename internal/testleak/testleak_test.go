package testleak

import (
	"strings"
	"testing"
	"time"
)

func TestNoLeakPasses(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

func TestTransientGoroutineWithinGraceIsNotALeak(t *testing.T) {
	Check(t)
	go func() { time.Sleep(50 * time.Millisecond) }()
}

// TestDetectsLeak exercises the detector against a real leak using a stub
// testing.TB, since a genuine leak must fail that test — not this one.
func TestDetectsLeak(t *testing.T) {
	stub := &stubTB{TB: t}
	before := goroutineIDs(stacks())
	block := make(chan struct{})
	defer close(block)
	go func() { <-block }()
	// Wait for the leak to be running, then diff.
	deadline := time.Now().Add(5 * time.Second)
	for len(leakedSince(before)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leaked goroutine never appeared in the diff")
		}
		time.Sleep(time.Millisecond)
	}
	leaked := leakedSince(before)
	if len(leaked) != 1 {
		t.Fatalf("leaked = %d stanzas, want 1:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	}
	if !strings.Contains(leaked[0], "TestDetectsLeak") {
		t.Fatalf("leak stanza does not name its creator:\n%s", leaked[0])
	}
	_ = stub
}

type stubTB struct {
	testing.TB
	failed bool
}

func (s *stubTB) Errorf(string, ...any) { s.failed = true }
func (s *stubTB) Cleanup(func())        {}
func (s *stubTB) Helper()               {}
