// Package testleak is a dependency-free goroutine-leak detector for test
// teardowns: snapshot the live goroutines when the test starts, and at
// cleanup poll until every goroutine created during the test has exited —
// failing with the surviving stacks if any are still alive after a grace
// period. The server, engine, client and chaos suites wire it into their
// teardowns so a leaked selection goroutine, un-released waiter, or spinning
// retry loop fails the suite instead of accumulating silently.
//
// The check is snapshot-based rather than allowlist-based: goroutines that
// existed before the test (the test runner, the sweeper, signal handling)
// are ignored wherever they block, so the helper composes with any test
// environment without a fragile pattern list. The one pattern filter it does
// apply is for goroutines the Go runtime parks for reuse after a test's work
// is done ("created by runtime" stanzas), which come and go on their own
// schedule.
package testleak

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// grace is how long teardown waits for goroutines to finish exiting before
// declaring them leaked: shutdown paths are allowed to be asynchronous
// (detached index builds, background spills), they are not allowed to be
// eternal.
const grace = 10 * time.Second

// Check snapshots the live goroutines and registers a cleanup that fails t
// if goroutines created after the snapshot are still running at teardown.
// Call it first thing in the test (before starting servers or engines) so
// everything the test creates is covered.
func Check(t testing.TB) {
	t.Helper()
	before := goroutineIDs(stacks())
	t.Cleanup(func() {
		deadline := time.Now().Add(grace)
		for {
			leaked := leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("testleak: %d goroutine(s) leaked:\n\n%s",
					len(leaked), strings.Join(leaked, "\n\n"))
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// stacks returns the stack dump of every live goroutine.
func stacks() string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return string(buf[:n])
		}
		buf = make([]byte, len(buf)*2)
	}
}

// goroutineIDs parses a full stack dump into the set of goroutine ids.
func goroutineIDs(dump string) map[string]bool {
	ids := make(map[string]bool)
	for _, stanza := range strings.Split(dump, "\n\n") {
		if id := idOf(stanza); id != "" {
			ids[id] = true
		}
	}
	return ids
}

// idOf extracts the goroutine id from a stanza's "goroutine N [state]:"
// first line, or "" for non-goroutine text.
func idOf(stanza string) string {
	var id int
	var state string
	if _, err := fmt.Sscanf(stanza, "goroutine %d [%s", &id, &state); err != nil {
		return ""
	}
	return fmt.Sprintf("%d", id)
}

// leakedSince returns the stack stanzas of goroutines not present in the
// before snapshot, excluding this goroutine and runtime-parked workers.
func leakedSince(before map[string]bool) []string {
	var leaked []string
	for _, stanza := range strings.Split(stacks(), "\n\n") {
		id := idOf(stanza)
		if id == "" || before[id] {
			continue
		}
		if strings.Contains(stanza, "testleak.stacks") || strings.Contains(stanza, "testleak.leakedSince") {
			continue // the goroutine running this check
		}
		if strings.Contains(stanza, "created by runtime") {
			continue // runtime-managed workers (GC, parked M helpers)
		}
		if strings.Contains(stanza, "created by testing.") {
			continue // sibling tests and the test runner's own machinery
		}
		leaked = append(leaked, stanza)
	}
	return leaked
}
