package shard

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/index"
)

// BenchmarkShardIndexBuild measures what sharding buys: the wall time and
// resident bytes of the partial index ONE worker process materializes,
// versus shard count. A shard owns [s·R/N, (s+1)·R/N), so both should
// scale down ~linearly in N — that is the whole case for the topology,
// since the merged answers are bit-identical regardless.
func BenchmarkShardIndexBuild(b *testing.B) {
	const (
		n    = 20000
		L    = 5
		R    = 48
		seed = 7
	)
	g, err := graph.BarabasiAlbert(n, 3, seed)
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			// Shard 0's slice of the balanced split [s·R/N, (s+1)·R/N).
			r0, r1 := 0, R/shards
			var bytes int64
			for i := 0; i < b.N; i++ {
				ix, err := index.BuildRangeWorkers(g, L, seed, r0, r1, 0)
				if err != nil {
					b.Fatal(err)
				}
				bytes = ix.MemoryBytes()
			}
			b.ReportMetric(float64(bytes), "index_bytes/proc")
		})
	}
}
