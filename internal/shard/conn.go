// Package shard is the coordinator half of replicate-sharded serving: it
// owns a fixed set of worker connections, splits every request's replicate
// range [0, R) into per-worker subranges, scatter-gathers the workers'
// integer partial answers, and merges them exactly.
//
// The merge is exact because gains in this system accumulate as integer
// sums over replicates and the per-(node, replicate) walk seeding makes a
// range build a deterministic slice of the full build: summing the
// disjoint subranges' int64 partial sums reproduces the full build's sums
// bit-for-bit, and the coordinator performs the single float64 division
// (and the greedy argmax over the resulting values) with exactly the
// arithmetic the unsharded engine uses. Selections, gains, objectives and
// top-B rankings are therefore bit-identical to the unsharded engine for
// every worker count.
package shard

import (
	"context"
	"errors"
	"fmt"

	"repro/client"
	"repro/internal/engine"
)

// Conn is one worker's partial-read surface: the in-process form wraps an
// engine directly, the remote form speaks the /v1/partial endpoints through
// the typed client SDK. Both return engine-typed errors, so the coordinator
// retries and classifies failures uniformly.
type Conn interface {
	// Addr names the worker for stats ("local/0", "http://host:port").
	Addr() string
	PartialGain(ctx context.Context, req engine.PartialGainRequest) (*engine.PartialGainResult, error)
	PartialTopGains(ctx context.Context, req engine.PartialTopGainsRequest) (*engine.PartialTopGainsResult, error)
	// ApplyDelta replays a graph mutation onto the worker. The coordinator
	// broadcasts every applied delta with BaseEpoch pinned to the worker's
	// expected pre-mutation epoch, so a worker that missed an earlier
	// broadcast conflicts instead of silently diverging.
	ApplyDelta(ctx context.Context, req engine.ApplyDeltaRequest) (*engine.ApplyDeltaResult, error)
	Close() error
}

// localConn serves partial reads from an in-process engine. When owned, the
// engine's lifecycle belongs to the conn and Close tears it down.
type localConn struct {
	eng   *engine.Engine
	addr  string
	owned bool
}

// NewLocalConn wraps an in-process engine as a worker connection. The conn
// does not own the engine; closing the conn leaves it running.
func NewLocalConn(eng *engine.Engine, addr string) Conn {
	return &localConn{eng: eng, addr: addr}
}

func (c *localConn) Addr() string { return c.addr }

func (c *localConn) PartialGain(ctx context.Context, req engine.PartialGainRequest) (*engine.PartialGainResult, error) {
	return c.eng.PartialGain(ctx, req)
}

func (c *localConn) PartialTopGains(ctx context.Context, req engine.PartialTopGainsRequest) (*engine.PartialTopGainsResult, error) {
	return c.eng.PartialTopGains(ctx, req)
}

func (c *localConn) ApplyDelta(ctx context.Context, req engine.ApplyDeltaRequest) (*engine.ApplyDeltaResult, error) {
	return c.eng.ApplyDelta(ctx, req)
}

func (c *localConn) Close() error {
	if c.owned {
		return c.eng.Close()
	}
	return nil
}

// remoteConn serves partial reads from a remote worker daemon via the typed
// client SDK. The SDK already retries draining/overloaded replies with
// jittered backoff honoring Retry-After, so a conn-level call only fails
// after the client's retry budget is spent; the coordinator's own retry
// layer sits above that for sustained faults.
type remoteConn struct {
	c    *client.Client
	addr string
}

// NewRemoteConn dials a worker daemon at baseURL (e.g.
// "http://localhost:7475").
func NewRemoteConn(baseURL string, opts ...client.Option) (Conn, error) {
	c, err := client.New(baseURL, opts...)
	if err != nil {
		return nil, err
	}
	return &remoteConn{c: c, addr: baseURL}, nil
}

func (c *remoteConn) Addr() string { return c.addr }

func (c *remoteConn) PartialGain(ctx context.Context, req engine.PartialGainRequest) (*engine.PartialGainResult, error) {
	resp, err := c.c.PartialGain(ctx, client.PartialGainRequest{
		Graph:         req.Graph,
		Problem:       req.Problem.String(),
		L:             req.L,
		Seed:          &req.Seed,
		R0:            req.R0,
		R1:            req.R1,
		Epoch:         req.Epoch,
		Set:           req.Set,
		Nodes:         req.Nodes,
		WantObjective: req.WantObjective,
	})
	if err != nil {
		return nil, engineError(err)
	}
	res := &engine.PartialGainResult{
		Sums:        resp.Sums,
		Replicates:  resp.Replicates,
		IndexCached: resp.IndexCached,
		Memo:        resp.Memo,
		Degraded:    resp.Degraded,
	}
	if req.WantObjective {
		if resp.ObjectiveSum == nil {
			return nil, &engine.Error{Code: engine.CodeInternal, Message: fmt.Sprintf("worker %s: reply missing objective_sum", c.addr)}
		}
		res.ObjectiveSum = *resp.ObjectiveSum
	}
	return res, nil
}

func (c *remoteConn) PartialTopGains(ctx context.Context, req engine.PartialTopGainsRequest) (*engine.PartialTopGainsResult, error) {
	resp, err := c.c.PartialTopGains(ctx, client.PartialTopGainsRequest{
		Graph:   req.Graph,
		Problem: req.Problem.String(),
		L:       req.L,
		Seed:    &req.Seed,
		R0:      req.R0,
		R1:      req.R1,
		Epoch:   req.Epoch,
		Set:     req.Set,
		B:       req.B,
		Workers: req.Workers,
	})
	if err != nil {
		return nil, engineError(err)
	}
	return &engine.PartialTopGainsResult{
		B:           resp.B,
		Nodes:       resp.Nodes,
		Sums:        resp.Sums,
		Exhausted:   resp.Exhausted,
		IndexCached: resp.IndexCached,
		Memo:        resp.Memo,
		Degraded:    resp.Degraded,
	}, nil
}

func (c *remoteConn) ApplyDelta(ctx context.Context, req engine.ApplyDeltaRequest) (*engine.ApplyDeltaResult, error) {
	add := make([]client.Edge, 0, len(req.Delta.AddEdges))
	for _, e := range req.Delta.AddEdges {
		add = append(add, client.Edge{U: e.U, V: e.V, W: e.W})
	}
	remove := make([]client.Edge, 0, len(req.Delta.RemoveEdges))
	for _, e := range req.Delta.RemoveEdges {
		remove = append(remove, client.Edge{U: e.U, V: e.V, W: e.W})
	}
	resp, err := c.c.ApplyDelta(ctx, client.ApplyDeltaRequest{
		Graph:     req.Graph,
		AddNodes:  req.Delta.AddNodes,
		Add:       add,
		Remove:    remove,
		BaseEpoch: req.BaseEpoch,
	})
	if err != nil {
		return nil, engineError(err)
	}
	return &engine.ApplyDeltaResult{
		Epoch:           resp.Epoch,
		Nodes:           resp.Nodes,
		Edges:           resp.Edges,
		Touched:         resp.Touched,
		IndexesRepaired: resp.IndexesRepaired,
		IndexesDropped:  resp.IndexesDropped,
		MemosDropped:    resp.MemosDropped,
	}, nil
}

func (c *remoteConn) Close() error { return nil }

// engineError translates a client SDK error into the engine's typed error
// model. The stable codes are shared verbatim across transports, so a
// worker's bad_request/overloaded/draining classification (and its
// Retry-After hint) survives the hop; transport-level failures (connection
// refused, a killed worker) become CodeInternal.
func engineError(err error) error {
	if err == nil {
		return nil
	}
	var ce *client.Error
	if errors.As(err, &ce) {
		return &engine.Error{Code: engine.Code(ce.Code), Message: ce.Message, RetryAfter: ce.RetryAfter}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &engine.Error{Code: engine.CodeTimeout, Message: err.Error()}
	}
	if errors.Is(err, context.Canceled) {
		return &engine.Error{Code: engine.CodeDraining, Message: err.Error()}
	}
	return &engine.Error{Code: engine.CodeInternal, Message: err.Error()}
}
