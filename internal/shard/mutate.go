package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/graph"
)

// Coordinator-side graph mutation. The coordinator is the single writer of
// the sharded deployment: ApplyDelta applies the delta to the coordinator's
// own graph copy (which validates it and decides the new epoch), then
// broadcasts it to every worker with BaseEpoch pinned to the pre-mutation
// epoch, so a worker that somehow missed an earlier broadcast conflicts
// loudly instead of silently diverging. The write lock excludes resolveParams
// for the duration, which orders every read strictly before or strictly
// after the mutation: a pre-mutation read carries the old epoch pin and
// merges only pre-mutation partial sums, a post-mutation read only starts
// after every worker acknowledged the delta.
//
// On a partial broadcast failure the coordinator still commits the new
// graph: the workers that applied the delta are at the new epoch and the
// coordinator must scatter against them with the pin they can answer. The
// laggard answers every pinned scatter with stale_epoch — a typed,
// retryable, never-silently-merged failure — until it is fixed or replaced.
func (co *Coordinator) ApplyDelta(ctx context.Context, req engine.ApplyDeltaRequest) (*engine.ApplyDeltaResult, error) {
	if req.Delta.Empty() {
		return nil, badRequestf("empty delta")
	}

	co.graphsMu.Lock()
	defer co.graphsMu.Unlock()

	name := req.Graph
	g, ok := co.graphs[name]
	if !ok && name == "" && len(co.graphs) == 1 {
		for only, sole := range co.graphs {
			name, g, ok = only, sole, true
		}
	}
	if !ok {
		return nil, &engine.Error{Code: engine.CodeNotFound, Message: fmt.Sprintf("unknown graph %q", name)}
	}
	base := g.Epoch()
	if req.BaseEpoch != nil && *req.BaseEpoch != base {
		return nil, &engine.Error{
			Code:    engine.CodeConflict,
			Message: fmt.Sprintf("graph %q is at epoch %d, request expected %d", name, base, *req.BaseEpoch),
		}
	}
	ng, touched, err := g.ApplyDelta(req.Delta)
	if err != nil {
		if errors.Is(err, graph.ErrEdgeExists) || errors.Is(err, graph.ErrEdgeMissing) {
			return nil, &engine.Error{Code: engine.CodeConflict, Message: err.Error()}
		}
		return nil, &engine.Error{Code: engine.CodeBadRequest, Message: err.Error()}
	}

	// Broadcast to every worker (not just the spans of some R): each worker
	// validated the same delta against the same pre-mutation graph state, so
	// all of them land on a structurally identical graph at the same epoch.
	breq := req
	breq.Graph = name
	breq.BaseEpoch = &base
	runCtx, cancel := co.Context(ctx, 0)
	defer cancel()
	results := make([]*engine.ApplyDeltaResult, len(co.conns))
	errs := make([]error, len(co.conns))
	var wg sync.WaitGroup
	for i := range co.conns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = co.withRetry(runCtx, i, func() error {
				var err error
				results[i], err = co.conns[i].ApplyDelta(runCtx, breq)
				return err
			})
		}(i)
	}
	wg.Wait()

	// Commit before reporting any worker failure — see the doc comment.
	co.graphs[name] = ng

	res := &engine.ApplyDeltaResult{
		Epoch:   ng.Epoch(),
		Nodes:   ng.N(),
		Edges:   ng.M(),
		Touched: len(touched),
	}
	for i, r := range results {
		if errs[i] != nil {
			return nil, fmt.Errorf("shard: worker %s failed to apply delta (cluster now at epoch %d, worker likely stale): %w",
				co.conns[i].Addr(), ng.Epoch(), errs[i])
		}
		res.IndexesRepaired += r.IndexesRepaired
		res.IndexesDropped += r.IndexesDropped
		res.MemosDropped += r.MemosDropped
	}
	return res, nil
}
