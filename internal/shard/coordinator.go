package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/index"
)

// Config configures a Coordinator. The request-shape knobs (MaxR, MaxK,
// timeouts) mirror engine.Config and must match the workers' limits: the
// coordinator enforces them against the logical full-range request, which
// its workers — each seeing only a narrower replicate range — cannot.
type Config struct {
	// Graphs maps the logical names requests use to loaded graphs. The
	// coordinator needs them for validation and for the threshold
	// algorithm's deepening bound; workers must serve the same graphs under
	// the same names.
	Graphs map[string]*graph.Graph
	// DefaultTimeout bounds a request that does not set its own timeout;
	// MaxTimeout caps what a request may ask for. Zero means unbounded.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxR and MaxK cap the logical per-request sample size and budget
	// (defaults 1000 and 10000), mirroring engine.Config.
	MaxR int
	MaxK int
	// Retries is the coordinator-level re-send budget per shard call when a
	// worker answers draining/overloaded (default 2; < 0 disables). The
	// backoff starts at RetryBackoff (default 100ms), doubles per attempt,
	// and is overridden by the worker's Retry-After hint when one is
	// present. Remote workers additionally get the client SDK's own retry
	// layer underneath.
	Retries      int
	RetryBackoff time.Duration
	// ChunkSize, when > 1, aligns the per-worker replicate spans to
	// multiples of the replicate-chunk width (the index's chunked layout):
	// each worker's range starts and ends on a chunk boundary (except the
	// last, which ends at R), so a worker's subrange index is a whole number
	// of chunks and a spilled chunked index never straddles workers. The
	// split stays a partition of [0, R), so merged answers are bit-identical
	// to the unaligned split. 0 or 1 means unaligned (the historical split).
	ChunkSize int
}

// withDefaults resolves the documented zero-value defaults.
func (cfg Config) withDefaults() Config {
	if cfg.MaxR == 0 {
		cfg.MaxR = 1000
	}
	if cfg.MaxK == 0 {
		cfg.MaxK = 10000
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	return cfg
}

// Coordinator fans requests out over a fixed set of worker connections and
// merges their integer partial answers into bit-exact full answers. It
// implements the same public read/select surface as engine.Engine (the
// server's querier contract), so transports swap one in without caring
// which is behind a route. It is safe for concurrent use.
type Coordinator struct {
	cfg   Config
	conns []Conn

	// graphs is the coordinator's live view of the served graphs, seeded from
	// cfg.Graphs and advanced by ApplyDelta. Reads snapshot (graph, epoch)
	// under the RLock and pin that epoch on every scatter, so a mid-request
	// mutation surfaces as a typed retryable stale_epoch from the workers
	// instead of a silently mixed-epoch merge.
	graphsMu sync.RWMutex
	graphs   map[string]*graph.Graph

	merges         atomic.Int64
	degradedMerges atomic.Int64
	retries        atomic.Int64
	mergeLat       histogram
	perShard       []connStats

	// closed is closed by Close, aborting any retry backoff still sleeping —
	// a coordinator teardown must not strand goroutines in timers whose
	// request context is unbounded.
	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// New builds a coordinator over pre-built worker connections. The
// coordinator takes ownership: Close closes every conn.
func New(cfg Config, conns []Conn) (*Coordinator, error) {
	if len(conns) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one worker connection")
	}
	if len(cfg.Graphs) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one graph")
	}
	graphs := make(map[string]*graph.Graph, len(cfg.Graphs))
	for name, g := range cfg.Graphs {
		graphs[name] = g
	}
	return &Coordinator{
		cfg:      cfg.withDefaults(),
		conns:    conns,
		graphs:   graphs,
		perShard: make([]connStats, len(conns)),
		closed:   make(chan struct{}),
	}, nil
}

// NewLocal builds an in-process coordinator over shards fresh engines, each
// configured from ecfg (sharing cfg.Graphs). Every engine materializes only
// its replicate subrange of each index, so per-engine resident bytes and
// build wall time scale down with the shard count. The engines are owned:
// Close tears them down.
func NewLocal(cfg Config, shards int, ecfg engine.Config) (*Coordinator, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", shards)
	}
	conns := make([]Conn, 0, shards)
	for i := 0; i < shards; i++ {
		eng, err := engine.New(ecfg)
		if err != nil {
			for _, c := range conns {
				_ = c.Close()
			}
			return nil, err
		}
		conns = append(conns, &localConn{eng: eng, addr: fmt.Sprintf("local/%d", i), owned: true})
	}
	return New(cfg, conns)
}

// NewRemote builds a coordinator over remote worker daemons at the given
// base URLs, one shard per worker.
func NewRemote(cfg Config, urls []string) (*Coordinator, error) {
	conns := make([]Conn, 0, len(urls))
	for _, u := range urls {
		c, err := NewRemoteConn(u)
		if err != nil {
			return nil, err
		}
		conns = append(conns, c)
	}
	return New(cfg, conns)
}

// Shards returns the worker count.
func (co *Coordinator) Shards() int { return len(co.conns) }

// Close closes every worker connection (and, for owned in-process workers,
// their engines).
func (co *Coordinator) Close() error {
	co.closeOnce.Do(func() {
		close(co.closed)
		for _, c := range co.conns {
			if err := c.Close(); err != nil && co.closeErr == nil {
				co.closeErr = err
			}
		}
	})
	return co.closeErr
}

// qparams are the validated logical (full-range) request knobs. epoch is
// the graph's mutation epoch at resolve time, pinned onto every scatter the
// request performs.
type qparams struct {
	graphName string
	g         *graph.Graph
	L, R      int
	seed      uint64
	epoch     uint64
}

// resolveParams mirrors engine.resolveParams: same defaults, same bounds,
// same messages — a request rejected by the unsharded engine is rejected
// identically here, before anything is scattered. The (graph, epoch) pair is
// snapshotted atomically under the graphs RLock, like the engine's.
func (co *Coordinator) resolveParams(graphName string, L, R int, seed uint64) (qparams, error) {
	co.graphsMu.RLock()
	g, ok := co.graphs[graphName]
	if !ok && graphName == "" && len(co.graphs) == 1 {
		for only, sole := range co.graphs {
			graphName, g, ok = only, sole, true
		}
	}
	co.graphsMu.RUnlock()
	if !ok {
		return qparams{}, &engine.Error{Code: engine.CodeNotFound, Message: fmt.Sprintf("unknown graph %q", graphName)}
	}
	if L < 0 || L > 1<<16-1 {
		return qparams{}, badRequestf("L=%d outside [0, %d]", L, 1<<16-1)
	}
	if R == 0 {
		R = 100 // the paper's recommended sample size
	}
	if R < 1 || R > co.cfg.MaxR {
		return qparams{}, badRequestf("R=%d outside [1, %d]", R, co.cfg.MaxR)
	}
	return qparams{graphName: graphName, g: g, L: L, R: R, seed: seed, epoch: g.Epoch()}, nil
}

// resolveProblem mirrors engine's: zero means Problem 2.
func resolveProblem(p engine.Problem) (index.Problem, error) {
	switch p {
	case 0, index.Problem2:
		return index.Problem2, nil
	case index.Problem1:
		return index.Problem1, nil
	default:
		return 0, badRequestf("unknown problem %d (want 1 or 2)", int(p))
	}
}

// validateSet mirrors engine's node-id check.
func validateSet(field string, nodes []int, g *graph.Graph) error {
	for _, u := range nodes {
		if u < 0 || u >= g.N() {
			return badRequestf("%s: node %d outside [0, %d)", field, u, g.N())
		}
	}
	return nil
}

func badRequestf(format string, args ...any) *engine.Error {
	return &engine.Error{Code: engine.CodeBadRequest, Message: fmt.Sprintf(format, args...)}
}

// Context derives the wait context for one request, clamped by the
// default/max timeout knobs — the coordinator's analogue of
// engine.Context (there is no engine lifecycle here; Close only tears down
// conns).
func (co *Coordinator) Context(parent context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		timeout = co.cfg.DefaultTimeout
	}
	if co.cfg.MaxTimeout > 0 && timeout > co.cfg.MaxTimeout {
		timeout = co.cfg.MaxTimeout
	}
	if timeout > 0 {
		return context.WithTimeout(parent, timeout)
	}
	return context.WithCancel(parent)
}

// span is one worker's slice of the logical replicate range.
type span struct {
	shard  int // index into co.conns
	r0, r1 int // absolute replicate range [r0, r1)
}

// split partitions [0, R) into per-worker spans: worker s gets
// [s·R/N, (s+1)·R/N), the balanced split whose widths differ by at most
// one. Workers whose slice is empty (R < N) are skipped entirely — they
// receive no requests and contribute an implicit zero to every merge.
//
// With cfg.ChunkSize > 1 the same balancing runs in chunk units: the R
// replicates form ceil(R/ChunkSize) chunks, worker s gets chunks
// [s·C/N, (s+1)·C/N), and the final chunk (possibly ragged) ends at R. Every
// boundary lands on a chunk multiple, widths differ by at most one chunk,
// and the spans still partition [0, R) exactly, so merges are unchanged.
func (co *Coordinator) split(R int) []span {
	n := len(co.conns)
	spans := make([]span, 0, n)
	if c := co.cfg.ChunkSize; c > 1 {
		chunks := (R + c - 1) / c
		for s := 0; s < n; s++ {
			lo, hi := (s*chunks/n)*c, (s+1)*chunks/n*c
			if hi > R {
				hi = R
			}
			if hi > lo {
				spans = append(spans, span{shard: s, r0: lo, r1: hi})
			}
		}
		return spans
	}
	for s := 0; s < n; s++ {
		lo, hi := s*R/n, (s+1)*R/n
		if hi > lo {
			spans = append(spans, span{shard: s, r0: lo, r1: hi})
		}
	}
	return spans
}

// callGain is one shard call with the coordinator's retry layer: temporary
// (draining/overloaded/stale_epoch) failures are re-sent up to cfg.Retries
// times with doubling backoff, the worker's Retry-After hint overriding the
// computed wait. Everything else — including bad_request, timeout, and
// transport death — surfaces immediately.
func (co *Coordinator) callGain(ctx context.Context, sp span, req engine.PartialGainRequest) (*engine.PartialGainResult, error) {
	var res *engine.PartialGainResult
	err := co.withRetry(ctx, sp.shard, func() error {
		var err error
		res, err = co.conns[sp.shard].PartialGain(ctx, req)
		return err
	})
	return res, err
}

func (co *Coordinator) callTopGains(ctx context.Context, sp span, req engine.PartialTopGainsRequest) (*engine.PartialTopGainsResult, error) {
	var res *engine.PartialTopGainsResult
	err := co.withRetry(ctx, sp.shard, func() error {
		var err error
		res, err = co.conns[sp.shard].PartialTopGains(ctx, req)
		return err
	})
	return res, err
}

func (co *Coordinator) withRetry(ctx context.Context, shard int, call func() error) error {
	backoff := co.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		co.perShard[shard].requests.Add(1)
		err := call()
		if err == nil {
			return nil
		}
		code := engine.CodeOf(err)
		retryable := code == engine.CodeDraining || code == engine.CodeOverloaded || code == engine.CodeStaleEpoch
		if attempt >= co.cfg.Retries || !retryable {
			co.perShard[shard].errors.Add(1)
			return err
		}
		co.perShard[shard].retries.Add(1)
		co.retries.Add(1)
		wait := backoff
		if ra := engine.RetryAfterOf(err); ra > 0 {
			wait = ra
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			co.perShard[shard].errors.Add(1)
			return wrapCtx(ctx.Err())
		case <-co.closed:
			// Coordinator teardown: abort the backoff instead of sleeping out
			// a wait the dying coordinator will never use. Classified as
			// draining — the process is going away, exactly like a drain.
			t.Stop()
			co.perShard[shard].errors.Add(1)
			return &engine.Error{Code: engine.CodeDraining, Message: "shard: coordinator closed during retry backoff"}
		case <-t.C:
		}
		backoff *= 2
	}
}

// wrapCtx classifies a context error the way engine.wrapCompute does.
func wrapCtx(err error) error {
	if err == context.DeadlineExceeded {
		return &engine.Error{Code: engine.CodeTimeout, Message: err.Error()}
	}
	return &engine.Error{Code: engine.CodeDraining, Message: err.Error()}
}

// gatherErr picks a scatter's root-cause error. The failing shard's cancel
// ripples into the other shards as context.Canceled, which classifies as
// draining — so a non-draining error among the results is the failure that
// actually fired first and must win, or the caller would see retryable
// collateral instead of the real fault (e.g. internal from a dead worker).
func gatherErr(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if engine.CodeOf(err) != engine.CodeDraining {
			return err
		}
	}
	return first
}

// scatterGain fans base out to every span (overriding R0/R1 per span) and
// gathers the results, index-aligned with spans. The first failure cancels
// the stragglers and wins; a merged answer exists only when every shard
// answered.
func (co *Coordinator) scatterGain(ctx context.Context, base engine.PartialGainRequest, spans []span) ([]*engine.PartialGainResult, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*engine.PartialGainResult, len(spans))
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	for i, sp := range spans {
		wg.Add(1)
		go func(i int, sp span) {
			defer wg.Done()
			req := base
			req.R0, req.R1 = sp.r0, sp.r1
			results[i], errs[i] = co.callGain(ctx, sp, req)
			if errs[i] != nil {
				cancel()
			}
		}(i, sp)
	}
	wg.Wait()
	if err := gatherErr(errs); err != nil {
		return nil, err
	}
	return results, nil
}

// scatterTopGains is scatterGain for the per-shard top-B sweep.
func (co *Coordinator) scatterTopGains(ctx context.Context, base engine.PartialTopGainsRequest, spans []span) ([]*engine.PartialTopGainsResult, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*engine.PartialTopGainsResult, len(spans))
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	for i, sp := range spans {
		wg.Add(1)
		go func(i int, sp span) {
			defer wg.Done()
			req := base
			req.R0, req.R1 = sp.r0, sp.r1
			results[i], errs[i] = co.callTopGains(ctx, sp, req)
			if errs[i] != nil {
				cancel()
			}
		}(i, sp)
	}
	wg.Wait()
	if err := gatherErr(errs); err != nil {
		return nil, err
	}
	return results, nil
}

// mergeMeta folds per-shard answer metadata into the merged reply's: the
// merge is cached/memoized only as much as its weakest shard, and degraded
// if any shard answered from frozen state (the values are still exact).
type mergeMeta struct {
	indexCached bool
	memo        string
	degraded    bool
}

func newMergeMeta() mergeMeta {
	return mergeMeta{indexCached: true, memo: engine.MemoHit}
}

// memoRank orders memo statuses from cheapest to costliest answer path.
var memoRank = map[string]int{
	engine.MemoHit:      0,
	engine.MemoEmpty:    1,
	engine.MemoExtended: 2,
	engine.MemoMiss:     3,
	engine.MemoOff:      4,
}

func (m *mergeMeta) fold(indexCached bool, memo string, degraded bool) {
	m.indexCached = m.indexCached && indexCached
	if memoRank[memo] > memoRank[m.memo] {
		m.memo = memo
	}
	m.degraded = m.degraded || degraded
}

// noteMerge records one completed scatter-gather merge.
func (co *Coordinator) noteMerge(start time.Time, m mergeMeta) {
	co.merges.Add(1)
	if m.degraded {
		co.degradedMerges.Add(1)
	}
	co.mergeLat.observe(time.Since(start))
}
