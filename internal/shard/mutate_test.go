package shard

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/testleak"
)

// testDelta builds a structural delta against g: remove one existing edge,
// add one absent edge, and append one new node wired into the graph.
func testDelta(t *testing.T, g *graph.Graph) graph.Delta {
	t.Helper()
	u := 0
	for ; u < g.N(); u++ {
		if g.Degree(u) > 0 {
			break
		}
	}
	v := int(g.Neighbors(u)[0])
	a, b := -1, -1
	for x := 0; x < g.N() && a < 0; x++ {
		for y := x + 2; y < g.N(); y++ {
			if x != y && !g.HasEdge(x, y) {
				a, b = x, y
				break
			}
		}
	}
	if a < 0 {
		t.Fatal("no absent edge found")
	}
	return graph.Delta{
		AddNodes:    1,
		AddEdges:    []graph.Edge{{U: a, V: b}, {U: g.N(), V: u}},
		RemoveEdges: []graph.Edge{{U: u, V: v}},
	}
}

// TestShardApplyDeltaParity is the sharded half of the tentpole's parity
// criterion: after a coordinator-broadcast mutation, selections and reads
// must stay bit-identical to an unsharded engine that applied the same
// delta — for 1, 2 and 4 shards, both problems, both strategies. The
// pre-mutation Select warms every worker's index so the broadcast exercises
// the incremental-repair path, not a cold rebuild.
func TestShardApplyDeltaParity(t *testing.T) {
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4} {
		g := testGraph(t, 300, 13)
		ref, co := newParityPair(t, g, shards)
		warm := engine.SelectRequest{Graph: "test", K: 4, L: 5, R: 25, Seed: 9}
		if _, err := co.Select(ctx, warm); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Select(ctx, warm); err != nil {
			t.Fatal(err)
		}

		d := testDelta(t, g)
		res, err := co.ApplyDelta(ctx, engine.ApplyDeltaRequest{Graph: "test", Delta: d})
		if err != nil {
			t.Fatalf("shards=%d: coordinator ApplyDelta: %v", shards, err)
		}
		if res.Epoch != 1 {
			t.Fatalf("shards=%d: epoch %d, want 1", shards, res.Epoch)
		}
		if res.IndexesRepaired == 0 {
			t.Fatalf("shards=%d: no worker index was repaired incrementally (dropped=%d)", shards, res.IndexesDropped)
		}
		if _, err := ref.ApplyDelta(ctx, engine.ApplyDeltaRequest{Graph: "test", Delta: d}); err != nil {
			t.Fatal(err)
		}

		for _, problem := range []engine.Problem{engine.Problem1, engine.Problem2} {
			for _, strategy := range []engine.Strategy{engine.Lazy, engine.Plain} {
				req := engine.SelectRequest{
					Graph: "test", Problem: problem, K: 6,
					L: 5, R: 25, Seed: 9, Strategy: strategy,
				}
				want, err := ref.Select(ctx, req)
				if err != nil {
					t.Fatal(err)
				}
				got, err := co.Select(ctx, req)
				if err != nil {
					t.Fatalf("shards=%d %v/%v: %v", shards, problem, strategy, err)
				}
				if !sameInts(got.Nodes, want.Nodes) || !sameFloats(got.Gains, want.Gains) {
					t.Fatalf("shards=%d %v/%v: post-mutation selection diverged: %v/%v, want %v/%v",
						shards, problem, strategy, got.Nodes, got.Gains, want.Nodes, want.Gains)
				}
			}
			greq := engine.GainRequest{
				Graph: "test", Problem: problem, L: 5, R: 25, Seed: 9,
				Set: []int{3, 17}, Nodes: []int{0, 5, 299, 300},
			}
			want, err := ref.Gain(ctx, greq)
			if err != nil {
				t.Fatal(err)
			}
			got, err := co.Gain(ctx, greq)
			if err != nil {
				t.Fatal(err)
			}
			if !sameFloats(got.Gains, want.Gains) {
				t.Fatalf("shards=%d %v: post-mutation gains %v, want %v", shards, problem, got.Gains, want.Gains)
			}
			oreq := engine.ObjectiveRequest{Graph: "test", Problem: problem, L: 5, R: 25, Seed: 9, Set: []int{3, 17}}
			wantO, err := ref.Objective(ctx, oreq)
			if err != nil {
				t.Fatal(err)
			}
			gotO, err := co.Objective(ctx, oreq)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(gotO.Objective) != math.Float64bits(wantO.Objective) {
				t.Fatalf("shards=%d %v: post-mutation objective %v, want %v", shards, problem, gotO.Objective, wantO.Objective)
			}
		}
	}
}

// TestShardApplyDeltaConflicts pins the coordinator's mutation validation:
// the same typed codes as the engine's, checked before anything is
// broadcast.
func TestShardApplyDeltaConflicts(t *testing.T) {
	g := testGraph(t, 60, 3)
	_, co := newParityPair(t, g, 2)
	ctx := context.Background()
	d := testDelta(t, g)
	stale := uint64(7)
	cases := []struct {
		name string
		req  engine.ApplyDeltaRequest
		code engine.Code
	}{
		{"empty delta", engine.ApplyDeltaRequest{Graph: "test"}, engine.CodeBadRequest},
		{"unknown graph", engine.ApplyDeltaRequest{Graph: "nope", Delta: d}, engine.CodeNotFound},
		{"stale base epoch", engine.ApplyDeltaRequest{Graph: "test", Delta: d, BaseEpoch: &stale}, engine.CodeConflict},
		{"remove missing", engine.ApplyDeltaRequest{Graph: "test", Delta: graph.Delta{RemoveEdges: d.AddEdges[:1]}}, engine.CodeConflict},
		{"node out of range", engine.ApplyDeltaRequest{Graph: "test", Delta: graph.Delta{AddEdges: []graph.Edge{{U: 0, V: 500}}}}, engine.CodeBadRequest},
	}
	for _, tc := range cases {
		_, err := co.ApplyDelta(ctx, tc.req)
		if engine.CodeOf(err) != tc.code {
			t.Fatalf("%s: code %q (err %v), want %q", tc.name, engine.CodeOf(err), err, tc.code)
		}
	}
	// Nothing was applied or broadcast: reads still resolve at epoch 0.
	if _, err := co.Gain(ctx, engine.GainRequest{Graph: "test", L: 4, R: 8, Nodes: []int{1}}); err != nil {
		t.Fatalf("reads broken after rejected mutations: %v", err)
	}
}

// rejectMutationConn wraps a real worker conn but refuses mutations —
// simulating a worker that cannot apply a broadcast (crashed mid-apply,
// version skew). The coordinator must surface a typed error AND keep serving
// pinned reads safely: the laggard answers stale_epoch, never a silent
// mixed-epoch merge.
type rejectMutationConn struct {
	Conn
}

func (c *rejectMutationConn) ApplyDelta(ctx context.Context, req engine.ApplyDeltaRequest) (*engine.ApplyDeltaResult, error) {
	return nil, &engine.Error{Code: engine.CodeInternal, Message: "injected: mutation refused"}
}

// TestShardLaggardWorkerStaleEpoch drives the partial-broadcast-failure
// path end to end.
func TestShardLaggardWorkerStaleEpoch(t *testing.T) {
	testleak.Check(t)
	g := testGraph(t, 120, 5)
	graphs := map[string]*graph.Graph{"test": g}
	mkEngine := func() *engine.Engine {
		eng, err := engine.New(engine.Config{Graphs: graphs})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		return eng
	}
	good := NewLocalConn(mkEngine(), "local/0")
	lag := &rejectMutationConn{Conn: NewLocalConn(mkEngine(), "local/1")}
	co, err := New(Config{Graphs: graphs, Retries: -1}, []Conn{good, lag})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	ctx := context.Background()

	_, err = co.ApplyDelta(ctx, engine.ApplyDeltaRequest{Graph: "test", Delta: testDelta(t, g)})
	if engine.CodeOf(err) != engine.CodeInternal {
		t.Fatalf("partial broadcast failure: code %q (err %v), want internal", engine.CodeOf(err), err)
	}

	// The coordinator moved to epoch 1 (worker 0 applied); worker 1 is stuck
	// at epoch 0. A read scattering over both workers must fail typed — the
	// laggard's stale_epoch — not return a silently mixed-epoch merge.
	_, err = co.Gain(ctx, engine.GainRequest{Graph: "test", L: 4, R: 8, Nodes: []int{1, 2}})
	var ee *engine.Error
	if !errors.As(err, &ee) || ee.Code != engine.CodeStaleEpoch {
		t.Fatalf("read over laggard worker: err %v, want typed stale_epoch", err)
	}
}

// blockedConn always answers overloaded with a long Retry-After, parking the
// coordinator's retry layer in its backoff sleep.
type blockedConn struct{}

func (blockedConn) Addr() string { return "blocked/0" }
func (blockedConn) PartialGain(ctx context.Context, req engine.PartialGainRequest) (*engine.PartialGainResult, error) {
	return nil, &engine.Error{Code: engine.CodeOverloaded, Message: "injected: overloaded", RetryAfter: time.Hour}
}
func (blockedConn) PartialTopGains(ctx context.Context, req engine.PartialTopGainsRequest) (*engine.PartialTopGainsResult, error) {
	return nil, &engine.Error{Code: engine.CodeOverloaded, Message: "injected: overloaded", RetryAfter: time.Hour}
}
func (blockedConn) ApplyDelta(ctx context.Context, req engine.ApplyDeltaRequest) (*engine.ApplyDeltaResult, error) {
	return nil, &engine.Error{Code: engine.CodeOverloaded, Message: "injected: overloaded", RetryAfter: time.Hour}
}
func (blockedConn) Close() error { return nil }

// TestCloseAbortsRetryBackoff: a request sleeping in the coordinator's retry
// backoff (here: an hour, from the worker's Retry-After hint) must be
// released promptly when the coordinator is closed, instead of stranding
// the caller and the goroutine until the timer fires. Regression test for
// the backoff select lacking a coordinator-shutdown arm: before the fix
// this test timed out.
func TestCloseAbortsRetryBackoff(t *testing.T) {
	g := testGraph(t, 40, 1)
	co, err := New(Config{Graphs: map[string]*graph.Graph{"test": g}}, []Conn{blockedConn{}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := co.Gain(context.Background(), engine.GainRequest{Graph: "test", L: 3, R: 5, Nodes: []int{1}})
		done <- err
	}()
	// Wait until the retry layer has recorded the first attempt and is
	// sleeping in its hour-long backoff.
	deadline := time.Now().Add(5 * time.Second)
	for co.Stats().Retries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the retry backoff")
		}
		time.Sleep(time.Millisecond)
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if engine.CodeOf(err) != engine.CodeDraining {
			t.Fatalf("aborted backoff: code %q (err %v), want draining", engine.CodeOf(err), err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Gain still blocked 5s after Close; backoff sleep was not aborted")
	}
}
