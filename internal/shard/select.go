package shard

import (
	"context"
	"time"

	"repro/internal/engine"
)

// Select runs one top-K selection by driving the greedy loop
// coordinator-side: each round scatter-gathers the shards' top candidates,
// merges them exactly with the threshold algorithm, commits the (gain
// descending, smallest-id) argmax, and re-scatters with the grown set. The
// committed set grows as a prefix chain, so each shard serves each round
// from a one-Update extension of its previous round's memoized table.
//
// Selections — Nodes, Gains, and the telescoped Objective — are
// bit-identical to the unsharded engine for both strategies and every
// worker count: the merged gain of every candidate is the same float64
// value the unsharded drivers compute, and the argmax rule is the same
// total order. Evaluations counts the per-round candidate pool each shard
// sweeps (n minus the committed set), which equals the plain driver's
// count; the lazy driver's CELF count is not reproduced.
func (co *Coordinator) Select(ctx context.Context, req engine.SelectRequest) (*engine.SelectResult, error) {
	return co.selectRun(ctx, req, nil)
}

// SelectStream is Select that emits each round's pick as it is decided,
// mirroring engine.SelectStream: emit runs on the calling goroutine in
// round order, and a non-nil emit error aborts the run.
func (co *Coordinator) SelectStream(ctx context.Context, req engine.SelectRequest, emit func(engine.Round) error) (*engine.SelectResult, error) {
	return co.selectRun(ctx, req, emit)
}

func (co *Coordinator) selectRun(ctx context.Context, req engine.SelectRequest, emit func(engine.Round) error) (*engine.SelectResult, error) {
	prob, err := resolveProblem(req.Problem)
	if err != nil {
		return nil, err
	}
	p, err := co.resolveParams(req.Graph, req.L, req.R, req.Seed)
	if err != nil {
		return nil, err
	}
	if req.K < 0 || req.K > co.cfg.MaxK {
		return nil, badRequestf("k=%d outside [0, %d]", req.K, co.cfg.MaxK)
	}
	if req.Epsilon != 0 || req.Delta != 0 {
		// The adaptive stopping rule samples per-replicate gains over the
		// full replicate range; no shard holds it, so the knob cannot be
		// honored here.
		return nil, &engine.Error{Code: engine.CodeUnsupported,
			Message: "accuracy (epsilon/delta) is not supported on sharded deployments"}
	}
	runCtx, cancel := co.Context(ctx, req.Timeout)
	defer cancel()

	res := &engine.SelectResult{
		Nodes: make([]int, 0, req.K),
		Gains: make([]float64, 0, req.K),
		L:     p.L, R: p.R,
		Workers: req.Workers,
		Lazy:    req.Strategy != engine.Plain,
	}
	start := time.Now()
	set := make([]int, 0, req.K)
	total := 0.0
	for round := 1; round <= req.K; round++ {
		roundStart := time.Now()
		nodes, gains, meta, err := co.topMerged(runCtx, p, prob, set, 1, req.Workers)
		if err != nil {
			return nil, err
		}
		co.noteMerge(roundStart, meta)
		if round == 1 {
			res.IndexCached = meta.indexCached
		}
		if len(nodes) == 0 {
			// Every node is selected; the greedy loop is done early.
			break
		}
		u, g := nodes[0], gains[0]
		set = append(set, u)
		res.Nodes = append(res.Nodes, u)
		res.Gains = append(res.Gains, g)
		res.Evaluations += p.g.N() - len(set) + 1
		total += g
		if emit != nil {
			if err := emit(engine.Round{Round: round, Node: u, Gain: g, Objective: total}); err != nil {
				return nil, err
			}
		}
	}
	res.Select = time.Since(start)
	return res, nil
}
