package shard

import (
	"sync/atomic"
	"time"
)

// numLatencyBounds must match len(latencyBounds); the histogram array needs
// a constant size.
const numLatencyBounds = 15

// latencyBounds are the merge-latency bucket upper bounds, matching the
// server's endpoint histograms so the two read side by side in /stats: from
// sub-millisecond warm merges to multi-second cold scatter fan-outs. The
// final implicit bucket is +Inf.
var latencyBounds = [numLatencyBounds]time.Duration{
	500 * time.Microsecond,
	1 * time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	20 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	200 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2 * time.Second,
	5 * time.Second,
	10 * time.Second,
	30 * time.Second,
}

// histogram is a fixed-bucket latency histogram with lock-free observation.
type histogram struct {
	counts [numLatencyBounds + 1]atomic.Int64
	sumNS  atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	i := 0
	for ; i < len(latencyBounds); i++ {
		if d <= latencyBounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
}

// LatencySnapshot summarizes a histogram: quantiles are bucket upper bounds
// in milliseconds; -1 means the quantile fell in the +Inf overflow bucket.
type LatencySnapshot struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

func (h *histogram) snapshot() LatencySnapshot {
	cum := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
		cum[i] = total
	}
	s := LatencySnapshot{
		Count: total,
		P50MS: quantileUpperBound(cum, total, 0.50),
		P95MS: quantileUpperBound(cum, total, 0.95),
		P99MS: quantileUpperBound(cum, total, 0.99),
	}
	if total > 0 {
		s.MeanMS = float64(h.sumNS.Load()) / float64(total) / float64(time.Millisecond)
	}
	return s
}

// quantileUpperBound returns the upper bound (ms) of the bucket containing
// the q-quantile, -1 for the +Inf overflow bucket.
func quantileUpperBound(cum []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	for i, c := range cum {
		if c >= rank {
			if i < len(latencyBounds) {
				return float64(latencyBounds[i]) / float64(time.Millisecond)
			}
			break
		}
	}
	return -1
}

// connStats tracks one worker connection's scatter traffic.
type connStats struct {
	requests atomic.Int64
	errors   atomic.Int64
	retries  atomic.Int64
}

// ConnStats is the snapshot of one worker's scatter traffic. Requests
// counts coordinator-level calls (the remote client's internal retries are
// invisible here); Retries counts coordinator-level re-sends after a
// temporary (draining/overloaded) failure.
type ConnStats struct {
	Addr     string
	Requests int64
	Errors   int64
	Retries  int64
}

// Stats is a snapshot of the coordinator's counters.
type Stats struct {
	// Shards is the worker count.
	Shards int
	// Merges counts completed scatter-gather merges (one per coordinator
	// read, one per greedy selection round); DegradedMerges the subset where
	// at least one shard answered from frozen degraded state (the merged
	// values are still exact).
	Merges         int64
	DegradedMerges int64
	// Retries counts coordinator-level re-sends across all shards.
	Retries int64
	// MergeLatency is the scatter-gather merge latency distribution.
	MergeLatency LatencySnapshot
	// PerShard is indexed like the coordinator's workers.
	PerShard []ConnStats
}

// Stats returns a snapshot of the coordinator's counters.
func (co *Coordinator) Stats() Stats {
	s := Stats{
		Shards:         len(co.conns),
		Merges:         co.merges.Load(),
		DegradedMerges: co.degradedMerges.Load(),
		Retries:        co.retries.Load(),
		MergeLatency:   co.mergeLat.snapshot(),
		PerShard:       make([]ConnStats, len(co.conns)),
	}
	for i := range co.conns {
		s.PerShard[i] = ConnStats{
			Addr:     co.conns[i].Addr(),
			Requests: co.perShard[i].requests.Load(),
			Errors:   co.perShard[i].errors.Load(),
			Retries:  co.perShard[i].retries.Load(),
		}
	}
	return s
}
