package shard

import (
	"context"
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/testleak"
)

// TestSplitChunkAligned pins the chunk-aligned split geometry: every span
// boundary except the final one lands on a ChunkSize multiple, widths differ
// by at most one chunk, and the spans still partition [0, R) exactly —
// including ragged tails (R % c != 0), more shards than chunks, and R < c.
func TestSplitChunkAligned(t *testing.T) {
	for _, tc := range []struct {
		R, c, n int
	}{
		{R: 200, c: 25, n: 4},  // even: 8 chunks over 4 workers
		{R: 230, c: 25, n: 4},  // ragged tail: 10 chunks, last is 5 wide
		{R: 100, c: 30, n: 8},  // more workers than chunks: some get none
		{R: 20, c: 64, n: 3},   // R < c: single chunk, single worker
		{R: 77, c: 10, n: 5},   // ragged + uneven chunks-per-worker
		{R: 64, c: 1, n: 3},    // c <= 1 degrades to the plain split
		{R: 1000, c: 13, n: 7}, // larger sweep
	} {
		co := &Coordinator{cfg: Config{ChunkSize: tc.c}, conns: make([]Conn, tc.n)}
		spans := co.split(tc.R)
		next := 0
		for i, sp := range spans {
			if sp.r0 != next {
				t.Fatalf("R=%d c=%d n=%d: span %d starts at %d, want %d (gap/overlap)",
					tc.R, tc.c, tc.n, i, sp.r0, next)
			}
			if sp.r1 <= sp.r0 {
				t.Fatalf("R=%d c=%d n=%d: empty span %d [%d,%d)", tc.R, tc.c, tc.n, i, sp.r0, sp.r1)
			}
			if tc.c > 1 {
				if sp.r0%tc.c != 0 {
					t.Fatalf("R=%d c=%d n=%d: span %d start %d not chunk-aligned",
						tc.R, tc.c, tc.n, i, sp.r0)
				}
				if sp.r1%tc.c != 0 && sp.r1 != tc.R {
					t.Fatalf("R=%d c=%d n=%d: span %d end %d not chunk-aligned",
						tc.R, tc.c, tc.n, i, sp.r1)
				}
			}
			next = sp.r1
		}
		if next != tc.R {
			t.Fatalf("R=%d c=%d n=%d: spans cover [0,%d), want [0,%d)", tc.R, tc.c, tc.n, next, tc.R)
		}
		if tc.c > 1 {
			chunks := (tc.R + tc.c - 1) / tc.c
			lo, hi := chunks/tc.n, (chunks+tc.n-1)/tc.n
			for i, sp := range spans {
				w := (sp.r1 - sp.r0 + tc.c - 1) / tc.c
				if w < lo || w > hi {
					t.Fatalf("R=%d c=%d n=%d: span %d holds %d chunks, want %d..%d (unbalanced)",
						tc.R, tc.c, tc.n, i, w, lo, hi)
				}
			}
		}
	}
}

// TestChunkAlignedMergeParity pins that chunk alignment changes only where
// the replicate boundaries fall, not what the coordinator answers: sharded
// selections and reads with ChunkSize set stay bit-identical to the
// unsharded engine across shard counts. R = 230 with chunk 25 exercises the
// ragged final chunk.
func TestChunkAlignedMergeParity(t *testing.T) {
	g := testGraph(t, 350, 13)
	ctx := context.Background()
	graphs := map[string]*graph.Graph{"test": g}
	testleak.Check(t)
	ref, err := engine.New(engine.Config{Graphs: graphs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ref.Close() })

	req := engine.SelectRequest{Graph: "test", K: 6, L: 5, R: 230, Seed: 4}
	want, err := ref.Select(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	wantGain, err := ref.Gain(ctx, engine.GainRequest{
		Graph: "test", Problem: index.Problem2, L: 5, R: 230, Seed: 4,
		Set: want.Nodes[:2], Nodes: []int{0, 7, 11},
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{2, 3, 5} {
		co, err := NewLocal(Config{Graphs: graphs, ChunkSize: 25}, shards, engine.Config{Graphs: graphs})
		if err != nil {
			t.Fatal(err)
		}
		got, err := co.Select(ctx, req)
		if err != nil {
			co.Close()
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !sameInts(got.Nodes, want.Nodes) || !sameFloats(got.Gains, want.Gains) {
			co.Close()
			t.Fatalf("shards=%d chunk=25: nodes %v gains %v, want %v %v",
				shards, got.Nodes, got.Gains, want.Nodes, want.Gains)
		}
		gotGain, err := co.Gain(ctx, engine.GainRequest{
			Graph: "test", Problem: index.Problem2, L: 5, R: 230, Seed: 4,
			Set: want.Nodes[:2], Nodes: []int{0, 7, 11},
		})
		if err != nil {
			co.Close()
			t.Fatalf("shards=%d gain: %v", shards, err)
		}
		for i := range wantGain.Gains {
			if math.Float64bits(gotGain.Gains[i]) != math.Float64bits(wantGain.Gains[i]) {
				co.Close()
				t.Fatalf("shards=%d chunk=25: gain[%d] %v, want %v",
					shards, i, gotGain.Gains[i], wantGain.Gains[i])
			}
		}
		co.Close()
	}
}
