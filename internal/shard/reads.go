package shard

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/index"
)

// Gain answers engine.Gain by scattering the node list to every shard and
// summing the integer partial sums: Gains[i] = float64(Σ_s sums_s[i]) / R,
// the exact float64 expression the unsharded engine evaluates, so the reply
// is bit-identical to it.
func (co *Coordinator) Gain(ctx context.Context, req engine.GainRequest) (*engine.GainResult, error) {
	p, prob, err := co.resolveRead(req.Graph, req.Problem, req.L, req.R, req.Seed, req.Set)
	if err != nil {
		return nil, err
	}
	if len(req.Nodes) == 0 {
		return nil, badRequestf("nodes are required")
	}
	if err := validateSet("nodes", req.Nodes, p.g); err != nil {
		return nil, err
	}
	runCtx, cancel := co.Context(ctx, 0)
	defer cancel()
	start := time.Now()
	results, err := co.scatterGain(runCtx, engine.PartialGainRequest{
		Graph: p.graphName, Problem: prob, L: p.L, Seed: p.seed, Epoch: &p.epoch,
		Set: req.Set, Nodes: req.Nodes,
	}, co.split(p.R))
	if err != nil {
		return nil, err
	}
	meta := newMergeMeta()
	sums := make([]int64, len(req.Nodes))
	for _, r := range results {
		for i, s := range r.Sums {
			sums[i] += s
		}
		meta.fold(r.IndexCached, r.Memo, r.Degraded)
	}
	gains := make([]float64, len(sums))
	for i, s := range sums {
		gains[i] = float64(s) / float64(p.R)
	}
	co.noteMerge(start, meta)
	return &engine.GainResult{
		Gains:       gains,
		IndexCached: meta.indexCached,
		Memo:        meta.memo,
		Degraded:    meta.degraded,
	}, nil
}

// Objective answers engine.Objective by scattering an objective-only
// partial-gain request and merging the integer accumulators, then applying
// the same final float64 expression as DTable.EstimateObjective.
func (co *Coordinator) Objective(ctx context.Context, req engine.ObjectiveRequest) (*engine.ObjectiveResult, error) {
	p, prob, err := co.resolveRead(req.Graph, req.Problem, req.L, req.R, req.Seed, req.Set)
	if err != nil {
		return nil, err
	}
	runCtx, cancel := co.Context(ctx, 0)
	defer cancel()
	start := time.Now()
	results, err := co.scatterGain(runCtx, engine.PartialGainRequest{
		Graph: p.graphName, Problem: prob, L: p.L, Seed: p.seed, Epoch: &p.epoch,
		Set: req.Set, WantObjective: true,
	}, co.split(p.R))
	if err != nil {
		return nil, err
	}
	meta := newMergeMeta()
	var acc int64
	for _, r := range results {
		acc += r.ObjectiveSum
		meta.fold(r.IndexCached, r.Memo, r.Degraded)
	}
	avg := float64(acc) / float64(p.R)
	obj := avg
	if prob == index.Problem1 {
		obj = float64(p.g.N())*float64(p.L) - avg
	}
	co.noteMerge(start, meta)
	return &engine.ObjectiveResult{
		Objective:   obj,
		IndexCached: meta.indexCached,
		Memo:        meta.memo,
		Degraded:    meta.degraded,
	}, nil
}

// TopGains answers engine.TopGains with a threshold-algorithm merge of
// per-shard top lists; the merged ranking is bit-identical to the unsharded
// sweep (gain descending, ties by ascending node id).
func (co *Coordinator) TopGains(ctx context.Context, req engine.TopGainsRequest) (*engine.TopGainsResult, error) {
	p, prob, err := co.resolveRead(req.Graph, req.Problem, req.L, req.R, req.Seed, req.Set)
	if err != nil {
		return nil, err
	}
	b := req.B
	if b == 0 {
		b = 10
		if b > co.cfg.MaxK {
			b = co.cfg.MaxK
		}
	}
	if b < 1 || b > co.cfg.MaxK {
		return nil, badRequestf("b=%d outside [1, %d]", req.B, co.cfg.MaxK)
	}
	runCtx, cancel := co.Context(ctx, 0)
	defer cancel()
	start := time.Now()
	nodes, gains, meta, err := co.topMerged(runCtx, p, prob, req.Set, b, req.Workers)
	if err != nil {
		return nil, err
	}
	co.noteMerge(start, meta)
	return &engine.TopGainsResult{
		B:           b,
		Nodes:       nodes,
		Gains:       gains,
		IndexCached: meta.indexCached,
		Memo:        meta.memo,
		Degraded:    meta.degraded,
	}, nil
}

// resolveRead mirrors engine.resolveRead for the coordinator's read surface.
func (co *Coordinator) resolveRead(graph string, problem engine.Problem, L, R int, seed uint64, set []int) (qparams, index.Problem, error) {
	prob, err := resolveProblem(problem)
	if err != nil {
		return qparams{}, 0, err
	}
	p, err := co.resolveParams(graph, L, R, seed)
	if err != nil {
		return qparams{}, 0, err
	}
	if err := validateSet("set", set, p.g); err != nil {
		return qparams{}, 0, err
	}
	return p, prob, nil
}

// candSum is one merged candidate during the threshold-algorithm scan.
type candSum struct {
	u   int
	sum int64
}

// topMerged computes the exact merged top-b candidates against set — the
// threshold algorithm (TA) over per-shard top lists:
//
//  1. Fetch each shard's top C candidates by integer partial sum (C starts
//     at b).
//  2. For every candidate some shard surfaced, fetch its missing partial
//     sums by point lookup, making its merged sum exact.
//  3. An unseen candidate (surfaced by no shard) is bounded above by
//     T = Σ_s (C-th partial sum of shard s): it sits below the cut on every
//     shard. If the b-th merged candidate strictly beats T — or some shard
//     returned its entire candidate set, leaving nothing unseen — the
//     merged top-b is provably exact. Otherwise double C and repeat.
//
// The bound comparison runs in the integer domain, which is exact; the
// final returned ranking is by float64 gain (descending, ties by ascending
// id), the unsharded comparator over identical float64 values. The two
// orders agree because distinct integer sums stay distinct through the
// division by R for every realizable magnitude (sums are < 2^52: bounded by
// n·R·L with R ≤ 1000 and L < 2^16).
//
// The loop terminates: C doubles toward n, and a shard asked for n
// candidates returns its whole candidate set (Exhausted).
func (co *Coordinator) topMerged(ctx context.Context, p qparams, prob index.Problem, set []int, b, workers int) ([]int, []float64, mergeMeta, error) {
	spans := co.split(p.R)
	meta := newMergeMeta()
	n := p.g.N()
	// known[i] holds the exact partial sums shard i has reported, across
	// deepening rounds — point lookups are never repeated.
	known := make([]map[int]int64, len(spans))
	for i := range known {
		known[i] = make(map[int]int64)
	}
	for depth := b; ; depth = min(depth*2, n) {
		base := engine.PartialTopGainsRequest{
			Graph: p.graphName, Problem: prob, L: p.L, Seed: p.seed, Epoch: &p.epoch,
			Set: set, B: min(depth, n), Workers: workers,
		}
		results, err := co.scatterTopGains(ctx, base, spans)
		if err != nil {
			return nil, nil, meta, err
		}
		exhausted := false
		var threshold int64
		for i, r := range results {
			for j, u := range r.Nodes {
				known[i][u] = r.Sums[j]
			}
			if r.Exhausted {
				exhausted = true
			} else {
				// Non-exhausted lists hold exactly B entries; the last is the
				// shard's cut, bounding every candidate it did not surface.
				threshold += r.Sums[len(r.Sums)-1]
			}
			meta.fold(r.IndexCached, r.Memo, r.Degraded)
		}
		// The candidate union: everything any shard surfaced.
		var union []int
		seen := make(map[int]bool)
		for i := range known {
			for u := range known[i] {
				if !seen[u] {
					seen[u] = true
					union = append(union, u)
				}
			}
		}
		if len(union) == 0 {
			// Every candidate is a set member (or n = 0): nothing to rank.
			return []int{}, []float64{}, meta, nil
		}
		if err := co.lookupMissing(ctx, p, prob, set, spans, union, known, &meta); err != nil {
			return nil, nil, meta, err
		}
		merged := make([]candSum, 0, len(union))
		for _, u := range union {
			var total int64
			for i := range known {
				total += known[i][u]
			}
			merged = append(merged, candSum{u: u, sum: total})
		}
		// Rank with the unsharded comparator: float64 gain descending, ties
		// by ascending id.
		sort.Slice(merged, func(i, j int) bool {
			gi, gj := float64(merged[i].sum)/float64(p.R), float64(merged[j].sum)/float64(p.R)
			if gi != gj {
				return gi > gj
			}
			return merged[i].u < merged[j].u
		})
		if len(merged) > b {
			merged = merged[:b]
		}
		// Exactness: either nothing is unseen, or every kept candidate
		// strictly beats the unseen upper bound.
		exact := exhausted
		if !exact && len(merged) == b {
			minKept := merged[0].sum
			for _, c := range merged[1:] {
				if c.sum < minKept {
					minKept = c.sum
				}
			}
			exact = minKept > threshold
		}
		if exact {
			nodes := make([]int, len(merged))
			gains := make([]float64, len(merged))
			for i, c := range merged {
				nodes[i] = c.u
				gains[i] = float64(c.sum) / float64(p.R)
			}
			return nodes, gains, meta, nil
		}
	}
}

// lookupMissing completes the union candidates' merged sums: for each
// shard, every union candidate the shard has not yet reported is fetched by
// a partial-gain point lookup. Lookups run per-shard in parallel.
func (co *Coordinator) lookupMissing(ctx context.Context, p qparams, prob index.Problem, set []int, spans []span, union []int, known []map[int]int64, meta *mergeMeta) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs = make([]error, len(spans))
	)
	for i, sp := range spans {
		var missing []int
		for _, u := range union {
			if _, ok := known[i][u]; !ok {
				missing = append(missing, u)
			}
		}
		if len(missing) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, sp span, missing []int) {
			defer wg.Done()
			res, err := co.callGain(ctx, sp, engine.PartialGainRequest{
				Graph: p.graphName, Problem: prob, L: p.L, Seed: p.seed, Epoch: &p.epoch,
				R0: sp.r0, R1: sp.r1, Set: set, Nodes: missing,
			})
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			mu.Lock()
			for j, u := range missing {
				known[i][u] = res.Sums[j]
			}
			meta.fold(res.IndexCached, res.Memo, res.Degraded)
			mu.Unlock()
		}(i, sp, missing)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
