package shard

import (
	"context"
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/testleak"
)

func testGraph(t testing.TB, n int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.BarabasiAlbert(n, 3, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// newParityPair builds an unsharded reference engine and an in-process
// coordinator with the given shard count over the same graph.
func newParityPair(t testing.TB, g *graph.Graph, shards int) (*engine.Engine, *Coordinator) {
	t.Helper()
	testleak.Check(t)
	graphs := map[string]*graph.Graph{"test": g}
	ref, err := engine.New(engine.Config{Graphs: graphs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ref.Close() })
	co, err := NewLocal(Config{Graphs: graphs}, shards, engine.Config{Graphs: graphs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	return ref, co
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSelectMergeParity is the tentpole acceptance criterion: sharded
// selections must be bit-identical to the unsharded engine — Nodes, Gains,
// and the telescoped Objective — for 1, 2 and 4 shards, both problems,
// lazy and plain, across worker counts. R = 25 is deliberately not
// divisible by 4, exercising uneven range splits (and with it the implicit
// R/N rounding of the split).
func TestSelectMergeParity(t *testing.T) {
	g := testGraph(t, 400, 11)
	ctx := context.Background()
	for _, shards := range []int{1, 2, 4} {
		var pair *Coordinator
		var ref *engine.Engine
		ref, pair = newParityPair(t, g, shards)
		for _, problem := range []engine.Problem{engine.Problem1, engine.Problem2} {
			for _, strategy := range []engine.Strategy{engine.Lazy, engine.Plain} {
				for _, workers := range []int{1, 3} {
					req := engine.SelectRequest{
						Graph: "test", Problem: problem, K: 7,
						L: 5, R: 25, Seed: 9,
						Strategy: strategy, Workers: workers,
					}
					want, err := ref.Select(ctx, req)
					if err != nil {
						t.Fatal(err)
					}
					got, err := pair.Select(ctx, req)
					if err != nil {
						t.Fatalf("shards=%d %v/%v: %v", shards, problem, strategy, err)
					}
					if !sameInts(got.Nodes, want.Nodes) {
						t.Fatalf("shards=%d %v/%v workers=%d: nodes %v, want %v",
							shards, problem, strategy, workers, got.Nodes, want.Nodes)
					}
					if !sameFloats(got.Gains, want.Gains) {
						t.Fatalf("shards=%d %v/%v workers=%d: gains %v, want %v",
							shards, problem, strategy, workers, got.Gains, want.Gains)
					}
					if math.Float64bits(got.Objective()) != math.Float64bits(want.Objective()) {
						t.Fatalf("shards=%d %v/%v: objective %v, want %v",
							shards, problem, strategy, got.Objective(), want.Objective())
					}
				}
			}
		}
	}
}

// Streamed coordinator rounds must reassemble bit-identically into the
// blocking result, with the objective telescoping exactly — mirroring the
// engine's streaming contract.
func TestSelectStreamMergeParity(t *testing.T) {
	g := testGraph(t, 300, 3)
	ref, co := newParityPair(t, g, 3)
	req := engine.SelectRequest{Graph: "test", K: 6, L: 4, R: 20, Seed: 5}
	want, err := ref.Select(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var rounds []engine.Round
	got, err := co.SelectStream(context.Background(), req, func(rd engine.Round) error {
		rounds = append(rounds, rd)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sameInts(got.Nodes, want.Nodes) || !sameFloats(got.Gains, want.Gains) {
		t.Fatalf("streamed result diverged: %v / %v, want %v / %v", got.Nodes, got.Gains, want.Nodes, want.Gains)
	}
	total := 0.0
	for i, rd := range rounds {
		if rd.Round != i+1 || rd.Node != want.Nodes[i] {
			t.Fatalf("round %d: got (%d, node %d), want node %d", i+1, rd.Round, rd.Node, want.Nodes[i])
		}
		total += rd.Gain
		if math.Float64bits(rd.Objective) != math.Float64bits(total) {
			t.Fatalf("round %d objective %v, want running total %v", i+1, rd.Objective, total)
		}
	}
}

// TestReadMergeParity pins the read surface: Gain, Objective and TopGains
// answers must be bit-identical to the unsharded engine for every shard
// count, problem, and seed-set shape (empty, singleton, larger).
func TestReadMergeParity(t *testing.T) {
	g := testGraph(t, 350, 7)
	ctx := context.Background()
	sets := [][]int{{}, {4}, {9, 3, 120}}
	nodes := []int{0, 5, 17, 200, 349}
	for _, shards := range []int{1, 2, 4} {
		ref, co := newParityPair(t, g, shards)
		for _, problem := range []engine.Problem{engine.Problem1, engine.Problem2} {
			for _, set := range sets {
				greq := engine.GainRequest{Graph: "test", Problem: problem, L: 5, R: 25, Seed: 9, Set: set, Nodes: nodes}
				want, err := ref.Gain(ctx, greq)
				if err != nil {
					t.Fatal(err)
				}
				got, err := co.Gain(ctx, greq)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if !sameFloats(got.Gains, want.Gains) {
					t.Fatalf("shards=%d %v set=%v: gains %v, want %v", shards, problem, set, got.Gains, want.Gains)
				}

				oreq := engine.ObjectiveRequest{Graph: "test", Problem: problem, L: 5, R: 25, Seed: 9, Set: set}
				wantO, err := ref.Objective(ctx, oreq)
				if err != nil {
					t.Fatal(err)
				}
				gotO, err := co.Objective(ctx, oreq)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(gotO.Objective) != math.Float64bits(wantO.Objective) {
					t.Fatalf("shards=%d %v set=%v: objective %v, want %v", shards, problem, set, gotO.Objective, wantO.Objective)
				}

				for _, b := range []int{1, 5, 40} {
					treq := engine.TopGainsRequest{Graph: "test", Problem: problem, L: 5, R: 25, Seed: 9, Set: set, B: b}
					wantT, err := ref.TopGains(ctx, treq)
					if err != nil {
						t.Fatal(err)
					}
					gotT, err := co.TopGains(ctx, treq)
					if err != nil {
						t.Fatal(err)
					}
					if !sameInts(gotT.Nodes, wantT.Nodes) || !sameFloats(gotT.Gains, wantT.Gains) {
						t.Fatalf("shards=%d %v set=%v b=%d: top %v/%v, want %v/%v",
							shards, problem, set, b, gotT.Nodes, gotT.Gains, wantT.Nodes, wantT.Gains)
					}
				}
			}
		}
	}
}

// The coordinator rejects malformed requests with the engine's exact codes
// before anything is scattered.
func TestCoordinatorValidation(t *testing.T) {
	g := testGraph(t, 50, 1)
	_, co := newParityPair(t, g, 2)
	ctx := context.Background()
	cases := []struct {
		name string
		call func() error
		code engine.Code
	}{
		{"unknown graph", func() error {
			_, err := co.Select(ctx, engine.SelectRequest{Graph: "nope", K: 1, L: 3})
			return err
		}, engine.CodeNotFound},
		{"negative k", func() error {
			_, err := co.Select(ctx, engine.SelectRequest{Graph: "test", K: -1, L: 3})
			return err
		}, engine.CodeBadRequest},
		{"bad L", func() error {
			_, err := co.Select(ctx, engine.SelectRequest{Graph: "test", K: 1, L: -1})
			return err
		}, engine.CodeBadRequest},
		{"R over cap", func() error {
			_, err := co.Gain(ctx, engine.GainRequest{Graph: "test", L: 3, R: 100000, Nodes: []int{1}})
			return err
		}, engine.CodeBadRequest},
		{"no nodes", func() error {
			_, err := co.Gain(ctx, engine.GainRequest{Graph: "test", L: 3, R: 10})
			return err
		}, engine.CodeBadRequest},
		{"node out of range", func() error {
			_, err := co.Gain(ctx, engine.GainRequest{Graph: "test", L: 3, R: 10, Nodes: []int{50}})
			return err
		}, engine.CodeBadRequest},
		{"set out of range", func() error {
			_, err := co.Objective(ctx, engine.ObjectiveRequest{Graph: "test", L: 3, R: 10, Set: []int{-1}})
			return err
		}, engine.CodeBadRequest},
		{"b out of range", func() error {
			_, err := co.TopGains(ctx, engine.TopGainsRequest{Graph: "test", L: 3, R: 10, B: -2})
			return err
		}, engine.CodeBadRequest},
		{"unknown problem", func() error {
			_, err := co.TopGains(ctx, engine.TopGainsRequest{Graph: "test", Problem: index.Problem(9), L: 3, R: 10})
			return err
		}, engine.CodeBadRequest},
	}
	for _, tc := range cases {
		if err := tc.call(); engine.CodeOf(err) != tc.code {
			t.Fatalf("%s: code %q (err %v), want %q", tc.name, engine.CodeOf(err), err, tc.code)
		}
	}
}

// More shards than replicates: the extra workers get empty ranges and no
// traffic, and the merge still reproduces the unsharded answer exactly.
func TestMoreShardsThanReplicates(t *testing.T) {
	g := testGraph(t, 120, 2)
	ref, co := newParityPair(t, g, 4)
	req := engine.SelectRequest{Graph: "test", K: 3, L: 4, R: 3, Seed: 2}
	want, err := ref.Select(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := co.Select(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !sameInts(got.Nodes, want.Nodes) || !sameFloats(got.Gains, want.Gains) {
		t.Fatalf("R<shards diverged: %v/%v, want %v/%v", got.Nodes, got.Gains, want.Nodes, want.Gains)
	}
	// With R = 3 over 4 workers the balanced split leaves exactly one worker
	// (shard 0: [0·3/4, 1·3/4) = ∅) with an empty range and no traffic.
	st := co.Stats()
	if st.PerShard[0].Requests != 0 {
		t.Fatalf("empty-range shard saw %d requests, want 0", st.PerShard[0].Requests)
	}
	for s := 1; s < 4; s++ {
		if st.PerShard[s].Requests == 0 {
			t.Fatalf("shard %d saw no traffic; expected only shard 0 to be empty", s)
		}
	}
}
