package greedy

import (
	"reflect"
	"testing"

	"repro/internal/rng"
)

// coverOracle is a max-coverage instance whose Gain is a pure read of the
// covered bitmap — the same concurrency contract index.DTable offers — so it
// can exercise the parallel drivers.
type coverOracle struct {
	sets    [][]int
	covered []bool
}

func (o *coverOracle) Gain(u int) float64 {
	gain := 0
	for _, v := range o.sets[u] {
		if !o.covered[v] {
			gain++
		}
	}
	return float64(gain)
}

func (o *coverOracle) Update(u int) {
	for _, v := range o.sets[u] {
		o.covered[v] = true
	}
}

// batchCoverOracle adds the GainBatch fast path.
type batchCoverOracle struct{ coverOracle }

func (o *batchCoverOracle) GainBatch(us []int, out []float64) []float64 {
	for _, u := range us {
		out = append(out, o.Gain(u))
	}
	return out
}

// randomCover builds a deterministic random coverage instance with plenty of
// gain ties, the case where tie-breaking rules could drift between drivers.
func randomCover(n, universe int, seed uint64) func() *coverOracle {
	r := rng.New(seed)
	sets := make([][]int, n)
	for u := range sets {
		size := 1 + r.Intn(12)
		for j := 0; j < size; j++ {
			sets[u] = append(sets[u], r.Intn(universe))
		}
	}
	return func() *coverOracle {
		return &coverOracle{sets: sets, covered: make([]bool, universe)}
	}
}

func TestRunWorkersMatchesSerial(t *testing.T) {
	mk := randomCover(300, 500, 5)
	const k = 25
	want, err := Run(300, k, mk())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8, 400} {
		got, err := RunWorkers(300, k, mk(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Selected, want.Selected) {
			t.Fatalf("workers=%d: Selected %v != serial %v", workers, got.Selected, want.Selected)
		}
		if !reflect.DeepEqual(got.Gains, want.Gains) {
			t.Fatalf("workers=%d: Gains differ from serial", workers)
		}
	}
}

func TestRunLazyWorkersMatchesSerial(t *testing.T) {
	mk := randomCover(400, 600, 9)
	const k = 30
	want, err := RunLazy(400, k, mk())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		got, err := RunLazyWorkers(400, k, mk(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Selected, want.Selected) {
			t.Fatalf("workers=%d: Selected %v != serial %v", workers, got.Selected, want.Selected)
		}
		if !reflect.DeepEqual(got.Gains, want.Gains) {
			t.Fatalf("workers=%d: Gains differ from serial", workers)
		}
	}
	// The plain and lazy drivers must still agree with each other.
	plain, _ := Run(400, k, mk())
	if !reflect.DeepEqual(plain.Selected, want.Selected) {
		t.Fatal("lazy and plain drivers disagree on the test instance")
	}
}

func TestParallelDriversUseGainBatch(t *testing.T) {
	mk := randomCover(200, 300, 13)
	const k = 12
	want, err := RunLazy(200, k, mk())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		got, err := RunLazyWorkers(200, k, &batchCoverOracle{*mk()}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Selected, want.Selected) {
			t.Fatalf("batch oracle workers=%d: Selected %v != %v", workers, got.Selected, want.Selected)
		}
		gotPlain, err := RunWorkers(200, k, &batchCoverOracle{*mk()}, workers)
		if err != nil {
			t.Fatal(err)
		}
		plain, _ := Run(200, k, mk())
		if !reflect.DeepEqual(gotPlain.Selected, plain.Selected) {
			t.Fatalf("batch oracle plain workers=%d: Selected %v != %v", workers, gotPlain.Selected, plain.Selected)
		}
	}
}

func TestRunLazyWorkersValidation(t *testing.T) {
	o := &coverOracle{sets: [][]int{{0}}, covered: make([]bool, 1)}
	if _, err := RunLazyWorkers(0, 1, o, 4); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := RunWorkers(1, -1, o, 4); err == nil {
		t.Error("negative k accepted")
	}
	// k > n clamps, workers > n clamps.
	res, err := RunLazyWorkers(1, 5, o, 16)
	if err != nil || len(res.Selected) != 1 {
		t.Fatalf("clamped run: %v %v", res, err)
	}
}
