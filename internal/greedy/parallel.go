package greedy

import (
	"container/heap"
	"context"
	"sync"

	"repro/internal/faultinject"
)

// BatchOracle is an Oracle that can evaluate many candidates in one call.
// GainBatch appends Gain(u) for each u in us to out and returns it; the
// values must be bit-for-bit identical to per-candidate Gain calls.
//
// The parallel drivers invoke GainBatch (and Gain) concurrently from several
// goroutines between Update calls, so implementations must make gain
// evaluation a pure read of their committed state — which index.DTable
// satisfies: gains are integer accumulations over an immutable index and a
// D-table that only Update mutates.
type BatchOracle interface {
	Oracle
	GainBatch(us []int, out []float64) []float64
}

// sweepRange evaluates gains[lo:hi] for candidates lo..hi-1 against the
// oracle's current committed set, using GainBatch calls when available. It
// returns the (possibly grown) candidate-id scratch buffer so callers can
// reuse it across rounds. GainBatch appends into gains[c:c], whose capacity
// covers [c, hi), so the results land in place.
//
// The range is processed in cancelCheckStride chunks with a ctx check
// between chunks; on cancellation the remaining gains are left stale, which
// is fine because every caller abandons the round (and the result) once it
// observes ctx canceled after the sweep.
func sweepRange(ctx context.Context, oracle Oracle, gains []float64, us []int, lo, hi int) []int {
	bo, batch := oracle.(BatchOracle)
	for c := lo; c < hi; c += cancelCheckStride {
		// Latency-only fault site (worker goroutine: a panic here would kill
		// the process and an error has no channel) — chaos tests use it to
		// make selections slow enough to pile up against deadlines and the
		// admission gate. One atomic load when no plan is armed.
		faultinject.Delay(faultinject.SiteGreedyStride)
		if ctx.Err() != nil {
			return us
		}
		ch := c + cancelCheckStride
		if ch > hi {
			ch = hi
		}
		if batch {
			us = us[:0]
			for u := c; u < ch; u++ {
				us = append(us, u)
			}
			bo.GainBatch(us, gains[c:c])
			continue
		}
		for u := c; u < ch; u++ {
			gains[u] = oracle.Gain(u)
		}
	}
	return us
}

// shardBounds splits [0, n) into at most workers near-equal ranges.
func shardBounds(n, workers int) [][2]int {
	per := (n + workers - 1) / workers
	var out [][2]int
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// RunWorkers is Run with the per-round candidate scan sharded over the given
// number of goroutines. Each worker scans a contiguous candidate range for
// its local first maximum; the reduction applies the same gain-then-smaller-id
// rule, so selections are bit-for-bit identical to the serial driver for
// every worker count. The oracle's Gain must be safe for concurrent calls
// (see BatchOracle); workers <= 1 falls back to the serial driver.
func RunWorkers(n, k int, oracle Oracle, workers int) (*Result, error) {
	return RunWorkersCtx(context.Background(), n, k, oracle, workers)
}

// RunWorkersCtx is RunWorkers with cooperative cancellation: workers check
// ctx between evaluation strides and the driver returns ctx's error (and no
// result) at the next synchronization point after cancellation. The oracle
// is left mid-selection and must be discarded.
func RunWorkersCtx(ctx context.Context, n, k int, oracle Oracle, workers int) (*Result, error) {
	return RunWorkersStream(ctx, n, k, oracle, workers, nil)
}

// RunWorkersStream is RunWorkersCtx with a per-pick observer (see
// PickObserver); the observer runs on the driver goroutine, never
// concurrently with itself or with gain evaluation.
func RunWorkersStream(ctx context.Context, n, k int, oracle Oracle, workers int, obs PickObserver) (*Result, error) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return RunStream(ctx, n, k, oracle, obs)
	}
	k, err := validate(n, k)
	if err != nil {
		return nil, err
	}
	res := &Result{Selected: make([]int, 0, k), Gains: make([]float64, 0, k)}
	selected := make([]bool, n)
	gains := make([]float64, n)
	shards := shardBounds(n, workers)
	usBufs := make([][]int, len(shards))
	for round := 0; round < k; round++ {
		var wg sync.WaitGroup
		for s, bounds := range shards {
			wg.Add(1)
			go func(s, lo, hi int) {
				defer wg.Done()
				usBufs[s] = sweepRange(ctx, oracle, gains, usBufs[s], lo, hi)
			}(s, bounds[0], bounds[1])
		}
		wg.Wait()
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		best, bestGain := -1, 0.0
		for u := 0; u < n; u++ {
			if selected[u] {
				continue
			}
			res.Evaluations++
			if best == -1 || gains[u] > bestGain {
				best, bestGain = u, gains[u]
			}
		}
		if best == -1 {
			break
		}
		selected[best] = true
		oracle.Update(best)
		res.Selected = append(res.Selected, best)
		res.Gains = append(res.Gains, bestGain)
		if err := obs.observe(best, bestGain); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// RunLazyWorkers is RunLazy (CELF) with the two gain-evaluation phases
// parallelized: the initial whole-candidate sweep is sharded over workers
// goroutines, and each time the heap top is stale the top batch of stale
// entries (up to workers of them) is re-evaluated concurrently instead of
// one at a time.
//
// Selections are bit-for-bit identical to the serial RunLazy for every
// worker count: a refreshed gain is an exact, order-independent function of
// the committed set (integer accumulation in the oracle), and a candidate is
// only ever selected when its entry is fresh for the current round — at
// which point it is the unique (gain, smaller-id) lexicographic argmax
// regardless of how many extra entries a batch refreshed along the way.
// Extra refreshes can only tighten cached upper bounds, never change them.
//
// The oracle's Gain/GainBatch must be safe for concurrent invocation between
// Updates (see BatchOracle). workers <= 1 falls back to the serial driver.
func RunLazyWorkers(n, k int, oracle Oracle, workers int) (*Result, error) {
	return RunLazyWorkersCtx(context.Background(), n, k, oracle, workers)
}

// RunLazyWorkersCtx is RunLazyWorkers with cooperative cancellation; see
// RunWorkersCtx for the contract.
func RunLazyWorkersCtx(ctx context.Context, n, k int, oracle Oracle, workers int) (*Result, error) {
	return RunLazyWorkersStream(ctx, n, k, oracle, workers, nil)
}

// RunLazyWorkersStream is RunLazyWorkersCtx with a per-pick observer (see
// PickObserver); the observer runs on the driver goroutine, never
// concurrently with itself or with gain evaluation.
func RunLazyWorkersStream(ctx context.Context, n, k int, oracle Oracle, workers int, obs PickObserver) (*Result, error) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return RunLazyStream(ctx, n, k, oracle, obs)
	}
	k, err := validate(n, k)
	if err != nil {
		return nil, err
	}
	res := &Result{Selected: make([]int, 0, k), Gains: make([]float64, 0, k)}

	// Phase 1: sharded initial sweep against the empty set.
	gains := make([]float64, n)
	shards := shardBounds(n, workers)
	var wg sync.WaitGroup
	for _, bounds := range shards {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sweepRange(ctx, oracle, gains, nil, lo, hi)
		}(bounds[0], bounds[1])
	}
	wg.Wait()
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	res.Evaluations += n

	h := make(celfHeap, 0, n)
	for u := 0; u < n; u++ {
		h = append(h, celfItem{u: int32(u), round: 1, gain: gains[u]})
	}
	heap.Init(&h)

	// Phase 2: CELF loop with batched stale re-evaluation. One loop step
	// costs at least a Gain or an Update, so a per-step ctx check keeps
	// cancellation latency bounded.
	batch := make([]celfItem, 0, workers)
	for round := int32(1); int(round) <= k && h.Len() > 0; {
		faultinject.Delay(faultinject.SiteGreedyStride)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if h[0].round == round {
			top := heap.Pop(&h).(celfItem)
			oracle.Update(int(top.u))
			res.Selected = append(res.Selected, int(top.u))
			res.Gains = append(res.Gains, top.gain)
			if err := obs.observe(int(top.u), top.gain); err != nil {
				return nil, err
			}
			round++
			continue
		}
		// Pop the stale prefix of the heap, up to one entry per worker. Stop
		// early if a fresh entry surfaces: everything below it in the heap is
		// dominated this round and not worth refreshing.
		batch = batch[:0]
		for len(batch) < workers && h.Len() > 0 && h[0].round != round {
			batch = append(batch, heap.Pop(&h).(celfItem))
		}
		// Entries beyond the first run on spawned goroutines; the first is
		// refreshed inline, so a 1-entry batch (the common CELF case) pays
		// no synchronization at all.
		for b := 1; b < len(batch); b++ {
			wg.Add(1)
			go func(b int) {
				defer wg.Done()
				batch[b].gain = oracle.Gain(int(batch[b].u))
				batch[b].round = round
			}(b)
		}
		batch[0].gain = oracle.Gain(int(batch[0].u))
		batch[0].round = round
		wg.Wait()
		res.Evaluations += len(batch)
		for _, it := range batch {
			heap.Push(&h, it)
		}
	}
	return res, nil
}
