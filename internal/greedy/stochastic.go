package greedy

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// RunStochastic executes stochastic greedy ("lazier than lazy greedy",
// Mirzasoleiman et al., AAAI 2015): each round evaluates a uniform random
// subset of ⌈(n/k)·ln(1/eps)⌉ remaining candidates and selects the best
// among them. For a nondecreasing submodular objective this achieves a
// (1 − 1/e − eps) approximation in expectation with only O(n·ln(1/eps))
// total gain evaluations — independent of k.
//
// It slots into this module as the third driver next to Run and RunLazy:
// on the paper's problems it trades a provably bounded sliver of quality for
// k-independent cost, which matters when both n and k are large and even
// CELF's first full sweep dominates.
func RunStochastic(n, k int, oracle Oracle, eps float64, seed uint64) (*Result, error) {
	k, err := validate(n, k)
	if err != nil {
		return nil, err
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("greedy: stochastic eps %v outside (0,1)", eps)
	}
	res := &Result{Selected: make([]int, 0, k), Gains: make([]float64, 0, k)}
	if k == 0 {
		return res, nil
	}
	sample := int(math.Ceil(float64(n) / float64(k) * math.Log(1/eps)))
	if sample < 1 {
		sample = 1
	}
	r := rng.New(seed)

	// remaining holds the not-yet-selected candidates; sampling without
	// replacement is a partial Fisher–Yates over its prefix.
	remaining := make([]int32, n)
	for i := range remaining {
		remaining[i] = int32(i)
	}
	for round := 0; round < k && len(remaining) > 0; round++ {
		s := sample
		if s > len(remaining) {
			s = len(remaining)
		}
		for i := 0; i < s; i++ {
			j := i + r.Intn(len(remaining)-i)
			remaining[i], remaining[j] = remaining[j], remaining[i]
		}
		// Ties break toward the smaller node id, matching the other drivers,
		// so a full sample reproduces plain greedy exactly.
		bestIdx, bestGain := -1, 0.0
		for i := 0; i < s; i++ {
			u := int(remaining[i])
			g := oracle.Gain(u)
			res.Evaluations++
			if bestIdx == -1 || g > bestGain || (g == bestGain && u < int(remaining[bestIdx])) {
				bestIdx, bestGain = i, g
			}
		}
		best := int(remaining[bestIdx])
		remaining[bestIdx] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
		oracle.Update(best)
		res.Selected = append(res.Selected, best)
		res.Gains = append(res.Gains, bestGain)
	}
	return res, nil
}
