package greedy

import (
	"math"
	"testing"
)

func TestStochasticValidation(t *testing.T) {
	o := newCoverage([][]int{{0}}, 1)
	if _, err := RunStochastic(0, 1, o, 0.1, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := RunStochastic(1, -1, o, 0.1, 1); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := RunStochastic(1, 1, o, 0, 1); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := RunStochastic(1, 1, o, 1, 1); err == nil {
		t.Error("eps=1 accepted")
	}
}

func TestStochasticZeroBudget(t *testing.T) {
	o := newCoverage([][]int{{0}, {1}}, 2)
	res, err := RunStochastic(2, 0, o, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 0 {
		t.Fatalf("k=0 selected %v", res.Selected)
	}
}

func TestStochasticNoRepeats(t *testing.T) {
	o := randomCoverage(3, 50, 70)
	res, err := RunStochastic(50, 20, o, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 20 {
		t.Fatalf("selected %d, want 20", len(res.Selected))
	}
	seen := map[int]bool{}
	for _, u := range res.Selected {
		if seen[u] {
			t.Fatalf("repeated selection %d", u)
		}
		seen[u] = true
	}
}

func TestStochasticFewerEvaluationsThanPlain(t *testing.T) {
	const n, elements, k = 400, 600, 40
	plain := randomCoverage(7, n, elements)
	stoch := randomCoverage(7, n, elements)
	rp, _ := Run(n, k, plain)
	rs, err := RunStochastic(n, k, stoch, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Evaluations >= rp.Evaluations {
		t.Fatalf("stochastic evals %d not fewer than plain %d", rs.Evaluations, rp.Evaluations)
	}
}

func TestStochasticQualityNearPlain(t *testing.T) {
	// Averaged over seeds, stochastic greedy should land within ~(1−eps) of
	// plain greedy's objective on coverage instances.
	const n, elements, k = 200, 300, 15
	plain := randomCoverage(11, n, elements)
	rp, _ := Run(n, k, plain)
	total := 0.0
	const trials = 10
	for s := uint64(0); s < trials; s++ {
		stoch := randomCoverage(11, n, elements)
		rs, err := RunStochastic(n, k, stoch, 0.1, s)
		if err != nil {
			t.Fatal(err)
		}
		total += rs.Objective()
	}
	avg := total / trials
	if avg < 0.9*rp.Objective() {
		t.Fatalf("stochastic avg %v below 90%% of plain %v", avg, rp.Objective())
	}
}

func TestStochasticDeterministicForSeed(t *testing.T) {
	a, _ := RunStochastic(50, 10, randomCoverage(2, 50, 70), 0.2, 42)
	b, _ := RunStochastic(50, 10, randomCoverage(2, 50, 70), 0.2, 42)
	if len(a.Selected) != len(b.Selected) {
		t.Fatal("lengths differ")
	}
	for i := range a.Selected {
		if a.Selected[i] != b.Selected[i] {
			t.Fatal("same seed, different selections")
		}
	}
}

func TestStochasticSampleCoversAllWhenTiny(t *testing.T) {
	// With n small and eps tiny, the sample covers every candidate and
	// stochastic greedy equals plain greedy exactly.
	const n, elements, k = 12, 20, 4
	plain := randomCoverage(5, n, elements)
	stoch := randomCoverage(5, n, elements)
	rp, _ := Run(n, k, plain)
	rs, _ := RunStochastic(n, k, stoch, 1e-9, 1)
	if math.Abs(rp.Objective()-rs.Objective()) > 1e-9 {
		t.Fatalf("full-sample stochastic %v != plain %v", rs.Objective(), rp.Objective())
	}
}
