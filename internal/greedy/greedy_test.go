package greedy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// coverageOracle is a weighted max-coverage objective: each candidate covers
// a fixed set of elements with weights; the gain is the weight of newly
// covered elements. Coverage functions are the canonical submodular family,
// so they exercise both drivers realistically.
type coverageOracle struct {
	covers  [][]int
	weight  []float64
	covered []bool
	calls   int
}

func (o *coverageOracle) Gain(u int) float64 {
	o.calls++
	g := 0.0
	for _, e := range o.covers[u] {
		if !o.covered[e] {
			g += o.weight[e]
		}
	}
	return g
}

func (o *coverageOracle) Update(u int) {
	for _, e := range o.covers[u] {
		o.covered[e] = true
	}
}

func newCoverage(covers [][]int, elements int) *coverageOracle {
	w := make([]float64, elements)
	for i := range w {
		w[i] = 1
	}
	return &coverageOracle{covers: covers, weight: w, covered: make([]bool, elements)}
}

func randomCoverage(seed uint64, n, elements int) *coverageOracle {
	r := rng.New(seed)
	covers := make([][]int, n)
	for u := range covers {
		sz := 1 + r.Intn(5)
		for j := 0; j < sz; j++ {
			covers[u] = append(covers[u], r.Intn(elements))
		}
	}
	return newCoverage(covers, elements)
}

func TestPlainGreedyPicksObviousWinner(t *testing.T) {
	// Candidate 0 covers everything; it must be picked first.
	o := newCoverage([][]int{{0, 1, 2, 3}, {0}, {1}, {2}}, 4)
	res, err := Run(4, 2, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected[0] != 0 {
		t.Fatalf("first pick %d, want 0", res.Selected[0])
	}
	if res.Gains[0] != 4 {
		t.Fatalf("first gain %v, want 4", res.Gains[0])
	}
	if res.Objective() != 4 {
		t.Fatalf("objective %v, want 4 (everything covered by first pick)", res.Objective())
	}
}

func TestLazyMatchesPlainSelectionValue(t *testing.T) {
	// On submodular objectives, lazy greedy must achieve exactly the same
	// objective value as plain greedy (selections may differ only on ties).
	f := func(seed uint64) bool {
		const n, elements, k = 40, 60, 8
		plain := randomCoverage(seed, n, elements)
		lazy := randomCoverage(seed, n, elements)
		rp, err1 := Run(n, k, plain)
		rl, err2 := RunLazy(n, k, lazy)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(rp.Objective()-rl.Objective()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLazyUsesFewerEvaluations(t *testing.T) {
	const n, elements, k = 200, 300, 20
	plain := randomCoverage(7, n, elements)
	lazy := randomCoverage(7, n, elements)
	rp, _ := Run(n, k, plain)
	rl, _ := RunLazy(n, k, lazy)
	if rl.Evaluations >= rp.Evaluations {
		t.Fatalf("lazy evaluations %d not fewer than plain %d", rl.Evaluations, rp.Evaluations)
	}
	if rp.Evaluations < n {
		t.Fatalf("plain evaluations %d suspiciously low", rp.Evaluations)
	}
}

func TestKClampedToN(t *testing.T) {
	o := newCoverage([][]int{{0}, {1}, {2}}, 3)
	res, err := Run(3, 10, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 3 {
		t.Fatalf("selected %d nodes, want 3", len(res.Selected))
	}
	o2 := newCoverage([][]int{{0}, {1}, {2}}, 3)
	res2, err := RunLazy(3, 10, o2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Selected) != 3 {
		t.Fatalf("lazy selected %d nodes, want 3", len(res2.Selected))
	}
}

func TestValidation(t *testing.T) {
	o := newCoverage([][]int{{0}}, 1)
	if _, err := Run(0, 1, o); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Run(1, -1, o); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := RunLazy(0, 1, o); err == nil {
		t.Error("lazy n=0 accepted")
	}
	if _, err := RunLazy(1, -2, o); err == nil {
		t.Error("lazy negative k accepted")
	}
}

func TestZeroBudget(t *testing.T) {
	o := newCoverage([][]int{{0}, {1}}, 2)
	res, err := Run(2, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 0 || res.Evaluations != 0 {
		t.Fatalf("k=0: selected=%v evals=%d", res.Selected, res.Evaluations)
	}
	res, err = RunLazy(2, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 0 {
		t.Fatalf("lazy k=0 selected %v", res.Selected)
	}
}

func TestNoRepeatSelections(t *testing.T) {
	f := func(seed uint64) bool {
		const n, elements, k = 30, 40, 15
		for _, run := range []func(int, int, Oracle) (*Result, error){Run, RunLazy} {
			o := randomCoverage(seed, n, elements)
			res, err := run(n, k, o)
			if err != nil {
				return false
			}
			seen := map[int]bool{}
			for _, u := range res.Selected {
				if u < 0 || u >= n || seen[u] {
					return false
				}
				seen[u] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGainsNonIncreasing(t *testing.T) {
	// Greedy marginal gains on a submodular objective are non-increasing in
	// selection order.
	o := randomCoverage(11, 50, 80)
	res, _ := Run(50, 12, o)
	for i := 1; i < len(res.Gains); i++ {
		if res.Gains[i] > res.Gains[i-1]+1e-9 {
			t.Fatalf("gain increased: %v then %v", res.Gains[i-1], res.Gains[i])
		}
	}
}

func TestGreedyApproximationGuarantee(t *testing.T) {
	// On small instances, compare greedy against the exhaustive optimum:
	// greedy must achieve at least (1 − 1/e) of it (Nemhauser et al.).
	r := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		const n, elements, k = 10, 12, 3
		covers := make([][]int, n)
		for u := range covers {
			sz := 1 + r.Intn(4)
			for j := 0; j < sz; j++ {
				covers[u] = append(covers[u], r.Intn(elements))
			}
		}
		eval := func(sel []int) float64 {
			covered := map[int]bool{}
			for _, u := range sel {
				for _, e := range covers[u] {
					covered[e] = true
				}
			}
			return float64(len(covered))
		}
		best := 0.0
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				for c := b + 1; c < n; c++ {
					if v := eval([]int{a, b, c}); v > best {
						best = v
					}
				}
			}
		}
		o := newCoverage(covers, elements)
		res, _ := Run(n, k, o)
		if got := res.Objective(); got < (1-1/math.E)*best-1e-9 {
			t.Fatalf("trial %d: greedy %v below (1-1/e)·OPT = %v", trial, got, (1-1/math.E)*best)
		}
	}
}

func TestOracleFuncs(t *testing.T) {
	calls := 0
	o := OracleFuncs(
		func(u int) float64 { return float64(-u) },
		func(u int) { calls++ },
	)
	res, err := Run(3, 1, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected[0] != 0 || calls != 1 {
		t.Fatalf("selected %v, update calls %d", res.Selected, calls)
	}
}

func BenchmarkPlainGreedy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := randomCoverage(1, 500, 800)
		if _, err := Run(500, 30, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLazyGreedy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := randomCoverage(1, 500, 800)
		if _, err := RunLazy(500, 30, o); err != nil {
			b.Fatal(err)
		}
	}
}
