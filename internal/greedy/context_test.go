package greedy

import (
	"context"
	"errors"
	"testing"
)

// pureOracle is stateless (safe for the concurrent drivers); gains favor
// larger ids so selections are nontrivial.
type pureOracle struct{}

func (pureOracle) Gain(u int) float64 { return float64(u) }
func (pureOracle) Update(int)         {}

func TestDriversReturnContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, k := 5000, 10
	drivers := map[string]func() (*Result, error){
		"RunCtx":            func() (*Result, error) { return RunCtx(ctx, n, k, pureOracle{}) },
		"RunLazyCtx":        func() (*Result, error) { return RunLazyCtx(ctx, n, k, pureOracle{}) },
		"RunWorkersCtx":     func() (*Result, error) { return RunWorkersCtx(ctx, n, k, pureOracle{}, 4) },
		"RunLazyWorkersCtx": func() (*Result, error) { return RunLazyWorkersCtx(ctx, n, k, pureOracle{}, 4) },
	}
	for name, run := range drivers {
		res, err := run()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if res != nil {
			t.Errorf("%s: returned a result despite cancellation", name)
		}
	}
}

func TestBackgroundContextMatchesPlainDrivers(t *testing.T) {
	n, k := 300, 7
	want, err := Run(n, k, pureOracle{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		got, err := RunWorkersCtx(context.Background(), n, k, pureOracle{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Selected) != len(want.Selected) {
			t.Fatalf("workers=%d: selected %d nodes, want %d", workers, len(got.Selected), len(want.Selected))
		}
		for i := range want.Selected {
			if got.Selected[i] != want.Selected[i] {
				t.Fatalf("workers=%d: selection[%d] = %d, want %d", workers, i, got.Selected[i], want.Selected[i])
			}
		}
	}
}
