// Package greedy implements the cardinality-constrained submodular
// maximization loop of Algorithm 1 in two flavors: plain greedy, which
// re-evaluates every candidate's marginal gain each round, and lazy greedy
// (CELF, the "lazy evaluation strategy [19]" the paper cites), which exploits
// submodularity — a candidate's gain can only shrink as the set grows — to
// skip most re-evaluations.
//
// Both drivers are generic over an Oracle so the same loop serves the
// DP-based greedy algorithm, the sampling-based greedy algorithm, and the
// approximate (inverted-index) greedy algorithm.
//
// RunWorkers and RunLazyWorkers (parallel.go) are the same two drivers with
// gain evaluation sharded over goroutines — the initial CELF sweep is split
// into contiguous candidate ranges and stale heap entries are re-evaluated
// in batches of up to one per worker, using the BatchOracle fast path when
// the oracle provides one. They require a concurrency-safe Gain (pure reads
// between Updates, as index.DTable guarantees) and produce bit-for-bit the
// selections of their serial counterparts for every worker count.
package greedy

import (
	"container/heap"
	"context"
	"fmt"

	"repro/internal/faultinject"
)

// Oracle abstracts an objective over node sets. Gain(u) returns the marginal
// gain of adding candidate u to the oracle's current set; Update(u) commits
// u to the set. Gains must be computed with respect to the committed set.
// For the lazy driver to be correct, Gain must be non-increasing in the
// committed set (submodularity).
type Oracle interface {
	Gain(u int) float64
	Update(u int)
}

// Result reports one greedy selection.
type Result struct {
	// Selected lists the chosen nodes in selection order.
	Selected []int
	// Gains holds the marginal gain recorded when each node was selected,
	// parallel to Selected.
	Gains []float64
	// Evaluations counts Gain calls, the unit the paper's complexity
	// analysis is written in; the lazy/plain ablation compares these.
	Evaluations int
}

// Objective returns the total objective value implied by the recorded gains
// (the telescoping sum of marginals).
func (r *Result) Objective() float64 {
	total := 0.0
	for _, g := range r.Gains {
		total += g
	}
	return total
}

func validate(n, k int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("greedy: no candidates (n=%d)", n)
	}
	if k < 0 {
		return 0, fmt.Errorf("greedy: negative budget k=%d", k)
	}
	if k > n {
		k = n
	}
	return k, nil
}

// cancelCheckStride is how many gain evaluations a driver performs between
// context checks. Cancellation latency is therefore bounded by the cost of
// one stride of evaluations (or one Update), not by a whole round over a
// large candidate set.
const cancelCheckStride = 1024

// PickObserver is notified of each committed pick, in selection order,
// immediately after the driver has applied it to the oracle — the hook the
// streaming selection path rides on. A non-nil error aborts the run: the
// driver returns that error and no result, leaving the oracle
// mid-selection. A nil PickObserver is valid and observes nothing.
//
// The observer cannot change what is selected: picks are reported after
// being committed, so a run with an observer selects bit-for-bit what the
// same run without one selects.
type PickObserver func(u int, gain float64) error

// observe reports one committed pick to obs, if any.
func (obs PickObserver) observe(u int, gain float64) error {
	if obs == nil {
		return nil
	}
	return obs(u, gain)
}

// Run executes plain greedy: k rounds, each scanning all remaining
// candidates (Algorithm 1 verbatim). O(kn) Gain calls.
func Run(n, k int, oracle Oracle) (*Result, error) {
	return RunCtx(context.Background(), n, k, oracle)
}

// RunCtx is Run with cooperative cancellation: the scan checks ctx every
// cancelCheckStride evaluations and the driver returns ctx's error (and no
// result) once it is observed canceled. The oracle is left mid-selection and
// must be discarded.
func RunCtx(ctx context.Context, n, k int, oracle Oracle) (*Result, error) {
	return RunStream(ctx, n, k, oracle, nil)
}

// RunStream is RunCtx with a per-pick observer; see PickObserver.
func RunStream(ctx context.Context, n, k int, oracle Oracle, obs PickObserver) (*Result, error) {
	k, err := validate(n, k)
	if err != nil {
		return nil, err
	}
	res := &Result{Selected: make([]int, 0, k), Gains: make([]float64, 0, k)}
	selected := make([]bool, n)
	for round := 0; round < k; round++ {
		best, bestGain := -1, 0.0
		for u := 0; u < n; u++ {
			if u%cancelCheckStride == 0 {
				faultinject.Delay(faultinject.SiteGreedyStride)
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
			}
			if selected[u] {
				continue
			}
			g := oracle.Gain(u)
			res.Evaluations++
			if best == -1 || g > bestGain {
				best, bestGain = u, g
			}
		}
		if best == -1 {
			break
		}
		selected[best] = true
		oracle.Update(best)
		res.Selected = append(res.Selected, best)
		res.Gains = append(res.Gains, bestGain)
		if err := obs.observe(best, bestGain); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// celfItem is a heap entry: a candidate with the gain observed at the round
// it was last evaluated.
type celfItem struct {
	u     int32
	round int32
	gain  float64
}

type celfHeap []celfItem

func (h celfHeap) Len() int { return len(h) }

// Less orders by gain descending with ties broken toward the smaller node
// id, matching plain greedy's first-maximum rule so the two drivers make
// identical selections and are directly comparable in tests and ablations.
func (h celfHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].u < h[j].u
}
func (h celfHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *celfHeap) Push(x interface{}) { *h = append(*h, x.(celfItem)) }
func (h *celfHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// RunLazy executes CELF lazy greedy. All candidates are evaluated once in
// round 0; afterwards, the top of a max-heap is re-evaluated only if its
// cached gain is stale. Because gains are non-increasing (submodularity), a
// fresh top-of-heap gain that still dominates every cached gain is
// guaranteed optimal for the round. Typically O(n + k·small) Gain calls.
func RunLazy(n, k int, oracle Oracle) (*Result, error) {
	return RunLazyCtx(context.Background(), n, k, oracle)
}

// RunLazyCtx is RunLazy with cooperative cancellation; see RunCtx for the
// contract.
func RunLazyCtx(ctx context.Context, n, k int, oracle Oracle) (*Result, error) {
	return RunLazyStream(ctx, n, k, oracle, nil)
}

// RunLazyStream is RunLazyCtx with a per-pick observer; see PickObserver.
func RunLazyStream(ctx context.Context, n, k int, oracle Oracle, obs PickObserver) (*Result, error) {
	k, err := validate(n, k)
	if err != nil {
		return nil, err
	}
	res := &Result{Selected: make([]int, 0, k), Gains: make([]float64, 0, k)}
	h := make(celfHeap, 0, n)
	// The initial sweep is evaluated against the empty set, which is the
	// state of round 1, so the entries are born fresh for the first pick.
	for u := 0; u < n; u++ {
		if u%cancelCheckStride == 0 {
			faultinject.Delay(faultinject.SiteGreedyStride)
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
		}
		h = append(h, celfItem{u: int32(u), round: 1, gain: oracle.Gain(u)})
		res.Evaluations++
	}
	heap.Init(&h)
	for round := int32(1); int(round) <= k && h.Len() > 0; {
		// One heap step costs at least a Gain or an Update, so a per-step
		// check keeps cancellation latency bounded without measurable cost.
		faultinject.Delay(faultinject.SiteGreedyStride)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		top := h[0]
		if top.round == round {
			// Fresh this round: by submodularity no other candidate can beat
			// it, so select it.
			heap.Pop(&h)
			oracle.Update(int(top.u))
			res.Selected = append(res.Selected, int(top.u))
			res.Gains = append(res.Gains, top.gain)
			if err := obs.observe(int(top.u), top.gain); err != nil {
				return nil, err
			}
			round++
			continue
		}
		// Stale: recompute against the current set and reinsert.
		h[0].gain = oracle.Gain(int(top.u))
		h[0].round = round
		res.Evaluations++
		heap.Fix(&h, 0)
	}
	return res, nil
}

// funcOracle adapts a pair of closures to the Oracle interface.
type funcOracle struct {
	gain   func(u int) float64
	update func(u int)
}

func (o funcOracle) Gain(u int) float64 { return o.gain(u) }
func (o funcOracle) Update(u int)       { o.update(u) }

// OracleFuncs wraps gain/update closures as an Oracle.
func OracleFuncs(gain func(u int) float64, update func(u int)) Oracle {
	return funcOracle{gain: gain, update: update}
}
