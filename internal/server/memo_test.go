package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/graph"
)

func TestMemoEvictionBound(t *testing.T) {
	g := testGraph(t, 300, 5)
	s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}, MemoSize: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, set := range []string{"1", "2", "3", "4", "5"} {
		resp, err := http.Get(ts.URL + "/v1/gain?graph=test&L=4&R=10&nodes=0&set=" + set)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("gain set=%s: status %d", set, resp.StatusCode)
		}
	}
	ms := s.MemoStats()
	if ms.Resident > 2 {
		t.Fatalf("resident %d exceeds MemoSize 2", ms.Resident)
	}
	if ms.Evictions != 3 {
		t.Fatalf("evictions = %d, want 3: %+v", ms.Evictions, ms)
	}
	if s.engine.MemoPinnedRefs() != 0 {
		t.Fatalf("%d refs still pinned after traffic stopped", s.engine.MemoPinnedRefs())
	}
}

// The memo bytes budget evicts LRU tables once their summed footprint
// exceeds it, keeping /stats resident_bytes under the configured budget.
func TestMemoBytesBudget(t *testing.T) {
	g := testGraph(t, 300, 7)
	// Measure one table's footprint on an unbudgeted server, then budget a
	// second server for two and a half tables.
	probe := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	tsProbe := httptest.NewServer(probe.Handler())
	defer tsProbe.Close()
	resp, err := http.Get(tsProbe.URL + "/v1/gain?graph=test&L=4&R=10&nodes=0&set=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	per := probe.MemoStats().ResidentBytes
	if per <= 0 {
		t.Fatalf("probe table bytes = %d", per)
	}

	budget := 2*per + per/2
	s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}, MemoBytes: budget})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, set := range []string{"1", "2", "3", "4", "5"} {
		resp, err := http.Get(ts.URL + "/v1/gain?graph=test&L=4&R=10&nodes=0&set=" + set)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("gain set=%s: status %d", set, resp.StatusCode)
		}
	}
	ms := s.MemoStats()
	if ms.ResidentBytes > budget {
		t.Fatalf("resident bytes %d over the %d budget", ms.ResidentBytes, budget)
	}
	if ms.Resident != 2 || ms.Evictions != 3 {
		t.Fatalf("stats = %+v, want 2 resident tables and 3 evictions", ms)
	}
	if s.engine.MemoPinnedRefs() != 0 {
		t.Fatalf("%d refs still pinned after traffic stopped", s.engine.MemoPinnedRefs())
	}
}

// TestMemoConcurrentStress floods one graph with mixed gain / objective /
// topgains / select traffic from many goroutines (run under -race in CI and
// bench.sh). Afterwards every refcount must be back to zero — no table was
// freed in use, none stayed pinned — and the hit/miss/empty counters must
// add up to exactly the memoized lookups issued.
func TestMemoConcurrentStress(t *testing.T) {
	g := testGraph(t, 400, 8)
	s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}, MemoSize: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A small pool of sets (some prefixes of each other, plus the empty
	// set) keeps hit, miss, extension and eviction paths all busy at once.
	sets := []string{"", "1", "1,2", "1,2,3", "7", "7,9", "250,4,199,4", "42"}
	const (
		clients        = 8
		perClient      = 30
		selectsPer     = 2
		expectRequests = clients * perClient
	)

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	var emptyIssued, memoIssued int64
	var mu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(c)))
			localEmpty, localMemo := int64(0), int64(0)
			for i := 0; i < perClient; i++ {
				set := sets[rnd.Intn(len(sets))]
				problem := []string{"1", "2"}[rnd.Intn(2)]
				var path string
				switch rnd.Intn(3) {
				case 0:
					path = fmt.Sprintf("/v1/gain?graph=test&problem=%s&L=4&R=15&set=%s&nodes=%d", problem, set, rnd.Intn(400))
				case 1:
					path = fmt.Sprintf("/v1/objective?graph=test&problem=%s&L=4&R=15&set=%s", problem, set)
				default:
					path = fmt.Sprintf("/v1/topgains?graph=test&problem=%s&L=4&R=15&set=%s&b=5", problem, set)
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
				if set == "" {
					localEmpty++
				} else {
					localMemo++
				}
			}
			// A couple of selections interleave whole-index work with the
			// memoized reads.
			for i := 0; i < selectsPer; i++ {
				body := fmt.Sprintf(`{"graph":"test","k":3,"L":4,"R":15,"workers":1,"problem":%q}`, []string{"hitting", "coverage"}[i%2])
				resp, err := http.Post(ts.URL+"/v1/select", "application/json", bytes.NewBufferString(body))
				if err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("select: status %d", resp.StatusCode)
					return
				}
			}
			mu.Lock()
			emptyIssued += localEmpty
			memoIssued += localMemo
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	ms := s.MemoStats()
	if got := ms.Hits + ms.Misses; got != memoIssued {
		t.Fatalf("hits(%d) + misses(%d) = %d, want %d memoized lookups: %+v",
			ms.Hits, ms.Misses, got, memoIssued, ms)
	}
	if ms.EmptyHits != emptyIssued {
		t.Fatalf("empty hits = %d, want %d", ms.EmptyHits, emptyIssued)
	}
	if ms.PopulateErrors != 0 {
		t.Fatalf("%d populate errors", ms.PopulateErrors)
	}
	if ms.Resident > 4 {
		t.Fatalf("resident %d exceeds MemoSize 4", ms.Resident)
	}
	if refs := s.engine.MemoPinnedRefs(); refs != 0 {
		t.Fatalf("%d refs still pinned after traffic stopped", refs)
	}
	if emptyIssued+memoIssued != expectRequests {
		t.Fatalf("accounting bug in the test itself: %d+%d != %d", emptyIssued, memoIssued, expectRequests)
	}

	// /stats must serialize the same counters.
	var stats StatsResponse
	if resp := getJSONT(t, ts.URL+"/stats?buckets=0", &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats: %d", resp.StatusCode)
	}
	if !stats.Memo.Enabled {
		t.Fatal("/stats reports memo disabled")
	}
	if stats.Memo.Hits != ms.Hits || stats.Memo.Misses != ms.Misses || stats.Memo.EmptyHits != ms.EmptyHits {
		t.Fatalf("/stats memo counters %+v disagree with snapshot %+v", stats.Memo, ms)
	}
	if stats.Memo.Resident > 0 && stats.Memo.ResidentBytes <= 0 {
		t.Fatalf("resident tables but zero bytes: %+v", stats.Memo)
	}
}

func getJSONT(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// Coalesced populations: many concurrent first requests for one set must
// build its table exactly once.
func TestMemoCoalescesConcurrentPopulations(t *testing.T) {
	g := testGraph(t, 400, 3)
	s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm the index so the memo population is the only miss in play.
	resp, err := http.Get(ts.URL + "/v1/gain?graph=test&L=5&R=30&nodes=1&set=")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	const clients = 16
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/gain?graph=test&L=5&R=30&nodes=1,2,3&set=10,20,30")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	ms := s.MemoStats()
	if ms.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (coalesced %d, hits %d)", ms.Misses, ms.Coalesced, ms.Hits)
	}
	if ms.Hits != clients-1 {
		t.Fatalf("hits = %d, want %d", ms.Hits, clients-1)
	}
}

// The /v1/topgains default B (10) must respect a tighter operator MaxK.
func TestTopGainsDefaultBClampedByMaxK(t *testing.T) {
	g := testGraph(t, 200, 6)
	s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}, MaxK: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var tr TopGainsResponse
	if resp := getJSONT(t, ts.URL+"/v1/topgains?graph=test&L=4&R=10", &tr); resp.StatusCode != http.StatusOK {
		t.Fatalf("topgains: status %d", resp.StatusCode)
	}
	if tr.B != 3 || len(tr.Nodes) != 3 {
		t.Fatalf("default b = %d with %d nodes, want MaxK clamp to 3", tr.B, len(tr.Nodes))
	}
	resp, err := http.Get(ts.URL + "/v1/topgains?graph=test&L=4&R=10&b=4")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("b above MaxK: status %d, want 400", resp.StatusCode)
	}
}

func TestMemoDisabled(t *testing.T) {
	g := testGraph(t, 200, 4)
	s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}, DisableMemo: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var gr GainResponse
	if resp := getJSONT(t, ts.URL+"/v1/gain?graph=test&L=4&R=10&nodes=1&set=2,3", &gr); resp.StatusCode != http.StatusOK {
		t.Fatalf("gain: status %d", resp.StatusCode)
	}
	if gr.Memo != memoOff {
		t.Fatalf("memo = %q, want %q", gr.Memo, memoOff)
	}
	var stats StatsResponse
	if resp := getJSONT(t, ts.URL+"/stats", &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats: status %d", resp.StatusCode)
	}
	if stats.Memo.Enabled {
		t.Fatal("/stats reports memo enabled on a DisableMemo server")
	}
}
