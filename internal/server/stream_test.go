package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/graph"
)

// streamLine is the union of the three NDJSON line shapes, distinguished by
// which fields are present.
type streamLine struct {
	Round      int             `json:"round"`
	Node       *int            `json:"node"`
	Gain       float64         `json:"gain"`
	Objective  float64         `json:"objective"`
	CIWidth    float64         `json:"ci_width"`
	Replicates int             `json:"replicates"`
	Done       bool            `json:"done"`
	Result     *SelectResponse `json:"result"`
	Error      *ErrorBody      `json:"error"`
}

// postSelectStream posts body with ?stream=1 and parses every NDJSON line.
func postSelectStream(t *testing.T, url, body string) (rounds []streamLine, done *SelectResponse, errLine *ErrorBody, resp *http.Response) {
	t.Helper()
	resp, err := http.Post(url+"/v1/select?stream=1", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("undecodable %d error body: %v", resp.StatusCode, err)
		}
		return nil, nil, &er.Error, resp
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Error != nil:
			errLine = line.Error
		case line.Done:
			done = line.Result
		default:
			rounds = append(rounds, line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rounds, done, errLine, resp
}

// TestStreamSelectParity is the HTTP half of the streaming acceptance
// criterion: the NDJSON rounds of POST /v1/select?stream=1 concatenate
// bit-identically into the blocking /v1/select reply, for both problems,
// lazy and plain, across worker counts.
func TestStreamSelectParity(t *testing.T) {
	g := testGraph(t, 500, 21)
	s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, problem := range []string{"hitting", "coverage"} {
		for _, algorithm := range []string{"lazy", "plain"} {
			for _, workers := range []int{1, 2} {
				body := fmt.Sprintf(`{"graph":"test","problem":%q,"k":6,"L":5,"R":25,"seed":9,"algorithm":%q,"workers":%d}`,
					problem, algorithm, workers)
				want, resp := postSelect(t, ts.URL, body)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("blocking select: status %d", resp.StatusCode)
				}
				rounds, done, errLine, resp := postSelectStream(t, ts.URL, body)
				if errLine != nil {
					t.Fatalf("stream error: %+v", errLine)
				}
				if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
					t.Fatalf("stream content type %q", ct)
				}
				if done == nil {
					t.Fatal("stream ended without a done line")
				}
				if len(rounds) != len(want.Nodes) {
					t.Fatalf("%s/%s: %d rounds, want %d", problem, algorithm, len(rounds), len(want.Nodes))
				}
				total := 0.0
				for i, rd := range rounds {
					if rd.Round != i+1 || rd.Node == nil {
						t.Fatalf("%s/%s: malformed round line %+v at %d", problem, algorithm, rd, i)
					}
					if *rd.Node != want.Nodes[i] {
						t.Fatalf("%s/%s: round %d node %d, want %d", problem, algorithm, i+1, *rd.Node, want.Nodes[i])
					}
					if math.Float64bits(rd.Gain) != math.Float64bits(want.Gains[i]) {
						t.Fatalf("%s/%s: round %d gain %v, want %v", problem, algorithm, i+1, rd.Gain, want.Gains[i])
					}
					total += rd.Gain
					if math.Float64bits(rd.Objective) != math.Float64bits(total) {
						t.Fatalf("%s/%s: round %d objective %v, want %v", problem, algorithm, i+1, rd.Objective, total)
					}
				}
				// The done line carries the blocking reply shape with the same
				// payload (timings and coalescing legitimately differ run to run).
				if done.Graph != want.Graph || done.Problem != want.Problem || done.K != want.K ||
					done.L != want.L || done.R != want.R || done.Seed != want.Seed ||
					done.Algorithm != want.Algorithm || done.Workers != want.Workers {
					t.Fatalf("done echo %+v, want %+v", done, want)
				}
				for i := range want.Nodes {
					if done.Nodes[i] != want.Nodes[i] || math.Float64bits(done.Gains[i]) != math.Float64bits(want.Gains[i]) {
						t.Fatalf("done payload diverges from blocking reply at %d", i)
					}
				}
				if math.Float64bits(done.Objective) != math.Float64bits(want.Objective) {
					t.Fatalf("done objective %v, want %v", done.Objective, want.Objective)
				}
				if done.Evaluations != want.Evaluations {
					t.Fatalf("done evaluations %d, want %d", done.Evaluations, want.Evaluations)
				}
			}
		}
	}
}

// Validation failures on the streaming path must arrive as normal HTTP
// error envelopes, not NDJSON lines — the status is still uncommitted.
func TestStreamSelectValidationErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name, body string
		status     int
		code       string
	}{
		{"unknown graph", `{"graph":"nope","k":3,"L":4}`, http.StatusNotFound, "not_found"},
		{"zero k", `{"graph":"test","k":0,"L":4}`, http.StatusBadRequest, "bad_request"},
	} {
		_, done, errLine, resp := postSelectStream(t, ts.URL, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		if done != nil {
			t.Errorf("%s: unexpected done line", tc.name)
		}
		if errLine == nil || errLine.Code != tc.code {
			t.Errorf("%s: error %+v, want code %q", tc.name, errLine, tc.code)
		}
	}
}
