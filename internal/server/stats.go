package server

import (
	"sync/atomic"
	"time"
)

// numLatencyBounds must match len(latencyBounds); the histogram array needs
// a constant size.
const numLatencyBounds = 15

// latencyBounds are the histogram bucket upper bounds. Exponential-ish
// coverage from sub-millisecond cache hits to multi-second cold index
// builds; the final implicit bucket is +Inf.
var latencyBounds = [numLatencyBounds]time.Duration{
	500 * time.Microsecond,
	1 * time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	20 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	200 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2 * time.Second,
	5 * time.Second,
	10 * time.Second,
	30 * time.Second,
}

// histogram is a fixed-bucket latency histogram with lock-free observation.
type histogram struct {
	counts [numLatencyBounds + 1]atomic.Int64
	sumNS  atomic.Int64
}

func (h *histogram) Observe(d time.Duration) {
	i := 0
	for ; i < len(latencyBounds); i++ {
		if d <= latencyBounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
}

// HistogramBucket is one cumulative ("le") histogram bucket in /stats output.
type HistogramBucket struct {
	LeMS  float64 `json:"le_ms"` // upper bound in milliseconds; -1 means +Inf
	Count int64   `json:"count"` // cumulative count of observations <= LeMS
}

// HistogramSnapshot is the JSON form of a histogram. Quantiles are bucket
// upper bounds; -1 means the quantile fell in the +Inf overflow bucket.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	MeanMS  float64           `json:"mean_ms"`
	P50MS   float64           `json:"p50_ms"`
	P95MS   float64           `json:"p95_ms"`
	P99MS   float64           `json:"p99_ms"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// quantileUpperBound returns the upper bound (ms) of the bucket containing
// the q-quantile. A quantile landing in the +Inf overflow bucket reports -1
// (matching the le_ms convention) rather than pretending the largest finite
// bound was measured.
func quantileUpperBound(cum []int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	for i, c := range cum {
		if c >= rank {
			if i < len(latencyBounds) {
				return float64(latencyBounds[i]) / float64(time.Millisecond)
			}
			break
		}
	}
	return -1
}

func (h *histogram) Snapshot(withBuckets bool) HistogramSnapshot {
	cum := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
		cum[i] = total
	}
	s := HistogramSnapshot{
		Count: total,
		P50MS: quantileUpperBound(cum, total, 0.50),
		P95MS: quantileUpperBound(cum, total, 0.95),
		P99MS: quantileUpperBound(cum, total, 0.99),
	}
	if total > 0 {
		s.MeanMS = float64(h.sumNS.Load()) / float64(total) / float64(time.Millisecond)
	}
	if withBuckets {
		s.Buckets = make([]HistogramBucket, 0, len(cum))
		for i, c := range cum {
			le := -1.0
			if i < len(latencyBounds) {
				le = float64(latencyBounds[i]) / float64(time.Millisecond)
			}
			s.Buckets = append(s.Buckets, HistogramBucket{LeMS: le, Count: c})
		}
	}
	return s
}

// endpointMetrics tracks one route.
type endpointMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64
	lat      histogram
}

// EndpointSnapshot is the JSON form of endpointMetrics.
type EndpointSnapshot struct {
	Requests int64             `json:"requests"`
	Errors   int64             `json:"errors"`
	Latency  HistogramSnapshot `json:"latency"`
}

func (m *endpointMetrics) Snapshot(withBuckets bool) EndpointSnapshot {
	return EndpointSnapshot{
		Requests: m.requests.Load(),
		Errors:   m.errors.Load(),
		Latency:  m.lat.Snapshot(withBuckets),
	}
}
