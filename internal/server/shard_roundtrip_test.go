package server

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/graph"
)

// The multi-process topology end to end over real HTTP: worker daemons
// serve /v1/partial, a coordinator daemon built with Config.Peers
// scatter-gathers them, and every public answer is bit-identical to an
// unsharded daemon serving the same graph.

// startWorkers launches n worker daemons over g and returns their base
// URLs. Each worker is a complete ordinary server — the partial endpoints
// ride along on every daemon.
func startWorkers(t *testing.T, g *graph.Graph, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		w := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
		ws := httptest.NewServer(w.Handler())
		t.Cleanup(ws.Close)
		urls[i] = ws.URL
	}
	return urls
}

func TestCoordinatorWorkerRoundTrip(t *testing.T) {
	g := testGraph(t, 500, 42)

	plain := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	plainTS := httptest.NewServer(plain.Handler())
	defer plainTS.Close()

	coord := newTestServer(t, Config{
		Graphs: map[string]*graph.Graph{"test": g},
		Peers:  startWorkers(t, g, 2),
	})
	coordTS := httptest.NewServer(coord.Handler())
	defer coordTS.Close()

	for _, body := range []string{
		`{"graph":"test","problem":"hitting","k":5,"L":4,"R":25,"seed":7}`,
		`{"graph":"test","problem":"coverage","k":5,"L":4,"R":25,"seed":7,"algorithm":"plain"}`,
	} {
		want, wresp := postSelect(t, plainTS.URL, body)
		got, gresp := postSelect(t, coordTS.URL, body)
		if wresp.StatusCode != http.StatusOK || gresp.StatusCode != http.StatusOK {
			t.Fatalf("select status %d/%d", wresp.StatusCode, gresp.StatusCode)
		}
		if len(got.Nodes) != len(want.Nodes) {
			t.Fatalf("%s: %d nodes vs %d", body, len(got.Nodes), len(want.Nodes))
		}
		for i := range want.Nodes {
			if got.Nodes[i] != want.Nodes[i] {
				t.Fatalf("%s: nodes %v, want %v", body, got.Nodes, want.Nodes)
			}
			if math.Float64bits(got.Gains[i]) != math.Float64bits(want.Gains[i]) {
				t.Fatalf("%s: gain %d diverges: %v vs %v", body, i, got.Gains[i], want.Gains[i])
			}
		}
		if math.Float64bits(got.Objective) != math.Float64bits(want.Objective) {
			t.Fatalf("%s: objective %v, want %v", body, got.Objective, want.Objective)
		}
	}

	// Read endpoints through the coordinator agree with the plain daemon.
	for _, path := range []string{
		"/v1/gain?graph=test&problem=2&L=4&R=25&seed=7&set=1,2&nodes=0,5,9",
		"/v1/objective?graph=test&problem=1&L=4&R=25&seed=7&set=1,2",
		"/v1/topgains?graph=test&problem=2&L=4&R=25&seed=7&set=1&b=3",
	} {
		var want, got map[string]any
		for _, probe := range []struct {
			url string
			dst *map[string]any
		}{{plainTS.URL, &want}, {coordTS.URL, &got}} {
			resp, err := http.Get(probe.url + path)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: status %d", path, resp.StatusCode)
			}
			if err := json.NewDecoder(resp.Body).Decode(probe.dst); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		for _, key := range []string{"gains", "objective", "nodes"} {
			w, ok := want[key]
			if !ok {
				continue
			}
			if wj, gj := mustJSON(t, w), mustJSON(t, got[key]); wj != gj {
				t.Fatalf("%s: %s %s, want %s", path, key, gj, wj)
			}
		}
	}

	// The coordinator daemon's /stats carries the shards block.
	st := getStats(t, coordTS.URL)
	if st.Shards == nil {
		t.Fatal("coordinator /stats has no shards block")
	}
	if st.Shards.Shards != 2 || st.Shards.Merges == 0 {
		t.Fatalf("shards block %+v", st.Shards)
	}
	if len(st.Shards.PerShard) != 2 {
		t.Fatalf("per_shard has %d entries", len(st.Shards.PerShard))
	}
	for i, ps := range st.Shards.PerShard {
		if ps.Requests == 0 {
			t.Fatalf("shard %d served no requests: %+v", i, ps)
		}
		if ps.Addr == "" {
			t.Fatalf("shard %d has no address", i)
		}
	}
	if st.Shards.MergeLatency.Count == 0 {
		t.Fatal("merge latency histogram is empty")
	}

	// The plain daemon's /stats must not grow a shards block.
	if st := getStats(t, plainTS.URL); st.Shards != nil {
		t.Fatalf("unsharded daemon reports shards: %+v", st.Shards)
	}
}

// In-process sharding (-shards) behaves identically, minus the HTTP hop.
func TestInProcessShardsMode(t *testing.T) {
	g := testGraph(t, 500, 42)

	plain := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	plainTS := httptest.NewServer(plain.Handler())
	defer plainTS.Close()

	sharded := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}, Shards: 3})
	shardedTS := httptest.NewServer(sharded.Handler())
	defer shardedTS.Close()

	body := `{"graph":"test","problem":"coverage","k":6,"L":4,"R":25,"seed":7}`
	want, _ := postSelect(t, plainTS.URL, body)
	got, resp := postSelect(t, shardedTS.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded select status %d", resp.StatusCode)
	}
	for i := range want.Nodes {
		if got.Nodes[i] != want.Nodes[i] || math.Float64bits(got.Gains[i]) != math.Float64bits(want.Gains[i]) {
			t.Fatalf("sharded %v/%v, want %v/%v", got.Nodes, got.Gains, want.Nodes, want.Gains)
		}
	}

	st := getStats(t, shardedTS.URL)
	if st.Shards == nil || st.Shards.Shards != 3 {
		t.Fatalf("shards block %+v", st.Shards)
	}

	// Shards and Peers cannot be combined.
	if _, err := New(Config{
		Graphs: map[string]*graph.Graph{"test": g},
		Shards: 2,
		Peers:  []string{"http://localhost:1"},
	}); err == nil {
		t.Fatal("Shards+Peers accepted")
	}
}

func getStats(t *testing.T, url string) *StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats status %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return &st
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
