package server

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/index"
)

// This file implements the memoized gain read path: a refcounted LRU cache
// of D-tables keyed by (index identity, problem, canonical seed set). The
// paper's whole point is that the walk index makes marginal-gain evaluation
// cheap — the index is built once and every gain is a read — yet the naive
// serving path re-materialized an n·R table and replayed the whole set on
// every /v1/gain and /v1/objective request. With the memo, the first request
// for a set pays one table materialization (extending the longest cached
// prefix of the set when one is resident, so only the delta is replayed) and
// every later request is a pure read of the frozen table.
//
// Frozen means exactly that: once an entry is published (its ready channel
// closed), its table is never mutated again. Gain/GainBatch/TopGains are
// pure reads, so any number of requests can share the table concurrently;
// the objective — whose D-table scan memoizes saturation state and is
// therefore NOT a pure read — is computed once during population and stored
// as a plain float64. Entries are only evicted when unreferenced, so a
// table can never be freed under an in-flight request.

// canonicalSet returns the sorted, duplicate-free form of nodes together
// with its canonical key string. Two node lists denote the same seed set —
// and therefore the same D-table — iff their canonical keys are equal:
// D-table state is order-independent (Update min-folds hop values for
// Problem 1 and writes indicators for Problem 2, both commutative) and
// duplicate-insensitive (Update is idempotent on table state).
func canonicalSet(nodes []int) ([]int, string) {
	canon := append([]int(nil), nodes...)
	sort.Ints(canon)
	w := 0
	for i, u := range canon {
		if i > 0 && u == canon[w-1] {
			continue
		}
		canon[w] = u
		w++
	}
	canon = canon[:w]
	return canon, setKeyOf(canon)
}

// setKeyOf renders a canonical (sorted, deduplicated) set as its exact key:
// decimal ids joined by commas. On canonical input the encoding is
// injective — distinct sets always get distinct keys — so a key match can
// never serve the wrong table (no hashing, no collisions to reason about).
func setKeyOf(set []int) string {
	if len(set) == 0 {
		return ""
	}
	var b strings.Builder
	for i, u := range set {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(u))
	}
	return b.String()
}

// isPrefix reports whether p is a proper leading prefix of set (both
// canonical, so element-wise comparison suffices).
func isPrefix(p, set []int) bool {
	if len(p) >= len(set) {
		return false
	}
	for i, u := range p {
		if set[i] != u {
			return false
		}
	}
	return true
}

// memoKey identifies one cached D-table.
type memoKey struct {
	idx     index.CacheKey
	problem index.Problem
	set     string // canonical set key (setKeyOf)
}

// memoEntry is one cached table. d, objective and bytes are written once
// before ready is closed and immutable afterwards.
type memoEntry struct {
	key       memoKey
	set       []int         // canonical set, for prefix extension
	ready     chan struct{} // closed once d/err are set
	d         *index.DTable // frozen after publication
	objective float64
	bytes     int64
	err       error
	refs      int
	lastUse   int64
}

// memoHandle pins one cached table. Callers must Release exactly once;
// Release after the first is a no-op.
type memoHandle struct {
	c    *memoCache
	e    *memoEntry
	once sync.Once
}

// Table returns the pinned frozen table. Callers may read gains from it
// (Gain/GainBatch/TopGains) but must not mutate it.
func (h *memoHandle) Table() *index.DTable { return h.e.d }

// Objective returns the set's estimated objective, computed once at
// population time.
func (h *memoHandle) Objective() float64 { return h.e.objective }

// Release unpins the table, making its entry eligible for eviction.
func (h *memoHandle) Release() {
	h.once.Do(func() {
		h.c.mu.Lock()
		h.e.refs--
		h.c.evictOverCapacityLocked()
		h.c.mu.Unlock()
	})
}

// MemoStats counts memo-cache traffic. Hits + Misses equals the number of
// non-empty-set memoized lookups; EmptyHits counts set-free requests served
// straight off the index's memoized empty-set vectors (no table at all).
type MemoStats struct {
	// Hits counts acquires served by a resident table; Coalesced the subset
	// that attached to a population already in flight.
	Hits      int64
	Coalesced int64
	// Misses counts acquires that populated a new table; PrefixExtended the
	// subset that extended the longest cached prefix of the requested set
	// instead of replaying it from scratch.
	Misses         int64
	PrefixExtended int64
	// EmptyHits counts empty-set requests answered from the index's
	// memoized empty-set gain vector / objective, with no D-table involved.
	EmptyHits int64
	// Evictions counts entries dropped by the LRU bound; PopulateErrors
	// counts failed populations (which hold no entry).
	Evictions      int64
	PopulateErrors int64
	// Resident is the number of cached tables at snapshot time;
	// ResidentBytes the sum of their heap footprints.
	Resident      int
	ResidentBytes int64
}

// memoCache is the refcounted LRU of frozen D-tables. Like index.Cache it
// coalesces concurrent populations of the same key and never evicts a
// referenced entry; unlike it there is no spill — a lost table costs one
// replay against a resident index, not a walk rematerialization.
type memoCache struct {
	mu      sync.Mutex
	max     int // <= 0 means unbounded
	entries map[memoKey]*memoEntry
	clock   int64
	stats   MemoStats
}

func newMemoCache(max int) *memoCache {
	return &memoCache{max: max, entries: make(map[memoKey]*memoEntry)}
}

// Memo acquire outcomes, echoed in response bodies so clients (and the
// parity/stress tests) can see which path served them.
const (
	memoHit      = "hit"      // resident frozen table
	memoMiss     = "miss"     // populated by full replay
	memoExtended = "extended" // populated by extending a cached prefix
	memoEmpty    = "empty"    // empty set, served off the index itself
	memoOff      = "off"      // memoization disabled, fresh-table path
)

// acquire returns a pinned handle on the table for (key, set), populating
// it at most once across concurrent callers. ix is the resident index to
// materialize from on a miss; set must be canonical and non-empty. The
// returned status is memoHit, memoMiss or memoExtended.
func (c *memoCache) acquire(key memoKey, set []int, ix *index.Index) (*memoHandle, string, error) {
	c.mu.Lock()
	c.clock++
	if e, ok := c.entries[key]; ok {
		e.refs++
		e.lastUse = c.clock
		c.stats.Hits++
		select {
		case <-e.ready:
		default:
			c.stats.Coalesced++
		}
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The population leader failed and removed the entry; drop our
			// ref on the orphaned entry.
			c.mu.Lock()
			e.refs--
			c.mu.Unlock()
			return nil, "", e.err
		}
		return &memoHandle{c: c, e: e}, memoHit, nil
	}
	e := &memoEntry{key: key, set: set, ready: make(chan struct{}), refs: 1, lastUse: c.clock}
	c.entries[key] = e
	c.stats.Misses++
	// Pin the longest ready prefix of set (if any) so eviction cannot free
	// it while we extend from its snapshot. Scanning the resident entries is
	// O(resident·|set|), bounded by the cache size — probing the map for
	// every prefix key would cost O(|set|²) string building per miss, which
	// an attacker-sized set turns into a DoS.
	var prefix *memoEntry
	for _, pe := range c.entries {
		if pe == e || pe.key.idx != key.idx || pe.key.problem != key.problem {
			continue
		}
		if len(pe.set) >= len(set) || (prefix != nil && len(pe.set) <= len(prefix.set)) {
			continue
		}
		select {
		case <-pe.ready:
		default:
			continue // still populating; not worth waiting for
		}
		if pe.err != nil || !isPrefix(pe.set, set) {
			continue
		}
		prefix = pe
	}
	if prefix != nil {
		prefix.refs++
	}
	c.mu.Unlock()

	d, objective, err := populateTable(ix, key.problem, set, prefix)

	c.mu.Lock()
	if prefix != nil {
		prefix.refs--
	}
	e.d, e.objective, e.err = d, objective, err
	if err != nil {
		c.stats.PopulateErrors++
		e.refs--
		delete(c.entries, key)
	} else {
		e.bytes = d.MemoryBytes()
		if prefix != nil {
			c.stats.PrefixExtended++
		}
		c.evictOverCapacityLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	if err != nil {
		return nil, "", err
	}
	status := memoMiss
	if prefix != nil {
		status = memoExtended
	}
	return &memoHandle{c: c, e: e}, status, nil
}

// populateTable materializes the frozen table for set: from the longest
// cached prefix when one is pinned (one array copy plus a replay of only
// the delta), otherwise by full replay. The objective is computed here,
// before publication, because EstimateObjective memoizes saturation state
// in the table and therefore must not run on a shared frozen table.
func populateTable(ix *index.Index, p index.Problem, set []int, prefix *memoEntry) (*index.DTable, float64, error) {
	base := ix
	if prefix != nil {
		// Extend against the prefix table's own index instance: it is the
		// same (graph, L, R, seed) identity — walks are seeded per (node,
		// replicate), so any instance holds identical entries — but
		// ExtendFrom correctly refuses to mix table state across *Index
		// pointers, and the index cache may have rebuilt the key since the
		// prefix was cached.
		base = prefix.d.Index()
	}
	d, err := base.NewDTable(p)
	if err != nil {
		return nil, 0, err
	}
	if prefix != nil {
		if err := d.ExtendFrom(prefix.d.Snapshot(), set[len(prefix.set):]...); err != nil {
			return nil, 0, err
		}
	} else {
		for _, u := range set {
			d.Update(u)
		}
	}
	members := make([]bool, base.Graph().N())
	for _, u := range set {
		members[u] = true
	}
	return d, d.EstimateObjective(members), nil
}

// evictOverCapacityLocked drops least-recently-used unreferenced entries
// until the cache is within its bound. Entries still populating or still
// referenced are never evicted.
func (c *memoCache) evictOverCapacityLocked() {
	if c.max <= 0 {
		return
	}
	for len(c.entries) > c.max {
		var victim *memoEntry
		for _, e := range c.entries {
			select {
			case <-e.ready:
			default:
				continue // still populating
			}
			if e.refs > 0 || e.err != nil {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(c.entries, victim.key)
		c.stats.Evictions++
	}
}

// noteEmptyHit records an empty-set request served off the index.
func (c *memoCache) noteEmptyHit() {
	c.mu.Lock()
	c.stats.EmptyHits++
	c.mu.Unlock()
}

// Stats returns a snapshot of the traffic counters plus current residency.
func (c *memoCache) Stats() MemoStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Resident = len(c.entries)
	for _, e := range c.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				s.ResidentBytes += e.bytes
			}
		default:
		}
	}
	return s
}

// pinnedRefs returns the total refcount across resident entries — test
// observability for "no table is still pinned once traffic stops".
func (c *memoCache) pinnedRefs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, e := range c.entries {
		total += e.refs
	}
	return total
}
