package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/engine"
	"repro/internal/graph"
)

// POST /v1/graph/{name}/edges — the HTTP codec over engine.ApplyDelta (and,
// in sharded mode, the coordinator's broadcast). The body is one atomic
// delta; the reply reports the new epoch and what happened to the cached
// artifacts. Structural conflicts (adding an existing edge, removing an
// absent one, a stale base_epoch) answer 409 conflict; after a partial
// broadcast failure in sharded mode the reply is the worker's error and the
// cluster is at the new epoch, with the laggard worker answering pinned
// reads stale_epoch until it recovers.

// EdgeJSON is one undirected edge on the wire. W <= 0 means unweighted
// (weight 1).
type EdgeJSON struct {
	U int     `json:"u"`
	V int     `json:"v"`
	W float64 `json:"w,omitempty"`
}

// ApplyDeltaRequest is the POST /v1/graph/{name}/edges body.
type ApplyDeltaRequest struct {
	// AddNodes appends this many isolated nodes before edges are applied,
	// so added edges may reference them.
	AddNodes int `json:"add_nodes,omitempty"`
	// Add and Remove are the edge changes; at least one of the three delta
	// fields must be non-empty.
	Add    []EdgeJSON `json:"add,omitempty"`
	Remove []EdgeJSON `json:"remove,omitempty"`
	// BaseEpoch, when present, makes the mutation conditional on the graph
	// still being at that epoch (409 conflict otherwise).
	BaseEpoch *uint64 `json:"base_epoch,omitempty"`
}

// ApplyDeltaResponse is the mutation reply.
type ApplyDeltaResponse struct {
	Graph string `json:"graph"`
	// Epoch is the graph's new mutation epoch; pin it on reads that must
	// observe this mutation.
	Epoch   uint64 `json:"epoch"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	Touched int    `json:"touched"`
	// Repair accounting, summed over every applier (this daemon's engine
	// plus, in sharded mode, all workers).
	IndexesRepaired int `json:"indexes_repaired"`
	IndexesDropped  int `json:"indexes_dropped"`
	MemosDropped    int `json:"memos_dropped"`
}

func edgesFromJSON(in []EdgeJSON) []graph.Edge {
	if len(in) == 0 {
		return nil
	}
	out := make([]graph.Edge, len(in))
	for i, e := range in {
		out[i] = graph.Edge{U: e.U, V: e.V, W: e.W}
	}
	return out
}

func (s *Server) handleApplyDelta(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req ApplyDeltaRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeBadRequest(w, fmt.Errorf("bad delta body: %w", err))
		return
	}
	ereq := engine.ApplyDeltaRequest{
		Graph: name,
		Delta: graph.Delta{
			AddNodes:    req.AddNodes,
			AddEdges:    edgesFromJSON(req.Add),
			RemoveEdges: edgesFromJSON(req.Remove),
		},
		BaseEpoch: req.BaseEpoch,
	}

	s.mutateMu.Lock()
	defer s.mutateMu.Unlock()

	// The daemon's own engine applies first: it always serves the
	// worker-side /v1/partial endpoints (even in coordinator mode, for an
	// external coordinator layered above this one), so its graph must track
	// every mutation. Its validation is also the cheapest all-or-nothing
	// gate — a rejected delta leaves engine, coordinator and workers all
	// untouched.
	res, err := s.engine.ApplyDelta(r.Context(), ereq)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	resp := ApplyDeltaResponse{
		Graph:           name,
		Epoch:           res.Epoch,
		Nodes:           res.Nodes,
		Edges:           res.Edges,
		Touched:         res.Touched,
		IndexesRepaired: res.IndexesRepaired,
		IndexesDropped:  res.IndexesDropped,
		MemosDropped:    res.MemosDropped,
	}
	if s.coord != nil {
		cres, cerr := s.coord.ApplyDelta(r.Context(), ereq)
		if cerr != nil {
			// The engine (and any workers that acknowledged) committed; only
			// the reply is an error. The coordinator has already moved to the
			// new epoch, so laggard workers answer pinned reads with a typed
			// stale_epoch instead of silently merging mixed-epoch sums.
			writeEngineError(w, cerr)
			return
		}
		resp.IndexesRepaired += cres.IndexesRepaired
		resp.IndexesDropped += cres.IndexesDropped
		resp.MemosDropped += cres.MemosDropped
	}
	writeJSON(w, http.StatusOK, resp)
}
