package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/testleak"
)

func testGraph(t testing.TB, n int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.BarabasiAlbert(n, 3, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	testleak.Check(t)
	if cfg.Graphs == nil {
		cfg.Graphs = map[string]*graph.Graph{"test": testGraph(t, 600, 1)}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func postSelect(t testing.TB, url string, body string) (*SelectResponse, *http.Response) {
	t.Helper()
	resp, err := http.Post(url+"/v1/select", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SelectResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return &sr, resp
}

func TestSelectMatchesDirectComputation(t *testing.T) {
	g := testGraph(t, 600, 1)
	s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		problem index.Problem
		body    string
	}{
		{index.Problem1, `{"graph":"test","problem":"hitting","k":6,"L":4,"R":30,"seed":7}`},
		{index.Problem2, `{"graph":"test","problem":2,"k":6,"L":4,"R":30,"seed":7,"algorithm":"plain"}`},
	} {
		sr, resp := postSelect(t, ts.URL, tc.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("select status %d", resp.StatusCode)
		}
		ix, err := index.Build(g, 4, 30, 7)
		if err != nil {
			t.Fatal(err)
		}
		lazy := tc.problem == index.Problem1
		want, err := core.ApproxWithIndexWorkers(ix, tc.problem, 6, lazy, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(sr.Nodes) != len(want.Nodes) {
			t.Fatalf("%v: served %d nodes, want %d", tc.problem, len(sr.Nodes), len(want.Nodes))
		}
		for i := range want.Nodes {
			if sr.Nodes[i] != want.Nodes[i] {
				t.Fatalf("%v: served nodes %v, want %v", tc.problem, sr.Nodes, want.Nodes)
			}
		}
		if sr.Objective <= 0 {
			t.Fatalf("%v: non-positive objective %v", tc.problem, sr.Objective)
		}
	}
}

func TestConcurrentIdenticalSelectsBuildIndexOnce(t *testing.T) {
	g := testGraph(t, 800, 2)
	s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 12
	body := `{"graph":"test","k":10,"L":5,"R":40,"seed":3,"algorithm":"plain","workers":1}`
	responses := make([]*SelectResponse, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sr, resp := postSelect(t, ts.URL, body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			responses[i] = sr
		}(i)
	}
	wg.Wait()
	cs := s.Cache().Stats()
	if cs.Misses != 1 {
		t.Fatalf("index cache misses = %d, want exactly 1 (build must run once)", cs.Misses)
	}
	if cs.BuildErrors != 0 || cs.Resident != 1 {
		t.Fatalf("unexpected cache stats %+v", cs)
	}
	for i, sr := range responses {
		if sr == nil {
			t.Fatal("missing response")
		}
		for j, u := range responses[0].Nodes {
			if sr.Nodes[j] != u {
				t.Fatalf("client %d selected %v, client 0 selected %v", i, sr.Nodes, responses[0].Nodes)
			}
		}
	}
}

func TestGainAndObjectiveEndpoints(t *testing.T) {
	g := testGraph(t, 500, 4)
	s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ix, err := index.Build(g, 4, 25, 9)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ix.NewDTable(index.Problem2)
	if err != nil {
		t.Fatal(err)
	}
	set := []int{1, 2}
	members := make([]bool, g.N())
	for _, u := range set {
		members[u] = true
		d.Update(u)
	}

	resp, err := http.Get(ts.URL + "/v1/gain?graph=test&problem=2&L=4&R=25&seed=9&set=1,2&nodes=0,5,9")
	if err != nil {
		t.Fatal(err)
	}
	var gr GainResponse
	if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gain status %d", resp.StatusCode)
	}
	for i, u := range []int{0, 5, 9} {
		if want := d.Gain(u); gr.Gains[i] != want {
			t.Fatalf("gain(%d) = %v, want %v", u, gr.Gains[i], want)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/objective?graph=test&problem=2&L=4&R=25&seed=9&set=1,2")
	if err != nil {
		t.Fatal(err)
	}
	var or ObjectiveResponse
	if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if want := d.EstimateObjective(members); or.Objective != want {
		t.Fatalf("objective = %v, want %v", or.Objective, want)
	}
}

func TestValidationAndErrorStatuses(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"unknown graph", `{"graph":"nope","k":3,"L":4}`, http.StatusNotFound},
		{"zero k", `{"graph":"test","k":0,"L":4}`, http.StatusBadRequest},
		{"zero L", `{"graph":"test","k":3,"L":0}`, http.StatusBadRequest},
		{"bad algorithm", `{"graph":"test","k":3,"L":4,"algorithm":"dp"}`, http.StatusBadRequest},
		{"bad problem", `{"graph":"test","k":3,"L":4,"problem":"f3"}`, http.StatusBadRequest},
		{"unknown field", `{"graph":"test","k":3,"L":4,"bogus":1}`, http.StatusBadRequest},
	} {
		_, resp := postSelect(t, ts.URL, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/gain?graph=test&L=4&nodes=999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range node: status %d, want 400", resp.StatusCode)
	}
}

func TestHealthzAndStats(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, hr)
	}

	if _, resp := postSelect(t, ts.URL, `{"graph":"test","k":3,"L":3,"R":20}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("select status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sr StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sr.Cache.Misses != 1 || sr.Cache.Resident != 1 {
		t.Fatalf("stats cache = %+v, want 1 miss, 1 resident", sr.Cache)
	}
	sel, ok := sr.Endpoints["select"]
	if !ok || sel.Requests != 1 || sel.Errors != 0 {
		t.Fatalf("stats select endpoint = %+v, want 1 request, 0 errors", sel)
	}
	if sel.Latency.Count != 1 || len(sel.Latency.Buckets) == 0 {
		t.Fatalf("stats select latency = %+v, want 1 observation with buckets", sel.Latency)
	}
	if len(sr.Cache.Keys) != 1 {
		t.Fatalf("stats cache keys = %v, want 1", sr.Cache.Keys)
	}
}

// startServing runs s.Serve on a fresh localhost listener and returns the
// base URL, the cancel that begins graceful shutdown, and a channel carrying
// Serve's return value.
func startServing(t *testing.T, s *Server) (string, context.CancelFunc, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	return "http://" + ln.Addr().String(), cancel, done
}

func waitForOtherInFlight(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var sr StatsResponse
		err = json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		// The /stats request itself is in flight, so >= 2 means another
		// request is being served.
		if sr.InFlight >= 2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no request became in-flight before the deadline")
}

func TestGracefulShutdownDrainsInFlightRequests(t *testing.T) {
	g := testGraph(t, 2000, 5)
	s := newTestServer(t, Config{
		Graphs:       map[string]*graph.Graph{"test": g},
		DrainTimeout: 30 * time.Second,
	})
	url, cancel, done := startServing(t, s)

	// A deliberately heavy request: plain greedy over every candidate each
	// round, one worker.
	type result struct {
		status int
		nodes  int
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/select", "application/json",
			bytes.NewBufferString(`{"graph":"test","k":25,"L":5,"R":60,"seed":11,"algorithm":"plain","workers":1}`))
		if err != nil {
			resc <- result{status: -1}
			return
		}
		defer resp.Body.Close()
		var sr SelectResponse
		_ = json.NewDecoder(resp.Body).Decode(&sr)
		resc <- result{status: resp.StatusCode, nodes: len(sr.Nodes)}
	}()
	waitForOtherInFlight(t, url)
	cancel() // SIGTERM equivalent: begin graceful shutdown

	res := <-resc
	if res.status != http.StatusOK {
		t.Fatalf("in-flight request finished with status %d, want 200 (drain must let it complete)", res.status)
	}
	if res.nodes != 25 {
		t.Fatalf("drained request returned %d nodes, want 25", res.nodes)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after graceful shutdown", err)
	}
	// The listener is closed; new requests must fail at the connection.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("request after shutdown unexpectedly succeeded")
	}
}

func TestDrainTimeoutHardCancelsStragglers(t *testing.T) {
	g := testGraph(t, 3000, 6)
	s := newTestServer(t, Config{
		Graphs:       map[string]*graph.Graph{"test": g},
		DrainTimeout: 50 * time.Millisecond,
		MaxTimeout:   10 * time.Minute,
	})
	url, cancel, done := startServing(t, s)

	// Warm the index so the uncancelable build phase is out of the way and
	// the slowness sits in the (cancelable) selection loop.
	if _, resp := postSelect(t, url, `{"graph":"test","k":1,"L":5,"R":60,"seed":12}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status %d", resp.StatusCode)
	}

	statusc := make(chan int, 1)
	go func() {
		resp, err := http.Post(url+"/v1/select", "application/json",
			bytes.NewBufferString(`{"graph":"test","k":400,"L":5,"R":60,"seed":12,"algorithm":"plain","workers":1,"timeout_ms":600000}`))
		if err != nil {
			statusc <- -1
			return
		}
		defer resp.Body.Close()
		statusc <- resp.StatusCode
	}()
	waitForOtherInFlight(t, url)
	cancel()

	status := <-statusc
	if status != http.StatusServiceUnavailable && status != http.StatusGatewayTimeout {
		t.Fatalf("straggler finished with status %d, want 503/504 (hard cancel after drain timeout)", status)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
}

func TestShutdownSpillsIndexesForWarmRestart(t *testing.T) {
	g := testGraph(t, 500, 7)
	dir := t.TempDir()
	mk := func() *Server {
		return newTestServer(t, Config{
			Graphs:   map[string]*graph.Graph{"test": g},
			SpillDir: dir,
		})
	}
	s1 := mk()
	ts1 := httptest.NewServer(s1.Handler())
	if _, resp := postSelect(t, ts1.URL, `{"graph":"test","k":4,"L":4,"R":30,"seed":5}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("first select status %d", resp.StatusCode)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mk()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	sr, resp := postSelect(t, ts2.URL, `{"graph":"test","k":4,"L":4,"R":30,"seed":5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restart select status %d", resp.StatusCode)
	}
	if !sr.IndexCached {
		t.Fatal("restarted server rebuilt the index instead of loading the spill file")
	}
	if cs := s2.Cache().Stats(); cs.SpillLoads != 1 {
		t.Fatalf("restart spill loads = %d, want 1", cs.SpillLoads)
	}
}

func TestDrainingRejectsNewWork(t *testing.T) {
	s := newTestServer(t, Config{})
	s.draining.Store(true)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, resp := postSelect(t, ts.URL, `{"graph":"test","k":3,"L":3}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("select while draining: status %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusServiceUnavailable || hr.Status != "draining" {
		t.Fatalf("healthz while draining = %d %q, want 503 draining", hresp.StatusCode, hr.Status)
	}
}

func TestTimeoutDuringColdBuildDetachesAndWarmsCache(t *testing.T) {
	g := testGraph(t, 3000, 9)
	s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 1ms budget on a cold index: the build cannot finish in time, the
	// client must get its 504 immediately, and the detached build must
	// still land in the cache.
	_, resp := postSelect(t, ts.URL, `{"graph":"test","k":3,"L":6,"R":100,"seed":21,"timeout_ms":1}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("cold select with 1ms budget: status %d, want 504", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for s.Cache().Stats().Resident == 0 {
		if time.Now().After(deadline) {
			t.Fatal("detached build never populated the cache")
		}
		time.Sleep(10 * time.Millisecond)
	}
	sr, resp := postSelect(t, ts.URL, `{"graph":"test","k":3,"L":6,"R":100,"seed":21}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up select: status %d", resp.StatusCode)
	}
	if !sr.IndexCached {
		t.Fatal("follow-up select rebuilt the index the detached build should have cached")
	}
}

func TestPerRequestTimeout(t *testing.T) {
	g := testGraph(t, 3000, 8)
	s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm the index (build is not cancelable), then ask for a heavy
	// selection with a 1ms budget.
	if _, resp := postSelect(t, ts.URL, `{"graph":"test","k":1,"L":5,"R":60,"seed":13}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status %d", resp.StatusCode)
	}
	_, resp := postSelect(t, ts.URL, `{"graph":"test","k":400,"L":5,"R":60,"seed":13,"algorithm":"plain","workers":1,"timeout_ms":1}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out select: status %d, want 504", resp.StatusCode)
	}
	if fmt.Sprint(resp.Header.Get("Content-Type")) != "application/json" {
		t.Fatalf("error content type %q", resp.Header.Get("Content-Type"))
	}
}
