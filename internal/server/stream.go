package server

import (
	"encoding/json"
	"net/http"

	"repro/internal/engine"
)

// This file is the streaming half of POST /v1/select: with ?stream=1 the
// reply is NDJSON — one SelectStreamRound line per greedy pick, emitted as
// the engine decides it, then one SelectStreamDone line whose result field
// is the exact blocking-mode SelectResponse. The emitted rounds reassemble
// bit-for-bit into the blocking selection (the engine guarantees it; the
// stream parity tests lock it down), so a client can render progress and
// still end up with the same answer it would have gotten without streaming.

// streaming reports whether the request asked for NDJSON round events.
func streaming(r *http.Request) bool {
	switch r.URL.Query().Get("stream") {
	case "1", "true":
		return true
	}
	return false
}

// SelectStreamRound is one round event line of POST /v1/select?stream=1:
// the node picked in this greedy round, its marginal gain, and the
// objective so far (the running telescoped sum of gains).
type SelectStreamRound struct {
	Round     int     `json:"round"`
	Node      int     `json:"node"`
	Gain      float64 `json:"gain"`
	Objective float64 `json:"objective"`
	// CIWidth and Replicates carry the round's accuracy evidence on
	// adaptive (epsilon-targeted) runs; omitted on fixed-R runs.
	CIWidth    float64 `json:"ci_width,omitempty"`
	Replicates int     `json:"replicates,omitempty"`
}

// SelectStreamDone is the final line of a successful stream; Result is the
// blocking-mode reply shape.
type SelectStreamDone struct {
	Done   bool            `json:"done"`
	Result *SelectResponse `json:"result"`
}

// handleSelectStream serves one streamed selection. Errors before the first
// byte get the normal error envelope and status; once rounds are flowing
// the status is committed, so a late failure is reported as a terminal
// NDJSON error-envelope line instead.
func (s *Server) handleSelectStream(w http.ResponseWriter, r *http.Request, req SelectRequest, ereq engine.SelectRequest) {
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	wrote := false
	emit := func(v any) error {
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			wrote = true
		}
		if err := enc.Encode(v); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	res, err := s.q.SelectStream(r.Context(), ereq, func(rd engine.Round) error {
		return emit(SelectStreamRound{
			Round: rd.Round, Node: rd.Node, Gain: rd.Gain, Objective: rd.Objective,
			CIWidth: rd.CIWidth, Replicates: rd.Replicates,
		})
	})
	if err != nil {
		if !wrote {
			writeEngineError(w, err)
			return
		}
		code := engine.CodeOf(err)
		_ = emit(ErrorResponse{Error: ErrorBody{Code: string(code), Message: err.Error()}})
		return
	}
	resp := encodeSelect(req, ereq, res)
	_ = emit(SelectStreamDone{Done: true, Result: &resp})
}
