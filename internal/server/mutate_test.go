package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

// postDelta issues one POST /v1/graph/{name}/edges and decodes either reply
// shape.
func postDelta(t *testing.T, client *http.Client, base, name, body string) (int, *ApplyDeltaResponse, string) {
	t.Helper()
	resp, err := client.Post(base+"/v1/graph/"+name+"/edges", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		var env ErrorResponse
		if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code == "" {
			t.Fatalf("mutate HTTP %d with malformed error envelope: %q", resp.StatusCode, raw)
		}
		return resp.StatusCode, nil, env.Error.Code
	}
	var out ApplyDeltaResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("mutate reply: %v (%q)", err, raw)
	}
	return resp.StatusCode, &out, ""
}

// TestGoldenMutateShapes pins the mutation endpoint's wire contract: the
// success reply (with incremental-repair accounting against a warm server)
// and the two mutation-specific error codes, conflict and stale_epoch.
func TestGoldenMutateShapes(t *testing.T) {
	_, ts := goldenHarness(t)
	// Warm exactly one index and one memoized table so the success reply's
	// repair accounting is deterministic and nonzero.
	warm, err := http.Get(ts.URL + "/v1/gain?graph=golden&L=4&R=25&seed=7&set=1,2&nodes=0,5,9")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, warm.Body)
	warm.Body.Close()

	// The same deterministic graph the harness serves, to pick a real edge.
	g := testGraph(t, 500, 42)
	u, v := 0, int(g.Neighbors(0)[0])
	body := fmt.Sprintf(`{"add_nodes":1,"add":[{"u":3,"v":500}],"remove":[{"u":%d,"v":%d}],"base_epoch":0}`, u, v)
	resp, err := http.Post(ts.URL+"/v1/graph/golden/edges", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	checkGolden(t, "mutate_ok", resp.StatusCode, http.StatusOK, raw)

	// conflict: the graph moved to epoch 1 above; a stale base_epoch loses.
	resp, err = http.Post(ts.URL+"/v1/graph/golden/edges", "application/json",
		strings.NewReader(`{"add":[{"u":1,"v":3}],"base_epoch":7}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	checkGolden(t, "error_conflict", resp.StatusCode, http.StatusConflict, raw)

	// stale_epoch: a partial read pinned to an epoch the graph is not at.
	resp, err = http.Get(ts.URL + "/v1/partial/gain?graph=golden&L=4&R=25&seed=7&r0=0&r1=25&nodes=1&epoch=9")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	checkGolden(t, "partial_error_stale_epoch", resp.StatusCode, http.StatusConflict, raw)
}

// TestMutateEpochPinWire drives the epoch query parameter through the HTTP
// codec: a partial read pinned to the current epoch answers, and after a
// mutation the same pin fails typed while the new epoch's pin answers.
// Regression test for the worker boundary dropping the coordinator's pin:
// before parseEpoch was wired into the partial handlers, the epoch=N
// parameter was silently ignored and the stale pin below answered 200 from
// post-mutation state.
func TestMutateEpochPinWire(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	read := func(epoch string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/partial/gain?graph=test&L=4&R=20&r0=0&r1=20&nodes=1,2" + epoch)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode == http.StatusOK {
			return resp.StatusCode, ""
		}
		var env ErrorResponse
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("bad envelope %q", raw)
		}
		return resp.StatusCode, env.Error.Code
	}

	if status, _ := read("&epoch=0"); status != http.StatusOK {
		t.Fatalf("pre-mutation read pinned to epoch 0: HTTP %d", status)
	}
	if status, code := read("&epoch=3"); status != http.StatusConflict || code != "stale_epoch" {
		t.Fatalf("read pinned to a future epoch: HTTP %d code %q, want 409 stale_epoch", status, code)
	}
	if status, code := read("&epoch=x"); status != http.StatusBadRequest || code != "bad_request" {
		t.Fatalf("unparseable epoch: HTTP %d code %q, want 400 bad_request", status, code)
	}

	g := testGraph(t, 600, 1) // the default graph newTestServer serves
	status, res, code := postDelta(t, ts.Client(), ts.URL, "test",
		fmt.Sprintf(`{"remove":[{"u":1,"v":%d}],"base_epoch":0}`, int(g.Neighbors(1)[0])))
	if status != http.StatusOK || res.Epoch != 1 {
		t.Fatalf("mutation: HTTP %d code %q res %+v", status, code, res)
	}

	if status, code := read("&epoch=0"); status != http.StatusConflict || code != "stale_epoch" {
		t.Fatalf("stale pin after mutation: HTTP %d code %q, want 409 stale_epoch", status, code)
	}
	if status, _ := read("&epoch=1"); status != http.StatusOK {
		t.Fatalf("current pin after mutation: HTTP %d", status)
	}
	if status, _ := read(""); status != http.StatusOK {
		t.Fatalf("unpinned read after mutation: HTTP %d", status)
	}
}

// mutateChaosGainItem is the read the mutation chaos suite hammers; its node
// list includes node 5, whose adjacency every chain delta edits, so distinct
// epochs answer distinct gains.
var mutateChaosGainItem = chaosItem{"gain", http.MethodGet, "/v1/gain?graph=test&L=4&R=30&seed=3&set=1,2&nodes=0,5,9", ""}

// mutateChain builds a deterministic chain of single-edge deltas (each
// removing one surviving edge of node 5) and the resulting per-epoch graphs:
// graphs[e] is the state at epoch e, deltas[e] moves it to e+1.
func mutateChain(t *testing.T, g0 *graph.Graph, epochs int) ([]*graph.Graph, []graph.Delta) {
	t.Helper()
	graphs := []*graph.Graph{g0}
	deltas := make([]graph.Delta, 0, epochs)
	cur := g0
	for e := 0; e < epochs; e++ {
		if cur.Degree(5) == 0 {
			t.Fatalf("epoch %d: node 5 ran out of edges; lower the epoch count", e)
		}
		d := graph.Delta{RemoveEdges: []graph.Edge{{U: 5, V: int(cur.Neighbors(5)[0])}}}
		ng, _, err := cur.ApplyDelta(d)
		if err != nil {
			t.Fatal(err)
		}
		deltas = append(deltas, d)
		graphs = append(graphs, ng)
		cur = ng
	}
	return graphs, deltas
}

// epochBaselines answers the chaos gain read against a fault-free unsharded
// server per epoch graph, over HTTP so float serialization matches the run
// under test bit for bit.
func epochBaselines(t *testing.T, graphs []*graph.Graph) [][]float64 {
	t.Helper()
	out := make([][]float64, len(graphs))
	for e, g := range graphs {
		s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
		ts := httptest.NewServer(s.Handler())
		status, canon, code, err := chaosDo(ts.Client(), ts.URL, mutateChaosGainItem)
		ts.Close()
		if err != nil || status != http.StatusOK {
			t.Fatalf("baseline epoch %d: status %d code %q err %v", e, status, code, err)
		}
		out[e] = canon.gains
	}
	for e := 1; e < len(out); e++ {
		if matchEpoch(out, out[e]) != e {
			t.Fatalf("epoch %d baseline is not distinct from earlier epochs — the chain deltas must change the queried gains", e)
		}
	}
	return out
}

// matchEpoch returns the first epoch whose baseline the gains vector equals
// bit for bit, or -1.
func matchEpoch(baselines [][]float64, gains []float64) int {
	for e, want := range baselines {
		if len(want) != len(gains) {
			continue
		}
		same := true
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(gains[i]) {
				same = false
				break
			}
		}
		if same {
			return e
		}
	}
	return -1
}

// TestChaosMutateUnderLoad hammers reads while a mutator walks the graph
// through a chain of epochs, unsharded and sharded. The epoch-consistency
// contract: every successful read is bit-identical to the fault-free answer
// of exactly one epoch — never a blend of pre- and post-mutation state — and
// the only acceptable failure is the sharded coordinator's typed stale_epoch
// (a read whose epoch pin lost the race to a concurrent mutation, retried
// but not infinitely). Regression test for mixed-epoch merges: an applier
// that kept serving a stale cached artifact after ApplyDelta would answer
// gains matching no single epoch.
func TestChaosMutateUnderLoad(t *testing.T) {
	const epochs = 3
	g0 := testGraph(t, 300, 11)
	chain, deltas := mutateChain(t, g0, epochs)
	baselines := epochBaselines(t, chain)

	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"unsharded", Config{Graphs: map[string]*graph.Graph{"test": g0}}},
		{"sharded", Config{Graphs: map[string]*graph.Graph{"test": g0}, Shards: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := newTestServer(t, tc.cfg)
			ts := httptest.NewServer(s.Handler())
			t.Cleanup(ts.Close)

			// Warm the read path so mutations exercise incremental repair of
			// live artifacts, not cold rebuilds.
			if status, _, code, err := chaosDo(ts.Client(), ts.URL, mutateChaosGainItem); err != nil || status != http.StatusOK {
				t.Fatalf("warm read: status %d code %q err %v", status, code, err)
			}

			done := make(chan struct{})
			errCh := make(chan error, 256)
			seen := make([]int64, len(baselines))
			var seenMu sync.Mutex
			var wg sync.WaitGroup
			const readers = 4
			for i := 0; i < readers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					client := ts.Client()
					for {
						select {
						case <-done:
							return
						default:
						}
						status, canon, code, err := chaosDo(client, ts.URL, mutateChaosGainItem)
						if err != nil {
							errCh <- err
							continue
						}
						if status != http.StatusOK {
							if code == "stale_epoch" {
								continue // typed, retryable: the pin lost a mutation race
							}
							errCh <- fmt.Errorf("read failed: HTTP %d code %q", status, code)
							continue
						}
						e := matchEpoch(baselines, canon.gains)
						if e < 0 {
							errCh <- fmt.Errorf("gains %v match no single epoch — mixed-epoch answer", canon.gains)
							continue
						}
						seenMu.Lock()
						seen[e]++
						seenMu.Unlock()
					}
				}()
			}

			for e, d := range deltas {
				time.Sleep(20 * time.Millisecond)
				body := fmt.Sprintf(`{"remove":[{"u":%d,"v":%d}],"base_epoch":%d}`, d.RemoveEdges[0].U, d.RemoveEdges[0].V, e)
				status, res, code := postDelta(t, ts.Client(), ts.URL, "test", body)
				if status != http.StatusOK {
					t.Fatalf("mutation to epoch %d: HTTP %d code %q", e+1, status, code)
				}
				if res.Epoch != uint64(e+1) {
					t.Fatalf("mutation reply epoch %d, want %d", res.Epoch, e+1)
				}
			}
			time.Sleep(20 * time.Millisecond)
			close(done)
			wg.Wait()
			close(errCh)

			reported := 0
			for err := range errCh {
				if reported++; reported > 10 {
					t.Fatal("...and more (suppressed after 10)")
				}
				t.Error(err)
			}
			distinct := 0
			var total int64
			for _, n := range seen {
				if n > 0 {
					distinct++
				}
				total += n
			}
			if total == 0 {
				t.Fatal("no successful reads completed during the mutation storm")
			}
			if distinct < 2 {
				t.Errorf("reads observed %d distinct epochs (counts %v); the storm never caught a transition", distinct, seen)
			}
			if seen[len(seen)-1] == 0 {
				// The post-storm reads below must land on the final epoch.
				status, canon, code, err := chaosDo(ts.Client(), ts.URL, mutateChaosGainItem)
				if err != nil || status != http.StatusOK {
					t.Fatalf("post-storm read: status %d code %q err %v", status, code, err)
				}
				if e := matchEpoch(baselines, canon.gains); e != len(baselines)-1 {
					t.Fatalf("post-storm read matched epoch %d, want final %d", e, len(baselines)-1)
				}
			}
			waitForZeroRefs(t, s)
		})
	}
}
