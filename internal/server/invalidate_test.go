package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/index"
)

// The regression this PR exists for: memo entries hold *index.Index
// references, so before cross-cache invalidation an index evicted from the
// index cache stayed on the heap until every dependent D-table happened to
// be evicted too — daemon memory was bounded by traffic history, not the
// working set. Evicting an index must now drop its dependent memo tables
// and actually return the index's heap to the collector.
func TestIndexEvictionDropsMemoTablesAndReleasesHeap(t *testing.T) {
	g := testGraph(t, 300, 5)
	s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, set := range []string{"1", "1,2", "7,9"} {
		resp, err := http.Get(ts.URL + "/v1/gain?graph=test&L=4&R=10&nodes=0&set=" + set)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("gain set=%s: status %d", set, resp.StatusCode)
		}
	}
	if ms := s.MemoStats(); ms.Resident != 3 || ms.ResidentBytes == 0 {
		t.Fatalf("memo after traffic: %+v, want 3 resident tables", ms)
	}

	// Pin the resident index just long enough to attach a finalizer — the
	// witness that its heap really becomes collectable. The closure scope
	// keeps the *Index off this frame's locals so only the caches can be
	// left referencing it.
	fin := make(chan struct{})
	func() {
		key := index.CacheKey{Graph: "test", L: 4, R: 10, Seed: 1}
		h, err := s.cache.Acquire(key, g, func() (*index.Index, error) {
			return nil, errors.New("index must already be resident")
		})
		if err != nil {
			t.Fatal(err)
		}
		runtime.SetFinalizer(h.Index(), func(*index.Index) { close(fin) })
		h.Release()
	}()

	if got := s.cache.EvictIdle(s.cache.Clock()); got != 1 {
		t.Fatalf("EvictIdle evicted %d indexes, want 1", got)
	}
	ms := s.MemoStats()
	if ms.Invalidated != 3 {
		t.Fatalf("invalidated = %d, want all 3 dependent tables: %+v", ms.Invalidated, ms)
	}
	if ms.Resident != 0 || ms.ResidentBytes != 0 {
		t.Fatalf("memo still resident after index eviction: %+v", ms)
	}

	// /stats serializes the linkage counter.
	var stats StatsResponse
	if resp := getJSONT(t, ts.URL+"/stats?buckets=0", &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats: %d", resp.StatusCode)
	}
	if stats.Memo.Invalidated != 3 || stats.Memo.ResidentBytes != 0 {
		t.Fatalf("/stats memo = %+v, want invalidated=3 resident_bytes=0", stats.Memo)
	}

	// With the tables dropped, nothing references the index: the finalizer
	// must fire. (Finalizers can need more than one GC cycle; poll briefly.)
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		select {
		case <-fin:
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("evicted index still reachable: its memo tables pin the heap")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A memo table pinned by an in-flight request when its index is evicted is
// orphaned, not freed: the holder keeps reading a valid frozen table, no
// new request can acquire it, and its memory goes with the last release.
func TestIndexEvictionOrphansPinnedMemoTable(t *testing.T) {
	g := testGraph(t, 300, 6)
	s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})

	key := index.CacheKey{Graph: "test", L: 4, R: 10, Seed: 1}
	h, err := s.cache.Acquire(key, g, func() (*index.Index, error) {
		return index.BuildWorkers(g, key.L, key.R, key.Seed, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := memoKey{idx: key, problem: index.Problem2, set: "1,2"}
	mh, status, err := s.memo.acquire(mk, []int{1, 2}, h.Index())
	if err != nil {
		t.Fatal(err)
	}
	if status != memoMiss {
		t.Fatalf("first acquire status %q, want %q", status, memoMiss)
	}
	want := mh.Table().Gain(5)
	h.Release()

	// Evict the index while the memo handle is still held.
	if got := s.cache.EvictIdle(s.cache.Clock()); got != 1 {
		t.Fatalf("EvictIdle evicted %d, want 1", got)
	}
	ms := s.MemoStats()
	if ms.Invalidated != 1 || ms.Resident != 0 {
		t.Fatalf("memo after eviction: %+v, want 1 invalidated, 0 resident", ms)
	}
	// The orphaned table still serves identical reads.
	if got := mh.Table().Gain(5); got != want {
		t.Fatalf("orphaned table gain = %v, want %v", got, want)
	}
	mh.Release()
	if refs := s.memo.pinnedRefs(); refs != 0 {
		t.Fatalf("%d refs pinned after release", refs)
	}

	// A later request for the same set repopulates from scratch (the orphan
	// is unreachable), against a freshly built index.
	h2, err := s.cache.Acquire(key, g, func() (*index.Index, error) {
		return index.BuildWorkers(g, key.L, key.R, key.Seed, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	mh2, status, err := s.memo.acquire(mk, []int{1, 2}, h2.Index())
	if err != nil {
		t.Fatal(err)
	}
	defer mh2.Release()
	if status != memoMiss {
		t.Fatalf("post-invalidation acquire status %q, want %q (fresh population)", status, memoMiss)
	}
	// Same walks (same build identity), so the repopulated table agrees.
	if got := mh2.Table().Gain(5); got != want {
		t.Fatalf("repopulated table gain = %v, want %v", got, want)
	}
}
