package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/index"
)

// The regression this PR exists for: memo entries hold *index.Index
// references, so before cross-cache invalidation an index evicted from the
// index cache stayed on the heap until every dependent D-table happened to
// be evicted too — daemon memory was bounded by traffic history, not the
// working set. Evicting an index must now drop its dependent memo tables
// and actually return the index's heap to the collector.
func TestIndexEvictionDropsMemoTablesAndReleasesHeap(t *testing.T) {
	g := testGraph(t, 300, 5)
	s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, set := range []string{"1", "1,2", "7,9"} {
		resp, err := http.Get(ts.URL + "/v1/gain?graph=test&L=4&R=10&nodes=0&set=" + set)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("gain set=%s: status %d", set, resp.StatusCode)
		}
	}
	if ms := s.MemoStats(); ms.Resident != 3 || ms.ResidentBytes == 0 {
		t.Fatalf("memo after traffic: %+v, want 3 resident tables", ms)
	}

	// Pin the resident index just long enough to attach a finalizer — the
	// witness that its heap really becomes collectable. The closure scope
	// keeps the *Index off this frame's locals so only the caches can be
	// left referencing it.
	fin := make(chan struct{})
	func() {
		key := index.CacheKey{Graph: "test", L: 4, R: 10, Seed: 1}
		h, err := s.Cache().Acquire(key, g, func() (*index.Index, error) {
			return nil, errors.New("index must already be resident")
		})
		if err != nil {
			t.Fatal(err)
		}
		runtime.SetFinalizer(h.Index(), func(*index.Index) { close(fin) })
		h.Release()
	}()

	if got := s.Cache().EvictIdle(s.Cache().Clock()); got != 1 {
		t.Fatalf("EvictIdle evicted %d indexes, want 1", got)
	}
	ms := s.MemoStats()
	if ms.Invalidated != 3 {
		t.Fatalf("invalidated = %d, want all 3 dependent tables: %+v", ms.Invalidated, ms)
	}
	if ms.Resident != 0 || ms.ResidentBytes != 0 {
		t.Fatalf("memo still resident after index eviction: %+v", ms)
	}

	// /stats serializes the linkage counter.
	var stats StatsResponse
	if resp := getJSONT(t, ts.URL+"/stats?buckets=0", &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats: %d", resp.StatusCode)
	}
	if stats.Memo.Invalidated != 3 || stats.Memo.ResidentBytes != 0 {
		t.Fatalf("/stats memo = %+v, want invalidated=3 resident_bytes=0", stats.Memo)
	}

	// With the tables dropped, nothing references the index: the finalizer
	// must fire. (Finalizers can need more than one GC cycle; poll briefly.)
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		select {
		case <-fin:
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("evicted index still reachable: its memo tables pin the heap")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
