package server

import (
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/engine"
	"repro/internal/shard"
)

// The /v1/partial endpoints are the worker side of replicate-sharded
// serving: integer gain sums (and objective accumulators) over a replicate
// range [r0, r1) of the build identified by (graph, problem, L, seed). A
// coordinator daemon merges disjoint ranges by addition and divides once,
// so these endpoints never normalize — their replies are exact int64 sums.
// They are served from this daemon's own engine even in coordinator mode,
// so coordinators and workers can be layered freely.

// PartialGainResponse is the /v1/partial/gain reply.
type PartialGainResponse struct {
	Graph   string `json:"graph"`
	Problem string `json:"problem"`
	R0      int    `json:"r0"`
	R1      int    `json:"r1"`
	Set     []int  `json:"set"`
	Nodes   []int  `json:"nodes"`
	// Sums[i] is the integer gain sum of Nodes[i] over [r0, r1).
	Sums []int64 `json:"sums"`
	// ObjectiveSum is present only when the request asked for it
	// (objective=1): the integer objective accumulator of Set over the
	// range.
	ObjectiveSum *int64 `json:"objective_sum,omitempty"`
	Replicates   int    `json:"replicates"`
	IndexCached  bool   `json:"index_cached"`
	Memo         string `json:"memo"`
	Degraded     bool   `json:"degraded,omitempty"`
}

// PartialTopGainsResponse is the /v1/partial/topgains reply, sum descending
// with ties broken by ascending node id.
type PartialTopGainsResponse struct {
	Graph       string  `json:"graph"`
	Problem     string  `json:"problem"`
	R0          int     `json:"r0"`
	R1          int     `json:"r1"`
	Set         []int   `json:"set"`
	B           int     `json:"b"`
	Nodes       []int   `json:"nodes"`
	Sums        []int64 `json:"sums"`
	Exhausted   bool    `json:"exhausted"`
	IndexCached bool    `json:"index_cached"`
	Memo        string  `json:"memo"`
	Degraded    bool    `json:"degraded,omitempty"`
}

// parseEpoch parses the optional epoch pin parameter (see
// engine.PartialGainRequest.Epoch): nil when absent.
func parseEpoch(r *http.Request) (*uint64, error) {
	v := r.URL.Query().Get("epoch")
	if v == "" {
		return nil, nil
	}
	e, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad epoch=%q", v)
	}
	return &e, nil
}

// parseRange parses the required r0/r1 replicate-range parameters; range
// validity (0 <= r0 < r1, width <= max-R) is the engine's call.
func parseRange(r *http.Request) (r0, r1 int, err error) {
	q := r.URL.Query()
	for _, p := range []struct {
		key string
		dst *int
	}{{"r0", &r0}, {"r1", &r1}} {
		v := q.Get(p.key)
		if v == "" {
			return 0, 0, fmt.Errorf("missing %s (the replicate range [r0, r1) is required)", p.key)
		}
		*p.dst, err = strconv.Atoi(v)
		if err != nil {
			return 0, 0, fmt.Errorf("bad %s=%q", p.key, v)
		}
	}
	return r0, r1, nil
}

func (s *Server) handlePartialGain(w http.ResponseWriter, r *http.Request) {
	qp, err := parseQueryParams(r)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	r0, r1, err := parseRange(r)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	q := r.URL.Query()
	nodes, err := parseNodeList(q.Get("nodes"))
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	wantObjective := false
	switch q.Get("objective") {
	case "", "0":
	case "1":
		wantObjective = true
	default:
		writeBadRequest(w, fmt.Errorf("bad objective=%q (want 0 or 1)", q.Get("objective")))
		return
	}
	epoch, err := parseEpoch(r)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	res, err := s.engine.PartialGain(r.Context(), engine.PartialGainRequest{
		Graph:         qp.graph,
		Problem:       qp.problem,
		L:             qp.L,
		Seed:          qp.seed,
		R0:            r0,
		R1:            r1,
		Epoch:         epoch,
		Set:           qp.set,
		Nodes:         nodes,
		WantObjective: wantObjective,
	})
	if err != nil {
		writeEngineError(w, err)
		return
	}
	resp := PartialGainResponse{
		Graph:       qp.graph,
		Problem:     qp.problem.String(),
		R0:          r0,
		R1:          r1,
		Set:         qp.set,
		Nodes:       nodes,
		Sums:        res.Sums,
		Replicates:  res.Replicates,
		IndexCached: res.IndexCached,
		Memo:        res.Memo,
		Degraded:    res.Degraded,
	}
	if wantObjective {
		resp.ObjectiveSum = &res.ObjectiveSum
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePartialTopGains(w http.ResponseWriter, r *http.Request) {
	qp, err := parseQueryParams(r)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	r0, r1, err := parseRange(r)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	q := r.URL.Query()
	b := 0
	if v := q.Get("b"); v != "" {
		b, err = strconv.Atoi(v)
		if err != nil {
			writeBadRequest(w, fmt.Errorf("bad b=%q", v))
			return
		}
		if b == 0 {
			// Explicit zero is invalid (zero means "default" engine-side).
			writeBadRequest(w, fmt.Errorf("b=0 invalid (omit b for the default)"))
			return
		}
	}
	workers := 0
	if v := q.Get("workers"); v != "" {
		workers, err = strconv.Atoi(v)
		if err != nil {
			writeBadRequest(w, fmt.Errorf("bad workers=%q", v))
			return
		}
	}
	epoch, err := parseEpoch(r)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	res, err := s.engine.PartialTopGains(r.Context(), engine.PartialTopGainsRequest{
		Graph:   qp.graph,
		Problem: qp.problem,
		L:       qp.L,
		Seed:    qp.seed,
		R0:      r0,
		R1:      r1,
		Epoch:   epoch,
		Set:     qp.set,
		Workers: workers,
		B:       b,
	})
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PartialTopGainsResponse{
		Graph:       qp.graph,
		Problem:     qp.problem.String(),
		R0:          r0,
		R1:          r1,
		Set:         qp.set,
		B:           res.B,
		Nodes:       res.Nodes,
		Sums:        res.Sums,
		Exhausted:   res.Exhausted,
		IndexCached: res.IndexCached,
		Memo:        res.Memo,
		Degraded:    res.Degraded,
	})
}

// ShardConnStatsJSON is one worker's entry in the /stats "shards" block.
type ShardConnStatsJSON struct {
	Addr     string `json:"addr"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"`
	Retries  int64  `json:"retries"`
}

// ShardsStatsJSON mirrors shard.Stats for /stats, present only in
// coordinator mode.
type ShardsStatsJSON struct {
	Shards         int                   `json:"shards"`
	Merges         int64                 `json:"merges"`
	DegradedMerges int64                 `json:"degraded_merges"`
	Retries        int64                 `json:"retries"`
	MergeLatency   shard.LatencySnapshot `json:"merge_latency"`
	PerShard       []ShardConnStatsJSON  `json:"per_shard"`
}

// shardsStats renders the coordinator's counters for /stats (nil when
// unsharded).
func (s *Server) shardsStats() *ShardsStatsJSON {
	if s.coord == nil {
		return nil
	}
	cs := s.coord.Stats()
	out := &ShardsStatsJSON{
		Shards:         cs.Shards,
		Merges:         cs.Merges,
		DegradedMerges: cs.DegradedMerges,
		Retries:        cs.Retries,
		MergeLatency:   cs.MergeLatency,
		PerShard:       make([]ShardConnStatsJSON, len(cs.PerShard)),
	}
	for i, p := range cs.PerShard {
		out.PerShard[i] = ShardConnStatsJSON{Addr: p.Addr, Requests: p.Requests, Errors: p.Errors, Retries: p.Retries}
	}
	return out
}
