package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

// The golden suite pins the v1 wire contract: one file per response shape
// (every success endpoint and every stable error code) under testdata/.
// A change that alters any serialized field name, ordering, or stable value
// shows up as a golden diff — run `go test ./internal/server -run Golden
// -update` to re-bless deliberate contract changes.

var updateGolden = flag.Bool("update", false, "rewrite golden files with observed responses")

// volatileFields are response fields whose values legitimately vary run to
// run; the golden canonicalization pins them to fixed sentinels so the
// files capture shape and deterministic payload only.
var volatileFields = map[string]bool{
	"build_ms":  true,
	"select_ms": true,
	"uptime_s":  true,
}

// canonicalize decodes arbitrary JSON and re-encodes it with volatile
// fields pinned and stable key order (encoding/json sorts map keys).
func canonicalize(t *testing.T, raw []byte) string {
	t.Helper()
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("bad JSON %q: %v", raw, err)
	}
	pinVolatile(v)
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out) + "\n"
}

func pinVolatile(v any) {
	switch vv := v.(type) {
	case map[string]any:
		for k, val := range vv {
			if volatileFields[k] {
				vv[k] = 0
				continue
			}
			pinVolatile(val)
		}
	case []any:
		for _, e := range vv {
			pinVolatile(e)
		}
	}
}

func checkGolden(t *testing.T, name string, status int, wantStatus int, body []byte) {
	t.Helper()
	if status != wantStatus {
		t.Fatalf("%s: status %d, want %d (body %s)", name, status, wantStatus, body)
	}
	got := canonicalize(t, body)
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: missing golden file (run with -update to create): %v", name, err)
	}
	if got != string(want) {
		t.Errorf("%s: response diverges from golden contract\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// goldenHarness serves one deterministic graph so payload values (nodes,
// gains, objectives) are stable across machines.
func goldenHarness(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	g := testGraph(t, 500, 42)
	s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"golden": g}})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestGoldenSuccessShapes(t *testing.T) {
	_, ts := goldenHarness(t)
	post := func(name, path, body string, wantStatus int) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, name, resp.StatusCode, wantStatus, raw)
	}
	get := func(name, path string, wantStatus int) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, name, resp.StatusCode, wantStatus, raw)
	}

	post("select_ok", "/v1/select", `{"graph":"golden","problem":"coverage","k":4,"L":4,"R":25,"seed":7,"workers":1}`, http.StatusOK)
	get("gain_ok", "/v1/gain?graph=golden&problem=2&L=4&R=25&seed=7&set=1,2&nodes=0,5,9", http.StatusOK)
	get("gain_empty_set_ok", "/v1/gain?graph=golden&problem=1&L=4&R=25&seed=7&nodes=3", http.StatusOK)
	get("objective_ok", "/v1/objective?graph=golden&problem=1&L=4&R=25&seed=7&set=1,2", http.StatusOK)
	get("topgains_ok", "/v1/topgains?graph=golden&problem=2&L=4&R=25&seed=7&set=1&b=3", http.StatusOK)
	get("healthz_ok", "/healthz", http.StatusOK)

	// The streaming contract: canonicalize each NDJSON line separately and
	// join them, so round-event and done-line shapes are both pinned.
	resp, err := http.Post(ts.URL+"/v1/select?stream=1", "application/json",
		bytes.NewBufferString(`{"graph":"golden","problem":"coverage","k":3,"L":4,"R":25,"seed":7,"workers":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d: %s", resp.StatusCode, raw)
	}
	var lines []string
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		lines = append(lines, canonicalize(t, []byte(line)))
	}
	joined := strings.Join(lines, "")
	path := filepath.Join("testdata", "select_stream_ok.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(joined), 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file: %v", err)
		}
		if joined != string(want) {
			t.Errorf("stream contract diverges\n--- got ---\n%s--- want ---\n%s", joined, want)
		}
	}
}

// TestGoldenErrorShapes pins the error envelope for every stable code.
func TestGoldenErrorShapes(t *testing.T) {
	s, ts := goldenHarness(t)

	// bad_request: invalid budget.
	resp, err := http.Post(ts.URL+"/v1/select", "application/json",
		bytes.NewBufferString(`{"graph":"golden","k":0,"L":4}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	checkGolden(t, "error_bad_request", resp.StatusCode, http.StatusBadRequest, raw)

	// not_found: unknown graph.
	resp, err = http.Get(ts.URL + "/v1/gain?graph=nope&L=4&nodes=1")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	checkGolden(t, "error_not_found", resp.StatusCode, http.StatusNotFound, raw)

	// timeout: a heavy selection under a 1ms budget (the index is warm so the
	// cancelable greedy loop is what exceeds it).
	warm, err := http.Post(ts.URL+"/v1/select", "application/json",
		bytes.NewBufferString(`{"graph":"golden","k":1,"L":6,"R":60,"seed":13}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, warm.Body)
	warm.Body.Close()
	resp, err = http.Post(ts.URL+"/v1/select", "application/json",
		bytes.NewBufferString(`{"graph":"golden","k":400,"L":6,"R":60,"seed":13,"algorithm":"plain","workers":1,"timeout_ms":1}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	checkGolden(t, "error_timeout", resp.StatusCode, http.StatusGatewayTimeout, raw)

	// draining: flip the drain flag and issue any request.
	s.draining.Store(true)
	resp, err = http.Get(ts.URL + "/v1/objective?graph=golden&L=4")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	checkGolden(t, "error_draining", resp.StatusCode, http.StatusServiceUnavailable, raw)
	s.draining.Store(false)

	// internal: exercised at the envelope layer (nothing in the happy daemon
	// fails internally on demand), so the shape is pinned via the writer the
	// panic-recovery path uses.
	rec := httptest.NewRecorder()
	writeErrorCode(rec, "internal", "panic: induced for the golden contract")
	checkGolden(t, "error_internal", rec.Code, http.StatusInternalServerError, rec.Body.Bytes())

	// Every error body advertises JSON.
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error content type %q", ct)
	}
}
