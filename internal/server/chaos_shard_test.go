package server

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

// Shard-topology chaos: a coordinator daemon whose workers misbehave. The
// contract mirrors the single-daemon chaos suite — every public answer is
// either bit-identical to the fault-free run or a typed error; a faulty
// worker must never produce a silently wrong merge, because the coordinator
// only merges when every shard's partial answer arrived.

// flakyWorker wraps a worker daemon so its /v1/partial endpoints shed the
// first failN requests with 503 overloaded and Retry-After: 0, then behave
// normally. Retry-After 0 tells the typed client to re-send immediately, so
// the retry path is exercised without slowing the test down.
func flakyWorker(t *testing.T, g *graph.Graph, failN int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	w := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	var failed atomic.Int64
	inner := w.Handler()
	ws := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/partial/gain" || r.URL.Path == "/v1/partial/topgains" {
			if failed.Add(1) <= failN {
				rw.Header().Set("Retry-After", "0")
				rw.Header().Set("Content-Type", "application/json")
				rw.WriteHeader(http.StatusServiceUnavailable)
				rw.Write([]byte(`{"error":{"code":"overloaded","message":"chaos: injected worker shed"}}`))
				return
			}
			failed.Add(-1) // only count actual sheds
		}
		inner.ServeHTTP(rw, r)
	}))
	t.Cleanup(ws.Close)
	return ws, &failed
}

// TestChaosFlakyWorkerShardRetriesToParity: one of two workers sheds a
// burst of partial requests longer than the client SDK's in-call retry
// budget, forcing the coordinator's own Retry-After backoff layer to
// re-send. Every response must still be a 200 bit-identical to the
// fault-free baseline, and the retries must be visible in /stats.
func TestChaosFlakyWorkerShardRetriesToParity(t *testing.T) {
	g := testGraph(t, 400, 11)
	baseline := chaosBaseline(t, g)

	healthy := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	healthyTS := httptest.NewServer(healthy.Handler())
	t.Cleanup(healthyTS.Close)

	// 5 consecutive sheds: the client retries a call at most 3 times, so
	// one conn-level call fails outright and the coordinator must re-send.
	flakyTS, shed := flakyWorker(t, g, 5)

	coord := newTestServer(t, Config{
		Graphs: map[string]*graph.Graph{"test": g},
		Peers:  []string{healthyTS.URL, flakyTS.URL},
	})
	coordTS := httptest.NewServer(coord.Handler())
	t.Cleanup(coordTS.Close)

	for _, it := range chaosWorkload {
		status, canon, code, err := chaosDo(coordTS.Client(), coordTS.URL, it)
		if err != nil {
			t.Fatal(err)
		}
		if status != http.StatusOK {
			t.Fatalf("%s: HTTP %d code %q through flaky shard, want eventual success", it.name, status, code)
		}
		if diff := canonDiff(baseline[it.name], canon); diff != "" {
			t.Fatalf("%s: merged answer through flaky shard diverges: %s", it.name, diff)
		}
	}

	if shed.Load() == 0 {
		t.Fatal("the flaky worker never shed — the retry path was not exercised")
	}
	st := getStats(t, coordTS.URL)
	if st.Shards == nil {
		t.Fatal("coordinator /stats has no shards block")
	}
	if st.Shards.Retries == 0 {
		t.Fatalf("coordinator absorbed %d sheds without recording a retry: %+v", shed.Load(), st.Shards)
	}
}

// TestChaosKilledWorkerShardFailsTyped: a worker that is down (connection
// refused) can never be merged around — the coordinator must answer with a
// typed error envelope, not a partial or silently wrong result.
func TestChaosKilledWorkerShardFailsTyped(t *testing.T) {
	g := testGraph(t, 400, 11)

	healthy := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	healthyTS := httptest.NewServer(healthy.Handler())
	t.Cleanup(healthyTS.Close)

	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // the port is now refused

	coord := newTestServer(t, Config{
		Graphs: map[string]*graph.Graph{"test": g},
		Peers:  []string{healthyTS.URL, deadURL},
	})
	coordTS := httptest.NewServer(coord.Handler())
	t.Cleanup(coordTS.Close)

	for _, it := range chaosWorkload[:4] {
		status, canon, code, err := chaosDo(coordTS.Client(), coordTS.URL, it)
		if err != nil {
			t.Fatal(err)
		}
		if status == http.StatusOK {
			t.Fatalf("%s: 200 (%+v) with a dead shard — a merge over half the replicates", it.name, canon)
		}
		switch code {
		case "internal", "overloaded", "timeout":
		default:
			t.Fatalf("%s: error code %q (HTTP %d), want a typed retryable/internal code", it.name, code, status)
		}
	}

	// The healthy worker's partial surface is untouched: asking it directly
	// still works, so recovery is a matter of restoring the dead peer.
	resp, err := http.Get(healthyTS.URL + "/v1/partial/gain?graph=test&L=4&seed=1&r0=0&r1=12&nodes=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy worker partial status %d", resp.StatusCode)
	}
}
