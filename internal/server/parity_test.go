package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/index"
)

// The parity suite locks the memoized read path to the fresh-D-table path:
// every /v1/gain, /v1/objective and /v1/topgains answer served from the
// memo cache (or the index's empty-set vectors) must be bit-for-bit
// identical to what a daemon with memoization disabled computes — for both
// problems, across empty/singleton/large/unsorted/duplicated seed sets, and
// along the selection prefixes a lazy or plain greedy run produces.

// parityHarness runs one graph behind two servers that differ only in
// memoization.
type parityHarness struct {
	g     *graph.Graph
	memo  *httptest.Server
	fresh *httptest.Server
	srv   *Server // the memoized server, for stats assertions
}

func newParityHarness(t *testing.T) *parityHarness {
	t.Helper()
	g := testGraph(t, 500, 42)
	graphs := func() map[string]*graph.Graph { return map[string]*graph.Graph{"test": g} }
	memoSrv := newTestServer(t, Config{Graphs: graphs()})
	freshSrv := newTestServer(t, Config{Graphs: graphs(), DisableMemo: true})
	memo := httptest.NewServer(memoSrv.Handler())
	t.Cleanup(memo.Close)
	fresh := httptest.NewServer(freshSrv.Handler())
	t.Cleanup(fresh.Close)
	return &parityHarness{g: g, memo: memo, fresh: fresh, srv: memoSrv}
}

func getJSON(t *testing.T, base, path string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func setParam(set []int) string {
	if len(set) == 0 {
		return ""
	}
	parts := make([]string, len(set))
	for i, u := range set {
		parts[i] = strconv.Itoa(u)
	}
	return url.QueryEscape(strings.Join(parts, ","))
}

// parityCases are the seed-set shapes the suite sweeps. Node ids are valid
// for the 500-node test graph.
func parityCases() map[string][]int {
	return map[string][]int{
		"empty":     {},
		"singleton": {7},
		"pair":      {444, 3},
		"large":     {12, 400, 9, 77, 123, 256, 31, 498, 60, 205, 18, 350},
		"unsorted":  {250, 4, 199, 4, 250, 0, 499, 4},
		"dupsonly":  {33, 33, 33},
	}
}

func assertBitIdentical(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d gains, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: gain[%d] = %x (%v), want %x (%v)",
				label, i, math.Float64bits(got[i]), got[i], math.Float64bits(want[i]), want[i])
		}
	}
}

func TestParityGainMemoizedVsFresh(t *testing.T) {
	h := newParityHarness(t)
	probe := []int{0, 7, 33, 444, 250, 499, 123} // mix of set members and outsiders
	for _, problem := range []string{"1", "2"} {
		for name, set := range parityCases() {
			path := fmt.Sprintf("/v1/gain?graph=test&problem=%s&L=5&R=25&seed=9&set=%s&nodes=%s",
				problem, setParam(set), setParam(probe))
			var got, want GainResponse
			if resp := getJSON(t, h.memo.URL, path, &got); resp.StatusCode != http.StatusOK {
				t.Fatalf("memo gain %s/%s: status %d", problem, name, resp.StatusCode)
			}
			if resp := getJSON(t, h.fresh.URL, path, &want); resp.StatusCode != http.StatusOK {
				t.Fatalf("fresh gain %s/%s: status %d", problem, name, resp.StatusCode)
			}
			assertBitIdentical(t, "gain "+problem+"/"+name, got.Gains, want.Gains)
			if want.Memo != memoOff {
				t.Fatalf("fresh server reported memo=%q", want.Memo)
			}
			if got.Memo == memoOff || got.Memo == "" {
				t.Fatalf("memo server reported memo=%q", got.Memo)
			}
			if len(set) == 0 && got.Memo != memoEmpty {
				t.Fatalf("empty set served via %q, want %q", got.Memo, memoEmpty)
			}
			// In-process reference: fresh table, raw (uncanonicalized) replay.
			ix, err := index.Build(h.g, 5, 25, 9)
			if err != nil {
				t.Fatal(err)
			}
			p := index.Problem2
			if problem == "1" {
				p = index.Problem1
			}
			d, err := ix.NewDTable(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range set {
				d.Update(u)
			}
			ref := d.GainBatch(probe, nil)
			assertBitIdentical(t, "gain-vs-direct "+problem+"/"+name, got.Gains, ref)
		}
	}
}

func TestParityObjectiveMemoizedVsFresh(t *testing.T) {
	h := newParityHarness(t)
	for _, problem := range []string{"1", "2"} {
		for name, set := range parityCases() {
			path := fmt.Sprintf("/v1/objective?graph=test&problem=%s&L=5&R=25&seed=9&set=%s",
				problem, setParam(set))
			var got, want ObjectiveResponse
			if resp := getJSON(t, h.memo.URL, path, &got); resp.StatusCode != http.StatusOK {
				t.Fatalf("memo objective %s/%s: status %d", problem, name, resp.StatusCode)
			}
			if resp := getJSON(t, h.fresh.URL, path, &want); resp.StatusCode != http.StatusOK {
				t.Fatalf("fresh objective %s/%s: status %d", problem, name, resp.StatusCode)
			}
			if math.Float64bits(got.Objective) != math.Float64bits(want.Objective) {
				t.Fatalf("objective %s/%s: memo %v, fresh %v", problem, name, got.Objective, want.Objective)
			}
		}
	}
}

func TestParityTopGainsMemoizedVsFresh(t *testing.T) {
	h := newParityHarness(t)
	for _, problem := range []string{"1", "2"} {
		for name, set := range parityCases() {
			for _, b := range []int{1, 10, 600} { // 600 > n exercises clamping
				path := fmt.Sprintf("/v1/topgains?graph=test&problem=%s&L=5&R=25&seed=9&set=%s&b=%d",
					problem, setParam(set), b)
				var got, want TopGainsResponse
				if resp := getJSON(t, h.memo.URL, path, &got); resp.StatusCode != http.StatusOK {
					t.Fatalf("memo topgains %s/%s b=%d: status %d", problem, name, b, resp.StatusCode)
				}
				if resp := getJSON(t, h.fresh.URL, path, &want); resp.StatusCode != http.StatusOK {
					t.Fatalf("fresh topgains %s/%s b=%d: status %d", problem, name, b, resp.StatusCode)
				}
				if len(got.Nodes) != len(want.Nodes) {
					t.Fatalf("topgains %s/%s b=%d: %d nodes vs %d", problem, name, b, len(got.Nodes), len(want.Nodes))
				}
				for i := range want.Nodes {
					if got.Nodes[i] != want.Nodes[i] {
						t.Fatalf("topgains %s/%s b=%d: nodes %v vs %v", problem, name, b, got.Nodes, want.Nodes)
					}
				}
				assertBitIdentical(t, fmt.Sprintf("topgains %s/%s b=%d", problem, name, b), got.Gains, want.Gains)
				// Set members never appear among the winners.
				members := map[int]bool{}
				for _, u := range set {
					members[u] = true
				}
				for _, u := range got.Nodes {
					if members[u] {
						t.Fatalf("topgains %s/%s: set member %d in results", problem, name, u)
					}
				}
			}
		}
	}
}

// TestParityAlongGreedyPrefixes drives both greedy algorithms through
// /v1/select and asserts the memoized read path agrees with the fresh one
// on every prefix of the selection — the sets a client following a greedy
// run would actually query, including the memo's prefix-extension path.
func TestParityAlongGreedyPrefixes(t *testing.T) {
	h := newParityHarness(t)
	probe := []int{0, 50, 100, 499}
	for _, algorithm := range []string{"lazy", "plain"} {
		for _, problem := range []string{"hitting", "coverage"} {
			body := fmt.Sprintf(`{"graph":"test","problem":%q,"k":6,"L":5,"R":25,"seed":9,"algorithm":%q}`,
				problem, algorithm)
			memoSel, resp := postSelect(t, h.memo.URL, body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("memo select %s/%s: status %d", algorithm, problem, resp.StatusCode)
			}
			freshSel, resp := postSelect(t, h.fresh.URL, body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("fresh select %s/%s: status %d", algorithm, problem, resp.StatusCode)
			}
			if len(memoSel.Nodes) != len(freshSel.Nodes) {
				t.Fatalf("select %s/%s: %d nodes vs %d", algorithm, problem, len(memoSel.Nodes), len(freshSel.Nodes))
			}
			for i := range memoSel.Nodes {
				if memoSel.Nodes[i] != freshSel.Nodes[i] {
					t.Fatalf("select %s/%s: nodes %v vs %v", algorithm, problem, memoSel.Nodes, freshSel.Nodes)
				}
			}
			for plen := 0; plen <= len(memoSel.Nodes); plen++ {
				prefix := memoSel.Nodes[:plen]
				gainPath := fmt.Sprintf("/v1/gain?graph=test&problem=%s&L=5&R=25&seed=9&set=%s&nodes=%s",
					problem, setParam(prefix), setParam(probe))
				var got, want GainResponse
				if resp := getJSON(t, h.memo.URL, gainPath, &got); resp.StatusCode != http.StatusOK {
					t.Fatalf("memo prefix gain: status %d", resp.StatusCode)
				}
				if resp := getJSON(t, h.fresh.URL, gainPath, &want); resp.StatusCode != http.StatusOK {
					t.Fatalf("fresh prefix gain: status %d", resp.StatusCode)
				}
				assertBitIdentical(t, fmt.Sprintf("prefix %s/%s len=%d", algorithm, problem, plen), got.Gains, want.Gains)

				objPath := fmt.Sprintf("/v1/objective?graph=test&problem=%s&L=5&R=25&seed=9&set=%s",
					problem, setParam(prefix))
				var gotO, wantO ObjectiveResponse
				if resp := getJSON(t, h.memo.URL, objPath, &gotO); resp.StatusCode != http.StatusOK {
					t.Fatalf("memo prefix objective: status %d", resp.StatusCode)
				}
				if resp := getJSON(t, h.fresh.URL, objPath, &wantO); resp.StatusCode != http.StatusOK {
					t.Fatalf("fresh prefix objective: status %d", resp.StatusCode)
				}
				if math.Float64bits(gotO.Objective) != math.Float64bits(wantO.Objective) {
					t.Fatalf("prefix objective %s/%s len=%d: %v vs %v",
						algorithm, problem, plen, gotO.Objective, wantO.Objective)
				}
			}
		}
	}
	// The ascending prefix sweep is exactly the shape prefix extension
	// serves; the gain+objective pairs also hit the cache.
	ms := h.srv.MemoStats()
	if ms.PrefixExtended == 0 {
		t.Fatalf("prefix sweep never extended a cached table: %+v", ms)
	}
	if ms.Hits == 0 {
		t.Fatalf("prefix sweep never hit the cache: %+v", ms)
	}
}

// TestMemoStatuses pins the status lifecycle: miss on first sight, hit on
// repeat, extended when a cached proper prefix exists, empty for set-free
// requests.
func TestMemoStatuses(t *testing.T) {
	h := newParityHarness(t)
	get := func(set string) string {
		var gr GainResponse
		path := "/v1/gain?graph=test&L=4&R=10&nodes=1,2&set=" + set
		if resp := getJSON(t, h.memo.URL, path, &gr); resp.StatusCode != http.StatusOK {
			t.Fatalf("gain set=%q: status %d", set, resp.StatusCode)
		}
		return gr.Memo
	}
	if st := get(""); st != memoEmpty {
		t.Fatalf("empty set: memo=%q", st)
	}
	if st := get("5,9"); st != memoMiss {
		t.Fatalf("first {5,9}: memo=%q", st)
	}
	if st := get("9,5,9"); st != memoHit {
		t.Fatalf("repeat {5,9} (permuted, dup): memo=%q", st)
	}
	if st := get("5,9,300"); st != memoExtended {
		t.Fatalf("superset {5,9,300}: memo=%q", st)
	}
	if st := get("300,5,9"); st != memoHit {
		t.Fatalf("repeat {5,9,300}: memo=%q", st)
	}
	ms := h.srv.MemoStats()
	if ms.EmptyHits != 1 || ms.Misses != 2 || ms.Hits != 2 || ms.PrefixExtended != 1 {
		t.Fatalf("stats after status walk: %+v", ms)
	}
}
