package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/graph"
)

// TestSelectAccuracyHTTP pins the wire contract of the accuracy block: a
// select body with an epsilon target gets an "accuracy" object carrying the
// run's evidence, and a plain select stays byte-compatible (no block at all).
func TestSelectAccuracyHTTP(t *testing.T) {
	s := newTestServer(t, Config{AccuracyChunk: 10})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sr, resp := postSelect(t, ts.URL, `{"graph":"test","k":3,"L":5,"R":40,"seed":2,"epsilon":1e-9,"delta":0.1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select status %d", resp.StatusCode)
	}
	acc := sr.Accuracy
	if acc == nil {
		t.Fatal("epsilon-targeted select reply has no accuracy block")
	}
	if acc.Epsilon != 1e-9 || acc.Delta != 0.1 {
		t.Fatalf("accuracy echoes epsilon=%v delta=%v", acc.Epsilon, acc.Delta)
	}
	// An unreachable epsilon spends the whole cap: the evidence must say so.
	if acc.EarlyStopped || acc.ReplicatesUsed != 40 || acc.ChunksBuilt != 4 || acc.CIWidth <= 0 {
		t.Fatalf("capped-run evidence inconsistent: %+v", acc)
	}

	plain, resp := postSelect(t, ts.URL, `{"graph":"test","k":3,"L":5,"R":40,"seed":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain select status %d", resp.StatusCode)
	}
	if plain.Accuracy != nil {
		t.Fatalf("plain select reply grew an accuracy block: %+v", plain.Accuracy)
	}
	if len(plain.Nodes) != len(sr.Nodes) {
		t.Fatalf("capped adaptive picked %d nodes, fixed-R picked %d", len(sr.Nodes), len(plain.Nodes))
	}
	for i := range plain.Nodes {
		if sr.Nodes[i] != plain.Nodes[i] {
			t.Fatalf("capped adaptive nodes %v diverge from fixed-R %v", sr.Nodes, plain.Nodes)
		}
	}
}

// TestSelectAccuracyStream pins the NDJSON side: every round line of an
// epsilon-targeted stream carries ci_width/replicates, and the final result
// line repeats the same accuracy block as the blocking reply.
func TestSelectAccuracyStream(t *testing.T) {
	g, err := graph.BarabasiAlbert(400, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"easy": g}, AccuracyChunk: 25})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"graph":"easy","k":3,"L":6,"R":200,"seed":7,"epsilon":25,"delta":0.05}`
	rounds, done, errLine, _ := postSelectStream(t, ts.URL, body)
	if errLine != nil {
		t.Fatalf("stream error: %+v", errLine)
	}
	if done == nil || done.Accuracy == nil {
		t.Fatal("stream result line has no accuracy block")
	}
	if !done.Accuracy.EarlyStopped || done.Accuracy.ReplicatesUsed >= 200 {
		t.Fatalf("easy graph did not early-stop: %+v", done.Accuracy)
	}
	if len(rounds) != len(done.Nodes) {
		t.Fatalf("%d round lines for %d nodes", len(rounds), len(done.Nodes))
	}
	for i, rd := range rounds {
		if rd.Replicates < 1 || rd.Replicates > done.Accuracy.ReplicatesUsed {
			t.Fatalf("round %d: replicates=%d outside [1,%d]", i, rd.Replicates, done.Accuracy.ReplicatesUsed)
		}
		if rd.CIWidth > done.Accuracy.Epsilon {
			t.Fatalf("round %d: ci_width %v exceeds epsilon", i, rd.CIWidth)
		}
	}

	blocking, resp := postSelect(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("blocking select status %d", resp.StatusCode)
	}
	if *blocking.Accuracy != *done.Accuracy {
		t.Fatalf("stream accuracy %+v != blocking %+v", done.Accuracy, blocking.Accuracy)
	}
}

// TestStatsAccuracyBlock pins /stats: absent until adaptive traffic exists,
// then a counter block with the 5-bucket CI-width histogram.
func TestStatsAccuracyBlock(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	getStats := func() StatsResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	if st := getStats(); st.Accuracy != nil {
		t.Fatalf("accuracy stats present before any adaptive select: %+v", st.Accuracy)
	}
	if _, resp := postSelect(t, ts.URL, `{"graph":"test","k":2,"L":4,"R":20,"seed":1,"epsilon":1e-9}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("select status %d", resp.StatusCode)
	}
	st := getStats()
	if st.Accuracy == nil {
		t.Fatal("no accuracy stats after an adaptive select")
	}
	if st.Accuracy.AdaptiveSelects < 1 || st.Accuracy.ChunksBuilt < 1 {
		t.Fatalf("counters not recorded: %+v", st.Accuracy)
	}
	if len(st.Accuracy.CIWidthHist) != 5 {
		t.Fatalf("ci_width_hist has %d buckets, want 5", len(st.Accuracy.CIWidthHist))
	}
	var total int64
	for _, c := range st.Accuracy.CIWidthHist {
		total += c
	}
	if total != st.Accuracy.AdaptiveSelects {
		t.Fatalf("histogram holds %d runs, want %d", total, st.Accuracy.AdaptiveSelects)
	}
}

// TestShardedAccuracyUnsupported pins the sharding boundary: per-request
// epsilon on a sharded daemon is 501 "unsupported" (no shard holds the full
// replicate range), and a default epsilon refuses to even start sharded.
func TestShardedAccuracyUnsupported(t *testing.T) {
	s := newTestServer(t, Config{Shards: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/select", "application/json",
		strings.NewReader(`{"graph":"test","k":2,"L":4,"R":20,"epsilon":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("sharded accuracy select status %d, want 501", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != "unsupported" {
		t.Fatalf("error code %q, want unsupported", er.Error.Code)
	}

	if _, err := New(Config{
		Graphs:         map[string]*graph.Graph{"test": testGraph(t, 100, 1)},
		Shards:         2,
		DefaultEpsilon: 0.5,
	}); err == nil {
		t.Fatal("sharded server with DefaultEpsilon started")
	}
}
