package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/graph"
)

// The chaos suite hammers the full HTTP stack with deterministic faults
// armed at every injection site and checks the robustness contract from the
// outside: every response is either a success whose payload is bit-identical
// to the fault-free answer, or a failure with a stable typed code; no
// goroutine leaks (newTestServer wires testleak into every test); and once
// traffic stops, cache refcounts conserve — nothing stays pinned.

// chaosCanon is the deterministic part of a response: node choices, gain
// values and objectives are exact for a given (graph, L, R, seed, set)
// regardless of caching, coalescing, degradation or faults. Timing fields
// and cache markers legitimately vary and are not compared.
type chaosCanon struct {
	nodes     []int
	gains     []float64
	objective float64
}

type chaosItem struct{ name, method, path, body string }

// chaosWorkload is the fixed request mix. Three select seeds defeat
// coalescing and — against a CacheSize=2 server — force continuous index
// eviction, spill and rebuild churn, so the spill fault sites see traffic.
var chaosWorkload = []chaosItem{
	{"select-s1", http.MethodPost, "/v1/select", `{"graph":"test","k":5,"L":4,"R":25,"seed":1,"workers":2}`},
	{"select-s2", http.MethodPost, "/v1/select", `{"graph":"test","k":5,"L":4,"R":25,"seed":2,"workers":2}`},
	{"select-s3", http.MethodPost, "/v1/select", `{"graph":"test","k":5,"L":4,"R":25,"seed":3,"workers":2}`},
	{"gain", http.MethodGet, "/v1/gain?graph=test&L=4&R=25&seed=1&set=1,2&nodes=0,5,9", ""},
	{"objective", http.MethodGet, "/v1/objective?graph=test&L=4&R=25&seed=1&set=1,2", ""},
	{"topgains", http.MethodGet, "/v1/topgains?graph=test&L=4&R=25&seed=1&set=1&b=5", ""},
}

// chaosDo issues one workload request. A 200 parses into its canonical
// payload; any other status must carry the JSON error envelope, whose code
// is returned.
func chaosDo(client *http.Client, base string, it chaosItem) (status int, canon *chaosCanon, code string, err error) {
	var resp *http.Response
	if it.method == http.MethodPost {
		resp, err = client.Post(base+it.path, "application/json", strings.NewReader(it.body))
	} else {
		resp, err = client.Get(base + it.path)
	}
	if err != nil {
		return 0, nil, "", fmt.Errorf("%s: %w", it.name, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, "", fmt.Errorf("%s: reading body: %w", it.name, err)
	}
	if resp.StatusCode != http.StatusOK {
		var env struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code == "" {
			return resp.StatusCode, nil, "", fmt.Errorf("%s: HTTP %d with malformed error envelope: %q", it.name, resp.StatusCode, raw)
		}
		return resp.StatusCode, nil, env.Error.Code, nil
	}
	c := &chaosCanon{}
	switch {
	case strings.HasPrefix(it.name, "select"):
		var r SelectResponse
		if err := json.Unmarshal(raw, &r); err != nil {
			return resp.StatusCode, nil, "", fmt.Errorf("%s: %w", it.name, err)
		}
		c.nodes, c.gains, c.objective = r.Nodes, r.Gains, r.Objective
	case it.name == "gain":
		var r GainResponse
		if err := json.Unmarshal(raw, &r); err != nil {
			return resp.StatusCode, nil, "", fmt.Errorf("%s: %w", it.name, err)
		}
		c.gains = r.Gains
	case it.name == "objective":
		var r ObjectiveResponse
		if err := json.Unmarshal(raw, &r); err != nil {
			return resp.StatusCode, nil, "", fmt.Errorf("%s: %w", it.name, err)
		}
		c.objective = r.Objective
	case it.name == "topgains":
		var r TopGainsResponse
		if err := json.Unmarshal(raw, &r); err != nil {
			return resp.StatusCode, nil, "", fmt.Errorf("%s: %w", it.name, err)
		}
		c.nodes, c.gains = r.Nodes, r.Gains
	}
	return resp.StatusCode, c, "", nil
}

// canonDiff reports the first bit-level divergence between two canonical
// payloads, or "".
func canonDiff(want, got *chaosCanon) string {
	if len(want.nodes) != len(got.nodes) || len(want.gains) != len(got.gains) {
		return fmt.Sprintf("shape %d nodes/%d gains, want %d/%d", len(got.nodes), len(got.gains), len(want.nodes), len(want.gains))
	}
	for i := range want.nodes {
		if want.nodes[i] != got.nodes[i] {
			return fmt.Sprintf("node[%d] = %d, want %d", i, got.nodes[i], want.nodes[i])
		}
	}
	for i := range want.gains {
		if math.Float64bits(want.gains[i]) != math.Float64bits(got.gains[i]) {
			return fmt.Sprintf("gain[%d] = %v, want %v (bits diverge)", i, got.gains[i], want.gains[i])
		}
	}
	if math.Float64bits(want.objective) != math.Float64bits(got.objective) {
		return fmt.Sprintf("objective = %v, want %v (bits diverge)", got.objective, want.objective)
	}
	return ""
}

// chaosBaseline answers the whole workload against a fault-free server and
// returns the canonical payloads.
func chaosBaseline(t *testing.T, g *graph.Graph) map[string]*chaosCanon {
	t.Helper()
	s := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	baseline := make(map[string]*chaosCanon, len(chaosWorkload))
	for _, it := range chaosWorkload {
		status, canon, code, err := chaosDo(ts.Client(), ts.URL, it)
		if err != nil || status != http.StatusOK {
			t.Fatalf("baseline %s: status %d code %q err %v", it.name, status, code, err)
		}
		baseline[it.name] = canon
	}
	return baseline
}

// waitForZeroRefs asserts refcount conservation: once traffic stops, every
// index and memo pin taken by the request paths — including the ones that
// raced injected failures — must be released.
func waitForZeroRefs(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ix, memo := s.Cache().PinnedRefs(), s.Engine().MemoPinnedRefs()
		if ix == 0 && memo == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("refs still pinned after traffic stopped: index=%d memo=%d", ix, memo)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosFaultInjectionFullStack arms every fault site at once and hammers
// the stack concurrently. SiteSpillSave and SiteGreedyStride are armed in
// their only safe modes (error and latency respectively — the spill writer
// runs on a detached goroutine with no recover boundary, and strides run
// inside worker pools).
func TestChaosFaultInjectionFullStack(t *testing.T) {
	g := testGraph(t, 500, 11)
	baseline := chaosBaseline(t, g)

	s := newTestServer(t, Config{
		Graphs:    map[string]*graph.Graph{"test": g},
		CacheSize: 2,
		SpillDir:  t.TempDir(),
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	disable := faultinject.Enable(faultinject.Plan{
		Seed: 42,
		Sites: map[string]faultinject.Fault{
			faultinject.SiteSpillSave:     {P: 0.5, Err: true},
			faultinject.SiteSpillLoad:     {P: 0.5, Err: true},
			faultinject.SiteIndexPopulate: {P: 0.3, Err: true, Latency: 200 * time.Microsecond},
			faultinject.SiteMemoPopulate:  {P: 0.3, Err: true},
			faultinject.SiteGreedyStride:  {P: 0.05, Latency: 200 * time.Microsecond},
		},
	})
	defer disable()

	const goroutines, iters = 6, 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines*iters*len(chaosWorkload))
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			client := ts.Client()
			for i := 0; i < iters; i++ {
				for wi := range chaosWorkload {
					// Stagger the mix per goroutine so distinct requests overlap.
					it := chaosWorkload[(wi+gi)%len(chaosWorkload)]
					status, canon, code, err := chaosDo(client, ts.URL, it)
					if err != nil {
						errCh <- err
						continue
					}
					if status == http.StatusOK {
						if diff := canonDiff(baseline[it.name], canon); diff != "" {
							errCh <- fmt.Errorf("%s: success under faults diverges from fault-free run: %s", it.name, diff)
						}
						continue
					}
					switch code {
					case "internal", "overloaded", "timeout":
					default:
						errCh <- fmt.Errorf("%s: unexpected error code %q (HTTP %d)", it.name, code, status)
						continue
					}
					if want := engine.HTTPStatus(engine.Code(code)); want != status {
						errCh <- fmt.Errorf("%s: code %q served with HTTP %d, want %d", it.name, code, status, want)
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errCh)
	reported := 0
	for err := range errCh {
		if reported++; reported > 10 {
			t.Fatalf("...and more (suppressed after 10 of %d failures)", len(errCh)+reported)
		}
		t.Error(err)
	}

	// Coverage proof: every site saw traffic, and every armed fault actually
	// fired — a chaos run where a site went silent tests nothing.
	stats := faultinject.Stats()
	for _, site := range []string{
		faultinject.SiteSpillSave,
		faultinject.SiteSpillLoad,
		faultinject.SiteIndexPopulate,
		faultinject.SiteMemoPopulate,
		faultinject.SiteGreedyStride,
	} {
		st := stats[site]
		if st.Hits == 0 {
			t.Errorf("site %s saw no traffic", site)
		}
		if st.Fired == 0 {
			t.Errorf("site %s never fired (hits %d)", site, st.Hits)
		}
	}

	waitForZeroRefs(t, s)

	// Recovery: with faults disarmed, the same server answers the full
	// workload correctly — no poisoned cache entries, no stuck state.
	disable()
	for _, it := range chaosWorkload {
		status, canon, code, err := chaosDo(ts.Client(), ts.URL, it)
		if err != nil || status != http.StatusOK {
			t.Fatalf("recovery %s: status %d code %q err %v", it.name, status, code, err)
		}
		if diff := canonDiff(baseline[it.name], canon); diff != "" {
			t.Fatalf("recovery %s diverges: %s", it.name, diff)
		}
	}
	waitForZeroRefs(t, s)
}

// TestChaosOverloadBurstShedsCleanly saturates a one-slot, one-queue server
// with a burst of non-coalescable selections (distinct seeds) slowed by
// injected stride latency. The shedding contract: every response is a 200 or
// a 503 with code "overloaded" and a Retry-After header — never a hang,
// never a 500 — and the admission Shed counter accounts for every 503.
func TestChaosOverloadBurstShedsCleanly(t *testing.T) {
	g := testGraph(t, 400, 7)
	s := newTestServer(t, Config{
		Graphs:        map[string]*graph.Graph{"test": g},
		MaxConcurrent: 1,
		MaxQueue:      1,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	disable := faultinject.Enable(faultinject.Plan{
		Seed: 7,
		Sites: map[string]faultinject.Fault{
			faultinject.SiteGreedyStride: {P: 1, Latency: 2 * time.Millisecond},
		},
	})
	defer disable()

	const burst = 16
	var ok200, shed503 atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	errCh := make(chan error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			<-start
			body := fmt.Sprintf(`{"graph":"test","k":4,"L":4,"R":20,"seed":%d,"workers":1}`, seed)
			resp, err := ts.Client().Post(ts.URL+"/v1/select", "application/json", strings.NewReader(body))
			if err != nil {
				errCh <- err
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			switch resp.StatusCode {
			case http.StatusOK:
				ok200.Add(1)
			case http.StatusServiceUnavailable:
				var env struct {
					Error struct {
						Code string `json:"code"`
					} `json:"error"`
				}
				if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != "overloaded" {
					errCh <- fmt.Errorf("seed %d: 503 with code %q, want overloaded: %s", seed, env.Error.Code, raw)
					return
				}
				if resp.Header.Get("Retry-After") == "" {
					errCh <- fmt.Errorf("seed %d: overloaded shed without Retry-After header", seed)
					return
				}
				shed503.Add(1)
			default:
				errCh <- fmt.Errorf("seed %d: unexpected HTTP %d under burst: %s", seed, resp.StatusCode, raw)
			}
		}(i + 1)
	}
	close(start)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	if ok200.Load() == 0 {
		t.Error("burst produced no successes — the admitted work should still complete")
	}
	if shed503.Load() == 0 {
		t.Error("burst produced no sheds — the gate was never saturated, the test proves nothing")
	}
	if got := ok200.Load() + shed503.Load(); got != burst {
		t.Errorf("%d responses accounted for, want %d", got, burst)
	}
	st := s.Engine().AdmissionStats()
	if st.Shed != shed503.Load() {
		t.Errorf("admission Shed = %d, but %d overloaded responses were served — every rejection must be counted exactly once", st.Shed, shed503.Load())
	}
	waitForZeroRefs(t, s)
}

// TestChaosMemoPopulatePanicIsContained arms a guaranteed panic in memo
// population — the one site with a recover boundary — and checks the blast
// radius: the request gets a typed internal error, the daemon survives, and
// the next fault-free request succeeds (no deadlocked coalescing waiters, no
// leaked pins).
func TestChaosMemoPopulatePanicIsContained(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	disable := faultinject.Enable(faultinject.Plan{
		Seed: 3,
		Sites: map[string]faultinject.Fault{
			faultinject.SiteMemoPopulate: {P: 1, Panic: true},
		},
	})
	defer disable()

	it := chaosItem{"gain", http.MethodGet, "/v1/gain?graph=test&L=4&R=20&set=1,2&nodes=0,5,9", ""}
	status, _, code, err := chaosDo(ts.Client(), ts.URL, it)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusInternalServerError || code != "internal" {
		t.Fatalf("panicking populate: HTTP %d code %q, want 500 internal", status, code)
	}

	disable()
	status, canon, code, err := chaosDo(ts.Client(), ts.URL, it)
	if err != nil || status != http.StatusOK {
		t.Fatalf("request after contained panic: status %d code %q err %v", status, code, err)
	}
	if len(canon.gains) != 3 {
		t.Fatalf("recovered gains %+v", canon)
	}
	waitForZeroRefs(t, s)
}
