// Package server implements rwdomd's HTTP query-serving layer: long-running
// selection service over graphs loaded at startup, with random-walk indexes
// built on demand, shared across requests through a refcounted LRU cache
// (internal/index.Cache), and identical selection queries coalesced into one
// computation.
//
// Endpoints (all JSON):
//
//	POST /v1/select     top-k seed selection (Problem 1 or 2; plain or lazy
//	                    greedy, sharded over per-request workers)
//	GET  /v1/gain       marginal gain of candidate nodes against a seed set
//	GET  /v1/objective  estimated objective value of a seed set
//	GET  /v1/topgains   top-B candidates by marginal gain against a seed set
//	GET  /healthz       liveness (503 while draining)
//	GET  /stats         index/memo cache traffic, in-flight gauge,
//	                    per-endpoint latency histograms
//
// The gain read path is memoized: empty-set answers come straight off the
// walk index (a per-problem gain vector memoized on the index, zero D-table
// work), and non-empty sets hit a refcounted LRU cache of frozen D-tables
// keyed by (graph, L, R, seed, problem, canonical set), populated at most
// once per set via singleflight and extended from the longest cached prefix
// when one is resident. Memoized and fresh answers are bit-for-bit
// identical — the parity test suite locks the two paths together.
//
// Shutdown is graceful: Serve stops accepting connections, lets in-flight
// queries finish within the drain budget, hard-cancels stragglers through
// the context plumbed into the greedy drivers, and spills resident indexes
// to disk so a restart starts warm.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/index"
)

// Config configures a Server. Graphs is required; zero values elsewhere get
// the documented defaults.
type Config struct {
	// Graphs maps the logical names requests use to loaded graphs.
	Graphs map[string]*graph.Graph
	// CacheSize bounds the number of resident indexes (default 8; < 0 means
	// unbounded). IndexBytes additionally bounds their summed heap footprint
	// (0 means unbounded); the budget is soft while every resident index is
	// pinned by an in-flight request — nothing is ever freed in use.
	CacheSize  int
	IndexBytes int64
	// SpillDir, when non-empty, persists evicted and shutdown-resident
	// indexes so later misses and restarts skip the build.
	SpillDir string
	// DefaultTimeout bounds a request that doesn't set timeout_ms (default
	// 30s). MaxTimeout caps what a request may ask for (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DrainTimeout bounds graceful shutdown: in-flight queries get this long
	// to finish before their contexts are hard-canceled (default 15s).
	DrainTimeout time.Duration
	// EvictInterval enables background eviction of indexes not used for one
	// full interval (0 disables it).
	EvictInterval time.Duration
	// DefaultWorkers is the per-request worker default; MaxWorkers caps the
	// request knob. Both default to runtime.GOMAXPROCS(0).
	DefaultWorkers int
	MaxWorkers     int
	// MaxR and MaxK cap per-request sample size and budget as a defense
	// against accidental resource exhaustion (defaults 1000 and 10000).
	MaxR int
	MaxK int
	// MemoSize bounds the number of memoized D-tables the gain read path
	// keeps resident (default 128; < 0 means unbounded); MemoBytes
	// additionally bounds their summed heap footprint (0 means unbounded,
	// soft while tables are pinned). DisableMemo turns the memoized read
	// path off entirely, so every /v1/gain, /v1/objective and /v1/topgains
	// request materializes a fresh table — the pre-memo behavior, kept for
	// parity testing and A/B benchmarking.
	MemoSize    int
	MemoBytes   int64
	DisableMemo bool
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.DefaultWorkers <= 0 {
		c.DefaultWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxR <= 0 {
		c.MaxR = 1000
	}
	if c.MaxK <= 0 {
		c.MaxK = 10000
	}
	if c.MemoSize == 0 {
		c.MemoSize = 128
	}
	return c
}

// Server serves selection queries over a fixed set of graphs. Create with
// New, expose via Handler or Serve, release resources with Close.
type Server struct {
	cfg   Config
	cache *index.Cache
	// memo is the memoized D-table cache behind /v1/gain, /v1/objective and
	// /v1/topgains; nil when cfg.DisableMemo.
	memo *memoCache
	sf   singleflight

	start    time.Time
	inFlight atomic.Int64
	draining atomic.Bool
	// selectsCoalesced counts /v1/select responses served from another
	// request's computation.
	selectsCoalesced atomic.Int64

	// lifecycle is canceled at hard-stop; every request's computation
	// context descends from it so drain-timeout and Close abort stragglers.
	lifecycle context.Context
	hardStop  context.CancelFunc

	mux         *http.ServeMux
	endpoints   map[string]*endpointMetrics
	stopEvictor func()
	closeOnce   sync.Once
	closeErr    error
}

// New validates cfg and returns a ready-to-serve Server.
func New(cfg Config) (*Server, error) {
	if len(cfg.Graphs) == 0 {
		return nil, errors.New("server: no graphs configured")
	}
	for name, g := range cfg.Graphs {
		if g == nil || g.N() == 0 {
			return nil, fmt.Errorf("server: graph %q is empty", name)
		}
	}
	cfg = cfg.withDefaults()
	cache, err := index.NewCache(cfg.CacheSize, cfg.IndexBytes, cfg.SpillDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		cache:     cache,
		start:     time.Now(),
		lifecycle: ctx,
		hardStop:  cancel,
		endpoints: make(map[string]*endpointMetrics),
	}
	if !cfg.DisableMemo {
		s.memo = newMemoCache(cfg.MemoSize, cfg.MemoBytes)
		// Link the two caches: when an index is evicted, every memoized
		// table built under its key is dropped (or orphaned until its last
		// in-flight reader releases it), so the eviction actually returns
		// the index's heap — without this, memo entries' *Index references
		// keep evicted indexes alive and daemon memory is bounded by
		// traffic history instead of the working set.
		cache.OnEviction(func(keys []index.CacheKey) { s.memo.dropIndexes(keys) })
	}
	s.mux = http.NewServeMux()
	s.route("POST /v1/select", "select", s.handleSelect)
	s.route("GET /v1/gain", "gain", s.handleGain)
	s.route("GET /v1/objective", "objective", s.handleObjective)
	s.route("GET /v1/topgains", "topgains", s.handleTopGains)
	s.route("GET /healthz", "healthz", s.handleHealthz)
	s.route("GET /stats", "stats", s.handleStats)
	if cfg.EvictInterval > 0 {
		s.stopEvictor = cache.StartEvictor(cfg.EvictInterval)
	}
	return s, nil
}

// Handler returns the root handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the index cache (for stats and tests).
func (s *Server) Cache() *index.Cache { return s.cache }

// MemoStats snapshots the memoized-gain cache counters; the zero value when
// memoization is disabled.
func (s *Server) MemoStats() MemoStats {
	if s.memo == nil {
		return MemoStats{}
	}
	return s.memo.Stats()
}

// route registers an instrumented handler: in-flight gauge, latency
// histogram, error counting, panic containment, and drain refusal.
func (s *Server) route(pattern, name string, h func(http.ResponseWriter, *http.Request)) {
	m := &endpointMetrics{}
	s.endpoints[name] = m
	alwaysOn := name == "healthz" || name == "stats"
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if !alwaysOn && s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
			return
		}
		s.inFlight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				writeError(sw, http.StatusInternalServerError, fmt.Errorf("panic: %v", p))
				if sw.status < 400 {
					// The handler wrote a success status before panicking, so
					// the status check below won't see the failure; count it
					// here (and only here, so panics aren't double-counted).
					m.errors.Add(1)
				}
			}
			m.requests.Add(1)
			if sw.status >= 400 {
				m.errors.Add(1)
			}
			m.lat.Observe(time.Since(start))
			s.inFlight.Add(-1)
		}()
		h(sw, r)
	})
}

// statusWriter records the response status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// requestCtx derives the wait/compute context for one request: bounded by
// the client timeout knob (clamped to MaxTimeout), the connection context,
// and the server lifecycle (so hard-stop aborts it).
func (s *Server) requestCtx(r *http.Request, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	stop := context.AfterFunc(s.lifecycle, cancel)
	return ctx, func() { stop(); cancel() }
}

// computeCtx derives the context shared selection computations run under:
// bounded by the leader's timeout and the server lifecycle but NOT by the
// leader's connection, so one departing client cannot fail the coalesced
// followers.
func (s *Server) computeCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return context.WithTimeout(s.lifecycle, timeout)
}

// Serve accepts connections on ln until ctx is canceled, then shuts down
// gracefully: new requests are refused, in-flight requests get
// cfg.DrainTimeout to finish, stragglers are hard-canceled through their
// computation contexts, and the index cache is spilled to disk. It returns
// nil after a clean (possibly forced) shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	err := srv.Shutdown(drainCtx)
	cancel()
	if err != nil {
		// Drain budget exhausted: abort remaining computations and give the
		// handlers a short moment to observe cancellation and respond.
		s.hardStop()
		forceCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = srv.Shutdown(forceCtx)
		cancel()
		_ = srv.Close()
	}
	<-errc // Serve has returned http.ErrServerClosed
	if cerr := s.Close(); cerr != nil {
		return cerr
	}
	return nil
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close releases server resources: aborts outstanding computations, stops
// the background evictor, and spills resident indexes to the spill
// directory. Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.hardStop()
		if s.stopEvictor != nil {
			s.stopEvictor()
		}
		s.closeErr = s.cache.SpillAll()
	})
	return s.closeErr
}

func (s *Server) graph(name string) (*graph.Graph, bool) {
	g, ok := s.cfg.Graphs[name]
	return g, ok
}
