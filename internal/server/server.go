// Package server is rwdomd's HTTP codec over the transport-agnostic query
// engine (internal/engine): every handler decodes its request, calls the
// corresponding Engine method, and encodes the reply. The serving brain —
// the refcounted LRU index cache, the memoized gain read path, selection
// coalescing, context plumbing — lives entirely in the engine, so this
// package owns only what is HTTP: routing, request parsing, the JSON error
// envelope, per-endpoint metrics, draining, and graceful shutdown.
//
// Endpoints (all JSON):
//
//	POST /v1/select     top-k seed selection (Problem 1 or 2; plain or lazy
//	                    greedy, sharded over per-request workers); with
//	                    ?stream=1 the reply is NDJSON round events — one
//	                    line per greedy pick as it is decided, then a final
//	                    line carrying the blocking-shape result
//	GET  /v1/gain       marginal gain of candidate nodes against a seed set
//	GET  /v1/objective  estimated objective value of a seed set
//	GET  /v1/topgains   top-B candidates by marginal gain against a seed set
//	POST /v1/graph/{name}/edges
//	                    mutate graph {name}: append nodes, add and remove
//	                    edges in one atomic delta; bumps the graph's
//	                    mutation epoch and repairs resident walk indexes
//	                    incrementally (in sharded mode the delta is
//	                    broadcast to every worker)
//	GET  /healthz       liveness (503 while draining)
//	GET  /stats         index/memo cache traffic, in-flight gauge,
//	                    per-endpoint latency histograms
//
// Errors share one machine-readable envelope on every path:
//
//	{"error":{"code":"bad_request","message":"k=0 outside [1, 10000]"}}
//
// with stable codes bad_request, not_found, conflict, stale_epoch,
// draining, overloaded, timeout and internal (engine.Code), always under
// Content-Type: application/json.
// The client package decodes the same envelope into typed errors, and
// retries draining and overloaded replies with jittered backoff.
//
// Overload is shed, not queued unboundedly: the engine's admission gate
// (Config.MaxConcurrent / MaxQueue) bounds concurrent heavy work, and a
// request that finds both the slots and the wait queue full — or whose
// deadline expires while queued — is rejected with 503 overloaded and a
// Retry-After header before any compute is spent. While the index for a
// read is unavailable (its build shed or failed), gain/objective/topgains
// still answer from an already-memoized frozen table, marked
// "degraded": true in the reply; /stats counts sheds, queue depth/waits
// and degraded answers.
//
// Shutdown is graceful: Serve stops accepting connections, lets in-flight
// queries finish within the drain budget, hard-cancels stragglers through
// the engine's lifecycle context, and spills resident indexes to disk so a
// restart starts warm.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/shard"
)

// Config configures a Server. Graphs is required; zero values elsewhere get
// the documented defaults. Most knobs pass straight through to
// engine.Config — the server adds only the HTTP-level drain budget.
type Config struct {
	// Graphs maps the logical names requests use to loaded graphs.
	Graphs map[string]*graph.Graph
	// CacheSize bounds the number of resident indexes (default 8; < 0 means
	// unbounded). IndexBytes additionally bounds their summed heap footprint
	// (0 means unbounded); the budget is soft while every resident index is
	// pinned by an in-flight request — nothing is ever freed in use.
	CacheSize  int
	IndexBytes int64
	// SpillDir, when non-empty, persists evicted and shutdown-resident
	// indexes so later misses and restarts skip the build.
	SpillDir string
	// SpillFormat selects what spill saves write: "v8" (compressed store
	// container, the default), "v8raw", or "v7" (legacy). MmapSpills serves
	// v8 spill loads store-backed off a read-only memory mapping instead of
	// deserializing them onto the heap. See engine.Config.
	SpillFormat string
	MmapSpills  bool
	// DefaultTimeout bounds a request that doesn't set timeout_ms (default
	// 30s). MaxTimeout caps what a request may ask for (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DrainTimeout bounds graceful shutdown: in-flight queries get this long
	// to finish before their contexts are hard-canceled (default 15s).
	DrainTimeout time.Duration
	// EvictInterval enables background eviction of indexes not used for one
	// full interval (0 disables it).
	EvictInterval time.Duration
	// DefaultWorkers is the per-request worker default; MaxWorkers caps the
	// request knob. Both default to runtime.GOMAXPROCS(0).
	DefaultWorkers int
	MaxWorkers     int
	// MaxR and MaxK cap per-request sample size and budget as a defense
	// against accidental resource exhaustion (defaults 1000 and 10000).
	MaxR int
	MaxK int
	// MemoSize bounds the number of memoized D-tables the gain read path
	// keeps resident (default 128; < 0 means unbounded); MemoBytes
	// additionally bounds their summed heap footprint (0 means unbounded,
	// soft while tables are pinned). DisableMemo turns the memoized read
	// path off entirely, so every /v1/gain, /v1/objective and /v1/topgains
	// request materializes a fresh table — the pre-memo behavior, kept for
	// parity testing and A/B benchmarking.
	MemoSize    int
	MemoBytes   int64
	DisableMemo bool
	// MaxConcurrent bounds concurrent heavy computations (selections and
	// index builds); MaxQueue bounds how many more may wait for a slot.
	// Requests beyond both are shed immediately with HTTP 503 and code
	// "overloaded". Defaults and semantics follow engine.Config: 0 means
	// 2×GOMAXPROCS slots with an 8×slots queue; MaxConcurrent < 0 disables
	// admission control. RetryAfterHint is the Retry-After value attached to
	// shed responses (default 1s).
	MaxConcurrent  int
	MaxQueue       int
	RetryAfterHint time.Duration
	// Shards > 1 enables in-process replicate-sharded serving: the public
	// select/read routes are answered by a coordinator over Shards engines,
	// each materializing only its replicate subrange of every index, merged
	// bit-identically to unsharded serving. Peers instead lists remote
	// worker daemon base URLs, one shard per worker (the workers serve the
	// same graphs and answer this daemon's /v1/partial scatter requests).
	// At most one of the two may be set. Either way this daemon keeps its
	// own full engine for the worker-side /v1/partial endpoints, so
	// coordinators and workers can be layered.
	Shards int
	Peers  []string
	// DefaultEpsilon > 0 turns the adaptive replicate budget on for every
	// select whose body does not set its own epsilon (see
	// engine.Config.DefaultEpsilon); DefaultDelta is the matching confidence
	// default (0.05 when unset). Accuracy requires the full replicate range
	// in one process, so a sharded deployment (Shards/Peers) rejects a
	// non-zero DefaultEpsilon at startup — and per-request epsilons with a
	// 501. AccuracyChunk overrides the replicate-chunk width adaptive runs
	// build per step (0 = ceil(R/8)); in sharded mode it instead aligns the
	// per-worker replicate spans to chunk multiples.
	DefaultEpsilon float64
	DefaultDelta   float64
	AccuracyChunk  int
}

func (c Config) withDefaults() Config {
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	// Mirror the engine's request-cap defaults so codec-level validation
	// messages quote the limits actually enforced.
	if c.MaxR <= 0 {
		c.MaxR = 1000
	}
	if c.MaxK <= 0 {
		c.MaxK = 10000
	}
	return c
}

// engineConfig maps the server config onto the engine's.
func (c Config) engineConfig() engine.Config {
	return engine.Config{
		Graphs:         c.Graphs,
		CacheSize:      c.CacheSize,
		IndexBytes:     c.IndexBytes,
		SpillDir:       c.SpillDir,
		SpillFormat:    c.SpillFormat,
		MmapSpills:     c.MmapSpills,
		EvictInterval:  c.EvictInterval,
		DefaultTimeout: c.DefaultTimeout,
		MaxTimeout:     c.MaxTimeout,
		DefaultWorkers: c.DefaultWorkers,
		MaxWorkers:     c.MaxWorkers,
		MaxR:           c.MaxR,
		MaxK:           c.MaxK,
		MemoSize:       c.MemoSize,
		MemoBytes:      c.MemoBytes,
		DisableMemo:    c.DisableMemo,
		MaxConcurrent:  c.MaxConcurrent,
		MaxQueue:       c.MaxQueue,
		RetryAfterHint: c.RetryAfterHint,
		DefaultEpsilon: c.DefaultEpsilon,
		DefaultDelta:   c.DefaultDelta,
		AccuracyChunk:  c.AccuracyChunk,
	}
}

// querier is the read/select surface the public routes dispatch through:
// the engine directly in unsharded mode, the scatter-gather coordinator in
// sharded mode. Both produce bit-identical answers; handlers cannot tell
// them apart.
type querier interface {
	Select(context.Context, engine.SelectRequest) (*engine.SelectResult, error)
	SelectStream(context.Context, engine.SelectRequest, func(engine.Round) error) (*engine.SelectResult, error)
	Gain(context.Context, engine.GainRequest) (*engine.GainResult, error)
	Objective(context.Context, engine.ObjectiveRequest) (*engine.ObjectiveResult, error)
	TopGains(context.Context, engine.TopGainsRequest) (*engine.TopGainsResult, error)
}

// Server serves selection queries over a fixed set of graphs. Create with
// New, expose via Handler or Serve, release resources with Close.
type Server struct {
	cfg    Config
	engine *engine.Engine
	// coord is non-nil in sharded mode; q is where the public select/read
	// routes go (coord when sharded, engine otherwise). The engine always
	// serves the worker-side /v1/partial endpoints and /stats.
	coord *shard.Coordinator
	q     querier

	start    time.Time
	inFlight atomic.Int64
	draining atomic.Bool

	// mutateMu serializes graph mutations across the server's appliers (its
	// own engine — which always serves /v1/partial — and, in sharded mode,
	// the coordinator's workers), so every applier observes deltas in the
	// same order. Deltas do not commute in general; without this a pair of
	// concurrent POSTs could reach the engine and the workers in opposite
	// orders and diverge at the same epoch.
	mutateMu sync.Mutex

	mux       *http.ServeMux
	endpoints map[string]*endpointMetrics
	closeOnce sync.Once
	closeErr  error
}

// New validates cfg and returns a ready-to-serve Server.
func New(cfg Config) (*Server, error) {
	if len(cfg.Graphs) == 0 {
		return nil, errors.New("server: no graphs configured")
	}
	for name, g := range cfg.Graphs {
		if g == nil || g.N() == 0 {
			return nil, fmt.Errorf("server: graph %q is empty", name)
		}
	}
	if cfg.Shards > 1 && len(cfg.Peers) > 0 {
		return nil, errors.New("server: Shards and Peers are mutually exclusive")
	}
	if cfg.DefaultEpsilon > 0 && (cfg.Shards > 1 || len(cfg.Peers) > 0) {
		return nil, errors.New("server: a default accuracy target (epsilon) is not supported on sharded deployments")
	}
	cfg = cfg.withDefaults()
	eng, err := engine.New(cfg.engineConfig())
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		engine:    eng,
		start:     time.Now(),
		endpoints: make(map[string]*endpointMetrics),
	}
	s.q = eng
	shardCfg := shard.Config{
		Graphs:         cfg.Graphs,
		DefaultTimeout: cfg.DefaultTimeout,
		MaxTimeout:     cfg.MaxTimeout,
		MaxR:           cfg.MaxR,
		MaxK:           cfg.MaxK,
		ChunkSize:      cfg.AccuracyChunk,
	}
	switch {
	case cfg.Shards > 1:
		co, err := shard.NewLocal(shardCfg, cfg.Shards, cfg.engineConfig())
		if err != nil {
			eng.Close()
			return nil, err
		}
		s.coord, s.q = co, co
	case len(cfg.Peers) > 0:
		co, err := shard.NewRemote(shardCfg, cfg.Peers)
		if err != nil {
			eng.Close()
			return nil, err
		}
		s.coord, s.q = co, co
	}
	s.mux = http.NewServeMux()
	s.route("POST /v1/select", "select", s.handleSelect)
	s.route("GET /v1/gain", "gain", s.handleGain)
	s.route("GET /v1/objective", "objective", s.handleObjective)
	s.route("GET /v1/topgains", "topgains", s.handleTopGains)
	s.route("POST /v1/graph/{name}/edges", "mutate", s.handleApplyDelta)
	s.route("GET /v1/partial/gain", "partial_gain", s.handlePartialGain)
	s.route("GET /v1/partial/topgains", "partial_topgains", s.handlePartialTopGains)
	s.route("GET /healthz", "healthz", s.handleHealthz)
	s.route("GET /stats", "stats", s.handleStats)
	return s, nil
}

// Coordinator exposes the scatter-gather coordinator (nil in unsharded
// mode), for stats and tests.
func (s *Server) Coordinator() *shard.Coordinator { return s.coord }

// Handler returns the root handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Engine exposes the underlying query engine (for stats and tests).
func (s *Server) Engine() *engine.Engine { return s.engine }

// Cache exposes the index cache (for stats and tests).
func (s *Server) Cache() *index.Cache { return s.engine.Cache() }

// MemoStats snapshots the memoized-gain cache counters; the zero value when
// memoization is disabled.
func (s *Server) MemoStats() MemoStats { return s.engine.MemoStats() }

// MemoStats re-exports the engine's memo counters for transports and tests
// that predate the engine extraction.
type MemoStats = engine.MemoStats

// route registers an instrumented handler: in-flight gauge, latency
// histogram, error counting, panic containment, and drain refusal.
func (s *Server) route(pattern, name string, h func(http.ResponseWriter, *http.Request)) {
	m := &endpointMetrics{}
	s.endpoints[name] = m
	alwaysOn := name == "healthz" || name == "stats"
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if !alwaysOn && s.draining.Load() {
			// Hint a short back-off: by the time a client retries, either the
			// replacement process is up or the connection is refused outright.
			w.Header().Set("Retry-After", "1")
			writeErrorCode(w, engine.CodeDraining, "server is draining")
			return
		}
		s.inFlight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				writeErrorCode(sw, engine.CodeInternal, fmt.Sprintf("panic: %v", p))
				if sw.status < 400 {
					// The handler wrote a success status before panicking, so
					// the status check below won't see the failure; count it
					// here (and only here, so panics aren't double-counted).
					m.errors.Add(1)
				}
			}
			m.requests.Add(1)
			if sw.status >= 400 {
				m.errors.Add(1)
			}
			m.lat.Observe(time.Since(start))
			s.inFlight.Add(-1)
		}()
		h(sw, r)
	})
}

// statusWriter records the response status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards streaming flushes so NDJSON rounds leave the process as
// they are decided rather than sitting in the response buffer.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Serve accepts connections on ln until ctx is canceled, then shuts down
// gracefully: new requests are refused, in-flight requests get
// cfg.DrainTimeout to finish, stragglers are hard-canceled through the
// engine lifecycle their computation contexts descend from, and the index
// cache is spilled to disk. It returns nil after a clean (possibly forced)
// shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true)
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	err := srv.Shutdown(drainCtx)
	cancel()
	if err != nil {
		// Drain budget exhausted: abort remaining computations and give the
		// handlers a short moment to observe cancellation and respond.
		s.engine.Abort()
		forceCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = srv.Shutdown(forceCtx)
		cancel()
		_ = srv.Close()
	}
	<-errc // Serve has returned http.ErrServerClosed
	if cerr := s.Close(); cerr != nil {
		return cerr
	}
	return nil
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close releases server resources by closing the engine (outstanding
// computations are aborted, the background evictor stops, and resident
// indexes spill to the spill directory) and, in sharded mode, the
// coordinator with its worker connections. Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closeErr = s.engine.Close()
		if s.coord != nil {
			if err := s.coord.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}
