package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/index"
)

// ---------------------------------------------------------------------------
// JSON plumbing
// ---------------------------------------------------------------------------

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// statusFor maps computation errors to HTTP statuses: timeouts to 504,
// cancellation (drain/hard-stop/client gone) to 503, the rest to 500.
func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// errUnknownGraph marks requests naming a graph the daemon doesn't serve.
var errUnknownGraph = errors.New("unknown graph")

// writeRequestError maps parameter-resolution errors: unknown graph to 404,
// everything else to 400.
func writeRequestError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if errors.Is(err, errUnknownGraph) {
		status = http.StatusNotFound
	}
	writeError(w, status, err)
}

// parseProblem accepts 1/2, f1/f2, hitting/coverage (case-insensitive).
func parseProblem(s string) (index.Problem, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "1", "f1", "hitting":
		return index.Problem1, nil
	case "", "2", "f2", "coverage":
		return index.Problem2, nil
	default:
		return 0, fmt.Errorf("unknown problem %q (want 1/hitting or 2/coverage)", s)
	}
}

// problemJSON lets /v1/select bodies write "problem": 2 or "problem":
// "coverage" interchangeably.
type problemJSON struct{ p index.Problem }

func (p *problemJSON) UnmarshalJSON(b []byte) error {
	var asString string
	if err := json.Unmarshal(b, &asString); err != nil {
		var asInt int
		if err := json.Unmarshal(b, &asInt); err != nil {
			return fmt.Errorf("problem must be a number or string, got %s", b)
		}
		asString = strconv.Itoa(asInt)
	}
	parsed, err := parseProblem(asString)
	if err != nil {
		return err
	}
	p.p = parsed
	return nil
}

// parseNodeList parses "1,5,9" into validated node ids for g.
func parseNodeList(s string, g *graph.Graph) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	nodes := make([]int, 0, len(parts))
	for _, part := range parts {
		u, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad node id %q", part)
		}
		if u < 0 || u >= g.N() {
			return nil, fmt.Errorf("node %d outside [0, %d)", u, g.N())
		}
		nodes = append(nodes, u)
	}
	return nodes, nil
}

// ---------------------------------------------------------------------------
// Shared index/parameter resolution
// ---------------------------------------------------------------------------

// indexParams are the request knobs that identify one materialized index.
type indexParams struct {
	graphName string
	g         *graph.Graph
	L, R      int
	seed      uint64
}

func (s *Server) resolveIndexParams(graphName string, L, R int, seed uint64) (indexParams, error) {
	g, ok := s.graph(graphName)
	if !ok {
		return indexParams{}, fmt.Errorf("%w %q", errUnknownGraph, graphName)
	}
	if L < 1 || L > 1<<16-1 {
		return indexParams{}, fmt.Errorf("L=%d outside [1, %d]", L, 1<<16-1)
	}
	if R == 0 {
		R = 100 // the paper's recommended sample size
	}
	if R < 1 || R > s.cfg.MaxR {
		return indexParams{}, fmt.Errorf("R=%d outside [1, %d]", R, s.cfg.MaxR)
	}
	return indexParams{graphName: graphName, g: g, L: L, R: R, seed: seed}, nil
}

func (p indexParams) cacheKey() index.CacheKey {
	return index.CacheKey{Graph: p.graphName, L: p.L, R: p.R, Seed: p.seed}
}

// acquireIndex fetches (or builds) the index for p, reporting whether this
// call triggered the build.
func (s *Server) acquireIndex(p indexParams, workers int) (h *index.Handle, built bool, err error) {
	h, err = s.cache.Acquire(p.cacheKey(), p.g, func() (*index.Index, error) {
		built = true
		return index.BuildWorkers(p.g, p.L, p.R, p.seed, workers)
	})
	return h, built, err
}

// acquired is one acquireIndex outcome.
type acquired struct {
	h     *index.Handle
	built bool
	err   error
}

// acquireIndexCtx is acquireIndex bounded by ctx. Index construction itself
// cannot be canceled mid-flight, so on ctx death the request gets its
// timeout/drain error immediately while the build detaches, finishes in the
// background, and still populates the cache for the next request (its
// handle is released there).
func (s *Server) acquireIndexCtx(ctx context.Context, p indexParams, workers int) (*index.Handle, bool, error) {
	done := make(chan acquired, 1)
	go func() {
		h, built, err := s.acquireIndex(p, workers)
		done <- acquired{h: h, built: built, err: err}
	}()
	select {
	case a := <-done:
		return a.h, a.built, a.err
	case <-ctx.Done():
		go func() {
			if a := <-done; a.err == nil {
				a.h.Release()
			}
		}()
		return nil, false, ctx.Err()
	}
}

func (s *Server) clampWorkers(workers int) int {
	if workers <= 0 {
		return s.cfg.DefaultWorkers
	}
	if workers > s.cfg.MaxWorkers {
		return s.cfg.MaxWorkers
	}
	return workers
}

// ---------------------------------------------------------------------------
// POST /v1/select
// ---------------------------------------------------------------------------

// SelectRequest is the /v1/select body.
type SelectRequest struct {
	// Graph names one of the graphs the daemon was started with.
	Graph string `json:"graph"`
	// Problem is 1/"hitting" or 2/"coverage" (default 2).
	Problem problemJSON `json:"problem"`
	// K is the selection budget.
	K int `json:"k"`
	// L is the walk-length bound; R the per-node sample size (default 100).
	L int `json:"L"`
	R int `json:"R"`
	// Seed fixes the walk sampling (default 1); part of the index identity.
	Seed *uint64 `json:"seed"`
	// Algorithm picks the greedy driver: "lazy" (CELF, the default) or
	// "plain". Both shard gain evaluations over Workers goroutines.
	Algorithm string `json:"algorithm"`
	// Workers shards index construction and gain evaluation (0 = server
	// default; capped at the server max). Selections are identical for
	// every value.
	Workers int `json:"workers"`
	// TimeoutMS bounds the request (0 = server default). A request whose
	// budget expires during an index build gets its 504 immediately while
	// the build detaches and still warms the cache; an expired selection
	// loop is canceled outright.
	TimeoutMS int `json:"timeout_ms"`
}

// SelectResponse is the /v1/select reply.
type SelectResponse struct {
	Graph       string    `json:"graph"`
	Problem     string    `json:"problem"`
	K           int       `json:"k"`
	L           int       `json:"L"`
	R           int       `json:"R"`
	Seed        uint64    `json:"seed"`
	Algorithm   string    `json:"algorithm"`
	Workers     int       `json:"workers"`
	Nodes       []int     `json:"nodes"`
	Gains       []float64 `json:"gains"`
	Objective   float64   `json:"objective"`
	Evaluations int       `json:"evaluations"`
	BuildMS     float64   `json:"build_ms"`
	SelectMS    float64   `json:"select_ms"`
	// IndexCached reports that the walk index was already materialized (or
	// loaded from spill) rather than built for this request; Coalesced that
	// the whole selection was shared with an identical concurrent request.
	IndexCached bool `json:"index_cached"`
	Coalesced   bool `json:"coalesced"`
}

// selectResult is what one de-duplicated selection computation produces.
type selectResult struct {
	sel         *core.Selection
	indexCached bool
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req SelectRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	seed := uint64(1)
	if req.Seed != nil {
		seed = *req.Seed
	}
	params, err := s.resolveIndexParams(req.Graph, req.L, req.R, seed)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	if req.K < 1 || req.K > s.cfg.MaxK {
		writeError(w, http.StatusBadRequest, fmt.Errorf("k=%d outside [1, %d]", req.K, s.cfg.MaxK))
		return
	}
	var lazy bool
	switch strings.ToLower(req.Algorithm) {
	case "", "lazy":
		lazy = true
	case "plain":
		lazy = false
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown algorithm %q (want lazy or plain)", req.Algorithm))
		return
	}
	workers := s.clampWorkers(req.Workers)
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond

	waitCtx, cancel := s.requestCtx(r, timeout)
	defer cancel()

	// Identical selections (same graph, problem, budget and index identity)
	// coalesce into one computation; workers and timeout deliberately stay
	// out of the key because they cannot change the selected nodes, only
	// wall-clock cost — the leader's knobs drive the shared run. The
	// computation context descends from the server lifecycle, not any one
	// client connection, but is canceled early (via the singleflight stop
	// channel) once every interested client is gone, so abandoned
	// selections stop burning cores.
	key := fmt.Sprintf("%s|%s|k=%d|lazy=%t", params.cacheKey(), req.Problem.problem(), req.K, lazy)
	compute := func(stop <-chan struct{}) (any, error) {
		ctx, cancel := s.computeCtx(timeout)
		defer cancel()
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-stop:
				cancel()
			case <-watchDone:
			}
		}()
		return s.runSelect(ctx, params, req.Problem.problem(), req.K, lazy, workers)
	}
	v, err, shared := s.sf.Do(waitCtx, key, compute)
	if shared && err != nil && waitCtx.Err() == nil &&
		(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
		// The shared run died on the leader's budget (or the leader walked
		// away), but this request's own budget is intact — rerun with our
		// own knobs, coalescing with any other retriers.
		v, err, shared = s.sf.Do(waitCtx, key, compute)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) && errors.Is(waitCtx.Err(), context.DeadlineExceeded) {
			// The deadline and the last-waiter-gone abort race when this
			// request's own budget expires; report the timeout, not the
			// cancellation it caused.
			err = context.DeadlineExceeded
		}
		writeError(w, statusFor(err), err)
		return
	}
	if shared {
		s.selectsCoalesced.Add(1)
	}
	res := v.(*selectResult)
	writeJSON(w, http.StatusOK, SelectResponse{
		Graph:       req.Graph,
		Problem:     req.Problem.problem().String(),
		K:           req.K,
		L:           params.L,
		R:           params.R,
		Seed:        seed,
		Algorithm:   map[bool]string{true: "lazy", false: "plain"}[lazy],
		Workers:     workers,
		Nodes:       res.sel.Nodes,
		Gains:       res.sel.Gains,
		Objective:   res.sel.Objective(),
		Evaluations: res.sel.Evaluations,
		BuildMS:     durationMS(res.sel.BuildTime),
		SelectMS:    durationMS(res.sel.SelectTime),
		IndexCached: res.indexCached,
		Coalesced:   shared,
	})
}

// runSelect executes one de-duplicated selection under the caller-supplied
// computation context.
func (s *Server) runSelect(ctx context.Context, params indexParams, p index.Problem, k int, lazy bool, workers int) (*selectResult, error) {
	h, built, err := s.acquireIndexCtx(ctx, params, workers)
	if err != nil {
		return nil, err
	}
	defer h.Release()
	sel, err := core.ApproxWithIndexCtx(ctx, h.Index(), p, k, lazy, workers)
	if err != nil {
		return nil, err
	}
	return &selectResult{sel: sel, indexCached: !built}, nil
}

func (p problemJSON) problem() index.Problem {
	if p.p == 0 {
		return index.Problem2
	}
	return p.p
}

func durationMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// ---------------------------------------------------------------------------
// GET /v1/gain
// ---------------------------------------------------------------------------

// GainResponse is the /v1/gain reply: Gains[i] is the marginal gain of
// adding Nodes[i] to the current set.
//
// Cost note: the read path is memoized, so the n·R D-table for a seed set
// is materialized at most once (reusing the longest cached prefix of the
// set when one is resident) and every later request for the same set is a
// pure read of the frozen table; empty-set requests are answered from the
// index's memoized empty-set gain vector with no D-table work at all. Memo
// reports which of those paths served this request (see the memo* status
// constants); "off" means the daemon runs with memoization disabled and
// paid a fresh table replay.
type GainResponse struct {
	Graph       string    `json:"graph"`
	Problem     string    `json:"problem"`
	Set         []int     `json:"set"`
	Nodes       []int     `json:"nodes"`
	Gains       []float64 `json:"gains"`
	IndexCached bool      `json:"index_cached"`
	Memo        string    `json:"memo"`
}

// queryIndexParams parses the common graph/L/R/seed/problem query
// parameters of the GET endpoints.
func (s *Server) queryIndexParams(r *http.Request) (indexParams, index.Problem, error) {
	q := r.URL.Query()
	p, err := parseProblem(q.Get("problem"))
	if err != nil {
		return indexParams{}, 0, err
	}
	atoi := func(key string, def int) (int, error) {
		v := q.Get(key)
		if v == "" {
			return def, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("bad %s=%q", key, v)
		}
		return n, nil
	}
	L, err := atoi("L", 0)
	if err != nil {
		return indexParams{}, 0, err
	}
	R, err := atoi("R", 0)
	if err != nil {
		return indexParams{}, 0, err
	}
	seed := uint64(1)
	if v := q.Get("seed"); v != "" {
		seed, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			return indexParams{}, 0, fmt.Errorf("bad seed=%q", v)
		}
	}
	params, err := s.resolveIndexParams(q.Get("graph"), L, R, seed)
	return params, p, err
}

// memoizedTable resolves the serving D-table for a non-empty canonical set:
// the memo cache when enabled, a fresh replay otherwise. The returned
// release func must be called once the table has been read; status is the
// memo* constant describing which path served it.
func (s *Server) memoizedTable(params indexParams, p index.Problem, canon []int, setKey string, ix *index.Index) (d *index.DTable, release func(), status string, err error) {
	if s.memo != nil {
		mh, status, err := s.memo.acquire(memoKey{idx: params.cacheKey(), problem: p, set: setKey}, canon, ix)
		if err != nil {
			return nil, nil, "", err
		}
		return mh.Table(), mh.Release, status, nil
	}
	d, err = ix.NewDTable(p)
	if err != nil {
		return nil, nil, "", err
	}
	for _, u := range canon {
		d.Update(u)
	}
	return d, func() {}, memoOff, nil
}

func (s *Server) handleGain(w http.ResponseWriter, r *http.Request) {
	params, p, err := s.queryIndexParams(r)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	nodes, err := parseNodeList(r.URL.Query().Get("nodes"), params.g)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(nodes) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("nodes parameter is required (comma-separated ids)"))
		return
	}
	set, err := parseNodeList(r.URL.Query().Get("set"), params.g)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	h, built, err := s.acquireIndexCtx(ctx, params, s.cfg.DefaultWorkers)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	defer h.Release()
	canon, setKey := canonicalSet(set)
	var gains []float64
	var status string
	if s.memo != nil && len(canon) == 0 {
		// Set-free gains come straight off the index: no D-table exists on
		// this path at all.
		all, err := h.Index().EmptySetGains(p)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		gains = make([]float64, 0, len(nodes))
		for _, u := range nodes {
			gains = append(gains, all[u])
		}
		status = memoEmpty
		s.memo.noteEmptyHit()
	} else {
		d, release, st, err := s.memoizedTable(params, p, canon, setKey, h.Index())
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		gains = d.GainBatch(nodes, make([]float64, 0, len(nodes)))
		release()
		status = st
	}
	writeJSON(w, http.StatusOK, GainResponse{
		Graph:       params.graphName,
		Problem:     p.String(),
		Set:         set,
		Nodes:       nodes,
		Gains:       gains,
		IndexCached: !built,
		Memo:        status,
	})
}

// ---------------------------------------------------------------------------
// GET /v1/objective
// ---------------------------------------------------------------------------

// ObjectiveResponse is the /v1/objective reply.
type ObjectiveResponse struct {
	Graph       string  `json:"graph"`
	Problem     string  `json:"problem"`
	Set         []int   `json:"set"`
	Objective   float64 `json:"objective"`
	IndexCached bool    `json:"index_cached"`
	Memo        string  `json:"memo"`
}

func (s *Server) handleObjective(w http.ResponseWriter, r *http.Request) {
	params, p, err := s.queryIndexParams(r)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	set, err := parseNodeList(r.URL.Query().Get("set"), params.g)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	h, built, err := s.acquireIndexCtx(ctx, params, s.cfg.DefaultWorkers)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	defer h.Release()
	canon, setKey := canonicalSet(set)
	var objective float64
	var status string
	switch {
	case s.memo != nil && len(canon) == 0:
		objective, err = h.Index().EmptySetObjective(p)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		status = memoEmpty
		s.memo.noteEmptyHit()
	case s.memo != nil:
		// The objective is computed once at population time (the D-table
		// scan memoizes saturation state, so it must not run on the shared
		// frozen table) and served as a stored scalar afterwards.
		mh, st, err := s.memo.acquire(memoKey{idx: params.cacheKey(), problem: p, set: setKey}, canon, h.Index())
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		objective = mh.Objective()
		mh.Release()
		status = st
	default:
		d, err := h.Index().NewDTable(p)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		members := make([]bool, params.g.N())
		for _, u := range set {
			if !members[u] {
				members[u] = true
				d.Update(u)
			}
		}
		objective = d.EstimateObjective(members)
		status = memoOff
	}
	writeJSON(w, http.StatusOK, ObjectiveResponse{
		Graph:       params.graphName,
		Problem:     p.String(),
		Set:         set,
		Objective:   objective,
		IndexCached: !built,
		Memo:        status,
	})
}

// ---------------------------------------------------------------------------
// GET /v1/topgains
// ---------------------------------------------------------------------------

// TopGainsResponse is the /v1/topgains reply: the B best candidates by
// marginal gain against the given seed set (set members excluded), gain
// descending with ties broken by ascending node id.
type TopGainsResponse struct {
	Graph       string    `json:"graph"`
	Problem     string    `json:"problem"`
	Set         []int     `json:"set"`
	B           int       `json:"b"`
	Nodes       []int     `json:"nodes"`
	Gains       []float64 `json:"gains"`
	IndexCached bool      `json:"index_cached"`
	Memo        string    `json:"memo"`
}

func (s *Server) handleTopGains(w http.ResponseWriter, r *http.Request) {
	params, p, err := s.queryIndexParams(r)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	q := r.URL.Query()
	// Default B is 10, clamped so a tighter operator-configured MaxK bounds
	// the no-param path too.
	b := 10
	if b > s.cfg.MaxK {
		b = s.cfg.MaxK
	}
	if v := q.Get("b"); v != "" {
		b, err = strconv.Atoi(v)
		if err != nil || b < 1 || b > s.cfg.MaxK {
			writeError(w, http.StatusBadRequest, fmt.Errorf("b=%q outside [1, %d]", v, s.cfg.MaxK))
			return
		}
	}
	workers := s.cfg.DefaultWorkers
	if v := q.Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad workers=%q", v))
			return
		}
		workers = s.clampWorkers(n)
	}
	set, err := parseNodeList(q.Get("set"), params.g)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	h, built, err := s.acquireIndexCtx(ctx, params, workers)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	defer h.Release()
	canon, setKey := canonicalSet(set)
	var nodes []int
	var gains []float64
	var status string
	if s.memo != nil && len(canon) == 0 {
		// Empty set: rank the index's memoized gain vector directly.
		all, err := h.Index().EmptySetGains(p)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		nodes, gains = core.TopOfGains(all, nil, b)
		status = memoEmpty
		s.memo.noteEmptyHit()
	} else {
		d, release, st, err := s.memoizedTable(params, p, canon, setKey, h.Index())
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		exclude := make([]bool, params.g.N())
		for _, u := range canon {
			exclude[u] = true
		}
		nodes, gains, err = core.TopGains(ctx, d, b, exclude, workers)
		release()
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		status = st
	}
	writeJSON(w, http.StatusOK, TopGainsResponse{
		Graph:       params.graphName,
		Problem:     p.String(),
		Set:         set,
		B:           b,
		Nodes:       nodes,
		Gains:       gains,
		IndexCached: !built,
		Memo:        status,
	})
}

// ---------------------------------------------------------------------------
// GET /healthz and GET /stats
// ---------------------------------------------------------------------------

// HealthResponse is the /healthz reply.
type HealthResponse struct {
	Status  string  `json:"status"` // "ok" or "draining"
	UptimeS float64 `json:"uptime_s"`
	Graphs  int     `json:"graphs"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:  "ok",
		UptimeS: time.Since(s.start).Seconds(),
		Graphs:  len(s.cfg.Graphs),
	}
	status := http.StatusOK
	if s.draining.Load() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// MemoStatsJSON mirrors MemoStats for /stats, plus whether the memoized
// read path is enabled at all.
type MemoStatsJSON struct {
	Enabled        bool  `json:"enabled"`
	Hits           int64 `json:"hits"`
	Coalesced      int64 `json:"coalesced_populates"`
	Misses         int64 `json:"misses"`
	PrefixExtended int64 `json:"prefix_extended"`
	EmptyHits      int64 `json:"empty_hits"`
	Evictions      int64 `json:"evictions"`
	Invalidated    int64 `json:"invalidated"`
	PopulateErrors int64 `json:"populate_errors"`
	Resident       int   `json:"resident"`
	ResidentBytes  int64 `json:"resident_bytes"`
}

// CacheStatsJSON mirrors index.CacheStats for /stats.
type CacheStatsJSON struct {
	Hits          int64    `json:"hits"`
	Coalesced     int64    `json:"coalesced_builds"`
	Misses        int64    `json:"misses"`
	SpillLoads    int64    `json:"spill_loads"`
	SpillSaves    int64    `json:"spill_saves"`
	Evictions     int64    `json:"evictions"`
	BuildErrors   int64    `json:"build_errors"`
	Resident      int      `json:"resident"`
	ResidentBytes int64    `json:"resident_bytes"`
	Keys          []string `json:"keys"`
}

// StatsResponse is the /stats reply.
type StatsResponse struct {
	UptimeS          float64                     `json:"uptime_s"`
	Draining         bool                        `json:"draining"`
	InFlight         int64                       `json:"in_flight"`
	SelectsCoalesced int64                       `json:"selects_coalesced"`
	Cache            CacheStatsJSON              `json:"cache"`
	Memo             MemoStatsJSON               `json:"memo"`
	Endpoints        map[string]EndpointSnapshot `json:"endpoints"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	withBuckets := r.URL.Query().Get("buckets") != "0"
	cs := s.cache.Stats()
	keys := s.cache.Keys()
	keyStrings := make([]string, len(keys))
	for i, k := range keys {
		keyStrings[i] = k.String()
	}
	endpoints := make(map[string]EndpointSnapshot, len(s.endpoints))
	for name, m := range s.endpoints {
		endpoints[name] = m.Snapshot(withBuckets)
	}
	var memo MemoStatsJSON
	if s.memo != nil {
		ms := s.memo.Stats()
		memo = MemoStatsJSON{
			Enabled:        true,
			Hits:           ms.Hits,
			Coalesced:      ms.Coalesced,
			Misses:         ms.Misses,
			PrefixExtended: ms.PrefixExtended,
			EmptyHits:      ms.EmptyHits,
			Evictions:      ms.Evictions,
			Invalidated:    ms.Invalidated,
			PopulateErrors: ms.PopulateErrors,
			Resident:       ms.Resident,
			ResidentBytes:  ms.ResidentBytes,
		}
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeS:          time.Since(s.start).Seconds(),
		Draining:         s.draining.Load(),
		InFlight:         s.inFlight.Load(),
		SelectsCoalesced: s.selectsCoalesced.Load(),
		Memo:             memo,
		Cache: CacheStatsJSON{
			Hits:          cs.Hits,
			Coalesced:     cs.Coalesced,
			Misses:        cs.Misses,
			SpillLoads:    cs.SpillLoads,
			SpillSaves:    cs.SpillSaves,
			Evictions:     cs.Evictions,
			BuildErrors:   cs.BuildErrors,
			Resident:      cs.Resident,
			ResidentBytes: cs.ResidentBytes,
			Keys:          keyStrings,
		},
		Endpoints: endpoints,
	})
}
