package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/index"
)

// ---------------------------------------------------------------------------
// JSON plumbing: one error envelope for every path
// ---------------------------------------------------------------------------

// ErrorBody is the machine-readable error payload: a stable code
// (engine.Code) plus a human-readable message.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the JSON error envelope every endpoint shares:
// {"error":{"code":"...","message":"..."}}. The client package decodes the
// same shape into typed errors.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// Memo status constants re-exported for the parity tests and handlers.
const (
	memoHit      = engine.MemoHit
	memoMiss     = engine.MemoMiss
	memoExtended = engine.MemoExtended
	memoEmpty    = engine.MemoEmpty
	memoOff      = engine.MemoOff
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeErrorCode writes the envelope for an explicit code.
func writeErrorCode(w http.ResponseWriter, code engine.Code, message string) {
	writeJSON(w, engine.HTTPStatus(code), ErrorResponse{Error: ErrorBody{Code: string(code), Message: message}})
}

// writeEngineError maps any engine method error onto the envelope: the
// engine's stable code picks both the HTTP status and the serialized code.
// Shed (overloaded) errors carry a backoff hint, serialized as a standard
// Retry-After header (integer seconds, rounded up) for clients and proxies.
func writeEngineError(w http.ResponseWriter, err error) {
	if ra := engine.RetryAfterOf(err); ra > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt(int64((ra+time.Second-1)/time.Second), 10))
	}
	writeErrorCode(w, engine.CodeOf(err), err.Error())
}

// writeBadRequest writes a bad_request envelope for codec-level decode
// failures.
func writeBadRequest(w http.ResponseWriter, err error) {
	writeErrorCode(w, engine.CodeBadRequest, err.Error())
}

// parseProblem accepts 1/2, f1/f2, hitting/coverage (case-insensitive).
func parseProblem(s string) (index.Problem, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "1", "f1", "hitting":
		return index.Problem1, nil
	case "", "2", "f2", "coverage":
		return index.Problem2, nil
	default:
		return 0, fmt.Errorf("unknown problem %q (want 1/hitting or 2/coverage)", s)
	}
}

// problemJSON lets /v1/select bodies write "problem": 2 or "problem":
// "coverage" interchangeably.
type problemJSON struct{ p index.Problem }

func (p *problemJSON) UnmarshalJSON(b []byte) error {
	var asString string
	if err := json.Unmarshal(b, &asString); err != nil {
		var asInt int
		if err := json.Unmarshal(b, &asInt); err != nil {
			return fmt.Errorf("problem must be a number or string, got %s", b)
		}
		asString = strconv.Itoa(asInt)
	}
	parsed, err := parseProblem(asString)
	if err != nil {
		return err
	}
	p.p = parsed
	return nil
}

func (p problemJSON) problem() index.Problem {
	if p.p == 0 {
		return index.Problem2
	}
	return p.p
}

// parseNodeList parses "1,5,9" into node ids (range-validated by the
// engine).
func parseNodeList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	nodes := make([]int, 0, len(parts))
	for _, part := range parts {
		u, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad node id %q", part)
		}
		nodes = append(nodes, u)
	}
	return nodes, nil
}

func durationMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// ---------------------------------------------------------------------------
// POST /v1/select
// ---------------------------------------------------------------------------

// SelectRequest is the /v1/select body.
type SelectRequest struct {
	// Graph names one of the graphs the daemon was started with.
	Graph string `json:"graph"`
	// Problem is 1/"hitting" or 2/"coverage" (default 2).
	Problem problemJSON `json:"problem"`
	// K is the selection budget.
	K int `json:"k"`
	// L is the walk-length bound; R the per-node sample size (default 100).
	L int `json:"L"`
	R int `json:"R"`
	// Seed fixes the walk sampling (default 1); part of the index identity.
	Seed *uint64 `json:"seed"`
	// Algorithm picks the greedy driver: "lazy" (CELF, the default) or
	// "plain". Both shard gain evaluations over Workers goroutines.
	Algorithm string `json:"algorithm"`
	// Workers shards index construction and gain evaluation (0 = server
	// default; capped at the server max). Selections are identical for
	// every value.
	Workers int `json:"workers"`
	// TimeoutMS bounds the request (0 = server default). A request whose
	// budget expires during an index build gets its 504 immediately while
	// the build detaches and still warms the cache; an expired selection
	// loop is canceled outright.
	TimeoutMS int `json:"timeout_ms"`
	// Epsilon > 0 enables the adaptive replicate budget: R becomes a cap and
	// each round stops sampling once the leader's separation interval beats
	// epsilon at confidence delta (default 0.05, or the daemon's -delta).
	// Zero inherits the daemon default (-epsilon, off unless set). Rejected
	// with 501 "unsupported" on sharded deployments.
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
}

// AccuracyJSON is the adaptive-budget evidence block of a select reply,
// present only when the run had an epsilon target.
type AccuracyJSON struct {
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
	// CIWidth is the largest per-round separation half-width among the
	// committed rounds; CIWidth <= epsilon certifies every round met the
	// target. ReplicatesUsed is the final materialized replicate width (<= R),
	// ChunksBuilt the index chunks materialized, EarlyStopped whether the run
	// finished below the R cap.
	CIWidth        float64 `json:"ci_width"`
	ReplicatesUsed int     `json:"replicates_used"`
	ChunksBuilt    int     `json:"chunks_built"`
	EarlyStopped   bool    `json:"early_stopped"`
}

// SelectResponse is the /v1/select reply.
type SelectResponse struct {
	Graph       string    `json:"graph"`
	Problem     string    `json:"problem"`
	K           int       `json:"k"`
	L           int       `json:"L"`
	R           int       `json:"R"`
	Seed        uint64    `json:"seed"`
	Algorithm   string    `json:"algorithm"`
	Workers     int       `json:"workers"`
	Nodes       []int     `json:"nodes"`
	Gains       []float64 `json:"gains"`
	Objective   float64   `json:"objective"`
	Evaluations int       `json:"evaluations"`
	BuildMS     float64   `json:"build_ms"`
	SelectMS    float64   `json:"select_ms"`
	// IndexCached reports that the walk index was already materialized (or
	// loaded from spill) rather than built for this request; Coalesced that
	// the whole selection was shared with an identical concurrent request.
	IndexCached bool `json:"index_cached"`
	Coalesced   bool `json:"coalesced"`
	// Accuracy carries the adaptive-budget evidence; omitted on fixed-R runs.
	Accuracy *AccuracyJSON `json:"accuracy,omitempty"`
}

// decodeSelect parses and translates the body into the engine request
// (the daemon's seed default of 1 is applied into ereq.Seed).
func decodeSelect(r *http.Request, w http.ResponseWriter) (req SelectRequest, ereq engine.SelectRequest, err error) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, ereq, fmt.Errorf("bad request body: %w", err)
	}
	seed := uint64(1)
	if req.Seed != nil {
		seed = *req.Seed
	}
	strategy := engine.Lazy
	switch strings.ToLower(req.Algorithm) {
	case "", "lazy":
	case "plain":
		strategy = engine.Plain
	default:
		return req, ereq, fmt.Errorf("unknown algorithm %q (want lazy or plain)", req.Algorithm)
	}
	ereq = engine.SelectRequest{
		Graph:    req.Graph,
		Problem:  req.Problem.problem(),
		K:        req.K,
		L:        req.L,
		R:        req.R,
		Seed:     seed,
		Strategy: strategy,
		Workers:  req.Workers,
		Timeout:  time.Duration(req.TimeoutMS) * time.Millisecond,
		Epsilon:  req.Epsilon,
		Delta:    req.Delta,
	}
	return req, ereq, nil
}

// encodeSelect builds the wire reply from the engine result.
func encodeSelect(req SelectRequest, ereq engine.SelectRequest, res *engine.SelectResult) SelectResponse {
	var acc *AccuracyJSON
	if res.Epsilon > 0 {
		acc = &AccuracyJSON{
			Epsilon:        res.Epsilon,
			Delta:          res.Delta,
			CIWidth:        res.CIWidth,
			ReplicatesUsed: res.ReplicatesUsed,
			ChunksBuilt:    res.ChunksBuilt,
			EarlyStopped:   res.EarlyStopped,
		}
	}
	return SelectResponse{
		Accuracy:    acc,
		Graph:       req.Graph,
		Problem:     ereq.Problem.String(),
		K:           req.K,
		L:           res.L,
		R:           res.R,
		Seed:        ereq.Seed,
		Algorithm:   ereq.Strategy.String(),
		Workers:     res.Workers,
		Nodes:       res.Nodes,
		Gains:       res.Gains,
		Objective:   res.Objective(),
		Evaluations: res.Evaluations,
		BuildMS:     durationMS(res.TableBuild),
		SelectMS:    durationMS(res.Select),
		IndexCached: res.IndexCached,
		Coalesced:   res.Coalesced,
	}
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	req, ereq, err := decodeSelect(r, w)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	// The HTTP contract is stricter than the engine's (which allows the
	// degenerate k = 0 and L = 0 for embedded use): both must be >= 1 here.
	if req.K < 1 || req.K > s.cfg.MaxK {
		writeBadRequest(w, fmt.Errorf("k=%d outside [1, %d]", req.K, s.cfg.MaxK))
		return
	}
	if req.L < 1 {
		writeBadRequest(w, fmt.Errorf("L=%d outside [1, %d]", req.L, 1<<16-1))
		return
	}
	if streaming(r) {
		s.handleSelectStream(w, r, req, ereq)
		return
	}
	res, err := s.q.Select(r.Context(), ereq)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, encodeSelect(req, ereq, res))
}

// ---------------------------------------------------------------------------
// GET /v1/gain
// ---------------------------------------------------------------------------

// GainResponse is the /v1/gain reply: Gains[i] is the marginal gain of
// adding Nodes[i] to the current set.
//
// Cost note: the read path is memoized, so the n·R D-table for a seed set
// is materialized at most once (reusing the longest cached prefix of the
// set when one is resident) and every later request for the same set is a
// pure read of the frozen table; empty-set requests are answered from the
// index's memoized empty-set gain vector with no D-table work at all. Memo
// reports which of those paths served this request (see the engine.Memo*
// constants); "off" means the daemon runs with memoization disabled and
// paid a fresh table replay.
type GainResponse struct {
	Graph       string    `json:"graph"`
	Problem     string    `json:"problem"`
	Set         []int     `json:"set"`
	Nodes       []int     `json:"nodes"`
	Gains       []float64 `json:"gains"`
	IndexCached bool      `json:"index_cached"`
	Memo        string    `json:"memo"`
	// Degraded marks an answer served from an already-memoized table while
	// the walk index itself was unavailable (build shed by admission control
	// or failed); the values are exact, but a cold set would have errored.
	Degraded bool `json:"degraded,omitempty"`
}

// queryParams parses the common graph/L/R/seed/problem/set query parameters
// of the GET endpoints.
type queryParams struct {
	graph   string
	problem index.Problem
	L, R    int
	seed    uint64
	set     []int
}

func parseQueryParams(r *http.Request) (queryParams, error) {
	q := r.URL.Query()
	p, err := parseProblem(q.Get("problem"))
	if err != nil {
		return queryParams{}, err
	}
	atoi := func(key string, def int) (int, error) {
		v := q.Get(key)
		if v == "" {
			return def, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("bad %s=%q", key, v)
		}
		return n, nil
	}
	L, err := atoi("L", 0)
	if err != nil {
		return queryParams{}, err
	}
	R, err := atoi("R", 0)
	if err != nil {
		return queryParams{}, err
	}
	seed := uint64(1)
	if v := q.Get("seed"); v != "" {
		seed, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			return queryParams{}, fmt.Errorf("bad seed=%q", v)
		}
	}
	set, err := parseNodeList(q.Get("set"))
	if err != nil {
		return queryParams{}, err
	}
	// Stricter than the engine: the HTTP contract requires L >= 1.
	if L < 1 {
		return queryParams{}, fmt.Errorf("L=%d outside [1, %d]", L, 1<<16-1)
	}
	return queryParams{graph: q.Get("graph"), problem: p, L: L, R: R, seed: seed, set: set}, nil
}

func (s *Server) handleGain(w http.ResponseWriter, r *http.Request) {
	qp, err := parseQueryParams(r)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	nodes, err := parseNodeList(r.URL.Query().Get("nodes"))
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	res, err := s.q.Gain(r.Context(), engine.GainRequest{
		Graph:   qp.graph,
		Problem: qp.problem,
		L:       qp.L,
		R:       qp.R,
		Seed:    qp.seed,
		Set:     qp.set,
		Nodes:   nodes,
	})
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, GainResponse{
		Graph:       qp.graph,
		Problem:     qp.problem.String(),
		Set:         qp.set,
		Nodes:       nodes,
		Gains:       res.Gains,
		IndexCached: res.IndexCached,
		Memo:        res.Memo,
		Degraded:    res.Degraded,
	})
}

// ---------------------------------------------------------------------------
// GET /v1/objective
// ---------------------------------------------------------------------------

// ObjectiveResponse is the /v1/objective reply.
type ObjectiveResponse struct {
	Graph       string  `json:"graph"`
	Problem     string  `json:"problem"`
	Set         []int   `json:"set"`
	Objective   float64 `json:"objective"`
	IndexCached bool    `json:"index_cached"`
	Memo        string  `json:"memo"`
	Degraded    bool    `json:"degraded,omitempty"`
}

func (s *Server) handleObjective(w http.ResponseWriter, r *http.Request) {
	qp, err := parseQueryParams(r)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	res, err := s.q.Objective(r.Context(), engine.ObjectiveRequest{
		Graph:   qp.graph,
		Problem: qp.problem,
		L:       qp.L,
		R:       qp.R,
		Seed:    qp.seed,
		Set:     qp.set,
	})
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ObjectiveResponse{
		Graph:       qp.graph,
		Problem:     qp.problem.String(),
		Set:         qp.set,
		Objective:   res.Objective,
		IndexCached: res.IndexCached,
		Memo:        res.Memo,
		Degraded:    res.Degraded,
	})
}

// ---------------------------------------------------------------------------
// GET /v1/topgains
// ---------------------------------------------------------------------------

// TopGainsResponse is the /v1/topgains reply: the B best candidates by
// marginal gain against the given seed set (set members excluded), gain
// descending with ties broken by ascending node id.
type TopGainsResponse struct {
	Graph       string    `json:"graph"`
	Problem     string    `json:"problem"`
	Set         []int     `json:"set"`
	B           int       `json:"b"`
	Nodes       []int     `json:"nodes"`
	Gains       []float64 `json:"gains"`
	IndexCached bool      `json:"index_cached"`
	Memo        string    `json:"memo"`
	Degraded    bool      `json:"degraded,omitempty"`
}

func (s *Server) handleTopGains(w http.ResponseWriter, r *http.Request) {
	qp, err := parseQueryParams(r)
	if err != nil {
		writeBadRequest(w, err)
		return
	}
	q := r.URL.Query()
	b := 0
	if v := q.Get("b"); v != "" {
		b, err = strconv.Atoi(v)
		if err != nil {
			writeBadRequest(w, fmt.Errorf("bad b=%q", v))
			return
		}
		if b == 0 {
			// Explicit zero is invalid (zero means "default" engine-side).
			writeBadRequest(w, fmt.Errorf("b=0 outside [1, %d]", s.cfg.MaxK))
			return
		}
	}
	workers := 0
	if v := q.Get("workers"); v != "" {
		workers, err = strconv.Atoi(v)
		if err != nil {
			writeBadRequest(w, fmt.Errorf("bad workers=%q", v))
			return
		}
	}
	res, err := s.q.TopGains(r.Context(), engine.TopGainsRequest{
		Graph:   qp.graph,
		Problem: qp.problem,
		L:       qp.L,
		R:       qp.R,
		Seed:    qp.seed,
		Set:     qp.set,
		B:       b,
		Workers: workers,
	})
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, TopGainsResponse{
		Graph:       qp.graph,
		Problem:     qp.problem.String(),
		Set:         qp.set,
		B:           res.B,
		Nodes:       res.Nodes,
		Gains:       res.Gains,
		IndexCached: res.IndexCached,
		Memo:        res.Memo,
		Degraded:    res.Degraded,
	})
}

// ---------------------------------------------------------------------------
// GET /healthz and GET /stats
// ---------------------------------------------------------------------------

// HealthResponse is the /healthz reply.
type HealthResponse struct {
	Status  string  `json:"status"` // "ok" or "draining"
	UptimeS float64 `json:"uptime_s"`
	Graphs  int     `json:"graphs"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:  "ok",
		UptimeS: time.Since(s.start).Seconds(),
		Graphs:  len(s.cfg.Graphs),
	}
	status := http.StatusOK
	if s.draining.Load() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// MemoStatsJSON mirrors engine.MemoStats for /stats, plus whether the
// memoized read path is enabled at all.
type MemoStatsJSON struct {
	Enabled        bool  `json:"enabled"`
	Hits           int64 `json:"hits"`
	Coalesced      int64 `json:"coalesced_populates"`
	Misses         int64 `json:"misses"`
	PrefixExtended int64 `json:"prefix_extended"`
	EmptyHits      int64 `json:"empty_hits"`
	TopGainsHits   int64 `json:"topgains_hits"`
	Evictions      int64 `json:"evictions"`
	Invalidated    int64 `json:"invalidated"`
	PopulateErrors int64 `json:"populate_errors"`
	Resident       int   `json:"resident"`
	ResidentBytes  int64 `json:"resident_bytes"`
}

// CacheStatsJSON mirrors index.CacheStats for /stats.
type CacheStatsJSON struct {
	Hits            int64    `json:"hits"`
	Coalesced       int64    `json:"coalesced_builds"`
	Misses          int64    `json:"misses"`
	SpillLoads      int64    `json:"spill_loads"`
	SpillSaves      int64    `json:"spill_saves"`
	SpillLoadErrors int64    `json:"spill_load_errors"`
	SpillSkipped    int64    `json:"spill_skipped"`
	MmapLoads       int64    `json:"mmap_loads"`
	Evictions       int64    `json:"evictions"`
	BuildErrors     int64    `json:"build_errors"`
	Resident        int      `json:"resident"`
	ResidentBytes   int64    `json:"resident_bytes"`
	Keys            []string `json:"keys"`
}

// StorageStatsJSON mirrors index.StorageStats for /stats: the spill storage
// subsystem — configured on-disk format, whether v8 loads serve off mmap'd
// pages, and the aggregate mapping/decode counters of resident store-backed
// indexes. Present only when the daemon has a spill directory.
type StorageStatsJSON struct {
	SpillFormat    string `json:"spill_format"`
	Mmap           bool   `json:"mmap"`
	MappedIndexes  int    `json:"mapped_indexes"`
	MappedBytes    int64  `json:"mapped_bytes"`
	DecodeHits     int64  `json:"decode_hits"`
	DecodeMisses   int64  `json:"decode_misses"`
	DecodeErrors   int64  `json:"decode_errors"`
	PageInRestarts int64  `json:"page_in_restarts"`
}

// AdmissionStatsJSON mirrors engine.AdmissionStats for /stats: the admission
// gate's shape (slots and queue bound) plus its traffic counters. Every 503
// "overloaded" response corresponds to exactly one Shed tick.
type AdmissionStatsJSON struct {
	Enabled       bool  `json:"enabled"`
	MaxConcurrent int   `json:"max_concurrent"`
	MaxQueue      int   `json:"max_queue"`
	Admitted      int64 `json:"admitted"`
	Shed          int64 `json:"shed"`
	InFlight      int   `json:"in_flight"`
	QueueDepth    int   `json:"queue_depth"`
	QueueWaits    int64 `json:"queue_waits"`
	QueueWaitNS   int64 `json:"queue_wait_ns"`
}

// AccuracyStatsJSON mirrors engine.AccuracyStats for /stats: adaptive
// (epsilon-targeted) selection traffic. CIWidthHist buckets each completed
// run's achieved CIWidth/epsilon ratio into [0,0.25), [0.25,0.5), [0.5,0.75),
// [0.75,1], and >1 (the run hit the R cap before reaching epsilon).
type AccuracyStatsJSON struct {
	AdaptiveSelects int64   `json:"adaptive_selects"`
	EarlyStops      int64   `json:"early_stops"`
	ChunksBuilt     int64   `json:"chunks_built"`
	CIWidthHist     []int64 `json:"ci_width_hist"`
}

// StatsResponse is the /stats reply.
type StatsResponse struct {
	UptimeS          float64                     `json:"uptime_s"`
	Draining         bool                        `json:"draining"`
	InFlight         int64                       `json:"in_flight"`
	SelectsCoalesced int64                       `json:"selects_coalesced"`
	Degraded         int64                       `json:"degraded"`
	Admission        AdmissionStatsJSON          `json:"admission"`
	Cache            CacheStatsJSON              `json:"cache"`
	Memo             MemoStatsJSON               `json:"memo"`
	Endpoints        map[string]EndpointSnapshot `json:"endpoints"`
	// Accuracy reports adaptive-budget selection counters; present once any
	// adaptive selection has run on this daemon.
	Accuracy *AccuracyStatsJSON `json:"accuracy,omitempty"`
	// Shards reports coordinator-side scatter-gather counters; present only
	// when this daemon fronts shards (-shards or -peer).
	Shards *ShardsStatsJSON `json:"shards,omitempty"`
	// Storage reports the spill storage subsystem (format, mmap serving,
	// decode counters); present only when a spill directory is configured.
	Storage *StorageStatsJSON `json:"storage,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	withBuckets := r.URL.Query().Get("buckets") != "0"
	es := s.engine.Stats()
	keys := s.Cache().Keys()
	keyStrings := make([]string, len(keys))
	for i, k := range keys {
		keyStrings[i] = k.String()
	}
	endpoints := make(map[string]EndpointSnapshot, len(s.endpoints))
	for name, m := range s.endpoints {
		endpoints[name] = m.Snapshot(withBuckets)
	}
	var memo MemoStatsJSON
	if es.MemoEnabled {
		memo = MemoStatsJSON{
			Enabled:        true,
			Hits:           es.Memo.Hits,
			Coalesced:      es.Memo.Coalesced,
			Misses:         es.Memo.Misses,
			PrefixExtended: es.Memo.PrefixExtended,
			EmptyHits:      es.Memo.EmptyHits,
			TopGainsHits:   es.Memo.TopHits,
			Evictions:      es.Memo.Evictions,
			Invalidated:    es.Memo.Invalidated,
			PopulateErrors: es.Memo.PopulateErrors,
			Resident:       es.Memo.Resident,
			ResidentBytes:  es.Memo.ResidentBytes,
		}
	}
	var accuracy *AccuracyStatsJSON
	if es.Accuracy.AdaptiveSelects > 0 {
		accuracy = &AccuracyStatsJSON{
			AdaptiveSelects: es.Accuracy.AdaptiveSelects,
			EarlyStops:      es.Accuracy.EarlyStops,
			ChunksBuilt:     es.Accuracy.ChunksBuilt,
			CIWidthHist:     es.Accuracy.CIWidthHist[:],
		}
	}
	var storage *StorageStatsJSON
	if s.cfg.SpillDir != "" {
		storage = &StorageStatsJSON{
			SpillFormat:    es.Storage.SpillFormat,
			Mmap:           es.Storage.Mmap,
			MappedIndexes:  es.Storage.MappedIndexes,
			MappedBytes:    es.Storage.MappedBytes,
			DecodeHits:     es.Storage.DecodeHits,
			DecodeMisses:   es.Storage.DecodeMisses,
			DecodeErrors:   es.Storage.DecodeErrors,
			PageInRestarts: es.Storage.PageInRestarts,
		}
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Shards:           s.shardsStats(),
		Accuracy:         accuracy,
		Storage:          storage,
		UptimeS:          time.Since(s.start).Seconds(),
		Draining:         s.draining.Load(),
		InFlight:         s.inFlight.Load(),
		SelectsCoalesced: es.SelectsCoalesced,
		Degraded:         es.Degraded,
		Admission: AdmissionStatsJSON{
			Enabled:       es.Admission.Enabled,
			MaxConcurrent: es.Admission.MaxConcurrent,
			MaxQueue:      es.Admission.MaxQueue,
			Admitted:      es.Admission.Admitted,
			Shed:          es.Admission.Shed,
			InFlight:      es.Admission.InFlight,
			QueueDepth:    es.Admission.QueueDepth,
			QueueWaits:    es.Admission.QueueWaits,
			QueueWaitNS:   es.Admission.QueueWaitNS,
		},
		Memo: memo,
		Cache: CacheStatsJSON{
			Hits:            es.Cache.Hits,
			Coalesced:       es.Cache.Coalesced,
			Misses:          es.Cache.Misses,
			SpillLoads:      es.Cache.SpillLoads,
			SpillSaves:      es.Cache.SpillSaves,
			SpillLoadErrors: es.Cache.SpillLoadErrors,
			SpillSkipped:    es.Cache.SpillSkipped,
			MmapLoads:       es.Cache.MmapLoads,
			Evictions:       es.Cache.Evictions,
			BuildErrors:     es.Cache.BuildErrors,
			Resident:        es.Cache.Resident,
			ResidentBytes:   es.Cache.ResidentBytes,
			Keys:            keyStrings,
		},
		Endpoints: endpoints,
	})
}
