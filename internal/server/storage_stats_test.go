package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/graph"
)

// TestStatsStorageBlock checks the /stats "storage" block: absent without a
// spill directory, present (with the configured format and mmap flag) when
// spilling is on — and that a warm restart over the same spill directory
// reports its page-in loads through it.
func TestStatsStorageBlock(t *testing.T) {
	getStats := func(url string) StatsResponse {
		t.Helper()
		resp, err := http.Get(url + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}

	// No spill dir: no storage block.
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	if sr := getStats(ts.URL); sr.Storage != nil {
		t.Fatalf("storage block present without a spill dir: %+v", sr.Storage)
	}
	ts.Close()

	// Spill dir + mmap: block present with the effective config, and after
	// a cold select + restart the warm daemon reports page-in restarts.
	dir := t.TempDir()
	g := testGraph(t, 400, 2)
	cold := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}, SpillDir: dir, MmapSpills: true})
	ts = httptest.NewServer(cold.Handler())
	if _, resp := postSelect(t, ts.URL, `{"graph":"test","k":3,"L":3,"R":20}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("select status %d", resp.StatusCode)
	}
	sr := getStats(ts.URL)
	if sr.Storage == nil {
		t.Fatal("storage block missing with a spill dir")
	}
	if sr.Storage.SpillFormat != "v8" || !sr.Storage.Mmap {
		t.Fatalf("storage = %+v, want v8 + mmap", sr.Storage)
	}
	ts.Close()
	cold.Close() // spills the resident index

	warm := newTestServer(t, Config{Graphs: map[string]*graph.Graph{"test": g}, SpillDir: dir, MmapSpills: true})
	ts = httptest.NewServer(warm.Handler())
	defer ts.Close()
	if _, resp := postSelect(t, ts.URL, `{"graph":"test","k":3,"L":3,"R":20}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm select status %d", resp.StatusCode)
	}
	sr = getStats(ts.URL)
	if sr.Storage == nil {
		t.Fatal("storage block missing on warm daemon")
	}
	if sr.Cache.SpillLoads != 1 {
		t.Fatalf("warm cache = %+v, want 1 spill load", sr.Cache)
	}
	if sr.Storage.PageInRestarts == 0 {
		t.Skip("mmap unavailable on this platform")
	}
	if sr.Cache.MmapLoads != 1 || sr.Storage.MappedIndexes != 1 || sr.Storage.MappedBytes <= 0 {
		t.Fatalf("warm storage = %+v (mmap_loads=%d), want one mapped index", sr.Storage, sr.Cache.MmapLoads)
	}
}
