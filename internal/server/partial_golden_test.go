package server

import (
	"io"
	"net/http"
	"testing"
)

// Golden contract for the worker-facing /v1/partial endpoints. These are
// the scatter-gather wire surface the shard coordinator depends on, so the
// field names and the exact-integer sums representation are pinned the same
// way the public v1 endpoints are: one golden file per success shape and
// per reachable error code (overloaded/timeout/internal share the error
// envelope already pinned by the error_* goldens — the partial handlers go
// through the same writer).

func getGolden(t *testing.T, tsURL, name, path string, wantStatus int) {
	t.Helper()
	resp, err := http.Get(tsURL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, name, resp.StatusCode, wantStatus, raw)
}

func TestGoldenPartialSuccessShapes(t *testing.T) {
	_, ts := goldenHarness(t)

	// Point gains over a replicate sub-range, both problems.
	getGolden(t, ts.URL, "partial_gain_ok",
		"/v1/partial/gain?graph=golden&problem=2&L=4&seed=7&r0=0&r1=12&set=1,2&nodes=0,5,9", http.StatusOK)
	// objective=1 adds the exact objective_sum of the committed set.
	getGolden(t, ts.URL, "partial_gain_objective_ok",
		"/v1/partial/gain?graph=golden&problem=1&L=4&seed=7&r0=12&r1=25&set=1,2&nodes=3&objective=1", http.StatusOK)
	// Empty set: first-pick gains, no nodes excluded.
	getGolden(t, ts.URL, "partial_gain_empty_set_ok",
		"/v1/partial/gain?graph=golden&problem=2&L=4&seed=7&r0=0&r1=25&nodes=4", http.StatusOK)
	// Top-b candidates by integer sum over the shard's range.
	getGolden(t, ts.URL, "partial_topgains_ok",
		"/v1/partial/topgains?graph=golden&problem=2&L=4&seed=7&r0=0&r1=25&set=1&b=3", http.StatusOK)
}

func TestGoldenPartialErrorShapes(t *testing.T) {
	s, ts := goldenHarness(t)

	// bad_request: the replicate range is mandatory — a partial endpoint
	// with no range is always a caller bug, never a full-index request.
	getGolden(t, ts.URL, "partial_error_missing_range",
		"/v1/partial/gain?graph=golden&L=4&seed=7&nodes=1", http.StatusBadRequest)
	// bad_request: inverted range is rejected by the engine.
	getGolden(t, ts.URL, "partial_error_bad_range",
		"/v1/partial/gain?graph=golden&L=4&seed=7&r0=9&r1=3&nodes=1", http.StatusBadRequest)
	// bad_request: objective is a 0/1 flag.
	getGolden(t, ts.URL, "partial_error_bad_objective",
		"/v1/partial/gain?graph=golden&L=4&seed=7&r0=0&r1=12&nodes=1&objective=yes", http.StatusBadRequest)
	// bad_request: explicit b=0 is rejected (omit b for the default).
	getGolden(t, ts.URL, "partial_error_bad_b",
		"/v1/partial/topgains?graph=golden&L=4&seed=7&r0=0&r1=12&b=0", http.StatusBadRequest)
	// not_found: unknown graph.
	getGolden(t, ts.URL, "partial_error_not_found",
		"/v1/partial/topgains?graph=nope&L=4&seed=7&r0=0&r1=12", http.StatusNotFound)

	// draining: workers refuse partial work during shutdown so the
	// coordinator retries another round instead of hanging on a dying peer.
	s.draining.Store(true)
	getGolden(t, ts.URL, "partial_error_draining",
		"/v1/partial/gain?graph=golden&L=4&seed=7&r0=0&r1=12&nodes=1", http.StatusServiceUnavailable)
	s.draining.Store(false)
}
