package engine

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Code is a stable machine-readable error code, shared verbatim across
// every transport: the engine attaches them to errors, the HTTP layer
// serializes them in its JSON error envelope
// ({"error":{"code","message"}}), and the client SDK surfaces them as typed
// errors. Codes are append-only — transports and clients switch on them.
type Code string

// The stable error codes.
const (
	// CodeBadRequest marks invalid request parameters.
	CodeBadRequest Code = "bad_request"
	// CodeNotFound marks requests naming a graph the engine doesn't serve.
	CodeNotFound Code = "not_found"
	// CodeDraining marks work refused or aborted because the serving
	// process is shutting down (or the computation was canceled from
	// outside the request, which at serving time means drain/hard-stop).
	CodeDraining Code = "draining"
	// CodeOverloaded marks heavy work shed by admission control: every
	// computation slot is busy and the wait queue is full, or the request's
	// deadline expired before a slot freed up. Unlike CodeTimeout no compute
	// was spent on the request; clients should back off (the error carries a
	// Retry-After hint) and retry.
	CodeOverloaded Code = "overloaded"
	// CodeTimeout marks a request that exhausted its compute budget.
	CodeTimeout Code = "timeout"
	// CodeConflict marks a graph mutation the current graph state rejects:
	// the request's base epoch no longer matches (another mutation won the
	// race — re-read and retry with the new epoch), or the delta itself
	// conflicts with the structure (adding an edge that exists, removing one
	// that doesn't). The mutation was not applied.
	CodeConflict Code = "conflict"
	// CodeStaleEpoch marks a read pinned to a graph epoch the serving
	// process has moved past (a shard worker received a scatter built
	// against a pre-mutation epoch). The answer would have mixed epochs, so
	// the request is refused instead; it is safe to retry — the coordinator
	// re-scatters against the current epoch.
	CodeStaleEpoch Code = "stale_epoch"
	// CodeUnsupported marks a request combining features the serving mode
	// cannot honor — today, accuracy knobs (epsilon/delta) on a
	// replicate-sharded deployment, where no single process holds the full
	// replicate range the adaptive stopping rule samples over. The request
	// itself is well-formed; retry without the unsupported knob or against
	// an unsharded deployment.
	CodeUnsupported Code = "unsupported"
	// CodeInternal marks everything else.
	CodeInternal Code = "internal"
)

// Error is an engine error with a stable code. It wraps the underlying
// cause when there is one, so errors.Is(err, context.DeadlineExceeded)
// and friends keep working through it.
type Error struct {
	Code    Code
	Message string
	// RetryAfter, when positive, hints how long the caller should back off
	// before retrying (set on CodeOverloaded sheds). The HTTP codec
	// serializes it as a Retry-After header; the client SDK honors it.
	RetryAfter time.Duration
	cause      error
}

func (e *Error) Error() string { return e.Message }

// Unwrap exposes the cause for errors.Is/As chains.
func (e *Error) Unwrap() error { return e.cause }

// badRequestf builds a CodeBadRequest error.
func badRequestf(format string, args ...any) *Error {
	return &Error{Code: CodeBadRequest, Message: fmt.Sprintf(format, args...)}
}

// wrapCompute classifies a computation error: context deadline exhaustion
// is a timeout, cancellation is drain/shutdown (at serving time nothing
// else cancels a computation context), engine errors pass through, and the
// rest is internal. Returns nil for nil.
func wrapCompute(err error) error {
	if err == nil {
		return nil
	}
	var ee *Error
	if errors.As(err, &ee) {
		return err
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{Code: CodeTimeout, Message: err.Error(), cause: err}
	case errors.Is(err, context.Canceled):
		return &Error{Code: CodeDraining, Message: err.Error(), cause: err}
	default:
		return &Error{Code: CodeInternal, Message: err.Error(), cause: err}
	}
}

// CodeOf extracts the stable code from any error returned by an engine
// method (CodeInternal for errors that carry none).
func CodeOf(err error) Code {
	var ee *Error
	if errors.As(err, &ee) {
		return ee.Code
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return CodeTimeout
	case errors.Is(err, context.Canceled):
		return CodeDraining
	default:
		return CodeInternal
	}
}

// RetryAfterOf extracts the backoff hint from any engine error (zero when
// it carries none) — the value the HTTP codec writes as Retry-After.
func RetryAfterOf(err error) time.Duration {
	var ee *Error
	if errors.As(err, &ee) {
		return ee.RetryAfter
	}
	return 0
}

// HTTPStatus maps a code to its HTTP status: the contract the server codec
// and the client SDK share.
func HTTPStatus(code Code) int {
	switch code {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeDraining, CodeOverloaded:
		return http.StatusServiceUnavailable
	case CodeConflict, CodeStaleEpoch:
		return http.StatusConflict
	case CodeTimeout:
		return http.StatusGatewayTimeout
	case CodeUnsupported:
		return http.StatusNotImplemented
	default:
		return http.StatusInternalServerError
	}
}
