package engine

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/testleak"
)

// holdSlot occupies one admission slot directly, simulating a saturated
// engine, and returns the release.
func holdSlot(t *testing.T, e *Engine) func() {
	t.Helper()
	release, err := e.gate.admit(context.Background())
	if err != nil {
		t.Fatalf("holding slot: %v", err)
	}
	return release
}

func TestAdmissionShedsWhenSaturated(t *testing.T) {
	testleak.Check(t)
	e := newTestEngine(t, Config{MaxConcurrent: 1, MaxQueue: -1})
	release := holdSlot(t, e)

	req := SelectRequest{Graph: "test", K: 3, L: 4, R: 20}
	_, err := e.Select(context.Background(), req)
	if CodeOf(err) != CodeOverloaded {
		t.Fatalf("saturated select: code %q (%v), want overloaded", CodeOf(err), err)
	}
	if RetryAfterOf(err) != admissionDefaultRetryAfter {
		t.Fatalf("RetryAfter = %v, want the default hint %v", RetryAfterOf(err), admissionDefaultRetryAfter)
	}
	if _, err := e.SelectStream(context.Background(), req, func(Round) error { return nil }); CodeOf(err) != CodeOverloaded {
		t.Fatalf("saturated stream: code %q (%v)", CodeOf(err), err)
	}
	st := e.AdmissionStats()
	if !st.Enabled || st.MaxConcurrent != 1 || st.MaxQueue != 0 {
		t.Fatalf("gate shape %+v", st)
	}
	if st.Shed != 2 || st.Admitted != 1 || st.InFlight != 1 {
		t.Fatalf("counters %+v, want shed=2 admitted=1 in-flight=1", st)
	}

	// A freed slot restores service with no residue.
	release()
	res, err := e.Select(context.Background(), req)
	if err != nil {
		t.Fatalf("select after release: %v", err)
	}
	if len(res.Nodes) != 3 {
		t.Fatalf("%d nodes", len(res.Nodes))
	}
	st = e.AdmissionStats()
	if st.Shed != 2 || st.InFlight != 0 {
		t.Fatalf("counters after recovery %+v", st)
	}
}

func TestAdmissionQueuedRequestAdmitsWhenSlotFrees(t *testing.T) {
	testleak.Check(t)
	e := newTestEngine(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	release := holdSlot(t, e)

	type out struct {
		res *SelectResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		r, err := e.Select(context.Background(), SelectRequest{Graph: "test", K: 3, L: 4, R: 20})
		done <- out{r, err}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for e.AdmissionStats().QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("select never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is full now: the next computation (a different R, so it
	// cannot coalesce with the queued one) sheds immediately.
	if _, err := e.Select(context.Background(), SelectRequest{Graph: "test", K: 3, L: 4, R: 21}); CodeOf(err) != CodeOverloaded {
		t.Fatalf("queue-full select: code %q (%v)", CodeOf(err), err)
	}

	release()
	o := <-done
	if o.err != nil {
		t.Fatalf("queued select failed: %v", o.err)
	}
	if len(o.res.Nodes) != 3 {
		t.Fatalf("%d nodes", len(o.res.Nodes))
	}
	st := e.AdmissionStats()
	if st.QueueWaits != 1 || st.QueueWaitNS <= 0 {
		t.Fatalf("queue accounting %+v, want one timed wait", st)
	}
	if st.Shed != 1 || st.QueueDepth != 0 || st.InFlight != 0 {
		t.Fatalf("counters %+v", st)
	}
}

// A deadline that expires while waiting for a slot is overload, not a
// timeout: no compute was spent, and the client should back off.
func TestAdmissionDeadlineExpiredWhileQueuedIsOverload(t *testing.T) {
	testleak.Check(t)
	e := newTestEngine(t, Config{MaxConcurrent: 1, MaxQueue: 4})
	release := holdSlot(t, e)
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := e.Select(ctx, SelectRequest{Graph: "test", K: 3, L: 4, R: 20})
	if CodeOf(err) != CodeOverloaded {
		t.Fatalf("expired-in-queue select: code %q (%v), want overloaded", CodeOf(err), err)
	}
	st := e.AdmissionStats()
	if st.Shed != 1 || st.QueueDepth != 0 {
		t.Fatalf("counters %+v", st)
	}
}

// The graceful-degradation contract: when the index cannot be acquired (its
// build shed by a saturated gate), reads whose exact table is already
// memoized still answer — bit-identically — with the degraded marker, while
// unmemoized sets surface the shed.
func TestDegradedReadsServeFrozenMemoWhenIndexUnavailable(t *testing.T) {
	testleak.Check(t)
	g := testGraph(t, 400, 3)
	e := newTestEngine(t, Config{Graphs: map[string]*graph.Graph{"test": g}, MaxConcurrent: 1, MaxQueue: -1})

	// Memoize the table for {1,2} against a hand-built index of the same
	// identity, without making the index itself resident: the state a daemon
	// is in when the index was evicted after the memo survived, or (as here)
	// when every rebuild is being shed.
	p, err := e.resolveParams("test", 4, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(g, 4, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	canon, setKey := canonicalSet([]int{2, 2, 1})
	mh, _, err := e.memo.acquire(memoKey{idx: p.cacheKey(), problem: index.Problem2, set: setKey}, canon, ix)
	if err != nil {
		t.Fatal(err)
	}
	mh.Release()

	release := holdSlot(t, e)
	ctx := context.Background()

	dg, err := e.Gain(ctx, GainRequest{Graph: "test", Problem: Problem2, L: 4, R: 20, Seed: 1, Set: []int{1, 2}, Nodes: []int{0, 5, 9}})
	if err != nil {
		t.Fatalf("degraded gain: %v", err)
	}
	if !dg.Degraded || dg.Memo != MemoHit || dg.IndexCached {
		t.Fatalf("degraded gain flags %+v", dg)
	}
	dobj, err := e.Objective(ctx, ObjectiveRequest{Graph: "test", Problem: Problem2, L: 4, R: 20, Seed: 1, Set: []int{1, 2}})
	if err != nil {
		t.Fatalf("degraded objective: %v", err)
	}
	if !dobj.Degraded {
		t.Fatalf("degraded objective flags %+v", dobj)
	}
	dtop, err := e.TopGains(ctx, TopGainsRequest{Graph: "test", Problem: Problem2, L: 4, R: 20, Seed: 1, Set: []int{1, 2}, B: 5})
	if err != nil {
		t.Fatalf("degraded topgains: %v", err)
	}
	if !dtop.Degraded || len(dtop.Nodes) != 5 {
		t.Fatalf("degraded topgains flags %+v", dtop)
	}

	// An unmemoized set has no frozen table to fall back on: the shed
	// surfaces as the typed overloaded error.
	if _, err := e.Gain(ctx, GainRequest{Graph: "test", Problem: Problem2, L: 4, R: 20, Seed: 1, Set: []int{3, 4}, Nodes: []int{0}}); CodeOf(err) != CodeOverloaded {
		t.Fatalf("unmemoized set under saturation: code %q (%v), want overloaded", CodeOf(err), err)
	}
	if got := e.Stats().Degraded; got != 3 {
		t.Fatalf("degraded counter %d, want 3", got)
	}

	// Degraded answers must be exact: the healthy path (slot freed, index
	// built for real) produces bit-identical values.
	release()
	hg, err := e.Gain(ctx, GainRequest{Graph: "test", Problem: Problem2, L: 4, R: 20, Seed: 1, Set: []int{1, 2}, Nodes: []int{0, 5, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if hg.Degraded {
		t.Fatal("healthy gain still marked degraded")
	}
	for i := range hg.Gains {
		if math.Float64bits(hg.Gains[i]) != math.Float64bits(dg.Gains[i]) {
			t.Fatalf("gain[%d]: degraded %v != healthy %v", i, dg.Gains[i], hg.Gains[i])
		}
	}
	hobj, err := e.Objective(ctx, ObjectiveRequest{Graph: "test", Problem: Problem2, L: 4, R: 20, Seed: 1, Set: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(hobj.Objective) != math.Float64bits(dobj.Objective) {
		t.Fatalf("objective: degraded %v != healthy %v", dobj.Objective, hobj.Objective)
	}
	htop, err := e.TopGains(ctx, TopGainsRequest{Graph: "test", Problem: Problem2, L: 4, R: 20, Seed: 1, Set: []int{1, 2}, B: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range htop.Nodes {
		if htop.Nodes[i] != dtop.Nodes[i] || math.Float64bits(htop.Gains[i]) != math.Float64bits(dtop.Gains[i]) {
			t.Fatalf("topgains[%d]: degraded (%d, %v) != healthy (%d, %v)",
				i, dtop.Nodes[i], dtop.Gains[i], htop.Nodes[i], htop.Gains[i])
		}
	}

	if refs := e.MemoPinnedRefs(); refs != 0 {
		t.Fatalf("%d memo refs still pinned", refs)
	}
	if refs := e.cache.PinnedRefs(); refs != 0 {
		t.Fatalf("%d index refs still pinned", refs)
	}
}
