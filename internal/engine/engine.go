// Package engine is the transport-agnostic query-serving brain of the
// random-walk-domination system: it owns the cache stack the paper's
// materialized walk index makes worthwhile — the refcounted LRU of built
// indexes (internal/index.Cache) and the memoized per-set D-table cache —
// and exposes context-first, request/response methods over it:
//
//	Select       top-k seed selection (Problem 1 or 2, plain or CELF-lazy
//	             greedy), identical concurrent selections coalesced into one
//	             computation
//	SelectStream Select that emits each greedy round's pick (node, gain,
//	             objective-so-far) as it is decided; the reassembled rounds
//	             are bit-for-bit the blocking Select result
//	Gain         marginal gains of candidate nodes against a seed set
//	Objective    estimated objective value of a seed set
//	TopGains     the top-B candidates by marginal gain against a seed set
//
// Every transport — the HTTP daemon (internal/server), the public embedded
// API (rwdom.Open), the typed Go client's server side, future gRPC or batch
// front ends — is a thin codec over this one type, so each of them gets the
// whole serving stack (index sharing, build coalescing, memoized reads,
// prefix extension, spill-to-disk, byte budgets) for free instead of
// reimplementing it per transport.
//
// Graphs are mutable at runtime: ApplyDelta applies an edge/node delta
// copy-on-write, bumps the graph's mutation epoch, and repairs the resident
// walk indexes incrementally (internal/index.Repair regenerates only the
// affected walk rows) instead of dropping them for full rebuilds. Every
// cached artifact — index cache keys, spill files, memoized D-tables,
// singleflight selection keys — carries the epoch, so a pre-mutation
// artifact can never serve a post-mutation request.
//
// Errors carry stable machine-readable codes (*Error with CodeBadRequest,
// CodeNotFound, CodeDraining, CodeOverloaded, CodeTimeout, CodeConflict,
// CodeStaleEpoch, CodeUnsupported, CodeInternal) so codecs can map them
// mechanically — the
// HTTP layer to statuses and its JSON error envelope, the client SDK back
// to typed errors.
//
// Under load the engine degrades instead of collapsing: an admission gate
// (Config.MaxConcurrent/MaxQueue) bounds concurrent selections and index
// builds behind a bounded wait queue and sheds the excess with
// CodeOverloaded plus a Retry-After hint, and the read methods fall back to
// an already-memoized frozen D-table (result flagged Degraded) when the
// index itself cannot be acquired.
package engine

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/index"
)

// Config configures an Engine. Graphs is required; zero values elsewhere get
// the documented defaults.
type Config struct {
	// Graphs maps the logical names requests use to loaded graphs.
	Graphs map[string]*graph.Graph
	// CacheSize bounds the number of resident walk indexes (default 8;
	// < 0 means unbounded). IndexBytes additionally bounds their summed heap
	// footprint (0 means unbounded); the budget is soft while every resident
	// index is pinned by an in-flight request.
	CacheSize  int
	IndexBytes int64
	// SpillDir, when non-empty, persists evicted and Close-resident indexes
	// so later misses and restarts skip the build.
	SpillDir string
	// SpillFormat selects what spill saves write: "v8" (compressed store
	// container, the default), "v8raw" (raw page-aligned sections), or "v7"
	// (legacy full-deserialize format). Loads sniff the file magic and accept
	// every format regardless of this setting.
	SpillFormat string
	// MmapSpills serves v8 spill loads store-backed through a read-only
	// memory mapping: a warm restart pages rows in on demand instead of
	// deserializing, and mapped indexes cost ~nothing against IndexBytes
	// (their pages are reclaimable page cache, not heap).
	MmapSpills bool
	// EvictInterval enables background eviction of indexes not used for one
	// full interval (0 disables it).
	EvictInterval time.Duration
	// DefaultTimeout bounds a selection computation whose request does not
	// set its own timeout; MaxTimeout caps what a request may ask for. Zero
	// means unbounded — the caller's context is then the only bound, the
	// right default for embedded library use. The HTTP daemon sets both.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DefaultWorkers is the per-request worker default; MaxWorkers caps the
	// request knob. Both default to runtime.GOMAXPROCS(0).
	DefaultWorkers int
	MaxWorkers     int
	// MaxR and MaxK cap per-request sample size and budget as a defense
	// against accidental resource exhaustion (defaults 1000 and 10000).
	MaxR int
	MaxK int
	// MaxConcurrent bounds concurrently running heavy computations —
	// selection runs and walk-index builds — admitted through the gate
	// (default 2×GOMAXPROCS; < 0 disables admission control entirely).
	// MaxQueue bounds how many admissions may wait for a slot (default
	// 8×MaxConcurrent; < 0 means no queue — at capacity, shed immediately).
	// Work beyond both bounds is shed with a typed CodeOverloaded error
	// carrying the RetryAfterHint backoff (default 1s).
	MaxConcurrent  int
	MaxQueue       int
	RetryAfterHint time.Duration
	// MemoSize bounds the number of memoized D-tables the gain read path
	// keeps resident (default 128; < 0 means unbounded); MemoBytes
	// additionally bounds their summed heap footprint (0 means unbounded,
	// soft while tables are pinned). DisableMemo turns the memoized read
	// path off entirely, so every Gain, Objective and TopGains request
	// materializes a fresh table — kept for parity testing and A/B
	// benchmarking.
	MemoSize    int
	MemoBytes   int64
	DisableMemo bool
	// DefaultEpsilon > 0 turns the adaptive replicate budget on for every
	// Select/SelectStream whose request does not set its own Epsilon: R
	// becomes a cap and rounds stop sampling once the leader's separation
	// interval beats Epsilon at confidence DefaultDelta. Zero (the default)
	// leaves accuracy off unless a request opts in. DefaultDelta defaults to
	// 0.05 when accuracy is on. rwdom.WithAccuracy sets both.
	DefaultEpsilon float64
	DefaultDelta   float64
	// AccuracyChunk is the replicate-chunk width adaptive runs build per
	// extension step (0 means ceil(R/8), the core default).
	AccuracyChunk int
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 8
	}
	if c.DefaultWorkers <= 0 {
		c.DefaultWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxR <= 0 {
		c.MaxR = 1000
	}
	if c.MaxK <= 0 {
		c.MaxK = 10000
	}
	if c.MemoSize == 0 {
		c.MemoSize = 128
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 8 * c.MaxConcurrent
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	return c
}

// Engine answers selection and gain queries over a fixed set of graph
// names (the graphs themselves are mutable through ApplyDelta), sharing one
// cache stack across every transport. Create with New, release resources
// with Close. All methods are safe for concurrent use.
type Engine struct {
	cfg Config
	// graphs is the live name → graph mapping, copied from cfg.Graphs at New
	// and updated in place by ApplyDelta (the map's key set never changes;
	// only values are swapped for their post-mutation successors). graphsMu
	// serializes mutations against each other and against param resolution:
	// readers take the RLock just long enough to snapshot a *graph.Graph —
	// each snapshot is immutable (ApplyDelta is copy-on-write), so the heavy
	// work after resolution runs lock-free against a consistent epoch.
	graphsMu sync.RWMutex
	graphs   map[string]*graph.Graph

	cache *index.Cache
	// memo is the memoized D-table cache behind Gain, Objective and
	// TopGains; nil when cfg.DisableMemo.
	memo *memoCache
	sf   singleflight
	// gate admission-controls heavy work (selection runs, index builds);
	// nil when cfg.MaxConcurrent < 0 (admission disabled).
	gate *gate

	// selectsCoalesced counts Select results served from another request's
	// computation; degraded counts reads answered from frozen memoized
	// state because the live index path failed or was shed.
	selectsCoalesced atomic.Int64
	degraded         atomic.Int64

	// Adaptive-budget counters: selections run under an accuracy target,
	// how many stopped below the R cap, total index chunks materialized, and
	// a histogram of achieved CIWidth/ε ratios (see AccuracyStats).
	adaptiveSelects atomic.Int64
	earlyStops      atomic.Int64
	chunksBuilt     atomic.Int64
	ciWidthHist     [ciBuckets]atomic.Int64

	// lifecycle is canceled by Abort/Close; every computation context
	// descends from it so shutdown aborts stragglers.
	lifecycle context.Context
	abort     context.CancelFunc

	stopEvictor func()
	closeOnce   sync.Once
	closeErr    error
}

// New validates cfg and returns a ready Engine.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Graphs) == 0 {
		return nil, &Error{Code: CodeBadRequest, Message: "engine: no graphs configured"}
	}
	for name, g := range cfg.Graphs {
		if g == nil || g.N() == 0 {
			return nil, &Error{Code: CodeBadRequest, Message: fmt.Sprintf("engine: graph %q is empty", name)}
		}
	}
	if math.IsNaN(cfg.DefaultEpsilon) || math.IsInf(cfg.DefaultEpsilon, 0) || cfg.DefaultEpsilon < 0 {
		return nil, &Error{Code: CodeBadRequest, Message: fmt.Sprintf("engine: default epsilon %v, want >= 0", cfg.DefaultEpsilon)}
	}
	if cfg.DefaultDelta != 0 && !(cfg.DefaultDelta > 0 && cfg.DefaultDelta < 1) {
		return nil, &Error{Code: CodeBadRequest, Message: fmt.Sprintf("engine: default delta %v, want in (0, 1)", cfg.DefaultDelta)}
	}
	if cfg.AccuracyChunk < 0 {
		return nil, &Error{Code: CodeBadRequest, Message: fmt.Sprintf("engine: accuracy chunk %d, want >= 0", cfg.AccuracyChunk)}
	}
	cfg = cfg.withDefaults()
	cache, err := index.NewCacheWith(cfg.CacheSize, cfg.IndexBytes, cfg.SpillDir,
		index.SpillConfig{Format: cfg.SpillFormat, Mmap: cfg.MmapSpills})
	if err != nil {
		return nil, &Error{Code: CodeBadRequest, Message: err.Error()}
	}
	ctx, cancel := context.WithCancel(context.Background())
	graphs := make(map[string]*graph.Graph, len(cfg.Graphs))
	for name, g := range cfg.Graphs {
		graphs[name] = g
	}
	e := &Engine{
		cfg:       cfg,
		graphs:    graphs,
		cache:     cache,
		lifecycle: ctx,
		abort:     cancel,
	}
	if cfg.MaxConcurrent > 0 {
		e.gate = newGate(cfg.MaxConcurrent, cfg.MaxQueue, cfg.RetryAfterHint)
	}
	if !cfg.DisableMemo {
		e.memo = newMemoCache(cfg.MemoSize, cfg.MemoBytes)
		// Link the two caches: when an index is evicted, every memoized
		// table built under its key is dropped (or orphaned until its last
		// in-flight reader releases it), so the eviction actually returns
		// the index's heap.
		cache.OnEviction(func(keys []index.CacheKey) { e.memo.dropIndexes(keys) })
	}
	if cfg.EvictInterval > 0 {
		e.stopEvictor = cache.StartEvictor(cfg.EvictInterval)
	}
	return e, nil
}

// Graph returns the named graph, or the engine's sole graph when name is
// empty and exactly one is configured (the embedded single-graph case).
// The returned graph is an immutable snapshot: after an ApplyDelta a fresh
// call returns the successor, but a held pointer stays valid (and stays at
// its epoch) forever.
func (e *Engine) Graph(name string) (*graph.Graph, bool) {
	e.graphsMu.RLock()
	defer e.graphsMu.RUnlock()
	if name == "" && len(e.graphs) == 1 {
		for _, g := range e.graphs {
			return g, true
		}
	}
	g, ok := e.graphs[name]
	return g, ok
}

// Graphs returns the number of configured graphs.
func (e *Engine) Graphs() int { return len(e.cfg.Graphs) }

// soleGraphName resolves the empty-name shorthand to the engine's sole
// configured graph name; returns name unchanged otherwise. The key set of
// the graphs map is fixed at New, so cfg.Graphs is authoritative for names.
func (e *Engine) soleGraphName(name string) string {
	if name == "" && len(e.cfg.Graphs) == 1 {
		for only := range e.cfg.Graphs {
			return only
		}
	}
	return name
}

// Cache exposes the index cache (for stats, adoption and tests).
func (e *Engine) Cache() *index.Cache { return e.cache }

// AdoptIndex inserts a caller-materialized index into the cache under the
// given graph name (resolved like Graph) so selections against its
// (L, R, seed) identity are served from it instead of rebuilding.
func (e *Engine) AdoptIndex(name string, ix *index.Index) error {
	if ix == nil {
		return &Error{Code: CodeBadRequest, Message: "engine: adopt nil index"}
	}
	name = e.soleGraphName(name)
	g, ok := e.Graph(name)
	if !ok {
		return &Error{Code: CodeNotFound, Message: fmt.Sprintf("unknown graph %q", name)}
	}
	if g != ix.Graph() {
		return &Error{Code: CodeBadRequest, Message: fmt.Sprintf("engine: index was built on a different graph than %q", name)}
	}
	key := index.CacheKey{Graph: name, L: ix.L(), R: ix.R(), Seed: ix.Seed(), R0: ix.R0(), Epoch: ix.GraphEpoch()}
	return e.cache.Adopt(key, ix)
}

// MemoStats snapshots the memoized-gain cache counters; the zero value when
// memoization is disabled.
func (e *Engine) MemoStats() MemoStats {
	if e.memo == nil {
		return MemoStats{}
	}
	return e.memo.Stats()
}

// MemoEnabled reports whether the memoized gain read path is on.
func (e *Engine) MemoEnabled() bool { return e.memo != nil }

// MemoPinnedRefs returns the total refcount across resident memo tables —
// test observability for "no table is still pinned once traffic stops".
// Zero when memoization is disabled.
func (e *Engine) MemoPinnedRefs() int {
	if e.memo == nil {
		return 0
	}
	return e.memo.pinnedRefs()
}

// Stats snapshots the engine-level counters: index-cache and memo traffic,
// coalesced selections, degraded answers, admission-gate pressure, and
// adaptive-accuracy activity.
type Stats struct {
	Cache            index.CacheStats
	Memo             MemoStats
	MemoEnabled      bool
	SelectsCoalesced int64
	// Degraded counts read requests answered from frozen memoized state
	// because the live index path failed or was shed.
	Degraded int64
	// Admission snapshots the heavy-work gate (zero value when disabled).
	Admission AdmissionStats
	// Accuracy snapshots the adaptive replicate-budget counters (zero value
	// when no adaptive selection has run).
	Accuracy AccuracyStats
	// Storage snapshots the spill/storage subsystem: configured format, mmap
	// serving, and aggregate decode counters of resident store-backed indexes.
	Storage index.StorageStats
}

// ciBuckets is the CIWidth/ε histogram width: four quarters of the target
// plus an overflow bucket for capped runs that missed it.
const ciBuckets = 5

// AccuracyStats counts adaptive-budget selections. CIWidthHist buckets each
// completed run's achieved CIWidth/ε ratio: [0,0.25), [0.25,0.5),
// [0.5,0.75), [0.75,1], and >1 (the run hit the R cap before reaching ε).
type AccuracyStats struct {
	AdaptiveSelects int64
	EarlyStops      int64
	ChunksBuilt     int64
	CIWidthHist     [ciBuckets]int64
}

// recordAdaptive folds one completed adaptive selection into the counters.
func (e *Engine) recordAdaptive(res *SelectResult) {
	e.adaptiveSelects.Add(1)
	if res.EarlyStopped {
		e.earlyStops.Add(1)
	}
	e.chunksBuilt.Add(int64(res.ChunksBuilt))
	b := ciBuckets - 1
	if res.Epsilon > 0 && res.CIWidth <= res.Epsilon {
		if b = int(res.CIWidth / res.Epsilon * 4); b > ciBuckets-2 {
			b = ciBuckets - 2
		}
	}
	e.ciWidthHist[b].Add(1)
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	s := Stats{
		Cache:            e.cache.Stats(),
		MemoEnabled:      e.memo != nil,
		SelectsCoalesced: e.selectsCoalesced.Load(),
		Degraded:         e.degraded.Load(),
		Admission:        e.gate.stats(),
		Accuracy: AccuracyStats{
			AdaptiveSelects: e.adaptiveSelects.Load(),
			EarlyStops:      e.earlyStops.Load(),
			ChunksBuilt:     e.chunksBuilt.Load(),
		},
	}
	for i := range e.ciWidthHist {
		s.Accuracy.CIWidthHist[i] = e.ciWidthHist[i].Load()
	}
	s.Storage = e.cache.StorageStats()
	if e.memo != nil {
		s.Memo = e.memo.Stats()
	}
	return s
}

// AdmissionStats snapshots the admission gate (test observability; the zero
// value when admission is disabled).
func (e *Engine) AdmissionStats() AdmissionStats { return e.gate.stats() }

// Abort cancels every in-flight computation (their contexts descend from
// the engine lifecycle). The engine remains usable for new requests; the
// HTTP layer calls this when its drain budget runs out.
func (e *Engine) Abort() { e.abort() }

// Close releases engine resources: aborts outstanding computations, stops
// the background evictor, and spills resident indexes to the spill
// directory. Idempotent.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		e.abort()
		if e.stopEvictor != nil {
			e.stopEvictor()
		}
		e.closeErr = e.cache.SpillAll()
	})
	return e.closeErr
}

// clampTimeout resolves a per-request timeout knob against the configured
// default and cap. Zero in, zero defaults out means unbounded.
func (e *Engine) clampTimeout(timeout time.Duration) time.Duration {
	if timeout <= 0 {
		timeout = e.cfg.DefaultTimeout
	}
	if e.cfg.MaxTimeout > 0 && timeout > e.cfg.MaxTimeout {
		timeout = e.cfg.MaxTimeout
	}
	return timeout
}

// Context derives the wait context for one request: bounded by the
// (clamped) timeout knob when one applies, by parent, and by the engine
// lifecycle so Abort/Close cancel it. Transports wrap their per-request
// contexts with it before calling engine methods.
func (e *Engine) Context(parent context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	timeout = e.clampTimeout(timeout)
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(parent, timeout)
	} else {
		ctx, cancel = context.WithCancel(parent)
	}
	stop := context.AfterFunc(e.lifecycle, cancel)
	return ctx, func() { stop(); cancel() }
}

// computeCtx derives the context shared selection computations run under:
// bounded by the leader's timeout and the engine lifecycle but NOT by the
// leader's own request context, so one departing client cannot fail the
// coalesced followers.
func (e *Engine) computeCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	timeout = e.clampTimeout(timeout)
	if timeout > 0 {
		return context.WithTimeout(e.lifecycle, timeout)
	}
	return context.WithCancel(e.lifecycle)
}

// resolveWorkers clamps the per-request workers knob.
func (e *Engine) resolveWorkers(workers int) int {
	if workers <= 0 {
		return e.cfg.DefaultWorkers
	}
	if workers > e.cfg.MaxWorkers {
		return e.cfg.MaxWorkers
	}
	return workers
}

// params are the validated request knobs that identify one materialized
// index. r0 is the first absolute replicate of a partial (replicate-range
// sharded) index — zero on every full-index path, so those keys are
// unchanged. epoch is the mutation epoch of the graph snapshot g: params
// capture (g, epoch) atomically at resolution, so everything downstream —
// the index cache key, the singleflight selection key, the memo key —
// computes against one consistent graph state even if a mutation lands
// mid-request.
type params struct {
	graphName string
	g         *graph.Graph
	L, R      int
	seed      uint64
	r0        int
	epoch     uint64
}

func (p params) cacheKey() index.CacheKey {
	return index.CacheKey{Graph: p.graphName, L: p.L, R: p.R, Seed: p.seed, R0: p.r0, Epoch: p.epoch}
}

// resolveParams validates the shared graph/L/R/seed knobs. R defaults to the
// paper's recommended 100 when zero.
func (e *Engine) resolveParams(graphName string, L, R int, seed uint64) (params, error) {
	g, ok := e.Graph(graphName)
	if !ok {
		return params{}, &Error{Code: CodeNotFound, Message: fmt.Sprintf("unknown graph %q", graphName)}
	}
	// Sole-graph shorthand: key the cache under the real name so explicit
	// and shorthand requests share indexes.
	graphName = e.soleGraphName(graphName)
	// L = 0 (zero-hop walks) is degenerate but legal for embedded use; the
	// HTTP codec enforces its stricter L >= 1 contract before reaching here.
	if L < 0 || L > 1<<16-1 {
		return params{}, badRequestf("L=%d outside [0, %d]", L, 1<<16-1)
	}
	if R == 0 {
		R = 100 // the paper's recommended sample size
	}
	if R < 1 || R > e.cfg.MaxR {
		return params{}, badRequestf("R=%d outside [1, %d]", R, e.cfg.MaxR)
	}
	return params{graphName: graphName, g: g, L: L, R: R, seed: seed, epoch: g.Epoch()}, nil
}

// resolveProblem validates the problem knob; zero means Problem 2 (the
// coverage problem), matching the HTTP default.
func resolveProblem(p index.Problem) (index.Problem, error) {
	switch p {
	case 0, index.Problem2:
		return index.Problem2, nil
	case index.Problem1:
		return index.Problem1, nil
	default:
		return 0, badRequestf("unknown problem %d (want 1 or 2)", int(p))
	}
}

// validateSet checks node ids against the graph.
func validateSet(field string, nodes []int, g *graph.Graph) error {
	for _, u := range nodes {
		if u < 0 || u >= g.N() {
			return badRequestf("%s: node %d outside [0, %d)", field, u, g.N())
		}
	}
	return nil
}

// acquireIndex fetches (or builds) the index for p, reporting whether this
// call triggered the build and how long the build (or spill load) took.
// Builds are heavy work: unless ctx already holds an admission slot (a
// build inside an admitted selection), the build waits at the gate and a
// shed surfaces as CodeOverloaded. Cache hits never touch the gate.
func (e *Engine) acquireIndex(ctx context.Context, p params, workers int) (h *index.Handle, built bool, buildTime time.Duration, err error) {
	start := time.Now()
	h, err = e.cache.Acquire(p.cacheKey(), p.g, func() (*index.Index, error) {
		built = true
		if !isAdmitted(ctx) {
			release, err := e.gate.admit(ctx)
			if err != nil {
				return nil, err
			}
			defer release()
		}
		return index.BuildRangeWorkers(p.g, p.L, p.seed, p.r0, p.r0+p.R, workers)
	})
	if built {
		buildTime = time.Since(start)
	}
	return h, built, buildTime, err
}

// acquired is one acquireIndex outcome.
type acquired struct {
	h     *index.Handle
	built bool
	build time.Duration
	err   error
}

// acquireIndexCtx is acquireIndex bounded by ctx. Index construction itself
// cannot be canceled mid-flight, so on ctx death the request gets its
// timeout/cancel error immediately while the build detaches, finishes in
// the background, and still populates the cache for the next request (its
// handle is released there).
func (e *Engine) acquireIndexCtx(ctx context.Context, p params, workers int) (*index.Handle, bool, time.Duration, error) {
	done := make(chan acquired, 1)
	go func() {
		h, built, build, err := e.acquireIndex(ctx, p, workers)
		done <- acquired{h: h, built: built, build: build, err: err}
	}()
	select {
	case a := <-done:
		return a.h, a.built, a.build, a.err
	case <-ctx.Done():
		go func() {
			if a := <-done; a.err == nil {
				a.h.Release()
			}
		}()
		return nil, false, 0, ctx.Err()
	}
}
