package engine

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/index"
)

// resolveSelect validates a SelectRequest against the engine limits.
func (e *Engine) resolveSelect(req SelectRequest) (p params, prob index.Problem, workers int, acc *core.Accuracy, err error) {
	prob, err = resolveProblem(req.Problem)
	if err != nil {
		return params{}, 0, 0, nil, err
	}
	p, err = e.resolveParams(req.Graph, req.L, req.R, req.Seed)
	if err != nil {
		return params{}, 0, 0, nil, err
	}
	// K = 0 yields an empty selection, the library's historical behavior;
	// the HTTP codec enforces its stricter k >= 1 contract before reaching
	// here.
	if req.K < 0 || req.K > e.cfg.MaxK {
		return params{}, 0, 0, nil, badRequestf("k=%d outside [0, %d]", req.K, e.cfg.MaxK)
	}
	acc, err = e.resolveAccuracy(req.Epsilon, req.Delta)
	if err != nil {
		return params{}, 0, 0, nil, err
	}
	return p, prob, e.resolveWorkers(req.Workers), acc, nil
}

// resolveAccuracy resolves the per-request accuracy knobs against the engine
// defaults: nil means the fixed-R path (accuracy off). Zero epsilon inherits
// Config.DefaultEpsilon; zero delta inherits Config.DefaultDelta, then the
// documented 0.05.
func (e *Engine) resolveAccuracy(eps, delta float64) (*core.Accuracy, error) {
	if math.IsNaN(eps) || math.IsInf(eps, 0) || eps < 0 {
		return nil, badRequestf("epsilon=%v, want >= 0", eps)
	}
	if eps == 0 {
		eps = e.cfg.DefaultEpsilon
	}
	if eps == 0 {
		if delta != 0 {
			return nil, badRequestf("delta=%v without an epsilon target", delta)
		}
		return nil, nil
	}
	if delta == 0 {
		delta = e.cfg.DefaultDelta
	}
	if delta == 0 {
		delta = 0.05
	}
	if math.IsNaN(delta) || delta <= 0 || delta >= 1 {
		return nil, badRequestf("delta=%v outside (0, 1)", delta)
	}
	return &core.Accuracy{Epsilon: eps, Delta: delta, Chunk: e.cfg.AccuracyChunk}, nil
}

// Select runs one top-K selection. Identical selections (same graph,
// problem, budget and index identity) coalesce into one computation;
// workers and timeout deliberately stay out of the coalescing key because
// they cannot change the selected nodes, only wall-clock cost — the
// leader's knobs drive the shared run. The computation context descends
// from the engine lifecycle, not any one caller's context, but is canceled
// early once every interested caller is gone, so abandoned selections stop
// burning cores.
//
// ctx bounds this caller's wait (and is additionally clamped by the
// request/engine timeout); Abort/Close cancel the computation itself.
func (e *Engine) Select(ctx context.Context, req SelectRequest) (*SelectResult, error) {
	p, prob, workers, acc, err := e.resolveSelect(req)
	if err != nil {
		return nil, err
	}
	waitCtx, cancel := e.Context(ctx, req.Timeout)
	defer cancel()

	key := fmt.Sprintf("%s|%s|k=%d|lazy=%t", p.cacheKey(), prob, req.K, req.Strategy.lazy())
	if acc != nil {
		// Accuracy knobs change the computation (and its result), so they
		// coalesce only with identically-targeted requests.
		key += fmt.Sprintf("|eps=%g|delta=%g", acc.Epsilon, acc.Delta)
	}
	compute := func(stop <-chan struct{}) (any, error) {
		cctx, cancel := e.computeCtx(req.Timeout)
		defer cancel()
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-stop:
				cancel()
			case <-watchDone:
			}
		}()
		// Only the singleflight leader reaches this closure: one admission
		// slot covers the whole coalesced run, and followers inherit the
		// leader's overloaded error when the gate sheds it. The shed error
		// deliberately carries no context cause, so the follower retry below
		// does not re-run a deliberately rejected computation.
		release, err := e.gate.admit(cctx)
		if err != nil {
			return nil, err
		}
		defer release()
		return e.runSelect(markAdmitted(cctx), p, prob, req.K, req.Strategy.lazy(), workers, acc, nil)
	}
	v, err, shared := e.sf.Do(waitCtx, key, compute)
	if shared && err != nil && waitCtx.Err() == nil &&
		(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
		// The shared run died on the leader's budget (or the leader walked
		// away), but this request's own budget is intact — rerun with our
		// own knobs, coalescing with any other retriers.
		v, err, shared = e.sf.Do(waitCtx, key, compute)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) && errors.Is(waitCtx.Err(), context.DeadlineExceeded) {
			// The deadline and the last-waiter-gone abort race when this
			// request's own budget expires; report the timeout, not the
			// cancellation it caused.
			err = context.DeadlineExceeded
		}
		return nil, wrapCompute(err)
	}
	if shared {
		e.selectsCoalesced.Add(1)
	}
	// Per-caller copy so the shared result's Coalesced flag stays truthful
	// for each of them (the slices are read-only and safely shared).
	res := *(v.(*SelectResult))
	res.Coalesced = shared
	return &res, nil
}

// SelectStream is Select that emits each greedy round's pick as it is
// decided: emit is called with Round events in round order, from the
// goroutine running the selection, and a non-nil emit error aborts the run
// and is returned. The returned SelectResult — and the concatenation of the
// emitted rounds — is bit-for-bit identical to the blocking Select result
// for the same request, for every worker count.
//
// Streams do not coalesce with each other or with blocking Selects: a
// follower attaching mid-run would have missed the early rounds. The
// computation runs under this caller's context (clamped by the
// request/engine timeout and the engine lifecycle).
func (e *Engine) SelectStream(ctx context.Context, req SelectRequest, emit func(Round) error) (*SelectResult, error) {
	p, prob, workers, acc, err := e.resolveSelect(req)
	if err != nil {
		return nil, err
	}
	runCtx, cancel := e.Context(ctx, req.Timeout)
	defer cancel()
	// Streams do not coalesce, so each one holds its own admission slot for
	// the full run.
	release, err := e.gate.admit(runCtx)
	if err != nil {
		return nil, err
	}
	defer release()
	res, err := e.runSelect(markAdmitted(runCtx), p, prob, req.K, req.Strategy.lazy(), workers, acc, emit)
	if err != nil {
		return nil, wrapCompute(err)
	}
	return res, nil
}

// runSelect executes one selection under the caller-supplied computation
// context, streaming rounds to onRound when non-nil. A non-nil acc routes to
// the adaptive replicate-budget driver.
func (e *Engine) runSelect(ctx context.Context, p params, prob index.Problem, k int, lazy bool, workers int, acc *core.Accuracy, onRound func(Round) error) (*SelectResult, error) {
	if acc != nil {
		return e.runAdaptiveSelect(ctx, p, prob, k, workers, *acc, onRound)
	}
	h, built, indexBuild, err := e.acquireIndexCtx(ctx, p, workers)
	if err != nil {
		return nil, err
	}
	defer h.Release()
	var onPick func(core.Pick) error
	if onRound != nil {
		onPick = func(pk core.Pick) error {
			return onRound(Round{Round: pk.Round, Node: pk.Node, Gain: pk.Gain, Objective: pk.Total})
		}
	}
	sel, err := core.ApproxWithIndexStream(ctx, h.Index(), prob, k, lazy, workers, onPick)
	if err != nil {
		return nil, err
	}
	return &SelectResult{
		Nodes:       sel.Nodes,
		Gains:       sel.Gains,
		Evaluations: sel.Evaluations,
		L:           p.L,
		R:           p.R,
		Workers:     workers,
		Lazy:        lazy,
		IndexBuild:  indexBuild,
		TableBuild:  sel.BuildTime,
		Select:      sel.SelectTime,
		IndexCached: !built,
	}, nil
}

// runAdaptiveSelect executes one selection under an adaptive replicate
// budget. The run materializes a private chunked index that grows on demand
// instead of going through the shared cache: the replicate width an adaptive
// run ends at is data-dependent, so caching a partial index under the fixed-R
// key would poison fixed-R requests, and the chunk builds are cheap exactly
// when the run stops early. The caller already holds the admission slot for
// the whole run, which covers the incremental builds.
func (e *Engine) runAdaptiveSelect(ctx context.Context, p params, prob index.Problem, k int, workers int, acc core.Accuracy, onRound func(Round) error) (*SelectResult, error) {
	var onPick func(core.BudgetPick) error
	if onRound != nil {
		onPick = func(bp core.BudgetPick) error {
			return onRound(Round{
				Round:      bp.Round,
				Node:       bp.Node,
				Gain:       bp.Gain,
				Objective:  bp.Total,
				CIWidth:    bp.CIWidth,
				Replicates: bp.Replicates,
			})
		}
	}
	opts := core.Options{K: k, L: p.L, R: p.R, Seed: p.seed, Workers: workers}
	sel, err := core.ApproxAdaptiveStream(ctx, p.g, prob, opts, acc, onPick)
	if err != nil {
		return nil, err
	}
	res := &SelectResult{
		Nodes:          sel.Nodes,
		Gains:          sel.Gains,
		Evaluations:    sel.Evaluations,
		L:              p.L,
		R:              p.R,
		Workers:        workers,
		IndexBuild:     sel.BuildTime,
		Select:         sel.SelectTime,
		Epsilon:        acc.Epsilon,
		Delta:          acc.Delta,
		ReplicatesUsed: sel.ReplicatesUsed,
		ChunksBuilt:    sel.ChunksBuilt,
		EarlyStopped:   sel.EarlyStopped,
		CIWidth:        sel.MaxCIWidth,
	}
	e.recordAdaptive(res)
	return res, nil
}
