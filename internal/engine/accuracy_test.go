package engine

import (
	"context"
	"math"
	"testing"

	"repro/internal/graph"
)

// TestSelectAccuracyCappedParity pins the degraded-to-fixed-R half of the
// accuracy contract at the engine layer: with an unreachable epsilon the
// adaptive run spends the whole R cap and selects bit-identically to the
// plain fixed-R Select, while the result reports its accuracy evidence
// (replicates used, achieved CI) instead of failing.
func TestSelectAccuracyCappedParity(t *testing.T) {
	e := newTestEngine(t, Config{})
	for _, problem := range []Problem{Problem1, Problem2} {
		base := SelectRequest{Graph: "test", Problem: problem, K: 4, L: 5, R: 30, Seed: 3, Strategy: Plain}
		fixed, err := e.Select(context.Background(), base)
		if err != nil {
			t.Fatal(err)
		}
		req := base
		req.Epsilon, req.Delta = 1e-12, 0.1
		adaptive, err := e.Select(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if adaptive.Epsilon != req.Epsilon || adaptive.Delta != req.Delta {
			t.Fatalf("%v: result echoes epsilon=%v delta=%v, want %v/%v",
				problem, adaptive.Epsilon, adaptive.Delta, req.Epsilon, req.Delta)
		}
		if adaptive.EarlyStopped || adaptive.ReplicatesUsed != base.R || adaptive.CIWidth <= 0 {
			t.Fatalf("%v: capped run reported early=%t replicates=%d ci=%v",
				problem, adaptive.EarlyStopped, adaptive.ReplicatesUsed, adaptive.CIWidth)
		}
		if len(adaptive.Nodes) != len(fixed.Nodes) {
			t.Fatalf("%v: %d nodes vs fixed %d", problem, len(adaptive.Nodes), len(fixed.Nodes))
		}
		for i := range fixed.Nodes {
			if adaptive.Nodes[i] != fixed.Nodes[i] ||
				math.Float64bits(adaptive.Gains[i]) != math.Float64bits(fixed.Gains[i]) {
				t.Fatalf("%v: round %d diverges from fixed-R: node %d/%d gain %v/%v",
					problem, i, adaptive.Nodes[i], fixed.Nodes[i], adaptive.Gains[i], fixed.Gains[i])
			}
		}
	}
}

// TestSelectAccuracyEarlyStop pins the speed half: on a hub-dominated graph
// with a loose epsilon the run stops below the R cap, every streamed round
// carries its CI evidence, and the stream result matches the blocking one.
func TestSelectAccuracyEarlyStop(t *testing.T) {
	g, err := graph.BarabasiAlbert(400, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, Config{Graphs: map[string]*graph.Graph{"easy": g}, AccuracyChunk: 25})
	req := SelectRequest{Graph: "easy", Problem: Problem2, K: 3, L: 6, R: 200, Seed: 7, Epsilon: 25, Delta: 0.05}
	want, err := e.Select(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !want.EarlyStopped || want.ReplicatesUsed >= req.R {
		t.Fatalf("used %d/%d replicates, expected early stop", want.ReplicatesUsed, req.R)
	}
	if want.CIWidth > req.Epsilon {
		t.Fatalf("CIWidth %v exceeds epsilon %v despite early stop", want.CIWidth, req.Epsilon)
	}
	if want.ChunksBuilt < 1 || want.ChunksBuilt > (req.R+24)/25 {
		t.Fatalf("implausible ChunksBuilt %d", want.ChunksBuilt)
	}
	var rounds []Round
	got, err := e.SelectStream(context.Background(), req, func(rd Round) error {
		rounds = append(rounds, rd)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != len(want.Nodes) || len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("%d rounds / %d streamed nodes, want %d", len(rounds), len(got.Nodes), len(want.Nodes))
	}
	for i, rd := range rounds {
		if rd.Node != want.Nodes[i] || math.Float64bits(rd.Gain) != math.Float64bits(want.Gains[i]) {
			t.Fatalf("round %d: streamed %d/%v, blocking %d/%v", i, rd.Node, rd.Gain, want.Nodes[i], want.Gains[i])
		}
		if rd.CIWidth > req.Epsilon || rd.Replicates < 1 || rd.Replicates > want.ReplicatesUsed {
			t.Fatalf("round %d accuracy evidence inconsistent: ci=%v replicates=%d", i, rd.CIWidth, rd.Replicates)
		}
	}
	if got.ReplicatesUsed != want.ReplicatesUsed || got.ChunksBuilt != want.ChunksBuilt {
		t.Fatalf("stream schedule %d/%d, blocking %d/%d",
			got.ReplicatesUsed, got.ChunksBuilt, want.ReplicatesUsed, want.ChunksBuilt)
	}

	st := e.Stats()
	if st.Accuracy.AdaptiveSelects < 2 || st.Accuracy.EarlyStops < 2 || st.Accuracy.ChunksBuilt < 2 {
		t.Fatalf("accuracy stats not recorded: %+v", st.Accuracy)
	}
	var histTotal int64
	for _, c := range st.Accuracy.CIWidthHist {
		histTotal += c
	}
	if histTotal != st.Accuracy.AdaptiveSelects {
		t.Fatalf("CI histogram holds %d runs, want %d", histTotal, st.Accuracy.AdaptiveSelects)
	}
}

// TestSelectAccuracyDefaults pins the engine-default path (WithAccuracy):
// a request without its own epsilon inherits Config.DefaultEpsilon and the
// documented 0.05 delta.
func TestSelectAccuracyDefaults(t *testing.T) {
	g, err := graph.BarabasiAlbert(300, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, Config{Graphs: map[string]*graph.Graph{"g": g}, DefaultEpsilon: 30})
	res, err := e.Select(context.Background(), SelectRequest{Graph: "g", K: 2, L: 5, R: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epsilon != 30 || res.Delta != 0.05 {
		t.Fatalf("defaults not applied: epsilon=%v delta=%v", res.Epsilon, res.Delta)
	}
	if res.ReplicatesUsed < 1 || res.ReplicatesUsed > 100 {
		t.Fatalf("implausible ReplicatesUsed %d", res.ReplicatesUsed)
	}
}

// TestSelectAccuracyValidation pins the knob contract: malformed accuracy
// parameters are rejected as bad_request before any compute.
func TestSelectAccuracyValidation(t *testing.T) {
	e := newTestEngine(t, Config{})
	bad := []SelectRequest{
		{Graph: "test", K: 2, L: 4, R: 10, Epsilon: -1},
		{Graph: "test", K: 2, L: 4, R: 10, Epsilon: math.Inf(1)},
		{Graph: "test", K: 2, L: 4, R: 10, Epsilon: 0.5, Delta: -0.1},
		{Graph: "test", K: 2, L: 4, R: 10, Epsilon: 0.5, Delta: 1},
		{Graph: "test", K: 2, L: 4, R: 10, Delta: 0.05}, // delta without a target
	}
	for i, req := range bad {
		if _, err := e.Select(context.Background(), req); CodeOf(err) != CodeBadRequest {
			t.Fatalf("request %d: got %v, want bad_request", i, err)
		}
	}
	if _, err := New(Config{Graphs: map[string]*graph.Graph{"g": testGraph(t, 50, 1)}, DefaultEpsilon: -2}); err == nil {
		t.Fatal("negative DefaultEpsilon accepted")
	}
	if _, err := New(Config{Graphs: map[string]*graph.Graph{"g": testGraph(t, 50, 1)}, DefaultDelta: 1.5}); err == nil {
		t.Fatal("out-of-range DefaultDelta accepted")
	}
}
