package engine

import (
	"context"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/index"
)

// TestWarmRestartParityMmap is the end-to-end page-in restart contract: a
// daemon that spilled its indexes as compressed v8 and restarts with mmap
// serving must answer every selection and gain bit-identically to the cold
// engine that built them on the heap — across both problems, both greedy
// drivers, and different worker counts — without running a single build.
func TestWarmRestartParityMmap(t *testing.T) {
	g, err := graph.BarabasiAlbert(300, 3, 23)
	if err != nil {
		t.Fatal(err)
	}
	spill := t.TempDir()
	ctx := context.Background()
	reqs := []SelectRequest{
		{Problem: index.Problem1, K: 5, L: 5, R: 20, Strategy: Lazy, Workers: 1},
		{Problem: index.Problem1, K: 5, L: 5, R: 20, Strategy: Plain, Workers: 3},
		{Problem: index.Problem2, K: 5, L: 5, R: 20, Strategy: Lazy, Workers: 4},
		{Problem: index.Problem2, K: 5, L: 5, R: 20, Strategy: Plain, Workers: 1},
	}

	// Cold engine: build on the heap, answer, spill at Close.
	cold, err := New(Config{Graphs: map[string]*graph.Graph{"g": g}, SpillDir: spill})
	if err != nil {
		t.Fatal(err)
	}
	coldSelects := make([]*SelectResult, len(reqs))
	for i, req := range reqs {
		res, err := cold.Select(ctx, req)
		if err != nil {
			t.Fatalf("cold select %d: %v", i, err)
		}
		coldSelects[i] = res
	}
	coldGains, err := cold.Gain(ctx, GainRequest{Problem: index.Problem2, L: 5, R: 20,
		Set: coldSelects[2].Nodes[:2], Nodes: []int{0, 1, 2, 3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm engine: same spill dir, mmap serving. Every index must come up
	// as a page-in load; a build would mean the restart was not warm.
	warm, err := New(Config{Graphs: map[string]*graph.Graph{"g": g}, SpillDir: spill, MmapSpills: true})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	for i, req := range reqs {
		res, err := warm.Select(ctx, req)
		if err != nil {
			t.Fatalf("warm select %d: %v", i, err)
		}
		if !res.IndexCached {
			t.Fatalf("warm select %d paid an index build", i)
		}
		cr := coldSelects[i]
		if len(res.Nodes) != len(cr.Nodes) {
			t.Fatalf("warm select %d: %d nodes, want %d", i, len(res.Nodes), len(cr.Nodes))
		}
		for j := range cr.Nodes {
			if res.Nodes[j] != cr.Nodes[j] {
				t.Fatalf("warm select %d round %d: node %d, want %d", i, j, res.Nodes[j], cr.Nodes[j])
			}
			if math.Float64bits(res.Gains[j]) != math.Float64bits(cr.Gains[j]) {
				t.Fatalf("warm select %d round %d: gain %v, want %v", i, j, res.Gains[j], cr.Gains[j])
			}
		}
	}
	warmGains, err := warm.Gain(ctx, GainRequest{Problem: index.Problem2, L: 5, R: 20,
		Set: coldSelects[2].Nodes[:2], Nodes: []int{0, 1, 2, 3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range coldGains.Gains {
		if math.Float64bits(warmGains.Gains[i]) != math.Float64bits(coldGains.Gains[i]) {
			t.Fatalf("warm gain[%d]: %v, want %v", i, warmGains.Gains[i], coldGains.Gains[i])
		}
	}

	st := warm.Stats()
	if st.Cache.Misses == 0 || st.Cache.SpillLoads != st.Cache.Misses {
		t.Fatalf("SpillLoads = %d of %d misses, want all warm", st.Cache.SpillLoads, st.Cache.Misses)
	}
	if st.Storage.PageInRestarts == 0 {
		t.Skip("mmap unavailable on this platform")
	}
	if st.Storage.MappedIndexes == 0 || st.Storage.MappedBytes <= 0 {
		t.Fatalf("Storage = %+v, want mapped indexes", st.Storage)
	}
}
