package engine

import (
	"context"

	"repro/internal/core"
	"repro/internal/index"
)

// This file is the worker half of replicate-sharded serving: partial reads
// answered over a partial index materialized for the replicate range
// [R0, R1) of the full build. Gains in this system accumulate as integer
// sums over replicates, and the per-(node, replicate) walk seeding makes a
// range build an exact slice of the full build — so partial answers are
// int64 sums the coordinator merges by addition and divides once, producing
// float64 values bit-identical to the unsharded engine. The partial surface
// therefore never normalizes: that is the coordinator's job.
//
// Workers are stateless between rounds — every request carries the full
// seed set — and lean on the same memo cache as the full read path: the
// round-by-round CELF sets form a prefix chain, so each round's table is a
// one-copy-plus-one-Update extension of the previous round's.

// PartialGainRequest asks for the integer gain sums of Nodes against Set,
// evaluated over the partial index for replicates [R0, R1) of the build
// identified by (Graph, Problem, L, Seed).
type PartialGainRequest struct {
	Graph   string
	Problem Problem
	L       int
	Seed    uint64
	// R0 and R1 delimit the replicate range [R0, R1) this worker owns.
	R0, R1 int
	// Epoch, when non-nil, pins the request to a graph mutation epoch: a
	// worker whose graph is at any other epoch answers CodeStaleEpoch
	// (retryable) instead of silently contributing pre- or post-mutation
	// sums to a merge built against a different epoch. Coordinators set it;
	// unsharded callers may leave it nil.
	Epoch *uint64
	Set   []int
	Nodes []int
	// WantObjective additionally computes the integer objective accumulator
	// of Set over this range (DTable.ObjectiveSum), so a coordinator can
	// merge objectives in the same request that fetches gains.
	WantObjective bool
}

// PartialGainResult carries the integer sums, parallel to the request's
// Nodes. Sums are exact: merging the [R0,R1) ranges of a partition of
// [0, R) by addition reproduces the full build's integer sums bit-for-bit.
type PartialGainResult struct {
	Sums []int64
	// ObjectiveSum is the integer objective accumulator over this range;
	// only set when the request asked for it.
	ObjectiveSum int64
	// Replicates echoes the range width R1 − R0.
	Replicates  int
	IndexCached bool
	Memo        string
	// Degraded: see GainResult.Degraded.
	Degraded bool
}

// PartialTopGainsRequest asks for the B candidates with the largest integer
// gain sums over the replicate range [R0, R1), Set members excluded. A
// coordinator running the threshold algorithm fetches each shard's top B
// and deepens B until the merged ranking is provably exact.
type PartialTopGainsRequest struct {
	Graph   string
	Problem Problem
	L       int
	Seed    uint64
	R0, R1  int
	// Epoch: see PartialGainRequest.Epoch.
	Epoch   *uint64
	Set     []int
	B       int
	Workers int
}

// PartialTopGainsResult carries the shard-local winners, sum descending
// with ties broken by ascending node id.
type PartialTopGainsResult struct {
	// B echoes the resolved budget.
	B     int
	Nodes []int
	Sums  []int64
	// Exhausted reports that every candidate outside Set was returned — the
	// shard has nothing deeper, so a coordinator must not keep deepening.
	Exhausted   bool
	IndexCached bool
	Memo        string
	// Degraded: see GainResult.Degraded.
	Degraded bool
}

// resolvePartial validates the shared knobs of the partial read surface and
// produces the params for the range's partial index. The range width (not
// R1 alone) is bounded by MaxR, mirroring the full path's R bound: a shard
// never materializes more replicates than an unsharded request could.
func (e *Engine) resolvePartial(graphName string, problem Problem, L int, seed uint64, r0, r1 int, set []int) (params, index.Problem, error) {
	if r0 < 0 || r1 <= r0 {
		return params{}, 0, badRequestf("replicate range [%d, %d) invalid, want 0 <= r0 < r1", r0, r1)
	}
	p, prob, err := e.resolveRead(graphName, problem, L, r1-r0, seed, set)
	if err != nil {
		return params{}, 0, err
	}
	p.r0 = r0
	return p, prob, nil
}

// PartialGain returns the integer gain sums of the requested candidates
// against Set over the replicate range [R0, R1). After the first request
// for a set the answer is a pure read of the frozen memoized table;
// empty-set requests are answered from the index's memoized integer
// empty-set vector with no D-table at all.
func (e *Engine) PartialGain(ctx context.Context, req PartialGainRequest) (*PartialGainResult, error) {
	p, prob, err := e.resolvePartial(req.Graph, req.Problem, req.L, req.Seed, req.R0, req.R1, req.Set)
	if err != nil {
		return nil, err
	}
	if err := epochGuard(p, req.Epoch); err != nil {
		return nil, err
	}
	// Unlike Gain, an empty node list is legal when the request wants the
	// objective sum: that is the coordinator's objective scatter.
	if len(req.Nodes) == 0 && !req.WantObjective {
		return nil, badRequestf("nodes are required")
	}
	if err := validateSet("nodes", req.Nodes, p.g); err != nil {
		return nil, err
	}
	runCtx, cancel := e.Context(ctx, 0)
	defer cancel()
	canon, setKey := canonicalSet(req.Set)
	res := &PartialGainResult{Replicates: p.R}
	h, built, _, err := e.acquireIndexCtx(runCtx, p, e.cfg.DefaultWorkers)
	if err != nil {
		if mh, ok := e.degradedTable(p, prob, canon, setKey); ok {
			res.Sums = mh.Table().GainSumBatch(req.Nodes, make([]int64, 0, len(req.Nodes)))
			if req.WantObjective {
				res.ObjectiveSum = mh.Table().ObjectiveSum(membersOf(canon, p.g.N()))
			}
			mh.Release()
			res.Memo, res.Degraded = MemoHit, true
			return res, nil
		}
		return nil, wrapCompute(err)
	}
	defer h.Release()
	if e.memo != nil && len(canon) == 0 {
		sums, err := h.Index().EmptySetGainSums(prob)
		if err != nil {
			return nil, wrapCompute(err)
		}
		res.Sums = make([]int64, 0, len(req.Nodes))
		for _, u := range req.Nodes {
			res.Sums = append(res.Sums, sums[u])
		}
		if req.WantObjective {
			res.ObjectiveSum, err = h.Index().EmptySetObjectiveSum(prob)
			if err != nil {
				return nil, wrapCompute(err)
			}
		}
		res.Memo = MemoEmpty
		e.memo.noteEmptyHit()
	} else {
		d, release, st, err := e.memoizedTable(p, prob, canon, setKey, h.Index())
		if err != nil {
			return nil, wrapCompute(err)
		}
		res.Sums = d.GainSumBatch(req.Nodes, make([]int64, 0, len(req.Nodes)))
		if req.WantObjective {
			res.ObjectiveSum = d.ObjectiveSum(membersOf(canon, p.g.N()))
		}
		release()
		res.Memo = st
	}
	res.IndexCached = !built
	return res, nil
}

// PartialTopGains returns the B best candidates by integer gain sum over
// the replicate range [R0, R1), Set members excluded, sum descending with
// ties broken by ascending node id.
func (e *Engine) PartialTopGains(ctx context.Context, req PartialTopGainsRequest) (*PartialTopGainsResult, error) {
	p, prob, err := e.resolvePartial(req.Graph, req.Problem, req.L, req.Seed, req.R0, req.R1, req.Set)
	if err != nil {
		return nil, err
	}
	if err := epochGuard(p, req.Epoch); err != nil {
		return nil, err
	}
	b := req.B
	if b == 0 {
		b = 10
		if b > e.cfg.MaxK {
			b = e.cfg.MaxK
		}
	}
	// The partial budget is capped at n, not MaxK: a coordinator's threshold
	// algorithm legitimately deepens past the public top-B cap on its way to
	// an exact merged ranking, and the sweep is O(n) regardless of b.
	if b < 1 || b > p.g.N() {
		return nil, badRequestf("b=%d outside [1, %d]", req.B, p.g.N())
	}
	workers := e.resolveWorkers(req.Workers)
	runCtx, cancel := e.Context(ctx, 0)
	defer cancel()
	canon, setKey := canonicalSet(req.Set)
	res := &PartialTopGainsResult{B: b}
	finish := func(nodes []int, sums []int64) {
		res.Nodes, res.Sums = nodes, sums
		res.Exhausted = len(nodes) >= p.g.N()-len(canon)
	}
	h, built, _, err := e.acquireIndexCtx(runCtx, p, workers)
	if err != nil {
		if mh, ok := e.degradedTable(p, prob, canon, setKey); ok {
			// The degraded sweep runs under its own context, like
			// degradedTopGains: the request context is typically already dead
			// here, and the sweep is a bounded read of resident state.
			nodes, sums, derr := core.TopGainSums(context.Background(), mh.Table(), b, membersOf(canon, p.g.N()), workers)
			mh.Release()
			if derr == nil {
				finish(nodes, sums)
				res.Memo, res.Degraded = MemoHit, true
				return res, nil
			}
		}
		return nil, wrapCompute(err)
	}
	defer h.Release()
	if e.memo != nil && len(canon) == 0 {
		all, err := h.Index().EmptySetGainSums(prob)
		if err != nil {
			return nil, wrapCompute(err)
		}
		nodes, sums := core.TopOfSums(all, nil, b)
		finish(nodes, sums)
		res.Memo = MemoEmpty
		e.memo.noteEmptyHit()
	} else {
		d, release, st, err := e.memoizedTable(p, prob, canon, setKey, h.Index())
		if err != nil {
			return nil, wrapCompute(err)
		}
		nodes, sums, err := core.TopGainSums(runCtx, d, b, membersOf(canon, p.g.N()), workers)
		release()
		if err != nil {
			return nil, wrapCompute(err)
		}
		finish(nodes, sums)
		res.Memo = st
	}
	res.IndexCached = !built
	return res, nil
}

// membersOf renders a canonical set as a node-indexed membership mask.
func membersOf(canon []int, n int) []bool {
	members := make([]bool, n)
	for _, u := range canon {
		members[u] = true
	}
	return members
}
