package engine

import (
	"time"

	"repro/internal/index"
)

// Problem re-exports the index problem identifiers so transports can speak
// engine types without importing internal/index.
type Problem = index.Problem

// Problems. The zero value in a request means Problem2 (coverage), the
// serving default.
const (
	Problem1 = index.Problem1 // minimize total hitting time
	Problem2 = index.Problem2 // maximize expected coverage
)

// Strategy selects the greedy driver for Select/SelectStream. The zero
// value is Lazy (CELF), the recommended default; both strategies produce
// identical selections, Plain exists for ablation and paper fidelity.
type Strategy int

const (
	// Lazy is the CELF lazy-evaluation driver.
	Lazy Strategy = iota
	// Plain is the per-round full-scan driver of Algorithm 1.
	Plain
)

func (s Strategy) String() string {
	if s == Plain {
		return "plain"
	}
	return "lazy"
}

// lazy reports whether the strategy is the CELF driver.
func (s Strategy) lazy() bool { return s != Plain }

// SelectRequest asks for a top-K selection. Graph may be empty when the
// engine serves exactly one graph. Zero-valued knobs get the documented
// defaults (R = 100, Strategy = Lazy, Workers = engine default, Timeout =
// engine default).
type SelectRequest struct {
	Graph   string
	Problem Problem
	// K is the selection budget.
	K int
	// L is the walk-length bound; R the per-node sample size (default 100).
	L int
	R int
	// Seed fixes the walk sampling; part of the index identity.
	Seed uint64
	// Strategy picks the greedy driver (default Lazy). Both drivers shard
	// gain evaluations over Workers goroutines.
	Strategy Strategy
	// Workers shards index construction and gain evaluation (0 = engine
	// default; capped at the engine max). Selections are identical for
	// every value.
	Workers int
	// Timeout bounds the computation (0 = engine default; capped at the
	// engine max). A request whose budget expires during an index build
	// gets its timeout error immediately while the build detaches and still
	// warms the cache; an expired selection loop is canceled outright.
	Timeout time.Duration
	// Epsilon > 0 enables the adaptive replicate budget: R becomes a cap and
	// each greedy round stops sampling once the leader/runner-up separation
	// interval half-width is at most Epsilon at confidence Delta (split over
	// the K rounds). Zero inherits the engine default (off unless configured
	// via Config.DefaultEpsilon / rwdom.WithAccuracy). Delta must be in
	// (0, 1) when accuracy is on; zero inherits the engine default (0.05).
	// Adaptive runs always use the plain driver (CELF bounds are invalid
	// across replicate-width growth) and skip the shared index cache.
	Epsilon float64
	Delta   float64
}

// SelectResult is one completed selection. Nodes, Gains and Evaluations are
// bit-for-bit identical for every Workers value and for the streaming and
// blocking paths.
type SelectResult struct {
	// Nodes lists the selected nodes in selection order; Gains the marginal
	// gain recorded at each selection, parallel to Nodes.
	Nodes []int
	Gains []float64
	// Evaluations counts marginal-gain computations.
	Evaluations int
	// L, R, Workers and Lazy echo the resolved knobs that drove the
	// computation (defaults applied, caps enforced).
	L, R    int
	Workers int
	Lazy    bool
	// IndexBuild is the walk-index materialization time paid by this
	// request (zero when the index was cached); TableBuild the D-table
	// setup; Select the greedy loop.
	IndexBuild time.Duration
	TableBuild time.Duration
	Select     time.Duration
	// IndexCached reports that the walk index was already materialized (or
	// loaded from spill) rather than built for this request; Coalesced that
	// the whole selection was shared with an identical concurrent request.
	IndexCached bool
	Coalesced   bool
	// Accuracy evidence of an adaptive run (zero values on fixed-R runs).
	// Epsilon and Delta echo the resolved accuracy knobs; ReplicatesUsed is
	// the final materialized replicate width (≤ R); ChunksBuilt counts index
	// chunks materialized; EarlyStopped reports finishing below the R cap;
	// CIWidth is the largest per-round separation half-width among committed
	// rounds, so CIWidth ≤ Epsilon certifies every round met the target.
	Epsilon        float64
	Delta          float64
	CIWidth        float64
	ReplicatesUsed int
	ChunksBuilt    int
	EarlyStopped   bool
}

// Objective returns the telescoped objective value Σ Gains.
func (r *SelectResult) Objective() float64 {
	t := 0.0
	for _, g := range r.Gains {
		t += g
	}
	return t
}

// Round is one streamed greedy round: the node committed in round Round
// (1-based), its marginal gain, and the objective after the round (the
// running telescoped sum, accumulated in selection order — the final
// round's Objective is bit-for-bit SelectResult.Objective()).
type Round struct {
	Round     int
	Node      int
	Gain      float64
	Objective float64
	// CIWidth and Replicates carry the round's accuracy evidence on adaptive
	// runs: the separation-interval half-width and the replicates
	// materialized when the round's node was committed. Zero on fixed-R runs.
	CIWidth    float64
	Replicates int
}

// GainRequest asks for the marginal gains of Nodes against the seed Set.
type GainRequest struct {
	Graph   string
	Problem Problem
	L, R    int
	Seed    uint64
	// Set is the committed seed set (order and duplicates don't matter);
	// Nodes the candidates to evaluate against it.
	Set   []int
	Nodes []int
}

// GainResult carries the marginal gains, parallel to the request's Nodes.
type GainResult struct {
	Gains []float64
	// IndexCached reports whether the walk index was already resident; Memo
	// which memo path served the request (the Memo* constants).
	IndexCached bool
	Memo        string
	// Degraded marks an answer served from an already-memoized frozen table
	// while the index itself was unavailable (its build was shed by admission
	// control, failed, or out-deadlined). The values are exact — the table was
	// built from the real index before it went away — but a request for an
	// unmemoized set would have received the underlying error instead.
	Degraded bool
}

// ObjectiveRequest asks for the estimated objective value of Set.
type ObjectiveRequest struct {
	Graph   string
	Problem Problem
	L, R    int
	Seed    uint64
	Set     []int
}

// ObjectiveResult carries the estimate.
type ObjectiveResult struct {
	Objective   float64
	IndexCached bool
	Memo        string
	// Degraded: see GainResult.Degraded.
	Degraded bool
}

// TopGainsRequest asks for the B best candidates by marginal gain against
// Set (set members excluded), gain descending with ties broken by ascending
// node id.
type TopGainsRequest struct {
	Graph   string
	Problem Problem
	L, R    int
	Seed    uint64
	Set     []int
	// B is the number of winners (default 10, capped at the engine MaxK).
	B int
	// Workers shards the candidate sweep (0 = engine default).
	Workers int
}

// TopGainsResult carries the winners, gain descending.
type TopGainsResult struct {
	// B echoes the resolved budget.
	B           int
	Nodes       []int
	Gains       []float64
	IndexCached bool
	Memo        string
	// Degraded: see GainResult.Degraded.
	Degraded bool
}
