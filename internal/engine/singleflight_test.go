package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestSingleflightStopsOrphanedComputation: when the only caller's context
// dies, fn's stop channel must close so the computation can abort instead of
// running to its own timeout.
func TestSingleflightStopsOrphanedComputation(t *testing.T) {
	var g singleflight
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	stopped := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err, _ := g.Do(ctx, "k", func(stop <-chan struct{}) (any, error) {
			close(started)
			select {
			case <-stop:
				close(stopped)
				return nil, context.Canceled
			case <-time.After(30 * time.Second):
				return nil, errors.New("stop channel never closed")
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("orphaned computation returned %v, want context.Canceled", err)
		}
	}()
	<-started
	cancel() // the only interested client walks away
	select {
	case <-stopped:
	case <-time.After(10 * time.Second):
		t.Fatal("fn's stop channel did not close after the last waiter left")
	}
	wg.Wait()
}

// TestSingleflightLateFollowerAfterStopDoesNotPanic: a follower that
// attaches after the stop channel already closed (the call lingers in the
// map until fn returns) and then detaches must not re-close stop.
func TestSingleflightLateFollowerAfterStopDoesNotPanic(t *testing.T) {
	var g singleflight
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	stopObserved := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Do(leaderCtx, "k", func(stop <-chan struct{}) (any, error) {
			cancelLeader() // last (only) waiter leaves -> stop closes
			<-stop
			close(stopObserved)
			<-release // keep the call in the map while the late follower acts
			return nil, context.Canceled
		})
	}()
	<-stopObserved
	// Late follower with an already-dead context: attaches (waiters 0->1),
	// then detaches (1->0) — the second detach-to-zero must not panic.
	deadCtx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err, shared := g.Do(deadCtx, "k", func(<-chan struct{}) (any, error) {
		return nil, errors.New("late follower must attach, not recompute")
	})
	if !shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("late follower got (err=%v, shared=%t), want canceled shared wait", err, shared)
	}
	close(release)
	wg.Wait()
}

// TestSingleflightFollowerKeepsComputationAlive: a departing leader must not
// abort a computation another caller is still waiting on.
func TestSingleflightFollowerKeepsComputationAlive(t *testing.T) {
	var g singleflight
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Do(leaderCtx, "k", func(stop <-chan struct{}) (any, error) {
			close(started)
			select {
			case <-stop:
				return nil, errors.New("aborted despite live follower")
			case <-release:
				return "ok", nil
			}
		})
	}()
	<-started
	followerDone := make(chan struct{})
	var followerVal any
	var followerErr error
	go func() {
		defer close(followerDone)
		followerVal, followerErr, _ = g.Do(context.Background(), "k", func(<-chan struct{}) (any, error) {
			return nil, errors.New("follower must attach, not recompute")
		})
	}()
	for g.waiters("k") == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	cancelLeader() // leader walks away; follower still waiting
	time.Sleep(10 * time.Millisecond)
	close(release)
	<-followerDone
	if followerErr != nil || followerVal != "ok" {
		t.Fatalf("follower got (%v, %v), want (ok, nil)", followerVal, followerErr)
	}
	wg.Wait()
}

func TestSelectCoalescingSharesOneComputation(t *testing.T) {
	var sf singleflight

	// Deterministic coalescing check at the singleflight layer: a leader
	// blocks in fn until a follower is waiting on the same key.
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	var leaderVal, followerVal any
	var followerShared bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		leaderVal, _, _ = sf.Do(context.Background(), "k", func(<-chan struct{}) (any, error) {
			close(leaderIn)
			<-release
			return 42, nil
		})
	}()
	<-leaderIn
	wg.Add(1)
	go func() {
		defer wg.Done()
		followerVal, _, followerShared = sf.Do(context.Background(), "k", func(<-chan struct{}) (any, error) {
			t.Error("follower executed fn despite in-flight leader")
			return nil, nil
		})
	}()
	// The follower must be attached to the leader's call before we release
	// it; otherwise the leader could finish first and the follower would
	// start a fresh (non-shared) computation.
	for sf.waiters("k") == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()
	if !followerShared {
		t.Fatal("follower did not report shared result")
	}
	if leaderVal != 42 || followerVal != 42 {
		t.Fatalf("leader/follower values = %v/%v, want 42/42", leaderVal, followerVal)
	}
}
